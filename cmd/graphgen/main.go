// Command graphgen generates the evaluation graphs (Table 2 stand-ins)
// or custom random graphs and writes them as edge-list files.
//
// Examples:
//
//	graphgen -dataset miami -scale 0.5 -out miami.txt
//	graphgen -model er -n 100000 -m 1000000 -out er.bin
//	graphgen -model pa -n 100000 -d 10 -out pa.txt
//	graphgen -model ws -n 100000 -d 20 -beta 0.1 -out ws.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeswitch"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "named dataset stand-in (miami newyork losangeles flickr livejournal smallworld erdosrenyi pa)")
		scale   = flag.Float64("scale", 1, "dataset scale multiplier")
		model   = flag.String("model", "", "custom model: er, pa, ws, hk, contact")
		n       = flag.Int("n", 100000, "vertex count (custom models)")
		m       = flag.Int64("m", 0, "edge count (er model)")
		d       = flag.Int("d", 10, "degree parameter (pa: edges per vertex; ws: lattice degree)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws model)")
		pt      = flag.Float64("pt", 0.4, "triad-formation probability (hk model)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (text, or binary with .bin extension); default stdout")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *model, *n, *m, *d, *beta, *pt, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, model string, n int, m int64, d int,
	beta, pt float64, seed uint64, out string) error {

	r := rng.New(seed)
	var g *graph.Graph
	var err error
	switch {
	case dataset != "" && model != "":
		return fmt.Errorf("use either -dataset or -model, not both")
	case dataset != "":
		g, err = gen.Dataset(r, dataset, scale)
	case model == "er":
		if m == 0 {
			m = int64(n) * 10
		}
		g, err = gen.ErdosRenyi(r, n, m)
	case model == "pa":
		g, err = gen.PrefAttachment(r, n, d)
	case model == "ws":
		g, err = gen.SmallWorld(r, n, d, beta)
	case model == "hk":
		g, err = gen.HolmeKim(r, n, d, pt)
	case model == "contact":
		g, err = gen.Contact(r, gen.ContactConfig{N: n, AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8})
	case model == "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		if m == 0 {
			m = int64(n) * int64(d) / 2
		}
		g, err = gen.RMAT(r, scale, m, 0.57, 0.19, 0.19)
	default:
		return fmt.Errorf("need -dataset NAME or -model {er|pa|ws|hk|contact|rmat}")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated n=%d m=%d\n", g.N(), g.M())
	if out == "" {
		return edgeswitch.WriteGraph(os.Stdout, g)
	}
	return edgeswitch.SaveGraphFile(out, g)
}
