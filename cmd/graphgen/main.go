// Command graphgen generates the evaluation graphs (Table 2 stand-ins)
// or custom random graphs and writes them as edge-list files.
//
// Examples:
//
//	graphgen -dataset miami -scale 0.5 -out miami.txt
//	graphgen -model er -n 100000 -m 1000000 -out er.bin
//	graphgen -model pa -n 100000 -d 10 -out pa.txt
//	graphgen -model pa -n 100000 -d 10 -pergen -out pa.txt
//	graphgen -model ws -n 100000 -d 20 -beta 0.1 -out ws.txt
//
// With -pergen, the pa and contact models use the counter-based
// partition-local generator (internal/gen/pergen): the output is a pure
// function of (-model, -n, -d, -seed), byte-identical to what every rank
// of a distributed `edgeswitch -gen` / `esworker -gen` bootstrap derives
// for the same spec — so graphgen doubles as the reference materializer
// for distributed runs. Every generator here is seeded exclusively by
// -seed; there is no time-based or implicit fallback, and a seed that
// cannot reach the generator is an error rather than a silent reseed.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeswitch"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "named dataset stand-in (miami newyork losangeles flickr livejournal smallworld erdosrenyi pa)")
		scale   = flag.Float64("scale", 1, "dataset scale multiplier")
		model   = flag.String("model", "", "custom model: er, pa, ws, hk, contact, rmat")
		n       = flag.Int("n", 100000, "vertex count (custom models)")
		m       = flag.Int64("m", 0, "edge count (er model)")
		d       = flag.Int("d", 10, "degree parameter (pa: edges per vertex; ws: lattice degree; contact: average degree)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws model)")
		pt      = flag.Float64("pt", 0.4, "triad-formation probability (hk model)")
		seed    = flag.Uint64("seed", 1, "random seed (sole entropy source; keys every per-purpose stream in -pergen mode)")
		usePer  = flag.Bool("pergen", false, "use the counter-based partition-local generator (models pa, contact): p-invariant, reproducible across rank counts")
		out     = flag.String("out", "", "output file (text, or binary with .bin extension); default stdout")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *model, *n, *m, *d, *beta, *pt, *seed, *usePer, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, model string, n int, m int64, d int,
	beta, pt float64, seed uint64, usePergen bool, out string) error {

	r := rng.New(seed)
	var g *graph.Graph
	var err error
	switch {
	case dataset != "" && model != "":
		return fmt.Errorf("use either -dataset or -model, not both")
	case usePergen:
		g, err = runPergen(model, n, d, seed)
	case dataset != "":
		g, err = gen.Dataset(r, dataset, scale)
	case model == "er":
		if m == 0 {
			m = int64(n) * 10
		}
		g, err = gen.ErdosRenyi(r, n, m)
	case model == "pa":
		g, err = gen.PrefAttachment(r, n, d)
	case model == "ws":
		g, err = gen.SmallWorld(r, n, d, beta)
	case model == "hk":
		g, err = gen.HolmeKim(r, n, d, pt)
	case model == "contact":
		g, err = gen.Contact(r, gen.ContactConfig{N: n, AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8})
	case model == "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		if m == 0 {
			m = int64(n) * int64(d) / 2
		}
		g, err = gen.RMAT(r, scale, m, 0.57, 0.19, 0.19)
	default:
		return fmt.Errorf("need -dataset NAME or -model {er|pa|ws|hk|contact|rmat}")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated n=%d m=%d\n", g.N(), g.M())
	if out == "" {
		return edgeswitch.WriteGraph(os.Stdout, g)
	}
	return edgeswitch.SaveGraphFile(out, g)
}

// runPergen materializes a counter-based spec. The seed is validated by
// construction: it keys the spec's per-purpose streams directly, so the
// same flags reproduce the same graph on any machine and at any rank
// count (the distributed bootstrap derives partitions of exactly this
// graph).
func runPergen(model string, n, d int, seed uint64) (*graph.Graph, error) {
	var spec pergen.Spec
	switch model {
	case "pa":
		spec = pergen.Spec{Model: pergen.ModelPA, Seed: seed, N: n, D: d}
	case "contact":
		spec = pergen.Spec{Model: pergen.ModelContact, Seed: seed, N: n,
			Contact: gen.ContactConfig{AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8}}
	case "":
		return nil, fmt.Errorf("-pergen needs -model pa or -model contact")
	default:
		return nil, fmt.Errorf("-pergen supports models pa and contact, not %q", model)
	}
	pg, err := pergen.New(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pergen spec: model=%s n=%d d=%d seed=%d (p-invariant)\n", model, n, d, seed)
	return pg.Full()
}
