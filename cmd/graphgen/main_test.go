package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		model string
		n     int
		m     int64
		d     int
	}{
		{"er", "er", 200, 800, 0},
		{"pa", "pa", 200, 0, 4},
		{"ws", "ws", 200, 0, 4},
		{"hk", "hk", 200, 0, 4},
		{"contact", "contact", 300, 0, 12},
		{"rmat", "rmat", 256, 1000, 8},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.name+".txt")
		if err := run("", 1, c.model, c.n, c.m, c.d, 0.1, 0.4, 3, false, out); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: no output (%v)", c.name, err)
		}
	}
}

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.bin")
	if err := run("erdosrenyi", 0.01, "", 0, 0, 0, 0, 0, 1, false, out); err != nil {
		t.Fatal(err)
	}
}

func TestRunPergen(t *testing.T) {
	dir := t.TempDir()
	for _, model := range []string{"pa", "contact"} {
		a := filepath.Join(dir, model+"-a.txt")
		b := filepath.Join(dir, model+"-b.txt")
		for _, out := range []string{a, b} {
			if err := run("", 1, model, 500, 0, 4, 0, 0, 7, true, out); err != nil {
				t.Fatalf("%s: %v", model, err)
			}
		}
		// The seed is the sole entropy source: identical flags must
		// write byte-identical files.
		da, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Fatalf("%s: two pergen runs with the same seed differ", model)
		}
		// A different seed reaches the generator (no silent reseeding to
		// a fixed or time-derived value).
		c := filepath.Join(dir, model+"-c.txt")
		if err := run("", 1, model, 500, 0, 4, 0, 0, 8, true, c); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		dc, err := os.ReadFile(c)
		if err != nil {
			t.Fatal(err)
		}
		if string(da) == string(dc) {
			t.Fatalf("%s: seeds 7 and 8 produced identical pergen output", model)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 1, "", 10, 0, 2, 0.1, 0.4, 1, false, ""); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run("miami", 1, "er", 10, 0, 2, 0.1, 0.4, 1, false, ""); err == nil {
		t.Fatal("both dataset and model accepted")
	}
	if err := run("", 1, "bogus", 10, 0, 2, 0.1, 0.4, 1, false, ""); err == nil {
		t.Fatal("bogus model accepted")
	}
	// -pergen only covers the counter-based models.
	if err := run("", 1, "er", 10, 0, 2, 0.1, 0.4, 1, true, ""); err == nil {
		t.Fatal("pergen with er model accepted")
	}
	if err := run("", 1, "", 10, 0, 2, 0.1, 0.4, 1, true, ""); err == nil {
		t.Fatal("pergen without model accepted")
	}
	if err := run("miami", 1, "", 10, 0, 2, 0.1, 0.4, 1, true, ""); err == nil {
		t.Fatal("pergen with dataset accepted")
	}
}
