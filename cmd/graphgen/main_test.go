package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		model string
		n     int
		m     int64
		d     int
	}{
		{"er", "er", 200, 800, 0},
		{"pa", "pa", 200, 0, 4},
		{"ws", "ws", 200, 0, 4},
		{"hk", "hk", 200, 0, 4},
		{"contact", "contact", 300, 0, 12},
		{"rmat", "rmat", 256, 1000, 8},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.name+".txt")
		if err := run("", 1, c.model, c.n, c.m, c.d, 0.1, 0.4, 3, out); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: no output (%v)", c.name, err)
		}
	}
}

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.bin")
	if err := run("erdosrenyi", 0.01, "", 0, 0, 0, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 1, "", 10, 0, 2, 0.1, 0.4, 1, ""); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run("miami", 1, "er", 10, 0, 2, 0.1, 0.4, 1, ""); err == nil {
		t.Fatal("both dataset and model accepted")
	}
	if err := run("", 1, "bogus", 10, 0, 2, 0.1, 0.4, 1, ""); err == nil {
		t.Fatal("bogus model accepted")
	}
}
