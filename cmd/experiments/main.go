// Command experiments reproduces the paper's tables and figures. Each
// experiment id names one artifact (see DESIGN.md §8 and EXPERIMENTS.md).
//
// Examples:
//
//	experiments -list
//	experiments -run fig4 -scale 0.25 -maxranks 16
//	experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeswitch/internal/harness"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the experiments and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scale    = flag.Float64("scale", 0, "dataset scale multiplier (default 0.25)")
		seed     = flag.Uint64("seed", 0, "random seed (default 42)")
		maxRanks = flag.Int("maxranks", 0, "largest processor count in sweeps (default: #cores)")
		reps     = flag.Int("reps", 0, "repetitions for statistical experiments (default 5)")
		quick    = flag.Bool("quick", false, "tiny smoke-test sizes")
	)
	flag.Parse()

	if *list {
		fmt.Println("id        paper artifact    description")
		for _, e := range harness.Experiments() {
			fmt.Printf("%-9s %-17s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: need -run ID or -list")
		os.Exit(2)
	}
	cfg := harness.Config{
		Scale:    *scale,
		Seed:     *seed,
		MaxRanks: *maxRanks,
		Reps:     *reps,
		Quick:    *quick,
		Out:      os.Stdout,
	}
	if *run == "all" {
		for _, e := range harness.Experiments() {
			if err := harness.Run(e.ID, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	if err := harness.Run(*run, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
