package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	err := run("", "erdosrenyi", 0.02, "", 0, 0, out, 500, 1, 2, "HP-U", "", 2, 7, false, true, true, false, "plain", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output not written: %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(in, []byte("# 6 5\n0 1\n1 2\n2 3\n3 4\n4 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 1, "", 0, 0, "", 20, 1, 1, "CP", "", 1, 3, false, false, true, false, "plain", 0, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "ring.txt")
	// A ring plus chords: connected, bipartite-violating; fine for
	// plain/connected/jdd.
	content := "# 8 10\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n0 7\n0 4\n2 6\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"plain", "connected", "jdd"} {
		if err := run(in, "", 1, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 5, false, false, true, false, mode, 0, "", 0); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	// Bipartite mode on a bipartite file.
	bip := filepath.Join(dir, "bip.txt")
	if err := os.WriteFile(bip, []byte("# 6 5\n0 3\n0 4\n1 4\n1 5\n2 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bip, "", 1, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 5, false, false, true, false, "bipartite", 3, "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunDistributedGen exercises the -gen path sequentially and with
// the communication-free parallel bootstrap, writing both results to
// confirm the full pipeline (generate → switch → reassemble → save).
func TestRunDistributedGen(t *testing.T) {
	dir := t.TempDir()
	for _, ranks := range []int{1, 4} {
		out := filepath.Join(dir, "gen.txt")
		if err := run("", "", 1, "pa", 600, 4, out, 100, 1, ranks, "CP", "", 1, 11, false, false, true, false, "plain", 0, "", 0); err != nil {
			t.Fatalf("p=%d: %v", ranks, err)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("p=%d: output not written (%v)", ranks, err)
		}
	}
	if err := run("", "", 1, "contact", 600, 6, "", 50, 1, 2, "HP-D", "", 1, 11, false, false, true, false, "plain", 0, "", 0); err != nil {
		t.Fatalf("contact: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 1, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("x.txt", "miami", 1, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("both -in and -dataset accepted")
	}
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "bogus", 0, "", 0); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := run("", "nonexistent", 1, "", 0, 0, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run("x.txt", "", 1, "pa", 100, 4, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("both -in and -gen accepted")
	}
	if err := run("", "", 1, "bogus", 100, 4, "", 10, 1, 1, "CP", "", 1, 1, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("bogus -gen model accepted")
	}
	if err := run("", "", 1, "pa", 100, 4, "", 10, 1, 2, "CP", "", 1, 1, false, false, true, false, "connected", 0, "", 0); err == nil {
		t.Fatal("-gen with constrained mode accepted")
	}
}

func TestRunCurveball(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	// Parallel, sequential, and visit-rate-derived (t=0) curveball runs.
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, out, 4, 1, 2, "HP-D", "curveball", 1, 7, false, false, true, false, "plain", 0, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output not written: %v", err)
	}
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, "", 3, 1, 1, "CP", "curveball", 1, 7, false, false, true, false, "plain", 0, "", 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, "", 0, 0.5, 2, "CP", "curveball", 1, 7, false, false, true, false, "plain", 0, "", 0); err != nil {
		t.Fatal(err)
	}
	// Constrained sequential modes are edge-switch-only.
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, "", 10, 1, 1, "CP", "curveball", 1, 7, false, false, true, false, "jdd", 0, "", 0); err == nil {
		t.Fatal("curveball accepted for a constrained mode")
	}
	// Unknown algorithms are rejected at t derivation.
	if err := run("", "erdosrenyi", 0.02, "", 0, 0, "", 0, 1, 1, "CP", "bogus", 1, 7, false, false, true, false, "plain", 0, "", 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
