package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	err := run("", "erdosrenyi", 0.02, out, 500, 1, 2, "HP-U", 2, 7, false, true, true, "plain", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output not written: %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(in, []byte("# 6 5\n0 1\n1 2\n2 3\n3 4\n4 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 1, "", 20, 1, 1, "CP", 1, 3, false, false, true, "plain", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "ring.txt")
	// A ring plus chords: connected, bipartite-violating; fine for
	// plain/connected/jdd.
	content := "# 8 10\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n0 7\n0 4\n2 6\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"plain", "connected", "jdd"} {
		if err := run(in, "", 1, "", 10, 1, 1, "CP", 1, 5, false, false, true, mode, 0); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	// Bipartite mode on a bipartite file.
	bip := filepath.Join(dir, "bip.txt")
	if err := os.WriteFile(bip, []byte("# 6 5\n0 3\n0 4\n1 4\n1 5\n2 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bip, "", 1, "", 10, 1, 1, "CP", 1, 5, false, false, true, "bipartite", 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 1, "", 10, 1, 1, "CP", 1, 1, false, false, true, "plain", 0); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("x.txt", "miami", 1, "", 10, 1, 1, "CP", 1, 1, false, false, true, "plain", 0); err == nil {
		t.Fatal("both -in and -dataset accepted")
	}
	if err := run("", "erdosrenyi", 0.02, "", 10, 1, 1, "CP", 1, 1, false, false, true, "bogus", 0); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := run("", "nonexistent", 1, "", 10, 1, 1, "CP", 1, 1, false, false, true, "plain", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
