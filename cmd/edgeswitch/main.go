// Command edgeswitch switches edges in a graph: load an edge-list file
// (or generate a named dataset), perform t operations or hit a target
// visit rate, sequentially or in parallel, and optionally write the
// result.
//
// Examples:
//
//	edgeswitch -dataset miami -scale 0.1 -x 1 -p 8 -scheme HP-U
//	edgeswitch -in graph.txt -t 1000000 -p 16 -scheme CP -steps 100 -out shuffled.txt
//	edgeswitch -in graph.txt -x 0.5            # sequential, half the edges
//	edgeswitch -gen pa -n 1000000 -d 10 -p 8   # distributed bootstrap: no rank holds the whole graph
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"edgeswitch"
	"edgeswitch/internal/metrics"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input edge-list file (text, or binary with .bin extension)")
		dataset = flag.String("dataset", "", "generate a dataset stand-in instead of reading a file (one of: miami newyork losangeles flickr livejournal smallworld erdosrenyi pa)")
		scale   = flag.Float64("scale", 1, "dataset scale multiplier (with -dataset)")
		genMod  = flag.String("gen", "", "counter-based generator model (pa, contact): with -p>1 every rank generates only its own partition — no rank-0 materialization, no scatter")
		genN    = flag.Int("n", 100000, "vertex count (with -gen)")
		genD    = flag.Int("d", 10, "degree parameter (with -gen: pa edges per vertex, contact average degree)")
		outPath = flag.String("out", "", "write the switched graph to this file")
		tOps    = flag.Int64("t", 0, "number of edge switch operations (0: derive from -x)")
		x       = flag.Float64("x", 1, "target visit rate in (0,1] used when -t is 0")
		ranks   = flag.Int("p", 1, "number of parallel ranks (1: sequential algorithm)")
		scheme  = flag.String("scheme", "CP", "partitioning scheme: CP, HP-D, HP-M, HP-U")
		algo    = flag.String("algo", "edge-switch", "randomization algorithm: edge-switch, curveball (curveball: -t counts global trade rounds and -steps is ignored)")
		steps   = flag.Int64("steps", 1, "number of steps (parallel; step size = t/steps)")
		seed    = flag.Uint64("seed", 1, "random seed")
		useTCP  = flag.Bool("tcp", false, "route parallel messages over loopback TCP")
		adapt   = flag.Bool("adaptive", false, "tune each rank's op-pipelining window from observed abort rates (AIMD)")
		quiet   = flag.Bool("q", false, "suppress the per-rank table")
		verbose = flag.Bool("v", false, "print extra run counters (spill/compaction stats with -spill-dir)")
		mode    = flag.String("mode", "plain", "constraint mode: plain, connected, bipartite, jdd (sequential only)")
		left    = flag.Int("left", 0, "bipartition size (bipartite mode: vertices 0..left-1 are one side)")
		spill   = flag.String("spill-dir", "", "spill each parallel rank's partition to an mmap'd segment under this directory (tiered out-of-core store; bounded memory)")
		overlay = flag.Int64("overlay-budget", 0, "per-rank overlay entry cap before compaction with -spill-dir (0: auto)")
	)
	flag.Parse()

	if err := run(*inPath, *dataset, *scale, *genMod, *genN, *genD, *outPath, *tOps, *x, *ranks, *scheme, *algo, *steps, *seed, *useTCP, *adapt, *quiet, *verbose, *mode, *left, *spill, *overlay); err != nil {
		fmt.Fprintln(os.Stderr, "edgeswitch:", err)
		os.Exit(1)
	}
}

// genSpec maps the -gen/-n/-d flags to a counter-based generator spec.
func genSpec(model string, n, d int, seed uint64) (*edgeswitch.GenSpec, error) {
	switch model {
	case "pa":
		return &edgeswitch.GenSpec{Model: edgeswitch.GenPA, Seed: seed, N: n, D: d}, nil
	case "contact":
		return &edgeswitch.GenSpec{Model: edgeswitch.GenContact, Seed: seed, N: n,
			Contact: edgeswitch.ContactConfig{AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8}}, nil
	default:
		return nil, fmt.Errorf("-gen supports models pa and contact, not %q", model)
	}
}

func run(inPath, dataset string, scale float64, genMod string, genN, genD int, outPath string, tOps int64, x float64,
	ranks int, scheme, algo string, steps int64, seed uint64, useTCP, adaptive, quiet, verbose bool, mode string, left int,
	spillDir string, overlayBudget int64) error {

	if algo != "" && algo != string(edgeswitch.EdgeSwitch) && mode != "" && mode != "plain" {
		return fmt.Errorf("mode %q supports only the edge-switch algorithm", mode)
	}

	var g *edgeswitch.Graph
	var spec *edgeswitch.GenSpec
	var err error
	switch {
	case inPath != "" && dataset != "" || genMod != "" && (inPath != "" || dataset != ""):
		return fmt.Errorf("use exactly one of -in, -dataset, -gen")
	case genMod != "":
		if spec, err = genSpec(genMod, genN, genD, seed); err != nil {
			return err
		}
		if mode != "" && mode != "plain" {
			return fmt.Errorf("-gen supports only the plain mode")
		}
		if ranks <= 1 {
			// Sequential runs materialize the (identical) graph anyway;
			// go through the same path as everyone else so the per-mode
			// switch below applies.
			if g, err = edgeswitch.GenerateSpec(*spec); err != nil {
				return err
			}
			spec = nil
		}
	case inPath != "":
		g, err = edgeswitch.LoadGraphFile(inPath, seed)
	case dataset != "":
		g, err = edgeswitch.Generate(dataset, scale, seed)
	default:
		return fmt.Errorf("need -in FILE, -dataset NAME (datasets: %v) or -gen MODEL", edgeswitch.Datasets())
	}
	if err != nil {
		return err
	}

	// With a distributed-generation spec there is no materialized graph
	// here: derive t from the spec's deterministic edge bound, exactly as
	// every rank will.
	mEdges := int64(0)
	if g != nil {
		mEdges = g.M()
	} else {
		mEdges = spec.MaxEdges()
	}
	t := tOps
	if t == 0 {
		t, err = edgeswitch.TargetOpsFor(edgeswitch.Algorithm(algo), mEdges, x)
		if err != nil {
			return err
		}
	}
	stepSize := int64(0)
	if steps > 1 {
		stepSize = (t + steps - 1) / steps
	}
	unit := "ops"
	if edgeswitch.Algorithm(algo) == edgeswitch.Curveball {
		unit = "rounds"
	}
	if g != nil {
		fmt.Printf("graph: n=%d m=%d | t=%d %s | p=%d scheme=%s mode=%s\n", g.N(), g.M(), t, unit, ranks, scheme, mode)
	} else {
		fmt.Printf("graph: gen=%s n=%d m<=%d (distributed, no rank materializes it) | t=%d %s | p=%d scheme=%s\n",
			genMod, genN, mEdges, t, unit, ranks, scheme)
	}

	var rep *edgeswitch.Report
	switch mode {
	case "plain", "":
		// Pass the raw -t through so a curveball run derived from -x keeps
		// its early-stop target (the facade re-derives t per algorithm).
		rep, err = edgeswitch.Run(g, edgeswitch.Options{
			Ops:            tOps,
			VisitRate:      x,
			Algorithm:      edgeswitch.Algorithm(algo),
			Ranks:          ranks,
			Scheme:         edgeswitch.Scheme(scheme),
			StepSize:       stepSize,
			Seed:           seed,
			UseTCP:         useTCP,
			AdaptiveWindow: adaptive,
			Gen:            spec,
			SpillDir:       spillDir,
			OverlayBudget:  overlayBudget,
		})
	case "connected":
		rep, err = edgeswitch.RunConnected(g, t, seed)
	case "bipartite":
		rep, err = edgeswitch.RunBipartite(g, left, t, seed)
	case "jdd":
		rep, err = edgeswitch.RunJointDegree(g, t, seed)
	default:
		return fmt.Errorf("unknown mode %q (plain, connected, bipartite, jdd)", mode)
	}
	if err != nil {
		return err
	}

	fmt.Printf("completed %d ops (%d restarts, %d forfeited) in %v\n",
		rep.Ops, rep.Restarts, rep.Forfeited, rep.Elapsed)
	fmt.Printf("observed visit rate: %.6f\n", rep.VisitRate)
	if verbose && rep.Parallel != nil && spillDir != "" {
		p := rep.Parallel
		fmt.Printf("spill: base %d B | overlay high-water %d entries | %d compactions (%v)\n",
			p.SpillBaseBytes, p.SpillOverlayHWM, p.SpillCompactions, time.Duration(p.SpillCompactNs))
	}
	if rep.Parallel != nil && !quiet {
		fmt.Println("rank\tvertices\tedges0\tedgesN\tops\trestarts\twinmax")
		for i := range rep.Parallel.RankOps {
			fmt.Printf("%d\t%d\t%d\t%d\t%d\t%d\t%d\n", i,
				rep.Parallel.RankVertices[i],
				rep.Parallel.RankInitialEdges[i],
				rep.Parallel.RankFinalEdges[i],
				rep.Parallel.RankOps[i],
				rep.Parallel.RankRestarts[i],
				rep.Parallel.RankWindowMax[i])
		}
		ab := metrics.AbortRates(rep.Parallel.RankRestarts, rep.Parallel.RankOps)
		lo, hi := ab[0], ab[0]
		for _, r := range ab {
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		fmt.Printf("abort rate per rank: min %.3f max %.3f\n", lo, hi)
	}
	if outPath != "" {
		if err := edgeswitch.SaveGraphFile(outPath, rep.Result); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
