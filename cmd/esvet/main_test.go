package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"edgeswitch/internal/analysis"
)

// writeModule materialises a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const fixtureGoMod = "module fixturemod\n\ngo 1.21\n"

// badCore violates norand (line 5) and noprint (line 9) at once.
const badCore = `package core

import (
	"fmt"
	"math/rand"
)

func Shuffle() {
	fmt.Println(rand.Int())
}
`

const cleanCore = `package core

func Ops() int { return 1 }
`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":               fixtureGoMod,
		"internal/core/ok.go":  cleanCore,
		"internal/rng/rand.go": "package rng\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
	})
	code, stdout, stderr := runCLI(t, "-root", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed: %q", stdout)
	}
}

func TestRunReportsFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":               fixtureGoMod,
		"internal/core/bad.go": badCore,
	})
	code, stdout, stderr := runCLI(t, "-root", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"internal/core/bad.go:5:", "[norand]", "internal/core/bad.go:9:", "[noprint]"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing summary: %q", stderr)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":               fixtureGoMod,
		"internal/core/bad.go": badCore,
	})
	code, stdout, _ := runCLI(t, "-json", "-root", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Check != "norand" || diags[0].File != "internal/core/bad.go" || diags[0].Line != 5 {
		t.Fatalf("unexpected first diagnostic: %+v", diags[0])
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              fixtureGoMod,
		"internal/core/ok.go": cleanCore,
	})
	code, stdout, _ := runCLI(t, "-json", "-root", dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean JSON output %q, want []", stdout)
	}
}

func TestRunCheckFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":               fixtureGoMod,
		"internal/core/bad.go": badCore,
	})
	code, stdout, _ := runCLI(t, "-check", "noprint", "-root", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(stdout, "[norand]") {
		t.Fatalf("filtered-out check still reported:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[noprint]") {
		t.Fatalf("selected check missing:\n%s", stdout)
	}
}

func TestRunUnknownCheck(t *testing.T) {
	code, _, stderr := runCLI(t, "-check", "bogus")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown check "bogus"`) {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range analysis.CheckNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("catalogue missing %q:\n%s", name, stdout)
		}
	}
}

func TestRunNoModule(t *testing.T) {
	code, _, stderr := runCLI(t, "-root", t.TempDir())
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "no go.mod") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestRunOnRepository gates the repository itself: esvet must exit 0.
func TestRunOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	code, stdout, stderr := runCLI(t, "-root", filepath.Join("..", ".."))
	if code != 0 {
		t.Fatalf("esvet on the repository: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestWarnSeverityDoesNotGate: a module whose only findings are
// warn-severity must print them but exit 0.
func TestWarnSeverityDoesNotGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"internal/core/cfg.go": `package core

// Config configures the fixture.
type Config struct {
	Undocumented int
}
`,
	})
	code, stdout, stderr := runCLI(t, "-root", dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (warnings are report-only)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[configdoc] warning:") {
		t.Fatalf("warning not reported:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s), 0 gating") {
		t.Fatalf("summary missing: %q", stderr)
	}
}

// runGolden executes one esvet invocation against the fixture module
// under testdata/module and compares stdout byte-for-byte with a golden
// file. Regenerate with UPDATE_GOLDEN=1 go test ./cmd/esvet.
func runGolden(t *testing.T, golden string, args ...string) {
	t.Helper()
	code, stdout, stderr := runCLI(t, append(args, "-root", filepath.Join("testdata", "module"))...)
	// The fixture trips one error-severity finding, so the run must gate.
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	path := filepath.Join("testdata", golden)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("output differs from %s (rerun with UPDATE_GOLDEN=1 if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, stdout, want)
	}
}

// TestGoldenJSON pins the -json diagnostic schema: field names,
// severity strings, module-relative slash paths, and the
// file/line/col/check sort order.
func TestGoldenJSON(t *testing.T) {
	runGolden(t, "golden.json", "-json")
}

// TestGoldenSARIF pins the -sarif output: the 2.1.0 envelope, one rule
// per registered check with its gating level, and result locations.
func TestGoldenSARIF(t *testing.T) {
	runGolden(t, "golden.sarif", "-sarif")
}

// TestJSONSarifExclusive: the two machine formats cannot combine.
func TestJSONSarifExclusive(t *testing.T) {
	code, _, stderr := runCLI(t, "-json", "-sarif")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestListMatchesReadme pins `esvet -list` against the README check
// table: same checks, same order, same severity. A check added to the
// registry without a README row (or vice versa) fails here.
func TestListMatchesReadme(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d (stderr: %s)", code, stderr)
	}
	type row struct{ name, severity string }
	var listed []row
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("unparseable -list line %q", line)
		}
		listed = append(listed, row{fields[0], fields[1]})
	}

	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Check-table rows look like: | `name` | severity | invariant ... |
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\| (error|warn) \\|")
	var documented []row
	for _, m := range rowRE.FindAllStringSubmatch(string(readme), -1) {
		documented = append(documented, row{m[1], m[2]})
	}

	if len(listed) != len(documented) {
		t.Fatalf("-list has %d checks, README table has %d rows:\n%v\nvs\n%v", len(listed), len(documented), listed, documented)
	}
	for i := range listed {
		if listed[i] != documented[i] {
			t.Errorf("row %d: -list says %v, README says %v", i, listed[i], documented[i])
		}
	}
	// And both must cover the registry exactly, in registration order.
	names := analysis.CheckNames()
	if len(names) != len(listed) {
		t.Fatalf("registry has %d checks, -list shows %d", len(names), len(listed))
	}
	for i, name := range names {
		if listed[i].name != name {
			t.Errorf("registry order %d is %q, -list shows %q", i, name, listed[i].name)
		}
	}
}
