// Command esvet runs the project's static-analysis suite: the invariant
// checks of internal/analysis that the Go compiler and `go vet` cannot
// express (deterministic randomness, wall-clock hygiene, goroutine
// lifecycles, lock copies, dropped transport errors, library prints,
// sleep-polling in the runtime, rank-divergent collectives, hot-path
// allocations, buffer ownership after SendOwned, undocumented config
// fields).
//
// Usage:
//
//	go run ./cmd/esvet            # analyze the enclosing module
//	go run ./cmd/esvet ./...      # same (the pattern is accepted for familiarity)
//	go run ./cmd/esvet -json      # machine-readable diagnostics
//	go run ./cmd/esvet -sarif     # SARIF 2.1.0 for code-scanning upload
//	go run ./cmd/esvet -check norand,mpierr
//	go run ./cmd/esvet -list      # print the check catalogue
//
// Exit status: 0 clean (warn-severity findings are report-only),
// 1 error-severity findings reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"edgeswitch/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("esvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	checkList := fs.String("check", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	root := fs.String("root", "", "module root to analyze (default: module enclosing the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "esvet: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-14s %-5s %s\n", c.Name, c.Severity, c.Doc)
		}
		return 0
	}

	checks, err := selectChecks(*checkList)
	if err != nil {
		fmt.Fprintln(stderr, "esvet:", err)
		return 2
	}

	dir := *root
	if dir == "" {
		// Accept a single "./..."-style pattern or directory operand.
		if rest := fs.Args(); len(rest) == 1 && !strings.Contains(rest[0], "...") {
			dir = rest[0]
		} else {
			dir = "."
		}
	}
	moduleRoot, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "esvet:", err)
		return 2
	}

	mod, err := analysis.LoadModule(moduleRoot)
	if err != nil {
		fmt.Fprintln(stderr, "esvet:", err)
		return 2
	}
	mod.TypeCheck()
	for _, p := range mod.Packages {
		if p.TypeErr != nil {
			// Checks degrade to their syntactic forms; tell the user why.
			fmt.Fprintf(stderr, "esvet: warning: type-checking %s: %v\n", p.RelPath, p.TypeErr)
		}
	}

	diags := analysis.RunChecks(mod.Packages, checks)
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "esvet:", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, checks, diags); err != nil {
			fmt.Fprintln(stderr, "esvet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	// Only error-severity findings gate the build; warnings are
	// report-only (they still appear in every output format above).
	errs := 0
	for _, d := range diags {
		if d.Severity != analysis.SevWarn.String() {
			errs++
		}
	}
	if len(diags) > 0 && !*jsonOut && !*sarifOut {
		fmt.Fprintf(stderr, "esvet: %d finding(s), %d gating\n", len(diags), errs)
	}
	if errs > 0 {
		return 1
	}
	return 0
}

// selectChecks resolves the -check flag into a check list (nil = all).
func selectChecks(spec string) ([]*analysis.Check, error) {
	if spec == "" {
		return nil, nil
	}
	byName := make(map[string]*analysis.Check)
	for _, c := range analysis.Checks() {
		byName[c.Name] = c
	}
	var out []*analysis.Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, strings.Join(analysis.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-check selected no checks")
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest directory with go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
