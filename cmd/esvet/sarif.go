package main

import (
	"encoding/json"
	"io"

	"edgeswitch/internal/analysis"
)

// SARIF 2.1.0 output, the subset GitHub code scanning ingests: one run,
// one driver, one rule per registered check, one result per diagnostic.
// Struct-literal encoding keeps the output deterministic (field order is
// fixed, results arrive pre-sorted from RunChecks).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifText    `json:"shortDescription"`
	DefaultConfiguration sarifDefault `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifDefault struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps the suite's severity strings onto SARIF levels.
func sarifLevel(severity string) string {
	if severity == analysis.SevWarn.String() {
		return "warning"
	}
	return "error"
}

// writeSARIF emits the diagnostics of one module analysis as a SARIF
// log. checks is the set that ran (rules metadata); nil means all.
func writeSARIF(w io.Writer, checks []*analysis.Check, diags []analysis.Diagnostic) error {
	if checks == nil {
		checks = analysis.Checks()
	}
	rules := make([]sarifRule, len(checks))
	for i, c := range checks {
		rules[i] = sarifRule{
			ID:                   c.Name,
			ShortDescription:     sarifText{Text: c.Doc},
			DefaultConfiguration: sarifDefault{Level: sarifLevel(c.Severity.String())},
		}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Check,
			Level:   sarifLevel(d.Severity),
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "esvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
