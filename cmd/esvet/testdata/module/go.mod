module fixture.example/app

go 1.22
