// Package core is the golden-test fixture: a tiny module that trips a
// deterministic mix of error- and warn-severity checks so the JSON and
// SARIF outputs pin the diagnostic schema, module-relative paths, sort
// order, and severity strings.
package core

import "math/rand"

// Config configures the fixture run.
type Config struct {
	// Seed seeds the run.
	Seed   int64
	Fanout int
}

// Draw violates norand: randomness outside internal/rng.
func Draw() int { return rand.Int() }
