// Command multinomial demonstrates the paper's parallel multinomial
// random-variate generator (§6, Algorithm 5): N trials are distributed
// over p goroutine ranks, each draws its share with the conditional
// binomial method, and an all-to-all transpose assembles the counts.
//
// Example:
//
//	multinomial -n 1000000000 -l 20 -p 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edgeswitch/internal/mpi"
	"edgeswitch/internal/randvar"
	"edgeswitch/internal/rng"
)

func main() {
	var (
		n    = flag.Int64("n", 1_000_000_000, "number of trials N")
		l    = flag.Int("l", 20, "number of outcomes (uniform probabilities)")
		p    = flag.Int("p", 8, "number of ranks")
		seed = flag.Uint64("seed", 1, "random seed")
		show = flag.Int("show", 10, "print the first k counts")
	)
	flag.Parse()
	if err := run(*n, *l, *p, *seed, *show); err != nil {
		fmt.Fprintln(os.Stderr, "multinomial:", err)
		os.Exit(1)
	}
}

func run(n int64, l, p int, seed uint64, show int) error {
	q := make([]float64, l)
	for i := range q {
		q[i] = 1 / float64(l)
	}
	w, err := mpi.NewWorld(p)
	if err != nil {
		return err
	}
	defer w.Close()
	var counts []int64
	var elapsed time.Duration
	err = w.Run(func(c *mpi.Comm) error {
		r := rng.Split(seed, c.Rank())
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		full, err := randvar.ParallelMultinomialGathered(c, r, n, q)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			elapsed = time.Since(start)
			counts = full
		}
		return nil
	})
	if err != nil {
		return err
	}
	var sum int64
	for _, v := range counts {
		sum += v
	}
	fmt.Printf("N=%d l=%d p=%d: generated in %v (sum check: %d)\n", n, l, p, elapsed, sum)
	if show > l {
		show = l
	}
	expected := float64(n) / float64(l)
	for i := 0; i < show; i++ {
		fmt.Printf("X[%d] = %d (expected %.0f, deviation %+.4f%%)\n",
			i, counts[i], expected, 100*(float64(counts[i])-expected)/expected)
	}
	return nil
}
