package main

import "testing"

func TestRun(t *testing.T) {
	if err := run(1_000_000, 5, 3, 7, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunShowClamped(t *testing.T) {
	// show > l must not panic.
	if err := run(10_000, 3, 2, 1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadWorld(t *testing.T) {
	if err := run(100, 2, 0, 1, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
}
