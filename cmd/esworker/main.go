// Command esworker runs one rank of a fully distributed parallel
// edge-switch job: each OS process hosts one rank, rank 0 doubles as the
// TCP coordinator, and every process loads the graph file and keeps only
// its own partition. This is the multi-process counterpart of the
// in-process `edgeswitch -p N` mode — ranks share nothing but the wire.
//
// Launch a 4-rank job on one machine:
//
//	esworker -graph g.txt -size 4 -rank 0 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 1 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 2 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 3 -coordinator 127.0.0.1:9870 -x 1 &
//
// or let rank 0 spawn its peers locally:
//
//	esworker -graph g.txt -size 4 -rank 0 -coordinator 127.0.0.1:9870 -x 1 -spawn
//
// With -gen (models pa, contact) no graph file exists at all: every rank
// derives its own partition from the shared (model, n, d, seed) spec via
// the counter-based generator — the communication-free bootstrap. The
// resulting graph is identical at every -size for the same seed.
//
//	esworker -gen pa -n 10000000 -d 10 -size 8 -rank 0 -coordinator 127.0.0.1:9870 -spawn
//
// With -checkpoint-dir the world writes a coordinated checkpoint at every
// step boundary (see DESIGN.md "Checkpoints & recovery"). A rank that
// observes a lost peer then rolls the world back to the last committed
// checkpoint instead of faulting the job: every surviving process rejoins
// a restarted world on the same coordinator address and resumes from its
// own snapshot. With -spawn, rank 0 respawns the lost ranks itself (with
// -restore appended); externally launched replacements join with the lost
// rank's id and -restore:
//
//	esworker -graph g.txt -size 4 -rank 2 -coordinator 127.0.0.1:9870 \
//	    -checkpoint-dir ck/ -restore
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"time"

	"edgeswitch"
	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
)

// workerOpts carries every esworker flag; one value describes the whole
// process so the spawn/rollback paths can rebuild child command lines
// from it verbatim.
type workerOpts struct {
	graphPath    string
	genMod       string
	genN, genD   int
	size, rank   int
	coord        string
	tOps         int64
	x            float64
	scheme, algo string
	steps        int64
	seed         uint64
	outPath      string
	spawn        bool
	timeout      time.Duration
	writeTO      time.Duration
	ckDir        string
	ckEvery      int64
	restore      bool
	maxRollbacks int
	spillDir     string
	overlay      int64
}

func main() {
	var o workerOpts
	flag.StringVar(&o.graphPath, "graph", "", "edge-list file every rank loads (text, or binary with .bin)")
	flag.StringVar(&o.genMod, "gen", "", "generate instead of loading: counter-based model (pa, contact); each rank builds only its own partition")
	flag.IntVar(&o.genN, "n", 100000, "vertex count (with -gen)")
	flag.IntVar(&o.genD, "d", 10, "degree parameter (with -gen: pa edges per vertex, contact average degree)")
	flag.IntVar(&o.size, "size", 1, "total number of ranks")
	flag.IntVar(&o.rank, "rank", 0, "this process's rank")
	flag.StringVar(&o.coord, "coordinator", "127.0.0.1:9870", "rank 0's listen address")
	flag.Int64Var(&o.tOps, "t", 0, "edge switch operations (0: derive from -x)")
	flag.Float64Var(&o.x, "x", 1, "target visit rate when -t is 0")
	flag.StringVar(&o.scheme, "scheme", "HP-U", "partitioning scheme: CP, HP-D, HP-M, HP-U")
	flag.StringVar(&o.algo, "algo", "edge-switch", "randomization algorithm: edge-switch, curveball (curveball: -t counts global trade rounds, -steps is ignored; must match across ranks)")
	flag.Int64Var(&o.steps, "steps", 1, "number of steps")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed (must match across ranks; with -gen it defines the graph)")
	flag.StringVar(&o.outPath, "out", "", "rank 0 writes the switched graph here")
	flag.BoolVar(&o.spawn, "spawn", false, "rank 0 spawns ranks 1..size-1 as local child processes")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "coordinator dial timeout")
	flag.DurationVar(&o.writeTO, "write-timeout", 30*time.Second, "transport write deadline (a dead peer surfaces within this)")
	flag.StringVar(&o.ckDir, "checkpoint-dir", "", "directory for coordinated step-boundary checkpoints (empty: checkpointing off)")
	flag.Int64Var(&o.ckEvery, "checkpoint-every", 1, "checkpoint every k-th step boundary (with -checkpoint-dir)")
	flag.BoolVar(&o.restore, "restore", false, "resume from the newest restorable checkpoint in -checkpoint-dir before switching")
	flag.IntVar(&o.maxRollbacks, "max-rollbacks", 3, "lost-peer rollback recoveries to attempt before failing (with -checkpoint-dir)")
	flag.StringVar(&o.spillDir, "spill-dir", "", "spill this rank's partition to an mmap'd segment under this directory (tiered out-of-core store; safe to share across ranks — each uses its own subdirectory)")
	flag.Int64Var(&o.overlay, "overlay-budget", 0, "overlay entry cap before compaction with -spill-dir (0: auto)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "esworker[%d]: %v\n", o.rank, err)
		os.Exit(1)
	}
}

// genSpec maps the -gen/-n/-d flags to a counter-based generator spec.
func genSpec(model string, n, d int, seed uint64) (*pergen.Spec, error) {
	switch model {
	case "pa":
		return &pergen.Spec{Model: pergen.ModelPA, Seed: seed, N: n, D: d}, nil
	case "contact":
		return &pergen.Spec{Model: pergen.ModelContact, Seed: seed, N: n,
			Contact: gen.ContactConfig{AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8}}, nil
	default:
		return nil, fmt.Errorf("-gen supports models pa and contact, not %q", model)
	}
}

func run(o workerOpts) error {
	if o.restore && o.ckDir == "" {
		return fmt.Errorf("-restore needs -checkpoint-dir")
	}
	var g *graph.Graph
	var spec *pergen.Spec
	var mEdges int64
	var err error
	switch {
	case o.graphPath != "" && o.genMod != "":
		return fmt.Errorf("use either -graph or -gen, not both")
	case o.genMod != "":
		if spec, err = genSpec(o.genMod, o.genN, o.genD, o.seed); err != nil {
			return err
		}
		if err = spec.Validate(); err != nil {
			return err
		}
		mEdges = spec.MaxEdges()
	case o.graphPath != "":
		if g, err = edgeswitch.LoadGraphFile(o.graphPath, o.seed); err != nil {
			return err
		}
		mEdges = g.M()
	default:
		return fmt.Errorf("need -graph FILE or -gen MODEL")
	}
	// Every rank derives the same t from the same flags — with -gen this
	// needs no collective because MaxEdges is deterministic in the spec.
	t := o.tOps
	targetX := 0.0
	if t == 0 {
		t, err = edgeswitch.TargetOpsFor(edgeswitch.Algorithm(o.algo), mEdges, o.x)
		if err != nil {
			return err
		}
		if edgeswitch.Algorithm(o.algo) == edgeswitch.Curveball {
			// The round bound is conservative; stop at the first round
			// boundary where the observed rate reaches the target.
			targetX = o.x
		}
	}
	stepSize := int64(0)
	if o.steps > 1 {
		stepSize = (t + o.steps - 1) / o.steps
	}

	children := map[int]*exec.Cmd{}
	if o.spawn && o.rank == 0 {
		// Forward the RAW -t flag, not the derived t: a child that gets an
		// explicit t skips the derivation above and would never arm the
		// visit-rate early stop, diverging from this rank at the stop
		// boundary (a guaranteed deadlock for a curveball -x run). With
		// tOps=0 every rank re-derives the same t from the same flags.
		if err := spawnChildren(o, children); err != nil {
			_ = reapChildren(children, true)
			return err
		}
	}

	// The rollback loop: a lost peer with checkpointing armed rolls the
	// world back instead of failing it. Every process — rank 0 and
	// spawned or external workers alike — runs this same loop, so the
	// survivors of a fault all tear down, rejoin a restarted world on the
	// same coordinator address, and resume from the agreed checkpoint;
	// rank 0 additionally replaces its lost children.
	restore := o.restore
	for attempt := 0; ; attempt++ {
		lost, err := runRank(g, spec, o, t, targetX, stepSize, restore)
		if err == nil {
			break
		}
		if o.ckDir == "" || !errors.Is(err, mpi.ErrPeerLost) || attempt >= o.maxRollbacks {
			_ = reapChildren(children, true)
			return err
		}
		fmt.Fprintf(os.Stderr, "esworker[%d]: peer lost (%v); rolling back to the last checkpoint (attempt %d of %d)\n",
			o.rank, err, attempt+1, o.maxRollbacks)
		restore = true
		if o.spawn && o.rank == 0 {
			if rerr := respawnLost(o, children, lost); rerr != nil {
				_ = reapChildren(children, true)
				return rerr
			}
		}
	}
	// Rank 0 succeeded; a child may still have failed on its own (its
	// stderr went to ours). Report the first such failure.
	return reapChildren(children, false)
}

// childArgs builds the command line for spawned rank r. Every rank must
// derive identical (t, targetX, stepSize) from identical flags, so the
// caller forwards the RAW -t/-x flag values verbatim — never a derived
// t, which would suppress the child's visit-rate early stop and deadlock
// it against ranks that do stop. With restore set the child resumes from
// the shared checkpoint directory (a replacement for a lost rank, or a
// world-wide restart).
func childArgs(o workerOpts, r int, restore bool) []string {
	args := []string{
		"-size", strconv.Itoa(o.size),
		"-rank", strconv.Itoa(r),
		"-coordinator", o.coord,
		"-t", strconv.FormatInt(o.tOps, 10),
		"-x", strconv.FormatFloat(o.x, 'g', -1, 64),
		"-scheme", o.scheme,
		"-algo", o.algo,
		"-steps", strconv.FormatInt(o.steps, 10),
		"-seed", strconv.FormatUint(o.seed, 10),
		"-timeout", o.timeout.String(),
	}
	if o.genMod != "" {
		// The generation spec must reach every rank verbatim — the
		// seed and parameters ARE the graph.
		args = append(args, "-gen", o.genMod, "-n", strconv.Itoa(o.genN), "-d", strconv.Itoa(o.genD))
	} else {
		args = append(args, "-graph", o.graphPath)
	}
	if o.ckDir != "" {
		args = append(args,
			"-checkpoint-dir", o.ckDir,
			"-checkpoint-every", strconv.FormatInt(o.ckEvery, 10),
			"-max-rollbacks", strconv.Itoa(o.maxRollbacks))
	}
	if o.spillDir != "" {
		args = append(args, "-spill-dir", o.spillDir,
			"-overlay-budget", strconv.FormatInt(o.overlay, 10))
	}
	if restore {
		args = append(args, "-restore")
	}
	return args
}

// spawnChildren starts ranks 1..size-1 as local processes running this
// executable, recording them in children. On a start failure the ranks
// started so far remain recorded, so the caller can reap them.
func spawnChildren(o workerOpts, children map[int]*exec.Cmd) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for r := 1; r < o.size; r++ {
		cmd := exec.Command(exe, childArgs(o, r, o.restore)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning rank %d: %w", r, err)
		}
		children[r] = cmd
	}
	return nil
}

// respawnLost replaces the lost ranks with fresh children joining in
// restore mode. The dead process (if it was ours) is reaped first — it
// is already gone or wedged in the faulted world, and its slot must be
// free before the replacement dials in.
func respawnLost(o workerOpts, children map[int]*exec.Cmd, lost []int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for _, r := range lost {
		if r == o.rank {
			continue
		}
		if old := children[r]; old != nil {
			_ = old.Process.Kill()
			_ = old.Wait()
			delete(children, r)
		}
		cmd := exec.Command(exe, childArgs(o, r, true)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("respawning lost rank %d: %w", r, err)
		}
		children[r] = cmd
	}
	return nil
}

// reapChildren waits for every spawned rank. With kill set it terminates
// them first (the rank-0 failure path: children must not be orphaned) and
// their exit statuses are not reported — the caller already holds the
// root cause. Without kill it reports the first child failure by rank
// order.
func reapChildren(children map[int]*exec.Cmd, kill bool) error {
	if kill {
		for _, cmd := range children {
			_ = cmd.Process.Kill()
		}
	}
	ranks := make([]int, 0, len(children))
	for r := range children {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var firstErr error
	for _, r := range ranks {
		if err := children[r].Wait(); err != nil && !kill && firstErr == nil {
			firstErr = fmt.Errorf("child rank %d failed: %w", r, err)
		}
	}
	return firstErr
}

// runRank joins the distributed world, runs this rank, and (on rank 0)
// reports and saves the result. Exactly one of g (loaded graph) and spec
// (distributed generation) is non-nil. The ranks this process observed
// as lost are returned alongside any error, for the rollback loop's
// respawn decision.
func runRank(g *graph.Graph, spec *pergen.Spec, o workerOpts, t int64, targetX float64,
	stepSize int64, restore bool) (lost []int, err error) {

	pw, err := mpi.JoinDistributed(o.rank, o.size, o.coord, o.timeout, mpi.WithWriteTimeout(o.writeTO))
	if err != nil {
		return nil, err
	}
	defer func() {
		// Capture the fault record before teardown discards it; teardown
		// errors surface transport faults recorded while the world was
		// live but must not mask the run's own error.
		lost = pw.LostRanks()
		if cerr := pw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var res *core.Result
	err = pw.Run(func(c *mpi.Comm) error {
		r, err := core.RunRank(c, g, t, core.Config{
			Scheme:          core.Scheme(o.scheme),
			StepSize:        stepSize,
			Seed:            o.seed,
			Algorithm:       core.Algorithm(o.algo),
			TargetVisitRate: targetX,
			DistributedGen:  spec,
			CheckpointDir:   o.ckDir,
			CheckpointEvery: o.ckEvery,
			Restore:         restore,
			SpillDir:        o.spillDir,
			OverlayBudget:   o.overlay,
		})
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return lost, err
	}

	if o.rank == 0 {
		if res.RestoredStep > 0 {
			fmt.Printf("resumed from checkpoint at step %d\n", res.RestoredStep)
		}
		fmt.Printf("distributed run complete: %d ops (%d restarts, %d forfeited) in %v across %d processes\n",
			res.Ops, res.Restarts, res.Forfeited, res.Elapsed, o.size)
		fmt.Printf("observed visit rate: %.6f\n", res.VisitRate)
		for i := range res.RankOps {
			fmt.Printf("rank %d: %d ops, %d->%d edges, %d msgs\n", i,
				res.RankOps[i], res.RankInitialEdges[i], res.RankFinalEdges[i], res.RankMessages[i])
		}
		if o.outPath != "" {
			if err := edgeswitch.SaveGraphFile(o.outPath, res.Graph); err != nil {
				return lost, err
			}
			fmt.Printf("wrote %s\n", o.outPath)
		}
	}
	return lost, nil
}
