// Command esworker runs one rank of a fully distributed parallel
// edge-switch job: each OS process hosts one rank, rank 0 doubles as the
// TCP coordinator, and every process loads the graph file and keeps only
// its own partition. This is the multi-process counterpart of the
// in-process `edgeswitch -p N` mode — ranks share nothing but the wire.
//
// Launch a 4-rank job on one machine:
//
//	esworker -graph g.txt -size 4 -rank 0 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 1 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 2 -coordinator 127.0.0.1:9870 -x 1 &
//	esworker -graph g.txt -size 4 -rank 3 -coordinator 127.0.0.1:9870 -x 1 &
//
// or let rank 0 spawn its peers locally:
//
//	esworker -graph g.txt -size 4 -rank 0 -coordinator 127.0.0.1:9870 -x 1 -spawn
//
// With -gen (models pa, contact) no graph file exists at all: every rank
// derives its own partition from the shared (model, n, d, seed) spec via
// the counter-based generator — the communication-free bootstrap. The
// resulting graph is identical at every -size for the same seed.
//
//	esworker -gen pa -n 10000000 -d 10 -size 8 -rank 0 -coordinator 127.0.0.1:9870 -spawn
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"edgeswitch"
	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file every rank loads (text, or binary with .bin)")
		genMod    = flag.String("gen", "", "generate instead of loading: counter-based model (pa, contact); each rank builds only its own partition")
		genN      = flag.Int("n", 100000, "vertex count (with -gen)")
		genD      = flag.Int("d", 10, "degree parameter (with -gen: pa edges per vertex, contact average degree)")
		size      = flag.Int("size", 1, "total number of ranks")
		rank      = flag.Int("rank", 0, "this process's rank")
		coord     = flag.String("coordinator", "127.0.0.1:9870", "rank 0's listen address")
		tOps      = flag.Int64("t", 0, "edge switch operations (0: derive from -x)")
		x         = flag.Float64("x", 1, "target visit rate when -t is 0")
		scheme    = flag.String("scheme", "HP-U", "partitioning scheme: CP, HP-D, HP-M, HP-U")
		algo      = flag.String("algo", "edge-switch", "randomization algorithm: edge-switch, curveball (curveball: -t counts global trade rounds, -steps is ignored; must match across ranks)")
		steps     = flag.Int64("steps", 1, "number of steps")
		seed      = flag.Uint64("seed", 1, "random seed (must match across ranks; with -gen it defines the graph)")
		outPath   = flag.String("out", "", "rank 0 writes the switched graph here")
		spawn     = flag.Bool("spawn", false, "rank 0 spawns ranks 1..size-1 as local child processes")
		timeout   = flag.Duration("timeout", 30*time.Second, "coordinator dial timeout")
		writeTO   = flag.Duration("write-timeout", 30*time.Second, "transport write deadline (a dead peer surfaces within this)")
	)
	flag.Parse()
	if err := run(*graphPath, *genMod, *genN, *genD, *size, *rank, *coord, *tOps, *x, *scheme, *algo, *steps, *seed, *outPath, *spawn, *timeout, *writeTO); err != nil {
		fmt.Fprintf(os.Stderr, "esworker[%d]: %v\n", *rank, err)
		os.Exit(1)
	}
}

// genSpec maps the -gen/-n/-d flags to a counter-based generator spec.
func genSpec(model string, n, d int, seed uint64) (*pergen.Spec, error) {
	switch model {
	case "pa":
		return &pergen.Spec{Model: pergen.ModelPA, Seed: seed, N: n, D: d}, nil
	case "contact":
		return &pergen.Spec{Model: pergen.ModelContact, Seed: seed, N: n,
			Contact: gen.ContactConfig{AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8}}, nil
	default:
		return nil, fmt.Errorf("-gen supports models pa and contact, not %q", model)
	}
}

func run(graphPath, genMod string, genN, genD, size, rank int, coord string, tOps int64, x float64,
	scheme, algo string, steps int64, seed uint64, outPath string, spawn bool, timeout, writeTO time.Duration) error {

	var g *graph.Graph
	var spec *pergen.Spec
	var mEdges int64
	var err error
	switch {
	case graphPath != "" && genMod != "":
		return fmt.Errorf("use either -graph or -gen, not both")
	case genMod != "":
		if spec, err = genSpec(genMod, genN, genD, seed); err != nil {
			return err
		}
		if err = spec.Validate(); err != nil {
			return err
		}
		mEdges = spec.MaxEdges()
	case graphPath != "":
		if g, err = edgeswitch.LoadGraphFile(graphPath, seed); err != nil {
			return err
		}
		mEdges = g.M()
	default:
		return fmt.Errorf("need -graph FILE or -gen MODEL")
	}
	// Every rank derives the same t from the same flags — with -gen this
	// needs no collective because MaxEdges is deterministic in the spec.
	t := tOps
	targetX := 0.0
	if t == 0 {
		t, err = edgeswitch.TargetOpsFor(edgeswitch.Algorithm(algo), mEdges, x)
		if err != nil {
			return err
		}
		if edgeswitch.Algorithm(algo) == edgeswitch.Curveball {
			// The round bound is conservative; stop at the first round
			// boundary where the observed rate reaches the target.
			targetX = x
		}
	}
	stepSize := int64(0)
	if steps > 1 {
		stepSize = (t + steps - 1) / steps
	}

	var children []*exec.Cmd
	if spawn && rank == 0 {
		// Forward the RAW -t flag, not the derived t: a child that gets an
		// explicit t skips the derivation above and would never arm the
		// visit-rate early stop, diverging from this rank at the stop
		// boundary (a guaranteed deadlock for a curveball -x run). With
		// tOps=0 every rank re-derives the same t from the same flags.
		children, err = spawnChildren(graphPath, genMod, genN, genD, size, coord, tOps, x, scheme, algo, steps, seed, timeout)
		if err != nil {
			_ = reapChildren(children, true)
			return err
		}
	}
	if err := runRank(g, spec, size, rank, coord, t, targetX, scheme, algo, stepSize, seed, outPath, timeout, writeTO); err != nil {
		// Rank 0 failed (bad join, lost peer, ...): kill and reap the
		// spawned ranks instead of orphaning them, and report our error —
		// it is the cause, the children's exits are consequences.
		_ = reapChildren(children, true)
		return err
	}
	// Rank 0 succeeded; a child may still have failed on its own (its
	// stderr went to ours). Report the first such failure.
	return reapChildren(children, false)
}

// childArgs builds the command line for spawned rank r. Every rank must
// derive identical (t, targetX, stepSize) from identical flags, so the
// caller forwards the RAW -t/-x flag values verbatim — never a derived
// t, which would suppress the child's visit-rate early stop and deadlock
// it against ranks that do stop.
func childArgs(graphPath, genMod string, genN, genD, size, r int, coord string, t int64, x float64,
	scheme, algo string, steps int64, seed uint64, timeout time.Duration) []string {

	args := []string{
		"-size", strconv.Itoa(size),
		"-rank", strconv.Itoa(r),
		"-coordinator", coord,
		"-t", strconv.FormatInt(t, 10),
		"-x", strconv.FormatFloat(x, 'g', -1, 64),
		"-scheme", scheme,
		"-algo", algo,
		"-steps", strconv.FormatInt(steps, 10),
		"-seed", strconv.FormatUint(seed, 10),
		"-timeout", timeout.String(),
	}
	if genMod != "" {
		// The generation spec must reach every rank verbatim — the
		// seed and parameters ARE the graph.
		args = append(args, "-gen", genMod, "-n", strconv.Itoa(genN), "-d", strconv.Itoa(genD))
	} else {
		args = append(args, "-graph", graphPath)
	}
	return args
}

// spawnChildren starts ranks 1..size-1 as local processes running this
// executable. On a start failure it returns the children started so far
// alongside the error, so the caller can reap them.
func spawnChildren(graphPath, genMod string, genN, genD, size int, coord string, t int64, x float64,
	scheme, algo string, steps int64, seed uint64, timeout time.Duration) ([]*exec.Cmd, error) {

	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var children []*exec.Cmd
	for r := 1; r < size; r++ {
		cmd := exec.Command(exe, childArgs(graphPath, genMod, genN, genD, size, r, coord, t, x, scheme, algo, steps, seed, timeout)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return children, fmt.Errorf("spawning rank %d: %w", r, err)
		}
		children = append(children, cmd)
	}
	return children, nil
}

// reapChildren waits for every spawned rank. With kill set it terminates
// them first (the rank-0 failure path: children must not be orphaned) and
// their exit statuses are not reported — the caller already holds the
// root cause. Without kill it reports the first child failure.
func reapChildren(children []*exec.Cmd, kill bool) error {
	if kill {
		for _, cmd := range children {
			_ = cmd.Process.Kill()
		}
	}
	var firstErr error
	for i, cmd := range children {
		if err := cmd.Wait(); err != nil && !kill && firstErr == nil {
			firstErr = fmt.Errorf("child rank %d failed: %w", i+1, err)
		}
	}
	return firstErr
}

// runRank joins the distributed world, runs this rank, and (on rank 0)
// reports and saves the result. Exactly one of g (loaded graph) and spec
// (distributed generation) is non-nil.
func runRank(g *graph.Graph, spec *pergen.Spec, size, rank int, coord string, t int64, targetX float64,
	scheme, algo string, stepSize int64, seed uint64, outPath string, timeout, writeTO time.Duration) (err error) {

	pw, err := mpi.JoinDistributed(rank, size, coord, timeout, mpi.WithWriteTimeout(writeTO))
	if err != nil {
		return err
	}
	defer func() {
		// Teardown surfaces transport faults recorded while the world was
		// live; do not let them mask the run's own error.
		if cerr := pw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var res *core.Result
	err = pw.Run(func(c *mpi.Comm) error {
		r, err := core.RunRank(c, g, t, core.Config{
			Scheme:          core.Scheme(scheme),
			StepSize:        stepSize,
			Seed:            seed,
			Algorithm:       core.Algorithm(algo),
			TargetVisitRate: targetX,
			DistributedGen:  spec,
		})
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return err
	}

	if rank == 0 {
		fmt.Printf("distributed run complete: %d ops (%d restarts, %d forfeited) in %v across %d processes\n",
			res.Ops, res.Restarts, res.Forfeited, res.Elapsed, size)
		fmt.Printf("observed visit rate: %.6f\n", res.VisitRate)
		for i := range res.RankOps {
			fmt.Printf("rank %d: %d ops, %d->%d edges, %d msgs\n", i,
				res.RankOps[i], res.RankInitialEdges[i], res.RankFinalEdges[i], res.RankMessages[i])
		}
		if outPath != "" {
			if err := edgeswitch.SaveGraphFile(outPath, res.Graph); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", outPath)
		}
	}
	return nil
}
