package main

import (
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# 12 12\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n9 10\n10 11\n0 11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleRank(t *testing.T) {
	g := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "out.txt")
	err := run(g, 1, 0, freePort(t), 20, 1, "CP", 1, 3, out, false, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
}

// TestRunMultiRankInProcess drives the worker's run() once per "process"
// concurrently — the same path cmd-line invocations exercise across OS
// processes.
func TestRunMultiRankInProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = run(g, size, rank, addr, 30, 1, "HP-D", 3, 9, "", false, 10*time.Second)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 1, 0, "127.0.0.1:1", 10, 1, "CP", 1, 1, "", false, time.Second); err == nil {
		t.Fatal("missing graph accepted")
	}
	if err := run("/nonexistent/file.txt", 1, 0, "127.0.0.1:1", 10, 1, "CP", 1, 1, "", false, time.Second); err == nil {
		t.Fatal("missing file accepted")
	}
}
