package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the worker entry point for the multi-process tests:
// when ESWORKER_TEST_RANK is set, the test binary behaves as one esworker
// rank instead of running the test suite. This drives the real ProcWorld
// path across genuine OS processes (the -spawn code path uses
// os.Executable, which inside `go test` is the test binary itself, so the
// helper-process pattern is the faithful way to multi-process coverage).
func TestMain(m *testing.M) {
	if r := os.Getenv("ESWORKER_TEST_RANK"); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		size, err := strconv.Atoi(os.Getenv("ESWORKER_TEST_SIZE"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		steps := int64(3)
		if os.Getenv("ESWORKER_TEST_ALGO") == "curveball" {
			steps = 1
		}
		tOps, x := int64(30), 1.0
		if tv := os.Getenv("ESWORKER_TEST_T"); tv != "" {
			if tOps, err = strconv.ParseInt(tv, 10, 64); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if xv := os.Getenv("ESWORKER_TEST_X"); xv != "" {
			if x, err = strconv.ParseFloat(xv, 64); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		err = run(os.Getenv("ESWORKER_TEST_GRAPH"), os.Getenv("ESWORKER_TEST_GEN"), 600, 4, size, rank, os.Getenv("ESWORKER_TEST_COORD"),
			tOps, x, "HP-D", os.Getenv("ESWORKER_TEST_ALGO"), steps, 9, "", false, 10*time.Second, 10*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esworker[%d]: %v\n", rank, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# 12 12\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n9 10\n10 11\n0 11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleRank(t *testing.T) {
	g := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "out.txt")
	err := run(g, "", 0, 0, 1, 0, freePort(t), 20, 1, "CP", "", 1, 3, out, false, 5*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
}

// TestRunMultiRankInProcess drives the worker's run() once per "process"
// concurrently — the same path cmd-line invocations exercise across OS
// processes.
func TestRunMultiRankInProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = run(g, "", 0, 0, size, rank, addr, 30, 1, "HP-D", "", 3, 9, "", false, 10*time.Second, 10*time.Second)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestRunMultiProcess runs a full world across real OS processes: ranks
// 1..2 are re-executions of the test binary (see TestMain), rank 0 runs
// in-process. This is the CI leg for the multi-process ProcWorld path,
// which the in-process race gate cannot cover.
func TestRunMultiProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var children []*exec.Cmd
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GRAPH="+g,
			"ESWORKER_TEST_COORD="+addr,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children = append(children, cmd)
	}
	runErr := run(g, "", 0, 0, size, 0, addr, 30, 1, "HP-D", "", 3, 9, "", false, 20*time.Second, 10*time.Second)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestRunGenMultiRank runs a distributed world where no rank ever loads
// a graph file: the partitions are generated communication-free from the
// shared spec.
func TestRunGenMultiRank(t *testing.T) {
	addr := freePort(t)
	out := filepath.Join(t.TempDir(), "gen-out.txt")
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := ""
			if rank == 0 {
				o = out
			}
			errs[rank] = run("", "pa", 600, 4, size, rank, addr, 50, 1, "CP", "", 1, 9, o, false, 10*time.Second, 10*time.Second)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("rank 0 wrote no output: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 0, 0, 1, 0, "127.0.0.1:1", 10, 1, "CP", "", 1, 1, "", false, time.Second, time.Second); err == nil {
		t.Fatal("missing graph accepted")
	}
	if err := run("/nonexistent/file.txt", "", 0, 0, 1, 0, "127.0.0.1:1", 10, 1, "CP", "", 1, 1, "", false, time.Second, time.Second); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run("g.txt", "pa", 100, 4, 1, 0, "127.0.0.1:1", 10, 1, "CP", "", 1, 1, "", false, time.Second, time.Second); err == nil {
		t.Fatal("both -graph and -gen accepted")
	}
	if err := run("", "bogus", 100, 4, 1, 0, "127.0.0.1:1", 10, 1, "CP", "", 1, 1, "", false, time.Second, time.Second); err == nil {
		t.Fatal("bogus -gen model accepted")
	}
}

// TestReapChildrenKill covers the rank-0 failure path: children must be
// terminated and waited on (no orphans), and their forced exits must not
// produce an error that could mask the root cause.
func TestReapChildrenKill(t *testing.T) {
	var children []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command("sleep", "300")
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot start sleep: %v", err)
		}
		children = append(children, cmd)
	}
	done := make(chan error, 1)
	go func() { done <- reapChildren(children, true) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kill-mode reap reported error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reapChildren(kill) did not reap 300s sleepers promptly: children leaked")
	}
	for _, cmd := range children {
		if cmd.ProcessState == nil {
			t.Fatal("child not waited on")
		}
	}
}

// TestReapChildrenReportsFailure covers the success path: rank 0 finished
// cleanly but a child failed — the first child failure must surface.
func TestReapChildrenReportsFailure(t *testing.T) {
	ok := exec.Command("true")
	bad := exec.Command("false")
	for _, cmd := range []*exec.Cmd{ok, bad} {
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot start %v: %v", cmd.Args, err)
		}
	}
	err := reapChildren([]*exec.Cmd{ok, bad}, false)
	if err == nil {
		t.Fatal("child failure not reported")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("want ExitError in chain, got %v", err)
	}
}

// TestRunCurveballMultiRankInProcess is the in-process multi-rank leg of
// the curveball protocol over the real distributed transport (part of
// the race gate: `make racedist` runs this package under -race).
func TestRunCurveballMultiRankInProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = run(g, "", 0, 0, size, rank, addr, 5, 1, "HP-D", "curveball", 1, 9, "", false, 10*time.Second, 10*time.Second)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestRunCurveballMultiProcess runs curveball trades across real OS
// processes (see TestMain): the multi-process CI leg for the second
// randomizer.
func TestRunCurveballMultiProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var children []*exec.Cmd
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GRAPH="+g,
			"ESWORKER_TEST_COORD="+addr,
			"ESWORKER_TEST_ALGO=curveball",
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children = append(children, cmd)
	}
	runErr := run(g, "", 0, 0, size, 0, addr, 30, 1, "HP-D", "curveball", 1, 9, "", false, 20*time.Second, 10*time.Second)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestRunCurveballVisitRateMultiProcess is the regression pin for the
// visit-rate early stop across real OS processes: every rank gets the
// raw t=0/-x flags, derives the same round budget, arms the same
// targetX, and must agree on the stop boundary — any divergence (like
// forwarding a derived t to some ranks, which disarms their early stop)
// deadlocks the world instead of finishing.
func TestRunCurveballVisitRateMultiProcess(t *testing.T) {
	addr := freePort(t)
	const size = 3
	var children []*exec.Cmd
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GEN=pa",
			"ESWORKER_TEST_COORD="+addr,
			"ESWORKER_TEST_ALGO=curveball",
			"ESWORKER_TEST_T=0",
			"ESWORKER_TEST_X=0.9",
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children = append(children, cmd)
	}
	runErr := run("", "pa", 600, 4, size, 0, addr, 0, 0.9, "HP-D", "curveball", 1, 9, "", false, 20*time.Second, 10*time.Second)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestChildArgsForwardRawFlags pins the spawn contract childArgs
// documents: the raw -t/-x flag values reach children verbatim. A
// derived t here once suppressed the children's early stop and hung
// -spawn -x curveball runs.
func TestChildArgsForwardRawFlags(t *testing.T) {
	args := childArgs("", "pa", 5000, 6, 3, 2, "127.0.0.1:9", 0, 0.9,
		"HP-D", "curveball", 1, 42, 10*time.Second)
	get := func(flag string) string {
		for i := 0; i+1 < len(args); i++ {
			if args[i] == flag {
				return args[i+1]
			}
		}
		t.Fatalf("flag %s missing from %v", flag, args)
		return ""
	}
	if v := get("-t"); v != "0" {
		t.Fatalf("-t forwarded as %q, want the raw flag value 0", v)
	}
	if v := get("-x"); v != "0.9" {
		t.Fatalf("-x forwarded as %q, want 0.9", v)
	}
	if v := get("-rank"); v != "2" {
		t.Fatalf("-rank %q", v)
	}
	if v := get("-gen"); v != "pa" {
		t.Fatalf("-gen %q", v)
	}
}
