package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"edgeswitch"
)

// TestMain doubles as the worker entry point for the multi-process tests:
// when ESWORKER_TEST_RANK is set, the test binary behaves as one esworker
// rank instead of running the test suite. This drives the real ProcWorld
// path across genuine OS processes (the -spawn code path uses
// os.Executable, which inside `go test` is the test binary itself, so the
// helper-process pattern is the faithful way to multi-process coverage).
func TestMain(m *testing.M) {
	if r := os.Getenv("ESWORKER_TEST_RANK"); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		size, err := strconv.Atoi(os.Getenv("ESWORKER_TEST_SIZE"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o := workerOpts{
			graphPath:    os.Getenv("ESWORKER_TEST_GRAPH"),
			genMod:       os.Getenv("ESWORKER_TEST_GEN"),
			genN:         600,
			genD:         4,
			size:         size,
			rank:         rank,
			coord:        os.Getenv("ESWORKER_TEST_COORD"),
			tOps:         30,
			x:            1,
			scheme:       "HP-D",
			algo:         os.Getenv("ESWORKER_TEST_ALGO"),
			steps:        3,
			seed:         9,
			timeout:      10 * time.Second,
			writeTO:      10 * time.Second,
			ckDir:        os.Getenv("ESWORKER_TEST_CKDIR"),
			ckEvery:      1,
			restore:      os.Getenv("ESWORKER_TEST_RESTORE") == "1",
			maxRollbacks: 3,
		}
		if o.algo == "curveball" {
			o.steps = 1
		}
		if tv := os.Getenv("ESWORKER_TEST_T"); tv != "" {
			if o.tOps, err = strconv.ParseInt(tv, 10, 64); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if xv := os.Getenv("ESWORKER_TEST_X"); xv != "" {
			if o.x, err = strconv.ParseFloat(xv, 64); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if sv := os.Getenv("ESWORKER_TEST_STEPS"); sv != "" {
			if o.steps, err = strconv.ParseInt(sv, 10, 64); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := run(o); err != nil {
			fmt.Fprintf(os.Stderr, "esworker[%d]: %v\n", rank, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testOpts returns the baseline options the in-process tests start from;
// callers override individual fields.
func testOpts() workerOpts {
	return workerOpts{
		genN:         600,
		genD:         4,
		size:         1,
		x:            1,
		scheme:       "CP",
		steps:        1,
		seed:         3,
		timeout:      10 * time.Second,
		writeTO:      10 * time.Second,
		ckEvery:      1,
		maxRollbacks: 3,
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# 12 12\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n9 10\n10 11\n0 11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleRank(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	o := testOpts()
	o.graphPath = writeTestGraph(t)
	o.coord = freePort(t)
	o.tOps = 20
	o.outPath = out
	o.timeout, o.writeTO = 5*time.Second, 5*time.Second
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
}

// TestRunMultiRankInProcess drives the worker's run() once per "process"
// concurrently — the same path cmd-line invocations exercise across OS
// processes.
func TestRunMultiRankInProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := testOpts()
			o.graphPath, o.coord = g, addr
			o.size, o.rank = size, rank
			o.tOps, o.scheme, o.steps, o.seed = 30, "HP-D", 3, 9
			errs[rank] = run(o)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestRunMultiProcess runs a full world across real OS processes: ranks
// 1..2 are re-executions of the test binary (see TestMain), rank 0 runs
// in-process. This is the CI leg for the multi-process ProcWorld path,
// which the in-process race gate cannot cover.
func TestRunMultiProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	children := map[int]*exec.Cmd{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GRAPH="+g,
			"ESWORKER_TEST_COORD="+addr,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children[rank] = cmd
	}
	o := testOpts()
	o.graphPath, o.coord = g, addr
	o.size, o.rank = size, 0
	o.tOps, o.scheme, o.steps, o.seed = 30, "HP-D", 3, 9
	o.timeout = 20 * time.Second
	runErr := run(o)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestRunGenMultiRank runs a distributed world where no rank ever loads
// a graph file: the partitions are generated communication-free from the
// shared spec.
func TestRunGenMultiRank(t *testing.T) {
	addr := freePort(t)
	out := filepath.Join(t.TempDir(), "gen-out.txt")
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := testOpts()
			o.genMod, o.coord = "pa", addr
			o.size, o.rank = size, rank
			o.tOps, o.seed = 50, 9
			if rank == 0 {
				o.outPath = out
			}
			errs[rank] = run(o)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("rank 0 wrote no output: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	base := testOpts()
	base.coord = "127.0.0.1:1"
	base.tOps = 10
	base.timeout, base.writeTO = time.Second, time.Second

	o := base
	if err := run(o); err == nil {
		t.Fatal("missing graph accepted")
	}
	o = base
	o.graphPath = "/nonexistent/file.txt"
	if err := run(o); err == nil {
		t.Fatal("missing file accepted")
	}
	o = base
	o.graphPath, o.genMod = "g.txt", "pa"
	if err := run(o); err == nil {
		t.Fatal("both -graph and -gen accepted")
	}
	o = base
	o.genMod = "bogus"
	if err := run(o); err == nil {
		t.Fatal("bogus -gen model accepted")
	}
	o = base
	o.genMod, o.restore = "pa", true
	if err := run(o); err == nil {
		t.Fatal("-restore without -checkpoint-dir accepted")
	}
}

// TestReapChildrenKill covers the rank-0 failure path: children must be
// terminated and waited on (no orphans), and their forced exits must not
// produce an error that could mask the root cause.
func TestReapChildrenKill(t *testing.T) {
	children := map[int]*exec.Cmd{}
	for i := 1; i <= 2; i++ {
		cmd := exec.Command("sleep", "300")
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot start sleep: %v", err)
		}
		children[i] = cmd
	}
	done := make(chan error, 1)
	go func() { done <- reapChildren(children, true) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kill-mode reap reported error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reapChildren(kill) did not reap 300s sleepers promptly: children leaked")
	}
	for _, cmd := range children {
		if cmd.ProcessState == nil {
			t.Fatal("child not waited on")
		}
	}
}

// TestReapChildrenReportsFailure covers the success path: rank 0 finished
// cleanly but a child failed — the first child failure must surface.
func TestReapChildrenReportsFailure(t *testing.T) {
	ok := exec.Command("true")
	bad := exec.Command("false")
	for _, cmd := range []*exec.Cmd{ok, bad} {
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot start %v: %v", cmd.Args, err)
		}
	}
	err := reapChildren(map[int]*exec.Cmd{1: ok, 2: bad}, false)
	if err == nil {
		t.Fatal("child failure not reported")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("want ExitError in chain, got %v", err)
	}
}

// TestRunCurveballMultiRankInProcess is the in-process multi-rank leg of
// the curveball protocol over the real distributed transport (part of
// the race gate: `make racedist` runs this package under -race).
func TestRunCurveballMultiRankInProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := testOpts()
			o.graphPath, o.coord = g, addr
			o.size, o.rank = size, rank
			o.tOps, o.scheme, o.algo, o.seed = 5, "HP-D", "curveball", 9
			errs[rank] = run(o)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestRunCurveballMultiProcess runs curveball trades across real OS
// processes (see TestMain): the multi-process CI leg for the second
// randomizer.
func TestRunCurveballMultiProcess(t *testing.T) {
	g := writeTestGraph(t)
	addr := freePort(t)
	const size = 3
	children := map[int]*exec.Cmd{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GRAPH="+g,
			"ESWORKER_TEST_COORD="+addr,
			"ESWORKER_TEST_ALGO=curveball",
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children[rank] = cmd
	}
	o := testOpts()
	o.graphPath, o.coord = g, addr
	o.size, o.rank = size, 0
	o.tOps, o.scheme, o.algo, o.seed = 30, "HP-D", "curveball", 9
	o.timeout = 20 * time.Second
	runErr := run(o)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestRunCurveballVisitRateMultiProcess is the regression pin for the
// visit-rate early stop across real OS processes: every rank gets the
// raw t=0/-x flags, derives the same round budget, arms the same
// targetX, and must agree on the stop boundary — any divergence (like
// forwarding a derived t to some ranks, which disarms their early stop)
// deadlocks the world instead of finishing.
func TestRunCurveballVisitRateMultiProcess(t *testing.T) {
	addr := freePort(t)
	const size = 3
	children := map[int]*exec.Cmd{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GEN=pa",
			"ESWORKER_TEST_COORD="+addr,
			"ESWORKER_TEST_ALGO=curveball",
			"ESWORKER_TEST_T=0",
			"ESWORKER_TEST_X=0.9",
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children[rank] = cmd
	}
	o := testOpts()
	o.genMod, o.coord = "pa", addr
	o.size, o.rank = size, 0
	o.tOps, o.x, o.scheme, o.algo, o.seed = 0, 0.9, "HP-D", "curveball", 9
	o.timeout = 20 * time.Second
	runErr := run(o)
	reapErr := reapChildren(children, runErr != nil)
	if runErr != nil {
		t.Fatalf("rank 0: %v", runErr)
	}
	if reapErr != nil {
		t.Fatalf("child: %v", reapErr)
	}
}

// TestRunKillRestoreMultiProcess is the fault-injection leg of the
// checkpoint/restore tentpole, run under -race by `make racedist`: a
// 3-rank world checkpoints every step boundary; once the first manifest
// commits, one worker is SIGKILLed mid-run. The survivors must observe
// the lost peer, roll back to the last committed checkpoint, and rejoin
// a restarted world on the same coordinator address; a replacement
// process joins with the lost rank's id and -restore. The recovered run
// must complete and produce a graph with the input's exact degree
// sequence (the restore integrity check, asserted end to end).
func TestRunKillRestoreMultiProcess(t *testing.T) {
	// A graph big enough that the run outlives the kill by a wide margin:
	// a circulant graph, every vertex of degree 6.
	const n, deg = 2000, 6
	path := filepath.Join(t.TempDir(), "ring.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	m := 0
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 2, 7} {
			fmt.Fprintf(f, "%d %d\n", i, (i+off)%n)
			m++
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	ckDir := filepath.Join(t.TempDir(), "ck")
	const size, tOps, steps = 3, 60000, 40
	children := map[int]*exec.Cmd{}
	worker := func(rank int, restore bool) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"ESWORKER_TEST_RANK="+strconv.Itoa(rank),
			"ESWORKER_TEST_SIZE="+strconv.Itoa(size),
			"ESWORKER_TEST_GRAPH="+path,
			"ESWORKER_TEST_COORD="+addr,
			"ESWORKER_TEST_T="+strconv.Itoa(tOps),
			"ESWORKER_TEST_STEPS="+strconv.Itoa(steps),
			"ESWORKER_TEST_CKDIR="+ckDir,
		)
		if restore {
			cmd.Env = append(cmd.Env, "ESWORKER_TEST_RESTORE=1")
		}
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	for rank := 1; rank < size; rank++ {
		children[rank] = worker(rank, false)
	}

	out := filepath.Join(t.TempDir(), "restored-out.txt")
	rank0Done := make(chan error, 1)
	go func() {
		o := testOpts()
		o.graphPath, o.coord = path, addr
		o.size, o.rank = size, 0
		o.tOps, o.scheme, o.steps, o.seed = tOps, "HP-D", steps, 9
		o.outPath = out
		o.ckDir = ckDir
		o.timeout = 30 * time.Second
		rank0Done <- run(o)
	}()

	// Wait for the first committed checkpoint, then kill rank 2 hard.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ents, err := os.ReadDir(ckDir); err == nil {
			committed := false
			for _, e := range ents {
				if filepath.Ext(e.Name()) == ".json" {
					committed = true
				}
			}
			if committed {
				break
			}
		}
		select {
		case err := <-rank0Done:
			t.Fatalf("run finished before any checkpoint committed (err=%v): the kill window never opened, raise -t", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint manifest appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := children[2].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing rank 2: %v", err)
	}
	_ = children[2].Wait()

	// The replacement joins with the lost rank's id in restore mode; the
	// survivors roll back on their own.
	children[2] = worker(2, true)

	if err := <-rank0Done; err != nil {
		t.Fatalf("rank 0 did not recover: %v", err)
	}
	if err := reapChildren(children, false); err != nil {
		t.Fatalf("child after recovery: %v", err)
	}

	// End-to-end integrity: the switched graph preserves the exact degree
	// sequence of the input (every vertex had degree 6) and the edge count.
	got, err := edgeswitch.LoadGraphFile(out, 1)
	if err != nil {
		t.Fatalf("loading recovered output: %v", err)
	}
	if got.M() != int64(m) {
		t.Fatalf("recovered graph has %d edges, want %d", got.M(), m)
	}
	for v, d := range got.Degrees() {
		if d != deg {
			t.Fatalf("vertex %d has degree %d after recovery, want %d", v, d, deg)
		}
	}
}

// TestChildArgsForwardRawFlags pins the spawn contract childArgs
// documents: the raw -t/-x flag values reach children verbatim. A
// derived t here once suppressed the children's early stop and hung
// -spawn -x curveball runs.
func TestChildArgsForwardRawFlags(t *testing.T) {
	o := testOpts()
	o.genMod, o.genN, o.genD = "pa", 5000, 6
	o.size, o.rank = 3, 0
	o.coord = "127.0.0.1:9"
	o.tOps, o.x = 0, 0.9
	o.scheme, o.algo = "HP-D", "curveball"
	o.seed = 42
	args := childArgs(o, 2, false)
	get := func(flag string) string {
		for i := 0; i+1 < len(args); i++ {
			if args[i] == flag {
				return args[i+1]
			}
		}
		t.Fatalf("flag %s missing from %v", flag, args)
		return ""
	}
	if v := get("-t"); v != "0" {
		t.Fatalf("-t forwarded as %q, want the raw flag value 0", v)
	}
	if v := get("-x"); v != "0.9" {
		t.Fatalf("-x forwarded as %q, want 0.9", v)
	}
	if v := get("-rank"); v != "2" {
		t.Fatalf("-rank %q", v)
	}
	if v := get("-gen"); v != "pa" {
		t.Fatalf("-gen %q", v)
	}
	for _, a := range args {
		if a == "-checkpoint-dir" || a == "-restore" {
			t.Fatalf("checkpoint flag %s forwarded without -checkpoint-dir set", a)
		}
	}
}

// TestChildArgsForwardCheckpointFlags pins the recovery half of the
// spawn contract: the checkpoint directory, cadence and rollback budget
// reach every child (they must all checkpoint the same boundaries), and
// -restore is appended exactly when the child joins as a replacement or
// during a world-wide restart.
func TestChildArgsForwardCheckpointFlags(t *testing.T) {
	o := testOpts()
	o.graphPath = "g.txt"
	o.size = 4
	o.coord = "127.0.0.1:9"
	o.ckDir, o.ckEvery, o.maxRollbacks = "/tmp/ck", 5, 7
	args := childArgs(o, 1, false)
	get := func(flag string) string {
		for i := 0; i+1 < len(args); i++ {
			if args[i] == flag {
				return args[i+1]
			}
		}
		t.Fatalf("flag %s missing from %v", flag, args)
		return ""
	}
	if v := get("-checkpoint-dir"); v != "/tmp/ck" {
		t.Fatalf("-checkpoint-dir %q", v)
	}
	if v := get("-checkpoint-every"); v != "5" {
		t.Fatalf("-checkpoint-every %q", v)
	}
	if v := get("-max-rollbacks"); v != "7" {
		t.Fatalf("-max-rollbacks %q", v)
	}
	for _, a := range args {
		if a == "-restore" {
			t.Fatal("-restore appended to a non-restore child")
		}
	}
	restoreArgs := childArgs(o, 1, true)
	found := false
	for _, a := range restoreArgs {
		if a == "-restore" {
			found = true
		}
	}
	if !found {
		t.Fatalf("-restore missing from replacement child args %v", restoreArgs)
	}
}
