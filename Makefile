# The CI gate. `make check` is what .github/workflows/ci.yml runs.

GO ?= go

# Packages whose concurrency is load-bearing: the race detector gates
# them on every check (running -race over the whole module is much
# slower and adds nothing — everything else is single-goroutine).
RACE_PKGS := ./internal/mpi/... ./internal/core/...

.PHONY: check build vet esvet test race racedist bench benchsmoke largesmoke spillsmoke clean

check: build vet esvet test race racedist

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Exits 1 only on error-severity findings; warn-severity (e.g.
# configdoc) is report-only. CI additionally uploads `esvet -sarif`
# to code scanning.
esvet:
	$(GO) run ./cmd/esvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m $(RACE_PKGS)

# Multi-process distributed leg: drives the real ProcWorld/esworker path
# across genuine OS processes (helper-process pattern in main_test.go),
# with the race detector on in every process. Includes the
# fault-injection leg (TestRunKillRestoreMultiProcess): a worker is
# SIGKILLed mid-run and the world must roll back to its last committed
# checkpoint, admit a replacement rank, and finish with the input's
# exact degree sequence.
racedist:
	$(GO) test -race -timeout 10m ./cmd/esworker/

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# One tiny iteration of the engine-step benchmarks on small inputs
# (proves the bench harness still runs, without measuring anything),
# plus the regression guards: one full-size run of the tiny-uniform
# high-conflict config, failing if transport sends or restarts regress
# >2x against the committed BENCH_adaptive.json baseline, and one
# replay of the generation-bootstrap guard config (pa n=100k p=8),
# failing if the deterministic edge count drifts or the pergen speedup
# over the file bootstrap collapses below half the committed
# BENCH_pergen.json value, and one replay per algorithm of the
# randomizer-seam guard (pa/mem/p2 to x=0.9), failing if either
# algorithm misses the target visit rate, the deterministic curveball
# trajectory drifts from BENCH_curveball.json, or transport sends
# regress >2x, and one replay of the out-of-core guard slice (pa n=100k
# p=8, in-memory vs tiered store under the committed memory cap),
# failing if the deterministic edge fingerprint drifts or the capped
# spill slowdown exceeds twice the committed BENCH_outofcore.json
# ratio. CI runs this so benchmark, controller, generator, and store
# rot is caught early.
benchsmoke:
	$(GO) test -short -run=^$$ -bench=BenchmarkEngineStep -benchtime=1x ./internal/core/
	$(GO) test -short -run=^$$ -bench=BenchmarkGenerate -benchtime=1x ./internal/core/
	$(GO) test -short -run=^$$ -bench='BenchmarkRandomizer/.*/pa/mem/p2$$' -benchtime=1x ./internal/core/
	$(GO) test -short -run=^$$ -bench=BenchmarkOutOfCore -benchtime=1x ./internal/core/
	BENCHSMOKE=1 $(GO) test -run='^TestBenchsmokeAdaptiveRegression$$' -v ./internal/core/
	BENCHSMOKE=1 $(GO) test -run='^TestBenchsmokePergenRegression$$' -v ./internal/core/
	BENCHSMOKE=1 $(GO) test -run='^TestBenchsmokeCurveballRegression$$' -v ./internal/core/
	BENCHSMOKE=1 $(GO) test -run='^TestBenchsmokeOutOfCoreRegression$$' -v ./internal/core/

# Large-graph smokes: a >=10^7-edge preferential-attachment graph
# through the communication-free bootstrap at p=8, pinned to the exact
# deterministic edge count in BENCH_pergen.json, plus a ~10^6-edge
# curveball run to the target visit rate at p=8; both time-boxed by the
# -timeout.
largesmoke:
	ESLARGE=1 $(GO) test -run='^TestLargeGenSmoke$$|^TestLargeCurveballSmoke$$' -v -timeout 10m ./internal/core/

# Out-of-core smoke: the same >=10^7-edge PA graph, two curveball
# rounds at p=8, run fully in-memory and then through the tiered mmap
# store under a soft memory limit of half the sampled in-memory heap
# peak. The capped run must complete and end bit-identical (curveball
# is deterministic); time-boxed by the -timeout.
spillsmoke:
	ESSPILL=1 $(GO) test -run='^TestSpillSmoke$$' -v -timeout 30m ./internal/core/

clean:
	$(GO) clean ./...
