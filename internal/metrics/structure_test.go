package metrics

import (
	"math"
	"testing"

	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func TestAssortativityStarIsNegative(t *testing.T) {
	// A star is maximally disassortative: hubs connect only to leaves.
	var edges []graph.Edge
	for v := 1; v <= 10; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(v)})
	}
	g := mustGraph(t, 11, edges)
	if a := Assortativity(g); a != -1 {
		t.Fatalf("star assortativity %f, want -1", a)
	}
}

func TestAssortativityRegularUndefined(t *testing.T) {
	// A cycle is regular: zero degree variance, coefficient defined as 0.
	var edges []graph.Edge
	for v := 0; v < 6; v++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(v), V: graph.Vertex((v + 1) % 6)})
	}
	g := mustGraph(t, 6, edges)
	if a := Assortativity(g); a != 0 {
		t.Fatalf("cycle assortativity %f, want 0", a)
	}
}

func TestAssortativityTinyGraph(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	if a := Assortativity(g); a != 0 {
		t.Fatalf("single-edge assortativity %f", a)
	}
}

// TestAssortativitySwitchingNeutralizes: edge switching drives
// assortativity toward 0 (the configuration-model value).
func TestAssortativitySwitchingNeutralizes(t *testing.T) {
	r := rng.New(1)
	// An assortative construction: connect similar-degree vertices by
	// wiring two cliques of different sizes plus sparse bridges.
	g, err := gen.Contact(r, gen.ContactConfig{N: 2000, AvgDegree: 16, CommunitySize: 25, WithinFrac: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	before := Assortativity(g)
	work := g.Clone(r)
	tOps, err := core.OpsForVisitRate(work.M(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Sequential(work, tOps, r); err != nil {
		t.Fatal(err)
	}
	after := Assortativity(work)
	if math.Abs(after) > math.Abs(before) && math.Abs(after) > 0.05 {
		t.Fatalf("switching increased |assortativity|: %f -> %f", before, after)
	}
	if math.Abs(after) > 0.08 {
		t.Fatalf("randomized assortativity %f not near 0", after)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := mustGraph(t, 7, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	sizes := ConnectedComponents(g)
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("components %v", sizes)
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	ring := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	if !IsConnected(ring) {
		t.Fatal("ring reported disconnected")
	}
	if !IsConnected(mustGraph(t, 0, nil)) {
		t.Fatal("empty graph reported disconnected")
	}
}

func TestTriangles(t *testing.T) {
	cases := []struct {
		n     int
		edges []graph.Edge
		want  int64
	}{
		{3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 1},
		{3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 0},
		// K4 has 4 triangles.
		{4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}, 4},
	}
	for _, c := range cases {
		g := mustGraph(t, c.n, c.edges)
		if got := Triangles(g); got != c.want {
			t.Fatalf("Triangles = %d, want %d", got, c.want)
		}
	}
}

func TestTrianglesMatchesWedgeCount(t *testing.T) {
	r := rng.New(2)
	g, err := gen.ErdosRenyi(r, 300, 1800)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a brute-force count over vertex triples of the
	// full adjacency.
	full := g.FullAdjacency()
	var brute int64
	for u := 0; u < g.N(); u++ {
		for _, v := range full[u] {
			if v <= graph.Vertex(u) {
				continue
			}
			for _, w := range full[v] {
				if w <= v {
					continue
				}
				if g.HasEdge(graph.Edge{U: graph.Vertex(u), V: w}) {
					brute++
				}
			}
		}
	}
	if got := Triangles(g); got != brute {
		t.Fatalf("Triangles = %d, brute force = %d", got, brute)
	}
}

func TestGlobalClustering(t *testing.T) {
	tri := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if c := GlobalClustering(tri); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle transitivity %f", c)
	}
	path := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if c := GlobalClustering(path); c != 0 {
		t.Fatalf("path transitivity %f", c)
	}
	if c := GlobalClustering(mustGraph(t, 2, nil)); c != 0 {
		t.Fatalf("edgeless transitivity %f", c)
	}
}

func TestDegreeDistributionDistance(t *testing.T) {
	a := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if d := DegreeDistributionDistance(a, a); d != 0 {
		t.Fatalf("self distance %f", d)
	}
	// Star vs matching on the same vertex count: different distributions.
	star := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if d := DegreeDistributionDistance(a, star); d <= 0 || d > 1 {
		t.Fatalf("distance %f out of (0,1]", d)
	}
	// Symmetry.
	if DegreeDistributionDistance(a, star) != DegreeDistributionDistance(star, a) {
		t.Fatal("distance not symmetric")
	}
}

// TestSwitchingPreservesDegreeDistribution ties the new metric to the
// core invariant.
func TestSwitchingPreservesDegreeDistribution(t *testing.T) {
	r := rng.New(3)
	g, err := gen.PrefAttachment(r, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	work := g.Clone(r)
	if _, err := core.Sequential(work, 4000, r); err != nil {
		t.Fatal(err)
	}
	if d := DegreeDistributionDistance(g, work); d != 0 {
		t.Fatalf("switching changed the degree distribution: distance %f", d)
	}
}
