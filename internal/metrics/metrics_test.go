package metrics

import (
	"math"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEdgeDifferenceIdentical(t *testing.T) {
	g := mustGraph(t, 10, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 8, V: 9}})
	for _, r := range []int{1, 2, 5, 10} {
		ed, err := EdgeDifference(g, g, r)
		if err != nil {
			t.Fatal(err)
		}
		if ed != 0 {
			t.Fatalf("r=%d: ED(g,g) = %d", r, ed)
		}
	}
}

func TestEdgeDifferenceDisjoint(t *testing.T) {
	// g1 has both edges inside block 0; g2 inside block 1 (r=2, n=10).
	g1 := mustGraph(t, 10, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	g2 := mustGraph(t, 10, []graph.Edge{{U: 5, V: 6}, {U: 7, V: 8}})
	ed, err := EdgeDifference(g1, g2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ed != 4 {
		t.Fatalf("ED = %d, want 4", ed)
	}
	er, err := ErrorRate(g1, g2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(er-100) > 1e-9 {
		t.Fatalf("ER = %f, want 100", er)
	}
}

func TestEdgeDifferenceCrossBlocks(t *testing.T) {
	// One cross edge (block 0 – block 1) in g1 vs same-position within
	// edge in g2.
	g1 := mustGraph(t, 4, []graph.Edge{{U: 0, V: 3}})
	g2 := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}})
	ed, err := EdgeDifference(g1, g2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ed != 2 {
		t.Fatalf("ED = %d, want 2", ed)
	}
}

func TestEdgeDifferenceValidation(t *testing.T) {
	g1 := mustGraph(t, 4, nil)
	g2 := mustGraph(t, 5, nil)
	if _, err := EdgeDifference(g1, g2, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := EdgeDifference(g1, g1, 0); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := ErrorRate(g1, g1, 2); err == nil {
		t.Fatal("empty-graph error rate accepted")
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if c := ClusteringCoefficient(g); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering %f, want 1", c)
	}
}

func TestClusteringPath(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if c := ClusteringCoefficient(g); c != 0 {
		t.Fatalf("path clustering %f, want 0", c)
	}
}

func TestClusteringTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	// c(0) = 1/3 (one link among 3 neighbour pairs), c(1)=c(2)=1, c(3)=0.
	want := (1.0/3 + 1 + 1 + 0) / 4
	if c := ClusteringCoefficient(g); math.Abs(c-want) > 1e-12 {
		t.Fatalf("clustering %f, want %f", c, want)
	}
}

func TestSampledClusteringConverges(t *testing.T) {
	r := rng.New(2)
	g, err := gen.Contact(r, gen.ContactConfig{N: 3000, AvgDegree: 20, CommunitySize: 30, WithinFrac: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	exact := ClusteringCoefficient(g)
	approx := SampledClusteringCoefficient(g, 1500, rng.New(3))
	if exact == 0 {
		t.Fatal("exact clustering is 0 — degenerate test")
	}
	if math.Abs(approx-exact)/exact > 0.2 {
		t.Fatalf("sampled %f vs exact %f", approx, exact)
	}
	// Oversampling falls back to exact.
	if full := SampledClusteringCoefficient(g, g.N()+5, rng.New(4)); full != exact {
		t.Fatalf("oversampled %f != exact %f", full, exact)
	}
}

func TestAvgShortestPathPath(t *testing.T) {
	// Path 0-1-2: from each source, BFS distances sum over reached pairs.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	got := AvgShortestPath(g, 3, rng.New(5))
	// All-pairs distances: (0,1)=1 (0,2)=2 (1,2)=1 → avg = 4/3. Sampled
	// sources may repeat, but with every BFS the per-source average is
	// within [1, 1.5]; allow the sampling range.
	if got < 1 || got > 1.5 {
		t.Fatalf("avg path %f outside plausible range", got)
	}
}

func TestAvgShortestPathCompleteGraph(t *testing.T) {
	edges := []graph.Edge{}
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)})
		}
	}
	g := mustGraph(t, 6, edges)
	if got := AvgShortestPath(g, 6, rng.New(6)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("complete graph avg path %f, want 1", got)
	}
}

func TestAvgShortestPathEmpty(t *testing.T) {
	g := mustGraph(t, 5, nil)
	if got := AvgShortestPath(g, 3, rng.New(7)); got != 0 {
		t.Fatalf("edgeless avg path %f, want 0", got)
	}
}

func TestDegreesStats(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	st := Degrees(g)
	if st.Min != 1 || st.Max != 3 || math.Abs(st.Avg-1.5) > 1e-12 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLoadImbalance(t *testing.T) {
	perfect := LoadImbalance([]int64{10, 10, 10, 10})
	if math.Abs(perfect.MaxOverMean-1) > 1e-12 || perfect.CV != 0 {
		t.Fatalf("perfect balance misreported: %+v", perfect)
	}
	skew := LoadImbalance([]int64{40, 0, 0, 0})
	if math.Abs(skew.MaxOverMean-4) > 1e-12 {
		t.Fatalf("skewed balance misreported: %+v", skew)
	}
	if z := LoadImbalance(nil); z.MaxOverMean != 0 {
		t.Fatalf("empty loads: %+v", z)
	}
	zero := LoadImbalance([]int64{0, 0})
	if zero.MaxOverMean != 1 {
		t.Fatalf("all-zero loads: %+v", zero)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star: center degree 3 (bucket 1: [2,4)), leaves degree 1 (bucket 0).
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	h := DegreeHistogram(g)
	if len(h) != 2 || h[0] != 3 || h[1] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

// TestErrorRateRandomVsSelf: two random graphs with the same block mass
// should have a small but positive error rate, and ER must be symmetric
// in magnitude.
func TestErrorRateSymmetricRange(t *testing.T) {
	g1, err := gen.ErdosRenyi(rng.New(10), 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.ErdosRenyi(rng.New(11), 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	er12, err := ErrorRate(g1, g2, 20)
	if err != nil {
		t.Fatal(err)
	}
	er21, err := ErrorRate(g2, g1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if er12 != er21 {
		t.Fatalf("ER not symmetric: %f vs %f", er12, er21)
	}
	if er12 <= 0 || er12 > 20 {
		t.Fatalf("ER between independent ER graphs = %f, expected small positive", er12)
	}
}

func BenchmarkClustering(b *testing.B) {
	g, err := gen.Contact(rng.New(1), gen.ContactConfig{N: 5000, AvgDegree: 20, CommunitySize: 30, WithinFrac: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledClusteringCoefficient(g, 500, rng.New(uint64(i)))
	}
}
