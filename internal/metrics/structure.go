package metrics

import (
	"math"
	"sort"

	"edgeswitch/internal/graph"
)

// Structural measurements beyond the paper's core metrics, used by the
// examples and by downstream null-model studies: degree assortativity,
// connected components, exact triangle counts, and a degree-distribution
// distance. All are deterministic.

// Assortativity computes the degree assortativity coefficient (Pearson
// correlation of endpoint degrees over edges, Newman 2002). Edge
// switching drives it toward 0 — the uncorrelated configuration-model
// value — which makes it a useful dial for null-model studies. Returns 0
// for graphs where it is undefined (fewer than 2 edges or zero variance).
func Assortativity(g *graph.Graph) float64 {
	deg := g.Degrees()
	var n float64
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for _, e := range g.Edges() {
		// Each undirected edge contributes both orientations, which
		// symmetrizes the correlation.
		for _, pair := range [2][2]int{{deg[e.U], deg[e.V]}, {deg[e.V], deg[e.U]}} {
			x, y := float64(pair[0]), float64(pair[1])
			sumXY += x * y
			sumX += x
			sumY += y
			sumX2 += x * x
			sumY2 += y * y
			n++
		}
	}
	if n < 4 {
		return 0
	}
	cov := sumXY/n - (sumX/n)*(sumY/n)
	varX := sumX2/n - (sumX/n)*(sumX/n)
	varY := sumY2/n - (sumY/n)*(sumY/n)
	if varX <= 0 || varY <= 0 {
		return 0
	}
	return cov / math.Sqrt(varX*varY)
}

// ConnectedComponents returns the size of every connected component in
// descending order. Isolated vertices count as size-1 components.
func ConnectedComponents(g *graph.Graph) []int {
	n := g.N()
	full := g.FullAdjacency()
	seen := make([]bool, n)
	var sizes []int
	queue := make([]graph.Vertex, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], graph.Vertex(s))
		size := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			size++
			for _, v := range full[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// IsConnected reports whether the graph is a single connected component
// (the constraint RunConnected preserves). The empty graph is connected.
func IsConnected(g *graph.Graph) bool {
	if g.N() == 0 {
		return true
	}
	return len(ConnectedComponents(g)) == 1
}

// Triangles counts the triangles in g exactly, using the standard
// forward/edge-iterator algorithm over the reduced adjacency lists:
// for each edge (u,v) with u < v, count common neighbours w > v. Runs in
// O(m · d_max · log d_max) worst case, fine up to millions of edges.
func Triangles(g *graph.Graph) int64 {
	var count int64
	for ui := 0; ui < g.N(); ui++ {
		u := graph.Vertex(ui)
		var higher []graph.Vertex
		g.WalkReduced(u, func(v graph.Vertex, _ bool) bool {
			higher = append(higher, v)
			return true
		})
		// For each pair v < w of u's higher neighbours, (v,w) closes a
		// triangle; test via the reduced list of v.
		for i := 0; i < len(higher); i++ {
			for j := i + 1; j < len(higher); j++ {
				if g.HasEdge(graph.Edge{U: higher[i], V: higher[j]}) {
					count++
				}
			}
		}
		higher = higher[:0]
	}
	return count
}

// GlobalClustering computes the transitivity 3·triangles / open wedges
// (distinct from the average local coefficient ClusteringCoefficient
// returns).
func GlobalClustering(g *graph.Graph) float64 {
	var wedges int64
	for _, d := range g.Degrees() {
		wedges += int64(d) * int64(d-1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(Triangles(g)) / float64(wedges)
}

// DegreeDistributionDistance computes the total-variation distance
// between the degree distributions of two graphs: ½ Σ_d |p₁(d) − p₂(d)|.
// Zero iff the distributions coincide; degree-preserving switching must
// keep it at exactly 0 against the input graph.
func DegreeDistributionDistance(a, b *graph.Graph) float64 {
	pa := degreeDist(a)
	pb := degreeDist(b)
	keys := map[int]bool{}
	for d := range pa {
		keys[d] = true
	}
	for d := range pb {
		keys[d] = true
	}
	var tv float64
	for d := range keys {
		tv += math.Abs(pa[d] - pb[d])
	}
	return tv / 2
}

func degreeDist(g *graph.Graph) map[int]float64 {
	out := map[int]float64{}
	ds := g.Degrees()
	if len(ds) == 0 {
		return out
	}
	w := 1 / float64(len(ds))
	for _, d := range ds {
		out[d] += w
	}
	return out
}
