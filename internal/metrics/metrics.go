// Package metrics implements the graph measurements the paper's
// evaluation reports: the edge-difference error rate between two resultant
// graphs (§4.6, eqs. 6–7), average clustering coefficient and average
// shortest-path distance (Figs. 12–13; the paper itself uses approximate
// computation for path lengths), degree statistics, and load-imbalance
// summaries for the workload-distribution figures.
package metrics

import (
	"fmt"
	"math"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// EdgeDifference computes ED(G₁,G₂) of eq. 6: both vertex sets are cut
// into r consecutive-label blocks and the per-block-pair edge counts are
// compared, summing |n₁(Vᵢ,Vⱼ) − n₂(Vᵢ,Vⱼ)| over i ≤ j. The graphs must
// have the same vertex count.
func EdgeDifference(g1, g2 *graph.Graph, r int) (int64, error) {
	if g1.N() != g2.N() {
		return 0, fmt.Errorf("metrics: vertex counts differ (%d vs %d)", g1.N(), g2.N())
	}
	if r <= 0 {
		return 0, fmt.Errorf("metrics: r must be positive, got %d", r)
	}
	c1 := blockMatrix(g1, r)
	c2 := blockMatrix(g2, r)
	var ed int64
	for i := range c1 {
		d := c1[i] - c2[i]
		if d < 0 {
			d = -d
		}
		ed += d
	}
	return ed, nil
}

// blockMatrix counts edges per (block i ≤ block j) pair, flattened.
func blockMatrix(g *graph.Graph, r int) []int64 {
	n := g.N()
	counts := make([]int64, r*(r+1)/2)
	block := func(v graph.Vertex) int {
		b := int(int64(v) * int64(r) / int64(n))
		if b >= r {
			b = r - 1
		}
		return b
	}
	for _, e := range g.Edges() {
		i, j := block(e.U), block(e.V)
		if i > j {
			i, j = j, i
		}
		counts[i*r-i*(i-1)/2+(j-i)]++
	}
	return counts
}

// ErrorRate computes ER(G₁,G₂) of eq. 7 as a percentage:
// ED/(2m) × 100 with m the edge count of G₁.
func ErrorRate(g1, g2 *graph.Graph, r int) (float64, error) {
	ed, err := EdgeDifference(g1, g2, r)
	if err != nil {
		return 0, err
	}
	if g1.M() == 0 {
		return 0, fmt.Errorf("metrics: error rate undefined for empty graph")
	}
	return float64(ed) / (2 * float64(g1.M())) * 100, nil
}

// ClusteringCoefficient returns the average local clustering coefficient,
// exactly. Vertices of degree < 2 contribute 0, matching the NetworkX
// convention the paper's curves follow.
func ClusteringCoefficient(g *graph.Graph) float64 {
	return clustering(g, nil, nil)
}

// SampledClusteringCoefficient estimates the average local clustering
// coefficient from `samples` uniformly chosen vertices.
func SampledClusteringCoefficient(g *graph.Graph, samples int, r *rng.RNG) float64 {
	if samples >= g.N() {
		return ClusteringCoefficient(g)
	}
	seen := make(map[int]bool, samples)
	idx := make([]int, 0, samples)
	for len(idx) < samples {
		v := r.Intn(g.N())
		if !seen[v] {
			seen[v] = true
			idx = append(idx, v)
		}
	}
	return clustering(g, idx, nil)
}

// clustering averages the local coefficient over the given vertex indices
// (all vertices when idx is nil). full may carry a precomputed adjacency.
func clustering(g *graph.Graph, idx []int, full [][]graph.Vertex) float64 {
	if full == nil {
		full = g.FullAdjacency()
	}
	if idx == nil {
		idx = make([]int, g.N())
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, u := range idx {
		nb := full[u]
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(graph.Edge{U: nb[i], V: nb[j]}) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / (float64(d) * float64(d-1))
	}
	return sum / float64(len(idx))
}

// AvgShortestPath estimates the average shortest-path distance by running
// BFS from `sources` uniformly chosen vertices and averaging distances to
// all reached vertices. Unreachable pairs are excluded (the paper's
// graphs are essentially one giant component). Matches the paper's use of
// approximate computation for this metric.
func AvgShortestPath(g *graph.Graph, sources int, r *rng.RNG) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sources > n {
		sources = n
	}
	full := g.FullAdjacency()
	dist := make([]int32, n)
	queue := make([]graph.Vertex, 0, n)
	var totalDist, pairs float64
	for s := 0; s < sources; s++ {
		src := graph.Vertex(r.Intn(n))
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range full[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					totalDist += float64(dist[v])
					pairs++
					queue = append(queue, v)
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return totalDist / pairs
}

// DegreeStats summarizes a degree sequence.
type DegreeStats struct {
	Min, Max int
	Avg      float64
}

// Degrees computes min/max/average degree.
func Degrees(g *graph.Graph) DegreeStats {
	ds := g.Degrees()
	if len(ds) == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: ds[0], Max: ds[0]}
	var sum int64
	for _, d := range ds {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		sum += int64(d)
	}
	st.Avg = float64(sum) / float64(len(ds))
	return st
}

// AbortRates converts per-rank restart and completed-operation counts
// into per-rank abort rates restarts/(restarts+ops) — the fraction of a
// rank's selections that were rejected and retried. This is the loss
// signal the adaptive pipelining-window controller steers on
// (internal/tune/window); Result.RankRestarts/RankOps provide the
// inputs. Ranks that did nothing report 0.
func AbortRates(restarts, ops []int64) []float64 {
	out := make([]float64, len(restarts))
	for i := range restarts {
		var o int64
		if i < len(ops) {
			o = ops[i]
		}
		if total := restarts[i] + o; total > 0 {
			out[i] = float64(restarts[i]) / float64(total)
		}
	}
	return out
}

// Imbalance summarizes how evenly a per-rank load vector is spread:
// max/mean (1.0 = perfectly balanced) and the coefficient of variation.
type Imbalance struct {
	MaxOverMean float64
	CV          float64
}

// LoadImbalance computes the imbalance of the given per-rank loads.
func LoadImbalance(loads []int64) Imbalance {
	if len(loads) == 0 {
		return Imbalance{}
	}
	var sum, mx float64
	for _, l := range loads {
		v := float64(l)
		sum += v
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return Imbalance{MaxOverMean: 1, CV: 0}
	}
	var varSum float64
	for _, l := range loads {
		d := float64(l) - mean
		varSum += d * d
	}
	return Imbalance{
		MaxOverMean: mx / mean,
		CV:          math.Sqrt(varSum/float64(len(loads))) / mean,
	}
}

// DegreeHistogram buckets the degree sequence into a log₂ histogram:
// bucket k counts vertices with degree in [2^k, 2^{k+1}).
func DegreeHistogram(g *graph.Graph) []int64 {
	var hist []int64
	for _, d := range g.Degrees() {
		k := 0
		for x := d; x > 1; x >>= 1 {
			k++
		}
		for len(hist) <= k {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	return hist
}
