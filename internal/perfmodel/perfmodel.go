// Package perfmodel is an analytical performance model of the parallel
// edge-switch algorithm, used to reproduce the paper's cluster-scale
// speedup curves (Figs. 4, 14, 15) on hardware that has far fewer
// physical processors than the authors' 1024-core InfiniBand testbed
// (see DESIGN.md §2 — this is the "simulate the hardware you do not
// have" substitution).
//
// The model is LogP-flavoured and deliberately simple; every parameter is
// either measured from this repository's engine (per-operation message
// and round-trip counts, which BenchmarkAblationMessageCost shows are
// constant in p) or taken from the communication characteristics of the
// paper's testbed class. It captures the three effects that shape the
// published curves:
//
//  1. Remote operations are latency-bound chains of message round trips
//     (§4.4), so per-operation cost grows with the remote fraction
//     1 − 1/p and saturates quickly.
//  2. Workload imbalance (multinomial sampling plus scheme-dependent
//     skew, §5.2) makes the busiest rank the step's critical path.
//  3. Per-step synchronization (multinomial generation, edge-count
//     exchange, end-of-step signalling) adds an O(s/p + p·log p) term
//     that eventually turns the speedup curve over — the decline the
//     paper observes past several hundred processors.
package perfmodel

import (
	"fmt"
	"math"
	"time"
)

// Machine describes the host executing the ranks.
type Machine struct {
	// Name labels the machine in experiment output.
	Name string
	// Latency is the one-way small-message latency α between two ranks.
	Latency time.Duration
	// PerByte is the per-byte transfer cost β.
	PerByte time.Duration
	// SeqOpsPerSec is the sequential algorithm's switch throughput.
	SeqOpsPerSec float64
	// RankOverheadPerOp is the per-operation CPU cost of a rank beyond
	// the pure switch work (selection, bookkeeping, serialization).
	RankOverheadPerOp time.Duration
	// TrialsPerSec is the BINV multinomial generator's trial rate
	// (measured ≈600M trials/s in this repository, Fig. 24 bench).
	TrialsPerSec float64
}

// InfiniBandCluster models the paper's testbed class: Sandy Bridge nodes
// on QDR InfiniBand (≈1.5 µs one-way MPI latency, ≈3.2 GB/s effective
// per-link bandwidth). The sequential rate is normalized to 1 so model
// outputs are reported as speedups rather than absolute times.
var InfiniBandCluster = Machine{
	Name:              "infiniband-cluster",
	Latency:           1500 * time.Nanosecond,
	PerByte:           time.Nanosecond / 3, // ~3.2 GB/s
	SeqOpsPerSec:      400_000,             // measured class of this codebase's sequential engine
	RankOverheadPerOp: 1500 * time.Nanosecond,
	TrialsPerSec:      500_000_000,
}

// LoopbackGoroutines models this repository's in-process runtime on a
// single machine: sub-microsecond delivery but ranks time-share the
// physical cores.
var LoopbackGoroutines = Machine{
	Name:              "loopback-goroutines",
	Latency:           800 * time.Nanosecond,
	PerByte:           time.Nanosecond / 10,
	SeqOpsPerSec:      400_000,
	RankOverheadPerOp: 2500 * time.Nanosecond,
	TrialsPerSec:      500_000_000,
}

// Workload describes one parallel run to predict.
type Workload struct {
	// Ops is the total number of switch operations t.
	Ops int64
	// Steps is the number of steps (≥ 1).
	Steps int
	// MsgsPerOp is the protocol messages per completed operation
	// (measured: ~10.1, constant in p).
	MsgsPerOp float64
	// RoundsPerOp is the sequential message round trips on an operation's
	// critical path (select → reserve → commit-ack → done ≈ 3.5 when the
	// partner and owners differ).
	RoundsPerOp float64
	// MsgBytes is the wire size of a protocol message.
	MsgBytes int
	// SkewFactor is the scheme/graph-dependent workload imbalance on top
	// of multinomial noise: the busiest rank's long-run share of
	// operations relative to the mean (1.0 = balanced; CP on a clustered
	// graph like Miami measures ≈1.5–3, §5.2; an adversarial HP-D
	// assignment reaches ≈p/4).
	SkewFactor float64
	// PhysicalCores caps real concurrency; 0 means one core per rank
	// (the cluster case). When p exceeds PhysicalCores the model
	// serializes compute accordingly (the single-host case).
	PhysicalCores int
}

// DefaultWorkload returns the measured per-operation constants of this
// repository's engine for a t-operation, steps-step run.
func DefaultWorkload(ops int64, steps int) Workload {
	return Workload{
		Ops:         ops,
		Steps:       steps,
		MsgsPerOp:   10.1,
		RoundsPerOp: 3.5,
		MsgBytes:    29,
		SkewFactor:  1.0,
	}
}

// Prediction is the model output for one processor count.
type Prediction struct {
	P        int
	Time     time.Duration
	Speedup  float64 // vs the sequential algorithm on the same machine
	CommFrac float64 // fraction of the busiest rank's time spent waiting on messages
}

// Predict estimates the runtime of the workload on p ranks.
func Predict(m Machine, w Workload, p int) (Prediction, error) {
	if p < 1 {
		return Prediction{}, fmt.Errorf("perfmodel: p must be >= 1, got %d", p)
	}
	if w.Ops < 0 || w.Steps < 1 || w.MsgsPerOp < 0 || w.RoundsPerOp < 0 || w.SkewFactor < 1 {
		return Prediction{}, fmt.Errorf("perfmodel: invalid workload %+v", w)
	}
	seqTime := float64(w.Ops) / m.SeqOpsPerSec // seconds

	// Busiest rank's operation count: mean × (multinomial noise ⊕ skew).
	meanOps := float64(w.Ops) / float64(p)
	sPerStep := meanOps / float64(w.Steps)
	noise := 1.0
	if p > 1 && sPerStep > 0 {
		// Expected max/mean of a balanced multinomial per step.
		noise = 1 + math.Sqrt(2*math.Log(float64(p))/sPerStep)
	}
	skew := w.SkewFactor
	if noise > skew {
		skew = noise
	}
	busiestOps := meanOps * skew

	// Per-operation cost at the busiest rank.
	computePerOp := 1/m.SeqOpsPerSec + m.RankOverheadPerOp.Seconds()
	remoteFrac := 1 - 1/float64(p)
	commPerOp := remoteFrac * (w.RoundsPerOp*2*m.Latency.Seconds() +
		w.MsgsPerOp*float64(w.MsgBytes)*m.PerByte.Seconds())
	// Serving other ranks' requests costs the busiest rank CPU time too:
	// roughly msgsPerOp × mean ops arrive, each a small handler.
	servePerMsg := m.RankOverheadPerOp.Seconds() / 4
	serveTime := meanOps * w.MsgsPerOp * servePerMsg * remoteFrac

	rankTime := busiestOps*(computePerOp+commPerOp) + serveTime

	// Core oversubscription: with fewer physical cores than ranks the
	// compute serializes (communication latency still overlaps).
	if w.PhysicalCores > 0 && p > w.PhysicalCores {
		over := float64(p) / float64(w.PhysicalCores)
		rankTime = busiestOps*computePerOp*over + busiestOps*commPerOp + serveTime*over
	}

	// Step synchronization: multinomial generation O(s/p) plus two
	// log-p collective phases and the end-of-step exchange (p messages).
	logp := math.Ceil(math.Log2(float64(p) + 1))
	stepSync := float64(w.Steps) * (2*logp*2*m.Latency.Seconds() +
		float64(p)*servePerMsg + sPerStep/m.TrialsPerSec)

	total := rankTime + stepSync
	commFrac := 0.0
	if total > 0 {
		commFrac = (busiestOps*commPerOp + stepSync) / total
	}
	return Prediction{
		P:        p,
		Time:     time.Duration(total * float64(time.Second)),
		Speedup:  seqTime / total,
		CommFrac: commFrac,
	}, nil
}

// Sweep predicts the workload across processor counts.
func Sweep(m Machine, w Workload, ps []int) ([]Prediction, error) {
	out := make([]Prediction, 0, len(ps))
	for _, p := range ps {
		pr, err := Predict(m, w, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// PeakSpeedup scans p = 1, 2, 4, … , maxP and returns the processor
// count and value of the highest predicted speedup.
func PeakSpeedup(m Machine, w Workload, maxP int) (bestP int, best float64, err error) {
	for p := 1; p <= maxP; p *= 2 {
		pr, err := Predict(m, w, p)
		if err != nil {
			return 0, 0, err
		}
		if pr.Speedup > best {
			best, bestP = pr.Speedup, p
		}
	}
	return bestP, best, nil
}
