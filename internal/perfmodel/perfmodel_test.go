package perfmodel

import (
	"testing"
	"time"
)

func wl() Workload {
	// A Miami-class full randomization: m ≈ 50M, t ≈ m·ln m / 2.
	w := DefaultWorkload(470_000_000, 100)
	return w
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(InfiniBandCluster, wl(), 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	bad := wl()
	bad.SkewFactor = 0.5
	if _, err := Predict(InfiniBandCluster, bad, 4); err == nil {
		t.Fatal("skew < 1 accepted")
	}
	bad = wl()
	bad.Steps = 0
	if _, err := Predict(InfiniBandCluster, bad, 4); err == nil {
		t.Fatal("steps=0 accepted")
	}
}

func TestPredictP1NearSequential(t *testing.T) {
	pr, err := Predict(InfiniBandCluster, wl(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// One rank has no communication; speedup is bounded by the rank
	// overhead but must be within a small constant of 1.
	if pr.Speedup < 0.3 || pr.Speedup > 1.1 {
		t.Fatalf("p=1 speedup %f", pr.Speedup)
	}
	if pr.CommFrac > 0.05 {
		t.Fatalf("p=1 comm fraction %f", pr.CommFrac)
	}
}

func TestPredictSpeedupGrowsThenSaturates(t *testing.T) {
	w := wl()
	var prev float64
	grew := false
	for _, p := range []int{1, 4, 16, 64, 256, 1024} {
		pr, err := Predict(InfiniBandCluster, w, p)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Speedup > prev {
			grew = true
		}
		prev = pr.Speedup
	}
	if !grew {
		t.Fatal("speedup never grew with p")
	}
	// Efficiency must fall with p (communication dominance).
	p64, _ := Predict(InfiniBandCluster, w, 64)
	p1024, _ := Predict(InfiniBandCluster, w, 1024)
	if p1024.Speedup/1024 >= p64.Speedup/64 {
		t.Fatalf("efficiency did not fall: %f/64 vs %f/1024", p64.Speedup, p1024.Speedup)
	}
	if p1024.CommFrac <= p64.CommFrac {
		t.Fatalf("comm fraction did not grow with p")
	}
}

// TestPredictMatchesPaperMagnitude: the paper reports speedup ≈85–110 in
// the 640–1024 processor range for ~500M-edge graphs. The model, fed the
// measured per-op constants, must land in the same order of magnitude —
// that is the reproduction target (factor-of-two band).
func TestPredictMatchesPaperMagnitude(t *testing.T) {
	bestP, best, err := PeakSpeedup(InfiniBandCluster, wl(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if best < 50 || best > 250 {
		t.Fatalf("peak speedup %f at p=%d, paper class is ~85-110", best, bestP)
	}
	if bestP < 128 {
		t.Fatalf("peak at suspiciously low p=%d", bestP)
	}
}

func TestPredictSkewHurts(t *testing.T) {
	balanced := wl()
	skewed := wl()
	skewed.SkewFactor = 3 // CP on Miami class
	pb, err := Predict(InfiniBandCluster, balanced, 256)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Predict(InfiniBandCluster, skewed, 256)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Speedup >= pb.Speedup {
		t.Fatalf("skew did not reduce speedup: %f vs %f", ps.Speedup, pb.Speedup)
	}
	// Roughly proportional: 3× skew costs at most ~3.5× speedup.
	if pb.Speedup/ps.Speedup > 3.5 {
		t.Fatalf("skew penalty implausibly large: %f vs %f", pb.Speedup, ps.Speedup)
	}
}

func TestPredictCoreCapHurts(t *testing.T) {
	free := wl()
	capped := wl()
	capped.PhysicalCores = 2
	pf, err := Predict(LoopbackGoroutines, free, 8)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Predict(LoopbackGoroutines, capped, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Speedup >= pf.Speedup {
		t.Fatalf("core cap did not reduce speedup: %f vs %f", pc.Speedup, pf.Speedup)
	}
	// The 2-core cap must keep 8-rank speedup in the ~no-speedup regime
	// this repository measures.
	if pc.Speedup > 2.5 {
		t.Fatalf("capped speedup %f implausible for 2 cores", pc.Speedup)
	}
}

func TestPredictMoreStepsCostMore(t *testing.T) {
	few := wl()
	few.Steps = 1
	many := wl()
	many.Steps = 10000
	pf, err := Predict(InfiniBandCluster, few, 512)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Predict(InfiniBandCluster, many, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Time <= pf.Time {
		t.Fatalf("step overhead missing: %v vs %v", pm.Time, pf.Time)
	}
}

func TestSweepShape(t *testing.T) {
	ps := []int{1, 2, 4, 8, 16}
	out, err := Sweep(InfiniBandCluster, wl(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ps) {
		t.Fatalf("sweep size %d", len(out))
	}
	for i, pr := range out {
		if pr.P != ps[i] || pr.Time <= 0 {
			t.Fatalf("bad prediction %+v", pr)
		}
	}
	// The latency-bound regime makes p=2 *slower* than p=1 (half the
	// operations suddenly pay full message round trips) — the same
	// behaviour this repository measures on real hardware. Past that,
	// runtime must fall.
	if out[1].Time <= out[0].Time {
		t.Fatalf("model lost the p=2 latency penalty: %v", out[:2])
	}
	for i := 2; i < len(out); i++ {
		if out[i].Time >= out[i-1].Time {
			t.Fatalf("runtime not decreasing from p=4 on: %v", out)
		}
	}
	if out[len(out)-1].Time >= out[0].Time {
		t.Fatalf("p=16 not faster than p=1: %v", out)
	}
}

func TestPredictTimeSane(t *testing.T) {
	pr, err := Predict(InfiniBandCluster, wl(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Time < time.Second || pr.Time > time.Hour {
		t.Fatalf("predicted time %v out of plausible range", pr.Time)
	}
}
