package analysis

// The annotation registry: every comment marker the suite reacts to,
// in one place. Two kinds exist — waivers, which silence one finding at
// one site (`// <marker> <reason>` on the finding's line or the line
// above; the reason is mandatory prose for the reviewer), and roots,
// which feed a check its starting set (`//es:hotpath` marks a function
// as a hot-path root for the allocation guard), and sinks, which end a
// check's call-graph walk (`//es:arena` marks a type whose methods are
// the blessed allocation slow path). README's "Annotations" table
// renders this registry and TestAnnotationsDocumented pins the two
// together, so a new marker cannot ship undocumented.

// Annotation is one registered comment marker.
type Annotation struct {
	Marker string // literal text looked for in comments
	Check  string // owning check
	Kind   string // "waiver", "root" or "sink"
	Doc    string // one-line purpose, mirrored in README
}

// Annotations returns the registry in presentation order.
func Annotations() []Annotation {
	return []Annotation{
		{Marker: lifecycleMarker, Check: "golifecycle", Kind: "waiver",
			Doc: "names the lifecycle mechanism of a goroutine the structural Done()/recover() rule cannot see"},
		{Marker: nopollMarker, Check: "nopoll", Kind: "waiver",
			Doc: "justifies a sleep-in-loop where no blocking wait exists"},
		{Marker: tagMarker, Check: "tagcheck", Kind: "waiver",
			Doc: "permits a raw or one-sided message tag at one transport call site"},
		{Marker: lockCollMarker, Check: "lockcollective", Kind: "waiver",
			Doc: "permits a collective under a held mutex (e.g. teardown with peers already gone)"},
		{Marker: collsyncMarker, Check: "collsync", Kind: "waiver",
			Doc: "permits a collective under a rank-dependent branch (all ranks provably take the same path)"},
		{Marker: hotpathMarker, Check: "hotalloc", Kind: "root",
			Doc: "marks a function as a hot-path root; the allocation guard walks the call graph from here"},
		{Marker: hotallocMarker, Check: "hotalloc", Kind: "waiver",
			Doc: "accepts one allocation site on a hot path (freelist miss, amortized growth, debug-gated)"},
		{Marker: arenaMarker, Check: "hotalloc", Kind: "sink",
			Doc: "marks a type as an allocation arena; the guard neither audits nor descends through its methods"},
		{Marker: sendownedMarker, Check: "sendowned", Kind: "waiver",
			Doc: "permits touching a buffer after SendOwned (e.g. a test asserting the transfer)"},
		{Marker: mmaplifeMarker, Check: "mmaplife", Kind: "waiver",
			Doc: "permits touching a mapping-derived slice after its segment's Close (the bytes are provably still valid)"},
	}
}
