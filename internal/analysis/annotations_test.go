package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnnotationsDocumented pins the annotation registry three ways:
// every annotation belongs to a registered check, markers are unique,
// and every marker appears (backtick-quoted) in the README's
// annotation table — a new marker cannot ship undocumented.
func TestAnnotationsDocumented(t *testing.T) {
	checks := make(map[string]bool)
	for _, name := range CheckNames() {
		checks[name] = true
	}
	readmeBytes, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(readmeBytes)

	seen := make(map[string]bool)
	for _, a := range Annotations() {
		if a.Marker == "" || a.Doc == "" {
			t.Errorf("annotation %+v incompletely registered", a)
		}
		if !checks[a.Check] {
			t.Errorf("annotation %q names unregistered check %q", a.Marker, a.Check)
		}
		if a.Kind != "waiver" && a.Kind != "root" && a.Kind != "sink" {
			t.Errorf("annotation %q has unknown kind %q", a.Marker, a.Kind)
		}
		if seen[a.Marker] {
			t.Errorf("duplicate marker %q", a.Marker)
		}
		seen[a.Marker] = true
		if !strings.Contains(readme, "`// "+a.Marker+"`") && !strings.Contains(readme, "`//"+a.Marker+"`") {
			t.Errorf("marker %q is not documented in README.md", a.Marker)
		}
	}

	// Every check that honors a marker must have it in the registry:
	// the per-check marker constants are the ground truth.
	for _, marker := range []string{
		lifecycleMarker, nopollMarker, tagMarker, lockCollMarker,
		collsyncMarker, hotpathMarker, hotallocMarker, arenaMarker, sendownedMarker,
	} {
		if !seen[marker] {
			t.Errorf("marker constant %q missing from Annotations()", marker)
		}
	}
}
