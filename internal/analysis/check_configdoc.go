package analysis

import (
	"go/ast"
	"strings"
)

// checkConfigDoc requires a doc comment on every exported field of a
// configuration struct. Config structs are the user-facing surface of
// the engine — edgeswitch.Options, core.Config, the mpi dial options —
// and an undocumented knob is a knob nobody can safely turn: the zero
// value's meaning, the valid range, and the perf consequences all live
// in the field comment. The rule is name-based: a struct type named
// Config or Options, or ending in Config, Options, or Option, is a
// configuration struct. Report-only (SevWarn): prose quality is for
// review, the check only catches absence.
var checkConfigDoc = &Check{
	Name: "configdoc",
	Doc: "exported fields of configuration structs (Config, Options, " +
		"*Config, *Options, *Option) must carry a doc comment",
	Severity: SevWarn,
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !isConfigTypeName(ts.Name.Name) {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					// Either a doc comment above or a trailing line
					// comment counts; embedded fields document at their
					// own declaration.
					if fld.Doc != nil || fld.Comment != nil || len(fld.Names) == 0 {
						continue
					}
					for _, name := range fld.Names {
						if !ast.IsExported(name.Name) {
							continue
						}
						p.Reportf(name.Pos(), "exported field %s.%s has no doc comment", ts.Name.Name, name.Name)
					}
				}
				return true
			})
		}
	},
}

// isConfigTypeName reports whether an exported type name marks a
// configuration struct by convention.
func isConfigTypeName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	return name == "Config" || name == "Options" ||
		strings.HasSuffix(name, "Config") ||
		strings.HasSuffix(name, "Options") ||
		strings.HasSuffix(name, "Option")
}
