package analysis

import (
	"go/ast"
	"go/token"
)

// nopollMarker waives the rule for a specific sleep when polling is
// genuinely the only option (e.g. watching an external process that
// exposes no wait handle). The comment must say why.
const nopollMarker = "nopoll:"

// checkNoPoll forbids unbounded sleep-polling in the runtime packages.
// A time.Sleep inside a loop is a latency/CPU trade picked blind: too
// short burns a core, too long adds tail latency to every startup and
// shutdown, and either way the loop wakes on a clock instead of on the
// event it is waiting for. internal/mpi and internal/core block on
// sync.Cond, channels or timers instead (the mailbox, hub writers and
// the distributed hub are all cond-based). A sleep whose loop genuinely
// cannot block — retrying an external resource with backoff — must
// either wait on a timer channel or carry a `// nopoll: <reason>`
// annotation on its line or the line above.
var checkNoPoll = &Check{
	Name: "nopoll",
	Doc: "forbid time.Sleep inside loops in internal/mpi and internal/core " +
		"(sleep-polling); block on a sync.Cond, channel or timer instead",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			if _, imported := importLocalName(f.Ast, "time"); !imported {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, nopollMarker)
			seen := make(map[token.Pos]bool) // dedup sleeps under nested loops
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.ForStmt:
					body = n.Body
				case *ast.RangeStmt:
					body = n.Body
				default:
					return true
				}
				loopCalls(body, func(call *ast.CallExpr) {
					if !p.isPkgSel(f, call.Fun, "time", "Sleep") || seen[call.Pos()] {
						return
					}
					seen[call.Pos()] = true
					line := p.Pkg.Fset.Position(call.Pos()).Line
					if annotated[line] || annotated[line-1] {
						return
					}
					p.Reportf(call.Pos(),
						"time.Sleep in a loop is sleep-polling: block on a sync.Cond, channel or timer, or annotate with // %s <reason>",
						nopollMarker)
				})
				return true
			})
		}
	},
}

// loopCalls invokes fn for every call expression in body without
// descending into nested function literals: a goroutine or closure body
// has its own control flow and is judged by the loops it itself
// contains.
func loopCalls(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn(n)
		}
		return true
	})
}
