package analysis

import "strconv"

// forbiddenRandImports are the random sources that bypass the
// deterministic, seed-driven streams of internal/rng. math/rand has
// global state and changes across Go releases; crypto/rand is
// non-reproducible by design. Either one in an algorithm path silently
// destroys the "same seed, same run" property every experiment and every
// distributed rank relies on.
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

var checkNoRand = &Check{
	Name: "norand",
	Doc: "forbid math/rand and crypto/rand imports outside internal/rng: " +
		"all randomness must derive from the seed-driven internal/rng streams",
	Run: func(p *Pass) {
		if p.Pkg.RelPath == "internal/rng" {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, spec := range f.Ast.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil || !forbiddenRandImports[path] {
					continue
				}
				p.Reportf(spec.Pos(),
					"import of %q outside internal/rng: draw randomness from a seed-split *rng.RNG instead, so runs stay reproducible",
					path)
			}
		}
	},
}
