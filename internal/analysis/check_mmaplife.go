package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"edgeswitch/internal/analysis/flow"
)

// mmaplifeMarker waives one use of a mapping-derived slice after its
// segment was closed (e.g. a test asserting behaviour of the heap
// fallback). The comment must say why the bytes are still valid.
const mmaplifeMarker = "mmaplife:"

// mmapPaths are the packages where mmap'd segments live and circulate.
var mmapPaths = []string{"internal/store", "internal/core"}

// checkMmapLife enforces the mapping-lifetime rule of the tiered edge
// store: a slice obtained from a Segment (List and friends return
// subslices of the mmap'd file, zero-copy) dies with the mapping. After
// Close/Unmap the pages are gone — touching the slice is a SIGSEGV on
// the mmap path, and on the heap-fallback path it silently reads stale
// bytes, so the bug only crashes on the platforms that got the fast
// path. Unit tests rarely catch it: the kernel may keep the pages
// resident until the address space is reused.
//
// The rule is a forward may-analysis over the CFG, shaped like
// sendowned: a local slice variable assigned from a []byte-returning
// method call on a Segment-typed receiver becomes derived from that
// segment; a Close or Unmap call on the segment kills the mapping
// (closed on ANY path into a join counts); any later mention of a
// derived slice is a use-after-unmap. Rebinding the slice variable
// kills its derived state. Deferred closes run at function exit, after
// every use, and are ignored. Function literals are opaque, and only
// plain identifier receivers and slices are tracked — field-held
// segments are their owner's business (internal/store tests cover
// those paths).
//
// Waive a site with `// mmaplife: <reason>` on its line or the line
// above.
var checkMmapLife = &Check{
	Name: "mmaplife",
	Doc: "forbid using an mmap-derived slice after its segment's Close/Unmap " +
		"(the mapping is gone; the slice points at unmapped pages), in " +
		"internal/store and internal/core",
	Run: func(p *Pass) {
		if !p.Pkg.Under(mmapPaths...) || p.Pkg.TypesInfo == nil {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, mmaplifeMarker)
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				mmapLifeFunc(p, fn, annotated)
			}
		}
	},
}

// mmapState is the per-block dataflow state: which slice variables are
// views into which segment variables, and which segments have been
// closed (position of the closing call, for diagnostics).
type mmapState struct {
	derived map[*types.Var]*types.Var
	closed  map[*types.Var]token.Pos
}

func newMmapState() *mmapState {
	return &mmapState{
		derived: make(map[*types.Var]*types.Var),
		closed:  make(map[*types.Var]token.Pos),
	}
}

func (s *mmapState) clone() *mmapState {
	c := newMmapState()
	for k, v := range s.derived {
		c.derived[k] = v
	}
	for k, v := range s.closed {
		c.closed[k] = v
	}
	return c
}

// mergeFrom unions src into s, reporting whether s changed.
func (s *mmapState) mergeFrom(src *mmapState) bool {
	changed := false
	for k, v := range src.derived {
		if _, ok := s.derived[k]; !ok {
			s.derived[k] = v
			changed = true
		}
	}
	for k, v := range src.closed {
		if _, ok := s.closed[k]; !ok {
			s.closed[k] = v
			changed = true
		}
	}
	return changed
}

// mmapLifeFunc runs the dataflow over one function body: fixpoint on
// block-entry states first, then one reporting pass.
func mmapLifeFunc(p *Pass, fn *ast.FuncDecl, annotated map[int]bool) {
	cfg := flow.BuildCFG(fn.Body)
	in := make(map[*flow.Block]*mmapState)
	in[cfg.Entry] = newMmapState()
	work := []*flow.Block{cfg.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := in[blk].clone()
		for _, node := range blk.Nodes {
			p.mmapLifeNode(node, out, nil)
		}
		for _, s := range blk.Succs {
			if in[s] == nil {
				in[s] = out.clone()
				work = append(work, s)
			} else if in[s].mergeFrom(out) {
				work = append(work, s)
			}
		}
	}
	reported := make(map[token.Pos]bool)
	for _, blk := range cfg.Blocks {
		state := in[blk]
		if state == nil {
			continue // unreachable block
		}
		state = state.clone()
		for _, node := range blk.Nodes {
			p.mmapLifeNode(node, state, func(id *ast.Ident, closedAt token.Pos) {
				if reported[id.Pos()] {
					return
				}
				line := p.Pkg.Fset.Position(id.Pos()).Line
				if annotated[line] || annotated[line-1] {
					return
				}
				reported[id.Pos()] = true
				p.Reportf(id.Pos(),
					"%s is a view into a segment mapping closed at line %d: "+
						"the pages are unmapped and the slice dangles — copy the bytes "+
						"out before Close, or keep the segment open across every use "+
						"(annotate with // %s <reason> if the use is provably safe)",
					id.Name, p.Pkg.Fset.Position(closedAt).Line, mmaplifeMarker)
			})
		}
	}
}

// mmapLifeNode applies one CFG node to the state, in evaluation order:
// uses are checked against the state at node entry, then assignment
// targets kill, then new derivations record, then closes kill their
// mappings. report is nil during the fixpoint pass.
func (p *Pass) mmapLifeNode(node ast.Node, state *mmapState, report func(*ast.Ident, token.Pos)) {
	if report != nil {
		p.mmapLifeUses(node, state, report)
	}

	// A plain rebind gives the slice variable a new, unrelated value.
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					delete(state.derived, v)
				}
			}
		}
		// b := seg.List(i) derives b from seg.
		if len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				seg := p.segmentSliceSource(rhs)
				if seg == nil {
					continue
				}
				if v := p.identVar(id); v != nil {
					state.derived[v] = seg
				}
			}
		}
	}

	// Range heads rebind Key/Value (e.g. ranging over a derived slice is
	// a use, handled above; the loop variables themselves are fresh).
	if rs, ok := node.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					delete(state.derived, v)
				}
			}
		}
	}

	// A deferred Close runs at function exit, after every use in the
	// body — it does not kill the mapping at its lexical position.
	if _, ok := node.(*ast.DeferStmt); ok {
		return
	}
	for _, cl := range p.segmentCloses(node) {
		state.closed[cl.seg] = cl.pos
	}
}

// mmapLifeUses reports every identifier in node that mentions a slice
// derived from a closed segment, skipping function literals.
func (p *Pass) mmapLifeUses(node ast.Node, state *mmapState, report func(*ast.Ident, token.Pos)) {
	assignTargets := make(map[*ast.Ident]bool)
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assignTargets[id] = true
			}
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || assignTargets[id] {
			return true
		}
		v := p.identVar(id)
		if v == nil {
			return true
		}
		seg, ok := state.derived[v]
		if !ok {
			return true
		}
		if closedAt, closed := state.closed[seg]; closed {
			report(id, closedAt)
		}
		return true
	})
}

// segmentSliceSource reports the segment variable behind expr when expr
// is a []byte-returning method call on a plain-identifier Segment
// receiver (seg.List(i) and friends); nil otherwise.
func (p *Pass) segmentSliceSource(expr ast.Expr) *types.Var {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !p.isSegmentVar(recv) {
		return nil
	}
	if t, ok := p.Pkg.TypesInfo.Types[call]; !ok || !isByteSlice(t.Type) {
		return nil
	}
	return p.identVar(recv)
}

// segmentClose is one Close/Unmap call on a tracked segment variable.
type segmentClose struct {
	seg *types.Var
	pos token.Pos
}

// segmentCloses finds Close/Unmap calls on plain-identifier Segment
// receivers in the node, outside function literals.
func (p *Pass) segmentCloses(node ast.Node) []segmentClose {
	var closes []segmentClose
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Unmap") {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !p.isSegmentVar(recv) {
			return true
		}
		if v := p.identVar(recv); v != nil {
			closes = append(closes, segmentClose{seg: v, pos: call.Pos()})
		}
		return true
	})
	return closes
}

// isSegmentVar reports whether id denotes a variable of (pointer to) a
// named type called Segment.
func (p *Pass) isSegmentVar(id *ast.Ident) bool {
	v := p.identVar(id)
	if v == nil {
		return false
	}
	t := v.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Segment"
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
