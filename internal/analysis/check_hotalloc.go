package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edgeswitch/internal/analysis/flow"
)

// hotpathMarker marks a function declaration (in its doc comment, as
// `//es:hotpath`) as a hot-path root: the per-operation engine step
// loop and the send-buffer/freelist paths. checkHotAlloc walks the
// static call graph from every root and audits everything it reaches.
const hotpathMarker = "es:hotpath"

// hotallocMarker waives one allocation site on a hot path. The
// legitimate reasons are narrow — a freelist miss (the allocation IS
// the slow path the freelist exists to avoid), amortized slice growth
// (append into a recycled buffer), or a debug-gated branch — and the
// comment must name which one applies.
const hotallocMarker = "hotalloc:"

// arenaMarker marks a type declaration (in its doc comment, as
// `//es:arena`) as an allocation arena: its methods ARE the codebase's
// blessed allocation slow path (bump allocators, freelist backbones),
// so the hot-path walk treats them as escape sinks — it neither audits
// their bodies nor descends through them. Without this, every arena
// grow path would need a per-line waiver and the waivers would drown
// the signal; the marker moves the review to the type, where the
// allocation policy actually lives.
const arenaMarker = "es:arena"

// checkHotAlloc guards the engine's hot path against new heap
// allocations. The per-operation cost of the switch loop is the whole
// performance story of this codebase: the freelists, buffer recycling,
// and arena reuse were bought deliberately, and a stray fmt.Sprintf or
// boxed interface argument in a function three calls below stepLoop
// silently hands the win back to the garbage collector. The check walks
// the module call graph from every `//es:hotpath` root and flags, in
// every reached function: append calls (may grow the backing array),
// make/new, composite literals with slice or map backing (and any
// &literal), fmt.* formatting calls, string<->[]byte/[]rune
// conversions, capturing function literals (the closure allocates), and
// concrete values passed into interface parameters (boxing). fmt.Errorf
// is exempt along with its arguments: constructing an error is the cold
// path by definition here.
//
// Static-call reachability under-approximates (interface and
// function-value calls produce no edges), which is the useful polarity:
// everything flagged really is on the hot path, and the transport
// boundary — an interface — naturally ends the walk. Methods of
// `//es:arena` types end it too: an arena IS the blessed allocation
// slow path, so the walk treats its methods as escape sinks rather than
// demanding a waiver per grow site. Every other intended allocation
// carries a `// hotalloc: <reason>` waiver, so the check is a ratchet:
// a new allocation needs a freelist, an arena, or a reviewed excuse.
var checkHotAlloc = &Check{
	Name: "hotalloc",
	Doc: "forbid unwaived heap allocations (append, make/new, literals, " +
		"fmt, conversions, closures, interface boxing) in functions " +
		"reachable from //es:hotpath roots; //es:arena types are sinks",
	RunModule: func(p *ModulePass) {
		g := flow.BuildCallGraph(callGraphSources(p.Pkgs))
		arenas := arenaTypeSet(p.Pkgs)
		var roots []*flow.Node
		for _, n := range g.Nodes() {
			if n.Decl.Doc != nil && commentGroupHas(n.Decl.Doc, hotpathMarker) {
				roots = append(roots, n)
			}
		}
		if len(roots) == 0 {
			return
		}
		reach := reachAvoiding(roots, func(n *flow.Node) bool {
			return isArenaMethod(n, arenas)
		})
		annotated := make(map[string]map[int]bool) // filename -> waived lines
		for _, n := range g.Nodes() {
			if reach.Root[n] == nil {
				continue
			}
			pkg := p.Pkgs[n.PkgID]
			file := declFile(pkg, n.Decl)
			if file == nil {
				continue
			}
			if annotated[file.Path] == nil {
				annotated[file.Path] = commentLines(pkg.Fset, file.Ast, hotallocMarker)
			}
			hotAllocFunc(p, pkg, n, reach, annotated[file.Path])
		}
	},
}

// arenaTypeSet collects every type marked `//es:arena` across the
// module. The marker may sit on the TypeSpec itself or on the enclosing
// GenDecl (the usual place for a single `type` declaration's doc).
func arenaTypeSet(pkgs []*Package) map[*types.TypeName]bool {
	set := make(map[*types.TypeName]bool)
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					marked := ts.Doc != nil && commentGroupHas(ts.Doc, arenaMarker) ||
						gd.Doc != nil && commentGroupHas(gd.Doc, arenaMarker)
					if !marked {
						continue
					}
					if tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						set[tn] = true
					}
				}
			}
		}
	}
	return set
}

// isArenaMethod reports whether the node is a method whose receiver's
// base type carries the //es:arena marker.
func isArenaMethod(n *flow.Node, arenas map[*types.TypeName]bool) bool {
	if len(arenas) == 0 {
		return false
	}
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return arenas[named.Obj()]
}

// reachAvoiding is ReachableNodes with sink pruning: the walk neither
// enters nor crosses a node the sink predicate accepts, so everything
// below an arena method stays cold unless reached some other way. An
// explicit hot-path root marker wins over its own sink-ness — marking a
// method with both is a deliberate request to audit it anyway.
func reachAvoiding(roots []*flow.Node, sink func(*flow.Node) bool) flow.Reach {
	r := flow.Reach{Root: make(map[*flow.Node]*flow.Node), Parent: make(map[*flow.Node]*flow.Node)}
	queue := make([]*flow.Node, 0, len(roots))
	for _, root := range roots {
		if root == nil || r.Root[root] != nil {
			continue
		}
		r.Root[root] = root
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if r.Root[c] != nil || sink(c) {
				continue
			}
			r.Root[c] = r.Root[n]
			r.Parent[c] = n
			queue = append(queue, c)
		}
	}
	return r
}

// commentGroupHas reports whether any comment in the group contains the
// marker.
func commentGroupHas(g *ast.CommentGroup, marker string) bool {
	for _, c := range g.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// declFile finds the parsed file containing the declaration.
func declFile(pkg *Package, decl *ast.FuncDecl) *File {
	name := pkg.Fset.Position(decl.Pos()).Filename
	for _, f := range pkg.Files {
		if f.Path == name {
			return f
		}
	}
	return nil
}

// hotAllocFunc scans one reached function body for allocation sites.
func hotAllocFunc(p *ModulePass, pkg *Package, n *flow.Node, reach flow.Reach, annotated map[int]bool) {
	info := pkg.TypesInfo
	where := hotPathAttribution(n, reach)
	report := func(pos token.Pos, what string) {
		line := pkg.Fset.Position(pos).Line
		if annotated[line] || annotated[line-1] {
			return
		}
		p.Reportf(pkg, pos, "%s %s (waive with // %s <reason>: freelist miss, amortized growth, or debug-gated)",
			what, where, hotallocMarker)
	}
	skipLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.UnaryExpr:
			if lit, ok := node.X.(*ast.CompositeLit); ok && node.Op == token.AND {
				skipLit[lit] = true
				report(node.Pos(), "&composite-literal escapes to the heap")
			}
		case *ast.CompositeLit:
			if skipLit[node] {
				return true
			}
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(node.Pos(), "slice/map literal allocates its backing store")
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, pkg, node); capt != "" {
				report(node.Pos(), "function literal captures "+capt+" — the closure allocates")
			}
		case *ast.CallExpr:
			return hotAllocCall(info, node, report)
		}
		return true
	})
}

// hotPathAttribution renders how a node got onto the hot path.
func hotPathAttribution(n *flow.Node, reach flow.Reach) string {
	root := reach.Root[n]
	if root == n {
		return "in //" + hotpathMarker + " root " + n.Name()
	}
	via := ""
	if parent := reach.Parent[n]; parent != nil && parent != root {
		via = " via " + parent.Name()
	}
	return "on the hot path (reached from //" + hotpathMarker + " root " + root.Name() + via + ")"
}

// hotAllocCall classifies one call expression. Returns false to prune
// the walk below an exempt fmt.Errorf.
func hotAllocCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "append may grow its backing array")
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			}
			return true
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				if fun.Sel.Name == "Errorf" {
					return false // error construction is the cold path
				}
				report(call.Pos(), "fmt."+fun.Sel.Name+" formats into fresh allocations")
				return true
			}
		}
	}
	// Conversions to string / []byte / []rune copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(tv.Type, info.TypeOf(call.Args[0])) {
			report(call.Pos(), "string/byte-slice conversion copies its operand")
		}
		return true
	}
	// Interface boxing at ordinary calls.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no boxing
		}
		pt := paramType(sig, i)
		if pt == nil {
			break
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants: the conversion is resolved at compile time or cached
		}
		report(arg.Pos(), "passing "+at.String()+" by value into an interface parameter boxes it")
	}
	return true
}

// paramType returns the effective type of argument i, unrolling the
// variadic tail; nil when i is out of range for a non-variadic call.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// convAllocates reports whether a conversion from `from` to `to`
// allocates: string <-> []byte/[]rune in either direction.
func convAllocates(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t live in a single pointer
// word, so storing one in an interface does not allocate.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// capturedVar returns the name of one variable a function literal
// captures from its enclosing function ("" when the literal is
// capture-free and therefore allocation-free). A variable is captured
// when it resolves to a non-field *types.Var declared outside the
// literal's span but not at package level.
func capturedVar(info *types.Info, pkg *Package, lit *ast.FuncLit) string {
	var pkgScope *types.Scope
	if pkg.Types != nil {
		pkgScope = pkg.Types.Scope()
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pkgScope != nil && v.Parent() == pkgScope {
			return true // package-level: no capture
		}
		if v.Pos().IsValid() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}
