package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// checkByName resolves a registered check for the fixture table.
func checkByName(t *testing.T, name string) *Check {
	t.Helper()
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no registered check %q", name)
	return nil
}

// loadFixture parses testdata/<check>/<variant> impersonating the given
// module-relative path, optionally resolving type information.
func loadFixture(t *testing.T, check, variant, as string, typecheck bool) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", check, variant), as)
	if err != nil {
		t.Fatal(err)
	}
	if typecheck {
		TypeCheckStandalone(pkg)
		if pkg.TypeErr != nil {
			t.Fatalf("fixture does not type-check: %v", pkg.TypeErr)
		}
	}
	return pkg
}

// finding is the (file base name, line) shape the fixture table asserts.
type finding struct {
	file string
	line int
}

func TestChecksOnFixtures(t *testing.T) {
	tests := []struct {
		name      string
		check     string
		variant   string
		as        string // impersonated module-relative package path
		typecheck bool
		want      []finding // nil: the fixture must come back clean
		msg       string    // substring required in every message
	}{
		{
			name:  "norand fires in a deterministic package",
			check: "norand", variant: "bad", as: "internal/core",
			want: []finding{{"bad.go", 6}, {"bad.go", 7}},
			msg:  "internal/rng",
		},
		{
			name:  "norand exempts internal/rng itself",
			check: "norand", variant: "bad", as: "internal/rng",
		},
		{
			name:  "norand silent on clean code",
			check: "norand", variant: "good", as: "internal/core",
		},
		{
			name:  "notime fires in a deterministic package",
			check: "notime", variant: "bad", as: "internal/core",
			want: []finding{{"bad.go", 8}, {"bad.go", 10}},
			msg:  "internal/clock",
		},
		{
			name:  "notime exempts non-deterministic packages",
			check: "notime", variant: "bad", as: "internal/harness",
		},
		{
			name:  "notime resolves shadowing with type info",
			check: "notime", variant: "good", as: "internal/core",
			typecheck: true,
		},
		{
			name:  "notime overapproximates shadowing without type info",
			check: "notime", variant: "good", as: "internal/core",
			want: []finding{{"good.go", 14}},
		},
		{
			name:  "golifecycle fires in the runtime",
			check: "golifecycle", variant: "bad", as: "internal/mpi",
			want: []finding{{"bad.go", 7}, {"bad.go", 10}, {"bad.go", 11}},
			msg:  "unmanaged goroutine",
		},
		{
			name:  "golifecycle exempts non-engine packages",
			check: "golifecycle", variant: "bad", as: "internal/metrics",
		},
		{
			name:  "golifecycle accepts Done, recover and annotations",
			check: "golifecycle", variant: "good", as: "internal/mpi",
		},
		{
			name:  "copylock fires on by-value locks",
			check: "copylock", variant: "bad", as: "internal/mpi",
			typecheck: true,
			want: []finding{
				{"bad.go", 14}, // parameter sync.Mutex
				{"bad.go", 16}, // parameter struct holding a Mutex
				{"bad.go", 18}, // result sync.WaitGroup
				{"bad.go", 20}, // by-value receiver
				{"bad.go", 22}, // parameter atomic.Int64
				{"bad.go", 24}, // parameter [2]sync.Mutex
				{"bad.go", 26}, // function-literal parameter sync.Once
			},
			msg: "by value",
		},
		{
			name:  "copylock silent on indirections",
			check: "copylock", variant: "good", as: "internal/mpi",
			typecheck: true,
		},
		{
			name:  "mpierr fires on dropped transport errors",
			check: "mpierr", variant: "bad", as: "internal/mpi",
			typecheck: true,
			want:      []finding{{"bad.go", 19}, {"bad.go", 20}, {"bad.go", 24}},
			msg:       "ignored",
		},
		{
			name:  "mpierr exempts non-engine packages",
			check: "mpierr", variant: "bad", as: "cmd/esworker",
		},
		{
			name:  "mpierr accepts handled, discarded and deferred errors",
			check: "mpierr", variant: "good", as: "internal/mpi",
			typecheck: true,
		},
		{
			name:  "noprint fires in library packages",
			check: "noprint", variant: "bad", as: "internal/metrics",
			want: []finding{{"bad.go", 12}, {"bad.go", 13}, {"bad.go", 14}, {"bad.go", 15}},
			msg:  "internal/metrics",
		},
		{
			name:  "noprint exempts cmd",
			check: "noprint", variant: "bad", as: "cmd/edgeswitch",
		},
		{
			name:  "noprint exempts examples",
			check: "noprint", variant: "bad", as: "examples/quickstart",
		},
		{
			name:  "noprint silent on injected writers",
			check: "noprint", variant: "good", as: "internal/metrics",
		},
		{
			name:  "nopoll fires on sleep loops in the runtime",
			check: "nopoll", variant: "bad", as: "internal/mpi",
			want: []finding{{"bad.go", 7}, {"bad.go", 14}},
			msg:  "sleep-polling",
		},
		{
			name:  "nopoll exempts non-engine packages",
			check: "nopoll", variant: "bad", as: "internal/harness",
		},
		{
			name:  "nopoll accepts blocking waits and annotated sleeps",
			check: "nopoll", variant: "good", as: "internal/mpi",
		},
		{
			name:  "tagcheck fires on raw and one-sided tags",
			check: "tagcheck", variant: "bad", as: "internal/core",
			typecheck: true,
			want: []finding{
				{"bad.go", 19}, // raw literal tag in Send
				{"bad.go", 22}, // ackTag used on the send side only
			},
			msg: "tag",
		},
		{
			name:  "tagcheck literal rule runs without type info",
			check: "tagcheck", variant: "bad", as: "internal/core",
			want: []finding{{"bad.go", 19}},
			msg:  "raw integer tag",
		},
		{
			name:  "tagcheck exempts non-engine packages",
			check: "tagcheck", variant: "bad", as: "internal/metrics",
		},
		{
			name:  "tagcheck accepts named, wildcard and annotated tags",
			check: "tagcheck", variant: "good", as: "internal/core",
			typecheck: true,
		},
		{
			name:  "lockcollective fires under held mutexes",
			check: "lockcollective", variant: "bad", as: "internal/core",
			want: []finding{
				{"bad.go", 22}, // Barrier under a deferred Unlock
				{"bad.go", 27}, // Allgather between Lock and Unlock
			},
			msg: "holding",
		},
		{
			name:  "lockcollective exempts non-engine packages",
			check: "lockcollective", variant: "bad", as: "internal/harness",
		},
		{
			name:  "lockcollective accepts released locks, literal scopes and annotations",
			check: "lockcollective", variant: "good", as: "internal/core",
		},
		{
			name:  "collsync fires on rank-divergent collectives",
			check: "collsync", variant: "bad", as: "internal/mpi",
			typecheck: true,
			want: []finding{
				{"bad.go", 12}, // Barrier inside a rank branch
				{"bad.go", 23}, // Barrier after a rank-keyed early return
				{"bad.go", 32}, // call to sync() (performs Barrier) inside a rank branch
			},
			msg: "rank-dependent branch",
		},
		{
			name:  "collsync exempts non-engine packages",
			check: "collsync", variant: "bad", as: "internal/harness",
		},
		{
			name:  "collsync accepts joins, sends and annotated sites",
			check: "collsync", variant: "good", as: "internal/mpi",
			typecheck: true,
		},
		{
			name:  "hotalloc fires on every allocation shape below a root",
			check: "hotalloc", variant: "bad", as: "internal/core",
			typecheck: true,
			want: []finding{
				{"bad.go", 14}, // append
				{"bad.go", 15}, // make
				{"bad.go", 17}, // new
				{"bad.go", 19}, // &composite literal
				{"bad.go", 21}, // slice literal
				{"bad.go", 28}, // fmt.Sprintf, reached via the call graph
				{"bad.go", 30}, // string -> []byte conversion
				{"bad.go", 32}, // capturing function literal
				{"bad.go", 38}, // interface boxing
			},
			msg: "es:hotpath root",
		},
		{
			name:  "hotalloc accepts waived freelist paths, fmt.Errorf and arena sinks",
			check: "hotalloc", variant: "good", as: "internal/core",
			typecheck: true,
		},
		{
			name:  "hotalloc catches a Sprintf regression two calls below the loop",
			check: "hotalloc", variant: "regress", as: "internal/core",
			typecheck: true,
			want:      []finding{{"regress.go", 21}},
			msg:       "fmt.Sprintf",
		},
		{
			name:  "sendowned fires on use-after-transfer",
			check: "sendowned", variant: "bad", as: "internal/core",
			typecheck: true,
			want: []finding{
				{"bad.go", 11}, // append after send
				{"bad.go", 18}, // read after send
				{"bad.go", 26}, // moved on one path, used at the join
				{"bad.go", 32}, // recycled onto a freelist after send
			},
			msg: "SendOwned",
		},
		{
			name:  "sendowned exempts non-engine packages",
			check: "sendowned", variant: "bad", as: "internal/harness",
			typecheck: true,
		},
		{
			name:  "sendowned accepts rebinds, fresh loop buffers and annotations",
			check: "sendowned", variant: "good", as: "internal/core",
			typecheck: true,
		},
		{
			name:  "mmaplife fires on slice uses after Close/Unmap",
			check: "mmaplife", variant: "bad", as: "internal/store",
			typecheck: true,
			want: []finding{
				{"bad.go", 13}, // read after Close
				{"bad.go", 22}, // closed on one path, used at the join
				{"bad.go", 29}, // returned after Unmap
			},
			msg: "unmapped",
		},
		{
			name:  "mmaplife exempts non-store packages",
			check: "mmaplife", variant: "bad", as: "internal/harness",
			typecheck: true,
		},
		{
			name:  "mmaplife accepts copy-out, deferred Close, rebinds and annotations",
			check: "mmaplife", variant: "good", as: "internal/store",
			typecheck: true,
		},
		{
			name:  "configdoc fires on undocumented exported config fields",
			check: "configdoc", variant: "bad", as: "internal/core",
			want: []finding{
				{"bad.go", 7},  // Config.Workers
				{"bad.go", 13}, // DialOptions.Addr
				{"bad.go", 14}, // DialOptions.Timeout
			},
			msg: "doc comment",
		},
		{
			name:  "configdoc accepts documented, trailing-comment and embedded fields",
			check: "configdoc", variant: "good", as: "internal/core",
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := loadFixture(t, tt.check, tt.variant, tt.as, tt.typecheck)
			diags := RunChecks([]*Package{pkg}, []*Check{checkByName(t, tt.check)})
			if len(diags) != len(tt.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(tt.want), diags)
			}
			for i, d := range diags {
				if d.Check != tt.check {
					t.Errorf("diagnostic %d attributed to %q, want %q", i, d.Check, tt.check)
				}
				if got := filepath.Base(d.File); got != tt.want[i].file {
					t.Errorf("diagnostic %d in %s, want %s", i, got, tt.want[i].file)
				}
				if d.Line != tt.want[i].line {
					t.Errorf("diagnostic %d at line %d, want %d (%s)", i, d.Line, tt.want[i].line, d)
				}
				if tt.msg != "" && !strings.Contains(d.Message, tt.msg) {
					t.Errorf("diagnostic %d message %q missing %q", i, d.Message, tt.msg)
				}
			}
		})
	}
}

func TestCheckCatalogue(t *testing.T) {
	names := CheckNames()
	if len(names) < 6 {
		t.Fatalf("expected at least 6 checks, have %v", names)
	}
	seen := make(map[string]bool)
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" {
			t.Fatalf("check %+v incompletely registered", c)
		}
		if (c.Run == nil) == (c.RunModule == nil) {
			t.Fatalf("check %q must set exactly one of Run and RunModule", c.Name)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "norand", File: "internal/core/engine.go", Line: 12, Col: 2, Message: "boom"}
	if got, want := d.String(), "internal/core/engine.go:12:2: [norand] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestModuleIsClean is the suite's own gate: the enclosing repository
// must pass every check (the CI equivalent of `go run ./cmd/esvet`).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) < 8 {
		t.Fatalf("suspiciously few packages loaded: %d", len(mod.Packages))
	}
	mod.TypeCheck()
	for _, p := range mod.Packages {
		if p.TypeErr != nil {
			t.Errorf("type-checking %s: %v", p.RelPath, p.TypeErr)
		}
	}
	if diags := RunChecks(mod.Packages, nil); len(diags) != 0 {
		for _, d := range diags {
			t.Error(d)
		}
	}
}
