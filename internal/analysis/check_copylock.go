package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// noCopyTypes are the synchronization primitives whose value semantics
// break when copied: a copied Mutex is a different lock guarding the
// same data, a copied WaitGroup splits its counter. The engine's
// correctness depends on exactly one mailbox mutex per rank and exactly
// one WaitGroup per transport, so a by-value signature is always a bug
// even when today's call sites happen to pass zero-valued instances.
var noCopyTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true,
		"Once": true, "Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// checkCopyLock flags function parameters, results and receivers whose
// type holds a lock by value (directly, or through struct fields and
// array elements — the transitive scan go/types makes possible).
// Pointers, slices, maps and channels are indirections and therefore
// fine. This is the project-scoped cousin of `go vet -copylocks`,
// extended to results and to the atomic value types.
var checkCopyLock = &Check{
	Name: "copylock",
	Doc: "forbid passing sync.Mutex/WaitGroup (or structs containing them) " +
		"by value in parameters, results and receivers",
	Run: func(p *Pass) {
		info := p.Pkg.TypesInfo
		if info == nil {
			return // type check failed or never ran; esvet surfaces that separately
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				var ft *ast.FuncType
				var what string
				switch n := n.(type) {
				case *ast.FuncDecl:
					ft = n.Type
					what = n.Name.Name
					if n.Recv != nil {
						for _, field := range n.Recv.List {
							reportLockCopies(p, info, field, "receiver of "+what)
						}
					}
				case *ast.FuncLit:
					ft = n.Type
					what = "function literal"
				default:
					return true
				}
				for _, field := range ft.Params.List {
					reportLockCopies(p, info, field, "parameter of "+what)
				}
				if ft.Results != nil {
					for _, field := range ft.Results.List {
						reportLockCopies(p, info, field, "result of "+what)
					}
				}
				return true
			})
		}
	},
}

// reportLockCopies checks one field (param/result/receiver entry).
func reportLockCopies(p *Pass, info *types.Info, field *ast.Field, what string) {
	tv, ok := info.Types[field.Type]
	if !ok {
		return
	}
	if path, found := lockPath(tv.Type, nil); found {
		p.Reportf(field.Type.Pos(), "%s copies %s by value; pass a pointer instead", what, path)
	}
}

// lockPath reports whether t holds a no-copy type by value, returning a
// human-readable path like "sync.Mutex" or "mpi.World (field mu sync.Mutex)".
func lockPath(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			if noCopyTypes[obj.Pkg().Path()][obj.Name()] {
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
		}
		if path, found := lockPath(u.Underlying(), seen); found {
			name := u.Obj().Name()
			if pkg := u.Obj().Pkg(); pkg != nil {
				name = pkg.Name() + "." + name
			}
			return fmt.Sprintf("%s (%s)", name, path), true
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if path, found := lockPath(fld.Type(), seen); found {
				return fmt.Sprintf("field %s %s", fld.Name(), path), true
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return "", false
}
