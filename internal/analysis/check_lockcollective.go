package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockCollMarker waives one collective call site that must run under a
// lock (e.g. a teardown barrier where the peers are already gone and
// the lock only guards local state). The comment must say why.
const lockCollMarker = "lockcollective:"

// collectiveCalls are the Comm methods that block until every rank in
// the world has entered them. Calling one while holding a mutex is a
// distributed-deadlock recipe: rank A blocks in the collective holding
// mu, rank B blocks on mu on its way to the collective, and the world
// hangs with no goroutine runnable locally — the race detector and unit
// tests cannot see it because it needs a particular cross-rank
// interleaving.
var collectiveCalls = map[string]bool{
	"Barrier":           true,
	"Bcast":             true,
	"Gather":            true,
	"Scatter":           true,
	"Allgather":         true,
	"Alltoall":          true,
	"AllgatherInt64":    true,
	"ReduceInt64s":      true,
	"AllreduceInt64s":   true,
	"ReduceFloat64s":    true,
	"AllreduceFloat64s": true,
}

var lockAcquire = map[string]bool{"Lock": true, "RLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

// checkLockCollective flags collective operations invoked while a mutex
// is (conservatively) held, in internal/mpi and internal/core. It is a
// per-function linear scan, not a dataflow analysis: a `mu.Lock()` marks
// mu held until a plain `mu.Unlock()` is seen in source order; a
// `defer mu.Unlock()` keeps mu held through the rest of the function
// (that is what defer means for every statement that follows); function
// literals start a fresh scope (they run at an unknown time, and goroutine
// bodies take their own locks). Unlocks inside one branch of an if/select
// clear the held state for the scan that follows — an under-approximation,
// never a false positive from branch merging.
//
// Waive a site with a `// lockcollective: <reason>` annotation on its
// line or the line above.
var checkLockCollective = &Check{
	Name: "lockcollective",
	Doc: "forbid blocking collectives (Barrier, Gather, Allreduce, ...) " +
		"while holding a mutex in internal/mpi and internal/core",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, lockCollMarker)
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				scanLockedRegion(p, fn.Body, annotated)
			}
		}
	},
}

// scanLockedRegion walks one function (or function-literal) body in
// source order, tracking which mutexes are held and reporting collective
// calls made while the held set is non-empty.
func scanLockedRegion(p *Pass, body *ast.BlockStmt, annotated map[int]bool) {
	held := make(map[string]token.Pos) // mutex expr -> Lock position
	// Deferred unlocks release at function exit, so for the purpose of
	// this source-order scan they never release: remember their call
	// nodes so the Unlock handling below skips them.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Fresh scope: the literal runs at an unknown time with its
			// own lock discipline (goroutine bodies, callbacks).
			scanLockedRegion(p, n.Body, annotated)
			return false
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && lockRelease[sel.Sel.Name] {
				deferred[n.Call] = true
			}
			return true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case lockAcquire[name] && len(n.Args) == 0:
				held[types.ExprString(sel.X)] = n.Pos()
			case lockRelease[name] && len(n.Args) == 0:
				if !deferred[n] {
					delete(held, types.ExprString(sel.X))
				}
			case collectiveCalls[name] && len(held) > 0:
				line := p.Pkg.Fset.Position(n.Pos()).Line
				if annotated[line] || annotated[line-1] {
					return true
				}
				for mu, pos := range held {
					p.Reportf(n.Pos(),
						"collective %s called while holding %s (locked at line %d): a blocked peer deadlocks the world (annotate with // %s <reason> if unavoidable)",
						name, mu, p.Pkg.Fset.Position(pos).Line, lockCollMarker)
				}
			}
			return true
		}
		return true
	})
}
