package analysis

import (
	"go/ast"
	"go/types"
)

// transportCalls are the method names whose error results carry the
// message-passing runtime's failure signal. A dropped Send error means a
// protocol message silently vanished — the engine then deadlocks or,
// worse, finishes with a corrupted edge set; a dropped Close error hides
// transport teardown failures that the next Run inherits.
var transportCalls = map[string]bool{
	"Send": true, "SendOwned": true, "Recv": true, "Close": true,
}

// checkMPIErr flags expression-statement calls (the completely ignored
// form) to Send/SendOwned/Recv/Close in the runtime and engine packages.
// An explicit `_ = x.Close()` or a `defer x.Close()` is a visible,
// deliberate decision and is allowed; silently dropping the result on
// the statement line is not. When type information is available, calls
// whose signature carries no error are exempt.
var checkMPIErr = &Check{
	Name: "mpierr",
	Doc: "forbid ignoring the error results of Send/SendOwned/Recv/Close " +
		"call statements in internal/mpi and internal/core",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !transportCalls[sel.Sel.Name] {
					return true
				}
				if info := p.Pkg.TypesInfo; info != nil && !callReturnsError(info, call) {
					return true
				}
				p.Reportf(stmt.Pos(),
					"result of %s ignored: handle the error, or discard it explicitly with `_ = ...` if teardown makes it irrelevant",
					sel.Sel.Name)
				return true
			})
		}
	},
}

// callReturnsError reports whether any result of the call has type error.
// Unresolvable calls default to true (flag rather than miss).
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return true
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
