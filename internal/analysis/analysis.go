// Package analysis is a small, dependency-free static-analysis framework
// plus the project-specific checks behind cmd/esvet. The parallel engine
// is a message-passing state machine whose correctness rests on
// invariants the compiler cannot see: every random draw must flow through
// the deterministic internal/rng streams, wall-clock reads must stay out
// of deterministic paths, every goroutine in the runtime must have an
// explicit lifecycle, and transport errors must not be dropped. Each
// check encodes one such invariant as a mechanical rule with file:line
// diagnostics, so a violation is caught by `go run ./cmd/esvet` (or the
// test suite) instead of by a silently biased benchmark run.
//
// The framework is built only on go/ast, go/parser, go/token and
// go/types; see load.go for how a module is parsed and type-checked
// without golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Severity grades a finding. SevError findings gate CI (`make check`
// fails, esvet exits 1); SevWarn findings are report-only — printed and
// carried into JSON/SARIF output, but never fail the build.
type Severity int

const (
	SevError Severity = iota
	SevWarn
)

func (s Severity) String() string {
	if s == SevWarn {
		return "warn"
	}
	return "error"
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Check    string `json:"check"`
	Severity string `json:"severity"` // "error" or "warn"
	File     string `json:"file"`     // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	sev := ""
	if d.Severity == SevWarn.String() {
		sev = "warning: "
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s%s", d.File, d.Line, d.Col, d.Check, sev, d.Message)
}

// Check is one named rule. Exactly one of Run and RunModule is set:
// Run inspects a single package per call; RunModule runs once over the
// whole package set (for rules that need the cross-package call graph).
// The zero Severity is SevError — report-only checks opt into SevWarn.
type Check struct {
	Name      string
	Doc       string
	Severity  Severity
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Checks returns every registered check in presentation order. The
// README check table mirrors this order and TestListMatchesReadme pins
// the two together.
func Checks() []*Check {
	return []*Check{
		checkNoRand,
		checkNoTime,
		checkGoLifecycle,
		checkCopyLock,
		checkMPIErr,
		checkNoPrint,
		checkNoPoll,
		checkTag,
		checkLockCollective,
		checkCollSync,
		checkHotAlloc,
		checkSendOwned,
		checkMmapLife,
		checkConfigDoc,
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Pass carries one (check, package) run and collects its diagnostics.
type Pass struct {
	Pkg   *Package
	check *Check
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, diagnostic(p.check, p.Pkg, pos, format, args...))
}

// ModulePass carries one whole-module check run: the rule sees every
// package at once (module checks build cross-package structures like the
// call graph) and reports findings against the package owning each
// position.
type ModulePass struct {
	Pkgs  []*Package
	check *Check
	out   *[]Diagnostic
}

// Reportf records a finding at pos, which must belong to pkg's FileSet.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, diagnostic(p.check, pkg, pos, format, args...))
}

func diagnostic(c *Check, pkg *Package, pos token.Pos, format string, args ...any) Diagnostic {
	position := pkg.Fset.Position(pos)
	file := position.Filename
	if pkg.Module != nil {
		file = pkg.Module.Rel(file)
	}
	return Diagnostic{
		Check:    c.Name,
		Severity: c.Severity.String(),
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// RunChecks executes the given checks (all registered ones if nil) over
// the packages and returns the findings sorted by position. Package
// checks run once per package; module checks run once over the whole
// set.
func RunChecks(pkgs []*Package, checks []*Check) []Diagnostic {
	if checks == nil {
		checks = Checks()
	}
	var diags []Diagnostic
	for _, c := range checks {
		if c.RunModule != nil {
			c.RunModule(&ModulePass{Pkgs: pkgs, check: c, out: &diags})
			continue
		}
		for _, pkg := range pkgs {
			c.Run(&Pass{Pkg: pkg, check: c, out: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// deterministicPaths are the packages whose behaviour must be a pure
// function of the experiment seed (see DESIGN.md): no wall clock, no
// global randomness.
var deterministicPaths = []string{"internal/core", "internal/rng", "internal/partition"}

// enginePaths are the message-passing runtime and the engine built on it,
// where goroutine lifecycles and transport errors are load-bearing.
var enginePaths = []string{"internal/mpi", "internal/core"}

// under reports whether rel equals one of the prefixes or lies beneath one.
func under(rel string, prefixes ...string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// importLocalName returns the identifier by which file f refers to the
// import with the given path ("" and false when not imported; "." dot
// imports and "_" blank imports return their literal alias).
func importLocalName(f *ast.File, path string) (string, bool) {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != path {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name, true
		}
		// Default name: last path element (exact for every stdlib
		// package the checks care about).
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:], true
		}
		return p, true
	}
	return "", false
}

// isPkgSel reports whether e is a selector pkgName.sel where pkgName is
// the local name of the given import in f. When type information is
// available it additionally verifies the identifier resolves to the
// package (ruling out shadowing by a local variable).
func (p *Pass) isPkgSel(f *File, e ast.Expr, path, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return false
	}
	name, imported := importLocalName(f.Ast, path)
	if !imported || id.Name != name {
		return false
	}
	// With type information, rule out shadowing by a local identifier;
	// test files are parsed but not type-checked, so they fall back to
	// the syntactic answer.
	if info := p.Pkg.TypesInfo; info != nil {
		if obj := info.Uses[id]; obj != nil {
			return resolvePkgName(info, id, path)
		}
	}
	return true
}

// commentLines returns the set of source lines in f that carry a comment
// containing the given marker.
func commentLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := make(map[int]bool)
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			if strings.Contains(c.Text, marker) {
				start := fset.Position(c.Pos()).Line
				end := fset.Position(c.End()).Line
				for l := start; l <= end; l++ {
					lines[l] = true
				}
			}
		}
	}
	return lines
}
