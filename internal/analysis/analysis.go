// Package analysis is a small, dependency-free static-analysis framework
// plus the project-specific checks behind cmd/esvet. The parallel engine
// is a message-passing state machine whose correctness rests on
// invariants the compiler cannot see: every random draw must flow through
// the deterministic internal/rng streams, wall-clock reads must stay out
// of deterministic paths, every goroutine in the runtime must have an
// explicit lifecycle, and transport errors must not be dropped. Each
// check encodes one such invariant as a mechanical rule with file:line
// diagnostics, so a violation is caught by `go run ./cmd/esvet` (or the
// test suite) instead of by a silently biased benchmark run.
//
// The framework is built only on go/ast, go/parser, go/token and
// go/types; see load.go for how a module is parsed and type-checked
// without golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one named rule. Run inspects a single package and reports
// findings through the pass.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Checks returns every registered check in presentation order.
func Checks() []*Check {
	return []*Check{
		checkNoRand,
		checkNoTime,
		checkGoLifecycle,
		checkCopyLock,
		checkMPIErr,
		checkNoPrint,
		checkNoPoll,
		checkTag,
		checkLockCollective,
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Pass carries one (check, package) run and collects its diagnostics.
type Pass struct {
	Pkg   *Package
	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if p.Pkg.Module != nil {
		file = p.Pkg.Module.Rel(file)
	}
	*p.out = append(*p.out, Diagnostic{
		Check:   p.check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// RunChecks executes the given checks (all registered ones if nil) over
// the packages and returns the findings sorted by position.
func RunChecks(pkgs []*Package, checks []*Check) []Diagnostic {
	if checks == nil {
		checks = Checks()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, c := range checks {
			c.Run(&Pass{Pkg: pkg, check: c.Name, out: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// deterministicPaths are the packages whose behaviour must be a pure
// function of the experiment seed (see DESIGN.md): no wall clock, no
// global randomness.
var deterministicPaths = []string{"internal/core", "internal/rng", "internal/partition"}

// enginePaths are the message-passing runtime and the engine built on it,
// where goroutine lifecycles and transport errors are load-bearing.
var enginePaths = []string{"internal/mpi", "internal/core"}

// under reports whether rel equals one of the prefixes or lies beneath one.
func under(rel string, prefixes ...string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// importLocalName returns the identifier by which file f refers to the
// import with the given path ("" and false when not imported; "." dot
// imports and "_" blank imports return their literal alias).
func importLocalName(f *ast.File, path string) (string, bool) {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != path {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name, true
		}
		// Default name: last path element (exact for every stdlib
		// package the checks care about).
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:], true
		}
		return p, true
	}
	return "", false
}

// isPkgSel reports whether e is a selector pkgName.sel where pkgName is
// the local name of the given import in f. When type information is
// available it additionally verifies the identifier resolves to the
// package (ruling out shadowing by a local variable).
func (p *Pass) isPkgSel(f *File, e ast.Expr, path, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return false
	}
	name, imported := importLocalName(f.Ast, path)
	if !imported || id.Name != name {
		return false
	}
	// With type information, rule out shadowing by a local identifier;
	// test files are parsed but not type-checked, so they fall back to
	// the syntactic answer.
	if info := p.Pkg.TypesInfo; info != nil {
		if obj := info.Uses[id]; obj != nil {
			return resolvePkgName(info, id, path)
		}
	}
	return true
}

// commentLines returns the set of source lines in f that carry a comment
// containing the given marker.
func commentLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := make(map[int]bool)
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			if strings.Contains(c.Text, marker) {
				start := fset.Position(c.Pos()).Line
				end := fset.Position(c.End()).Line
				for l := start; l <= end; l++ {
					lines[l] = true
				}
			}
		}
	}
	return lines
}
