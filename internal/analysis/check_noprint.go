package analysis

import "go/ast"

// printedFmtFuncs write to stdout implicitly.
var printedFmtFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// fprintFmtFuncs take an explicit writer as their first argument.
var fprintFmtFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// checkNoPrint keeps terminal output out of library packages. The
// library's only sanctioned outputs are return values and errors;
// experiment tables go through an injected io.Writer (see
// internal/harness.Config.Out). A stray fmt.Println in internal/core
// corrupts the machine-readable output of cmd/experiments and esworker
// pipelines, and hardcoding os.Stderr makes output uncapturable in
// tests. Only cmd/ and examples/ may address the terminal directly.
var checkNoPrint = &Check{
	Name: "noprint",
	Doc: "forbid fmt.Print*/println and fmt.Fprint*(os.Stdout/os.Stderr, ...) " +
		"in library packages; only cmd/ and examples/ may print",
	Run: func(p *Pass) {
		if p.Pkg.Under("cmd", "examples") {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					// The print/println builtins write to stderr.
					if (fun.Name == "print" || fun.Name == "println") && isBuiltin(p, fun) {
						p.Reportf(call.Pos(), "builtin %s in library package %s: return values or write to an injected io.Writer instead", fun.Name, describePkg(p))
					}
				case *ast.SelectorExpr:
					if printedFmtFuncs[fun.Sel.Name] && p.isPkgSel(f, fun, "fmt", fun.Sel.Name) {
						p.Reportf(call.Pos(), "fmt.%s in library package %s: return values or write to an injected io.Writer instead", fun.Sel.Name, describePkg(p))
						return true
					}
					if fprintFmtFuncs[fun.Sel.Name] && p.isPkgSel(f, fun, "fmt", fun.Sel.Name) && len(call.Args) > 0 {
						for _, std := range []string{"Stdout", "Stderr"} {
							if p.isPkgSel(f, call.Args[0], "os", std) {
								p.Reportf(call.Pos(), "fmt.%s to os.%s in library package %s: write to an injected io.Writer so callers and tests can capture it", fun.Sel.Name, std, describePkg(p))
							}
						}
					}
				}
				return true
			})
		}
	},
}

// isBuiltin reports whether id resolves to a predeclared builtin (or, in
// the absence of type information, is not locally redeclared — best
// effort: assume builtin).
func isBuiltin(p *Pass, id *ast.Ident) bool {
	info := p.Pkg.TypesInfo
	if info == nil {
		return true
	}
	obj := info.Uses[id]
	if obj == nil {
		return true // test files and unresolved: assume builtin
	}
	return obj.Parent() == nil || obj.Pkg() == nil
}

// describePkg names the package in messages ("the module root" for "").
func describePkg(p *Pass) string {
	if p.Pkg.RelPath == "" {
		return "the module root"
	}
	return p.Pkg.RelPath
}
