package analysis

import "go/ast"

// checkNoTime keeps wall-clock reads out of the deterministic packages.
// internal/core, internal/rng and internal/partition must behave as pure
// functions of (graph, seed, config): a time.Now anywhere in them is
// either dead weight or a hidden input that makes replay debugging and
// cross-run comparison impossible. Measured timing belongs in
// internal/clock (the single audited gateway, stubbable in tests) or in
// non-deterministic layers like internal/harness. Build-tagged files and
// _test.go files are exempt, matching how debug instrumentation is
// normally gated.
var checkNoTime = &Check{
	Name: "notime",
	Doc: "forbid time.Now/time.Since in deterministic packages " +
		"(internal/core, internal/rng, internal/partition); route timing through internal/clock",
	Run: func(p *Pass) {
		if !p.Pkg.Under(deterministicPaths...) {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			if _, imported := importLocalName(f.Ast, "time"); !imported {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, fn := range []string{"Now", "Since"} {
					if p.isPkgSel(f, sel, "time", fn) {
						p.Reportf(sel.Pos(),
							"time.%s in deterministic package %s: use internal/clock (stubbable) or move the measurement to a non-deterministic layer",
							fn, p.Pkg.RelPath)
					}
				}
				return true
			})
		}
	},
}
