package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
	"runtime"
	"strings"
)

// TypeCheck resolves type information for every package of the module,
// best effort: a package that fails to type-check records the error in
// TypeErr and keeps nil Types, and type-dependent checks skip it. Only
// non-test files participate (test files may form a separate _test
// package; the checks that run on them are purely syntactic), and files
// whose build constraint does not hold on the host platform are left
// out, so mutually exclusive per-OS variants of the same declarations
// (e.g. an mmap implementation and its portable fallback) do not
// collide as redeclarations.
//
// Module-internal imports are resolved by a custom importer that
// type-checks the imported directory recursively; everything else (the
// standard library) is delegated to go/importer's source importer, so
// the whole pipeline works without compiled export data or external
// tooling.
func (m *Module) TypeCheck() {
	im := &moduleImporter{
		mod:      m,
		byPath:   make(map[string]*Package, len(m.Packages)),
		checking: make(map[string]bool),
		fallback: importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom),
	}
	for _, p := range m.Packages {
		im.byPath[m.importPathOf(p)] = p
	}
	for _, p := range m.Packages {
		im.check(m.importPathOf(p), p)
	}
}

// importPathOf maps a package to its import path within the module.
func (m *Module) importPathOf(p *Package) string {
	if p.RelPath == "" {
		return m.Path
	}
	return m.Path + "/" + p.RelPath
}

// TypeCheckStandalone type-checks a package loaded with LoadDir against
// the standard library only (fixtures import nothing else).
func TypeCheckStandalone(p *Package) {
	im := importer.ForCompiler(p.Fset, "source", nil)
	typeCheckInto(p, "fixture/"+p.RelPath, im)
}

// moduleImporter resolves module-internal import paths from parsed
// source and delegates the rest to the stdlib source importer.
type moduleImporter struct {
	mod      *Module
	byPath   map[string]*Package
	checking map[string]bool // import cycle guard
	fallback types.ImporterFrom
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.mod.Root, 0)
}

func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := im.byPath[path]; ok {
		im.check(path, p)
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, p.TypeErr)
		}
		return p.Types, nil
	}
	return im.fallback.ImportFrom(path, dir, mode)
}

// check type-checks one module package (idempotent).
func (im *moduleImporter) check(path string, p *Package) {
	if p.Types != nil || p.TypeErr != nil {
		return
	}
	if im.checking[path] {
		p.TypeErr = fmt.Errorf("analysis: import cycle through %s", path)
		return
	}
	im.checking[path] = true
	defer delete(im.checking, path)
	typeCheckInto(p, path, im)
}

// typeCheckInto runs go/types over the package's non-test files that
// build on the host platform.
func typeCheckInto(p *Package, path string, im types.Importer) {
	var files []*ast.File
	for _, f := range p.Files {
		if !f.Test && (f.Constraint == nil || f.Constraint.Eval(hostBuildTag)) {
			files = append(files, f.Ast)
		}
	}
	if len(files) == 0 {
		p.TypeErr = fmt.Errorf("analysis: package %s has only test files", path)
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: im,
		Error:    func(error) {}, // collect everything; first error returned by Check
	}
	pkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil {
		p.TypeErr = err
		return
	}
	p.Types = pkg
	p.TypesInfo = info
}

// hostBuildTag reports whether a build tag is satisfied on the host:
// the running GOOS/GOARCH, the umbrella "unix" tag, the gc compiler,
// and every go1.N release tag. Custom tags (debug gates and the like)
// are unsatisfied, matching a plain `go build`.
func hostBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly", "illumos", "ios":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// resolvePkgName reports whether id resolves to the package named by path.
func resolvePkgName(info *types.Info, id *ast.Ident, path string) bool {
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
