package analysis

import "go/ast"

// lifecycleMarker is the annotation that waives the structural
// requirement when a goroutine's lifetime is managed some other way
// (e.g. joined through a channel handshake). The comment must name the
// mechanism, which is what reviewers then hold it to.
const lifecycleMarker = "goroutine-lifecycle:"

// checkGoLifecycle requires every goroutine in the message-passing
// runtime and the engine to have a visible lifecycle. A goroutine spawned
// without a WaitGroup (leak on shutdown, races with Close) or without a
// recover (a panic in a transport goroutine kills the whole process
// instead of failing the run) is exactly the kind of defect that only
// shows up under -race or in production. Accepted patterns inside the
// spawned function literal:
//
//   - a deferred call to a WaitGroup-style Done()
//   - a deferred function literal that calls recover()
//
// Anything else needs an explicit `// goroutine-lifecycle: <mechanism>`
// comment on the `go` statement's line or the line above.
var checkGoLifecycle = &Check{
	Name: "golifecycle",
	Doc: "every `go` statement in internal/mpi and internal/core must use a " +
		"deferred Done()/recover() pattern or carry a // goroutine-lifecycle: comment",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, lifecycleMarker)
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := p.Pkg.Fset.Position(g.Pos()).Line
				if annotated[line] || annotated[line-1] {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && funcLitManaged(lit) {
					return true
				}
				p.Reportf(g.Pos(),
					"unmanaged goroutine: pair it with a deferred Done()/recover() or annotate the `go` statement with // %s <mechanism>",
					lifecycleMarker)
				return true
			})
		}
	},
}

// funcLitManaged reports whether the function literal's body contains a
// deferred Done() call or a deferred recover handler at any depth (but
// not inside a nested function literal, which has its own lifecycle).
func funcLitManaged(lit *ast.FuncLit) bool {
	managed := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if managed {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit // don't descend into nested goroutine bodies
		case *ast.DeferStmt:
			if deferIsDone(n) || deferIsRecover(n) {
				managed = true
				return false
			}
		}
		return true
	})
	return managed
}

// deferIsDone matches `defer x.Done()` (WaitGroup join).
func deferIsDone(d *ast.DeferStmt) bool {
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done" && len(d.Call.Args) == 0
}

// deferIsRecover matches `defer func() { ... recover() ... }()`.
func deferIsRecover(d *ast.DeferStmt) bool {
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
