// Fixture: every accepted way to consume a transport error.
package fixture

type conn struct{}

func (conn) Send(dst int, b []byte) error { return nil }

func (conn) Close() error { return nil }

func Teardown(c conn) error {
	defer c.Close()
	if err := c.Send(0, nil); err != nil {
		return err
	}
	_ = c.Close()
	return nil
}
