// Fixture: dropped transport errors. Checked impersonated as
// internal/mpi (must fire) and cmd/esworker (exempt path). Type-checked
// so the no-error Quiet.Close below is recognised as exempt.
package fixture

type conn struct{}

func (conn) Send(dst int, b []byte) error { return nil }

func (conn) Recv() ([]byte, error) { return nil, nil }

func (conn) Close() error { return nil }

type quiet struct{}

func (quiet) Close() {}

func Teardown(c conn) {
	c.Send(0, nil)
	c.Close()
}

func Drain(c conn) {
	c.Recv()
}

func Silent(q quiet) {
	q.Close() // returns no error: exempt under type information
}
