// Fixture: collectives with the lock released first, a function
// literal as a fresh lock scope, and an annotated teardown barrier.
// Clean under lockcollective as internal/core.
package fixture

import "sync"

type comm struct{}

func (comm) Barrier() error { return nil }

type state struct {
	mu sync.Mutex
	c  comm
	n  int
}

func Flush(s *state) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_ = n
	return s.c.Barrier()
}

func Watch(s *state) {
	go func() {
		s.mu.Lock()
		n := s.n
		s.mu.Unlock()
		_ = n
		_ = s.c.Barrier()
	}()
}

func Teardown(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// lockcollective: teardown fence; peers have already exited their loops
	return s.c.Barrier()
}
