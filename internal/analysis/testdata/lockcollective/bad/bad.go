// Fixture: collectives invoked while a mutex is held. Checked
// impersonated as internal/core (must fire) and internal/harness
// (exempt path). Purely syntactic: no type information needed.
package fixture

import "sync"

type comm struct{}

func (comm) Barrier() error { return nil }

func (comm) Allgather(data []byte) ([][]byte, error) { return nil, nil }

type state struct {
	mu sync.Mutex
	c  comm
}

func Flush(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Barrier()
}

func Snapshot(s *state) ([][]byte, error) {
	s.mu.Lock()
	parts, err := s.c.Allgather(nil)
	s.mu.Unlock()
	return parts, err
}
