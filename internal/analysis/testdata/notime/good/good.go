// Fixture: a local identifier shadowing the time import. With type
// information the check must recognise that time.Now() here calls the
// fake clock, not the package.
package fixture

import "time"

type fakeClock struct{}

func (fakeClock) Now() time.Time { return time.Time{} }

func Stamp() time.Time {
	time := fakeClock{}
	return time.Now()
}
