// Fixture: _test.go files are exempt from the notime check.
package fixture

import "time"

var testStart = time.Now()
