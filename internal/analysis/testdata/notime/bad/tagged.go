//go:build esdebug

// Fixture: build-tagged files are exempt (debug instrumentation gate).
package fixture

import "time"

func DebugStamp() time.Time { return time.Now() }
