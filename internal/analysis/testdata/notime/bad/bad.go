// Fixture: wall-clock reads in a deterministic package. Checked
// impersonated as internal/core (must fire) and internal/harness
// (exempt path).
package fixture

import "time"

func Stamp() time.Time { return time.Now() }

func Elapsed(start time.Time) time.Duration { return time.Since(start) }
