// Fixture: every accepted goroutine lifecycle pattern.
package fixture

import "sync"

func Spawn(wg *sync.WaitGroup, done chan struct{}) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
	// goroutine-lifecycle: joined by the <-done receive in Wait
	go work()
	go work() // goroutine-lifecycle: joined by the <-done receive in Wait
}

func work() {}
