// Fixture: _test.go files are exempt from the golifecycle check.
package fixture

func spawnInTest() {
	go work()
}
