// Fixture: unmanaged goroutines. Checked impersonated as internal/mpi.
package fixture

import "sync"

func Spawn(wg *sync.WaitGroup) {
	go func() { // a plain comment is not an annotation
		work()
	}()
	go work()
	go func() {
		cb := func() { defer wg.Done() } // Done inside a nested literal does not count
		cb()
	}()
}

func work() {}
