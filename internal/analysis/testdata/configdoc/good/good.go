package core

// Config configures the run.
type Config struct {
	// Seed seeds the experiment streams.
	Seed    int64
	Workers int // Workers caps the executor pool; 0 means GOMAXPROCS.
	nprocs  int
}

// Base carries defaults shared by the option structs.
type Base struct{}

// RunOptions configures one run.
type RunOptions struct {
	Base
	// Trace enables the event log.
	Trace bool
}

// Option mutates RunOptions before the run starts.
type Option func(*RunOptions)
