package core

// Config configures the run.
type Config struct {
	// Seed seeds the experiment streams.
	Seed    int64
	Workers int
	nprocs  int
}

// DialOptions configures transport dialing.
type DialOptions struct {
	Addr    string
	Timeout int
}

// Plain is not a configuration struct: bare fields are fine.
type Plain struct {
	X int
}
