package core

import "fmt"

type item struct{ a, b int }

type engine struct {
	buf  []byte
	sink func()
}

//es:hotpath step is the per-operation loop body.
func (e *engine) step(n int) {
	e.buf = append(e.buf, byte(n))
	m := make([]int, n)
	_ = m
	p := new(item)
	_ = p
	q := &item{a: n}
	_ = q
	s := []int{1, 2, 3}
	_ = s
	e.deeper(n)
}

// deeper is not annotated, but the walk from step reaches it.
func (e *engine) deeper(n int) {
	msg := fmt.Sprintf("step %d", n)
	_ = msg
	b := []byte(msg)
	_ = b
	e.sink = func() { _ = n }
}

func box(v any) { _ = v }

//es:hotpath callBox forwards into an interface parameter.
func callBox(n int) { box(n) }

// cold is reached by no root: allocate freely.
func cold(n int) []int {
	return make([]int, n)
}
