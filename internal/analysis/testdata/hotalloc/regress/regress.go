package core

import "fmt"

type eng struct{ n int }

//es:hotpath stepLoop drains the operation queue.
func (e *eng) stepLoop() {
	for i := 0; i < e.n; i++ {
		e.apply(i)
	}
}

func (e *eng) apply(i int) {
	e.note(i)
}

// note is "just a little logging" added two calls below the loop —
// the deliberate regression the guard must catch.
func (e *eng) note(i int) {
	_ = fmt.Sprintf("op %d", i)
}
