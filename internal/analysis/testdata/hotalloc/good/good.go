package core

import "fmt"

type pool struct{ free [][]byte }

//es:hotpath getBuf is the freelist fast path.
func (p *pool) getBuf() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	// hotalloc: freelist miss — this allocation is the slow path the freelist exists to avoid
	return make([]byte, 0, 64)
}

//es:hotpath recycle returns a frame to the freelist.
func (p *pool) recycle(b []byte) {
	// hotalloc: amortized growth of the freelist backbone
	p.free = append(p.free, b[:0])
}

//es:hotpath fail is the abort path out of the loop.
func (p *pool) fail(n int) error {
	if n < 0 {
		return fmt.Errorf("bad op %d", n)
	}
	return nil
}

// coldSetup runs once before the loop: no root reaches it.
func coldSetup() []int {
	return make([]int, 1024)
}
