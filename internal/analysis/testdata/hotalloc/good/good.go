package core

import "fmt"

type pool struct{ free [][]byte }

//es:hotpath getBuf is the freelist fast path.
func (p *pool) getBuf() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	// hotalloc: freelist miss — this allocation is the slow path the freelist exists to avoid
	return make([]byte, 0, 64)
}

//es:hotpath recycle returns a frame to the freelist.
func (p *pool) recycle(b []byte) {
	// hotalloc: amortized growth of the freelist backbone
	p.free = append(p.free, b[:0])
}

//es:hotpath fail is the abort path out of the loop.
func (p *pool) fail(n int) error {
	if n < 0 {
		return fmt.Errorf("bad op %d", n)
	}
	return nil
}

// coldSetup runs once before the loop: no root reaches it.
func coldSetup() []int {
	return make([]int, 1024)
}

// arena is a bump allocator: its methods ARE the blessed allocation
// slow path, so the guard treats them as escape sinks.
//
//es:arena
type arena struct{ blocks [][]byte }

// alloc allocates freely — inside an arena sink nothing needs a waiver.
func (a *arena) alloc(n int) []byte {
	b := make([]byte, n)
	a.blocks = append(a.blocks, b)
	return grow(b, n)
}

// grow sits below the sink: the walk must not descend into it through
// the arena method, even though it allocates.
func grow(b []byte, n int) []byte {
	return append(b, make([]byte, n)...)
}

//es:hotpath useArena allocates only through the arena sink.
func (p *pool) useArena(a *arena, n int) []byte {
	return a.alloc(n)
}
