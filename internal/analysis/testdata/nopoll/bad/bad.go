package bad

import "time"

func spinUntil(ready func() bool) {
	for !ready() {
		time.Sleep(5 * time.Millisecond)
	}
}

func spinOverRanks(ranks []int, joined func(int) bool) {
	for _, r := range ranks {
		for !joined(r) {
			time.Sleep(time.Millisecond)
		}
	}
}
