package good

import (
	"sync"
	"time"
)

// A one-shot sleep outside any loop is not polling.
func settle() {
	time.Sleep(10 * time.Millisecond)
}

// Condition-variable wait is the sanctioned blocking pattern.
func waitReady(mu *sync.Mutex, cond *sync.Cond, ready *bool) {
	mu.Lock()
	for !*ready {
		cond.Wait()
	}
	mu.Unlock()
}

// Timer-based backoff blocks on a channel, not a clock poll.
func backoff(tries int) {
	d := time.Millisecond
	for i := 0; i < tries; i++ {
		t := time.NewTimer(d)
		<-t.C
		d *= 2
	}
}

// An annotated sleep documents why polling is unavoidable here.
func watchExternal(done func() bool) {
	for !done() {
		time.Sleep(time.Second) // nopoll: external process exposes no wait handle
	}
}

// A goroutine body spawned inside a loop has its own control flow; the
// sleep is not loop-polling.
func spawnSleepers(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
}
