// Fixture: raw integer tags and one-sided tag constants. Checked
// impersonated as internal/core (must fire) and internal/metrics
// (exempt path). Type-checked so the one-sided constant rule runs.
package fixture

type comm struct{}

func (comm) Send(dst, tag int, b []byte) error { return nil }

func (comm) SendOwned(dst, tag int, b []byte) error { return nil }

func (comm) Recv(src, tag int) ([]byte, error) { return nil, nil }

const ackTag = 7 // send-side only: the consistency rule must fire

const reqTag = 9 // both sides: clean

func Exchange(c comm) error {
	if err := c.Send(0, 1, nil); err != nil {
		return err
	}
	if err := c.SendOwned(0, ackTag, nil); err != nil {
		return err
	}
	if err := c.Send(0, reqTag, nil); err != nil {
		return err
	}
	_, err := c.Recv(0, reqTag)
	return err
}
