// Fixture: named tags used on both sides, a wildcard receive, and an
// annotated raw tag. Clean under tagcheck as internal/core.
package fixture

type comm struct{}

func (comm) Send(dst, tag int, b []byte) error { return nil }

func (comm) Recv(src, tag int) ([]byte, error) { return nil, nil }

const opTag = 1

const AnyTag = -1 // wildcard: exempt from the side rule

func Exchange(c comm) error {
	if err := c.Send(0, opTag, nil); err != nil {
		return err
	}
	if _, err := c.Recv(0, AnyTag); err != nil {
		return err
	}
	// tagcheck: probing a legacy peer that only speaks tag 3
	if err := c.Send(0, 3, nil); err != nil {
		return err
	}
	_, err := c.Recv(0, opTag)
	return err
}
