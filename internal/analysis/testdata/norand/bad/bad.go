// Fixture: forbidden randomness imports. Checked by analysis_test.go
// impersonated as internal/core (must fire) and internal/rng (exempt).
package fixture

import (
	crand "crypto/rand"
	"math/rand"
)

func Draw() int {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Int() + int(b[0])
}
