// Fixture: randomness without the forbidden imports.
package fixture

func Draw(state *uint64) uint64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return *state
}
