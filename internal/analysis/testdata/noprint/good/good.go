// Fixture: sanctioned output — injected writers and formatted returns.
package fixture

import (
	"fmt"
	"io"
)

func Report(w io.Writer, rate float64) {
	fmt.Fprintf(w, "rate=%f\n", rate)
}

func Format(rate float64) string {
	return fmt.Sprintf("rate=%f", rate)
}
