// Fixture: terminal output from a library package. Checked impersonated
// as internal/metrics (must fire) and cmd/edgeswitch / examples
// (exempt paths).
package fixture

import (
	"fmt"
	"os"
)

func Report(rate float64) {
	fmt.Println("visit rate:", rate)
	fmt.Printf("rate=%f\n", rate)
	fmt.Fprintf(os.Stderr, "rate=%f\n", rate)
	println("debug", rate)
}
