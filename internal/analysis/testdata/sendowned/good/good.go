package core

type comm struct{}

func (c *comm) SendOwned(dst, tag int, data []byte) error { return nil }

// Rebinding kills the moved state: this b is a different buffer.
func rebind(c *comm, b []byte) int {
	_ = c.SendOwned(1, 2, b)
	b = nil
	return len(b)
}

// A fresh buffer per iteration: the define at the loop head kills the
// previous iteration's move before any use.
func loopFresh(c *comm, n int) {
	for i := 0; i < n; i++ {
		b := make([]byte, 8)
		_ = c.SendOwned(1, 2, b)
	}
}

// Send as the last touch, detach-then-send: the flushDst idiom.
func flush(c *comm, bufs map[int][]byte, d int) error {
	b := bufs[d]
	bufs[d] = nil
	return c.SendOwned(d, 2, b)
}

// Waived: the comment says why the use is safe.
func waived(c *comm, b []byte) int {
	_ = c.SendOwned(1, 2, b)
	// sendowned: fixture waiver — stub transport retains nothing
	return len(b)
}
