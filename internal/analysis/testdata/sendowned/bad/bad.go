package core

type comm struct{}

func (c *comm) SendOwned(dst, tag int, data []byte) error { return nil }

// Appending after the transfer races with the transport and may grow a
// frame already in flight.
func useAfterSend(c *comm, b []byte) {
	_ = c.SendOwned(1, 2, b)
	b = append(b, 0)
}

// Reading after the transfer observes a buffer the receiver may be
// mutating.
func readAfterSend(c *comm, b []byte) byte {
	_ = c.SendOwned(1, 2, b)
	return b[0]
}

// Moved on one path is moved at the join: the may-analysis unions.
func branchMerge(c *comm, b []byte, x bool) int {
	if x {
		_ = c.SendOwned(1, 2, b)
	}
	return len(b)
}

// Recycling after the transfer is the freelist double-owner bug.
func recycleAfterSend(c *comm, free *[][]byte, b []byte) {
	_ = c.SendOwned(1, 2, b)
	*free = append(*free, b[:0])
}
