package store

type Segment struct{}

func (s *Segment) List(li int) []byte { return nil }
func (s *Segment) Close() error       { return nil }
func (s *Segment) Unmap()             {}

// Reading a mapped slice after Close dangles: the pages are unmapped.
func useAfterClose(s *Segment) byte {
	b := s.List(0)
	_ = s.Close()
	return b[0]
}

// Closed on one path is closed at the join: the may-analysis unions.
func branchClose(s *Segment, l []byte, cond bool) int {
	l = s.List(1)
	if cond {
		_ = s.Close()
	}
	return len(l)
}

// Returning the slice after the unmap escapes a dangling view.
func escapeAfterUnmap(s *Segment) []byte {
	l := s.List(2)
	s.Unmap()
	return l
}
