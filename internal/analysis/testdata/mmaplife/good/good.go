package store

type Segment struct{}

func (s *Segment) List(li int) []byte { return nil }
func (s *Segment) Close() error       { return nil }

// Copying the bytes out before Close leaves no view into the mapping.
func copyOut(s *Segment) []byte {
	out := append([]byte(nil), s.List(0)...)
	_ = s.Close()
	return out
}

// A deferred Close runs at function exit, after every use in the body.
func deferredClose(s *Segment) byte {
	defer s.Close()
	b := s.List(0)
	return b[0]
}

// Rebinding gives the variable a fresh, unrelated buffer.
func rebind(s *Segment) int {
	b := s.List(0)
	_ = s.Close()
	b = make([]byte, 4)
	return len(b)
}

// Waived: the comment says why the bytes remain valid.
func waived(s *Segment) int {
	b := s.List(0)
	_ = s.Close()
	// mmaplife: fixture waiver — heap-fallback segment retains its buffer
	return len(b)
}
