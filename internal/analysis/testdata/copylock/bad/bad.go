// Fixture: locks passed by value. Requires TypeCheckStandalone.
package fixture

import (
	"sync"
	"sync/atomic"
)

type box struct {
	mu sync.Mutex
	n  int
}

func ByValue(mu sync.Mutex) {}

func Boxed(b box) { _ = b.n }

func Result() sync.WaitGroup { return sync.WaitGroup{} }

func (b box) Method() {}

func Atomics(c atomic.Int64) {}

func Arrayed(a [2]sync.Mutex) {}

var f = func(o sync.Once) {}
