// Fixture: locks behind indirections are fine.
package fixture

import "sync"

type box struct {
	mu *sync.Mutex
	n  int
}

func ByPointer(mu *sync.Mutex) {}

func Boxed(b *box) { _ = b.n }

func Sliced(ms []sync.Mutex) {}

func Channeled(ch chan sync.Mutex) {}

func (b *box) Method() {}
