package mpi

type comm struct{ rank int }

func (c *comm) Rank() int             { return c.rank }
func (c *comm) Barrier()              {}
func (c *comm) Bcast(r int, b []byte) {}
func (c *comm) send(dst int)          {}

// Collective after the rank branch joins: every rank reaches the
// Bcast whichever arm it took.
func joined(c *comm, b []byte) {
	if c.Rank() == 0 {
		b = append(b, 1)
	}
	c.Bcast(0, b)
}

// Rank-branched point-to-point sends are how collectives are built;
// they are not themselves collectives.
func fanout(c *comm) {
	if c.Rank() == 0 {
		c.send(1)
	}
}

// Collective before the branch: fully synchronized, the divergence
// afterwards is local work only.
func gatherThenLocal(c *comm) int {
	c.Barrier()
	if c.Rank() != 0 {
		return 0
	}
	return 1
}

// Waived: the comment explains why the divergence is safe here.
func teardown(c *comm) {
	if c.Rank() == 0 {
		// collsync: fixture waiver — single-rank world, peers already exited
		c.Barrier()
	}
}
