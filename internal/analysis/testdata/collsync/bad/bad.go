package mpi

type comm struct{ rank int }

func (c *comm) Rank() int { return c.rank }
func (c *comm) Barrier()  {}

// Collective directly inside a rank-dependent branch: only rank 0
// enters the Barrier, every other rank sails past.
func leaderOnly(c *comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}

// Early return keyed on a rank-derived local: ranks != 0 leave before
// the collective.
func earlyReturn(c *comm) {
	r := c.Rank()
	if r != 0 {
		return
	}
	c.Barrier()
}

// sync performs a collective; hiding it one call deep must not hide
// the divergence at the rank-branched call site.
func sync(c *comm) { c.Barrier() }

func hidden(c *comm) {
	if c.Rank() == 0 {
		sync(c)
	}
}
