package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tagMarker waives the tag rules for one call site when a raw or
// one-sided tag is genuinely required (e.g. probing a peer whose tag
// constant lives in another module). The comment must say why.
const tagMarker = "tagcheck:"

// tagSendCalls / tagRecvCalls are the transport entry points whose
// second argument is a message tag. The split matters for the
// consistency rule: a tag constant that only ever appears on one side
// is either dead protocol surface or — worse — a send the receive side
// matches with a different (hardcoded) number.
var tagSendCalls = map[string]bool{"Send": true, "SendOwned": true}
var tagRecvCalls = map[string]bool{"Recv": true, "TryRecv": true, "RecvAll": true, "RecvAllInto": true}

// checkTag enforces the engine's tag discipline at Send/SendOwned/Recv/
// TryRecv/RecvAll/RecvAllInto call sites in internal/mpi and
// internal/core:
//
//  1. no raw integer-literal tags — a literal hides the coupling between
//     the two ends of a conversation (the opTag=1 flag day this repo
//     already had once); tags must be named constants, wildcards or
//     computed expressions (the collectives' reserved tag space);
//  2. every tag constant must appear on both the send side and the
//     receive side somewhere in the package (requires type information;
//     wildcard constants named AnyTag are exempt).
//
// Waive a site with a `// tagcheck: <reason>` annotation on its line or
// the line above.
var checkTag = &Check{
	Name: "tagcheck",
	Doc: "forbid raw integer-literal message tags and one-sided tag " +
		"constants at transport call sites in internal/mpi and internal/core",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) {
			return
		}
		// Per-constant side bookkeeping, keyed by the types.Const object
		// so shadowing cannot conflate distinct constants.
		type sides struct {
			name       string
			send, recv bool
			firstUse   token.Pos
		}
		consts := make(map[types.Object]*sides)
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, tagMarker)
			waived := func(pos token.Pos) bool {
				line := p.Pkg.Fset.Position(pos).Line
				return annotated[line] || annotated[line-1]
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				isSend, isRecv := tagSendCalls[sel.Sel.Name], tagRecvCalls[sel.Sel.Name]
				if !isSend && !isRecv {
					return true
				}
				tag := call.Args[1]
				if lit, ok := tag.(*ast.BasicLit); ok && lit.Kind == token.INT {
					if !waived(lit.Pos()) {
						p.Reportf(lit.Pos(),
							"raw integer tag %s in %s call: use a named tag constant (or annotate with // %s <reason>)",
							lit.Value, sel.Sel.Name, tagMarker)
					}
					return true
				}
				// Side bookkeeping needs resolved objects; without type
				// information an identifier could be a variable.
				info := p.Pkg.TypesInfo
				if info == nil {
					return true
				}
				id, ok := tag.(*ast.Ident)
				if !ok || id.Name == "AnyTag" || waived(id.Pos()) {
					return true
				}
				obj := info.Uses[id]
				if _, isConst := obj.(*types.Const); !isConst {
					return true
				}
				s := consts[obj]
				if s == nil {
					s = &sides{name: id.Name, firstUse: id.Pos()}
					consts[obj] = s
				}
				s.send = s.send || isSend
				s.recv = s.recv || isRecv
				return true
			})
		}
		for _, s := range consts {
			if s.send && s.recv {
				continue
			}
			side, missing := "send", "received"
			if s.recv {
				side, missing = "receive", "sent"
			}
			p.Reportf(s.firstUse,
				"tag constant %s is used on the %s side only: nothing in the package is %s with it (one-sided tags hide a hardcoded peer, or are dead)",
				s.name, side, missing)
		}
	},
}
