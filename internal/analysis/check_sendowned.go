package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"edgeswitch/internal/analysis/flow"
)

// sendownedMarker waives one use of a buffer after its SendOwned call
// (e.g. a test asserting the transfer happened). The comment must say
// why touching the transferred frame is safe.
const sendownedMarker = "sendowned:"

// checkSendOwned enforces the frame-ownership rule documented in
// internal/mpi/frame.go: SendOwned(dst, tag, b) transfers ownership of
// b to the transport — the send path may hold the slice on a queue, a
// reconnect buffer, or hand it to the receiver's mailbox without
// copying. Reading b after the call races with the transport; writing
// to it corrupts a frame in flight; recycling it onto a freelist hands
// the same backing array to two owners. That last shape is the
// dangerous one here: the PR-5 send-buffer freelists make "recycle
// after send" an attractive-looking optimization that is exactly the
// bug.
//
// The rule is a forward may-analysis over the CFG: a local variable
// passed as the buffer argument of SendOwned becomes moved; moved-ness
// merges by union at joins (moved on ANY path in counts); rebinding the
// variable (`b = sb.getBuf()`, `b = nil`) kills it. Any other mention
// of a moved variable is a use-after-transfer. Function literals are
// opaque (they run at an unknown time) and only plain identifier
// buffers are tracked — an aliased or field-held buffer is the
// transport's own business (internal/mpi tests cover those paths).
//
// Waive a site with `// sendowned: <reason>` on its line or the line
// above.
var checkSendOwned = &Check{
	Name: "sendowned",
	Doc: "forbid using a buffer after passing it to SendOwned (ownership " +
		"transfers to the transport), in internal/mpi and internal/core",
	Run: func(p *Pass) {
		if !p.Pkg.Under(enginePaths...) || p.Pkg.TypesInfo == nil {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			annotated := commentLines(p.Pkg.Fset, f.Ast, sendownedMarker)
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !mentionsSendOwned(fn.Body) {
					continue
				}
				sendOwnedFunc(p, fn, annotated)
			}
		}
	},
}

func mentionsSendOwned(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "SendOwned" {
			found = true
		}
		return !found
	})
	return found
}

// movedSet maps a moved variable to the position of the SendOwned call
// that transferred it.
type movedSet map[*types.Var]token.Pos

func (m movedSet) clone() movedSet {
	c := make(movedSet, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// mergeInto unions src into dst, reporting whether dst changed.
func mergeInto(dst, src movedSet) bool {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// sendOwnedFunc runs the dataflow over one function body: fixpoint on
// block-entry states first, then one reporting pass.
func sendOwnedFunc(p *Pass, fn *ast.FuncDecl, annotated map[int]bool) {
	cfg := flow.BuildCFG(fn.Body)
	in := make(map[*flow.Block]movedSet)
	in[cfg.Entry] = movedSet{}
	work := []*flow.Block{cfg.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := in[blk].clone()
		for _, node := range blk.Nodes {
			p.sendOwnedNode(node, out, nil)
		}
		for _, s := range blk.Succs {
			if in[s] == nil {
				in[s] = out.clone()
				work = append(work, s)
			} else if mergeInto(in[s], out) {
				work = append(work, s)
			}
		}
	}
	reported := make(map[token.Pos]bool)
	for _, blk := range cfg.Blocks {
		state := in[blk]
		if state == nil {
			continue // unreachable block
		}
		state = state.clone()
		for _, node := range blk.Nodes {
			p.sendOwnedNode(node, state, func(id *ast.Ident, movedAt token.Pos) {
				if reported[id.Pos()] {
					return
				}
				line := p.Pkg.Fset.Position(id.Pos()).Line
				if annotated[line] || annotated[line-1] {
					return
				}
				reported[id.Pos()] = true
				p.Reportf(id.Pos(),
					"%s is used after SendOwned transferred it to the transport at line %d: "+
						"the frame may be in flight or requeued — rebind the variable or drop it "+
						"(annotate with // %s <reason> if the use is provably safe)",
					id.Name, p.Pkg.Fset.Position(movedAt).Line, sendownedMarker)
			})
		}
	}
}

// sendOwnedNode applies one CFG node to the moved set, in evaluation
// order: uses are checked against the state at node entry, then
// assignment targets kill, then SendOwned arguments move. report is nil
// during the fixpoint pass.
func (p *Pass) sendOwnedNode(node ast.Node, state movedSet, report func(*ast.Ident, token.Pos)) {
	// Range heads only evaluate X and rebind Key/Value.
	if rs, ok := node.(*ast.RangeStmt); ok {
		if report != nil && rs.X != nil {
			p.sendOwnedUses(rs.X, state, nil, report)
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					delete(state, v)
				}
			}
		}
		return
	}

	// The buffer identifiers moving in this node are not "uses".
	moving := make(map[*ast.Ident]bool)
	moves := sendOwnedMoves(node)
	for _, mv := range moves {
		moving[mv.arg] = true
	}

	if report != nil {
		p.sendOwnedUses(node, state, moving, report)
	}

	// Assignment targets: a plain rebind kills moved-ness; writes
	// through a moved buffer (b[0] = x) were already caught as uses.
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := p.identVar(id); v != nil {
					delete(state, v)
				}
			}
		}
	}

	for _, mv := range moves {
		if v := p.identVar(mv.arg); v != nil {
			state[v] = mv.pos
		}
	}
}

// sendOwnedUses reports every identifier in node that reads a moved
// variable, skipping function literals, the moving identifiers
// themselves, and plain assignment targets (handled as kills).
func (p *Pass) sendOwnedUses(node ast.Node, state movedSet, moving map[*ast.Ident]bool, report func(*ast.Ident, token.Pos)) {
	assignTargets := make(map[*ast.Ident]bool)
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assignTargets[id] = true
			}
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || moving[id] || assignTargets[id] {
			return true
		}
		if v := p.identVar(id); v != nil {
			if movedAt, moved := state[v]; moved {
				report(id, movedAt)
			}
		}
		return true
	})
}

// identVar resolves an identifier to the local variable it denotes.
func (p *Pass) identVar(id *ast.Ident) *types.Var {
	obj := p.Pkg.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.Pkg.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

type sendOwnedMove struct {
	arg *ast.Ident
	pos token.Pos
}

// sendOwnedMoves finds SendOwned calls in the node (outside function
// literals) whose buffer argument is a plain identifier.
func sendOwnedMoves(node ast.Node) []sendOwnedMove {
	var moves []sendOwnedMove
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "SendOwned" || len(call.Args) != 3 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[2]).(*ast.Ident); ok {
			moves = append(moves, sendOwnedMove{arg: id, pos: call.Pos()})
		}
		return true
	})
	return moves
}
