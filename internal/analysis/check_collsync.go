package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"edgeswitch/internal/analysis/flow"
)

// collsyncMarker waives one collective (or collective-performing call)
// site under a rank-dependent branch, when every rank provably takes
// the same path (e.g. the branch re-derives a value that is identical
// on all ranks). The comment must say why.
const collsyncMarker = "collsync:"

// checkCollSync flags collectives that only some ranks reach. A
// collective (Barrier, Gather, Allreduce, ...) blocks until every rank
// in the world has entered it; if the call site sits behind a branch
// whose condition depends on the local rank — `if c.Rank() == 0 {
// c.Barrier() }`, or an early `if rank != 0 { return }` with a
// collective after it — then rank 0 parks inside the collective while
// the other ranks sail past, and the world deadlocks with every local
// goroutine either blocked or idle. lockcollective cannot see this
// shape (no mutex is involved), and unit tests only see it under the
// cross-rank schedule that makes the branch disagree.
//
// The rule runs on the flow layer. Per function, build the CFG and find
// branch blocks whose condition is rank-tainted (mentions Rank()/rank
// directly, or a local variable assigned from such an expression). A
// collective site that is reachable from some but not all successors of
// such a branch diverges: which ranks arrive depends on which arm they
// took. The check is interprocedural through the module call graph: a
// call to a function that (transitively, via static calls) performs a
// collective counts as a collective site too, so hiding the Barrier one
// call deep does not hide the bug. Calls inside function literals are
// not analyzed against the enclosing function's branches (a literal
// runs at an unknown time); the call graph still attributes them for
// the transitive "performs a collective" computation.
//
// Waive a site with `// collsync: <reason>` on its line or the line
// above.
var checkCollSync = &Check{
	Name: "collsync",
	Doc: "forbid collectives reachable by only some ranks: collective call " +
		"sites must not sit behind rank-dependent branches or early returns " +
		"(interprocedural, in internal/mpi and internal/core)",
	RunModule: func(p *ModulePass) {
		performs := collectivePerformers(p.Pkgs)
		for _, pkg := range p.Pkgs {
			if !pkg.Under(enginePaths...) {
				continue
			}
			for _, f := range pkg.Files {
				if f.Test || f.BuildTagged {
					continue
				}
				annotated := commentLines(pkg.Fset, f.Ast, collsyncMarker)
				for _, decl := range f.Ast.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					collSyncFunc(p, pkg, fn, performs, annotated)
				}
			}
		}
	},
}

// collectivePerformers computes the set of declared functions that may
// perform a collective: functions containing a direct collective call,
// closed under "calls a performer" via the module call graph. The
// result maps each performer to the name of one collective it reaches,
// for diagnostics.
func collectivePerformers(pkgs []*Package) map[*types.Func]string {
	g := flow.BuildCallGraph(callGraphSources(pkgs))
	performs := make(map[*types.Func]string)
	var queue []*flow.Node
	for _, n := range g.Nodes() {
		name, ok := directCollective(n.Decl.Body)
		if !ok {
			continue
		}
		performs[n.Obj] = name
		queue = append(queue, n)
	}
	// Propagate up caller edges to a fixpoint: calling a performer makes
	// the caller a performer.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callers {
			if _, seen := performs[c.Obj]; seen {
				continue
			}
			performs[c.Obj] = performs[n.Obj]
			queue = append(queue, c)
		}
	}
	return performs
}

// callGraphSources adapts the framework's packages to flow.Source,
// indexing each by its position in pkgs.
func callGraphSources(pkgs []*Package) []flow.Source {
	srcs := make([]flow.Source, 0, len(pkgs))
	for i, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		src := flow.Source{PkgID: i, Info: pkg.TypesInfo}
		for _, f := range pkg.Files {
			if f.Test || f.BuildTagged {
				continue
			}
			src.Files = append(src.Files, f.Ast)
		}
		srcs = append(srcs, src)
	}
	return srcs
}

// directCollective reports whether the body contains a syntactic
// collective method call (outside function literals — literal bodies
// are separate nodes in the performer computation only if declared;
// calls inside them are attributed to the enclosing declaration, which
// is exactly the conservative answer wanted here, so literals are NOT
// skipped).
func directCollective(body *ast.BlockStmt) (string, bool) {
	name, found := "", false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && collectiveCalls[sel.Sel.Name] {
				name, found = sel.Sel.Name, true
			}
		}
		return true
	})
	return name, found
}

// collSyncFunc analyzes one function: CFG, rank taint, divergence.
func collSyncFunc(p *ModulePass, pkg *Package, fn *ast.FuncDecl, performs map[*types.Func]string, annotated map[int]bool) {
	cfg := flow.BuildCFG(fn.Body)
	tainted := rankTaintedObjects(fn.Body, pkg.TypesInfo)

	// Collective sites: position -> (block, collective name).
	type site struct {
		blk  *flow.Block
		pos  token.Pos
		name string
		via  string // "" for direct calls, callee name for indirect
	}
	var sites []site
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			b := blk
			inspectBlockNode(node, func(call *ast.CallExpr) {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && collectiveCalls[sel.Sel.Name] {
					sites = append(sites, site{b, call.Pos(), sel.Sel.Name, ""})
					return
				}
				if pkg.TypesInfo == nil {
					return
				}
				if callee := flow.Callee(pkg.TypesInfo, call); callee != nil {
					if coll, ok := performs[callee]; ok {
						sites = append(sites, site{b, call.Pos(), coll, callee.Name()})
					}
				}
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	reported := make(map[token.Pos]bool)
	for _, blk := range cfg.Blocks {
		if blk.Branch == nil || len(blk.Succs) < 2 || !rankTaintedExpr(pkg.TypesInfo, blk.Branch, tainted) {
			continue
		}
		reach := make([]map[*flow.Block]bool, len(blk.Succs))
		for i, s := range blk.Succs {
			reach[i] = flow.ReachableFrom(s)
		}
		for _, st := range sites {
			if st.blk == blk || reported[st.pos] {
				continue // same-block sites execute before the branch
			}
			n := 0
			for i := range reach {
				if reach[i][st.blk] {
					n++
				}
			}
			if n == 0 || n == len(blk.Succs) {
				continue
			}
			line := pkg.Fset.Position(st.pos).Line
			if annotated[line] || annotated[line-1] {
				continue
			}
			reported[st.pos] = true
			how := "collective " + st.name
			if st.via != "" {
				how = "call to " + st.via + " (performs " + st.name + ")"
			}
			p.Reportf(pkg, st.pos,
				"%s is reached on only %d of %d paths of the rank-dependent branch at line %d: "+
					"ranks taking the other path never enter it and the world deadlocks "+
					"(annotate with // %s <reason> if every rank provably branches the same way)",
				how, n, len(blk.Succs), pkg.Fset.Position(blk.Branch.Pos()).Line, collsyncMarker)
		}
	}
}

// inspectBlockNode walks one CFG block node respecting the flow-layer
// atomicity contract: function literals are opaque (their calls belong
// to their own control flow), and a RangeStmt node stands only for its
// X/Key/Value parts — the body lives in successor blocks.
func inspectBlockNode(node ast.Node, visit func(*ast.CallExpr)) {
	if rs, ok := node.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.X, rs.Key, rs.Value} {
			if e != nil {
				inspectBlockNode(e, visit)
			}
		}
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// rankTaintedObjects computes the local variables whose value derives
// from the rank: assigned (or defined) from an expression that mentions
// Rank()/rank or another tainted variable, to a fixpoint. The analysis
// is flow-insensitive — one rank-derived assignment taints the variable
// everywhere — which errs toward reporting, the safe polarity for a
// deadlock rule with a per-site waiver.
func rankTaintedObjects(body *ast.BlockStmt, info *types.Info) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	if info == nil {
		return tainted
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if rankTaintedExpr(info, as.Rhs[i], tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// rankTaintedExpr reports whether the node mentions the rank: a
// Rank()/rank selector or identifier, or (when type information
// resolved the identifier) a variable in the tainted set. Respects the
// RangeStmt contract (only X/Key/Value are examined).
func rankTaintedExpr(info *types.Info, node ast.Node, tainted map[types.Object]bool) bool {
	if rs, ok := node.(*ast.RangeStmt); ok {
		return rankTaintedExpr(info, rs.X, tainted)
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if isRankName(n.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if isRankName(n.Name) {
				found = true
			} else if info != nil && tainted[info.Uses[n]] {
				found = true
			}
		}
		return true
	})
	return found
}

func isRankName(name string) bool { return name == "Rank" || name == "rank" }
