package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc parses src (a complete file) and returns the FuncDecl named
// name plus the file's type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, f
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

// blockOf finds the block containing a node whose position matches the
// call to the named function.
func callBlock(t *testing.T, cfg *CFG, info *types.Info, name string) *Block {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block contains a call to %q", name)
	return nil
}

func TestCFGIfEarlyReturn(t *testing.T) {
	src := `package p
func a() {}
func b() {}
func f(x int) {
	if x == 0 {
		a()
		return
	}
	b()
}`
	fd, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)

	// The entry block must branch on the condition.
	if cfg.Entry.Branch == nil || len(cfg.Entry.Succs) != 2 {
		t.Fatalf("entry: branch=%v succs=%d, want condition with 2 successors", cfg.Entry.Branch, len(cfg.Entry.Succs))
	}
	aBlk := callBlock(t, cfg, info, "a")
	bBlk := callBlock(t, cfg, info, "b")
	thenReach := ReachableFrom(cfg.Entry.Succs[0])
	elseReach := ReachableFrom(cfg.Entry.Succs[1])
	// a() is only on the then path; b() only on the else path (the then
	// path returns before it).
	if !thenReach[aBlk] || elseReach[aBlk] {
		t.Errorf("a(): thenReach=%v elseReach=%v, want true/false", thenReach[aBlk], elseReach[aBlk])
	}
	if thenReach[bBlk] || !elseReach[bBlk] {
		t.Errorf("b(): thenReach=%v elseReach=%v, want false/true", thenReach[bBlk], elseReach[bBlk])
	}
}

func TestCFGIfJoin(t *testing.T) {
	src := `package p
func a() {}
func f(x int) {
	if x == 0 {
		x++
	}
	a()
}`
	fd, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)
	aBlk := callBlock(t, cfg, info, "a")
	for i, s := range cfg.Entry.Succs {
		if !ReachableFrom(s)[aBlk] {
			t.Errorf("successor %d does not reach the join call", i)
		}
	}
}

func TestCFGLoopBody(t *testing.T) {
	src := `package p
func a() {}
func f(n int) {
	for i := 0; i < n; i++ {
		a()
	}
}`
	fd, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)
	aBlk := callBlock(t, cfg, info, "a")
	// Find the loop-head branch block.
	var head *Block
	for _, blk := range cfg.Blocks {
		if blk.Branch != nil && len(blk.Succs) == 2 {
			head = blk
			break
		}
	}
	if head == nil {
		t.Fatal("no loop head found")
	}
	bodyReach := ReachableFrom(head.Succs[0])
	exitReach := ReachableFrom(head.Succs[1])
	if !bodyReach[aBlk] || exitReach[aBlk] {
		t.Errorf("loop body call: bodyReach=%v exitReach=%v, want true/false", bodyReach[aBlk], exitReach[aBlk])
	}
}

func TestCFGSwitchAndBreak(t *testing.T) {
	src := `package p
func a() {}
func b() {}
func c() {}
func f(x int) {
	switch x {
	case 0:
		a()
	case 1:
		b()
	}
	c()
}`
	fd, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)
	aBlk := callBlock(t, cfg, info, "a")
	bBlk := callBlock(t, cfg, info, "b")
	cBlk := callBlock(t, cfg, info, "c")
	head := cfg.Entry
	if head.Branch == nil || len(head.Succs) != 3 { // case 0, case 1, no-default exit
		t.Fatalf("switch head: branch=%v succs=%d, want tag with 3 successors", head.Branch, len(head.Succs))
	}
	seenA, seenB := 0, 0
	for _, s := range head.Succs {
		r := ReachableFrom(s)
		if r[aBlk] {
			seenA++
		}
		if r[bBlk] {
			seenB++
		}
		if !r[cBlk] {
			t.Errorf("a switch successor does not reach the statement after the switch")
		}
	}
	if seenA != 1 || seenB != 1 {
		t.Errorf("case bodies reached from %d/%d successors, want 1/1", seenA, seenB)
	}
}

func TestCFGRangeNodeIsHead(t *testing.T) {
	src := `package p
func a() {}
func f(xs []int) {
	for range xs {
		a()
	}
}`
	fd, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)
	var head *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block carries the RangeStmt node")
	}
	if head.Branch == nil || len(head.Succs) != 2 {
		t.Fatalf("range head: branch=%v succs=%d", head.Branch, len(head.Succs))
	}
	aBlk := callBlock(t, cfg, info, "a")
	if ReachableFrom(head.Succs[0])[aBlk] == ReachableFrom(head.Succs[1])[aBlk] {
		t.Error("exactly one range successor should reach the body")
	}
}

func TestCFGFuncLitOpaque(t *testing.T) {
	src := `package p
func a() {}
func f() func() {
	g := func() { a() }
	return g
}`
	fd, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fd.Body)
	// The literal's body must not contribute blocks: only entry (with
	// the assignment and return) and exit, plus the dead block after
	// return.
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.FuncLit); ok {
				t.Fatal("function literal appeared as a CFG node")
			}
		}
	}
}

func TestCallGraphEdgesAndReach(t *testing.T) {
	src := `package p
type T struct{}
func (t *T) m() { helper() }
func helper() { leaf() }
func leaf() {}
func lone() {}
func root(t *T) { t.m() }`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]Source{{PkgID: 0, Info: info, Files: []*ast.File{f}}})
	byName := make(map[string]*Node)
	for _, n := range g.Nodes() {
		byName[n.Name()] = n
	}
	if len(byName) != 5 {
		t.Fatalf("got %d nodes, want 5", len(byName))
	}
	reach := g.ReachableNodes([]*Node{byName["root"]})
	for _, name := range []string{"root", "m", "helper", "leaf"} {
		if reach.Root[byName[name]] == nil {
			t.Errorf("%s not reachable from root", name)
		}
	}
	if reach.Root[byName["lone"]] != nil {
		t.Error("lone wrongly reachable")
	}
	if reach.Root[byName["leaf"]] != byName["root"] {
		t.Error("leaf not attributed to root")
	}
	if reach.Parent[byName["leaf"]] != byName["helper"] {
		t.Error("leaf's parent should be helper")
	}
	// Caller edges mirror callee edges.
	foundCaller := false
	for _, c := range byName["helper"].Callers {
		if c == byName["m"] {
			foundCaller = true
		}
	}
	if !foundCaller {
		t.Error("helper is missing caller edge from m")
	}
}
