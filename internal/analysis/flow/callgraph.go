package flow

import (
	"go/ast"
	"go/types"
)

// Source is one package's contribution to a call graph: its parsed
// files and resolved type information. PkgID is an opaque caller-chosen
// index (the analysis framework uses the package's position in the slice
// handed to the checks) so graph nodes can be mapped back to packages
// without this package importing the framework.
type Source struct {
	PkgID int
	Info  *types.Info
	Files []*ast.File
}

// Node is one declared function or method in the call graph. Calls made
// inside function literals are attributed to the enclosing declaration:
// a literal runs with the enclosing function's data and, for the
// conservative reachability questions the checks ask, its calls belong
// to whoever created it.
type Node struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	PkgID int

	Callees []*Node
	Callers []*Node
}

// Name returns the declared function name (methods without receiver
// qualification; diagnostics carry positions, so the short name reads
// best).
func (n *Node) Name() string { return n.Decl.Name.Name }

// CallGraph is the module-local static call graph: one node per function
// declaration across the given packages, edges for direct calls that
// resolve to one of those declarations. Interface-method calls, function
// values, and calls into other modules (including the standard library)
// produce no edges — the graph under-approximates call targets, so
// reachability answers are "definitely reachable via static calls", the
// right polarity for allocation guards, and "definitely performs" for
// collective propagation.
type CallGraph struct {
	nodes map[*types.Func]*Node
	all   []*Node
}

// BuildCallGraph constructs the call graph over the given sources.
// Sources without type information contribute no nodes.
func BuildCallGraph(srcs []Source) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*Node)}
	// First pass: one node per declaration.
	for _, src := range srcs {
		if src.Info == nil {
			continue
		}
		for _, f := range src.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Obj: obj, Decl: fd, PkgID: src.PkgID}
				g.nodes[obj] = n
				g.all = append(g.all, n)
			}
		}
	}
	// Second pass: edges from every call expression that resolves to a
	// declared node.
	for _, src := range srcs {
		if src.Info == nil {
			continue
		}
		for _, f := range src.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.nodes[obj]
				if caller == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := Callee(src.Info, call); callee != nil {
						if tn := g.nodes[callee]; tn != nil {
							addEdge(caller, tn)
						}
					}
					return true
				})
			}
		}
	}
	return g
}

func addEdge(from, to *Node) {
	for _, c := range from.Callees {
		if c == to {
			return
		}
	}
	from.Callees = append(from.Callees, to)
	to.Callers = append(to.Callers, from)
}

// Nodes returns every node in declaration order (per package, per file).
func (g *CallGraph) Nodes() []*Node { return g.all }

// NodeOf returns the node for a declared function object, nil if the
// object is not part of the graph.
func (g *CallGraph) NodeOf(obj *types.Func) *Node { return g.nodes[obj] }

// Callee resolves the static callee of a call expression to a declared
// function object: a plain function call, a method call on a concrete
// receiver, or a package-qualified call. Interface-method calls resolve
// to the interface's method object (which has no declaration in the
// graph), and conversions/builtins resolve to nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Reach is the result of a reachability walk: for every reached node,
// the root it was first discovered from and the call-graph parent on
// that first path (nil for roots themselves).
type Reach struct {
	Root   map[*Node]*Node
	Parent map[*Node]*Node
}

// ReachableNodes walks callee edges breadth-first from the given roots.
func (g *CallGraph) ReachableNodes(roots []*Node) Reach {
	r := Reach{Root: make(map[*Node]*Node), Parent: make(map[*Node]*Node)}
	queue := make([]*Node, 0, len(roots))
	for _, root := range roots {
		if root == nil || r.Root[root] != nil {
			continue
		}
		r.Root[root] = root
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if r.Root[c] != nil {
				continue
			}
			r.Root[c] = r.Root[n]
			r.Parent[c] = n
			queue = append(queue, c)
		}
	}
	return r
}
