// Package flow is the zero-dependency flow layer under internal/analysis:
// an intraprocedural control-flow graph builder (cfg.go) and a
// module-local call graph (callgraph.go), both built only on go/ast and
// go/types — the same constraint the rest of the framework keeps, so the
// suite never needs golang.org/x/tools.
//
// The CFG gives checks branch structure (which statements execute under
// which conditions — the shape collsync's rank-divergence rule and
// sendowned's use-after-transfer dataflow need); the call graph gives
// them interprocedural reach (which functions a hot loop or a collective
// flows into). Both are deliberately conservative approximations:
// interface and function-value calls produce no edges, panics are
// ignored, and gotos resolve by label within one function.
package flow

import (
	"go/ast"
)

// Block is one basic block: a maximal run of nodes with a single entry
// and a single exit decision. Nodes holds the block's statements and
// condition expressions in evaluation order. Analyses must treat each
// node as atomic at its own level — compound statements (if/for/switch)
// never appear whole; only their init/condition parts land in Nodes,
// with the enclosed bodies living in successor blocks. The one partial
// exception is *ast.RangeStmt, which appears as a loop-head node
// standing for "evaluate X once, then assign Key/Value each iteration";
// analyses inspecting a RangeStmt node must look only at X/Key/Value,
// never descend into its Body (the body has its own blocks).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Branch is the controlling node when the block ends in a multi-way
	// transfer: the if/for condition, the switch tag (or the whole
	// *ast.TypeSwitchStmt assign), the range expression, or the
	// *ast.SelectStmt. nil for straight-line blocks and condition-less
	// loops, where control transfers unconditionally.
	Branch ast.Node
}

// CFG is the control-flow graph of one function body. Returns edge to
// Exit; a block with no successors that is not Exit ends in a return,
// an endless transfer, or falls off a path the builder proved dead.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of one function (or
// function-literal) body. Function literals inside the body are opaque:
// their statements do not join this graph (each literal has its own
// control flow; build a separate CFG for it).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: make(map[string]*labelInfo)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.link(b.cur, b.cfg.Exit)
	for _, g := range b.pendingGotos {
		if li := b.labels[g.label]; li != nil && li.entry != nil {
			b.link(g.from, li.entry)
		}
	}
	return b.cfg
}

// labelInfo tracks one label's targets: entry is the labeled statement's
// first block (goto target), brk/cont the break/continue targets when
// the labeled statement is breakable/continuable.
type labelInfo struct {
	entry *Block
	brk   *Block
	cont  *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopScope is one entry of the break/continue stack.
type loopScope struct {
	label string // enclosing label, "" if none
	brk   *Block
	cont  *Block // nil for switch/select scopes (not continuable)
}

type builder struct {
	cfg          *CFG
	cur          *Block // nil-safe: startDead() replaces after terminators
	scopes       []loopScope
	labels       map[string]*labelInfo
	pendingGotos []pendingGoto
	pendingLabel string // label to attach to the next loop/switch scope
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startDead begins an unreachable block (code after return/break/...).
// It has no predecessors, so reachability analyses ignore it, but its
// nodes still exist for position lookups.
func (b *builder) startDead() {
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := &labelInfo{}
		b.labels[s.Label.Name] = li
		// The labeled statement starts a fresh block so gotos have a
		// precise target.
		entry := b.newBlock()
		b.link(b.cur, entry)
		b.cur = entry
		li.entry = entry
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		cond.Branch = s.Cond
		after := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.link(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, after)
		} else {
			b.link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
		}
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Branch = s.Cond
			b.link(head, body)
			b.link(head, after)
		} else {
			b.link(head, body)
		}
		b.pushScope(after, post)
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, post)
		b.popScope()
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(b.cur, head)
		// The RangeStmt node stands for the per-iteration Key/Value
		// assignment; see the Block doc for how analyses must read it.
		head.Nodes = append(head.Nodes, s)
		head.Branch = s
		after := b.newBlock()
		body := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.pushScope(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.popScope()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		head := b.cur
		if s.Tag != nil {
			head.Branch = s.Tag
		} else {
			head.Branch = s // condition-less switch: branch on the clauses
		}
		b.switchClauses(head, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		head := b.cur
		head.Branch = s.Assign
		b.switchClauses(head, s.Body.List, nil)

	case *ast.SelectStmt:
		head := b.cur
		head.Branch = s
		after := b.newBlock()
		b.pushBreakScope(after)
		anyClause := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			anyClause = true
			entry := b.newBlock()
			b.link(head, entry)
			if comm.Comm != nil {
				entry.Nodes = append(entry.Nodes, comm.Comm)
			}
			b.cur = entry
			b.stmtList(comm.Body)
			b.link(b.cur, after)
		}
		b.popScope()
		if !anyClause {
			// Empty select blocks forever: after is unreachable.
			_ = after
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.Exit)
		b.startDead()

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)
		b.startDead()

	default:
		// Plain statements: expressions, assignments, declarations,
		// channel sends, defers, go statements, empty statements.
		b.add(s)
	}
}

// switchClauses wires a (type) switch head to its case clauses.
// Fallthrough transfers to the next clause's body entry.
func (b *builder) switchClauses(head *Block, clauses []ast.Stmt, _ *Block) {
	after := b.newBlock()
	b.pushBreakScope(after)
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		entries[i] = b.newBlock()
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		entry := entries[i]
		b.link(head, entry)
		for _, e := range cc.List {
			entry.Nodes = append(entry.Nodes, e)
		}
		b.cur = entry
		// Detect a trailing fallthrough before building, so we can wire
		// the edge to the next clause.
		body := cc.Body
		fall := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fall = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fall && i+1 < len(entries) {
			b.link(b.cur, entries[i+1])
			b.startDead()
		} else {
			b.link(b.cur, after)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.popScope()
	b.cur = after
}

func (b *builder) pushScope(brk, cont *Block) {
	b.scopes = append(b.scopes, loopScope{label: b.pendingLabel, brk: brk, cont: cont})
	if b.pendingLabel != "" {
		if li := b.labels[b.pendingLabel]; li != nil {
			li.brk, li.cont = brk, cont
		}
		b.pendingLabel = ""
	}
}

func (b *builder) pushBreakScope(brk *Block) { b.pushScope(brk, nil) }

func (b *builder) popScope() { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.brk != nil {
				b.link(b.cur, li.brk)
			}
			return
		}
		for i := len(b.scopes) - 1; i >= 0; i-- {
			b.link(b.cur, b.scopes[i].brk)
			return
		}
	case "continue":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.cont != nil {
				b.link(b.cur, li.cont)
			}
			return
		}
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].cont != nil {
				b.link(b.cur, b.scopes[i].cont)
				return
			}
		}
	case "goto":
		if s.Label == nil {
			return
		}
		if li := b.labels[s.Label.Name]; li != nil && li.entry != nil {
			b.link(b.cur, li.entry)
			return
		}
		// Forward goto: resolve once the whole body is built.
		b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
	}
	// fallthrough is handled by switchClauses.
}

// ReachableFrom returns the set of blocks reachable from start by
// following successor edges (start included).
func ReachableFrom(start *Block) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(blk *Block) {
		if blk == nil || seen[blk] {
			return
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(start)
	return seen
}
