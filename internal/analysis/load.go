package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a parsed Go module: every package directory under the root,
// sharing one FileSet so positions are comparable across packages.
type Module struct {
	Root     string // absolute path of the directory holding go.mod
	Path     string // module path declared in go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by RelPath
}

// Rel converts an absolute file name into a module-relative path (the
// form diagnostics use). Paths outside the module are returned verbatim.
func (m *Module) Rel(file string) string {
	if r, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return file
}

// Package is one parsed (and, after TypeCheck, type-checked) package
// directory.
type Package struct {
	Name    string // package name from the first non-test file
	RelPath string // module-relative directory ("" for the module root)
	Dir     string // absolute directory
	Fset    *token.FileSet
	Files   []*File
	Module  *Module // nil for packages loaded standalone via LoadDir

	// Types and TypesInfo cover the non-test files; both are nil until
	// TypeCheck runs, and TypeErr records a best-effort failure (checks
	// that need types skip such packages).
	Types     *types.Package
	TypesInfo *types.Info
	TypeErr   error
}

// File is one parsed source file.
type File struct {
	Name        string // base name
	Path        string // absolute path
	Ast         *ast.File
	Test        bool // *_test.go
	BuildTagged bool // carries a //go:build (or legacy +build) constraint

	// Constraint is the parsed build constraint, nil when the file has
	// none (or it failed to parse — such files stay in the type-checked
	// set so a malformed tag degrades to the old behaviour).
	Constraint constraint.Expr
}

// Under reports whether the package lies in or beneath any of the given
// module-relative directories.
func (p *Package) Under(prefixes ...string) bool {
	return under(p.RelPath, prefixes...)
}

// LoadModule parses every package directory beneath root (skipping
// testdata, vendor, hidden directories, and non-Go files). root must
// contain go.mod. Type information is not resolved until TypeCheck.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: abs, Path: modPath, Fset: token.NewFileSet()}
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := loadDir(m.Fset, path)
		if err != nil {
			return err
		}
		if pkg == nil {
			return nil // no Go files here
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		pkg.RelPath = filepath.ToSlash(rel)
		pkg.Module = m
		m.Packages = append(m.Packages, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].RelPath < m.Packages[j].RelPath })
	return m, nil
}

// LoadDir parses the single directory dir as a package and labels it with
// the given module-relative path. Fixture tests use the label to
// impersonate real package locations (e.g. a testdata directory checked
// "as if" it were internal/core).
func LoadDir(dir, relPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := loadDir(token.NewFileSet(), abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg.RelPath = relPath
	return pkg, nil
}

// loadDir parses all Go files of one directory; nil if there are none.
func loadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		expr := buildConstraintOf(f)
		pkg.Files = append(pkg.Files, &File{
			Name:        e.Name(),
			Path:        path,
			Ast:         f,
			Test:        strings.HasSuffix(e.Name(), "_test.go"),
			BuildTagged: hasBuildConstraint(f),
			Constraint:  expr,
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for _, f := range pkg.Files {
		if !f.Test {
			pkg.Name = f.Ast.Name.Name
			break
		}
	}
	if pkg.Name == "" {
		pkg.Name = pkg.Files[0].Ast.Name.Name
	}
	return pkg, nil
}

// hasBuildConstraint reports whether the file carries a build constraint
// comment before its package clause.
func hasBuildConstraint(f *ast.File) bool {
	for _, grp := range f.Comments {
		if grp.Pos() >= f.Package {
			break
		}
		for _, c := range grp.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build ") || strings.HasPrefix(text, "// +build ") {
				return true
			}
		}
	}
	return false
}

// buildConstraintOf parses the file's build constraint into an
// evaluable expression: the first //go:build line wins; otherwise the
// legacy // +build lines are ANDed together. Returns nil when the file
// has no constraint or it does not parse.
func buildConstraintOf(f *ast.File) constraint.Expr {
	var legacy constraint.Expr
	for _, grp := range f.Comments {
		if grp.Pos() >= f.Package {
			break
		}
		for _, c := range grp.List {
			text := strings.TrimSpace(c.Text)
			if !constraint.IsGoBuild(text) && !constraint.IsPlusBuild(text) {
				continue
			}
			expr, err := constraint.Parse(text)
			if err != nil {
				continue
			}
			if constraint.IsGoBuild(text) {
				return expr
			}
			if legacy == nil {
				legacy = expr
			} else {
				legacy = &constraint.AndExpr{X: legacy, Y: expr}
			}
		}
	}
	return legacy
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
