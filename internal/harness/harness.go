// Package harness reproduces the paper's evaluation: every table and
// figure has a named experiment that regenerates its rows/series on the
// dataset stand-ins (see DESIGN.md §8 for the experiment index and §2 for
// the dataset substitutions). Absolute timings depend on the host; the
// shapes — who wins, scaling trends, crossovers — are the reproduction
// targets recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// Config parameterises an experiment run.
type Config struct {
	// Scale multiplies every dataset's default vertex count
	// (default 0.25; 1.0 reproduces the repository's reference sizes).
	Scale float64
	// Seed drives all randomness (default 42).
	Seed uint64
	// MaxRanks caps the processor counts swept by scaling experiments
	// (default: largest power of two ≤ GOMAXPROCS, at least 2).
	MaxRanks int
	// Reps is the repetition count for statistical experiments
	// (default 5; the paper uses 10).
	Reps int
	// Blocks is the r parameter of the error-rate metric (default 20,
	// matching the paper).
	Blocks int
	// Out receives the experiment's table output (default os.Stdout).
	Out io.Writer
	// Quick shrinks everything to smoke-test size (used by tests).
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 2
		for c.MaxRanks*2 <= runtime.GOMAXPROCS(0) && c.MaxRanks < 64 {
			c.MaxRanks *= 2
		}
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Blocks <= 0 {
		c.Blocks = 20
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Quick {
		c.Scale = 0.02
		if c.MaxRanks > 4 {
			c.MaxRanks = 4
		}
		if c.Reps > 2 {
			c.Reps = 2
		}
	}
	return c
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the key used by `cmd/experiments -run` and bench names.
	ID string
	// Paper names the table/figure this regenerates.
	Paper string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and prints its table.
	Run func(cfg Config) error
}

// registry holds all experiments in presentation order.
var registry = []Experiment{
	{"table1", "Table 1 / Fig. 2", "desired vs observed visit rate (sequential)", runTable1},
	{"table2", "Table 2", "dataset inventory (stand-in sizes vs paper sizes)", runTable2},
	{"fig4", "Fig. 4", "strong scaling of the CP parallel algorithm on eight graphs", runFig4},
	{"fig5", "Fig. 5", "weak scaling of the CP parallel algorithm (fixed and growing PA graphs)", runFig5},
	{"fig6_7", "Figs. 6-7", "step-size vs strong scaling and error rate across processors (Miami)", runFig6_7},
	{"fig8_9", "Figs. 8-9", "effect of step-size on speedup and error rate (Miami)", runFig8_9},
	{"fig10_11", "Figs. 10-11", "effect of step-size on speedup and error rate across graphs", runFig10_11},
	{"fig12_13", "Figs. 12-13", "clustering coefficient and path length vs visit rate, seq vs par", runFig12_13},
	{"fig14", "Fig. 14", "strong scaling of the HP-U parallel algorithm on eight graphs", runFig14},
	{"fig15", "Fig. 15", "scheme comparison: strong scaling on Miami and PA", runFig15},
	{"fig16_17", "Figs. 16-17", "initial vertex and edge distribution per scheme (Miami)", runFig16_17},
	{"fig18", "Fig. 18", "final edge distribution per scheme after switching (Miami)", runFig18},
	{"fig19_20", "Figs. 19-20", "workload distribution per scheme (Miami and PA)", runFig19_20},
	{"fig21_22", "Figs. 21-22", "adversarial relabeling worst case for HP-D on PA", runFig21_22},
	{"fig23", "Fig. 23", "weak scaling of all schemes on PA graphs", runFig23},
	{"table3", "Table 3", "one-step HP error rates vs sequential baseline", runTable3},
	{"fig24", "Fig. 24", "strong scaling of the parallel multinomial generator", runFig24},
	{"fig25", "Fig. 25", "weak scaling of the parallel multinomial generator", runFig25},
	{"fig4_model", "Figs. 4/14/15 (model)", "cluster-scale speedup projection from the analytical performance model", runFig4Model},
}

// Experiments returns all experiments in presentation order.
func Experiments() []Experiment { return registry }

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) error {
	e, err := Lookup(id)
	if err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "== %s (%s): %s ==\n", e.ID, e.Paper, e.Title)
	return e.Run(cfg)
}

// ---- shared helpers ----

// rankSweep returns {1, 2, 4, ..., MaxRanks}.
func rankSweep(cfg Config) []int {
	var out []int
	for p := 1; p <= cfg.MaxRanks; p *= 2 {
		out = append(out, p)
	}
	return out
}

// dataset builds a dataset stand-in at the configured scale.
func dataset(cfg Config, name string) (*graph.Graph, error) {
	return gen.Dataset(rng.New(cfg.Seed), name, cfg.Scale)
}

// opsForX computes t for a visit rate on g.
func opsForX(g *graph.Graph, x float64) (int64, error) {
	return core.OpsForVisitRate(g.M(), x)
}

// seqTime runs the sequential algorithm on a clone and reports duration.
func seqTime(g *graph.Graph, t int64, seed uint64) (time.Duration, error) {
	r := rng.Split(seed, 1000)
	work := g.Clone(r)
	start := time.Now()
	if _, err := core.Sequential(work, t, r); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// seqResult runs the sequential algorithm on a clone and returns the
// resultant graph.
func seqResult(g *graph.Graph, t int64, seed uint64) (*graph.Graph, error) {
	r := rng.Split(seed, 1001)
	work := g.Clone(r)
	if _, err := core.Sequential(work, t, r); err != nil {
		return nil, err
	}
	return work, nil
}

// parRun executes a parallel run, optionally keeping the result graph.
func parRun(g *graph.Graph, t int64, cfg core.Config) (*core.Result, error) {
	return core.Parallel(g, t, cfg)
}

// newTable starts an aligned table writer.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// deciles summarises a per-rank vector as min/median/max plus the
// imbalance ratio — the textual stand-in for the paper's bar charts.
func deciles(loads []int64) (min, med, max int64, maxOverMean float64) {
	if len(loads) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]int64(nil), loads...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum int64
	for _, v := range s {
		sum += v
	}
	mean := float64(sum) / float64(len(s))
	if mean == 0 {
		mean = 1
	}
	return s[0], s[len(s)/2], s[len(s)-1], float64(s[len(s)-1]) / mean
}
