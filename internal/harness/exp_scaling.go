package harness

import (
	"fmt"
	"time"

	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// strongScaling sweeps processor counts on the given datasets with one
// scheme, printing runtime and speedup against the sequential algorithm
// (the paper's Figs. 4 and 14).
func strongScaling(cfg Config, scheme core.Scheme, names []string) error {
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "dataset\tm\tt (ops)\tp\ttime ms\tspeedup vs seq\tspeedup vs p=1")
	for _, name := range names {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		t, err := opsForX(g, 1)
		if err != nil {
			return err
		}
		base, err := seqTime(g, t, cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\tseq\t%s\t1.00\t-\n", name, g.M(), t, ms(base))
		var p1 time.Duration
		for _, p := range rankSweep(cfg) {
			res, err := parRun(g, t, core.Config{
				Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: t / 100, SkipResult: true,
			})
			if err != nil {
				return err
			}
			if p == 1 {
				p1 = res.Elapsed
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%.2f\t%.2f\n",
				name, g.M(), t, p, ms(res.Elapsed),
				float64(base)/float64(res.Elapsed), float64(p1)/float64(res.Elapsed))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// runFig4 is the CP strong-scaling figure over the eight graphs.
func runFig4(cfg Config) error {
	names := make([]string, 0, 8)
	for _, s := range gen.DefaultDatasets() {
		names = append(names, s.Name)
	}
	return strongScaling(cfg, core.SchemeCP, names)
}

// runFig14 is the HP-U strong-scaling figure over the eight graphs.
func runFig14(cfg Config) error {
	names := make([]string, 0, 8)
	for _, s := range gen.DefaultDatasets() {
		names = append(names, s.Name)
	}
	return strongScaling(cfg, core.SchemeHPU, names)
}

// runFig15 compares all four schemes on Miami and PA.
func runFig15(cfg Config) error {
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "dataset\tscheme\tp\ttime ms\tspeedup vs seq\tspeedup vs p=1")
	for _, name := range []string{"miami", "pa"} {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		t, err := opsForX(g, 1)
		if err != nil {
			return err
		}
		base, err := seqTime(g, t, cfg.Seed)
		if err != nil {
			return err
		}
		for _, scheme := range core.Schemes() {
			var p1 time.Duration
			for _, p := range rankSweep(cfg) {
				res, err := parRun(g, t, core.Config{
					Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: t / 100, SkipResult: true,
				})
				if err != nil {
					return err
				}
				if p == 1 {
					p1 = res.Elapsed
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.2f\t%.2f\n",
					name, scheme, p, ms(res.Elapsed),
					float64(base)/float64(res.Elapsed), float64(p1)/float64(res.Elapsed))
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// weakScaling runs the paper's weak-scaling protocol for one scheme:
// a PA graph growing with p (n = p·n₀) and a fixed PA graph, both with
// t = p·t₀ operations. Ideal weak scaling keeps the runtime flat; the
// paper reports a linear increase from communication growth.
func weakScaling(cfg Config, schemes []core.Scheme) error {
	n0 := int(10000 * cfg.Scale * 4)
	if n0 < 200 {
		n0 = 200
	}
	const d = 10 // PA attachment degree => avg degree ~20
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "scheme\tvariant\tp\tn\tm\tt (ops)\ttime ms")
	fixed, err := gen.PrefAttachment(rng.Split(cfg.Seed, 50), n0*cfg.MaxRanks, d)
	if err != nil {
		return err
	}
	for _, scheme := range schemes {
		for _, p := range rankSweep(cfg) {
			growing, err := gen.PrefAttachment(rng.Split(cfg.Seed, 51), n0*p, d)
			if err != nil {
				return err
			}
			t := int64(p) * int64(n0) * 10
			step := t / 1000
			if step < 1000 {
				step = 1000
			}
			for _, v := range []struct {
				label string
				g     *graph.Graph
			}{{"growing", growing}, {"fixed", fixed}} {
				res, err := parRun(v.g, t, core.Config{
					Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: step, SkipResult: true,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
					scheme, v.label, p, v.g.N(), v.g.M(), t, ms(res.Elapsed))
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// runFig5 is CP weak scaling.
func runFig5(cfg Config) error { return weakScaling(cfg, []core.Scheme{core.SchemeCP}) }

// runFig23 is weak scaling of all four schemes.
func runFig23(cfg Config) error { return weakScaling(cfg, core.Schemes()) }

// runFig21_22 reproduces the adversarial worst case: the PA graph is
// relabeled so the n/p highest-degree vertices land on one HP-D rank.
// Fig. 21 is that rank's workload dominance; Fig. 22 the scheme speedup
// comparison on the manipulated graph (the paper reports CP running 28×
// faster than HP-D there).
func runFig21_22(cfg Config) error {
	g, err := dataset(cfg, "pa")
	if err != nil {
		return err
	}
	p := cfg.MaxRanks
	hot := p / 4
	adv, err := gen.AdversarialRelabel(rng.Split(cfg.Seed, 52), g, p, hot)
	if err != nil {
		return err
	}
	t, err := opsForX(adv, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "PA stand-in n=%d m=%d, adversarially relabeled for HP-D, p=%d, hot rank=%d\n",
		adv.N(), adv.M(), p, hot)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "scheme\ttime ms\tspeedup vs HP-D\thot-rank ops share %\tmax/mean workload")
	var hpdTime time.Duration
	for _, scheme := range core.Schemes() {
		res, err := parRun(adv, t, core.Config{
			Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: t / 100, SkipResult: true,
		})
		if err != nil {
			return err
		}
		if scheme == core.SchemeHPD {
			hpdTime = res.Elapsed
		}
		var total, hotOps int64
		for rank, ops := range res.RankOps {
			total += ops
			if rank == hot {
				hotOps = ops
			}
		}
		_, _, _, imb := deciles(res.RankOps)
		rel := 0.0
		if res.Elapsed > 0 && hpdTime > 0 {
			rel = float64(hpdTime) / float64(res.Elapsed)
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(hotOps) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%.2f\n", scheme, ms(res.Elapsed), rel, share, imb)
	}
	return tw.Flush()
}
