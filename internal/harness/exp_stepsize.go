package harness

import (
	"fmt"

	"edgeswitch/internal/core"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/metrics"
)

// stepSizes derives the sweep of step sizes from t (the paper sweeps
// absolute sizes 0.1M..9.4M on Miami; relative fractions transfer across
// scales).
func stepSizes(t int64) []int64 {
	fracs := []int64{1000, 300, 100, 30, 10, 3, 1}
	var out []int64
	seen := map[int64]bool{}
	for _, f := range fracs {
		s := t / f
		if s < 1 {
			s = 1
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// seqBaselineER measures ER between two independent sequential runs —
// the noise floor every parallel error rate is compared against.
func seqBaselineER(cfg Config, g *graph.Graph, t int64) (float64, error) {
	var sum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		a, err := seqResult(g, t, cfg.Seed+uint64(rep)*17)
		if err != nil {
			return 0, err
		}
		b, err := seqResult(g, t, cfg.Seed+uint64(rep)*17+7)
		if err != nil {
			return 0, err
		}
		er, err := metrics.ErrorRate(a, b, cfg.Blocks)
		if err != nil {
			return 0, err
		}
		sum += er
	}
	return sum / float64(cfg.Reps), nil
}

// parER measures the mean ER between sequential and parallel results.
func parER(cfg Config, g *graph.Graph, t int64, pcfg core.Config) (float64, error) {
	var sum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		s, err := seqResult(g, t, cfg.Seed+uint64(rep)*29)
		if err != nil {
			return 0, err
		}
		pc := pcfg
		pc.Seed = cfg.Seed + uint64(rep)*31
		res, err := parRun(g, t, pc)
		if err != nil {
			return 0, err
		}
		er, err := metrics.ErrorRate(s, res.Graph, cfg.Blocks)
		if err != nil {
			return 0, err
		}
		sum += er
	}
	return sum / float64(cfg.Reps), nil
}

// runFig6_7 sweeps (step size × processor count) on Miami: Fig. 6 is the
// strong-scaling effect of the step size, Fig. 7 shows the error rate
// staying roughly constant in p for a fixed step size.
func runFig6_7(cfg Config) error {
	g, err := dataset(cfg, "miami")
	if err != nil {
		return err
	}
	t, err := opsForX(g, 1)
	if err != nil {
		return err
	}
	base, err := seqTime(g, t, cfg.Seed)
	if err != nil {
		return err
	}
	baseline, err := seqBaselineER(cfg, g, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "miami stand-in m=%d t=%d, seq time %s ms, seq-vs-seq ER %.3f%%\n",
		g.M(), t, ms(base), baseline)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "step size\tp\ttime ms\tspeedup\tER vs seq %")
	// A reduced sweep keeps the run tractable: three step sizes × ranks.
	for _, s := range []int64{t / 100, t / 10, t} {
		if s < 1 {
			s = 1
		}
		for _, p := range rankSweep(cfg) {
			if p == 1 {
				continue
			}
			pcfg := core.Config{Ranks: p, Scheme: core.SchemeCP, Seed: cfg.Seed, StepSize: s}
			res, err := parRun(g, t, pcfg)
			if err != nil {
				return err
			}
			er, err := parER(cfg, g, t, pcfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t%.2f\t%.3f\n",
				s, p, ms(res.Elapsed), float64(base)/float64(res.Elapsed), er)
		}
	}
	return tw.Flush()
}

// runFig8_9 fixes p = MaxRanks and sweeps the step size on Miami:
// speedup (Fig. 8) and error rate (Fig. 9) both grow with the step size;
// a suitable step size is the largest whose ER stays at the sequential
// baseline.
func runFig8_9(cfg Config) error {
	g, err := dataset(cfg, "miami")
	if err != nil {
		return err
	}
	return stepSizeSweep(cfg, "miami", g, core.SchemeCP)
}

// runFig10_11 runs the step-size sweep on four graphs; the paper's
// observation is that ER is flat in the step size for Erdős–Rényi and
// LiveJournal but rises for Miami and Flickr.
func runFig10_11(cfg Config) error {
	for _, name := range []string{"flickr", "miami", "livejournal", "erdosrenyi"} {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		if err := stepSizeSweep(cfg, name, g, core.SchemeCP); err != nil {
			return err
		}
	}
	return nil
}

func stepSizeSweep(cfg Config, name string, g *graph.Graph, scheme core.Scheme) error {
	t, err := opsForX(g, 1)
	if err != nil {
		return err
	}
	base, err := seqTime(g, t, cfg.Seed)
	if err != nil {
		return err
	}
	baseline, err := seqBaselineER(cfg, g, t)
	if err != nil {
		return err
	}
	p := cfg.MaxRanks
	fmt.Fprintf(cfg.Out, "%s: m=%d t=%d p=%d, seq time %s ms, seq-vs-seq ER %.3f%%\n",
		name, g.M(), t, p, ms(base), baseline)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "step size\tsteps\ttime ms\tspeedup\tER vs seq %")
	for _, s := range stepSizes(t) {
		pcfg := core.Config{Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: s}
		res, err := parRun(g, t, pcfg)
		if err != nil {
			return err
		}
		er, err := parER(cfg, g, t, pcfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.2f\t%.3f\n",
			s, res.Steps, ms(res.Elapsed), float64(base)/float64(res.Elapsed), er)
	}
	return tw.Flush()
}

// runTable3 reproduces the one-step accuracy comparison: the HP schemes
// performing all operations in a single step stay at the sequential
// baseline error rate, while CP needs many steps.
func runTable3(cfg Config) error {
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "dataset\tseq-vs-seq ER %\tHP-D 1-step\tHP-M 1-step\tHP-U 1-step\tCP 1-step\tCP 100-step")
	for _, name := range []string{"miami", "smallworld", "livejournal"} {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		t, err := opsForX(g, 1)
		if err != nil {
			return err
		}
		baseline, err := seqBaselineER(cfg, g, t)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%s\t%.3f", name, baseline)
		for _, c := range []core.Config{
			{Ranks: cfg.MaxRanks, Scheme: core.SchemeHPD, Seed: cfg.Seed},
			{Ranks: cfg.MaxRanks, Scheme: core.SchemeHPM, Seed: cfg.Seed},
			{Ranks: cfg.MaxRanks, Scheme: core.SchemeHPU, Seed: cfg.Seed},
			{Ranks: cfg.MaxRanks, Scheme: core.SchemeCP, Seed: cfg.Seed},
			{Ranks: cfg.MaxRanks, Scheme: core.SchemeCP, Seed: cfg.Seed, StepSize: t / 100},
		} {
			er, err := parER(cfg, g, t, c)
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.3f", er)
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}
