package harness

import (
	"fmt"
	"time"

	"edgeswitch/internal/mpi"
	"edgeswitch/internal/randvar"
	"edgeswitch/internal/rng"
)

// timeMultinomial runs the parallel multinomial generator once over p
// ranks and reports rank-0's wall-clock time between barriers.
func timeMultinomial(p int, n int64, l int, seed uint64) (time.Duration, error) {
	q := make([]float64, l)
	for i := range q {
		q[i] = 1 / float64(l)
	}
	w, err := mpi.NewWorld(p)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	var elapsed time.Duration
	err = w.Run(func(c *mpi.Comm) error {
		r := rng.Split(seed, c.Rank())
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		if _, err := randvar.ParallelMultinomial(c, r, n, q); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	})
	return elapsed, err
}

// runFig24 is the strong scaling of the parallel multinomial generator.
// The paper uses N = 10000B trials, ℓ = 20, qᵢ = 1/ℓ on up to 1024
// processors (speedup 925); the trial count here is scaled to the host.
func runFig24(cfg Config) error {
	n := int64(2_000_000_000 * cfg.Scale)
	if cfg.Quick {
		n = 5_000_000
	}
	const l = 20
	fmt.Fprintf(cfg.Out, "N=%d trials, l=%d outcomes, q=1/l\n", n, l)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "p\ttime ms\tspeedup")
	var base time.Duration
	for _, p := range rankSweep(cfg) {
		d, err := timeMultinomial(p, n, l, cfg.Seed)
		if err != nil {
			return err
		}
		if p == 1 {
			base = d
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\n", p, ms(d), float64(base)/float64(d))
	}
	return tw.Flush()
}

// runFig25 is the weak scaling of the parallel multinomial generator:
// N = p·N₀ trials and ℓ = p outcomes, so per-rank work is constant and
// the runtime should stay flat.
func runFig25(cfg Config) error {
	n0 := int64(40_000_000 * cfg.Scale)
	if cfg.Quick {
		n0 = 1_000_000
	}
	fmt.Fprintf(cfg.Out, "N = p x %d trials, l = p outcomes, q=1/l\n", n0)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "p\tN\ttime ms")
	for _, p := range rankSweep(cfg) {
		d, err := timeMultinomial(p, int64(p)*n0, p, cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\n", p, int64(p)*n0, ms(d))
	}
	return tw.Flush()
}
