package harness

import (
	"fmt"
	"math"

	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/rng"
)

// runTable1 reproduces Table 1 / Fig. 2: perform t = E[T]/2 operations
// for each desired visit rate and compare the observed rate, repeating
// Reps times. The paper's average error over 100 runs is 0.007%.
func runTable1(cfg Config) error {
	g, err := dataset(cfg, "miami")
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "graph: miami stand-in, n=%d m=%d, reps=%d\n", g.N(), g.M(), cfg.Reps)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "desired x\tobserved mean\tobserved min\tobserved max\tavg error %")
	var totalErr, totalX float64
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		t, err := opsForX(g, x)
		if err != nil {
			return err
		}
		minV, maxV, sum := math.Inf(1), math.Inf(-1), 0.0
		var errSum float64
		for rep := 0; rep < cfg.Reps; rep++ {
			r := rng.Split(cfg.Seed, 3000+rep*100+int(x*10))
			work := g.Clone(r)
			st, err := core.Sequential(work, t, r)
			if err != nil {
				return err
			}
			v := st.VisitRate
			sum += v
			errSum += math.Abs(v - x)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		avgErr := errSum / float64(cfg.Reps) / x * 100
		totalErr += errSum
		totalX += x * float64(cfg.Reps)
		fmt.Fprintf(tw, "%.1f\t%.6f\t%.6f\t%.6f\t%.4f\n", x, sum/float64(cfg.Reps), minV, maxV, avgErr)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "overall average error rate: %.4f%% (paper: 0.007%%)\n", totalErr/totalX*100)
	return nil
}

// runTable2 reproduces Table 2: the dataset inventory, with the paper's
// original sizes alongside the stand-in sizes at the configured scale.
func runTable2(cfg Config) error {
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "dataset\ttype\tvertices\tedges\tavg degree\tpaper vertices\tpaper edges")
	for _, spec := range gen.DefaultDatasets() {
		g, err := dataset(cfg, spec.Name)
		if err != nil {
			return err
		}
		avg := 2 * float64(g.M()) / float64(g.N())
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%s\t%s\n",
			spec.Name, spec.Kind, g.N(), g.M(), avg, spec.PaperN, spec.PaperM)
	}
	return tw.Flush()
}
