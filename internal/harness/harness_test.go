package harness

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Quick: true, Out: buf, Seed: 7}
}

// TestEveryExperimentRunsQuick smoke-tests each experiment at tiny scale:
// it must complete without error and emit a non-trivial table.
func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := Run(e.ID, quickCfg(&buf)); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if len(out) < 80 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s: header missing:\n%s", e.ID, out)
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := Run("bogus", Config{}); err == nil {
		t.Fatal("Run accepted unknown id")
	}
}

func TestExperimentsCoverPaper(t *testing.T) {
	// Every evaluation artifact of the paper must have an experiment.
	want := []string{
		"table1", "table2", "table3",
		"fig4", "fig5", "fig6_7", "fig8_9", "fig10_11", "fig12_13",
		"fig14", "fig15", "fig16_17", "fig18", "fig19_20", "fig21_22",
		"fig23", "fig24", "fig25", "fig4_model",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Paper == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q missing", id)
		}
	}
	if len(have) != len(want) {
		t.Fatalf("unexpected extra experiments: %v", have)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.25 || c.Seed != 42 || c.Reps != 5 || c.Blocks != 20 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.MaxRanks < 2 {
		t.Fatalf("MaxRanks %d", c.MaxRanks)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Scale != 0.02 || q.MaxRanks > 4 || q.Reps > 2 {
		t.Fatalf("quick defaults: %+v", q)
	}
}

func TestStepSizes(t *testing.T) {
	ss := stepSizes(1000)
	if ss[0] != 1 {
		t.Fatalf("smallest step %d", ss[0])
	}
	last := ss[len(ss)-1]
	if last != 1000 {
		t.Fatalf("largest step %d", last)
	}
	seen := map[int64]bool{}
	for _, s := range ss {
		if seen[s] {
			t.Fatalf("duplicate step %d in %v", s, ss)
		}
		seen[s] = true
	}
}

func TestDeciles(t *testing.T) {
	min, med, max, imb := deciles([]int64{4, 1, 3, 2})
	if min != 1 || max != 4 || med != 3 {
		t.Fatalf("deciles: %d %d %d", min, med, max)
	}
	if imb != 1.6 {
		t.Fatalf("imbalance %f", imb)
	}
	if _, _, _, z := deciles(nil); z != 0 {
		t.Fatal("empty deciles")
	}
}
