package harness

import (
	"fmt"

	"edgeswitch/internal/core"
	"edgeswitch/internal/perfmodel"
)

// runFig4Model projects the strong-scaling curves of Figs. 4/14/15 to the
// paper's cluster scale with the analytical performance model
// (internal/perfmodel): per-operation message/round-trip constants are
// the engine's measured values, workload skew factors are measured from
// actual runs at MaxRanks, and the machine parameters describe the
// paper's InfiniBand testbed class. The reproduction target is the
// published shape: speedup rising to ~100× around 512–1024 processors for
// balanced scheme/graph pairs, with CP-on-clustered-graph skew costing a
// constant factor (§5.2) and the adversarial HP-D case collapsing.
func runFig4Model(cfg Config) error {
	// Measure the skew factor of each scheme/graph pairing at MaxRanks.
	type pairing struct {
		graph  string
		scheme core.Scheme
	}
	pairings := []pairing{
		{"miami", core.SchemeCP},
		{"miami", core.SchemeHPU},
		{"pa", core.SchemeCP},
		{"pa", core.SchemeHPU},
	}
	// The paper's headline workload: a New York-class graph (m ≈ 587M)
	// fully randomized. Scaled-down runs measure skew; the model
	// extrapolates the op counts to paper scale.
	const paperOps = int64(2_000_000_000) // ≈ m·H_m/2 for m = 587M... order of magnitude
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "graph\tscheme\tmeasured skew\tp\tpredicted speedup\tcomm frac")
	for _, pr := range pairings {
		g, err := dataset(cfg, pr.graph)
		if err != nil {
			return err
		}
		t, err := opsForX(g, 1)
		if err != nil {
			return err
		}
		res, err := parRun(g, t, core.Config{
			Ranks: cfg.MaxRanks, Scheme: pr.scheme, Seed: cfg.Seed,
			StepSize: t / 100, SkipResult: true,
		})
		if err != nil {
			return err
		}
		_, _, _, skew := deciles(res.RankOps)
		if skew < 1 {
			skew = 1
		}
		w := perfmodel.DefaultWorkload(paperOps, 100)
		w.SkewFactor = skew
		for _, p := range []int{16, 64, 256, 640, 1024} {
			pred, err := perfmodel.Predict(perfmodel.InfiniBandCluster, w, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%.1f\t%.2f\n",
				pr.graph, pr.scheme, skew, p, pred.Speedup, pred.CommFrac)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	bestP, best, err := perfmodel.PeakSpeedup(perfmodel.InfiniBandCluster,
		perfmodel.DefaultWorkload(paperOps, 100), 1024)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "balanced-workload peak: speedup %.1f at p=%d (paper: 110 at p=640 on New York)\n", best, bestP)
	return nil
}
