package harness

import (
	"fmt"

	"edgeswitch/internal/core"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/metrics"
	"edgeswitch/internal/rng"
)

// runFig12_13 tracks how the average clustering coefficient (Fig. 12)
// and average shortest-path distance (Fig. 13) change with the visit
// rate, for the sequential and parallel algorithms. The paper's claim:
// the two algorithms trace identical curves. Switching is incremental —
// each visit-rate point continues from the previous graph, so the total
// work is one full randomization per algorithm per graph.
func runFig12_13(cfg Config) error {
	clusterSamples := 400
	bfsSources := 8
	for _, name := range []string{"miami", "livejournal", "flickr"} {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s: n=%d m=%d (sampled metrics: %d cluster vertices, %d BFS sources)\n",
			name, g.N(), g.M(), clusterSamples, bfsSources)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "visit rate\tseq clustering\tpar clustering\tseq avg path\tpar avg path")

		mr := rng.Split(cfg.Seed, 60)
		cc0 := metrics.SampledClusteringCoefficient(g, clusterSamples, mr)
		sp0 := metrics.AvgShortestPath(g, bfsSources, mr)
		fmt.Fprintf(tw, "0.0\t%.4f\t%.4f\t%.3f\t%.3f\n", cc0, cc0, sp0, sp0)

		seqG := g.Clone(mr)
		parG := g
		seqR := rng.Split(cfg.Seed, 61)
		var prevOps int64
		for _, x := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			tTotal, err := opsForX(g, x)
			if err != nil {
				return err
			}
			delta := tTotal - prevOps
			prevOps = tTotal
			if _, err := core.Sequential(seqG, delta, seqR); err != nil {
				return err
			}
			res, err := parRun(parG, delta, core.Config{
				Ranks: cfg.MaxRanks, Scheme: core.SchemeHPU, Seed: cfg.Seed + uint64(x*100),
			})
			if err != nil {
				return err
			}
			parG = res.Graph
			sc := metrics.SampledClusteringCoefficient(seqG, clusterSamples, mr)
			pc := metrics.SampledClusteringCoefficient(parG, clusterSamples, mr)
			sd := metrics.AvgShortestPath(seqG, bfsSources, mr)
			pd := metrics.AvgShortestPath(parG, bfsSources, mr)
			fmt.Fprintf(tw, "%.1f\t%.4f\t%.4f\t%.3f\t%.3f\n", x, sc, pc, sd, pd)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// distRow prints one per-rank distribution as min/median/max/imbalance.
func distRow(tw interface{ Write([]byte) (int, error) }, scheme core.Scheme, what string, loads []int64) {
	min, med, max, imb := deciles(loads)
	fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\n", scheme, what, min, med, max, imb)
}

// runFig16_17 reports the initial vertex (Fig. 16) and edge (Fig. 17)
// distributions across ranks for each scheme on Miami: CP balances edges
// but skews vertices; the HP schemes balance vertices with near-balanced
// edges.
func runFig16_17(cfg Config) error {
	g, err := dataset(cfg, "miami")
	if err != nil {
		return err
	}
	p := cfg.MaxRanks
	fmt.Fprintf(cfg.Out, "miami stand-in n=%d m=%d, p=%d\n", g.N(), g.M(), p)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "scheme\tquantity\tmin\tmedian\tmax\tmax/mean")
	for _, scheme := range core.Schemes() {
		pt, err := core.NewPartitioner(g, scheme, p, cfg.Seed)
		if err != nil {
			return err
		}
		verts := make([]int64, p)
		edges := make([]int64, p)
		for u := 0; u < g.N(); u++ {
			owner := pt.Owner(graph.Vertex(u))
			verts[owner]++
			edges[owner] += int64(g.ReducedDegree(graph.Vertex(u)))
		}
		distRow(tw, scheme, "vertices", verts)
		distRow(tw, scheme, "edges", edges)
	}
	return tw.Flush()
}

// runFig18 reports the final edge distribution after a full (x=1) run:
// CP's distribution skews badly on Miami while the HP schemes stay flat.
func runFig18(cfg Config) error {
	g, err := dataset(cfg, "miami")
	if err != nil {
		return err
	}
	t, err := opsForX(g, 1)
	if err != nil {
		return err
	}
	p := cfg.MaxRanks
	fmt.Fprintf(cfg.Out, "miami stand-in m=%d t=%d p=%d (edges per rank after switching)\n", g.M(), t, p)
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "scheme\tquantity\tmin\tmedian\tmax\tmax/mean")
	for _, scheme := range core.Schemes() {
		res, err := parRun(g, t, core.Config{
			Ranks: p, Scheme: scheme, Seed: cfg.Seed, StepSize: t / 100, SkipResult: true,
		})
		if err != nil {
			return err
		}
		distRow(tw, scheme, "final edges", res.RankFinalEdges)
	}
	return tw.Flush()
}

// runFig19_20 reports the workload (operations per rank) distribution on
// Miami (Fig. 19: HP balanced, CP skewed) and PA (Fig. 20: CP balanced,
// HP slightly skewed).
func runFig19_20(cfg Config) error {
	tw := newTable(cfg.Out)
	fmt.Fprintln(tw, "dataset\tscheme\tmin ops\tmedian ops\tmax ops\tmax/mean")
	for _, name := range []string{"miami", "pa"} {
		g, err := dataset(cfg, name)
		if err != nil {
			return err
		}
		t, err := opsForX(g, 1)
		if err != nil {
			return err
		}
		for _, scheme := range core.Schemes() {
			res, err := parRun(g, t, core.Config{
				Ranks: cfg.MaxRanks, Scheme: scheme, Seed: cfg.Seed, StepSize: t / 100, SkipResult: true,
			})
			if err != nil {
				return err
			}
			min, med, max, imb := deciles(res.RankOps)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\n", name, scheme, min, med, max, imb)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
