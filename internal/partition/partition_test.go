package partition

import (
	"testing"
	"testing/quick"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// ringGraph builds a cycle on n vertices.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	r := rng.New(1)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// allPartitioners builds one of each scheme for the given graph and p.
func allPartitioners(t *testing.T, g *graph.Graph, p int) []Partitioner {
	t.Helper()
	cp, err := NewCP(g, p)
	if err != nil {
		t.Fatal(err)
	}
	hpd, err := NewHPD(p)
	if err != nil {
		t.Fatal(err)
	}
	hpm, err := NewHPM(p)
	if err != nil {
		t.Fatal(err)
	}
	hpu, err := NewHPU(p, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return []Partitioner{cp, hpd, hpm, hpu}
}

// TestPartitionCoversAllVertices: every vertex has exactly one owner in
// range, and LocalVertices tiles [0,n).
func TestPartitionCoversAllVertices(t *testing.T) {
	g := ringGraph(t, 101)
	for _, p := range []int{1, 2, 3, 7, 16} {
		for _, pt := range allPartitioners(t, g, p) {
			if pt.Parts() != p {
				t.Fatalf("%s: Parts() = %d, want %d", pt.Name(), pt.Parts(), p)
			}
			seen := make([]bool, g.N())
			total := 0
			for rank := 0; rank < p; rank++ {
				for _, v := range LocalVertices(pt, g.N(), rank) {
					if seen[v] {
						t.Fatalf("%s p=%d: vertex %d owned twice", pt.Name(), p, v)
					}
					if pt.Owner(v) != rank {
						t.Fatalf("%s p=%d: LocalVertices/Owner disagree on %d", pt.Name(), p, v)
					}
					seen[v] = true
					total++
				}
			}
			if total != g.N() {
				t.Fatalf("%s p=%d: %d vertices owned, want %d", pt.Name(), p, total, g.N())
			}
		}
	}
}

func TestOwnerInRangeProperty(t *testing.T) {
	g := ringGraph(t, 64)
	pts := allPartitioners(t, g, 5)
	f := func(raw uint16) bool {
		v := graph.Vertex(raw % 64)
		for _, pt := range pts {
			o := pt.Owner(v)
			if o < 0 || o >= 5 {
				return false
			}
			// Determinism.
			if pt.Owner(v) != o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRejectBadP(t *testing.T) {
	g := ringGraph(t, 10)
	if _, err := NewCP(g, 0); err == nil {
		t.Fatal("CP accepted p=0")
	}
	if _, err := NewHPD(-1); err == nil {
		t.Fatal("HPD accepted p=-1")
	}
	if _, err := NewHPM(0); err == nil {
		t.Fatal("HPM accepted p=0")
	}
	if _, err := NewHPU(0, rng.New(1)); err == nil {
		t.Fatal("HPU accepted p=0")
	}
}

func TestCPConsecutiveRanges(t *testing.T) {
	g := ringGraph(t, 100)
	cp, err := NewCP(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	prevHi := graph.Vertex(0)
	for rank := 0; rank < 4; rank++ {
		lo, hi := cp.Range(rank)
		if lo != prevHi {
			t.Fatalf("rank %d range [%d,%d) not contiguous with previous end %d", rank, lo, hi, prevHi)
		}
		for v := lo; v < hi; v++ {
			if cp.Owner(v) != rank {
				t.Fatalf("Owner(%d) = %d, want %d", v, cp.Owner(v), rank)
			}
		}
		prevHi = hi
	}
	if prevHi != graph.Vertex(g.N()) {
		t.Fatalf("ranges end at %d, want %d", prevHi, g.N())
	}
}

// TestCPEdgeBalance: on a regular graph the partitions should own nearly
// equal numbers of edges.
func TestCPEdgeBalance(t *testing.T) {
	g := ringGraph(t, 1000)
	const p = 8
	cp, err := NewCP(g, p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, p)
	for _, e := range g.Edges() {
		counts[cp.Owner(e.U)]++
	}
	want := g.M() / p
	for rank, c := range counts {
		if c < want-want/4 || c > want+want/4 {
			t.Fatalf("rank %d owns %d edges, want ~%d (counts %v)", rank, c, want, counts)
		}
	}
}

// TestCPEdgeBalanceSkewedDegrees: balance must hold even when degree mass
// is concentrated at low labels.
func TestCPEdgeBalanceSkewedDegrees(t *testing.T) {
	r := rng.New(3)
	const n = 500
	var edges []graph.Edge
	// Star-heavy: vertex 0 connects to everyone, plus a sparse tail.
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(v)})
	}
	for v := 100; v < n-1; v += 3 {
		edges = append(edges, graph.Edge{U: graph.Vertex(v), V: graph.Vertex(v + 1)})
	}
	g, err := graph.FromEdges(n, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	cp, err := NewCP(g, p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, p)
	for _, e := range g.Edges() {
		counts[cp.Owner(e.U)]++
	}
	// Vertex 0 alone carries n-1 reduced edges, so rank 0 is forced to
	// hold at least that; the point is the remaining ranks share the rest
	// rather than rank 0 hoarding everything.
	for rank := 1; rank < p-1; rank++ {
		if counts[rank] == 0 {
			t.Fatalf("rank %d owns no edges: %v", rank, counts)
		}
	}
}

func TestHPDOwner(t *testing.T) {
	hpd, _ := NewHPD(4)
	for v := graph.Vertex(0); v < 100; v++ {
		if hpd.Owner(v) != int(v)%4 {
			t.Fatalf("HPD.Owner(%d) = %d", v, hpd.Owner(v))
		}
	}
}

// TestHPVertexBalance: hash schemes should spread vertices near-evenly.
func TestHPVertexBalance(t *testing.T) {
	g := ringGraph(t, 10000)
	const p = 8
	for _, pt := range allPartitioners(t, g, p)[1:] { // skip CP
		counts := make([]int, p)
		for v := graph.Vertex(0); int(v) < g.N(); v++ {
			counts[pt.Owner(v)]++
		}
		want := g.N() / p
		for rank, c := range counts {
			if c < want*8/10 || c > want*12/10 {
				t.Fatalf("%s: rank %d has %d vertices, want ~%d", pt.Name(), rank, c, want)
			}
		}
	}
}

func TestHPUFixedRoundTrip(t *testing.T) {
	hpu, err := NewHPU(8, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, b := hpu.Coefficients()
	clone, err := NewHPUFixed(8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.Vertex(0); v < 5000; v++ {
		if hpu.Owner(v) != clone.Owner(v) {
			t.Fatalf("reconstructed HPU disagrees at %d", v)
		}
	}
}

func TestHPUFixedValidation(t *testing.T) {
	if _, err := NewHPUFixed(4, 0, 0); err == nil {
		t.Fatal("a=0 accepted")
	}
	if _, err := NewHPUFixed(4, hpuPrime, 0); err == nil {
		t.Fatal("a=c accepted")
	}
	if _, err := NewHPUFixed(4, 1, hpuPrime); err == nil {
		t.Fatal("b=c accepted")
	}
}

// TestHPUDifferentSeedsDifferentPartitions: universal hashing must vary
// with the coefficients (this is its entire point against an adversary).
func TestHPUDifferentSeedsDifferentPartitions(t *testing.T) {
	h1, _ := NewHPU(16, rng.New(1))
	h2, _ := NewHPU(16, rng.New(2))
	diff := 0
	for v := graph.Vertex(0); v < 1000; v++ {
		if h1.Owner(v) != h2.Owner(v) {
			diff++
		}
	}
	if diff < 500 {
		t.Fatalf("two random universal hashes agree on %d/1000 vertices", 1000-diff)
	}
}

func TestMersenneReduce(t *testing.T) {
	cases := []struct {
		hi, lo, want uint64
	}{
		{0, 0, 0},
		{0, 5, 5},
		{0, hpuPrime, 0},
		{0, hpuPrime + 3, 3},
		{1, 0, 8},            // 2^64 mod (2^61-1) = 8
		{1, hpuPrime - 8, 0}, // 2^64 + p - 8 ≡ 0
	}
	for _, c := range cases {
		if got := mersenneReduce(c.hi, c.lo); got != c.want {
			t.Fatalf("mersenneReduce(%d,%d) = %d, want %d", c.hi, c.lo, got, c.want)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r := rng.New(1)
	edges := make([]graph.Edge, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1)})
	}
	g, err := graph.FromEdges(1<<16+1, edges, r)
	if err != nil {
		b.Fatal(err)
	}
	cp, _ := NewCP(g, 64)
	hpd, _ := NewHPD(64)
	hpm, _ := NewHPM(64)
	hpu, _ := NewHPU(64, rng.New(2))
	for _, pt := range []Partitioner{cp, hpd, hpm, hpu} {
		b.Run(pt.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt.Owner(graph.Vertex(i & (1<<16 - 1)))
			}
		})
	}
}
