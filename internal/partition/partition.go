// Package partition implements the graph-partitioning schemes of §4.3 and
// §5: consecutive partitioning (CP) and the three hash-based schemes
// (HP-D division, HP-M multiplication, HP-U universal). A partitioner
// assigns every vertex — and with it the vertex's reduced adjacency list,
// i.e. every edge (u,v) with u < v — to exactly one rank.
package partition

import (
	"fmt"
	"math"
	"math/bits"

	"edgeswitch/internal/graph"
)

// Partitioner maps vertices to ranks. Implementations must be cheap and
// deterministic: Owner is called on every message-routing decision.
type Partitioner interface {
	// Owner returns the rank that owns vertex v.
	Owner(v graph.Vertex) int
	// Parts reports the number of partitions p.
	Parts() int
	// Name identifies the scheme in experiment output.
	Name() string
}

// LocalVertices enumerates, in ascending label order, the vertices of an
// n-vertex graph owned by rank. O(n) per call; engines call it once at
// start-up.
func LocalVertices(pt Partitioner, n, rank int) []graph.Vertex {
	var out []graph.Vertex
	for v := graph.Vertex(0); int(v) < n; v++ {
		if pt.Owner(v) == rank {
			out = append(out, v)
		}
	}
	return out
}

// CP is consecutive partitioning: each rank receives a contiguous label
// range chosen so every partition holds roughly m/p edges (reduced-degree
// prefix sums decide the boundaries, as in §4.3).
type CP struct {
	p      int
	bounds []graph.Vertex // bounds[i] = first vertex of rank i; len p+1
}

// NewCP builds a consecutive partitioning of g into p edge-balanced
// parts. The boundaries are computed from the reduced degrees of the
// *initial* graph; they do not move as edges switch (matching the paper,
// where the skew that develops over time is precisely the CP phenomenon
// studied in §5.2).
func NewCP(g *graph.Graph, p int) (*CP, error) {
	return newCP(p, g.N(), g.M(), func(v int) int64 {
		return int64(g.ReducedDegree(graph.Vertex(v)))
	})
}

// NewCPFromReduced builds a consecutive partitioning from a reduced-degree
// table alone — the graph-less bootstrap path. Distributed generation
// (internal/gen/pergen) derives the table deterministically from the
// generator spec, so every rank computes identical boundaries without any
// rank ever materializing, or exchanging, the full graph.
func NewCPFromReduced(deg []int32, p int) (*CP, error) {
	var m int64
	for _, d := range deg {
		m += int64(d)
	}
	return newCP(p, len(deg), m, func(v int) int64 { return int64(deg[v]) })
}

func newCP(p, n int, m int64, rdeg func(v int) int64) (*CP, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	bounds := make([]graph.Vertex, p+1)
	// Greedy sweep: part k closes once it holds its fair share of the
	// edges not yet assigned, ceil((m − assigned)/(p − k)). Recomputing
	// the share from the remainder keeps later parts non-empty even when
	// a few early vertices carry most of the degree mass.
	v := 0
	var assigned int64
	for k := 0; k < p; k++ {
		bounds[k] = graph.Vertex(v)
		remParts := int64(p - k)
		target := (m - assigned + remParts - 1) / remParts
		var cnt int64
		for v < n && (cnt < target || k == p-1) {
			cnt += rdeg(v)
			v++
		}
		assigned += cnt
	}
	bounds[p] = graph.Vertex(n)
	return &CP{p: p, bounds: bounds}, nil
}

// Owner binary-searches the boundary table.
func (c *CP) Owner(v graph.Vertex) int {
	lo, hi := 0, c.p-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Parts reports p.
func (c *CP) Parts() int { return c.p }

// Name reports "CP".
func (c *CP) Name() string { return "CP" }

// Range returns the half-open vertex range [lo, hi) of rank.
func (c *CP) Range(rank int) (lo, hi graph.Vertex) {
	return c.bounds[rank], c.bounds[rank+1]
}

// HPD is the division hash h(v) = v mod p (§5.1.1, eq. 8).
type HPD struct{ p int }

// NewHPD returns a division-hash partitioner over p ranks.
func NewHPD(p int) (*HPD, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	return &HPD{p: p}, nil
}

// Owner returns v mod p.
func (h *HPD) Owner(v graph.Vertex) int { return int(v) % h.p }

// Parts reports p.
func (h *HPD) Parts() int { return h.p }

// Name reports "HP-D".
func (h *HPD) Name() string { return "HP-D" }

// HPM is the multiplication hash h(v) = floor(p · frac(v·a)) with
// a = (√5−1)/2 (§5.1.2, eq. 9, Knuth's recommended constant).
type HPM struct {
	p int
	a float64
}

// NewHPM returns a multiplication-hash partitioner over p ranks.
func NewHPM(p int) (*HPM, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	return &HPM{p: p, a: (math.Sqrt(5) - 1) / 2}, nil
}

// Owner extracts the fractional part of v·a and scales by p.
func (h *HPM) Owner(v graph.Vertex) int {
	va := float64(v) * h.a
	frac := va - math.Floor(va)
	k := int(float64(h.p) * frac)
	if k >= h.p { // guard the frac≈1 rounding edge
		k = h.p - 1
	}
	return k
}

// Parts reports p.
func (h *HPM) Parts() int { return h.p }

// Name reports "HP-M".
func (h *HPM) Name() string { return "HP-M" }

// hpuPrime is a prime larger than any int32 vertex label, so every graph
// this library can represent satisfies the "labels in [0, c-1]" premise
// of universal hashing.
const hpuPrime = 2305843009213693951 // 2^61 − 1, Mersenne prime

// HPU is universal hashing h(v) = ((a·v + b) mod c) mod p with random
// a ∈ [1, c−1], b ∈ [0, c−1] (§5.1.3, eq. 10). The random coefficients
// make the partition unpredictable to an adversary who relabels the
// input graph.
type HPU struct {
	p    int
	a, b uint64
}

// NewHPU draws the hash coefficients from rnd. Ranks of a parallel run
// must share the same coefficients; derive rnd from the common experiment
// seed before splitting per-rank streams.
func NewHPU(p int, rnd interface{ Int64n(int64) int64 }) (*HPU, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	return &HPU{
		p: p,
		a: uint64(rnd.Int64n(hpuPrime-1)) + 1,
		b: uint64(rnd.Int64n(hpuPrime)),
	}, nil
}

// NewHPUFixed builds an HPU with explicit coefficients (tests, and
// reconstructing a partitioner on every rank from broadcast values).
func NewHPUFixed(p int, a, b uint64) (*HPU, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	if a == 0 || a >= hpuPrime || b >= hpuPrime {
		return nil, fmt.Errorf("partition: HPU coefficients out of range")
	}
	return &HPU{p: p, a: a, b: b}, nil
}

// Owner computes ((a·v + b) mod c) mod p using 128-bit intermediate math.
func (h *HPU) Owner(v graph.Vertex) int {
	// a < 2^61 and v < 2^31, so a*v fits in (61+31)=92 bits; reduce with
	// the Mersenne identity x mod (2^61−1) = (x>>61) + (x&(2^61−1)),
	// applied on the 128-bit product.
	hi, lo := bits.Mul64(h.a, uint64(v))
	x := mersenneReduce(hi, lo)
	x += h.b
	if x >= hpuPrime {
		x -= hpuPrime
	}
	return int(x % uint64(h.p))
}

// Parts reports p.
func (h *HPU) Parts() int { return h.p }

// Name reports "HP-U".
func (h *HPU) Name() string { return "HP-U" }

// Coefficients exposes (a, b) so rank 0 can broadcast them.
func (h *HPU) Coefficients() (a, b uint64) { return h.a, h.b }

// mersenneReduce computes (hi·2^64 + lo) mod (2^61 − 1).
func mersenneReduce(hi, lo uint64) uint64 {
	const p = hpuPrime
	// 2^64 ≡ 2^3 (mod 2^61−1), so hi·2^64 ≡ hi·8.
	// Split lo into low 61 bits and high 3 bits.
	x := (lo & p) + (lo >> 61) + hi*8
	for x >= p {
		x = (x & p) + (x >> 61)
		if x >= p {
			x -= p
		}
	}
	return x
}
