package clock

import (
	"testing"
	"time"
)

func TestNowUsesRealClockByDefault(t *testing.T) {
	before := time.Now()
	got := Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSetForTestSubstitutesAndRestores(t *testing.T) {
	fake := time.Date(2014, 9, 9, 0, 0, 0, 0, time.UTC) // ICPP 2014
	restore := SetForTest(func() time.Time { return fake })
	if got := Now(); !got.Equal(fake) {
		t.Fatalf("Now() = %v, want fake %v", got, fake)
	}
	if got := Since(fake.Add(-3 * time.Second)); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
	restore()
	if Now().Year() == 2014 {
		t.Fatal("restore did not reinstall the real clock")
	}
}
