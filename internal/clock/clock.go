// Package clock is the library's single wall-clock gateway. The
// deterministic packages (internal/core, internal/rng,
// internal/partition) must behave as pure functions of (input, seed,
// config); esvet's notime check forbids them from calling time.Now or
// time.Since directly. Code in those packages that legitimately needs to
// *measure* elapsed time — never to make decisions — reads it through
// this package, where tests can substitute a fake clock and where every
// wall-clock dependency of a deterministic path is visible in one place.
package clock

import "time"

// nowFunc is the active time source.
var nowFunc = time.Now

// Now returns the current time from the active source.
func Now() time.Time { return nowFunc() }

// Since reports the elapsed time according to the active source.
func Since(t time.Time) time.Duration { return nowFunc().Sub(t) }

// SetForTest replaces the time source and returns a function restoring
// the real clock. Only tests may call it; it is not safe to race with
// concurrent readers, so install the fake before starting any ranks.
func SetForTest(f func() time.Time) (restore func()) {
	prev := nowFunc
	nowFunc = f
	return func() { nowFunc = prev }
}
