package randvar

import (
	"math"
	"testing"

	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := rng.New(1)
	if Binomial(r, 0, 0.5) != 0 {
		t.Fatal("B(0,q) != 0")
	}
	if Binomial(r, 100, 0) != 0 {
		t.Fatal("B(n,0) != 0")
	}
	if Binomial(r, 100, 1) != 100 {
		t.Fatal("B(n,1) != n")
	}
}

func TestBinomialPanics(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		n int64
		q float64
	}{{-1, 0.5}, {10, -0.1}, {10, 1.1}, {10, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Binomial(%d,%v) did not panic", tc.n, tc.q)
				}
			}()
			Binomial(r, tc.n, tc.q)
		}()
	}
}

func TestBinomialRange(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 2000; i++ {
		x := Binomial(r, 50, 0.3)
		if x < 0 || x > 50 {
			t.Fatalf("B(50,0.3) = %d out of range", x)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := rng.New(3)
	cases := []struct {
		n int64
		q float64
	}{{100, 0.5}, {1000, 0.1}, {50, 0.9}, {10, 0.01}, {200, 0.75}}
	for _, tc := range cases {
		const draws = 20000
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			x := float64(Binomial(r, tc.n, tc.q))
			sum += x
			sumSq += x * x
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(tc.n) * tc.q
		wantVar := float64(tc.n) * tc.q * (1 - tc.q)
		if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/draws)+1e-9 {
			t.Errorf("B(%d,%v): mean %f want %f", tc.n, tc.q, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("B(%d,%v): variance %f want %f", tc.n, tc.q, variance, wantVar)
		}
	}
}

// TestBinomialExactDistribution chi-square tests B(8, 0.4) against exact
// probabilities.
func TestBinomialExactDistribution(t *testing.T) {
	r := rng.New(4)
	const n, q, draws = 8, 0.4, 200000
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[Binomial(r, n, q)]++
	}
	chi2 := 0.0
	for k := 0; k <= n; k++ {
		pk := math.Exp(lchoose(n, k) + float64(k)*math.Log(q) + float64(n-k)*math.Log(1-q))
		exp := pk * draws
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
	}
	// 8 dof, 99.9% critical value ~26.12.
	if chi2 > 26.12 {
		t.Fatalf("binomial chi2 = %f, counts = %v", chi2, counts)
	}
}

func lchoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// TestBinomialLargeNSplitting exercises the underflow-splitting path:
// without eq. 15 splitting, (1-q)^n underflows to 0 for these inputs and
// BINV would return garbage (always n or hang); with splitting the mean
// must come out right.
func TestBinomialLargeNSplitting(t *testing.T) {
	r := rng.New(5)
	const n = int64(5_000_000)
	const q = 0.001
	if math.Pow(1-q, float64(n)) != 0 {
		t.Fatal("test premise wrong: (1-q)^n did not underflow")
	}
	var sum float64
	const draws = 30
	for i := 0; i < draws; i++ {
		sum += float64(Binomial(r, n, q))
	}
	mean := sum / draws
	want := float64(n) * q
	sd := math.Sqrt(float64(n) * q * (1 - q) / draws)
	if math.Abs(mean-want) > 6*sd {
		t.Fatalf("large-n binomial mean %f, want %f ± %f", mean, want, 6*sd)
	}
}

// TestBinomialAdditivity checks eq. 12: summing B(n1,q) and B(n2,q) draws
// matches B(n1+n2, q) in mean and variance.
func TestBinomialAdditivity(t *testing.T) {
	r := rng.New(6)
	const n1, n2, q, draws = 300, 700, 0.2, 20000
	var sumSplit, sumJoint, sqSplit, sqJoint float64
	for i := 0; i < draws; i++ {
		s := float64(Binomial(r, n1, q) + Binomial(r, n2, q))
		j := float64(Binomial(r, n1+n2, q))
		sumSplit += s
		sumJoint += j
		sqSplit += s * s
		sqJoint += j * j
	}
	meanS, meanJ := sumSplit/draws, sumJoint/draws
	varS := sqSplit/draws - meanS*meanS
	varJ := sqJoint/draws - meanJ*meanJ
	if math.Abs(meanS-meanJ) > 4*math.Sqrt(2*160.0/draws) {
		t.Fatalf("additivity means differ: %f vs %f", meanS, meanJ)
	}
	if math.Abs(varS-varJ)/varJ > 0.15 {
		t.Fatalf("additivity variances differ: %f vs %f", varS, varJ)
	}
}

func TestMultinomialValidation(t *testing.T) {
	r := rng.New(7)
	bad := [][]float64{
		{},
		{0.5, 0.4},       // sums to 0.9
		{1.5, -0.5},      // negative
		{math.NaN(), 1},  // NaN
		{0.5, 0.5, 0.25}, // sums to 1.25
	}
	for _, q := range bad {
		if _, err := Multinomial(r, 10, q); err == nil {
			t.Fatalf("bad probs %v accepted", q)
		}
	}
}

func TestMultinomialSumsToN(t *testing.T) {
	r := rng.New(8)
	q := []float64{0.1, 0.2, 0.3, 0.4}
	for _, n := range []int64{0, 1, 17, 1000, 123456} {
		x, err := Multinomial(r, n, q)
		if err != nil {
			t.Fatal(err)
		}
		var s int64
		for _, v := range x {
			if v < 0 {
				t.Fatalf("negative count %v", x)
			}
			s += v
		}
		if s != n {
			t.Fatalf("n=%d: counts sum to %d: %v", n, s, x)
		}
	}
}

func TestMultinomialZeroProbabilityBucket(t *testing.T) {
	r := rng.New(9)
	q := []float64{0.5, 0, 0.5}
	for i := 0; i < 200; i++ {
		x, err := Multinomial(r, 100, q)
		if err != nil {
			t.Fatal(err)
		}
		if x[1] != 0 {
			t.Fatalf("zero-probability bucket got %d trials", x[1])
		}
		if x[0]+x[2] != 100 {
			t.Fatalf("counts %v", x)
		}
	}
}

func TestMultinomialMarginalMeans(t *testing.T) {
	r := rng.New(10)
	q := []float64{0.05, 0.15, 0.35, 0.45}
	const n, draws = 1000, 5000
	sums := make([]float64, len(q))
	for i := 0; i < draws; i++ {
		x, err := Multinomial(r, n, q)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range x {
			sums[j] += float64(v)
		}
	}
	for j := range q {
		mean := sums[j] / draws
		want := float64(n) * q[j]
		sd := math.Sqrt(float64(n) * q[j] * (1 - q[j]) / draws)
		if math.Abs(mean-want) > 5*sd {
			t.Fatalf("bucket %d mean %f, want %f", j, mean, want)
		}
	}
}

func TestSplitTrials(t *testing.T) {
	parts := SplitTrials(10, 4)
	want := []int64{3, 3, 2, 2}
	var sum int64
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("SplitTrials(10,4) = %v", parts)
		}
		sum += parts[i]
	}
	if sum != 10 {
		t.Fatal("parts do not sum")
	}
	parts = SplitTrials(0, 3)
	for _, p := range parts {
		if p != 0 {
			t.Fatalf("SplitTrials(0,3) = %v", parts)
		}
	}
}

func TestParallelMultinomialSumAndShape(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		for _, l := range []int{1, 3, 8, 17} {
			w, err := mpi.NewWorld(p)
			if err != nil {
				t.Fatal(err)
			}
			q := make([]float64, l)
			for i := range q {
				q[i] = 1 / float64(l)
			}
			const n = int64(100000)
			results := make([][]int64, p)
			err = w.Run(func(c *mpi.Comm) error {
				r := rng.Split(42, c.Rank())
				owned, err := ParallelMultinomial(c, r, n, q)
				if err != nil {
					return err
				}
				results[c.Rank()] = owned
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			// Reassemble and verify sum.
			full := make([]int64, l)
			for rank := 0; rank < p; rank++ {
				for k, v := range results[rank] {
					full[rank+k*p] = v
				}
			}
			var sum int64
			for _, v := range full {
				if v < 0 {
					t.Fatalf("p=%d l=%d: negative count %v", p, l, full)
				}
				sum += v
			}
			if sum != n {
				t.Fatalf("p=%d l=%d: sum %d != %d (%v)", p, l, sum, n, full)
			}
		}
	}
}

func TestParallelMultinomialGathered(t *testing.T) {
	const p = 4
	w, err := mpi.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q := []float64{0.1, 0.2, 0.3, 0.4}
	const n = int64(50000)
	results := make([][]int64, p)
	err = w.Run(func(c *mpi.Comm) error {
		r := rng.Split(7, c.Rank())
		full, err := ParallelMultinomialGathered(c, r, n, q)
		if err != nil {
			return err
		}
		results[c.Rank()] = full
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank must see the identical full vector summing to n.
	for rank := 1; rank < p; rank++ {
		for j := range q {
			if results[rank][j] != results[0][j] {
				t.Fatalf("rank %d sees %v, rank 0 sees %v", rank, results[rank], results[0])
			}
		}
	}
	var sum int64
	for _, v := range results[0] {
		sum += v
	}
	if sum != n {
		t.Fatalf("gathered sum %d != %d", sum, n)
	}
}

// TestParallelMultinomialMarginals verifies the parallel generator has the
// right marginal means (property from eq. 13: sums of independent
// multinomials are multinomial).
func TestParallelMultinomialMarginals(t *testing.T) {
	const p = 4
	q := []float64{0.25, 0.25, 0.25, 0.25}
	const n, reps = int64(2000), 300
	sums := make([]float64, len(q))
	w, err := mpi.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for rep := 0; rep < reps; rep++ {
		results := make([][]int64, p)
		err := w.Run(func(c *mpi.Comm) error {
			r := rng.Split(uint64(1000+rep), c.Rank())
			full, err := ParallelMultinomialGathered(c, r, n, q)
			if err != nil {
				return err
			}
			results[c.Rank()] = full
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range results[0] {
			sums[j] += float64(v)
		}
	}
	for j := range q {
		mean := sums[j] / reps
		want := float64(n) * q[j]
		sd := math.Sqrt(float64(n) * q[j] * (1 - q[j]) / reps)
		if math.Abs(mean-want) > 5*sd {
			t.Fatalf("bucket %d: mean %f, want %f ± %f", j, mean, want, 5*sd)
		}
	}
}

func TestParallelMultinomialDeterministicPerSeed(t *testing.T) {
	const p = 3
	q := []float64{0.3, 0.3, 0.4}
	run := func() []int64 {
		w, err := mpi.NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var out []int64
		err = w.Run(func(c *mpi.Comm) error {
			r := rng.Split(99, c.Rank())
			full, err := ParallelMultinomialGathered(c, r, 10000, q)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = full
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced %v and %v", a, b)
		}
	}
}

func BenchmarkBinomial(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		Binomial(r, 1000000, 0.05)
	}
}

func BenchmarkMultinomial20(b *testing.B) {
	r := rng.New(2)
	q := make([]float64, 20)
	for i := range q {
		q[i] = 0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multinomial(r, 1000000, q); err != nil {
			b.Fatal(err)
		}
	}
}
