// Package randvar implements the random-variate generators the paper's
// algorithms depend on: the BINV inverse-transform binomial generator
// (Algorithm 3) hardened against floating-point underflow by splitting
// large trial counts (eqs. 14–15), the conditional-distribution multinomial
// method (Algorithm 4), and the paper's parallel multinomial algorithm
// (Algorithm 5, §6.2) built on the mpi substrate.
package randvar

import (
	"fmt"
	"math"

	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// maxChunk bounds the per-chunk trial count for Binomial so that
// (1-q)^N_i stays above the smallest positive normal float64
// (eq. 15 with z = 2^-1022): N_i <= -ln(z) / (2q) = 708.39 / (2q).
// The 2q bound uses -ln(1-q) <= 2q for q in (0, ~0.7968]; for larger q
// the exact bound is used.
func maxChunk(q float64) int64 {
	const negLogZ = 708.39641853226408 // -ln(2^-1022)
	var denom float64
	if q <= 0.75 {
		denom = 2 * q
	} else {
		denom = -math.Log1p(-q)
	}
	n := int64(negLogZ / denom)
	if n < 1 {
		n = 1
	}
	return n
}

// binv is one inverse-transform draw of Binomial(n, q) for a chunk size n
// small enough that (1-q)^n does not underflow (Algorithm 3).
func binv(r *rng.RNG, n int64, q float64) int64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return n
	}
	u := r.Float64()
	ratio := q / (1 - q)
	pr := math.Pow(1-q, float64(n)) // Q in the paper's pseudocode
	s := pr
	var i int64
	for s < u && i < n {
		i++
		pr *= (float64(n-i+1) / float64(i)) * ratio
		s += pr
	}
	return i
}

// Binomial draws X ~ B(n, q) using BINV with trial-count splitting:
// n is divided into chunks bounded by eq. 15 and the chunk draws are
// summed, which is distribution-exact by the additivity of binomials
// (eq. 12). Expected time O(nq + n/maxChunk). It panics if n < 0 or q is
// outside [0, 1].
func Binomial(r *rng.RNG, n int64, q float64) int64 {
	if n < 0 {
		panic("randvar: Binomial with negative n")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("randvar: Binomial probability %v out of [0,1]", q))
	}
	if n == 0 || q == 0 {
		return 0
	}
	if q == 1 {
		return n
	}
	chunk := maxChunk(q)
	var x int64
	for n > 0 {
		c := chunk
		if n < c {
			c = n
		}
		x += binv(r, c, q)
		n -= c
	}
	return x
}

// Multinomial draws ⟨X₀,…,X_{ℓ-1}⟩ ~ M(n, q₀,…,q_{ℓ-1}) with the
// conditional-distribution method (Algorithm 4): X_i is binomial on the
// remaining trials with the renormalized probability q_i / (1 - Σ_{j<i} q_j).
// The probabilities must be non-negative and sum to 1 (within 1e-9).
func Multinomial(r *rng.RNG, n int64, q []float64) ([]int64, error) {
	if err := validateProbs(q); err != nil {
		return nil, err
	}
	x := make([]int64, len(q))
	var xs int64   // trials consumed so far (X_s)
	var qs float64 // probability mass consumed so far (Q_s)
	for i := range q {
		if qs < 1 && n-xs > 0 {
			cond := q[i] / (1 - qs)
			if cond > 1 {
				cond = 1
			}
			x[i] = Binomial(r, n-xs, cond)
			xs += x[i]
			qs += q[i]
		}
	}
	// Floating-point slack can leave trials unassigned when Σq reaches 1
	// before the last bucket; assign the remainder to the final bucket
	// with positive probability, matching the exact distribution in the
	// limit where the slack is pure rounding noise.
	if xs < n {
		for i := len(q) - 1; i >= 0; i-- {
			if q[i] > 0 {
				x[i] += n - xs
				break
			}
		}
	}
	return x, nil
}

func validateProbs(q []float64) error {
	if len(q) == 0 {
		return fmt.Errorf("randvar: empty probability vector")
	}
	sum := 0.0
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("randvar: probability q[%d] = %v invalid", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("randvar: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// SplitTrials divides n trials into p near-equal parts (the first n%p
// parts get one extra), as Algorithm 5 lines 2–3 prescribe.
func SplitTrials(n int64, p int) []int64 {
	out := make([]int64, p)
	base := n / int64(p)
	rem := n % int64(p)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// ParallelMultinomial is Algorithm 5: every rank draws a multinomial of
// its near-equal share N_i of the n trials with the shared probability
// vector q, the per-outcome counts are transposed with an all-to-all
// exchange, and each rank sums the contributions for the outcomes it
// owns. Outcome j is owned by rank j%p (round-robin); the return value
// holds this rank's owned outcomes in increasing j order, i.e. outcomes
// rank, rank+p, rank+2p, … Runs in O(n/p + ℓ log p) time.
//
// All ranks must pass identical n and q, and r must be a rank-private
// stream (e.g. rng.Split(seed, rank)).
func ParallelMultinomial(c *mpi.Comm, r *rng.RNG, n int64, q []float64) ([]int64, error) {
	if err := validateProbs(q); err != nil {
		return nil, err
	}
	p := c.Size()
	ni := SplitTrials(n, p)[c.Rank()]
	local, err := Multinomial(r, ni, q)
	if err != nil {
		return nil, err
	}
	// Transpose: pack the counts for the outcomes each destination rank
	// owns and exchange.
	parts := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		var mine []int64
		for j := dst; j < len(q); j += p {
			mine = append(mine, local[j])
		}
		parts[dst] = mpi.Int64sToBytes(mine)
	}
	recv, err := c.Alltoall(parts)
	if err != nil {
		return nil, err
	}
	nOwned := 0
	for j := c.Rank(); j < len(q); j += p {
		nOwned++
	}
	owned := make([]int64, nOwned)
	for src, payload := range recv {
		vs, err := mpi.BytesToInt64s(payload)
		if err != nil {
			return nil, fmt.Errorf("randvar: bad transpose payload from rank %d: %w", src, err)
		}
		if len(vs) != nOwned {
			return nil, fmt.Errorf("randvar: rank %d sent %d counts, want %d", src, len(vs), nOwned)
		}
		for k, v := range vs {
			owned[k] += v
		}
	}
	return owned, nil
}

// ParallelMultinomialGathered runs ParallelMultinomial and assembles the
// full ℓ-vector on every rank. Convenience wrapper used by the
// edge-switch step protocol, where ℓ = p and every rank wants the whole
// distribution of operations.
func ParallelMultinomialGathered(c *mpi.Comm, r *rng.RNG, n int64, q []float64) ([]int64, error) {
	owned, err := ParallelMultinomial(c, r, n, q)
	if err != nil {
		return nil, err
	}
	parts, err := c.Allgather(mpi.Int64sToBytes(owned))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(q))
	for src, payload := range parts {
		vs, err := mpi.BytesToInt64s(payload)
		if err != nil {
			return nil, err
		}
		for k, v := range vs {
			out[src+k*c.Size()] = v
		}
	}
	return out, nil
}
