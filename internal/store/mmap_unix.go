//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform maps segments instead of
// reading them onto the heap.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. The mapping stays
// valid after f is closed; munmap releases it.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping returned by mmapFile.
func munmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
