//go:build !linux && !darwin

package store

import (
	"io"
	"os"
)

// mmapSupported reports whether this platform maps segments instead of
// reading them onto the heap.
const mmapSupported = false

// mmapFile degrades to reading the file onto the heap on platforms
// without syscall.Mmap. The tiered store stays correct — only the
// out-of-core memory win is lost.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// munmap releases a mapping returned by mmapFile (a no-op for the heap
// fallback; the GC collects it).
func munmap(b []byte) error { return nil }
