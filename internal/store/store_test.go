package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// testVerts gives nv owners spaced apart so gaps vary in byte width.
func testVerts(nv int) []graph.Vertex {
	verts := make([]graph.Vertex, nv)
	for i := range verts {
		verts[i] = graph.Vertex(i * 7)
	}
	return verts
}

func newTestTiered(t *testing.T, verts []graph.Vertex, budget int64) *Tiered {
	t.Helper()
	r := rng.New(99)
	ts, err := NewTiered(t.TempDir(), verts, budget, r.Uint32)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

// slotState collects slot li's (key, original) pairs via Walk.
func slotState(s Store, li int) ([]graph.Vertex, []bool) {
	var keys []graph.Vertex
	var origs []bool
	s.Walk(li, func(v graph.Vertex, orig bool) bool {
		keys = append(keys, v)
		origs = append(origs, orig)
		return true
	})
	return keys, origs
}

func requireSlotsEqual(t *testing.T, want, got Store, nv int, tag string) {
	t.Helper()
	for li := 0; li < nv; li++ {
		wk, wo := slotState(want, li)
		gk, go_ := slotState(got, li)
		if len(wk) != len(gk) {
			t.Fatalf("%s: slot %d: len %d vs %d", tag, li, len(wk), len(gk))
		}
		for i := range wk {
			if wk[i] != gk[i] || wo[i] != go_[i] {
				t.Fatalf("%s: slot %d entry %d: (%d,%v) vs (%d,%v)", tag, li, i, wk[i], wo[i], gk[i], go_[i])
			}
		}
		if want.Len(li) != got.Len(li) {
			t.Fatalf("%s: slot %d: Len %d vs %d", tag, li, want.Len(li), got.Len(li))
		}
		if want.Originals(li) != got.Originals(li) {
			t.Fatalf("%s: slot %d: Originals %d vs %d", tag, li, want.Originals(li), got.Originals(li))
		}
	}
}

// TestMemTieredEquivalence drives both implementations through the same
// randomized op sequence — inserts, deletes, Kth takes, drains with
// reinserts, step boundaries with a tiny budget so compactions fire
// constantly — and demands identical observable state throughout.
func TestMemTieredEquivalence(t *testing.T) {
	const nv = 24
	verts := testVerts(nv)
	mem := NewMem(verts)
	tr := newTestTiered(t, verts, 8) // compact at nearly every step

	r := rng.New(42)
	pr := rng.New(7)
	for li := 0; li < nv; li++ {
		deg := int(r.Uint32() % 12)
		for j := 0; j < deg; j++ {
			v := verts[li] + 1 + graph.Vertex(r.Uint32()%500)
			p := pr.Uint32()
			if mem.Insert(li, v, true, p) != tr.Insert(li, v, true, p) {
				t.Fatalf("load: Insert disagreement at slot %d v %d", li, v)
			}
		}
	}
	if err := mem.EndLoad(); err != nil {
		t.Fatalf("mem EndLoad: %v", err)
	}
	if err := tr.EndLoad(); err != nil {
		t.Fatalf("tiered EndLoad: %v", err)
	}
	if tr.Stats().BaseBytes == 0 {
		t.Fatal("tiered store has no base segment after EndLoad")
	}
	requireSlotsEqual(t, mem, tr, nv, "after load")

	for step := 0; step < 60; step++ {
		for op := 0; op < 20; op++ {
			li := int(r.Uint32()) % nv
			switch r.Uint32() % 5 {
			case 0: // insert
				v := verts[li] + 1 + graph.Vertex(r.Uint32()%500)
				p := pr.Uint32()
				if mem.Insert(li, v, false, p) != tr.Insert(li, v, false, p) {
					t.Fatalf("step %d: Insert disagreement at slot %d v %d", step, li, v)
				}
			case 1: // delete
				v := verts[li] + 1 + graph.Vertex(r.Uint32()%500)
				mf, mo := mem.Delete(li, v)
				tf, to := tr.Delete(li, v)
				if mf != tf || mo != to {
					t.Fatalf("step %d: Delete disagreement at slot %d v %d: (%v,%v) vs (%v,%v)", step, li, v, mf, mo, tf, to)
				}
			case 2: // kth
				n := mem.Len(li)
				if n == 0 {
					continue
				}
				k := int(r.Uint32()) % n
				mv, mo := mem.Kth(li, k)
				tv, to := tr.Kth(li, k)
				if mv != tv || mo != to {
					t.Fatalf("step %d: Kth(%d,%d) disagreement: (%d,%v) vs (%d,%v)", step, li, k, mv, mo, tv, to)
				}
			case 3: // point lookups
				v := verts[li] + 1 + graph.Vertex(r.Uint32()%500)
				if mem.Contains(li, v) != tr.Contains(li, v) {
					t.Fatalf("step %d: Contains disagreement at slot %d v %d", step, li, v)
				}
				if mem.Original(li, v) != tr.Original(li, v) {
					t.Fatalf("step %d: Original disagreement at slot %d v %d", step, li, v)
				}
			case 4: // drain and reinsert everything (curveball's shape)
				var mk, tk []graph.Vertex
				var mo, to []bool
				mem.Drain(li, func(v graph.Vertex, orig bool) { mk = append(mk, v); mo = append(mo, orig) })
				tr.Drain(li, func(v graph.Vertex, orig bool) { tk = append(tk, v); to = append(to, orig) })
				if len(mk) != len(tk) {
					t.Fatalf("step %d: Drain slot %d: %d vs %d entries", step, li, len(mk), len(tk))
				}
				for i := range mk {
					if mk[i] != tk[i] || mo[i] != to[i] {
						t.Fatalf("step %d: Drain slot %d entry %d differs", step, li, i)
					}
					p := pr.Uint32()
					mem.Insert(li, mk[i], mo[i], p)
					tr.Insert(li, tk[i], to[i], p)
				}
			}
		}
		if err := mem.EndStep(); err != nil {
			t.Fatalf("mem EndStep: %v", err)
		}
		if err := tr.EndStep(); err != nil {
			t.Fatalf("tiered EndStep: %v", err)
		}
		requireSlotsEqual(t, mem, tr, nv, "after step")
	}
	st := tr.Stats()
	if st.Compactions == 0 {
		t.Fatal("budget 8 never triggered a compaction")
	}
	if st.OverlayHWM == 0 {
		t.Fatal("overlay high-water mark never moved")
	}
	// AppendEncoded must agree byte for byte (checkpoint snapshots
	// depend on it), including unpromoted slots' verbatim base copies.
	for li := 0; li < nv; li++ {
		me := mem.AppendEncoded(nil, li)
		te := tr.AppendEncoded(nil, li)
		if !bytes.Equal(me, te) {
			t.Fatalf("AppendEncoded differs at slot %d", li)
		}
	}
}

// TestTieredStreamingLoad checks that an ascending BuildSorted load —
// with gaps, like a distributed-generation scan that skips empty slots —
// streams straight to a base segment without touching the overlay.
func TestTieredStreamingLoad(t *testing.T) {
	const nv = 10
	verts := testVerts(nv)
	mem := NewMem(verts)
	tr := newTestTiered(t, verts, 0)

	pr := rng.New(3)
	for _, li := range []int{1, 2, 5, 9} { // slots 0,3,4,6,7,8 stay empty
		keys := []graph.Vertex{verts[li] + 1, verts[li] + 4, verts[li] + 90}
		prios := []uint32{pr.Uint32(), pr.Uint32(), pr.Uint32()}
		origs := []bool{true, false, true}
		mem.BuildSortedFlagged(li, keys, prios, origs)
		tr.BuildSortedFlagged(li, keys, prios, origs)
	}
	if err := tr.EndLoad(); err != nil {
		t.Fatalf("EndLoad: %v", err)
	}
	st := tr.Stats()
	if st.BaseBytes == 0 {
		t.Fatal("no base segment after streamed load")
	}
	if st.OverlayEntries != 0 {
		t.Fatalf("streamed load left %d overlay entries", st.OverlayEntries)
	}
	if st.OverlayHWM != 0 {
		t.Fatalf("streamed load moved the overlay high-water mark to %d", st.OverlayHWM)
	}
	requireSlotsEqual(t, mem, tr, nv, "streamed load")
}

// TestSegmentCorruptionDetected flips one payload byte and demands the
// cold open fail its CRC.
func TestSegmentCorruptionDetected(t *testing.T) {
	verts := testVerts(4)
	tr := newTestTiered(t, verts, 0)
	for li := range verts {
		tr.Insert(li, verts[li]+2, true, uint32(li+1))
	}
	if err := tr.EndLoad(); err != nil {
		t.Fatalf("EndLoad: %v", err)
	}
	path := tr.BasePath()
	// Copy aside, then corrupt the copy (the original stays mapped).
	dir := t.TempDir()
	dst := filepath.Join(dir, "seg")
	if err := copyFile(path, dst); err != nil {
		t.Fatalf("copy: %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen] ^= 0x40
	if err := os.WriteFile(dst, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(dst); err == nil {
		t.Fatal("OpenSegment accepted a corrupted segment")
	}
}

// TestRecoverNewestSegment builds three generations, damages the newest
// and leaves a .tmp straggler — the recovery scan must clean both up and
// hand back the intact middle generation, proving a crash anywhere in a
// compaction leaves a restorable base (the atomic rename guarantee).
func TestRecoverNewestSegment(t *testing.T) {
	verts := testVerts(3)
	dir := t.TempDir()
	r := rng.New(1)
	tr, err := NewTiered(dir, verts, 0, r.Uint32)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(0, verts[0]+1, true, 5)
	if err := tr.EndLoad(); err != nil { // gen 1
		t.Fatal(err)
	}
	tr.Insert(1, verts[1]+3, false, 6)
	if err := tr.Compact(); err != nil { // gen 2
		t.Fatal(err)
	}
	wantCRC := tr.BaseCRC()
	tr.seg.Close() // release the mapping without removing the files
	tr.seg = nil

	// Simulate a crash mid-compaction of gen 3: a half-written .tmp …
	if err := os.WriteFile(filepath.Join(dir, segName(3)+".tmp"), []byte("ESSGpartial"), 0o666); err != nil {
		t.Fatal(err)
	}
	// … and a gen-4 file that was damaged after renaming.
	data, err := os.ReadFile(filepath.Join(dir, segName(2)))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, segName(4)), bad, 0o666); err != nil {
		t.Fatal(err)
	}

	seg, gen, err := RecoverNewestSegment(dir)
	if err != nil {
		t.Fatalf("RecoverNewestSegment: %v", err)
	}
	if seg == nil || gen != 2 {
		t.Fatalf("recovered generation %d, want 2", gen)
	}
	if seg.CRC() != wantCRC {
		t.Fatalf("recovered segment CRC %08x, want %08x", seg.CRC(), wantCRC)
	}
	seg.Close()
	if _, err := os.Stat(filepath.Join(dir, segName(4))); !os.IsNotExist(err) {
		t.Fatal("damaged gen-4 segment not removed")
	}
	if _, err := os.Stat(filepath.Join(dir, segName(3)+".tmp")); !os.IsNotExist(err) {
		t.Fatal(".tmp straggler not removed")
	}
}

// TestAdoptSegment round-trips a base segment into a fresh store — the
// checkpoint restore path — and rejects identity mismatches.
func TestAdoptSegment(t *testing.T) {
	const nv = 6
	verts := testVerts(nv)
	src := newTestTiered(t, verts, 0)
	pr := rng.New(11)
	for li := 0; li < nv; li++ {
		for j := 0; j < li+1; j++ {
			src.Insert(li, verts[li]+1+graph.Vertex(j*3), j%2 == 0, pr.Uint32())
		}
	}
	if err := src.EndLoad(); err != nil {
		t.Fatal(err)
	}
	crc, size := src.BaseCRC(), src.BaseSize()

	dst := newTestTiered(t, verts, 0)
	if err := dst.AdoptSegment(src.BasePath(), crc, size); err != nil {
		t.Fatalf("AdoptSegment: %v", err)
	}
	requireSlotsEqual(t, src, dst, nv, "adopted")

	bad := newTestTiered(t, verts, 0)
	if err := bad.AdoptSegment(src.BasePath(), crc^1, size); err == nil {
		t.Fatal("AdoptSegment accepted a CRC mismatch")
	}
}
