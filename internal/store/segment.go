package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// A base segment is one rank's immutable CSR image of its partition:
// every owned vertex's reduced adjacency list in slot order, varint
// gap-encoded by the codec shared with checkpoints
// (graph.AppendAdjSet/WalkAdjSetBytes), behind a fixed header and ahead
// of an offset table and a CRC32C trailer. The layout is chosen so the
// whole file is produced by one sequential pass — header, payload,
// offsets, trailer — with the checksum accumulated as bytes stream out:
//
//	"ESSG" | version u16 | flags u16 | nv u64          (16-byte header)
//	payload: nv × varint adjacency list                 (graph codec)
//	offsets: (nv+1) × u64, payload-relative; offsets[nv] = len(payload)
//	crc32c u32 over everything above
//
// The payload length is not stored: it is derived from the file size and
// nv, so a truncated file is unreadable by construction. Readers mmap
// the file and serve List(li) as a zero-copy slice of the mapping;
// Len(li) costs one uvarint decode.
const (
	segMagic     = "ESSG"
	segVersion   = 1
	segHeaderLen = 16
)

// castagnoli is the CRC32C table; the same polynomial the checkpoint
// snapshots use, so the whole durability layer shares one checksum
// family.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName names generation g's base segment. Generations only grow;
// recovery picks the newest file that verifies.
func segName(gen uint64) string { return fmt.Sprintf("base-%08d.seg", gen) }

// Segment is an open, read-only, mmap'd base segment.
type Segment struct {
	path    string
	data    []byte // the whole mapping
	payload []byte // data[segHeaderLen : segHeaderLen+payloadLen]
	offsets []byte // the (nv+1)×u64 table, as raw little-endian bytes
	nv      int
	crc     uint32
}

// OpenSegment maps the segment at path and verifies its header, frame
// arithmetic and full-content CRC32C. Use it for cold opens (recovery,
// checkpoint adoption); the writer's Finalize skips the re-verification
// of bytes it just produced.
func OpenSegment(path string) (*Segment, error) {
	return openSegment(path, true)
}

func openSegment(path string, verify bool) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < segHeaderLen+8+4 {
		return nil, fmt.Errorf("store: segment %s truncated (%d bytes)", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("store: mapping segment %s: %w", path, err)
	}
	s, err := parseSegment(path, data, verify)
	if err != nil {
		_ = munmap(data)
		return nil, err
	}
	return s, nil
}

// parseSegment validates the frame over an already-mapped file.
func parseSegment(path string, data []byte, verify bool) (*Segment, error) {
	le := binary.LittleEndian
	if string(data[0:4]) != segMagic {
		return nil, fmt.Errorf("store: segment %s has bad magic %q", path, data[0:4])
	}
	if v := le.Uint16(data[4:]); v != segVersion {
		return nil, fmt.Errorf("store: segment %s has version %d, this binary reads %d", path, v, segVersion)
	}
	nv64 := le.Uint64(data[8:])
	payloadLen := int64(len(data)) - segHeaderLen - 4 - (int64(nv64)+1)*8
	if nv64 > uint64(len(data)) || payloadLen < 0 {
		return nil, fmt.Errorf("store: segment %s frame does not fit %d slots in %d bytes", path, nv64, len(data))
	}
	s := &Segment{
		path:    path,
		data:    data,
		payload: data[segHeaderLen : segHeaderLen+payloadLen],
		offsets: data[segHeaderLen+payloadLen : int64(len(data))-4],
		nv:      int(nv64),
		crc:     le.Uint32(data[len(data)-4:]),
	}
	if verify {
		if got := crc32.Checksum(data[:len(data)-4], castagnoli); got != s.crc {
			return nil, fmt.Errorf("store: segment %s CRC mismatch: trailer %08x, contents %08x", path, s.crc, got)
		}
	}
	if last := s.offset(s.nv); last != int64(len(s.payload)) {
		return nil, fmt.Errorf("store: segment %s offset table ends at %d, payload holds %d bytes", path, last, len(s.payload))
	}
	return s, nil
}

func (s *Segment) offset(li int) int64 {
	return int64(binary.LittleEndian.Uint64(s.offsets[8*li:]))
}

// NV reports the number of slots (owned vertices) in the segment.
func (s *Segment) NV() int { return s.nv }

// Size reports the on-disk byte size.
func (s *Segment) Size() int64 { return int64(len(s.data)) }

// CRC reports the trailer CRC32C — the identity checkpoint manifests
// record to bind a snapshot to its hard-linked segment.
func (s *Segment) CRC() uint32 { return s.crc }

// Path reports the file backing the mapping.
func (s *Segment) Path() string { return s.path }

// List returns slot li's encoded adjacency list as a zero-copy slice of
// the mapping. The slice dies with the segment: it must not be used
// after Close (the mmaplife vet check enforces this for locals).
func (s *Segment) List(li int) []byte {
	lo, hi := s.offset(li), s.offset(li+1)
	if lo < 0 || hi < lo || hi > int64(len(s.payload)) {
		panic(fmt.Sprintf("store: segment %s has corrupt offsets for slot %d", s.path, li))
	}
	return s.payload[lo:hi]
}

// Close unmaps the segment. Slices returned by List become invalid.
func (s *Segment) Close() error {
	data := s.data
	s.data, s.payload, s.offsets = nil, nil, nil
	return munmap(data)
}

// SegmentWriter streams a new base segment to path+".tmp" in one
// sequential pass; Finalize fsyncs and renames it into place, so a crash
// at any earlier point leaves only a .tmp file the recovery scan
// ignores and removes.
type SegmentWriter struct {
	path    string
	f       *os.File
	bw      *bufio.Writer
	crc     uint32
	nv      int
	next    int
	offsets []uint64
	pos     uint64
}

// NewSegmentWriter starts a segment of nv slots destined for path.
func NewSegmentWriter(path string, nv int) (*SegmentWriter, error) {
	f, err := os.OpenFile(path+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return nil, err
	}
	w := &SegmentWriter{
		path:    path,
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<20),
		nv:      nv,
		offsets: make([]uint64, 0, nv+1),
	}
	var hdr [segHeaderLen]byte
	copy(hdr[0:], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(nv))
	if err := w.write(hdr[:]); err != nil {
		w.Abort()
		return nil, err
	}
	return w, nil
}

func (w *SegmentWriter) write(b []byte) error {
	w.crc = crc32.Update(w.crc, castagnoli, b)
	_, err := w.bw.Write(b)
	return err
}

// Append writes the next slot's encoded adjacency list (the graph
// codec's bytes, possibly copied verbatim from another segment). Slots
// are strictly sequential; Finalize requires exactly nv of them.
func (w *SegmentWriter) Append(enc []byte) error {
	if w.next >= w.nv {
		return fmt.Errorf("store: segment writer for %s overfilled past %d slots", w.path, w.nv)
	}
	w.offsets = append(w.offsets, w.pos)
	w.pos += uint64(len(enc))
	w.next++
	return w.write(enc)
}

// Slots reports how many slots have been appended so far.
func (w *SegmentWriter) Slots() int { return w.next }

// Finalize writes the offset table and CRC trailer, fsyncs, renames the
// file into place and returns it opened (mapped, trusted — the bytes
// were just produced under this checksum).
func (w *SegmentWriter) Finalize() (*Segment, error) {
	if w.next != w.nv {
		w.Abort()
		return nil, fmt.Errorf("store: segment writer for %s finalized with %d of %d slots", w.path, w.next, w.nv)
	}
	w.offsets = append(w.offsets, w.pos)
	var b [8]byte
	for _, off := range w.offsets {
		binary.LittleEndian.PutUint64(b[:], off)
		if err := w.write(b[:]); err != nil {
			w.Abort()
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(b[:4], w.crc)
	if _, err := w.bw.Write(b[:4]); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		w.Abort()
		return nil, err
	}
	w.f = nil
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		w.Abort()
		return nil, err
	}
	return openSegment(w.path, false)
}

// Abort discards the half-written segment; safe after any error.
func (w *SegmentWriter) Abort() {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	_ = os.Remove(w.path + ".tmp")
}

// RecoverNewestSegment scans dir for base segments and opens the newest
// generation that verifies, removing .tmp leftovers and any segment that
// fails verification (half-written survivors of a crash mid-compaction;
// the atomic rename guarantees at least one complete predecessor
// exists whenever any generation was ever finalized). It returns
// (nil, 0, nil) for a directory with no usable segment.
func RecoverNewestSegment(dir string) (*Segment, uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var gens []uint64
	for _, ent := range ents {
		name := ent.Name()
		if filepath.Ext(name) == ".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		var gen uint64
		if n, serr := fmt.Sscanf(name, "base-%d.seg", &gen); n == 1 && serr == nil {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		path := filepath.Join(dir, segName(gen))
		seg, err := openSegment(path, true)
		if err == nil {
			return seg, gen, nil
		}
		// A segment that fails verification was never renamed complete —
		// or was damaged after the fact; either way the next-older
		// generation is the restorable base.
		_ = os.Remove(path)
	}
	return nil, 0, nil
}
