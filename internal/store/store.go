// Package store is the per-rank partition storage seam of the parallel
// engine: an AdjSet-shaped, slot-indexed interface with two
// implementations — Mem, the all-in-memory treap layer the engine always
// had, and Tiered, a two-tier out-of-core store that keeps an immutable
// mmap'd CSR base segment on disk with the treaps demoted to a bounded
// delta overlay of vertices touched since the last compaction
// (DESIGN.md §7). The engine mutates storage only through this
// interface, so both randomizers (edge-switch conversations and
// curveball's whole-partition drains) run unchanged over either tier.
package store

import "edgeswitch/internal/graph"

// Store holds one rank's partition: slot li is the reduced adjacency
// list of the rank's li-th owned vertex. The contract mirrors
// graph.AdjSet per slot; implementations are single-goroutine, like the
// engine that owns them.
//
// Load protocol: bulk loads arrive as ascending-slot BuildSorted /
// BuildSortedFlagged calls or as arbitrary Inserts; EndLoad marks the
// partition complete (Tiered establishes its first base segment there).
// EndStep is the engine's step-boundary hook, the only point a
// compaction may run — mid-step, outstanding reads stay valid.
type Store interface {
	// Len reports slot li's entry count.
	Len(li int) int
	// Originals reports how many of slot li's entries still carry the
	// original flag.
	Originals(li int) int
	// Contains reports whether v is in slot li.
	Contains(li int, v graph.Vertex) bool
	// Original reports whether v is present in slot li and still flagged
	// original.
	Original(li int, v graph.Vertex) bool
	// Kth returns slot li's k-th smallest entry and its flag; it panics
	// out of range, like AdjSet.Kth. Callers take the entry to mutate it
	// (the engine's takeLocal), so Tiered promotes the slot.
	Kth(li, k int) (graph.Vertex, bool)
	// Insert adds v to slot li with the given flag and treap priority,
	// reporting false on a duplicate.
	Insert(li int, v graph.Vertex, original bool, prio uint32) bool
	// Delete removes v from slot li, reporting presence and the flag of
	// the removed entry.
	Delete(li int, v graph.Vertex) (found, original bool)
	// Drain empties slot li, invoking fn for each entry in ascending
	// order — curveball's per-round bulk extraction.
	Drain(li int, fn func(v graph.Vertex, original bool))
	// Walk visits slot li in ascending order without mutating it; fn
	// returning false stops early.
	Walk(li int, fn func(v graph.Vertex, original bool) bool)
	// BuildSorted bulk-fills empty slot li from strictly ascending keys,
	// all entries sharing one flag. Priorities may be ignored by
	// implementations that do not materialize a treap for the slot.
	BuildSorted(li int, keys []graph.Vertex, prios []uint32, original bool)
	// BuildSortedFlagged is BuildSorted with per-entry flags.
	BuildSortedFlagged(li int, keys []graph.Vertex, prios []uint32, origs []bool)
	// AppendEncoded appends slot li's codec encoding (graph.AppendAdjSet
	// bytes) to buf — the checkpoint snapshot's adjacency section.
	AppendEncoded(buf []byte, li int) []byte
	// EndLoad completes the bulk-load phase.
	EndLoad() error
	// EndStep runs at every step boundary; Tiered compacts here when the
	// overlay exceeds its budget.
	EndStep() error
	// Stats reports the spill counters (zero for Mem).
	Stats() Stats
	// Close releases every resource (mappings, spill files). The store
	// is unusable afterwards.
	Close() error
}

// Stats are the observability counters of a tiered store, surfaced
// through core.Result and `edgeswitch -v` so benchmark runs can
// attribute time to compaction vs switching.
type Stats struct {
	// BaseBytes is the current base segment's on-disk size (0 before the
	// first compaction and always 0 for Mem).
	BaseBytes int64
	// OverlayEntries is the overlay's current entry count.
	OverlayEntries int64
	// OverlayHWM is the overlay's entry high-water mark.
	OverlayHWM int64
	// Compactions counts base-segment rewrites.
	Compactions int64
	// CompactNs is the cumulative wall-clock nanoseconds spent
	// compacting.
	CompactNs int64
}

// Mem is the all-in-memory Store: a treap per slot over one shared node
// arena — exactly the storage the engine owned before the seam existed.
type Mem struct {
	verts []graph.Vertex
	adj   []graph.AdjSet
	arena graph.NodeArena
}

// NewMem returns an in-memory store with one empty slot per owned
// vertex; verts maps slots to their owner labels (the gap-encoding
// anchors AppendEncoded needs) and is retained, not copied.
func NewMem(verts []graph.Vertex) *Mem {
	return &Mem{verts: verts, adj: make([]graph.AdjSet, len(verts))}
}

// Len implements Store.
func (m *Mem) Len(li int) int { return m.adj[li].Len() }

// Originals implements Store.
func (m *Mem) Originals(li int) int { return m.adj[li].Originals() }

// Contains implements Store.
func (m *Mem) Contains(li int, v graph.Vertex) bool { return m.adj[li].Contains(v) }

// Original implements Store.
func (m *Mem) Original(li int, v graph.Vertex) bool { return m.adj[li].Original(v) }

// Kth implements Store.
func (m *Mem) Kth(li, k int) (graph.Vertex, bool) { return m.adj[li].Kth(k) }

// Insert implements Store.
func (m *Mem) Insert(li int, v graph.Vertex, original bool, prio uint32) bool {
	return m.adj[li].InsertArena(&m.arena, v, original, prio)
}

// Delete implements Store.
func (m *Mem) Delete(li int, v graph.Vertex) (found, original bool) {
	return m.adj[li].DeleteArena(&m.arena, v)
}

// Drain implements Store.
func (m *Mem) Drain(li int, fn func(v graph.Vertex, original bool)) {
	m.adj[li].DrainArena(&m.arena, fn)
}

// Walk implements Store.
func (m *Mem) Walk(li int, fn func(v graph.Vertex, original bool) bool) {
	m.adj[li].Walk(fn)
}

// BuildSorted implements Store.
func (m *Mem) BuildSorted(li int, keys []graph.Vertex, prios []uint32, original bool) {
	m.adj[li].BuildSorted(&m.arena, keys, prios, original)
}

// BuildSortedFlagged implements Store.
func (m *Mem) BuildSortedFlagged(li int, keys []graph.Vertex, prios []uint32, origs []bool) {
	m.adj[li].BuildSortedFlagged(&m.arena, keys, prios, origs)
}

// AppendEncoded implements Store.
func (m *Mem) AppendEncoded(buf []byte, li int) []byte {
	return m.adj[li].AppendAdjSet(buf, m.verts[li])
}

// EndLoad implements Store (a no-op).
func (m *Mem) EndLoad() error { return nil }

// EndStep implements Store (a no-op).
func (m *Mem) EndStep() error { return nil }

// Stats implements Store (all zeros).
func (m *Mem) Stats() Stats { return Stats{} }

// Close implements Store (a no-op).
func (m *Mem) Close() error { return nil }
