package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgeswitch/internal/clock"
	"edgeswitch/internal/graph"
)

// Tiered is the out-of-core Store: an immutable mmap'd base segment
// holding the whole partition in slot order, plus a bounded in-memory
// delta overlay — one treap per slot, but only for slots touched since
// the last compaction. Reads consult overlay-then-base; every mutation
// promotes its slot into the overlay first (materializing the base list
// into a treap once); when the overlay outgrows its budget at a step
// boundary, a compaction merges it into a new base segment in one
// sequential pass — unpromoted slots are copied verbatim, byte for byte,
// since the gap encoding is owner-relative and they did not change.
// Steady-state memory is O(working set between compactions), not
// O(|E_local|); the mmap'd base does not count against GOMEMLIMIT.
//
// Tiered never consumes the engine's run RNG: promotion priorities come
// from the dedicated stream handed to NewTiered, so spill and in-memory
// runs make identical random choices (priorities shape only treap form,
// never results — selection is by key order).
type Tiered struct {
	dir   string
	verts []graph.Vertex

	overlay       []graph.AdjSet
	arena         graph.NodeArena
	promoted      []bool
	promotedCount int
	entries       int64 // live overlay entries
	hwm           int64

	seg *Segment
	gen uint64

	w     *SegmentWriter // open streaming bulk-load writer
	wNext int            // next slot the writer expects

	loading       bool
	loadedEntries int64 // entries seen during load, for the auto budget
	budget        int64
	cfgBudget     int64

	prio func() uint32

	compactions int64
	compactNs   int64

	// decode/encode scratch, reused across slots
	keys   []graph.Vertex
	origs  []bool
	prios  []uint32
	encBuf []byte
}

// autoBudgetFloor keeps tiny partitions from compacting on every step.
const autoBudgetFloor = 4096

// NewTiered creates a tiered store spilling to dir (created if absent;
// any stale segments from a previous run are removed). verts maps slots
// to owner labels and is retained. budget caps the overlay's entry
// count; 0 resolves to max(loadedEntries/4, 4096) at EndLoad. prio
// supplies treap priorities for promoted entries and must be a stream
// independent of the run RNG.
func NewTiered(dir string, verts []graph.Vertex, budget int64, prio func() uint32) (*Tiered, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			_ = os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	return &Tiered{
		dir:       dir,
		verts:     verts,
		overlay:   make([]graph.AdjSet, len(verts)),
		promoted:  make([]bool, len(verts)),
		loading:   true,
		cfgBudget: budget,
		prio:      prio,
	}, nil
}

// inOverlay reports whether slot li's live content is the overlay treap
// (no base yet, or promoted since the last compaction).
func (t *Tiered) inOverlay(li int) bool { return t.seg == nil || t.promoted[li] }

// list returns slot li's encoded base list; only valid when !inOverlay.
func (t *Tiered) list(li int) []byte { return t.seg.List(li) }

// corrupt reports an undecodable base list. The segment passed its CRC
// when opened, so this is an invariant violation (an encoder bug or
// in-flight memory damage), not an I/O condition the engine could
// handle — the read paths have no error returns, matching AdjSet.
func (t *Tiered) corrupt(li int, err error) {
	panic(fmt.Sprintf("store: base segment %s slot %d undecodable after CRC pass: %v", t.seg.Path(), li, err))
}

// materialize promotes slot li: its base list is decoded into an overlay
// treap (with fresh priorities from the promotion stream) and the base
// copy goes dead until the next compaction.
func (t *Tiered) materialize(li int) {
	keys, origs, _, err := graph.DecodeAdjSet(t.list(li), t.verts[li], t.keys[:0], t.origs[:0])
	if err != nil {
		t.corrupt(li, err)
	}
	t.keys, t.origs = keys, origs
	prios := t.prios[:0]
	for range keys {
		prios = append(prios, t.prio())
	}
	t.prios = prios
	t.overlay[li].BuildSortedFlagged(&t.arena, keys, prios, origs)
	t.promoted[li] = true
	t.promotedCount++
	t.addEntries(int64(len(keys)))
}

// ensureWritable makes slot li's live content an overlay treap.
func (t *Tiered) ensureWritable(li int) {
	t.ensureLoaded()
	if !t.inOverlay(li) {
		t.materialize(li)
	}
}

// ensureLoaded finalizes an open streaming bulk-load writer so reads and
// point mutations see a complete base. Slots never bulk-filled get empty
// lists.
func (t *Tiered) ensureLoaded() {
	if t.w == nil {
		return
	}
	empty := graph.AppendEmptyAdjSet(nil)
	for t.w.Slots() < len(t.verts) {
		if err := t.w.Append(empty); err != nil {
			t.w.Abort()
			t.w = nil
			panic(fmt.Sprintf("store: finishing streamed base segment: %v", err))
		}
	}
	seg, err := t.w.Finalize()
	t.w = nil
	if err != nil {
		panic(fmt.Sprintf("store: finalizing streamed base segment: %v", err))
	}
	t.seg = seg
}

func (t *Tiered) addEntries(n int64) {
	t.entries += n
	if t.entries > t.hwm {
		t.hwm = t.entries
	}
}

// Len implements Store.
func (t *Tiered) Len(li int) int {
	t.ensureLoaded()
	if t.inOverlay(li) {
		return t.overlay[li].Len()
	}
	n, err := graph.AdjSetBytesLen(t.list(li))
	if err != nil {
		t.corrupt(li, err)
	}
	return n
}

// Originals implements Store.
func (t *Tiered) Originals(li int) int {
	t.ensureLoaded()
	if t.inOverlay(li) {
		return t.overlay[li].Originals()
	}
	cnt := 0
	_, err := graph.WalkAdjSetBytes(t.list(li), t.verts[li], func(_ graph.Vertex, orig bool) bool {
		if orig {
			cnt++
		}
		return true
	})
	if err != nil {
		t.corrupt(li, err)
	}
	return cnt
}

// Contains implements Store.
func (t *Tiered) Contains(li int, v graph.Vertex) bool {
	t.ensureLoaded()
	if t.inOverlay(li) {
		return t.overlay[li].Contains(v)
	}
	found := false
	_, err := graph.WalkAdjSetBytes(t.list(li), t.verts[li], func(k graph.Vertex, _ bool) bool {
		if k >= v {
			found = k == v
			return false
		}
		return true
	})
	if err != nil {
		t.corrupt(li, err)
	}
	return found
}

// Original implements Store.
func (t *Tiered) Original(li int, v graph.Vertex) bool {
	t.ensureLoaded()
	if t.inOverlay(li) {
		return t.overlay[li].Original(v)
	}
	res := false
	_, err := graph.WalkAdjSetBytes(t.list(li), t.verts[li], func(k graph.Vertex, orig bool) bool {
		if k >= v {
			res = k == v && orig
			return false
		}
		return true
	})
	if err != nil {
		t.corrupt(li, err)
	}
	return res
}

// Kth implements Store. Callers take the k-th entry to mutate the slot
// right after (the engine's takeLocal), so the slot is promoted rather
// than decoded twice.
func (t *Tiered) Kth(li, k int) (graph.Vertex, bool) {
	t.ensureWritable(li)
	return t.overlay[li].Kth(k)
}

// Insert implements Store.
func (t *Tiered) Insert(li int, v graph.Vertex, original bool, prio uint32) bool {
	t.ensureWritable(li)
	ok := t.overlay[li].InsertArena(&t.arena, v, original, prio)
	if ok {
		t.addEntries(1)
		if t.loading {
			t.loadedEntries++
		}
	}
	return ok
}

// Delete implements Store.
func (t *Tiered) Delete(li int, v graph.Vertex) (found, original bool) {
	t.ensureWritable(li)
	found, original = t.overlay[li].DeleteArena(&t.arena, v)
	if found {
		t.entries--
	}
	return found, original
}

// Drain implements Store. Draining an unpromoted slot streams the base
// list through fn and marks the slot promoted-empty — the base copy is
// dead, and reinserts land in the overlay.
func (t *Tiered) Drain(li int, fn func(v graph.Vertex, original bool)) {
	t.ensureLoaded()
	if t.inOverlay(li) {
		n := int64(t.overlay[li].Len())
		t.overlay[li].DrainArena(&t.arena, fn)
		t.entries -= n
		return
	}
	_, err := graph.WalkAdjSetBytes(t.list(li), t.verts[li], func(v graph.Vertex, orig bool) bool {
		fn(v, orig)
		return true
	})
	if err != nil {
		t.corrupt(li, err)
	}
	t.promoted[li] = true
	t.promotedCount++
}

// Walk implements Store.
func (t *Tiered) Walk(li int, fn func(v graph.Vertex, original bool) bool) {
	t.ensureLoaded()
	if t.inOverlay(li) {
		t.overlay[li].Walk(fn)
		return
	}
	if _, err := graph.WalkAdjSetBytes(t.list(li), t.verts[li], fn); err != nil {
		t.corrupt(li, err)
	}
}

// streamBuild routes an ascending-slot bulk load straight into a segment
// writer, reporting whether it consumed the call. The first BuildSorted*
// on a pristine store opens the writer; out-of-order or post-load calls
// fall back to the overlay path.
func (t *Tiered) streamBuild(li int, enc func([]byte, graph.Vertex) []byte) bool {
	if t.w == nil {
		if !t.loading || t.seg != nil || t.entries != 0 || t.promotedCount != 0 {
			return false
		}
		path := filepath.Join(t.dir, segName(t.gen+1))
		w, err := NewSegmentWriter(path, len(t.verts))
		if err != nil {
			panic(fmt.Sprintf("store: opening streamed base segment: %v", err))
		}
		t.gen++
		t.w = w
	}
	if li < t.w.Slots() {
		panic(fmt.Sprintf("store: bulk load revisited slot %d", li))
	}
	empty := graph.AppendEmptyAdjSet(nil)
	for t.w.Slots() < li {
		if err := t.w.Append(empty); err != nil {
			panic(fmt.Sprintf("store: streaming base segment: %v", err))
		}
	}
	t.encBuf = enc(t.encBuf[:0], t.verts[li])
	if err := t.w.Append(t.encBuf); err != nil {
		panic(fmt.Sprintf("store: streaming base segment: %v", err))
	}
	return true
}

// BuildSorted implements Store. Ascending-slot loads on a pristine store
// stream straight to the base segment — no treaps are materialized, so
// bootstrap memory is O(scratch), not O(|E_local|).
func (t *Tiered) BuildSorted(li int, keys []graph.Vertex, prios []uint32, original bool) {
	if t.loading {
		t.loadedEntries += int64(len(keys))
	}
	if t.streamBuild(li, func(buf []byte, owner graph.Vertex) []byte {
		return graph.AppendSortedAdj(buf, owner, keys, original)
	}) {
		return
	}
	t.ensureWritable(li)
	t.overlay[li].BuildSorted(&t.arena, keys, prios, original)
	t.addEntries(int64(len(keys)))
}

// BuildSortedFlagged implements Store; see BuildSorted.
func (t *Tiered) BuildSortedFlagged(li int, keys []graph.Vertex, prios []uint32, origs []bool) {
	if t.loading {
		t.loadedEntries += int64(len(keys))
	}
	if t.streamBuild(li, func(buf []byte, owner graph.Vertex) []byte {
		return graph.AppendSortedAdjFlagged(buf, owner, keys, origs)
	}) {
		return
	}
	t.ensureWritable(li)
	t.overlay[li].BuildSortedFlagged(&t.arena, keys, prios, origs)
	t.addEntries(int64(len(keys)))
}

// AppendEncoded implements Store. Unpromoted slots copy their base bytes
// verbatim — the encoding is identical by construction.
func (t *Tiered) AppendEncoded(buf []byte, li int) []byte {
	t.ensureLoaded()
	if t.inOverlay(li) {
		return t.overlay[li].AppendAdjSet(buf, t.verts[li])
	}
	return append(buf, t.list(li)...)
}

// EndLoad implements Store: the partition is complete, so the first base
// segment is established (a streamed writer finalizes; an Insert-loaded
// overlay compacts) and the overlay budget resolves. After AdoptSegment
// the budget is already resolved from the segment's size and the
// loading phase is over, so the entry-count resolution (which would see
// zero loaded entries) is skipped.
func (t *Tiered) EndLoad() error {
	if t.loading {
		t.loading = false
		t.budget = t.cfgBudget
		if t.budget <= 0 {
			t.budget = t.loadedEntries / 4
			if t.budget < autoBudgetFloor {
				t.budget = autoBudgetFloor
			}
		}
	}
	t.ensureLoaded()
	return t.Compact()
}

// EndStep implements Store: past-budget overlays compact at step
// boundaries, where no reads are outstanding.
func (t *Tiered) EndStep() error {
	if t.entries <= t.budget {
		return nil
	}
	return t.Compact()
}

// Compact merges the overlay into a new base segment: one sequential
// write of all nv slots — promoted slots re-encoded from their treaps
// (nodes recycled to the arena as they go), unpromoted slots copied byte
// for byte from the old mapping — then an atomic rename, after which the
// old segment is unmapped and removed. A crash anywhere in between
// leaves either the old or the new generation complete on disk.
func (t *Tiered) Compact() error {
	t.ensureLoaded()
	if t.seg != nil && t.promotedCount == 0 {
		return nil
	}
	start := clock.Now()
	path := filepath.Join(t.dir, segName(t.gen+1))
	w, err := NewSegmentWriter(path, len(t.verts))
	if err != nil {
		return err
	}
	for li := range t.verts {
		if t.inOverlay(li) {
			t.encBuf = t.overlay[li].AppendAdjSet(t.encBuf[:0], t.verts[li])
			err = w.Append(t.encBuf)
		} else {
			err = w.Append(t.list(li))
		}
		if err != nil {
			w.Abort()
			return err
		}
	}
	seg, err := w.Finalize()
	if err != nil {
		return err
	}
	t.gen++
	hadSeg := t.seg != nil
	if hadSeg {
		old := t.seg.Path()
		_ = t.seg.Close()
		_ = os.Remove(old)
	}
	t.seg = seg
	for li := range t.verts {
		// Without a prior base every slot lived in the overlay, flagged
		// or not; with one, only promoted slots did.
		if !hadSeg || t.promoted[li] {
			t.promoted[li] = false
			t.overlay[li].DrainArena(&t.arena, func(graph.Vertex, bool) {})
		}
	}
	t.promotedCount = 0
	t.entries = 0
	t.compactions++
	t.compactNs += int64(clock.Since(start))
	return nil
}

// AdoptSegment installs an external base segment (a checkpoint's
// hard-linked snapshot) as this store's base: the file is linked — or
// copied across devices — into the spill directory as the next
// generation, opened with a full CRC verification, and checked against
// the expected identity. The store must be freshly created and empty.
func (t *Tiered) AdoptSegment(path string, wantCRC uint32, wantSize int64) error {
	if t.seg != nil || t.w != nil || t.entries != 0 {
		return fmt.Errorf("store: AdoptSegment on a non-empty store")
	}
	t.gen++
	dst := filepath.Join(t.dir, segName(t.gen))
	if err := LinkOrCopy(path, dst); err != nil {
		return fmt.Errorf("store: adopting segment %s: %w", path, err)
	}
	seg, err := OpenSegment(dst)
	if err != nil {
		return err
	}
	if seg.CRC() != wantCRC || seg.Size() != wantSize {
		_ = seg.Close()
		return fmt.Errorf("store: adopted segment %s is (crc %08x, %d bytes), manifest says (crc %08x, %d bytes)",
			path, seg.CRC(), seg.Size(), wantCRC, wantSize)
	}
	if seg.NV() != len(t.verts) {
		_ = seg.Close()
		return fmt.Errorf("store: adopted segment %s holds %d slots, partition owns %d", path, seg.NV(), len(t.verts))
	}
	t.seg = seg
	t.loading = false
	if t.budget = t.cfgBudget; t.budget <= 0 {
		// Entry counts are not framed in the segment; approximate the
		// auto budget from its byte size (~1.5 encoded bytes per entry).
		t.budget = seg.Size() / 6
		if t.budget < autoBudgetFloor {
			t.budget = autoBudgetFloor
		}
	}
	return nil
}

// BasePath reports the current base segment's file (empty before the
// first compaction). Checkpoints hard-link this file after Compact.
func (t *Tiered) BasePath() string {
	if t.seg == nil {
		return ""
	}
	return t.seg.Path()
}

// BaseCRC reports the current base segment's trailer CRC32C.
func (t *Tiered) BaseCRC() uint32 { return t.seg.CRC() }

// BaseSize reports the current base segment's byte size.
func (t *Tiered) BaseSize() int64 { return t.seg.Size() }

// Stats implements Store.
func (t *Tiered) Stats() Stats {
	s := Stats{
		OverlayEntries: t.entries,
		OverlayHWM:     t.hwm,
		Compactions:    t.compactions,
		CompactNs:      t.compactNs,
	}
	if t.seg != nil {
		s.BaseBytes = t.seg.Size()
	}
	return s
}

// Close implements Store: the mapping is released and the rank's spill
// directory removed. Checkpoint hard links keep their segment inodes
// alive independently.
func (t *Tiered) Close() error {
	if t.w != nil {
		t.w.Abort()
		t.w = nil
	}
	var err error
	if t.seg != nil {
		err = t.seg.Close()
		t.seg = nil
	}
	if rerr := os.RemoveAll(t.dir); err == nil {
		err = rerr
	}
	return err
}

// LinkOrCopy hard-links src to dst — sharing the inode, so immutable
// base segments cost nothing to publish into a checkpoint — and falls
// back to a byte copy across devices or on filesystems without links.
func LinkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	return copyFile(src, dst)
}

// copyFile is LinkOrCopy's cross-device fallback.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		_ = out.Close()
		return err
	}
	return out.Close()
}
