package tune

import (
	"testing"

	"edgeswitch/internal/core"
	"edgeswitch/internal/gen"
	"edgeswitch/internal/rng"
)

func TestStepSizeValidation(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(1), 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StepSize(g, 100, Options{Ranks: 0}); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	if _, err := StepSize(g, 0, Options{Ranks: 2}); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestStepSizeReturnsCandidate(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(2), 600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	const tOps = 3000
	res, err := StepSize(g, tOps, Options{
		Ranks:      4,
		Scheme:     core.SchemeHPU,
		Seed:       3,
		Reps:       2,
		Candidates: []int64{tOps / 10, tOps},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSize != tOps/10 && res.StepSize != tOps {
		t.Fatalf("step size %d not among candidates", res.StepSize)
	}
	if res.BaselineER <= 0 {
		t.Fatalf("baseline ER %f", res.BaselineER)
	}
	if len(res.CandidateER) != 2 {
		t.Fatalf("candidate ERs %v", res.CandidateER)
	}
	for s, er := range res.CandidateER {
		if er <= 0 || er > 100 {
			t.Fatalf("candidate %d ER %f out of range", s, er)
		}
	}
}

// TestStepSizeHPAcceptsOneStep: on a label-structure-free random graph
// with an HP scheme, even a single step stays at the baseline (Table 3),
// so tuning must select the largest candidate.
func TestStepSizeHPAcceptsOneStep(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple engine runs")
	}
	g, err := gen.ErdosRenyi(rng.New(4), 1500, 12000)
	if err != nil {
		t.Fatal(err)
	}
	tOps := int64(6000)
	res, err := StepSize(g, tOps, Options{
		Ranks:      4,
		Scheme:     core.SchemeHPU,
		Seed:       5,
		Reps:       3,
		Tolerance:  0.25,
		Candidates: []int64{tOps / 10, tOps},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSize != tOps {
		t.Fatalf("HP-U on ER graph should accept one step; got s=%d (baseline %.2f, ERs %v)",
			res.StepSize, res.BaselineER, res.CandidateER)
	}
}

func TestStepSizeDefaultCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("probes all default candidates")
	}
	g, err := gen.ErdosRenyi(rng.New(6), 400, 1600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StepSize(g, 800, Options{Ranks: 2, Scheme: core.SchemeCP, Seed: 7, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidateER) < 4 {
		t.Fatalf("default candidate sweep too small: %v", res.CandidateER)
	}
}

// TestStepSizeRejectsCurveball: step size is an edge-switch knob; a
// curveball production run has nothing to tune (one round per step).
func TestStepSizeRejectsCurveball(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(3), 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StepSize(g, 10, Options{Ranks: 2, Algorithm: core.AlgoCurveball}); err == nil {
		t.Fatal("curveball accepted by step-size tuning")
	}
}
