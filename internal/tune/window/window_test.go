package window

import "testing"

func calm(win int) Signals {
	return Signals{Started: 1000, Committed: 1000, InFlightHWM: win, LocalEdges: 100000}
}

func lossy() Signals {
	return Signals{Started: 1000, Committed: 600, Aborts: 400, Conflicts: 200, ReserveFails: 100, LocalEdges: 100000}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{Ranks: 4})
	if c.Window() != DefaultStart {
		t.Fatalf("start window %d, want %d", c.Window(), DefaultStart)
	}
}

func TestAdditiveIncreaseOnCalmUtilizedSteps(t *testing.T) {
	c := New(Config{Ranks: 4})
	w := c.Window()
	for i := 0; i < 5; i++ {
		nw := c.Observe(calm(c.Window()))
		if nw != w+DefaultAdditive {
			t.Fatalf("step %d: window %d, want %d", i, nw, w+DefaultAdditive)
		}
		w = nw
	}
	if st := c.Stats(); st.Grows != 5 || st.Shrinks != 0 || st.Steps != 5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNoGrowthWhenWindowUnderused(t *testing.T) {
	c := New(Config{Ranks: 4})
	s := calm(c.Window())
	s.InFlightHWM = c.Window() / 4 // step never filled the window
	if w := c.Observe(s); w != DefaultStart {
		t.Fatalf("underused window grew: %d", w)
	}
}

func TestMultiplicativeDecreaseOnLoss(t *testing.T) {
	c := New(Config{Ranks: 4})
	w := c.Observe(lossy())
	if w != DefaultStart/2 {
		t.Fatalf("window %d after loss, want %d", w, DefaultStart/2)
	}
	// Repeated loss decays geometrically down to the floor.
	for i := 0; i < 20; i++ {
		w = c.Observe(lossy())
	}
	if w != 1 {
		t.Fatalf("window %d after sustained loss, want floor 1", w)
	}
}

func TestHysteresisHoldsBetweenThresholds(t *testing.T) {
	c := New(Config{Ranks: 4})
	s := calm(c.Window())
	s.Conflicts = 100 // loss ≈ 0.09: between LossLow and LossHigh
	if w := c.Observe(s); w != DefaultStart {
		t.Fatalf("window moved to %d inside the hysteresis band", w)
	}
}

func TestCeilingAndLocalEdgeClamp(t *testing.T) {
	c := New(Config{Ranks: 4, Ceiling: 70})
	for i := 0; i < 10; i++ {
		c.Observe(calm(c.Window()))
	}
	if c.Window() != 70 {
		t.Fatalf("window %d, want ceiling 70", c.Window())
	}
	// A shrinking partition caps the window at |E_local|/4 regardless.
	s := calm(c.Window())
	s.LocalEdges = 40
	if w := c.Observe(s); w != 10 {
		t.Fatalf("window %d with 40 local edges, want 10", w)
	}
	// An emptied partition degrades to the floor, not zero.
	s.LocalEdges = 2
	if w := c.Observe(s); w != 1 {
		t.Fatalf("window %d with 2 local edges, want 1", w)
	}
}

func TestSingleRankPinnedToOne(t *testing.T) {
	c := New(Config{Ranks: 1, Start: 64, Floor: 8, Ceiling: 256})
	if c.Window() != 1 {
		t.Fatalf("p=1 start window %d, want 1", c.Window())
	}
	for i := 0; i < 50; i++ {
		if w := c.Observe(calm(1)); w != 1 {
			t.Fatalf("p=1 window moved to %d", w)
		}
	}
	if c.Max() != 1 {
		t.Fatalf("p=1 max window %d, want 1", c.Max())
	}
}

func TestFloorRespected(t *testing.T) {
	c := New(Config{Ranks: 4, Floor: 16, Start: 16})
	for i := 0; i < 10; i++ {
		c.Observe(lossy())
	}
	if c.Window() != 16 {
		t.Fatalf("window %d, want floor 16", c.Window())
	}
}

func TestLossComputation(t *testing.T) {
	if l := (Signals{}).Loss(); l != 0 {
		t.Fatalf("empty step loss %v", l)
	}
	s := Signals{Started: 900, Conflicts: 100}
	if l := s.Loss(); l != 0.1 {
		t.Fatalf("loss %v, want 0.1", l)
	}
	// Partner-side failures are structural-or-not opaque: not loss.
	s = Signals{Started: 900, ReserveFails: 500}
	if l := s.Loss(); l != 0 {
		t.Fatalf("reserve-fail-only loss %v, want 0", l)
	}
	// Structural aborts are not loss: shrinking the window cannot remove
	// an invalid-switch rejection, so the controller must not see it.
	s = Signals{Started: 500, Aborts: 500}
	if l := s.Loss(); l != 0 {
		t.Fatalf("abort-only loss %v, want 0", l)
	}
	// Zero starts with waste (pure owner/partner step) still yields a
	// well-defined high loss instead of dividing by zero.
	s = Signals{Conflicts: 100}
	if l := s.Loss(); l <= 0.9 || l > 1 {
		t.Fatalf("ownerless loss %v", l)
	}
}
