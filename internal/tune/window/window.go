// Package window implements the adaptive operation-pipelining window
// controller for the parallel edge-switch engine.
//
// The engine pipelines up to "window" own operations per rank so the
// message plane gets several records per destination batch (see
// internal/core/sendbuf.go). The right window size is workload-dependent:
// a large low-conflict partition wants a deep window (fuller batches,
// fewer blocking flushes), while a small or skewed partition wants a
// shallow one — every in-flight first edge is out of the partition and
// inflates the conflict probability of every concurrent reservation, so
// an oversized window converts throughput into restarts (the §4 restart
// path's loss). The fixed 64 ∧ |E_local|/8 compromise is replaced here by
// per-rank AIMD feedback, the same shape as TCP congestion control:
//
//   - additive increase: after a calm step (low observed loss) whose
//     window was actually utilized, grow by Additive;
//   - multiplicative decrease: after a lossy step, shrink by Backoff.
//
// "Loss" is the fraction of this rank's protocol work that was wasted on
// congestion the windows caused: owner-side transient reservation
// conflicts — collisions with in-hand edges and existing reservations,
// whose population is exactly the sum of everyone's in-flight windows —
// relative to the operations started. Own-operation aborts and
// structural reservation failures are deliberately NOT part of the
// signal: most rejections on small or skewed graphs are structural — the
// drawn pair forms a loop or parallel edge, or the replacement edge
// already exists, which happens at window 1 just as at window 64 — and
// steering on them collapses the window to the floor without reducing
// the rejections, trading away all batching for nothing (observed: 3x
// the transport sends at equal restart counts). The engine classifies
// the two at the collision site (core's conflicts check) and reports
// only the transient kind in Signals.Conflicts.
// The controller is deliberately memoryless
// beyond its current window — the partner-selection probabilities are
// refreshed every step (§4.5), so each step is a fresh sample of the
// conflict landscape.
//
// The window is clamped to [Floor, Ceiling] and additionally to
// |E_local|/4 each step (a rank must never hold more than a quarter of
// its current partition in flight). With Ranks == 1 the controller pins
// the window to exactly 1 regardless of signals: the single-rank engine
// must realize the sequential Markov chain edge for edge, and a window
// would draw first edges without replacement (see the p=1 equivalence
// guard in internal/core).
package window

// Defaults for Config fields left zero.
const (
	// DefaultStart matches the fixed pipelining window the controller
	// replaces, so an adaptive run never starts worse than the fixed one.
	DefaultStart = 64
	// DefaultAdditive is the per-calm-step additive increase.
	DefaultAdditive = 8
	// DefaultBackoff is the multiplicative decrease applied after a lossy
	// step (halving, the classic AIMD choice).
	DefaultBackoff = 0.5
	// DefaultLossHigh is the wasted-work fraction above which the window
	// shrinks.
	DefaultLossHigh = 0.15
	// DefaultLossLow is the wasted-work fraction below which the window
	// may grow; between the thresholds the window holds (hysteresis, so
	// borderline steps do not oscillate).
	DefaultLossLow = 0.05
	// DefaultUtilization is the fraction of the current window the
	// in-flight high-water mark must have reached for the window to grow:
	// growing a window the step never filled adds conflict exposure
	// without adding throughput.
	DefaultUtilization = 0.75
)

// Config parameterises a Controller. The zero value selects the
// documented defaults; Ranks must be set.
type Config struct {
	// Ranks is the communicator size. With Ranks == 1 the controller is
	// pinned: Window always returns 1.
	Ranks int
	// Floor and Ceiling bound the window inclusively. Floor defaults to
	// 1 (and is clamped up to 1); Ceiling defaults to no static bound —
	// the per-step |E_local|/4 clamp still applies.
	Floor, Ceiling int
	// Start is the initial window, clamped into [Floor, Ceiling].
	// Defaults to DefaultStart.
	Start int
	// Additive is the additive-increase step. Defaults to DefaultAdditive.
	Additive int
	// Backoff is the multiplicative-decrease factor in (0, 1). Defaults
	// to DefaultBackoff.
	Backoff float64
	// LossHigh and LossLow are the shrink/grow thresholds on the wasted-
	// work fraction. Default DefaultLossHigh/DefaultLossLow.
	LossHigh, LossLow float64
	// Utilization is the minimum InFlightHWM/window fraction required to
	// grow. Defaults to DefaultUtilization.
	Utilization float64
}

// Signals is one step's per-rank feedback, as accumulated by the
// engine's stepStats (internal/core).
type Signals struct {
	// Started counts own operations begun this step (including ones that
	// later aborted and were retried — each retry is a fresh start).
	Started int64
	// Committed counts own operations that completed.
	Committed int64
	// Aborts counts own operations that aborted and restarted (the
	// engine's per-step restart count).
	Aborts int64
	// Conflicts counts owner-side *transient* reservation conflicts this
	// rank reported to partners (its partition was the collision site and
	// the collision was with an in-hand edge or a reservation — the
	// window-induced kind). Structural rejections are excluded.
	Conflicts int64
	// ReserveFails counts failed reservations this rank observed while
	// orchestrating operations for peers. The owner's reply does not say
	// whether the failure was transient, so this is a diagnostic, not a
	// loss input.
	ReserveFails int64
	// Flushes counts message-plane flushes forced by the step loop
	// blocking — a high count relative to Started means batches are
	// going out nearly empty and the window has room to grow.
	Flushes int64
	// InFlightHWM is the high-water mark of concurrently in-flight own
	// operations during the step.
	InFlightHWM int
	// LocalEdges is the rank's edge count at the step boundary; the next
	// window never exceeds LocalEdges/4.
	LocalEdges int64
}

// Loss is the wasted-work fraction the thresholds compare against:
// Conflicts / (Started + Conflicts), 0 when the step did nothing.
// Aborts and ReserveFails are excluded — see the package comment: they
// are dominated by structurally invalid switches the window size cannot
// influence, and feeding them back collapses the window for no gain.
func (s Signals) Loss() float64 {
	waste := s.Conflicts
	if waste <= 0 {
		return 0
	}
	return float64(waste) / float64(waste+max64(s.Started, 1))
}

// Controller is one rank's AIMD window state. It is not safe for
// concurrent use; each rank engine owns exactly one.
type Controller struct {
	cfg Config
	win int
	// observed diagnostics
	steps   int64
	grows   int64
	shrinks int64
	maxWin  int
}

// New builds a controller, applying defaults and clamping the starting
// window into bounds.
func New(cfg Config) *Controller {
	if cfg.Floor < 1 {
		cfg.Floor = 1
	}
	if cfg.Start <= 0 {
		cfg.Start = DefaultStart
	}
	if cfg.Additive <= 0 {
		cfg.Additive = DefaultAdditive
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.LossHigh <= 0 {
		cfg.LossHigh = DefaultLossHigh
	}
	if cfg.LossLow <= 0 || cfg.LossLow >= cfg.LossHigh {
		cfg.LossLow = min(DefaultLossLow, cfg.LossHigh/2)
	}
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		cfg.Utilization = DefaultUtilization
	}
	if cfg.Ranks == 1 {
		cfg.Floor, cfg.Ceiling, cfg.Start = 1, 1, 1
	}
	c := &Controller{cfg: cfg, win: clamp(cfg.Start, cfg.Floor, cfg.Ceiling)}
	c.maxWin = c.win
	return c
}

// Window returns the current window (always exactly 1 when Ranks == 1).
func (c *Controller) Window() int { return c.win }

// Max returns the largest window the controller has ever held (for
// diagnostics and the p=1 pin assertion).
func (c *Controller) Max() int { return c.maxWin }

// Observe feeds one completed step's signals and returns the window for
// the next step.
func (c *Controller) Observe(s Signals) int {
	c.steps++
	if c.cfg.Ranks == 1 {
		return 1 // pinned: sequential-chain equivalence
	}
	loss := s.Loss()
	switch {
	case loss > c.cfg.LossHigh:
		// Multiplicative decrease: the step wasted a meaningful fraction
		// of its work on conflicts its own in-flight edges helped cause.
		w := int(float64(c.win) * c.cfg.Backoff)
		if w < c.win {
			c.shrinks++
		}
		c.win = w
	case loss < c.cfg.LossLow && s.InFlightHWM >= int(float64(c.win)*c.cfg.Utilization):
		// Additive increase, but only when the window was actually
		// filled: an underused window gains nothing from growing.
		c.win += c.cfg.Additive
		c.grows++
	}
	c.win = clamp(c.win, c.cfg.Floor, c.cfg.Ceiling)
	// A rank must never hold more than a quarter of its partition in
	// flight, whatever the feedback says.
	if lim := int(s.LocalEdges / 4); lim >= 1 && c.win > lim {
		c.win = lim
	} else if lim < 1 {
		c.win = c.cfg.Floor
	}
	if c.win > c.maxWin {
		c.maxWin = c.win
	}
	return c.win
}

// Stats reports controller activity for diagnostics.
type Stats struct {
	Steps, Grows, Shrinks int64
	Window, MaxWindow     int
}

// Stats returns the controller's activity counters.
func (c *Controller) Stats() Stats {
	return Stats{Steps: c.steps, Grows: c.grows, Shrinks: c.shrinks, Window: c.win, MaxWindow: c.maxWin}
}

// clamp bounds w into [floor, ceiling]; ceiling <= 0 means unbounded.
func clamp(w, floor, ceiling int) int {
	if ceiling > 0 && w > ceiling {
		w = ceiling
	}
	if w < floor {
		w = floor
	}
	return w
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
