// Package tune operationalizes the paper's §4.7 methodology for
// determining a suitable step size: probe increasing step sizes with the
// real engines and keep the largest one whose resultant-graph error rate
// against the sequential process stays at the sequential noise floor.
package tune

import (
	"fmt"

	"edgeswitch/internal/core"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/metrics"
	"edgeswitch/internal/rng"
)

// Options configures StepSize.
type Options struct {
	// Ranks is the processor count of the production run being tuned.
	Ranks int
	// Scheme is the partitioning scheme (the HP schemes rarely need
	// steps at all — Table 3 — so tuning matters mostly for CP).
	Scheme core.Scheme
	// Seed drives the probe runs.
	Seed uint64
	// Blocks is the error-rate partition count r (default 20).
	Blocks int
	// Reps averages each probe over this many runs (default 3).
	Reps int
	// Tolerance accepts a step size whose parallel-vs-sequential error
	// rate is within (1+Tolerance)× the sequential-vs-sequential
	// baseline (default 0.15, mirroring the paper's "roughly same as"
	// criterion in §4.7).
	Tolerance float64
	// Candidates lists step sizes to probe in increasing order; nil
	// derives {t/1000, t/300, t/100, t/30, t/10, t/3, t}.
	Candidates []int64
	// Algorithm names the randomization algorithm of the production run.
	// Step-size tuning is an edge-switch concept (stale selection
	// probabilities within a step); curveball steps are single global
	// rounds with nothing to tune, so StepSize rejects it.
	Algorithm core.Algorithm
}

// Result reports the tuning outcome.
type Result struct {
	// StepSize is the largest candidate whose error rate stayed within
	// tolerance of the baseline (the paper's "suitable step-size":
	// maximal speedup at minimal error, §4.7).
	StepSize int64
	// BaselineER is the sequential-vs-sequential error rate.
	BaselineER float64
	// CandidateER maps each probed step size to its mean
	// parallel-vs-sequential error rate.
	CandidateER map[int64]float64
}

// StepSize reproduces the paper's §4.7 procedure for choosing the step
// size s: probe increasing candidates and keep the largest one whose
// resultant-graph error rate against the sequential process stays at the
// sequential noise floor. Larger s means fewer synchronization rounds
// (more speed); too large lets the per-partition selection probabilities
// go stale (more error) — Figs. 8–11.
//
// The probes run the real engines on g, so tune on a representative
// subsample if g is huge; the suitable step size transfers as a fraction
// of t for a fixed graph family.
func StepSize(g *graph.Graph, t int64, opt Options) (*Result, error) {
	if opt.Algorithm != "" && opt.Algorithm != core.AlgoEdgeSwitch {
		return nil, fmt.Errorf("tune: step-size tuning is an edge-switch concept; %q steps are single global rounds", opt.Algorithm)
	}
	if opt.Ranks < 1 {
		return nil, fmt.Errorf("tune: Ranks must be >= 1")
	}
	if t < 1 {
		return nil, fmt.Errorf("tune: need a positive operation count")
	}
	if opt.Blocks <= 0 {
		opt.Blocks = 20
	}
	if opt.Reps <= 0 {
		opt.Reps = 3
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 0.15
	}
	candidates := opt.Candidates
	if candidates == nil {
		for _, f := range []int64{1000, 300, 100, 30, 10, 3, 1} {
			s := t / f
			if s < 1 {
				s = 1
			}
			if len(candidates) == 0 || candidates[len(candidates)-1] != s {
				candidates = append(candidates, s)
			}
		}
	}

	seqRun := func(seed uint64) (*graph.Graph, error) {
		r := rng.Split(seed, 77)
		work := g.Clone(r)
		if _, err := core.Sequential(work, t, r); err != nil {
			return nil, err
		}
		return work, nil
	}

	// Baseline: ER between independent sequential runs.
	var baseline float64
	for rep := 0; rep < opt.Reps; rep++ {
		a, err := seqRun(opt.Seed + uint64(rep)*13)
		if err != nil {
			return nil, err
		}
		b, err := seqRun(opt.Seed + uint64(rep)*13 + 5)
		if err != nil {
			return nil, err
		}
		er, err := metrics.ErrorRate(a, b, opt.Blocks)
		if err != nil {
			return nil, err
		}
		baseline += er
	}
	baseline /= float64(opt.Reps)

	res := &Result{
		StepSize:    candidates[0],
		BaselineER:  baseline,
		CandidateER: map[int64]float64{},
	}
	for _, s := range candidates {
		var er float64
		for rep := 0; rep < opt.Reps; rep++ {
			seq, err := seqRun(opt.Seed + uint64(rep)*29)
			if err != nil {
				return nil, err
			}
			pres, err := core.Parallel(g, t, core.Config{
				Ranks:    opt.Ranks,
				Scheme:   opt.Scheme,
				StepSize: s,
				Seed:     opt.Seed + uint64(rep)*31,
			})
			if err != nil {
				return nil, err
			}
			e, err := metrics.ErrorRate(seq, pres.Graph, opt.Blocks)
			if err != nil {
				return nil, err
			}
			er += e
		}
		er /= float64(opt.Reps)
		res.CandidateER[s] = er
		if er <= baseline*(1+opt.Tolerance) {
			res.StepSize = s
		}
	}
	return res, nil
}
