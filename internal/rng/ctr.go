package rng

import "math/bits"

// Counter-based random access. A Stream is the stateless counterpart of
// RNG: instead of advancing hidden state, draw i of a stream is a pure
// keyed hash of the counter i, so any party holding (seed, id) can
// recompute the random choice made "at index i" without having observed
// the draws before it. This is the primitive behind communication-free
// parallel graph generation (Sanders & Schulz, arXiv:1602.07106): where
// a sequential generator would read a previously generated value, a
// parallel rank recomputes it from the counter.
//
// The construction is SplitMix/Philox-style: two derived 64-bit keys and
// two rounds of the SplitMix64 finalizer over the counter, with a key
// injection between the rounds. Each round is a bijection of the 64-bit
// counter space, so distinct counters never collide into identical
// intermediate states; the tests pin golden vectors and check
// uniformity, bit balance and avalanche between adjacent counters.
//
// Streams with distinct ids derived from the same seed are independent
// for all practical purposes — use one stream per purpose (one for edge
// targets, one for retries, ...) so a consumer never reuses a counter.

// Stream is a stateless counter-based RNG keyed by (seed, id). The zero
// value is a valid stream (that of seed 0, id 0); Stream is a value
// type, safe to copy and to share between goroutines.
type Stream struct {
	k0, k1 uint64
}

// NewStream derives the stream with the given id from seed. The same
// (seed, id) always yields the same stream; distinct ids yield
// decorrelated streams.
func NewStream(seed, id uint64) Stream {
	sm := seed ^ 0x6a09e667f3bcc909 // frac(sqrt 2), decouples from Split's key schedule
	k0 := splitMix64(&sm)
	sm ^= id * 0x9e3779b97f4a7c15
	k1 := splitMix64(&sm)
	return Stream{k0: k0, k1: k1}
}

// At returns draw i of the stream: 64 uniform bits, a pure function of
// (seed, id, i).
func (s Stream) At(i uint64) uint64 {
	z := i + s.k0
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= s.k1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64nAt returns draw i reduced to [0, n) by the fixed-point multiply
// hi(At(i) · n). Unlike RNG.Int64n there is no rejection loop — a
// counter must map to exactly one value — so the reduction carries a
// bias below n/2^64, immaterial for every n this library samples
// (n < 2^40 keeps the bias under 2^-24). It panics if n == 0.
func (s Stream) Uint64nAt(i, n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64nAt called with n == 0")
	}
	hi, _ := bits.Mul64(s.At(i), n)
	return hi
}

// Float64At returns draw i as a uniform float64 in [0, 1) with 53 bits
// of precision.
func (s Stream) Float64At(i uint64) float64 {
	return float64(s.At(i)>>11) / (1 << 53)
}
