package rng

import (
	"math"
	"math/bits"
	"testing"
)

// TestStreamGolden pins the exact output of Stream.At. The counter RNG
// is a wire-format-grade contract: pergen graphs are deterministic
// functions of these values, so a change here silently regenerates
// every benchmark input. Update only deliberately, together with every
// golden graph test.
func TestStreamGolden(t *testing.T) {
	cases := []struct {
		seed, id uint64
		want     [5]uint64
	}{
		{seed: 0x0, id: 0, want: [5]uint64{0x8c042b7a30549494, 0x71963f2c28136e74, 0x970961d9c414e734, 0xd11d0dd3c257a810, 0x1191ea72e335f167}},
		{seed: 0x1, id: 0, want: [5]uint64{0xadb499d240e43a24, 0x36f56fe859b4a431, 0x303f0f46ccfc202f, 0xf5403d8f9338a0c6, 0xcf41085b6e4bcbbf}},
		{seed: 0x1, id: 1, want: [5]uint64{0x23c494f078cc069, 0x459e3cfde1a793e7, 0x67cda74ebccc6e88, 0x2f18d10a4f2c682, 0xec77316f01506726}},
		{seed: 0x2a, id: 7, want: [5]uint64{0xe5716aaf4c3b6877, 0x71f2d4cbbfe0e226, 0xfdb264cd4e62d921, 0x63c58bbc1241ce8f, 0x4cf93944502f8f04}},
		{seed: 0xdeadbeef, id: 3, want: [5]uint64{0xeb144eef22182c66, 0xdfd85e7b8d568303, 0xfa1c98501bd6aea0, 0xff5bce434ed6fd46, 0xad171eada8f9bdb0}},
	}
	for _, c := range cases {
		s := NewStream(c.seed, c.id)
		for i, want := range c.want {
			if got := s.At(uint64(i)); got != want {
				t.Errorf("NewStream(%#x, %d).At(%d) = %#x, want %#x", c.seed, c.id, i, got, want)
			}
		}
	}
}

func TestStreamStateless(t *testing.T) {
	s := NewStream(99, 4)
	// Random access in any order must agree with itself.
	forward := make([]uint64, 64)
	for i := range forward {
		forward[i] = s.At(uint64(i))
	}
	for i := 63; i >= 0; i-- {
		if s.At(uint64(i)) != forward[i] {
			t.Fatalf("At(%d) changed between calls — Stream is not stateless", i)
		}
	}
	// A copy is the same stream.
	cp := s
	if cp.At(17) != forward[17] {
		t.Fatal("copied Stream diverged")
	}
}

func TestStreamIdsAndSeedsDecorrelate(t *testing.T) {
	base := NewStream(7, 0)
	for _, other := range []Stream{NewStream(7, 1), NewStream(8, 0), NewStream(6, 0)} {
		same := 0
		for i := uint64(0); i < 1000; i++ {
			if base.At(i) == other.At(i) {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("streams shared %d of 1000 draws", same)
		}
	}
}

// TestStreamUniformity is the same chi-square battery RNG.Int64n gets,
// over the counter dimension.
func TestStreamUniformity(t *testing.T) {
	s := NewStream(123, 9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := uint64(0); i < draws; i++ {
		counts[s.Uint64nAt(i, n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9% critical value ~27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square %f too large; counts=%v", chi2, counts)
	}
}

func TestStreamBitBalance(t *testing.T) {
	s := NewStream(55, 2)
	const draws = 100000
	ones := 0
	for i := uint64(0); i < draws; i++ {
		ones += bits.OnesCount64(s.At(i))
	}
	mean := float64(ones) / draws
	if math.Abs(mean-32) > 0.1 {
		t.Fatalf("mean population count %f far from 32", mean)
	}
}

// TestStreamAvalanche checks that flipping one bit of the counter flips
// about half the output bits — the property that makes sequential
// counters (the common access pattern) behave as independent draws.
func TestStreamAvalanche(t *testing.T) {
	s := NewStream(3141, 5)
	const trials = 2000
	total := 0
	for i := uint64(0); i < trials; i++ {
		base := s.At(i)
		for b := 0; b < 64; b += 7 {
			total += bits.OnesCount64(base ^ s.At(i^(1<<b)))
		}
	}
	flips := float64(total) / (trials * 10) // 10 bit positions per trial
	if flips < 30 || flips > 34 {
		t.Fatalf("avalanche %f output bits per counter-bit flip, want ~32", flips)
	}
}

func TestStreamFloat64AtRange(t *testing.T) {
	s := NewStream(77, 0)
	sum := 0.0
	const draws = 200000
	for i := uint64(0); i < draws; i++ {
		f := s.Float64At(i)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64At out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64At mean %f far from 0.5", mean)
	}
}

func TestStreamUint64nAtBounds(t *testing.T) {
	s := NewStream(11, 1)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := uint64(0); i < 200; i++ {
			if v := s.Uint64nAt(i, n); v >= n {
				t.Fatalf("Uint64nAt(%d, %d) = %d out of range", i, n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	s.Uint64nAt(0, 0)
}

func BenchmarkStreamAt(b *testing.B) {
	s := NewStream(1, 0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.At(uint64(i))
	}
	_ = sink
}
