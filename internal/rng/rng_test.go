package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	c := Split(7, 0)
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("Split not deterministic at draw %d", i)
		}
		if av == bv {
			t.Fatalf("Split streams 0 and 1 collided at draw %d", i)
		}
	}
}

func TestInt64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []int64{1, 2, 3, 7, 16, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int64n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Int64n(0)
}

func TestInt64nUniformity(t *testing.T) {
	// Chi-square test over 10 buckets.
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Int64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9% critical value ~27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square %f too large; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(13)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	for _, q := range []float64{0.1, 0.3, 0.5, 0.9} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			v := r.Geometric(q)
			if v < 1 {
				t.Fatalf("Geometric(%f) = %d < 1", q, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		want := 1 / q
		if math.Abs(mean-want)/want > 0.05 {
			t.Fatalf("Geometric(%f) mean %f, want ~%f", q, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(19)
	if v := r.Geometric(1); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %f too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r.Seed(seed)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(31)
	calls := 0
	r.Shuffle(10, func(i, j int) { calls++ })
	if calls != 9 {
		t.Fatalf("Shuffle(10) performed %d swaps, want 9", calls)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(37)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < n/2-1000 || trues > n/2+1000 {
		t.Fatalf("Bool heavily biased: %d/%d true", trues, n)
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %f, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkInt64n(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Int64n(1000003)
	}
	_ = sink
}

// TestStateRoundTrip: capturing State and replaying it through SetState
// on a fresh generator reproduces the exact output stream — the contract
// checkpoint restore depends on.
func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 57; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 20)
	for i := range want {
		want[i] = r.Uint64()
	}
	clone := New(1)
	if err := clone.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := clone.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: %d, want %d", i, got, w)
		}
	}
}

// TestSetStateRejectsZero: the all-zero state is a fixed point of
// xoshiro (the generator would emit zeros forever), so SetState must
// refuse it rather than install a dead generator.
func TestSetStateRejectsZero(t *testing.T) {
	r := New(3)
	before := r.State()
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
	if r.State() != before {
		t.Fatal("rejected SetState still clobbered the generator")
	}
}
