// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used throughout the edge-switching library.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that any 64-bit seed yields a well-mixed initial state.
// Independent per-rank streams are derived with Split, which uses the
// SplitMix64 sequence of the parent seed; streams derived from distinct
// split indices are statistically independent for all practical purposes.
//
// The package intentionally avoids math/rand so that results are
// reproducible across Go releases and so that every component of the
// library can be driven from a single 64-bit experiment seed.
package rng

import (
	"errors"
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random number generator.
// It is NOT safe for concurrent use; each goroutine (rank) must own its
// own RNG, typically derived via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state deterministically from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// xoshiro requires a state that is not all zero; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Split derives an independent generator for stream index i.
// Splitting the same seed with the same index always yields the same
// stream, which gives per-rank determinism in parallel runs.
func Split(seed uint64, i int) *RNG {
	sm := seed ^ 0x5851f42d4c957f2d
	for j := 0; j <= i; j++ {
		splitMix64(&sm)
	}
	return New(splitMix64(&sm) ^ uint64(i)*0xd1342543de82ef95)
}

// State returns the generator's four state words, for checkpointing.
// Restoring them with SetState resumes the stream exactly where it was:
// the next Uint64 after a SetState(State()) round trip is the same value
// the original generator would have produced.
func (r *RNG) State() [4]uint64 { return [4]uint64{r.s0, r.s1, r.s2, r.s3} }

// SetState overwrites the generator state with previously captured state
// words (see State). An all-zero state is invalid for xoshiro and is
// rejected.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("rng: SetState with all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns 32 uniformly distributed random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative int64 with 63 uniform bits.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int64n returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with n <= 0")
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int64(r.Uint64() & (un - 1))
	}
	// Lemire's method with rejection to remove bias.
	threshold := (-un) % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int64(hi)
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int64n(int64(n))) }

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero.
// Useful for inverse-transform sampling where log(u) must be finite.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns a variate distributed Geometric(q): the number of
// Bernoulli(q) trials up to and including the first success (support 1, 2,
// ...). It panics unless 0 < q <= 1.
func (r *RNG) Geometric(q float64) int64 {
	if q <= 0 || q > 1 {
		panic("rng: Geometric requires 0 < q <= 1")
	}
	if q == 1 {
		return 1
	}
	// Inverse transform: ceil(ln(u) / ln(1-q)).
	u := r.Float64Open()
	return int64(math.Ceil(math.Log(u) / math.Log1p(-q)))
}

// Exp returns an exponential variate with rate 1.
func (r *RNG) Exp() float64 { return -math.Log(r.Float64Open()) }

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
