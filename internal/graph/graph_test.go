package graph

import (
	"bytes"
	"math"
	"testing"

	"edgeswitch/internal/rng"
)

// path5 builds the path 0-1-2-3-4.
func path5(t *testing.T) *Graph {
	t.Helper()
	r := rng.New(1)
	g, err := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := path5(t)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(Edge{1, 0}) || !g.HasEdge(Edge{0, 1}) {
		t.Fatal("HasEdge should normalize")
	}
	if g.HasEdge(Edge{0, 2}) || g.HasEdge(Edge{4, 4}) {
		t.Fatal("phantom edge")
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsLoop(t *testing.T) {
	r := rng.New(1)
	if _, err := FromEdges(3, []Edge{{1, 1}}, r); err == nil {
		t.Fatal("loop accepted")
	}
}

func TestFromEdgesRejectsDuplicate(t *testing.T) {
	r := rng.New(1)
	if _, err := FromEdges(3, []Edge{{0, 1}, {1, 0}}, r); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	r := rng.New(1)
	if _, err := FromEdges(3, []Edge{{0, 3}}, r); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestAddRemove(t *testing.T) {
	r := rng.New(2)
	g := New(4)
	if !g.AddEdge(Edge{2, 0}, r) {
		t.Fatal("add failed")
	}
	if g.AddEdge(Edge{0, 2}, r) {
		t.Fatal("duplicate add succeeded")
	}
	if g.M() != 1 || g.Originals() != 1 {
		t.Fatalf("m=%d originals=%d", g.M(), g.Originals())
	}
	g.AddModified(Edge{1, 3}, r)
	if g.Originals() != 1 || g.M() != 2 {
		t.Fatal("modified edge counted as original")
	}
	found, orig := g.RemoveEdge(Edge{0, 2})
	if !found || !orig {
		t.Fatalf("remove = (%v,%v)", found, orig)
	}
	found, orig = g.RemoveEdge(Edge{3, 1})
	if !found || orig {
		t.Fatalf("remove modified = (%v,%v)", found, orig)
	}
	if g.M() != 0 || g.Originals() != 0 {
		t.Fatal("counts wrong after removals")
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	g := path5(t)
	want := []int{1, 2, 2, 2, 1}
	got := g.Degrees()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Degrees()[%d] = %d, want %d", i, got[i], want[i])
		}
		if g.Degree(Vertex(i)) != want[i] {
			t.Fatalf("Degree(%d) = %d, want %d", i, g.Degree(Vertex(i)), want[i])
		}
	}
	if g.ReducedDegree(0) != 1 || g.ReducedDegree(4) != 0 {
		t.Fatal("reduced degrees wrong")
	}
}

func TestNeighbors(t *testing.T) {
	g := path5(t)
	nb := g.Neighbors(2)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nb)
	}
}

func TestFullAdjacency(t *testing.T) {
	g := path5(t)
	full := g.FullAdjacency()
	if len(full[0]) != 1 || full[0][0] != 1 {
		t.Fatalf("full[0] = %v", full[0])
	}
	if len(full[2]) != 2 || full[2][0] != 1 || full[2][1] != 3 {
		t.Fatalf("full[2] = %v", full[2])
	}
}

func TestEdgesSortedNormalized(t *testing.T) {
	r := rng.New(3)
	g, err := FromEdges(4, []Edge{{3, 1}, {2, 0}, {1, 0}}, r)
	if err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("edges %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

// TestRandomEdgeUniform draws many edges from a small graph and checks the
// empirical distribution is uniform (chi-square).
func TestRandomEdgeUniform(t *testing.T) {
	r := rng.New(4)
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}, {1, 4}, {3, 4}}
	g, err := FromEdges(5, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Edge]int{}
	const draws = 70000
	for i := 0; i < draws; i++ {
		counts[g.RandomEdge(r)]++
	}
	expected := float64(draws) / float64(len(edges))
	chi2 := 0.0
	for _, e := range edges {
		d := float64(counts[e.Norm()]) - expected
		chi2 += d * d / expected
	}
	// 6 dof, 99.9% critical value ~22.46.
	if chi2 > 22.46 {
		t.Fatalf("RandomEdge not uniform: chi2=%f counts=%v", chi2, counts)
	}
}

// TestRandomEdgeAfterMutation ensures sampling stays uniform over the
// *current* edge set after inserts and deletes.
func TestRandomEdgeAfterMutation(t *testing.T) {
	r := rng.New(5)
	g, err := FromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}}, r)
	if err != nil {
		t.Fatal(err)
	}
	g.RemoveEdge(Edge{1, 2})
	g.AddModified(Edge{4, 5}, r)
	g.AddModified(Edge{0, 5}, r)
	present := map[Edge]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true, {0, 5}: true}
	counts := map[Edge]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		e := g.RandomEdge(r)
		if !present[e] {
			t.Fatalf("sampled non-existent edge %v", e)
		}
		counts[e]++
	}
	expected := float64(draws) / 4
	for e, c := range counts {
		if math.Abs(float64(c)-expected)/expected > 0.1 {
			t.Fatalf("edge %v count %d deviates from %f", e, c, expected)
		}
	}
}

func TestRandomEdgePanicsEmpty(t *testing.T) {
	r := rng.New(6)
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.RandomEdge(r)
}

func TestOriginalsTracking(t *testing.T) {
	g := path5(t)
	r := rng.New(7)
	if g.Originals() != 4 {
		t.Fatalf("originals %d", g.Originals())
	}
	g.RemoveEdge(Edge{0, 1})
	g.AddModified(Edge{0, 1}, r) // same endpoints, now modified
	if g.Originals() != 3 {
		t.Fatalf("originals %d after replace, want 3", g.Originals())
	}
}

func TestClonePreservesEverything(t *testing.T) {
	r := rng.New(8)
	g := path5(t)
	g.RemoveEdge(Edge{1, 2})
	g.AddModified(Edge{0, 4}, r)
	c := g.Clone(r)
	if c.N() != g.N() || c.M() != g.M() || c.Originals() != g.Originals() {
		t.Fatal("clone shape mismatch")
	}
	ge, ce := g.Edges(), c.Edges()
	for i := range ge {
		if ge[i] != ce[i] {
			t.Fatal("clone edges mismatch")
		}
	}
	// Mutating the clone must not affect the original.
	c.RemoveEdge(Edge{0, 4})
	if !g.HasEdge(Edge{0, 4}) {
		t.Fatal("clone shares state with original")
	}
}

func TestEdgeNorm(t *testing.T) {
	if (Edge{3, 1}).Norm() != (Edge{1, 3}) {
		t.Fatal("Norm failed")
	}
	if (Edge{1, 3}).Norm() != (Edge{1, 3}) {
		t.Fatal("Norm changed ordered edge")
	}
	if !(Edge{2, 2}).IsLoop() || (Edge{1, 2}).IsLoop() {
		t.Fatal("IsLoop wrong")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(9)
	g := path5(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, r)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip shape: n=%d m=%d", g2.N(), g2.M())
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("round trip edges differ")
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	r := rng.New(10)
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n2 1\n"), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("inferred n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	r := rng.New(11)
	for _, in := range []string{"0\n", "a b\n", "1 x\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(in), r); err == nil {
			t.Fatalf("malformed input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(12)
	g := path5(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf, r)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary round trip shape mismatch")
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("binary round trip edges differ")
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	r := rng.New(13)
	if _, err := ReadBinary(bytes.NewBufferString("not a graph"), r); err == nil {
		t.Fatal("garbage accepted")
	}
}

func BenchmarkRandomEdge(b *testing.B) {
	r := rng.New(14)
	const n = 100000
	g := New(n)
	for i := 0; i < 4*n; i++ {
		e := Edge{Vertex(r.Intn(n)), Vertex(r.Intn(n))}
		if !e.IsLoop() {
			g.AddEdge(e, r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RandomEdge(r)
	}
}
