package graph

// AdjSet is an order-statistic balanced binary search tree (a treap)
// holding the reduced adjacency list of one vertex. It supports the three
// operations the edge-switch algorithms need, all in O(log d) expected
// time: membership test (parallel-edge detection), insert/delete (applying
// a switch), and k-th smallest selection (uniform random neighbour pick).
//
// Each entry carries an "original" flag used for visit-rate accounting:
// edges present in the input graph are original; edges created by a switch
// are modified (§3.1 of the paper).
type AdjSet struct {
	root *treapNode
	// origs counts entries whose original flag is set, maintained by
	// Insert/Delete so Graph.Reindex can rebuild the graph-level original
	// counter in O(1) per vertex after a sharded bulk build.
	origs int32
}

type treapNode struct {
	left, right *treapNode
	key         Vertex
	prio        uint32
	size        int32
	original    bool
}

// NodeArena is a free list of treap nodes threaded through their left
// pointers. The parallel engine churns one delete+insert pair per edge
// switch; without reuse every Insert allocates a node and the treap
// dominates the engine's allocation profile. An arena is owned by a
// single goroutine (one per rank) and shared across all of that rank's
// AdjSets, so deletes in one vertex's set feed inserts in another's.
// The zero value is ready to use, and a nil *NodeArena degrades to
// plain allocation, which is what the arena-less AdjSet methods pass.
//
//es:arena
type NodeArena struct {
	free *treapNode
	slab []treapNode
	// spine is BuildSorted's scratch stack (the rightmost spine of the
	// tree under construction), kept here so bulk loads reuse one
	// allocation across every AdjSet built from the same arena.
	spine []*treapNode
}

// arenaSlab is the nodes-per-allocation granularity of a free-list miss.
// Bulk loads (the distributed-generation bootstrap inserts every owned
// edge into an initially empty arena) would otherwise pay one heap
// allocation and one GC object per edge; a slab turns that into one
// allocation per 1024 nodes with better locality.
const arenaSlab = 1024

func (a *NodeArena) get(v Vertex, original bool, prio uint32) *treapNode {
	if a == nil {
		return &treapNode{key: v, prio: prio, size: 1, original: original}
	}
	if n := a.free; n != nil {
		a.free = n.left
		*n = treapNode{key: v, prio: prio, size: 1, original: original}
		return n
	}
	if len(a.slab) == 0 {
		// The free-list miss is the slow path the arena exists to avoid;
		// the //es:arena marker on the type waives it.
		a.slab = make([]treapNode, arenaSlab)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	*n = treapNode{key: v, prio: prio, size: 1, original: original}
	return n
}

func (a *NodeArena) put(n *treapNode) {
	if a == nil {
		return
	}
	*n = treapNode{left: a.free}
	a.free = n
}

func size(n *treapNode) int32 {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) update() { n.size = 1 + size(n.left) + size(n.right) }

// Len reports the number of entries in the set.
func (s *AdjSet) Len() int { return int(size(s.root)) }

// Originals reports how many entries still carry the original flag.
func (s *AdjSet) Originals() int { return int(s.origs) }

// Contains reports whether v is in the set.
func (s *AdjSet) Contains(v Vertex) bool {
	n := s.root
	for n != nil {
		switch {
		case v < n.key:
			n = n.left
		case v > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Original reports whether v is present and still flagged as an original
// (unswitched) edge endpoint.
func (s *AdjSet) Original(v Vertex) bool {
	n := s.root
	for n != nil {
		switch {
		case v < n.key:
			n = n.left
		case v > n.key:
			n = n.right
		default:
			return n.original
		}
	}
	return false
}

// Kth returns the k-th smallest entry (0-based) and its original flag.
// It panics if k is out of range; callers sample k uniformly in [0, Len()).
func (s *AdjSet) Kth(k int) (Vertex, bool) {
	n := s.root
	ki := int32(k)
	for n != nil {
		ls := size(n.left)
		switch {
		case ki < ls:
			n = n.left
		case ki > ls:
			ki -= ls + 1
			n = n.right
		default:
			return n.key, n.original
		}
	}
	panic("graph: AdjSet.Kth index out of range")
}

// Insert adds v with the given original flag and treap priority prio
// (callers pass fresh random bits). It reports whether the value was newly
// inserted (false means it was already present; the flag is left unchanged
// in that case, since a duplicate insert indicates a parallel edge the
// caller should have rejected).
func (s *AdjSet) Insert(v Vertex, original bool, prio uint32) bool {
	return s.InsertArena(nil, v, original, prio)
}

// InsertArena is Insert drawing the node from a (the hot path of the
// parallel engine); a nil arena allocates. The insert is a single
// descent: the classic rotation treap insert walks down comparing keys
// (discovering a duplicate en route, where the split/merge formulation
// needs a separate Contains pre-pass), attaches the node at the leaf and
// rotates it up to its priority. Halving the traversals matters both in
// the engine's per-switch path and in the bulk partition loads of the
// distributed-generation bootstrap.
func (s *AdjSet) InsertArena(a *NodeArena, v Vertex, original bool, prio uint32) bool {
	nn := a.get(v, original, prio)
	root, inserted := insertPrio(s.root, nn)
	if !inserted {
		a.put(nn)
		return false
	}
	s.root = root
	if original {
		s.origs++
	}
	return true
}

// insertPrio inserts nn into n by key, restoring the priority heap with
// rotations on the way back up. Subtree sizes are recomputed only along
// the (successful) insertion path.
func insertPrio(n, nn *treapNode) (root *treapNode, inserted bool) {
	if n == nil {
		return nn, true
	}
	switch {
	case nn.key < n.key:
		if n.left, inserted = insertPrio(n.left, nn); !inserted {
			return n, false
		}
		if n.left.prio > n.prio {
			return rotateRight(n), true
		}
	case nn.key > n.key:
		if n.right, inserted = insertPrio(n.right, nn); !inserted {
			return n, false
		}
		if n.right.prio > n.prio {
			return rotateLeft(n), true
		}
	default:
		return n, false
	}
	n.update()
	return n, true
}

// rotateRight lifts n's left child over n, preserving key order.
func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	n.update()
	l.right = n
	l.update()
	return l
}

// rotateLeft lifts n's right child over n, preserving key order.
func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	n.update()
	r.left = n
	r.update()
	return r
}

// BuildSorted fills an empty set in one pass from strictly ascending
// keys and their treap priorities, drawing nodes from a (nil allocates).
// A treap is uniquely determined by its (key, priority) pairs — ties
// resolve the same way insertPrio's strict rotation test does — so the
// result is identical to inserting the pairs one at a time, but costs
// O(len) instead of O(len·log len): each node is threaded onto the
// rightmost spine of the growing tree (the classic Cartesian-tree
// construction), and subtree sizes are finalized exactly once, when a
// node leaves the spine. Every entry gets the original flag.
func (s *AdjSet) BuildSorted(a *NodeArena, keys []Vertex, prios []uint32, original bool) {
	s.buildSorted(a, keys, prios, nil, original)
	if original {
		s.origs = int32(len(keys))
	}
}

// BuildSortedFlagged is BuildSorted with a per-entry original flag:
// origs[i] is entry i's flag, and the set's originals counter is the
// number of set flags. This is the snapshot-restore load path, where a
// partition's entries carry the flags they had when the checkpoint was
// taken rather than one uniform load-time value.
func (s *AdjSet) BuildSortedFlagged(a *NodeArena, keys []Vertex, prios []uint32, origs []bool) {
	if len(origs) != len(keys) {
		panic("graph: BuildSortedFlagged flag count != key count")
	}
	s.buildSorted(a, keys, prios, origs, false)
	var cnt int32
	for _, o := range origs {
		if o {
			cnt++
		}
	}
	s.origs = cnt
}

// buildSorted is the shared spine construction: flags[i] gives entry i's
// original flag when flags is non-nil, uniform otherwise. Callers set
// s.origs themselves.
func (s *AdjSet) buildSorted(a *NodeArena, keys []Vertex, prios []uint32, flags []bool, uniform bool) {
	if len(keys) == 0 {
		return
	}
	if s.root != nil {
		panic("graph: BuildSorted on a non-empty AdjSet")
	}
	var spine []*treapNode
	if a != nil {
		spine = a.spine[:0]
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			panic("graph: BuildSorted keys not strictly ascending")
		}
		orig := uniform
		if flags != nil {
			orig = flags[i]
		}
		nn := a.get(k, orig, prios[i])
		// Nodes the new maximum displaces from the spine become its left
		// subtree; their sizes are final the moment they come off.
		var last *treapNode
		for len(spine) > 0 && spine[len(spine)-1].prio < nn.prio {
			last = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
			last.update()
		}
		nn.left = last
		if len(spine) > 0 {
			spine[len(spine)-1].right = nn
		}
		spine = append(spine, nn)
	}
	s.root = spine[0]
	for i := len(spine) - 1; i >= 0; i-- {
		spine[i].update()
	}
	if a != nil {
		a.spine = spine[:0]
	}
}

// Delete removes v, reporting whether it was present and whether the
// removed entry was an original edge.
func (s *AdjSet) Delete(v Vertex) (found, original bool) {
	return s.DeleteArena(nil, v)
}

// DeleteArena is Delete returning the removed node to a for reuse by a
// later InsertArena; a nil arena leaves it to the GC.
func (s *AdjSet) DeleteArena(a *NodeArena, v Vertex) (found, original bool) {
	var del func(n *treapNode) *treapNode
	// hotalloc: recursive helper needs the self-reference; one closure per delete, amortized over the node walk
	del = func(n *treapNode) *treapNode {
		if n == nil {
			return nil
		}
		switch {
		case v < n.key:
			n.left = del(n.left)
		case v > n.key:
			n.right = del(n.right)
		default:
			found, original = true, n.original
			l, r := n.left, n.right
			a.put(n)
			return merge(l, r)
		}
		n.update()
		return n
	}
	s.root = del(s.root)
	if found && original {
		s.origs--
	}
	return found, original
}

// DrainArena empties the set, invoking fn for each entry in ascending
// key order and returning every node to a (nil leaves them to the GC).
// This is the curveball engine's per-round bulk extraction: visiting and
// recycling each node once costs O(d) where d repeated DeleteArena
// descents would cost O(d log d).
func (s *AdjSet) DrainArena(a *NodeArena, fn func(v Vertex, original bool)) {
	var walk func(n *treapNode)
	walk = func(n *treapNode) { // hotalloc: recursive helper needs the self-reference; one closure per drain, amortized over the node walk
		if n == nil {
			return
		}
		// a.put clobbers the node (it threads the free list through left),
		// so capture the children first.
		l, r := n.left, n.right
		walk(l)
		fn(n.key, n.original)
		a.put(n)
		walk(r)
	}
	walk(s.root)
	s.root = nil
	s.origs = 0
}

// merge joins two treaps where every key in l precedes every key in r.
func merge(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Walk calls fn for each entry in ascending key order. Returning false
// from fn stops the walk early.
func (s *AdjSet) Walk(fn func(v Vertex, original bool) bool) {
	var walk func(n *treapNode) bool
	walk = func(n *treapNode) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key, n.original) && walk(n.right)
	}
	walk(s.root)
}

// Keys returns all entries in ascending order. Intended for tests and
// small-scale inspection.
func (s *AdjSet) Keys() []Vertex {
	out := make([]Vertex, 0, s.Len())
	s.Walk(func(v Vertex, _ bool) bool {
		out = append(out, v)
		return true
	})
	return out
}
