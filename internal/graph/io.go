package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a text edge list: a header line
// "# n m" followed by one "u v" line per edge, normalized and sorted.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	for u := 0; u < g.N() && werr == nil; u++ {
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format written by WriteEdgeList.
// Lines beginning with '#' other than the header are ignored, as are
// blank lines, so files from other tools usually load unchanged.
// If the header is absent, n is inferred as max label + 1.
//
// Edges stream straight from the scanner into the graph's adjacency
// sets (InsertUnindexed, one Reindex at the end) — the file is never
// materialized as an edge slice, so loading peaks at the graph's own
// footprint rather than doubling it.
func ReadEdgeList(r io.Reader, rnd randSource) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := New(0)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first {
				fields := strings.Fields(line[1:])
				if len(fields) >= 1 {
					if v, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
						if v < 0 || v > maxVertices {
							return nil, fmt.Errorf("graph: header vertex count %d out of [0,%d]", v, maxVertices)
						}
						g.ensureN(int(v))
					}
				}
			}
			first = false
			continue
		}
		first = false
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q: %v", fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q: %v", fields[1], err)
		}
		e := Edge{Vertex(u), Vertex(v)}.Norm()
		if e.IsLoop() {
			return nil, fmt.Errorf("graph: self-loop %v", e)
		}
		if e.U < 0 {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, maxVertices)
		}
		g.ensureN(int(e.V) + 1)
		if !g.InsertUnindexed(e, true, rnd.Uint32()) {
			return nil, fmt.Errorf("graph: duplicate edge %v", e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.Reindex()
	return g, nil
}

// maxVertices bounds the vertex counts the parsers accept; labels must
// fit the int32 Vertex type regardless.
const maxVertices = 1<<31 - 1

// binaryMagic identifies the binary edge-list format.
const binaryMagic = 0x45535747 // "ESWG"

// WriteBinary writes a compact little-endian binary encoding:
// magic, n, m, then m (u,v) uint32 pairs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := [16]byte{}
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.N()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	var werr error
	for u := 0; u < g.N() && werr == nil; u++ {
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			binary.LittleEndian.PutUint32(buf[0:], uint32(u))
			binary.LittleEndian.PutUint32(buf[4:], uint32(v))
			_, werr = bw.Write(buf[:])
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary.
func ReadBinary(r io.Reader, rnd randSource) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: short binary header: %v", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic in binary edge list")
	}
	n64 := int64(binary.LittleEndian.Uint32(hdr[4:]))
	m := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if n64 > maxVertices {
		return nil, fmt.Errorf("graph: binary header vertex count %d exceeds %d", n64, maxVertices)
	}
	n := int(n64)
	if m < 0 || (n > 0 && m > int64(n)*int64(n-1)/2) || (n == 0 && m > 0) {
		return nil, fmt.Errorf("graph: binary header edge count %d infeasible for n=%d", m, n)
	}
	g := New(n)
	var buf [8]byte
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated binary edge list at %d/%d: %v", i, m, err)
		}
		e := Edge{
			Vertex(binary.LittleEndian.Uint32(buf[0:])),
			Vertex(binary.LittleEndian.Uint32(buf[4:])),
		}
		if err := g.addChecked(e, true, rnd); err != nil {
			return nil, err
		}
	}
	return g, nil
}
