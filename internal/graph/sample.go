package graph

import "sort"

// SampleSubgraph returns the subgraph induced by k uniformly chosen
// vertices, relabeled densely to 0..k-1 (ascending by original label),
// preserving original flags. Use it to build representative subsamples
// for step-size tuning or metric estimation on huge graphs. k is clamped
// to [0, n].
func SampleSubgraph(g *Graph, k int, r randSource) *Graph {
	n := g.N()
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	// Floyd-ish sampling via partial shuffle of the vertex ids.
	ids := make([]Vertex, n)
	for i := range ids {
		ids[i] = Vertex(i)
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	chosen := ids[:k]
	// Dense relabeling in ascending original order keeps any
	// label-locality structure of the input (important when the sample
	// feeds CP-partitioned tuning runs).
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	newLabel := make(map[Vertex]Vertex, k)
	for i, v := range chosen {
		newLabel[v] = Vertex(i)
	}
	out := New(k)
	for _, u := range chosen {
		nu := newLabel[u]
		g.WalkReduced(u, func(v Vertex, orig bool) bool {
			if nv, ok := newLabel[v]; ok {
				out.insert(Edge{U: nu, V: nv}.Norm(), orig, r)
			}
			return true
		})
	}
	return out
}
