package graph

// Fenwick is a binary indexed tree over int64 weights, used to sample a
// vertex with probability proportional to its current reduced degree in
// O(log n) and to update a degree in O(log n). The edge-switch engines
// keep one Fenwick tree per partition: entry i is the reduced degree of
// the i-th local vertex, so the total is the number of edges owned by the
// partition and a uniform edge pick is (weighted vertex pick, uniform
// neighbour pick).
type Fenwick struct {
	tree  []int64
	total int64
}

// NewFenwick returns a tree over n zero weights.
func NewFenwick(n int) *Fenwick {
	return &Fenwick{tree: make([]int64, n+1)}
}

// NewFenwickFrom bulk-builds a tree over the given initial weights in
// O(n), against O(n log n) for n individual Adds. Used by Graph.Reindex
// after a sharded bulk load.
func NewFenwickFrom(vals []int64) *Fenwick {
	f := &Fenwick{tree: make([]int64, len(vals)+1)}
	for i, v := range vals {
		f.total += v
		j := i + 1
		f.tree[j] += v
		if parent := j + (j & -j); parent < len(f.tree) {
			f.tree[parent] += f.tree[j]
		}
	}
	return f
}

// Len reports the number of slots.
func (f *Fenwick) Len() int { return len(f.tree) - 1 }

// Total reports the sum of all weights.
func (f *Fenwick) Total() int64 { return f.total }

// Add adds delta (which may be negative) to slot i.
func (f *Fenwick) Add(i int, delta int64) {
	f.total += delta
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of slots [0, i].
func (f *Fenwick) PrefixSum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Get returns the weight of slot i.
func (f *Fenwick) Get(i int) int64 {
	return f.PrefixSum(i) - f.PrefixSum(i-1)
}

// FindByPrefix returns the smallest index i such that PrefixSum(i) > target,
// i.e. the slot selected by a uniform draw target in [0, Total()). It also
// returns the offset of target within that slot, which the caller uses as
// the neighbour rank to select. It panics if target is out of range.
func (f *Fenwick) FindByPrefix(target int64) (slot int, offset int64) {
	if target < 0 || target >= f.total {
		panic("graph: Fenwick.FindByPrefix target out of range")
	}
	idx := 0
	// Highest power of two <= len(tree)-1.
	bit := 1
	for bit<<1 <= len(f.tree)-1 {
		bit <<= 1
	}
	rem := target
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(f.tree) && f.tree[next] <= rem {
			rem -= f.tree[next]
			idx = next
		}
	}
	return idx, rem
}
