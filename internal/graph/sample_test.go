package graph

import (
	"testing"

	"edgeswitch/internal/rng"
)

func TestSampleSubgraphShape(t *testing.T) {
	r := rng.New(1)
	g := New(100)
	for i := 0; i < 99; i++ {
		g.AddEdge(Edge{U: Vertex(i), V: Vertex(i + 1)}, r)
	}
	s := SampleSubgraph(g, 40, r)
	if s.N() != 40 {
		t.Fatalf("n=%d", s.N())
	}
	if err := s.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	// Path subsample: edges exist only between consecutively chosen
	// originals, so m <= 39.
	if s.M() > 39 {
		t.Fatalf("m=%d", s.M())
	}
}

func TestSampleSubgraphClamps(t *testing.T) {
	r := rng.New(2)
	g := New(5)
	g.AddEdge(Edge{U: 0, V: 1}, r)
	if s := SampleSubgraph(g, 50, r); s.N() != 5 || s.M() != 1 {
		t.Fatalf("oversampled: n=%d m=%d", s.N(), s.M())
	}
	if s := SampleSubgraph(g, 0, r); s.N() != 0 || s.M() != 0 {
		t.Fatalf("zero sample: n=%d m=%d", s.N(), s.M())
	}
	if s := SampleSubgraph(g, -2, r); s.N() != 0 {
		t.Fatalf("negative k: n=%d", s.N())
	}
}

func TestSampleSubgraphFullIsIsomorphicCopy(t *testing.T) {
	r := rng.New(3)
	g := New(20)
	for i := 0; i < 19; i++ {
		g.AddEdge(Edge{U: Vertex(i), V: Vertex(i + 1)}, r)
	}
	g.RemoveEdge(Edge{U: 3, V: 4})
	g.AddModified(Edge{U: 0, V: 10}, r)
	s := SampleSubgraph(g, 20, r)
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatalf("full sample differs: n=%d m=%d", s.N(), s.M())
	}
	// With all vertices chosen the dense relabeling is the identity.
	ge, se := g.Edges(), s.Edges()
	for i := range ge {
		if ge[i] != se[i] {
			t.Fatalf("edge %d: %v != %v", i, ge[i], se[i])
		}
	}
	if s.Originals() != g.Originals() {
		t.Fatalf("original flags lost: %d vs %d", s.Originals(), g.Originals())
	}
}

func TestSampleSubgraphDegreesBounded(t *testing.T) {
	r := rng.New(4)
	g := New(60)
	// Star at 0.
	for v := 1; v < 60; v++ {
		g.AddEdge(Edge{U: 0, V: Vertex(v)}, r)
	}
	s := SampleSubgraph(g, 30, r)
	// Induced subgraph degrees never exceed original degrees.
	for _, d := range s.Degrees() {
		if d > 59 {
			t.Fatalf("degree %d exceeds original", d)
		}
	}
	if err := s.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}
