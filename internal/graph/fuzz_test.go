package graph

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeswitch/internal/rng"
)

// FuzzReadEdgeList asserts the text parser never panics and that any
// successfully parsed graph satisfies the structural invariants and
// round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# 3 2\n0 1\n1 2\n")
	f.Add("0 1\n")
	f.Add("")
	f.Add("# bogus header\n5 6\n")
	f.Add("1 1\n")      // loop
	f.Add("0 1\n0 1\n") // duplicate
	f.Add("999999999999999999 1\n")
	f.Add("-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := rng.New(1)
		g, err := ReadEdgeList(bytes.NewBufferString(input), r)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("parsed graph violates invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writer failed on parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf, r)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.M(), g2.M())
		}
	})
}

// FuzzAdjCodec feeds arbitrary bytes to the varint adjacency codec (the
// checkpoint and tiered-store base-segment format): corrupt input must
// be rejected with an error, never a panic, and anything that decodes
// must agree across the three readers and survive an encode→decode
// round trip unchanged.
func FuzzAdjCodec(f *testing.F) {
	var s AdjSet
	r := rng.New(4)
	for _, v := range []Vertex{11, 12, 40, 1 << 20} {
		s.Insert(v, v%2 == 0, r.Uint32())
	}
	f.Add(s.AppendAdjSet(nil, 10), int16(10))
	f.Add(AppendEmptyAdjSet(nil), int16(0))
	f.Add([]byte{2, 1, 2}, int16(3))          // zero gap: corrupt
	f.Add([]byte{5, 2}, int16(0))             // truncated entries
	f.Add([]byte{0xff, 0xff, 0xff}, int16(1)) // truncated count varint
	f.Fuzz(func(t *testing.T, data []byte, ownerRaw int16) {
		owner := Vertex(ownerRaw)
		if owner < 0 {
			owner = -owner
		}
		keys, origs, rest, err := DecodeAdjSet(data, owner, nil, nil)
		if err != nil {
			return // rejected input is fine; panics and wraparounds are not
		}
		if n, lerr := AdjSetBytesLen(data); lerr != nil || n != len(keys) {
			t.Fatalf("AdjSetBytesLen says (%d, %v), decode produced %d entries", n, lerr, len(keys))
		}
		prev := owner
		for i, k := range keys {
			if k <= prev {
				t.Fatalf("decoded key %d of owner %d not ascending: %d after %d", i, owner, k, prev)
			}
			prev = k
		}
		var wkeys []Vertex
		wrest, werr := WalkAdjSetBytes(data, owner, func(v Vertex, _ bool) bool {
			wkeys = append(wkeys, v)
			return true
		})
		if werr != nil || len(wkeys) != len(keys) || len(wrest) != len(rest) {
			t.Fatalf("walker disagrees with decoder: %d vs %d entries, %v", len(wkeys), len(keys), werr)
		}
		// Re-encode and decode again: the list must survive unchanged
		// (the encoding of a decoded list is canonical even when the
		// input used non-minimal varints).
		enc := AppendSortedAdjFlagged(nil, owner, keys, origs)
		k2, o2, tail, err2 := DecodeAdjSet(enc, owner, nil, nil)
		if err2 != nil || len(tail) != 0 {
			t.Fatalf("re-encoded list fails to decode: %v (tail %d bytes)", err2, len(tail))
		}
		if len(k2) != len(keys) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(keys), len(k2))
		}
		for i := range keys {
			if k2[i] != keys[i] || o2[i] != origs[i] {
				t.Fatalf("round trip changed entry %d: (%d,%v) -> (%d,%v)", i, keys[i], origs[i], k2[i], o2[i])
			}
		}
	})
}

// FuzzReadBinary does the same for the binary format.
func FuzzReadBinary(f *testing.F) {
	r := rng.New(2)
	g, err := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}}, r)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is long enough to look like a header.."))
	f.Fuzz(func(t *testing.T, input []byte) {
		// The format permits vertex counts up to 2^31−1, so a 16-byte
		// header can legitimately request gigabytes of adjacency slots;
		// keep the fuzzer within sane allocation bounds.
		if len(input) >= 8 {
			if n := binary.LittleEndian.Uint32(input[4:]); n > 1<<20 {
				t.Skip("header vertex count too large for fuzzing")
			}
		}
		g, err := ReadBinary(bytes.NewReader(input), rng.New(3))
		if err != nil {
			return
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("parsed graph violates invariants: %v", err)
		}
	})
}
