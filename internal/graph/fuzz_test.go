package graph

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeswitch/internal/rng"
)

// FuzzReadEdgeList asserts the text parser never panics and that any
// successfully parsed graph satisfies the structural invariants and
// round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# 3 2\n0 1\n1 2\n")
	f.Add("0 1\n")
	f.Add("")
	f.Add("# bogus header\n5 6\n")
	f.Add("1 1\n")      // loop
	f.Add("0 1\n0 1\n") // duplicate
	f.Add("999999999999999999 1\n")
	f.Add("-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := rng.New(1)
		g, err := ReadEdgeList(bytes.NewBufferString(input), r)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("parsed graph violates invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writer failed on parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf, r)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.M(), g2.M())
		}
	})
}

// FuzzReadBinary does the same for the binary format.
func FuzzReadBinary(f *testing.F) {
	r := rng.New(2)
	g, err := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}}, r)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is long enough to look like a header.."))
	f.Fuzz(func(t *testing.T, input []byte) {
		// The format permits vertex counts up to 2^31−1, so a 16-byte
		// header can legitimately request gigabytes of adjacency slots;
		// keep the fuzzer within sane allocation bounds.
		if len(input) >= 8 {
			if n := binary.LittleEndian.Uint32(input[4:]); n > 1<<20 {
				t.Skip("header vertex count too large for fuzzing")
			}
		}
		g, err := ReadBinary(bytes.NewReader(input), rng.New(3))
		if err != nil {
			return
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("parsed graph violates invariants: %v", err)
		}
	})
}
