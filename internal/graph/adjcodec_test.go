package graph

import (
	"sort"
	"testing"

	"edgeswitch/internal/rng"
)

// TestAdjCodecRoundTrip: random reduced adjacencies survive
// AppendAdjSet → DecodeAdjSet → BuildSortedFlagged with keys, flags and
// originals count intact — the checkpoint snapshot load path.
func TestAdjCodecRoundTrip(t *testing.T) {
	r := rng.New(21)
	var keys []Vertex
	var origs []bool
	for trial := 0; trial < 200; trial++ {
		owner := Vertex(r.Intn(1000))
		n := r.Intn(50)
		var src AdjSet
		want := map[Vertex]bool{}
		for len(want) < n {
			// Reduced adjacency: neighbours strictly greater than owner.
			v := owner + 1 + Vertex(r.Intn(2000))
			if _, ok := want[v]; ok {
				continue
			}
			want[v] = r.Bool()
			src.Insert(v, want[v], uint32(r.Uint64()))
		}

		buf := src.AppendAdjSet(nil, owner)
		keys, origs = keys[:0], origs[:0]
		keys, origs, rest, err := DecodeAdjSet(buf, owner, keys, origs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rest))
		}
		if len(keys) != n {
			t.Fatalf("trial %d: decoded %d entries, want %d", trial, len(keys), n)
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatalf("trial %d: decoded keys not ascending", trial)
		}
		wantOrigs := 0
		for i, k := range keys {
			flag, ok := want[k]
			if !ok || flag != origs[i] {
				t.Fatalf("trial %d: entry %d = (%d, %v) not in source set", trial, i, k, origs[i])
			}
			if flag {
				wantOrigs++
			}
		}

		var dst AdjSet
		prios := make([]uint32, len(keys))
		for i := range prios {
			prios[i] = uint32(r.Uint64())
		}
		dst.BuildSortedFlagged(nil, keys, prios, origs)
		if dst.Len() != n || dst.Originals() != wantOrigs {
			t.Fatalf("trial %d: rebuilt Len=%d Originals=%d, want %d/%d",
				trial, dst.Len(), dst.Originals(), n, wantOrigs)
		}
		i := 0
		dst.Walk(func(v Vertex, orig bool) bool {
			if v != keys[i] || orig != origs[i] {
				t.Fatalf("trial %d: rebuilt entry %d = (%d, %v), want (%d, %v)",
					trial, i, v, orig, keys[i], origs[i])
			}
			i++
			return true
		})
	}
}

// TestAdjCodecMultipleSets: several adjacency lists concatenated into
// one buffer (the snapshot layout) decode back in sequence, each
// consuming exactly its own bytes.
func TestAdjCodecMultipleSets(t *testing.T) {
	owners := []Vertex{0, 3, 7, 8}
	lists := [][]Vertex{{1, 2, 9}, {4, 1000}, {}, {9}}
	var buf []byte
	for i, owner := range owners {
		var s AdjSet
		for _, v := range lists[i] {
			s.Insert(v, v%2 == 0, 1)
		}
		buf = s.AppendAdjSet(buf, owner)
	}
	rest := buf
	for i, owner := range owners {
		var keys []Vertex
		var origs []bool
		var err error
		keys, origs, rest, err = DecodeAdjSet(rest, owner, keys, origs)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if len(keys) != len(lists[i]) {
			t.Fatalf("slot %d: %d entries, want %d", i, len(keys), len(lists[i]))
		}
		for j, v := range keys {
			if v != lists[i][j] || origs[j] != (v%2 == 0) {
				t.Fatalf("slot %d entry %d: (%d, %v)", i, j, v, origs[j])
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after all slots", len(rest))
	}
}

// TestAdjCodecRejectsCorruption: truncation and non-ascending gaps are
// decode errors, never silent misreads.
func TestAdjCodecRejectsCorruption(t *testing.T) {
	var s AdjSet
	s.Insert(5, true, 1)
	s.Insert(9, false, 2)
	buf := s.AppendAdjSet(nil, 2)

	if _, _, _, err := DecodeAdjSet(buf[:len(buf)-1], 2, nil, nil); err == nil {
		t.Fatal("truncated entry accepted")
	}
	if _, _, _, err := DecodeAdjSet(nil, 2, nil, nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	// A zero gap encodes a non-ascending (duplicate) neighbour.
	bad := append([]byte(nil), buf...)
	bad[1] = 0
	if _, _, _, err := DecodeAdjSet(bad, 2, nil, nil); err == nil {
		t.Fatal("zero gap accepted")
	}
}
