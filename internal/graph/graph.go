// Package graph provides the in-memory graph representation shared by the
// sequential and parallel edge-switch algorithms: simple undirected graphs
// stored as reduced adjacency lists (each edge (u,v) with u < v appears
// once, in the list of u), with order-statistic treap adjacency sets and
// Fenwick-tree degree indices for O(log) uniform edge sampling.
package graph

import (
	"fmt"
	"sort"
)

// Vertex is a vertex label. Labels are dense integers 0..n-1.
type Vertex int32

// Edge is an undirected edge. A normalized edge has U < V.
type Edge struct {
	U, V Vertex
}

// Norm returns the edge with endpoints ordered so that U < V.
func (e Edge) Norm() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// IsLoop reports whether the edge is a self-loop.
func (e Edge) IsLoop() bool { return e.U == e.V }

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph with reduced adjacency lists.
// adj[u] holds exactly the neighbours v of u with v > u, so each edge is
// stored once and "edge (a,b) exists" is always answered by probing
// min(a,b)'s list. The Graph maintains a Fenwick tree over reduced degrees
// so that a uniform random edge can be drawn in O(log n).
//
// Graph is not safe for concurrent mutation; the parallel engine gives
// each rank exclusive ownership of a Partition instead.
type Graph struct {
	n   int
	m   int64
	adj []AdjSet
	deg *Fenwick // reduced degree of each vertex

	originals int64 // edges still carrying the original flag
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{
		n:   n,
		adj: make([]AdjSet, n),
		deg: NewFenwick(n),
	}
}

// FromEdges builds a graph on n vertices from the given edge list. All
// edges are flagged original. It returns an error if any edge is a loop,
// a duplicate, or out of range.
func FromEdges(n int, edges []Edge, r randSource) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.addChecked(e, true, r); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// randSource is the subset of rng.RNG the graph package needs; declared
// locally to keep the dependency direction explicit.
type randSource interface {
	Uint32() uint32
	Int64n(int64) int64
	Intn(int) int
}

func (g *Graph) addChecked(e Edge, original bool, r randSource) error {
	e = e.Norm()
	if e.IsLoop() {
		return fmt.Errorf("graph: self-loop %v", e)
	}
	if e.U < 0 || int(e.V) >= g.n {
		return fmt.Errorf("graph: edge %v out of range [0,%d)", e, g.n)
	}
	if !g.insert(e, original, r) {
		return fmt.Errorf("graph: duplicate edge %v", e)
	}
	return nil
}

// insert adds a normalized edge; reports false if it already exists.
func (g *Graph) insert(e Edge, original bool, r randSource) bool {
	if !g.adj[e.U].Insert(e.V, original, r.Uint32()) {
		return false
	}
	g.m++
	g.deg.Add(int(e.U), 1)
	if original {
		g.originals++
	}
	return true
}

// AddEdge inserts edge e (normalized internally) flagged as original.
// It reports false if the edge already exists. Loops are rejected with a
// panic since they indicate a programming error upstream.
func (g *Graph) AddEdge(e Edge, r randSource) bool {
	e = e.Norm()
	if e.IsLoop() {
		panic("graph: AddEdge with self-loop")
	}
	return g.insert(e, true, r)
}

// AddModified inserts edge e flagged as modified (created by a switch).
func (g *Graph) AddModified(e Edge, r randSource) bool {
	e = e.Norm()
	if e.IsLoop() {
		panic("graph: AddModified with self-loop")
	}
	return g.insert(e, false, r)
}

// InsertUnindexed inserts a normalized edge into U's adjacency set only,
// leaving the Fenwick degree index and the edge/original counters stale.
// It is the sharded bulk-load primitive: callers that partition the
// vertex space (each U value touched by exactly one goroutine) may call
// it concurrently, then call Reindex once after every shard finishes.
// The caller must pass a normalized (U < V), in-range edge; duplicates
// are reported with false, as with AddEdge.
func (g *Graph) InsertUnindexed(e Edge, original bool, prio uint32) bool {
	return g.adj[e.U].Insert(e.V, original, prio)
}

// ensureN grows the vertex space to at least n labels, leaving the
// Fenwick degree index stale like InsertUnindexed does — the streaming
// loaders grow as labels appear and Reindex once at the end.
func (g *Graph) ensureN(n int) {
	if n <= g.n {
		return
	}
	if n > cap(g.adj) {
		grown := make([]AdjSet, n, max(n, 2*cap(g.adj)))
		copy(grown, g.adj)
		g.adj = grown
	}
	g.adj = g.adj[:n]
	g.n = n
}

// Reindex rebuilds the Fenwick degree index and the edge and original
// counters from the adjacency sets in O(n), completing a bulk load done
// through InsertUnindexed.
func (g *Graph) Reindex() {
	vals := make([]int64, g.n)
	var m, origs int64
	for u := range g.adj {
		l := int64(g.adj[u].Len())
		vals[u] = l
		m += l
		origs += int64(g.adj[u].Originals())
	}
	g.deg = NewFenwickFrom(vals)
	g.m = m
	g.originals = origs
}

// RemoveEdge deletes edge e. It reports whether the edge existed and
// whether it was an original edge.
func (g *Graph) RemoveEdge(e Edge) (found, original bool) {
	e = e.Norm()
	found, original = g.adj[e.U].Delete(e.V)
	if found {
		g.m--
		g.deg.Add(int(e.U), -1)
		if original {
			g.originals--
		}
	}
	return found, original
}

// HasEdge reports whether edge e exists.
func (g *Graph) HasEdge(e Edge) bool {
	e = e.Norm()
	if e.IsLoop() {
		return false
	}
	return g.adj[e.U].Contains(e.V)
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// M reports the number of edges.
func (g *Graph) M() int64 { return g.m }

// Originals reports how many edges are still flagged original; the visit
// rate is 1 - Originals()/M₀ where M₀ is the initial edge count.
func (g *Graph) Originals() int64 { return g.originals }

// ReducedDegree reports |{v > u : (u,v) ∈ E}|.
func (g *Graph) ReducedDegree(u Vertex) int { return g.adj[u].Len() }

// Degree reports the full degree of u. O(m/n) on average is not available
// from reduced lists alone, so this is O(n log d) if called for all
// vertices; use Degrees for bulk queries.
func (g *Graph) Degree(u Vertex) int {
	d := g.adj[u].Len()
	for w := Vertex(0); w < u; w++ {
		if g.adj[w].Contains(u) {
			d++
		}
	}
	return d
}

// Degrees returns the full degree of every vertex in O(m + n).
func (g *Graph) Degrees() []int {
	deg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			deg[u]++
			deg[v]++
			return true
		})
	}
	return deg
}

// RandomEdge returns a uniform random edge (normalized). It panics on an
// empty graph.
func (g *Graph) RandomEdge(r randSource) Edge {
	if g.m == 0 {
		panic("graph: RandomEdge on empty graph")
	}
	slot, offset := g.deg.FindByPrefix(r.Int64n(g.m))
	v, _ := g.adj[slot].Kth(int(offset))
	return Edge{Vertex(slot), v}
}

// Edges returns all edges in normalized form, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			out = append(out, Edge{Vertex(u), v})
			return true
		})
	}
	return out
}

// Neighbors returns the full neighbour set of u in ascending order,
// reconstructed from the reduced lists in O(n log d) worst case; intended
// for metrics and tests, not hot paths. For bulk access use FullAdjacency.
func (g *Graph) Neighbors(u Vertex) []Vertex {
	var out []Vertex
	for w := Vertex(0); w < u; w++ {
		if g.adj[w].Contains(u) {
			out = append(out, w)
		}
	}
	out = append(out, g.adj[u].Keys()...)
	return out
}

// WalkReduced calls fn for each reduced-adjacency entry of u (neighbours
// v > u) in ascending order with its original flag; returning false stops
// the walk.
func (g *Graph) WalkReduced(u Vertex, fn func(v Vertex, original bool) bool) {
	g.adj[u].Walk(fn)
}

// FullAdjacency materializes the full (non-reduced) adjacency structure in
// O(m + n), sorted per vertex. Used by metrics (clustering, BFS).
func (g *Graph) FullAdjacency() [][]Vertex {
	full := make([][]Vertex, g.n)
	deg := g.Degrees()
	for u := range full {
		full[u] = make([]Vertex, 0, deg[u])
	}
	for u := 0; u < g.n; u++ {
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			full[u] = append(full[u], v)
			full[v] = append(full[v], Vertex(u))
			return true
		})
	}
	for u := range full {
		sort.Slice(full[u], func(i, j int) bool { return full[u][i] < full[u][j] })
	}
	return full
}

// Clone returns a deep copy of the graph, preserving original flags.
func (g *Graph) Clone(r randSource) *Graph {
	ng := New(g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].Walk(func(v Vertex, original bool) bool {
			ng.insert(Edge{Vertex(u), v}, original, r)
			return true
		})
	}
	return ng
}

// CheckSimple verifies the structural invariants: no loops, no duplicate
// entries (the treap enforces these by construction), edge count matching
// the Fenwick total. It returns an error describing the first violation.
func (g *Graph) CheckSimple() error {
	var count int64
	for u := 0; u < g.n; u++ {
		prev := Vertex(-1)
		ok := true
		g.adj[u].Walk(func(v Vertex, _ bool) bool {
			if v <= Vertex(u) || v <= prev || int(v) >= g.n {
				ok = false
				return false
			}
			prev = v
			count++
			return true
		})
		if !ok {
			return fmt.Errorf("graph: adjacency of %d violates reduced-list order", u)
		}
		if int64(g.adj[u].Len()) != g.deg.Get(u) {
			return fmt.Errorf("graph: Fenwick degree mismatch at %d", u)
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: edge count %d != recorded %d", count, g.m)
	}
	if g.deg.Total() != g.m {
		return fmt.Errorf("graph: Fenwick total %d != m %d", g.deg.Total(), g.m)
	}
	return nil
}
