package graph

import (
	"sync"
	"testing"

	"edgeswitch/internal/rng"
)

func TestNewFenwickFromMatchesAdds(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000} {
		vals := make([]int64, n)
		ref := NewFenwick(n)
		for i := range vals {
			vals[i] = r.Int64n(10)
			ref.Add(i, vals[i])
		}
		got := NewFenwickFrom(vals)
		if got.Total() != ref.Total() {
			t.Fatalf("n=%d: total %d, want %d", n, got.Total(), ref.Total())
		}
		for i := 0; i < n; i++ {
			if got.PrefixSum(i) != ref.PrefixSum(i) {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got.PrefixSum(i), ref.PrefixSum(i))
			}
		}
	}
}

func TestAdjSetOriginalsCounter(t *testing.T) {
	var s AdjSet
	r := rng.New(12)
	s.Insert(1, true, r.Uint32())
	s.Insert(2, false, r.Uint32())
	s.Insert(3, true, r.Uint32())
	if s.Originals() != 2 {
		t.Fatalf("originals %d, want 2", s.Originals())
	}
	// Duplicate insert must not bump the counter.
	if s.Insert(1, true, r.Uint32()) {
		t.Fatal("duplicate insert accepted")
	}
	if s.Originals() != 2 {
		t.Fatalf("originals after duplicate %d, want 2", s.Originals())
	}
	s.Delete(3)
	s.Delete(2)
	if s.Originals() != 1 {
		t.Fatalf("originals after deletes %d, want 1", s.Originals())
	}
	// Deleting a missing key changes nothing.
	s.Delete(9)
	if s.Originals() != 1 {
		t.Fatalf("originals after missing delete %d, want 1", s.Originals())
	}
}

// TestInsertUnindexedReindex bulk-loads a graph through sharded workers
// and asserts Reindex reconstructs exactly the state an edge-at-a-time
// build produces.
func TestInsertUnindexedReindex(t *testing.T) {
	const n = 200
	r := rng.New(13)
	var edges []Edge
	for u := Vertex(0); u < n; u++ {
		for v := u + 1; v < n; v += Vertex(1 + r.Intn(9)) {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	ref := New(n)
	for i, e := range edges {
		original := i%3 != 0
		if !ref.AddEdge(e, r) {
			t.Fatalf("ref add %v", e)
		}
		if !original {
			ref.RemoveEdge(e)
			ref.AddModified(e, r)
		}
	}

	const workers = 4
	got := New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := rng.Split(13, w)
			for i, e := range edges {
				if int(e.U)%workers != w {
					continue
				}
				if !got.InsertUnindexed(e, i%3 != 0, wr.Uint32()) {
					t.Errorf("worker %d: duplicate %v", w, e)
				}
			}
		}(w)
	}
	wg.Wait()
	got.Reindex()

	if got.M() != ref.M() || got.Originals() != ref.Originals() {
		t.Fatalf("counters: m=%d origs=%d, want m=%d origs=%d",
			got.M(), got.Originals(), ref.M(), ref.Originals())
	}
	if err := got.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	ge, re := got.Edges(), ref.Edges()
	if len(ge) != len(re) {
		t.Fatalf("edge count %d, want %d", len(ge), len(re))
	}
	for i := range ge {
		if ge[i] != re[i] {
			t.Fatalf("edge %d: %v, want %v", i, ge[i], re[i])
		}
	}
	for u := Vertex(0); int(u) < n; u++ {
		if got.ReducedDegree(u) != ref.ReducedDegree(u) {
			t.Fatalf("reduced degree of %d: %d, want %d", u, got.ReducedDegree(u), ref.ReducedDegree(u))
		}
	}
}
