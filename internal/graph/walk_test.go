package graph

import (
	"testing"

	"edgeswitch/internal/rng"
)

func TestWalkReduced(t *testing.T) {
	r := rng.New(1)
	g := New(5)
	g.AddEdge(Edge{U: 1, V: 3}, r)
	g.AddEdge(Edge{U: 1, V: 4}, r)
	g.AddModified(Edge{U: 1, V: 2}, r)
	g.AddEdge(Edge{U: 0, V: 1}, r) // stored at 0, must not appear for 1

	var got []Vertex
	var flags []bool
	g.WalkReduced(1, func(v Vertex, orig bool) bool {
		got = append(got, v)
		flags = append(flags, orig)
		return true
	})
	want := []Vertex{2, 3, 4}
	wantFlags := []bool{false, true, true}
	if len(got) != len(want) {
		t.Fatalf("walked %v", got)
	}
	for i := range want {
		if got[i] != want[i] || flags[i] != wantFlags[i] {
			t.Fatalf("entry %d: (%d,%v), want (%d,%v)", i, got[i], flags[i], want[i], wantFlags[i])
		}
	}

	// Early stop.
	count := 0
	g.WalkReduced(1, func(Vertex, bool) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop walked %d entries", count)
	}

	// Vertex with empty reduced list.
	g.WalkReduced(4, func(Vertex, bool) bool {
		t.Fatal("walked entry of empty list")
		return false
	})
}
