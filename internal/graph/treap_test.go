package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"edgeswitch/internal/rng"
)

func TestAdjSetBasic(t *testing.T) {
	r := rng.New(1)
	var s AdjSet
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	if !s.Insert(5, true, r.Uint32()) {
		t.Fatal("insert of new key failed")
	}
	if s.Insert(5, false, r.Uint32()) {
		t.Fatal("duplicate insert succeeded")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("contains wrong")
	}
	if !s.Original(5) {
		t.Fatal("original flag lost")
	}
	found, orig := s.Delete(5)
	if !found || !orig {
		t.Fatalf("delete = (%v,%v), want (true,true)", found, orig)
	}
	if found, _ := s.Delete(5); found {
		t.Fatal("double delete reported found")
	}
	if s.Len() != 0 {
		t.Fatal("set not empty after delete")
	}
}

func TestAdjSetOrderedWalk(t *testing.T) {
	r := rng.New(2)
	var s AdjSet
	vals := []Vertex{9, 3, 7, 1, 5, 11, 2}
	for _, v := range vals {
		s.Insert(v, true, r.Uint32())
	}
	got := s.Keys()
	want := append([]Vertex(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAdjSetKth(t *testing.T) {
	r := rng.New(3)
	var s AdjSet
	for _, v := range []Vertex{10, 20, 30, 40, 50} {
		s.Insert(v, true, r.Uint32())
	}
	for k, want := range []Vertex{10, 20, 30, 40, 50} {
		if got, _ := s.Kth(k); got != want {
			t.Fatalf("Kth(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestAdjSetKthPanicsOutOfRange(t *testing.T) {
	var s AdjSet
	s.Insert(1, true, 12345)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Kth(1)
}

func TestAdjSetOriginalFlagPerEntry(t *testing.T) {
	r := rng.New(4)
	var s AdjSet
	s.Insert(1, true, r.Uint32())
	s.Insert(2, false, r.Uint32())
	if !s.Original(1) || s.Original(2) || s.Original(3) {
		t.Fatal("original flags wrong")
	}
	_, orig := s.Kth(1)
	if orig {
		t.Fatal("Kth returned wrong original flag")
	}
}

// TestAdjSetAgainstMap drives the treap with random operations and checks
// it against a reference map implementation.
func TestAdjSetAgainstMap(t *testing.T) {
	r := rng.New(5)
	var s AdjSet
	ref := map[Vertex]bool{} // value = original flag
	for i := 0; i < 20000; i++ {
		v := Vertex(r.Intn(500))
		switch r.Intn(3) {
		case 0: // insert
			orig := r.Bool()
			_, exists := ref[v]
			if s.Insert(v, orig, r.Uint32()) == exists {
				t.Fatalf("step %d: insert(%d) disagreed with reference", i, v)
			}
			if !exists {
				ref[v] = orig
			}
		case 1: // delete
			want, exists := ref[v]
			found, orig := s.Delete(v)
			if found != exists || (found && orig != want) {
				t.Fatalf("step %d: delete(%d) = (%v,%v), want (%v,%v)", i, v, found, orig, exists, want)
			}
			delete(ref, v)
		case 2: // query
			if s.Contains(v) != func() bool { _, ok := ref[v]; return ok }() {
				t.Fatalf("step %d: contains(%d) disagreed", i, v)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: len %d != ref %d", i, s.Len(), len(ref))
		}
	}
	// Final ordering check.
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("final walk out of order")
		}
	}
}

// TestAdjSetKthMatchesSortedOrder is a property test: for any set of
// distinct values, Kth(k) must equal the k-th smallest.
func TestAdjSetKthMatchesSortedOrder(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		r := rng.New(seed)
		var s AdjSet
		uniq := map[Vertex]bool{}
		for _, x := range raw {
			uniq[Vertex(x)] = true
		}
		var want []Vertex
		for v := range uniq {
			want = append(want, v)
			s.Insert(v, true, r.Uint32())
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if s.Len() != len(want) {
			return false
		}
		for k, w := range want {
			if got, _ := s.Kth(k); got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjSetWalkEarlyStop(t *testing.T) {
	r := rng.New(6)
	var s AdjSet
	for v := Vertex(0); v < 100; v++ {
		s.Insert(v, true, r.Uint32())
	}
	visited := 0
	s.Walk(func(v Vertex, _ bool) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("early stop visited %d, want 10", visited)
	}
}

func BenchmarkAdjSetInsertDelete(b *testing.B) {
	r := rng.New(7)
	var s AdjSet
	for i := 0; i < b.N; i++ {
		v := Vertex(r.Intn(1 << 20))
		if !s.Insert(v, true, r.Uint32()) {
			s.Delete(v)
		}
	}
}

func BenchmarkAdjSetKth(b *testing.B) {
	r := rng.New(8)
	var s AdjSet
	for i := 0; i < 1000; i++ {
		s.Insert(Vertex(i*3), true, r.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Kth(r.Intn(1000))
	}
}

// identicalTreap reports whether two treaps have the same structure,
// keys, priorities, and sizes — stronger than behavioral equality, it
// pins BuildSorted's claim of being bit-identical to one-at-a-time
// insertion.
func identicalTreap(a, b *treapNode) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.key == b.key && a.prio == b.prio && a.size == b.size &&
		a.original == b.original &&
		identicalTreap(a.left, b.left) && identicalTreap(a.right, b.right)
}

func TestBuildSortedMatchesIncrementalInsert(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40) + 1
		keys := make([]Vertex, 0, n)
		prios := make([]uint32, 0, n)
		seen := map[Vertex]bool{}
		for len(keys) < n {
			v := Vertex(r.Intn(200))
			if seen[v] {
				continue
			}
			seen[v] = true
			keys = append(keys, v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for range keys {
			// Narrow priority range so ties actually occur in the trial set.
			prios = append(prios, uint32(r.Intn(16)))
		}

		var inc, bulk AdjSet
		var arena NodeArena
		for i, k := range keys {
			inc.Insert(k, true, prios[i])
		}
		bulk.BuildSorted(&arena, keys, prios, true)

		if !identicalTreap(inc.root, bulk.root) {
			t.Fatalf("trial %d: BuildSorted tree differs from incremental insert (n=%d)", trial, n)
		}
		if bulk.Len() != len(keys) || bulk.Originals() != len(keys) {
			t.Fatalf("trial %d: Len=%d Originals=%d, want %d", trial, bulk.Len(), bulk.Originals(), len(keys))
		}
	}
}

func TestBuildSortedPanicsOnUnsortedOrNonEmpty(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("unsorted keys", func() {
		var s AdjSet
		s.BuildSorted(nil, []Vertex{3, 2}, []uint32{1, 2}, true)
	})
	expectPanic("duplicate keys", func() {
		var s AdjSet
		s.BuildSorted(nil, []Vertex{2, 2}, []uint32{1, 2}, true)
	})
	expectPanic("non-empty set", func() {
		var s AdjSet
		s.Insert(1, true, 9)
		s.BuildSorted(nil, []Vertex{2}, []uint32{1}, true)
	})
}

// TestAdjSetDrainArena checks the bulk-drain primitive the curveball
// randomizer uses at every round start: entries arrive in ascending key
// order with their original flags, the set ends empty, and every node is
// returned to the arena free list for the round's re-inserts.
func TestAdjSetDrainArena(t *testing.T) {
	var s AdjSet
	var arena NodeArena
	r := rng.New(13)
	want := map[Vertex]bool{}
	for len(want) < 60 {
		v := Vertex(r.Intn(500))
		if _, ok := want[v]; ok {
			continue
		}
		orig := r.Bool()
		want[v] = orig
		s.InsertArena(&arena, v, orig, r.Uint32())
	}

	var keys []Vertex
	got := map[Vertex]bool{}
	s.DrainArena(&arena, func(v Vertex, orig bool) {
		keys = append(keys, v)
		got[v] = orig
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("drain not in key order: %v", keys)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for v, orig := range want {
		if g, ok := got[v]; !ok || g != orig {
			t.Fatalf("entry %d: got (%v, %v), want (true, %v)", v, ok, g, orig)
		}
	}
	if s.Len() != 0 || s.Originals() != 0 {
		t.Fatalf("set not empty after drain: len %d, originals %d", s.Len(), s.Originals())
	}

	// Every drained node must be back on the free list.
	freed := 0
	for n := arena.free; n != nil; n = n.left {
		freed++
	}
	if freed != len(want) {
		t.Fatalf("free list holds %d nodes, want %d", freed, len(want))
	}

	// An empty set drains as a no-op.
	s.DrainArena(&arena, func(Vertex, bool) { t.Fatal("callback on empty set") })
}
