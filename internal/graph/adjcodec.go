package graph

import (
	"encoding/binary"
	"fmt"
)

// Compact adjacency serialization shared by checkpoints and the tiered
// edge store's base segments: one reduced adjacency list is encoded as a
// uvarint entry count followed by one uvarint per entry,
// (gap << 1) | originalFlag, where gap is the key's distance from its
// predecessor (the owner vertex for the first entry). Reduced
// adjacencies hold strictly ascending neighbours > owner, so every gap
// is >= 1 and small keys cost one byte; a partition round-trips in a
// fraction of the 9-byte-per-edge wire records. Treap priorities are
// deliberately NOT encoded: uniform edge selection goes through
// key-order statistics (Fenwick prefix + Kth), so priorities shape only
// the treap's internal form, and a restore may draw fresh ones.

// AppendAdjSet appends the encoding of s (owned by owner) to buf and
// returns the extended slice.
func (s *AdjSet) AppendAdjSet(buf []byte, owner Vertex) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	prev := owner
	s.Walk(func(v Vertex, orig bool) bool {
		gap := uint64(v-prev) << 1
		if orig {
			gap |= 1
		}
		buf = binary.AppendUvarint(buf, gap)
		prev = v
		return true
	})
	return buf
}

// AppendEmptyAdjSet appends the encoding of an empty adjacency list
// (a single zero-count uvarint) — the filler the tiered store's segment
// writer emits for owned vertices with no reduced neighbours.
func AppendEmptyAdjSet(buf []byte) []byte {
	return append(buf, 0)
}

// AppendSortedAdj appends the encoding of a strictly ascending key list
// owned by owner, every entry sharing one original flag — the tiered
// store's streaming bulk-load path, which encodes partitions straight to
// disk without materializing treaps.
func AppendSortedAdj(buf []byte, owner Vertex, keys []Vertex, orig bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	prev := owner
	for _, v := range keys {
		g := uint64(v-prev) << 1
		if orig {
			g |= 1
		}
		buf = binary.AppendUvarint(buf, g)
		prev = v
	}
	return buf
}

// AppendSortedAdjFlagged is AppendSortedAdj with per-entry original
// flags.
func AppendSortedAdjFlagged(buf []byte, owner Vertex, keys []Vertex, origs []bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	prev := owner
	for i, v := range keys {
		g := uint64(v-prev) << 1
		if origs[i] {
			g |= 1
		}
		buf = binary.AppendUvarint(buf, g)
		prev = v
	}
	return buf
}

// DecodeAdjSet decodes one adjacency list encoded by AppendAdjSet from
// the front of data, appending the keys and original flags to the given
// scratch slices (pass them back in across slots to amortize growth).
// It returns the filled slices and the remaining bytes. Corrupt input
// (truncation, zero gaps, keys escaping the int32 vertex range) is an
// error, never a panic or a silent wraparound.
func DecodeAdjSet(data []byte, owner Vertex, keys []Vertex, origs []bool) ([]Vertex, []bool, []byte, error) {
	rest, err := WalkAdjSetBytes(data, owner, func(v Vertex, orig bool) bool {
		keys = append(keys, v)
		origs = append(origs, orig)
		return true
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return keys, origs, rest, nil
}

// AdjSetBytesLen reads the entry count of one encoded adjacency list
// without decoding its entries — the tiered store's Len fast path over a
// base-segment slice.
func AdjSetBytesLen(data []byte) (int, error) {
	cnt, n := binary.Uvarint(data)
	if n <= 0 || cnt > uint64(maxVertices) {
		return 0, fmt.Errorf("graph: corrupt adjacency count")
	}
	return int(cnt), nil
}

// WalkAdjSetBytes walks one encoded adjacency list in place, calling fn
// for each (key, original) entry in ascending order; fn returning false
// stops the walk early (the remaining entries are still validated and
// skipped). It returns the bytes following the list. This is the
// streaming read path over the tiered store's mmap'd base segments —
// nothing is materialized.
func WalkAdjSetBytes(data []byte, owner Vertex, fn func(v Vertex, orig bool) bool) ([]byte, error) {
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("graph: truncated adjacency count for vertex %d", owner)
	}
	data = data[n:]
	prev := owner
	walking := true
	for i := uint64(0); i < cnt; i++ {
		g, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("graph: truncated adjacency entry %d of vertex %d", i, owner)
		}
		data = data[n:]
		gap := g >> 1
		if gap < 1 {
			return nil, fmt.Errorf("graph: non-ascending adjacency entry %d of vertex %d", i, owner)
		}
		if gap > uint64(maxVertices) || int64(prev)+int64(gap) > int64(maxVertices) {
			return nil, fmt.Errorf("graph: adjacency entry %d of vertex %d escapes the vertex range", i, owner)
		}
		prev += Vertex(gap)
		if walking {
			walking = fn(prev, g&1 == 1)
		}
	}
	return data, nil
}
