package graph

import (
	"encoding/binary"
	"fmt"
)

// Compact adjacency serialization for checkpoints: one reduced adjacency
// list is encoded as a uvarint entry count followed by one uvarint per
// entry, (gap << 1) | originalFlag, where gap is the key's distance from
// its predecessor (the owner vertex for the first entry). Reduced
// adjacencies hold strictly ascending neighbours > owner, so every gap
// is >= 1 and small keys cost one byte; a partition round-trips in a
// fraction of the 9-byte-per-edge wire records. Treap priorities are
// deliberately NOT encoded: uniform edge selection goes through
// key-order statistics (Fenwick prefix + Kth), so priorities shape only
// the treap's internal form, and a restore may draw fresh ones.

// AppendAdjSet appends the encoding of s (owned by owner) to buf and
// returns the extended slice.
func (s *AdjSet) AppendAdjSet(buf []byte, owner Vertex) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	prev := owner
	s.Walk(func(v Vertex, orig bool) bool {
		gap := uint64(v-prev) << 1
		if orig {
			gap |= 1
		}
		buf = binary.AppendUvarint(buf, gap)
		prev = v
		return true
	})
	return buf
}

// DecodeAdjSet decodes one adjacency list encoded by AppendAdjSet from
// the front of data, appending the keys and original flags to the given
// scratch slices (pass them back in across slots to amortize growth).
// It returns the filled slices and the remaining bytes.
func DecodeAdjSet(data []byte, owner Vertex, keys []Vertex, origs []bool) ([]Vertex, []bool, []byte, error) {
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, nil, fmt.Errorf("graph: truncated adjacency count for vertex %d", owner)
	}
	data = data[n:]
	prev := owner
	for i := uint64(0); i < cnt; i++ {
		g, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("graph: truncated adjacency entry %d of vertex %d", i, owner)
		}
		data = data[n:]
		gap := Vertex(g >> 1)
		if gap < 1 {
			return nil, nil, nil, fmt.Errorf("graph: non-ascending adjacency entry %d of vertex %d", i, owner)
		}
		prev += gap
		keys = append(keys, prev)
		origs = append(origs, g&1 == 1)
	}
	return keys, origs, data, nil
}
