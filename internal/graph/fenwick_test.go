package graph

import (
	"testing"
	"testing/quick"

	"edgeswitch/internal/rng"
)

func TestFenwickBasic(t *testing.T) {
	f := NewFenwick(5)
	if f.Len() != 5 || f.Total() != 0 {
		t.Fatal("new fenwick wrong shape")
	}
	f.Add(0, 3)
	f.Add(2, 5)
	f.Add(4, 1)
	if f.Total() != 9 {
		t.Fatalf("total %d want 9", f.Total())
	}
	wantPrefix := []int64{3, 3, 8, 8, 9}
	for i, w := range wantPrefix {
		if got := f.PrefixSum(i); got != w {
			t.Fatalf("PrefixSum(%d) = %d, want %d", i, got, w)
		}
	}
	if f.Get(2) != 5 || f.Get(1) != 0 {
		t.Fatal("Get wrong")
	}
	f.Add(2, -5)
	if f.Total() != 4 || f.Get(2) != 0 {
		t.Fatal("negative delta not applied")
	}
}

func TestFenwickFindByPrefix(t *testing.T) {
	f := NewFenwick(4)
	weights := []int64{2, 0, 3, 1}
	for i, w := range weights {
		f.Add(i, w)
	}
	// Cumulative: [0,2) -> slot0, [2,5) -> slot2, [5,6) -> slot3.
	cases := []struct {
		target int64
		slot   int
		offset int64
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 2, 0}, {3, 2, 1}, {4, 2, 2}, {5, 3, 0},
	}
	for _, c := range cases {
		slot, off := f.FindByPrefix(c.target)
		if slot != c.slot || off != c.offset {
			t.Fatalf("FindByPrefix(%d) = (%d,%d), want (%d,%d)", c.target, slot, off, c.slot, c.offset)
		}
	}
}

func TestFenwickFindByPrefixPanics(t *testing.T) {
	f := NewFenwick(3)
	f.Add(0, 1)
	for _, target := range []int64{-1, 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for target %d", target)
				}
			}()
			f.FindByPrefix(target)
		}()
	}
}

// TestFenwickAgainstNaive drives the tree with random updates and checks
// prefix sums and FindByPrefix against a plain slice.
func TestFenwickAgainstNaive(t *testing.T) {
	r := rng.New(1)
	const n = 128
	f := NewFenwick(n)
	ref := make([]int64, n)
	for step := 0; step < 5000; step++ {
		i := r.Intn(n)
		delta := r.Int64n(7) - ref[i]%3 // mixed sign but keep weights >= 0
		if ref[i]+delta < 0 {
			delta = -ref[i]
		}
		f.Add(i, delta)
		ref[i] += delta

		// Spot-check a random prefix.
		j := r.Intn(n)
		var want int64
		for k := 0; k <= j; k++ {
			want += ref[k]
		}
		if got := f.PrefixSum(j); got != want {
			t.Fatalf("step %d: PrefixSum(%d) = %d, want %d", step, j, got, want)
		}

		// Spot-check FindByPrefix if non-empty.
		if f.Total() > 0 {
			target := r.Int64n(f.Total())
			slot, off := f.FindByPrefix(target)
			var cum int64
			wantSlot := -1
			var wantOff int64
			for k := 0; k < n; k++ {
				if target < cum+ref[k] {
					wantSlot, wantOff = k, target-cum
					break
				}
				cum += ref[k]
			}
			if slot != wantSlot || off != wantOff {
				t.Fatalf("step %d: FindByPrefix(%d) = (%d,%d), want (%d,%d)",
					step, target, slot, off, wantSlot, wantOff)
			}
		}
	}
}

// TestFenwickNonPowerOfTwoSizes checks FindByPrefix across awkward sizes.
func TestFenwickNonPowerOfTwoSizes(t *testing.T) {
	f := func(sizeRaw uint8, seed uint64) bool {
		n := int(sizeRaw%60) + 1
		r := rng.New(seed)
		fw := NewFenwick(n)
		ref := make([]int64, n)
		for i := 0; i < n; i++ {
			w := r.Int64n(4)
			fw.Add(i, w)
			ref[i] = w
		}
		if fw.Total() == 0 {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			target := r.Int64n(fw.Total())
			slot, off := fw.FindByPrefix(target)
			var cum int64
			for k := 0; k < slot; k++ {
				cum += ref[k]
			}
			if target != cum+off || off >= ref[slot] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFenwickAdd(b *testing.B) {
	f := NewFenwick(1 << 20)
	for i := 0; i < b.N; i++ {
		f.Add(i&(1<<20-1), 1)
	}
}

func BenchmarkFenwickFindByPrefix(b *testing.B) {
	r := rng.New(2)
	const n = 1 << 20
	f := NewFenwick(n)
	for i := 0; i < n; i++ {
		f.Add(i, int64(r.Intn(20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FindByPrefix(r.Int64n(f.Total()))
	}
}
