// Package gen generates the input graphs of the paper's evaluation
// (Table 2). The random models — Erdős–Rényi, Watts–Strogatz small world,
// preferential attachment — follow the cited constructions directly. The
// proprietary datasets (the Miami/New York/Los Angeles synthetic contact
// networks and the Flickr/LiveJournal crawls) are replaced by synthetic
// stand-ins that reproduce the structural properties the evaluation
// depends on: high clustering with label-community correlation for the
// contact networks, and heavy-tailed degrees with triadic clustering for
// the online social networks (see DESIGN.md §2).
//
// All generators produce simple graphs (no loops or parallel edges) and
// are deterministic functions of the supplied RNG.
package gen

import (
	"fmt"
	"sort"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// ErdosRenyi samples G(n, m): m distinct edges chosen uniformly among the
// n(n-1)/2 possible. It fails if m exceeds the number of possible edges.
func ErdosRenyi(r *rng.RNG, n int, m int64) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative n")
	}
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		return nil, fmt.Errorf("gen: m=%d exceeds max %d for n=%d", m, maxM, n)
	}
	g := graph.New(n)
	for g.M() < m {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(graph.Edge{U: u, V: v}, r) // duplicate adds are no-ops
	}
	return g, nil
}

// SmallWorld builds a Watts–Strogatz graph: a ring lattice where each
// vertex connects to its k/2 nearest neighbours on each side, with every
// edge rewired to a uniform random endpoint with probability beta
// (rewirings that would create loops or parallel edges are skipped, as in
// the standard construction). k must be even and < n.
func SmallWorld(r *rng.RNG, n, k int, beta float64) (*graph.Graph, error) {
	if k%2 != 0 || k < 0 || k >= n {
		return nil, fmt.Errorf("gen: SmallWorld requires even k in [0, n), got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: SmallWorld beta %v out of [0,1]", beta)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			g.AddEdge(graph.Edge{U: graph.Vertex(u), V: graph.Vertex((u + j) % n)}, r)
		}
	}
	// Rewire pass.
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			if r.Float64() >= beta {
				continue
			}
			oldV := graph.Vertex((u + j) % n)
			old := graph.Edge{U: graph.Vertex(u), V: oldV}
			if !g.HasEdge(old) {
				continue // already rewired away by the other endpoint
			}
			// A few attempts to find a valid new endpoint; skip on failure.
			for attempt := 0; attempt < 16; attempt++ {
				w := graph.Vertex(r.Intn(n))
				cand := graph.Edge{U: graph.Vertex(u), V: w}
				if cand.IsLoop() || g.HasEdge(cand) {
					continue
				}
				g.RemoveEdge(old)
				g.AddEdge(cand, r)
				break
			}
		}
	}
	return g, nil
}

// PrefAttachment builds a Barabási–Albert preferential-attachment graph:
// starting from a (d+1)-clique, each new vertex attaches to d distinct
// existing vertices chosen proportionally to degree. Average degree
// approaches 2d. It requires n > d >= 1.
func PrefAttachment(r *rng.RNG, n, d int) (*graph.Graph, error) {
	return prefAttachment(r, n, d, 0)
}

// HolmeKim builds a preferential-attachment graph with triad formation:
// after each preferential attachment, with probability pt the next link
// of the same new vertex closes a triangle with a random neighbour of the
// previous target (Holme & Kim 2002). This keeps the heavy-tailed degree
// distribution of PA while adding the clustering that online social
// networks such as Flickr and LiveJournal exhibit.
func HolmeKim(r *rng.RNG, n, d int, pt float64) (*graph.Graph, error) {
	if pt < 0 || pt > 1 {
		return nil, fmt.Errorf("gen: HolmeKim pt %v out of [0,1]", pt)
	}
	return prefAttachment(r, n, d, pt)
}

func prefAttachment(r *rng.RNG, n, d int, pt float64) (*graph.Graph, error) {
	if d < 1 || n <= d {
		return nil, fmt.Errorf("gen: preferential attachment requires n > d >= 1, got n=%d d=%d", n, d)
	}
	g := graph.New(n)
	// targets holds one entry per edge endpoint; sampling uniformly from
	// it is sampling vertices proportionally to degree. nbrs mirrors the
	// full adjacency so triad formation can draw a uniform neighbour in
	// O(1) (the reduced lists in g cannot answer that cheaply).
	targets := make([]graph.Vertex, 0, 2*int64(n)*int64(d))
	nbrs := make([][]graph.Vertex, n)
	link := func(u, v graph.Vertex) {
		g.AddEdge(graph.Edge{U: u, V: v}, r)
		targets = append(targets, u, v)
		nbrs[u] = append(nbrs[u], v)
		nbrs[v] = append(nbrs[v], u)
	}
	seed := d + 1
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			link(graph.Vertex(u), graph.Vertex(v))
		}
	}
	for u := seed; u < n; u++ {
		added := 0
		var prev graph.Vertex = -1
		for added < d {
			var w graph.Vertex = -1
			if prev >= 0 && pt > 0 && r.Float64() < pt {
				// Triad formation: a uniform neighbour of prev.
				if nb := nbrs[prev]; len(nb) > 0 {
					w = nb[r.Intn(len(nb))]
				}
			}
			if w < 0 {
				w = targets[r.Intn(len(targets))]
			}
			e := graph.Edge{U: graph.Vertex(u), V: w}
			if e.IsLoop() || g.HasEdge(e) {
				prev = -1 // fall back to pure PA next draw
				continue
			}
			link(graph.Vertex(u), w)
			added++
			prev = w
		}
	}
	return g, nil
}

// ContactConfig parameterises the synthetic social-contact network used
// as the Miami/New York/Los Angeles stand-in.
type ContactConfig struct {
	N             int     // number of vertices (people)
	AvgDegree     float64 // target average degree (Table 2: ~50-58)
	CommunitySize int     // mean community (household/location) size
	WithinFrac    float64 // fraction of edge endpoints kept inside the community
}

// Contact builds a community-structured contact network: vertices are
// grouped into consecutive-label communities (sizes uniform in
// [CommunitySize/2, 3·CommunitySize/2]); each vertex receives
// AvgDegree/2 edge slots, a WithinFrac share of which connect inside the
// community and the rest to uniform random vertices. Consecutive labels
// within communities give the graph the high clustering and
// label-locality that make CP partitioning develop workload skew on the
// Miami graph (§5.2).
func Contact(r *rng.RNG, cfg ContactConfig) (*graph.Graph, error) {
	if cfg.N <= 2 {
		return nil, fmt.Errorf("gen: Contact needs N > 2, got %d", cfg.N)
	}
	if cfg.AvgDegree <= 0 || cfg.AvgDegree >= float64(cfg.N-1) {
		return nil, fmt.Errorf("gen: Contact average degree %v infeasible for N=%d", cfg.AvgDegree, cfg.N)
	}
	if cfg.CommunitySize < 2 {
		return nil, fmt.Errorf("gen: Contact community size must be >= 2")
	}
	if cfg.WithinFrac < 0 || cfg.WithinFrac > 1 {
		return nil, fmt.Errorf("gen: Contact WithinFrac %v out of [0,1]", cfg.WithinFrac)
	}
	g := graph.New(cfg.N)
	// Carve communities of consecutive labels.
	type comm struct{ lo, hi int } // [lo, hi)
	var comms []comm
	for lo := 0; lo < cfg.N; {
		sz := cfg.CommunitySize/2 + r.Intn(cfg.CommunitySize+1)
		if sz < 2 {
			sz = 2
		}
		hi := lo + sz
		if hi > cfg.N {
			hi = cfg.N
		}
		comms = append(comms, comm{lo, hi})
		lo = hi
	}
	commOf := make([]int, cfg.N)
	for ci, c := range comms {
		for v := c.lo; v < c.hi; v++ {
			commOf[v] = ci
		}
	}
	targetM := int64(cfg.AvgDegree * float64(cfg.N) / 2)
	// Capacity of the intra-community edge space; if the budget nears it
	// the loop below bails out and the remainder becomes cross edges.
	var withinCapacity int64
	for _, c := range comms {
		sz := int64(c.hi - c.lo)
		withinCapacity += sz * (sz - 1) / 2
	}
	// Within-community edges first: dense random pairs inside each
	// community, budgeted by WithinFrac.
	withinBudget := int64(float64(targetM) * cfg.WithinFrac)
	for g.M() < withinBudget && g.M()*5 < withinCapacity*4 {
		c := comms[r.Intn(len(comms))]
		sz := c.hi - c.lo
		if sz < 2 {
			continue
		}
		u := graph.Vertex(c.lo + r.Intn(sz))
		v := graph.Vertex(c.lo + r.Intn(sz))
		if u == v {
			continue
		}
		g.AddEdge(graph.Edge{U: u, V: v}, r)
	}
	// Cross edges fill the remainder. The community-distinctness filter
	// is dropped when there is a single community (tiny configurations).
	requireCross := len(comms) > 1
	attempts := int64(0)
	maxAttempts := 200*targetM + 1000
	for g.M() < targetM {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("gen: Contact could not place %d edges (placed %d); configuration too dense", targetM, g.M())
		}
		u := graph.Vertex(r.Intn(cfg.N))
		v := graph.Vertex(r.Intn(cfg.N))
		if u == v || (requireCross && commOf[u] == commOf[v]) {
			continue
		}
		g.AddEdge(graph.Edge{U: u, V: v}, r)
	}
	return g, nil
}

// RMAT samples m distinct edges from the recursive-matrix (R-MAT /
// Kronecker-like) distribution on 2^scale vertices: each edge descends
// the adjacency matrix quadrants with probabilities (a, b, c, d),
// a+b+c+d=1. The standard Graph500-style parameters (0.57, 0.19, 0.19,
// 0.05) give skewed, community-free power-law-ish graphs common in HPC
// graph benchmarking. Loops and duplicates are resampled.
func RMAT(r *rng.RNG, scale int, m int64, a, b, c float64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of [1,30]", scale)
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < -1e-12 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v,%v,%v) invalid", a, b, c)
	}
	n := 1 << scale
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		return nil, fmt.Errorf("gen: m=%d exceeds max %d for scale %d", m, maxM, scale)
	}
	g := graph.New(n)
	attempts := int64(0)
	maxAttempts := 100*m + 1000
	for g.M() < m {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("gen: RMAT could not place %d edges (placed %d)", m, g.M())
		}
		var u, v int
		for level := 0; level < scale; level++ {
			x := r.Float64()
			switch {
			case x < a: // top-left
			case x < a+b: // top-right
				v |= 1 << level
			case x < a+b+c: // bottom-left
				u |= 1 << level
			default: // bottom-right
				u |= 1 << level
				v |= 1 << level
			}
		}
		e := graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)}
		if e.IsLoop() {
			continue
		}
		g.AddEdge(e, r)
	}
	return g, nil
}

// DegreeSequence returns the (full) degree of every vertex.
func DegreeSequence(g *graph.Graph) []int { return g.Degrees() }

// IsGraphical applies the Erdős–Gallai criterion to decide whether a
// degree sequence can be realized by a simple graph.
func IsGraphical(degrees []int) bool {
	ds := append([]int(nil), degrees...)
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	var sum int64
	for _, d := range ds {
		if d < 0 || d >= len(ds) {
			return false
		}
		sum += int64(d)
	}
	if sum%2 != 0 {
		return false
	}
	// Prefix sums for the right-hand side of the inequality.
	var lhs int64
	for k := 1; k <= len(ds); k++ {
		lhs += int64(ds[k-1])
		rhs := int64(k) * int64(k-1)
		for _, d := range ds[k:] {
			if d < k {
				rhs += int64(d)
			} else {
				rhs += int64(k)
			}
		}
		if lhs > rhs {
			return false
		}
	}
	return true
}

// HavelHakimi constructs a simple graph realizing the degree sequence, or
// fails if the sequence is not graphical. Vertex i receives degrees[i].
// This is the deterministic construction edge switching is paired with to
// generate *random* graphs with a given degree sequence (§1).
func HavelHakimi(r *rng.RNG, degrees []int) (*graph.Graph, error) {
	n := len(degrees)
	g := graph.New(n)
	type vd struct {
		v graph.Vertex
		d int
	}
	rem := make([]vd, n)
	for i, d := range degrees {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("gen: degree %d of vertex %d out of range", d, i)
		}
		rem[i] = vd{graph.Vertex(i), d}
	}
	for {
		// Select the vertex with the largest remaining degree.
		sort.Slice(rem, func(i, j int) bool { return rem[i].d > rem[j].d })
		if rem[0].d == 0 {
			break
		}
		head := rem[0]
		rem = rem[1:]
		if head.d > len(rem) {
			return nil, fmt.Errorf("gen: degree sequence not graphical")
		}
		for i := 0; i < head.d; i++ {
			if rem[i].d == 0 {
				return nil, fmt.Errorf("gen: degree sequence not graphical")
			}
			g.AddEdge(graph.Edge{U: head.v, V: rem[i].v}, r)
			rem[i].d--
		}
	}
	return g, nil
}

// AdversarialRelabel returns a copy of g with vertex labels permuted so
// that under HP-D with p ranks the hot rank owns the n/p highest-degree
// vertices: those vertices receive labels ≡ hotRank (mod p). This is the
// worst-case construction of §5.2 (Figs. 21–22).
func AdversarialRelabel(r *rng.RNG, g *graph.Graph, p, hotRank int) (*graph.Graph, error) {
	if p <= 1 || hotRank < 0 || hotRank >= p {
		return nil, fmt.Errorf("gen: bad AdversarialRelabel params p=%d hotRank=%d", p, hotRank)
	}
	n := g.N()
	deg := g.Degrees()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return deg[order[i]] > deg[order[j]] })

	// Labels owned by the hot rank, ascending: hotRank, hotRank+p, ...
	newLabel := make([]graph.Vertex, n)
	hot := make([]graph.Vertex, 0, n/p+1)
	rest := make([]graph.Vertex, 0, n)
	for l := 0; l < n; l++ {
		if l%p == hotRank {
			hot = append(hot, graph.Vertex(l))
		} else {
			rest = append(rest, graph.Vertex(l))
		}
	}
	for i, old := range order {
		if i < len(hot) {
			newLabel[old] = hot[i]
		} else {
			newLabel[old] = rest[i-len(hot)]
		}
	}
	edges := g.Edges()
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: newLabel[e.U], V: newLabel[e.V]}
	}
	return graph.FromEdges(n, out, r)
}

// ShuffleLabels returns a copy of g with labels permuted uniformly at
// random — used to decouple labels from structure.
func ShuffleLabels(r *rng.RNG, g *graph.Graph) (*graph.Graph, error) {
	perm := r.Perm(g.N())
	edges := g.Edges()
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: graph.Vertex(perm[e.U]), V: graph.Vertex(perm[e.V])}
	}
	return graph.FromEdges(g.N(), out, r)
}
