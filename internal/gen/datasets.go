package gen

import (
	"fmt"
	"sort"
	"strings"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// DatasetSpec describes one Table 2 dataset stand-in. BaseN and AvgDeg
// mirror the paper's shape at a reduced default scale; Build constructs
// the graph at an arbitrary vertex count.
type DatasetSpec struct {
	Name    string  // paper's dataset name (lower-cased key)
	Kind    string  // paper's "type of network" column
	BaseN   int     // default vertex count (scale = 1.0)
	AvgDeg  float64 // target average degree (paper's Table 2 value)
	PaperN  string  // paper's vertex count, for documentation output
	PaperM  string  // paper's edge count, for documentation output
	Build   func(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error)
	Default bool // included in "the eight graphs" scaling experiments
}

// datasetRegistry lists the stand-ins for every Table 2 dataset. Default
// scales put each graph in the hundreds of thousands of edges so the full
// eight-graph experiments run on one machine; pass a larger scale to
// cmd/experiments to grow them.
var datasetRegistry = []DatasetSpec{
	{
		Name: "miami", Kind: "Social Contact", BaseN: 21000, AvgDeg: 50.4,
		PaperN: "2.1M", PaperM: "52.7M", Default: true,
		Build: buildContact,
	},
	{
		Name: "newyork", Kind: "Social Contact", BaseN: 50000, AvgDeg: 57.6,
		PaperN: "20.38M", PaperM: "587.3M", Default: true,
		Build: buildContact,
	},
	{
		Name: "losangeles", Kind: "Social Contact", BaseN: 40000, AvgDeg: 58.7,
		PaperN: "16.33M", PaperM: "479.4M", Default: true,
		Build: buildContact,
	},
	{
		Name: "flickr", Kind: "Online Community", BaseN: 23000, AvgDeg: 19.8,
		PaperN: "2.3M", PaperM: "22.8M", Default: true,
		Build: buildSocial,
	},
	{
		Name: "livejournal", Kind: "Social", BaseN: 48000, AvgDeg: 17.8,
		PaperN: "4.8M", PaperM: "42.8M", Default: true,
		Build: buildSocial,
	},
	{
		Name: "smallworld", Kind: "Random", BaseN: 48000, AvgDeg: 20,
		PaperN: "4.8M", PaperM: "48M", Default: true,
		Build: func(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error) {
			return SmallWorld(r, n, int(avgDeg), 0.1)
		},
	},
	{
		Name: "erdosrenyi", Kind: "Erdős-Rényi Random", BaseN: 48000, AvgDeg: 20,
		PaperN: "4.8M", PaperM: "48M", Default: true,
		Build: func(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error) {
			return ErdosRenyi(r, n, int64(avgDeg*float64(n)/2))
		},
	},
	{
		Name: "pa", Kind: "Pref. Attachment", BaseN: 100000, AvgDeg: 20,
		PaperN: "100M (PA-100M) / 1B (PA-1B)", PaperM: "1B / 10B", Default: true,
		Build: func(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error) {
			return PrefAttachment(r, n, int(avgDeg/2))
		},
	},
}

func buildContact(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error) {
	return Contact(r, ContactConfig{
		N:             n,
		AvgDegree:     avgDeg,
		CommunitySize: 40,
		WithinFrac:    0.8,
	})
}

func buildSocial(r *rng.RNG, n int, avgDeg float64) (*graph.Graph, error) {
	d := int(avgDeg / 2)
	if d < 1 {
		d = 1
	}
	g, err := HolmeKim(r, n, d, 0.4)
	if err != nil {
		return nil, err
	}
	// Crawled social graphs have no particular label-community
	// correlation; shuffle labels so schemes are compared fairly.
	return ShuffleLabels(r, g)
}

// DatasetNames lists the registry keys in a stable order.
func DatasetNames() []string {
	names := make([]string, len(datasetRegistry))
	for i, s := range datasetRegistry {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// LookupDataset returns the spec for name (case-insensitive).
func LookupDataset(name string) (DatasetSpec, error) {
	key := strings.ToLower(name)
	for _, s := range datasetRegistry {
		if s.Name == key {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, DatasetNames())
}

// Dataset builds the named stand-in at the given scale (scale multiplies
// the default vertex count; scale <= 0 means 1).
func Dataset(r *rng.RNG, name string, scale float64) (*graph.Graph, error) {
	spec, err := LookupDataset(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(spec.BaseN) * scale)
	if n < 16 {
		n = 16
	}
	return spec.Build(r, n, spec.AvgDeg)
}

// DefaultDatasets returns the eight stand-ins used by the strong-scaling
// experiments, at the given scale.
func DefaultDatasets() []DatasetSpec {
	var out []DatasetSpec
	for _, s := range datasetRegistry {
		if s.Default {
			out = append(out, s)
		}
	}
	return out
}
