package gen

import (
	"math"
	"testing"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func TestErdosRenyiShape(t *testing.T) {
	r := rng.New(1)
	g, err := ErdosRenyi(r, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 || g.M() != 5000 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDense(t *testing.T) {
	r := rng.New(2)
	// Complete graph on 20 vertices.
	g, err := ErdosRenyi(r, 20, 190)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 190 {
		t.Fatalf("m=%d", g.M())
	}
	if _, err := ErdosRenyi(r, 20, 191); err == nil {
		t.Fatal("overfull m accepted")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	g1, _ := ErdosRenyi(rng.New(7), 200, 800)
	g2, _ := ErdosRenyi(rng.New(7), 200, 800)
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestSmallWorldShape(t *testing.T) {
	r := rng.New(3)
	g, err := SmallWorld(r, 1000, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("n=%d", g.N())
	}
	// Ring lattice has exactly n*k/2 edges; rewiring preserves or
	// slightly reduces the count (skipped rewires never remove edges).
	if g.M() != 5000 {
		t.Fatalf("m=%d, want 5000", g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldValidation(t *testing.T) {
	r := rng.New(4)
	if _, err := SmallWorld(r, 10, 3, 0.1); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := SmallWorld(r, 10, 10, 0.1); err == nil {
		t.Fatal("k >= n accepted")
	}
	if _, err := SmallWorld(r, 10, 4, 1.5); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestSmallWorldBetaZeroIsLattice(t *testing.T) {
	r := rng.New(5)
	g, err := SmallWorld(r, 50, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		for j := 1; j <= 2; j++ {
			if !g.HasEdge(graph.Edge{U: graph.Vertex(u), V: graph.Vertex((u + j) % 50)}) {
				t.Fatalf("lattice edge (%d,%d) missing", u, (u+j)%50)
			}
		}
	}
}

func TestPrefAttachmentShape(t *testing.T) {
	r := rng.New(6)
	g, err := PrefAttachment(r, 2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	// Seed clique d+1 gives d(d+1)/2 edges; every later vertex adds d.
	want := int64(10*11/2 + (2000-11)*10)
	if g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	// Minimum degree is d.
	for _, d := range g.Degrees() {
		if d < 10 {
			t.Fatalf("degree %d below d", d)
		}
	}
}

func TestPrefAttachmentHeavyTail(t *testing.T) {
	r := rng.New(7)
	g, err := PrefAttachment(r, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	degs := g.Degrees()
	maxDeg := 0
	for _, d := range degs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if float64(maxDeg) < 8*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", maxDeg, avg)
	}
}

func TestPrefAttachmentValidation(t *testing.T) {
	r := rng.New(8)
	if _, err := PrefAttachment(r, 5, 5); err == nil {
		t.Fatal("n <= d accepted")
	}
	if _, err := PrefAttachment(r, 5, 0); err == nil {
		t.Fatal("d < 1 accepted")
	}
}

func TestHolmeKimClustering(t *testing.T) {
	r := rng.New(9)
	plain, err := PrefAttachment(r, 3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	hk, err := HolmeKim(rng.New(9), 3000, 5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if err := hk.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	cPlain := roughClustering(plain)
	cHK := roughClustering(hk)
	if cHK < 2*cPlain {
		t.Fatalf("triad formation did not raise clustering: plain %f, hk %f", cPlain, cHK)
	}
}

func TestHolmeKimValidation(t *testing.T) {
	if _, err := HolmeKim(rng.New(1), 100, 3, 1.4); err == nil {
		t.Fatal("pt > 1 accepted")
	}
}

// roughClustering computes the global clustering (transitivity) over a
// sample of vertices — enough for monotone comparisons in tests.
func roughClustering(g *graph.Graph) float64 {
	full := g.FullAdjacency()
	var tri, wedges float64
	for u := range full {
		nb := full[u]
		if len(nb) < 2 {
			continue
		}
		limit := len(nb)
		if limit > 50 {
			limit = 50
		}
		for i := 0; i < limit; i++ {
			for j := i + 1; j < limit; j++ {
				wedges++
				if g.HasEdge(graph.Edge{U: nb[i], V: nb[j]}) {
					tri++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	return tri / wedges
}

func TestContactShapeAndClustering(t *testing.T) {
	r := rng.New(10)
	g, err := Contact(r, ContactConfig{N: 5000, AvgDegree: 30, CommunitySize: 40, WithinFrac: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5000 {
		t.Fatalf("n=%d", g.N())
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if math.Abs(avg-30) > 1.5 {
		t.Fatalf("average degree %f, want ~30", avg)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	// Community structure must yield visible clustering versus ER.
	er, err := ErdosRenyi(rng.New(10), 5000, g.M())
	if err != nil {
		t.Fatal(err)
	}
	if c, ce := roughClustering(g), roughClustering(er); c < 5*ce {
		t.Fatalf("contact clustering %f not far above ER %f", c, ce)
	}
}

func TestContactValidation(t *testing.T) {
	r := rng.New(11)
	bad := []ContactConfig{
		{N: 2, AvgDegree: 1, CommunitySize: 4, WithinFrac: 0.5},
		{N: 100, AvgDegree: 0, CommunitySize: 4, WithinFrac: 0.5},
		{N: 100, AvgDegree: 200, CommunitySize: 4, WithinFrac: 0.5},
		{N: 100, AvgDegree: 10, CommunitySize: 1, WithinFrac: 0.5},
		{N: 100, AvgDegree: 10, CommunitySize: 4, WithinFrac: 1.5},
	}
	for _, cfg := range bad {
		if _, err := Contact(r, cfg); err == nil {
			t.Fatalf("bad config %+v accepted", cfg)
		}
	}
}

func TestIsGraphical(t *testing.T) {
	cases := []struct {
		ds   []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1}, false},          // odd sum
		{[]int{1, 1}, true},        // single edge
		{[]int{2, 2, 2}, true},     // triangle
		{[]int{3, 3, 3, 3}, true},  // K4
		{[]int{4, 1, 1, 1}, false}, // degree exceeds n-1... (4 > 3)
		{[]int{3, 1, 1, 1}, true},  // star
		{[]int{3, 3, 1, 1}, false}, // fails Erdős–Gallai
		{[]int{2, 2, 1, 1}, true},  // path
	}
	for _, c := range cases {
		if got := IsGraphical(c.ds); got != c.want {
			t.Fatalf("IsGraphical(%v) = %v, want %v", c.ds, got, c.want)
		}
	}
}

func TestHavelHakimiRealizesSequence(t *testing.T) {
	r := rng.New(12)
	seqs := [][]int{
		{2, 2, 2},
		{3, 3, 3, 3},
		{3, 1, 1, 1},
		{2, 2, 1, 1},
		{5, 4, 4, 3, 3, 2, 2, 1},
	}
	for _, ds := range seqs {
		g, err := HavelHakimi(r, ds)
		if err != nil {
			t.Fatalf("HavelHakimi(%v): %v", ds, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		got := g.Degrees()
		for i, d := range ds {
			if got[i] != d {
				t.Fatalf("sequence %v: vertex %d has degree %d", ds, i, got[i])
			}
		}
	}
}

func TestHavelHakimiRejectsNonGraphical(t *testing.T) {
	r := rng.New(13)
	for _, ds := range [][]int{{1}, {3, 3, 1, 1}, {4, 1, 1, 1, 1}} {
		if IsGraphical(ds) {
			continue // only test non-graphical inputs
		}
		if _, err := HavelHakimi(r, ds); err == nil {
			t.Fatalf("non-graphical %v accepted", ds)
		}
	}
}

func TestHavelHakimiMatchesGeneratedGraph(t *testing.T) {
	r := rng.New(14)
	g, err := PrefAttachment(r, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds := DegreeSequence(g)
	if !IsGraphical(ds) {
		t.Fatal("real graph's degree sequence reported non-graphical")
	}
	h, err := HavelHakimi(r, ds)
	if err != nil {
		t.Fatal(err)
	}
	hd := h.Degrees()
	for i := range ds {
		if hd[i] != ds[i] {
			t.Fatalf("vertex %d: degree %d, want %d", i, hd[i], ds[i])
		}
	}
}

func TestAdversarialRelabel(t *testing.T) {
	r := rng.New(15)
	g, err := PrefAttachment(r, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	const p, hot = 8, 3
	adv, err := AdversarialRelabel(r, g, p, hot)
	if err != nil {
		t.Fatal(err)
	}
	if adv.N() != g.N() || adv.M() != g.M() {
		t.Fatal("relabel changed graph size")
	}
	// Degree multiset preserved.
	if !sameMultiset(g.Degrees(), adv.Degrees()) {
		t.Fatal("relabel changed degree multiset")
	}
	// The hot rank (labels ≡ hot mod p) must own far more edge mass than
	// an average rank.
	degs := adv.Degrees()
	mass := make([]int64, p)
	for v, d := range degs {
		mass[v%p] += int64(d)
	}
	avgOther := int64(0)
	for k := 0; k < p; k++ {
		if k != hot {
			avgOther += mass[k]
		}
	}
	avgOther /= int64(p - 1)
	if mass[hot] < 2*avgOther {
		t.Fatalf("hot rank mass %d not dominant (others avg %d)", mass[hot], avgOther)
	}
}

func TestAdversarialRelabelValidation(t *testing.T) {
	r := rng.New(16)
	g, _ := ErdosRenyi(r, 50, 100)
	if _, err := AdversarialRelabel(r, g, 1, 0); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := AdversarialRelabel(r, g, 4, 4); err == nil {
		t.Fatal("hotRank out of range accepted")
	}
}

func TestShuffleLabelsPreservesStructure(t *testing.T) {
	r := rng.New(17)
	g, _ := ErdosRenyi(r, 300, 900)
	s, err := ShuffleLabels(r, g)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatal("shuffle changed size")
	}
	if !sameMultiset(g.Degrees(), s.Degrees()) {
		t.Fatal("shuffle changed degree multiset")
	}
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[int]int{}
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestRMATShape(t *testing.T) {
	r := rng.New(20)
	g, err := RMAT(r, 10, 5000, 0.57, 0.19, 0.19)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 || g.M() != 5000 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	// Skewed parameters concentrate mass on low labels: the max degree
	// must far exceed the average.
	st := 0
	for _, d := range g.Degrees() {
		if d > st {
			st = d
		}
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if float64(st) < 4*avg {
		t.Fatalf("R-MAT max degree %d not skewed (avg %.1f)", st, avg)
	}
}

func TestRMATUniformParamsActLikeER(t *testing.T) {
	r := rng.New(21)
	g, err := RMAT(r, 9, 2000, 0.25, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	st := 0
	for _, d := range g.Degrees() {
		if d > st {
			st = d
		}
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	// Uniform quadrants should not produce extreme hubs.
	if float64(st) > 6*avg {
		t.Fatalf("uniform R-MAT produced hub of degree %d (avg %.1f)", st, avg)
	}
}

func TestRMATValidation(t *testing.T) {
	r := rng.New(22)
	if _, err := RMAT(r, 0, 10, 0.5, 0.2, 0.2); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := RMAT(r, 40, 10, 0.5, 0.2, 0.2); err == nil {
		t.Fatal("scale 40 accepted")
	}
	if _, err := RMAT(r, 5, 10, 0.8, 0.2, 0.2); err == nil {
		t.Fatal("probabilities summing over 1 accepted")
	}
	if _, err := RMAT(r, 3, 1000, 0.25, 0.25, 0.25); err == nil {
		t.Fatal("overfull m accepted")
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(DatasetNames()) != 8 {
		t.Fatalf("expected 8 datasets, got %v", DatasetNames())
	}
	if _, err := LookupDataset("miami"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupDataset("MIAMI"); err != nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, err := LookupDataset("nonexistent"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if len(DefaultDatasets()) != 8 {
		t.Fatal("default dataset list wrong")
	}
}

func TestDatasetBuildSmall(t *testing.T) {
	for _, name := range DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := rng.New(100)
			g, err := Dataset(r, name, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() < 16 || g.M() == 0 {
				t.Fatalf("%s: n=%d m=%d", name, g.N(), g.M())
			}
			if err := g.CheckSimple(); err != nil {
				t.Fatal(err)
			}
			spec, _ := LookupDataset(name)
			avg := 2 * float64(g.M()) / float64(g.N())
			// Average degree should be in the ballpark of the spec
			// (generous tolerance: tiny scales distort PA cliques etc.)
			if avg < spec.AvgDeg/3 || avg > spec.AvgDeg*3 {
				t.Fatalf("%s: avg degree %f vs spec %f", name, avg, spec.AvgDeg)
			}
		})
	}
}

func BenchmarkPrefAttachment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		if _, err := PrefAttachment(r, 20000, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		if _, err := Contact(r, ContactConfig{N: 10000, AvgDegree: 30, CommunitySize: 40, WithinFrac: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}
