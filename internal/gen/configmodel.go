package gen

import (
	"fmt"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// ConfigModelResult reports what the configuration model produced.
type ConfigModelResult struct {
	// Graph is the generated simple graph.
	Graph *graph.Graph
	// ErasedLoops and ErasedParallel count the stub pairings that had to
	// be discarded to keep the graph simple. Non-zero counts mean the
	// realized degree sequence deviates from the requested one — the
	// deficiency of the configuration model that motivates Havel–Hakimi
	// plus edge switching (§1 of the paper).
	ErasedLoops, ErasedParallel int64
}

// ConfigurationModel is the classical stub-matching ("pairing") baseline
// the paper's introduction compares against: each vertex receives
// degree-many stubs, the stubs are paired uniformly at random, and —
// since the raw pairing produces self-loops and parallel edges unless
// degrees are very small — offending pairs are erased. The result is a
// simple graph whose degree sequence only *approximates* the request;
// the returned counters quantify the damage. The degree sum must be even.
func ConfigurationModel(r *rng.RNG, degrees []int) (*ConfigModelResult, error) {
	n := len(degrees)
	var stubs []graph.Vertex
	for v, d := range degrees {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("gen: degree %d of vertex %d out of range", d, v)
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.Vertex(v))
		}
	}
	if len(stubs)%2 != 0 {
		return nil, fmt.Errorf("gen: degree sum %d is odd", len(stubs))
	}
	// Uniform perfect matching on stubs = shuffle, then pair adjacent.
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	res := &ConfigModelResult{Graph: graph.New(n)}
	for i := 0; i+1 < len(stubs); i += 2 {
		e := graph.Edge{U: stubs[i], V: stubs[i+1]}
		if e.IsLoop() {
			res.ErasedLoops++
			continue
		}
		if !res.Graph.AddEdge(e, r) {
			res.ErasedParallel++
		}
	}
	return res, nil
}
