// Package pergen implements communication-free parallel graph
// generation by recomputation (Sanders & Schulz, arXiv:1602.07106).
//
// The sequential generators in internal/gen materialize the whole graph
// on one rank, which is then scattered to peers — so bootstrap time and
// rank-0 memory, not the switching engine, bound the job sizes the
// system can reach. pergen removes both: every random choice a
// generator makes is re-expressed as a pure function of a counter-based
// RNG stream (rng.Stream), so the step "read a previously generated
// value" becomes "recompute it from its counter". With that, any rank
// can resolve any edge of the graph in O(1) expected hash work, and a
// rank materializes exactly the edges its partition owns — no rank-0
// build, no scatter, no data exchange of any kind.
//
// Two generators are ported: preferential attachment (the recomputation
// trick proper: an endpoint drawn "proportional to degree" is a uniform
// position in the flat edge array, resolved by chasing recomputed draws
// until a deterministic entry is hit — expected chain length below 2)
// and the contact/community generator (communities are derived from the
// shared seed by every rank; within-community pairs become independent
// Bernoulli draws, cross-community slots resolve endpoints directly).
//
// The resulting graph is a pure function of Spec — in particular it is
// p-invariant: byte-identical for a given seed regardless of how many
// ranks generate it, which partitioning scheme routes ownership, or
// whether Full materializes it in one piece. Tests pin this at
// p = 1, 2, 8 across all partition schemes.
//
// Cost model: ownership of an edge follows its minimum endpoint (the
// engine's reduced-adjacency invariant), and for both models the
// minimum endpoint is only known after resolving the hash chain. Each
// rank therefore scans the full edge-index space — O(m) cheap stateless
// hashes, embarrassingly parallel and replicated — but materializes
// (treap-inserts, the dominant cost) only its own O(m/p) edges, and
// peak memory per rank drops from O(m) to O(m/p) + O(n) scan tables.
package pergen

import (
	"fmt"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

// Model names a pergen-capable generator.
type Model string

// The generators ported to counter-based recomputation.
const (
	// ModelPA is Barabási–Albert preferential attachment (the
	// counter-based counterpart of gen.PrefAttachment).
	ModelPA Model = "pa"
	// ModelContact is the community-structured contact network (the
	// counter-based counterpart of gen.Contact).
	ModelContact Model = "contact"
)

// Stream ids of the counter streams a Spec consumes; fixed constants so
// the generated graph is a stable function of (Model, params, Seed).
// Every stream is keyed by Spec.Seed, and no counter is ever reused
// within a stream.
const (
	streamPASlot  = 1 // PA slot draws: counter = global edge index
	streamPARetry = 2 // PA dedup retries: counter = edge index << 6 | attempt
	streamComm    = 3 // contact community sizes: counter = community index
	streamWithin  = 4 // contact within-pair Bernoulli: counter = global pair index
	streamCross   = 5 // contact cross endpoints: counter = slot << 6 | 2·attempt (+1)
	streamPrio    = 6 // treap priorities for locally built graphs
)

// maxResolveAttempts bounds the deterministic retry loops (PA slot
// dedup, contact cross-pair validity). Attempt counters share the low 6
// bits of a retry stream counter, so the bound must stay below 64. A
// slot that exhausts its attempts is dropped — a deterministic,
// p-invariant event with negligible probability on non-degenerate
// parameters.
const maxResolveAttempts = 62

// Spec describes one deterministically generated graph. The zero value
// is invalid; construct, then Validate (New validates).
type Spec struct {
	// Model selects the generator.
	Model Model
	// Seed keys every counter stream. The same Spec always denotes the
	// same graph.
	Seed uint64
	// N is the vertex count (both models).
	N int
	// D is preferential attachment's edges-per-vertex (ModelPA).
	D int
	// Contact parameterises ModelContact; its N field is ignored in
	// favour of Spec.N.
	Contact gen.ContactConfig
}

// Validate checks the parameters the same way the sequential
// generators do.
func (sp Spec) Validate() error {
	switch sp.Model {
	case ModelPA:
		if sp.D < 1 || sp.N <= sp.D {
			return fmt.Errorf("pergen: preferential attachment requires n > d >= 1, got n=%d d=%d", sp.N, sp.D)
		}
	case ModelContact:
		cc := sp.contactConfig()
		if cc.N <= 2 {
			return fmt.Errorf("pergen: Contact needs N > 2, got %d", cc.N)
		}
		if cc.AvgDegree <= 0 || cc.AvgDegree >= float64(cc.N-1) {
			return fmt.Errorf("pergen: Contact average degree %v infeasible for N=%d", cc.AvgDegree, cc.N)
		}
		if cc.CommunitySize < 2 {
			return fmt.Errorf("pergen: Contact community size must be >= 2")
		}
		if cc.WithinFrac < 0 || cc.WithinFrac > 1 {
			return fmt.Errorf("pergen: Contact WithinFrac %v out of [0,1]", cc.WithinFrac)
		}
	default:
		return fmt.Errorf("pergen: unknown model %q (have %q, %q)", sp.Model, ModelPA, ModelContact)
	}
	return nil
}

func (sp Spec) contactConfig() gen.ContactConfig {
	cc := sp.Contact
	cc.N = sp.N
	return cc
}

// MaxEdges returns a deterministic upper bound on the edge count —
// every rank of a job derives operation counts from it (the exact count
// emerges from the generation scan). For PA it is the clique plus one
// slot per (vertex, attachment); for contact it is the target edge
// count.
func (sp Spec) MaxEdges() int64 {
	switch sp.Model {
	case ModelPA:
		s := int64(sp.D) + 1
		return s*(s-1)/2 + (int64(sp.N)-s)*int64(sp.D)
	case ModelContact:
		cc := sp.contactConfig()
		return int64(cc.AvgDegree * float64(cc.N) / 2)
	}
	return 0
}

// Gen is a reusable generator instance: the per-model scan tables
// (clique pairs, community bounds) precomputed once, plus reusable
// scratch so the scan loops stay allocation-free.
type Gen struct {
	spec Spec
	pa   *paGen
	ct   *contactGen
}

// New validates sp and precomputes the scan tables.
func New(sp Spec) (*Gen, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	g := &Gen{spec: sp}
	switch sp.Model {
	case ModelPA:
		g.pa = newPAGen(sp)
	case ModelContact:
		g.ct = newContactGen(sp)
	}
	return g, nil
}

// Spec returns the generating spec.
func (g *Gen) Spec() Spec { return g.spec }

// N reports the vertex count.
func (g *Gen) N() int { return g.spec.N }

// Edges enumerates every edge of the graph in a fixed deterministic
// order, invoking fn with each edge in normalized (U < V) form. For
// ModelContact the enumeration may repeat an edge (two cross slots can
// resolve to the same pair — a birthday-rare event); consumers that
// need the graph's edge *set* deduplicate at the minimum endpoint,
// which is what Full and PartitionEdges do. ModelPA never repeats.
func (g *Gen) Edges(fn func(graph.Edge)) {
	if g.pa != nil {
		g.pa.edges(fn)
		return
	}
	g.ct.edges(fn)
}

// PartitionEdges enumerates, in the same deterministic order as Edges,
// exactly the edges owned by rank under pt — ownership follows the
// minimum endpoint, matching the engine's reduced-adjacency invariant.
// Duplicates (contact cross collisions) are still emitted; the caller's
// adjacency structure collapses them, and because both copies share the
// same minimum endpoint the collapse happens wholly inside one rank —
// the global edge set never depends on p.
func (g *Gen) PartitionEdges(pt partition.Partitioner, rank int, fn func(graph.Edge)) {
	owned := ownedFilter(pt, rank)
	g.Edges(func(e graph.Edge) {
		if owned(e.U) {
			fn(e)
		}
	})
}

// ownedFilter devirtualizes the per-edge ownership test: the filter runs
// once per generated edge per rank, so for CP the interface call plus
// boundary binary search collapse to a single range comparison, and for
// HP-D the division hash is inlined. Other schemes keep the generic
// call — their Owner is one hash.
func ownedFilter(pt partition.Partitioner, rank int) func(graph.Vertex) bool {
	switch p := pt.(type) {
	case *partition.CP:
		lo, hi := p.Range(rank)
		return func(v graph.Vertex) bool { return lo <= v && v < hi }
	case *partition.HPD:
		n := p.Parts()
		return func(v graph.Vertex) bool { return int(v)%n == rank }
	}
	return func(v graph.Vertex) bool { return pt.Owner(v) == rank }
}

// ReducedDegrees returns the per-vertex reduced degree (edges whose
// minimum endpoint is the vertex) of the enumerated edge multiset —
// exact for PA; for contact, duplicate cross slots are double-counted
// (a deterministic, p-independent approximation within a handful of
// edges, which is all the CP boundary sweep needs).
func (g *Gen) ReducedDegrees() []int32 {
	deg := make([]int32, g.spec.N)
	g.Edges(func(e graph.Edge) { deg[e.U]++ })
	return deg
}

// Full materializes the whole graph in one piece — the p = 1 bootstrap
// path, and the reference the p-invariance tests compare partitions
// against. The edge set is identical to the union of PartitionEdges
// over all ranks of any partitioner.
func (g *Gen) Full() (*graph.Graph, error) {
	out := graph.New(g.spec.N)
	prio := rng.NewStream(g.spec.Seed, streamPrio)
	var i uint64
	g.Edges(func(e graph.Edge) {
		out.InsertUnindexed(e, true, uint32(prio.At(i)>>32)) // duplicate cross slots collapse here
		i++
	})
	out.Reindex()
	return out, nil
}
