package pergen

import (
	"math"
	"sort"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

func paSpec(seed uint64) Spec {
	return Spec{Model: ModelPA, Seed: seed, N: 3000, D: 4}
}

func contactSpec(seed uint64) Spec {
	return Spec{Model: ModelContact, Seed: seed, N: 3000,
		Contact: gen.ContactConfig{AvgDegree: 8, CommunitySize: 25, WithinFrac: 0.7}}
}

func edgeSet(t *testing.T, g *Gen) map[graph.Edge]bool {
	t.Helper()
	set := make(map[graph.Edge]bool)
	g.Edges(func(e graph.Edge) {
		if e.U >= e.V {
			t.Fatalf("edge %v not normalized", e)
		}
		set[e] = true
	})
	return set
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Model: "rmat", N: 100, D: 2},
		{Model: ModelPA, N: 3, D: 3},
		{Model: ModelPA, N: 100, D: 0},
		{Model: ModelContact, N: 2},
		{Model: ModelContact, N: 100, Contact: gen.ContactConfig{AvgDegree: 0, CommunitySize: 10}},
		{Model: ModelContact, N: 100, Contact: gen.ContactConfig{AvgDegree: 8, CommunitySize: 1}},
		{Model: ModelContact, N: 100, Contact: gen.ContactConfig{AvgDegree: 8, CommunitySize: 10, WithinFrac: 1.5}},
	}
	for _, sp := range bad {
		if _, err := New(sp); err == nil {
			t.Errorf("New(%+v) accepted invalid spec", sp)
		}
	}
	for _, sp := range []Spec{paSpec(1), contactSpec(1)} {
		if _, err := New(sp); err != nil {
			t.Errorf("New(%+v): %v", sp, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, sp := range []Spec{paSpec(42), contactSpec(42)} {
		a, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		var ea, eb []graph.Edge
		a.Edges(func(e graph.Edge) { ea = append(ea, e) })
		b.Edges(func(e graph.Edge) { eb = append(eb, e) })
		if len(ea) != len(eb) {
			t.Fatalf("%s: edge counts differ: %d vs %d", sp.Model, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", sp.Model, i, ea[i], eb[i])
			}
		}
		// A different seed is a different graph.
		sp2 := sp
		sp2.Seed++
		c, err := New(sp2)
		if err != nil {
			t.Fatal(err)
		}
		diff := false
		i := 0
		c.Edges(func(e graph.Edge) {
			if i < len(ea) && ea[i] != e {
				diff = true
			}
			i++
		})
		if !diff && i == len(ea) {
			t.Fatalf("%s: seeds %d and %d generated identical graphs", sp.Model, sp.Seed, sp2.Seed)
		}
	}
}

// TestPInvariance is the tentpole contract: the union of PartitionEdges
// over the ranks of ANY partitioner at ANY p is exactly the Full edge
// set, and no edge is owned twice.
func TestPInvariance(t *testing.T) {
	for _, sp := range []Spec{paSpec(7), contactSpec(7)} {
		g, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		want := edgeSet(t, g)
		full, err := g.Full()
		if err != nil {
			t.Fatal(err)
		}
		if int(full.M()) != len(want) {
			t.Fatalf("%s: Full has %d edges, enumeration set has %d", sp.Model, full.M(), len(want))
		}
		for _, p := range []int{1, 2, 8} {
			for _, pt := range testPartitioners(t, g, p) {
				got := make(map[graph.Edge]bool)
				for rank := 0; rank < p; rank++ {
					g.PartitionEdges(pt, rank, func(e graph.Edge) {
						if pt.Owner(e.U) != rank {
							t.Fatalf("%s/%s p=%d: rank %d emitted foreign edge %v", sp.Model, pt.Name(), p, rank, e)
						}
						got[e] = true
					})
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s p=%d: union has %d edges, want %d", sp.Model, pt.Name(), p, len(got), len(want))
				}
				for e := range want {
					if !got[e] {
						t.Fatalf("%s/%s p=%d: edge %v missing from union", sp.Model, pt.Name(), p, e)
					}
				}
			}
		}
	}
}

func testPartitioners(t *testing.T, g *Gen, p int) []partition.Partitioner {
	t.Helper()
	cp, err := partition.NewCPFromReduced(g.ReducedDegrees(), p)
	if err != nil {
		t.Fatal(err)
	}
	hpd, err := partition.NewHPD(p)
	if err != nil {
		t.Fatal(err)
	}
	hpm, err := partition.NewHPM(p)
	if err != nil {
		t.Fatal(err)
	}
	hpu, err := partition.NewHPUFixed(p, 0x51a7b3c9d, 0x1234567)
	if err != nil {
		t.Fatal(err)
	}
	return []partition.Partitioner{cp, hpd, hpm, hpu}
}

func TestCPFromReducedMatchesGraphCP(t *testing.T) {
	g, err := New(paSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	full, err := g.Full()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 8} {
		a, err := partition.NewCPFromReduced(g.ReducedDegrees(), p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := partition.NewCP(full, p)
		if err != nil {
			t.Fatal(err)
		}
		for v := graph.Vertex(0); int(v) < full.N(); v++ {
			if a.Owner(v) != b.Owner(v) {
				t.Fatalf("p=%d: CPFromReduced and CP disagree at vertex %d: %d vs %d", p, v, a.Owner(v), b.Owner(v))
			}
		}
	}
}

func TestFullIsSimpleAndSized(t *testing.T) {
	for _, sp := range []Spec{paSpec(3), contactSpec(3)} {
		g, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		full, err := g.Full()
		if err != nil {
			t.Fatal(err)
		}
		if err := full.CheckSimple(); err != nil {
			t.Fatalf("%s: %v", sp.Model, err)
		}
		max := sp.MaxEdges()
		// Dropped PA slots and collapsed contact cross duplicates cost a
		// handful of edges at most.
		if full.M() < max-max/100 || full.M() > max {
			t.Fatalf("%s: M = %d, want within 1%% below MaxEdges = %d", sp.Model, full.M(), max)
		}
	}
}

// ksStat computes the Kolmogorov–Smirnov statistic between the degree
// distributions of two graphs.
func ksStat(a, b *graph.Graph) float64 {
	da, db := a.Degrees(), b.Degrees()
	sort.Ints(da)
	sort.Ints(db)
	maxDeg := da[len(da)-1]
	if m := db[len(db)-1]; m > maxDeg {
		maxDeg = m
	}
	cdf := func(sorted []int, x int) float64 {
		return float64(sort.SearchInts(sorted, x+1)) / float64(len(sorted))
	}
	worst := 0.0
	for x := 0; x <= maxDeg; x++ {
		if d := math.Abs(cdf(da, x) - cdf(db, x)); d > worst {
			worst = d
		}
	}
	return worst
}

// TestPADegreeDistributionMatchesSequential checks the recomputation
// port samples the same model as gen.PrefAttachment: the KS statistic
// between their degree distributions stays within the band two
// independent runs of the sequential generator occupy.
func TestPADegreeDistributionMatchesSequential(t *testing.T) {
	const n, d = 20000, 4
	g, err := New(Spec{Model: ModelPA, Seed: 5, N: n, D: d})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Full()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := gen.PrefAttachment(rng.New(1001), n, d)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := gen.PrefAttachment(rng.New(2002), n, d)
	if err != nil {
		t.Fatal(err)
	}
	base := ksStat(sa, sb)
	got := ksStat(pg, sa)
	// Sequential-vs-sequential KS at this size is ~0.005; anything below
	// max(3·base, 0.02) means the distributions are statistically
	// indistinguishable at test scale.
	limit := 3 * base
	if limit < 0.02 {
		limit = 0.02
	}
	if got > limit {
		t.Fatalf("PA degree KS %f vs sequential baseline %f (limit %f)", got, base, limit)
	}
	// Heavy tail: max degree far above d, as in the sequential model.
	degs := pg.Degrees()
	maxDeg := 0
	for _, dg := range degs {
		if dg > maxDeg {
			maxDeg = dg
		}
	}
	if maxDeg < 8*d {
		t.Fatalf("PA max degree %d shows no heavy tail (d=%d)", maxDeg, d)
	}
}

func TestContactDegreeDistributionMatchesSequential(t *testing.T) {
	const n = 20000
	cc := gen.ContactConfig{N: n, AvgDegree: 10, CommunitySize: 30, WithinFrac: 0.8}
	g, err := New(Spec{Model: ModelContact, Seed: 5, N: n, Contact: cc})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Full()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := gen.Contact(rng.New(1001), cc)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := gen.Contact(rng.New(2002), cc)
	if err != nil {
		t.Fatal(err)
	}
	base := ksStat(sa, sb)
	got := ksStat(pg, sa)
	// The ported model fills the within budget by Bernoulli trials rather
	// than per-vertex slot quotas, so allow a wider (but still small)
	// band than PA.
	limit := 3 * base
	if limit < 0.05 {
		limit = 0.05
	}
	if got > limit {
		t.Fatalf("contact degree KS %f vs sequential baseline %f (limit %f)", got, base, limit)
	}
	// Edge count matches the target within the duplicate-collapse slack.
	target := g.Spec().MaxEdges()
	if pg.M() < target-target/100 || pg.M() > target {
		t.Fatalf("contact M = %d, want ~%d", pg.M(), target)
	}
}

func TestReducedDegreesMatchEnumeration(t *testing.T) {
	for _, sp := range []Spec{paSpec(9), contactSpec(9)} {
		g, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		deg := g.ReducedDegrees()
		var sum int64
		for _, d := range deg {
			sum += int64(d)
		}
		var m int64
		g.Edges(func(graph.Edge) { m++ })
		if sum != m {
			t.Fatalf("%s: reduced degrees sum to %d, enumeration has %d edges", sp.Model, sum, m)
		}
	}
}
