package pergen

import (
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// Contact/community generation by recomputation. The sequential
// generator (gen.Contact) is globally stateful twice over: it draws
// random community sizes while sweeping the label space, and it places
// edges by rejection against the graph built so far. The port removes
// both dependencies:
//
//   - Communities are a pure function of the seed: size i is an
//     independent counter draw, so every rank derives the identical
//     community table (and the commOf lookup) in O(n).
//   - Within-community edges become independent Bernoulli trials, one
//     per community-internal vertex pair, with acceptance probability
//     q = withinBudget/withinCapacity. Same expected budget share as
//     the sequential fill loop, but each pair is decided by one hash —
//     no duplicates by construction.
//   - The cross-community remainder is a fixed array of slots sized to
//     hit the exact target count given the (deterministic) within
//     count; each slot resolves its endpoint pair directly from the
//     counter stream, redrawing (bounded) while the pair is a loop or
//     falls inside one community. Distinct slots can — birthday-rarely —
//     resolve to the same pair; both copies share their minimum
//     endpoint, so the owning rank collapses them locally and the edge
//     set stays p-invariant. Within- and cross-edges can never collide
//     (one is intra-, the other inter-community).
type contactGen struct {
	n        int
	cfg      contactParams
	withinQ  float64
	crossCnt int64

	comms  []communitySpan
	commOf []int32

	sizes  rng.Stream
	within rng.Stream
	cross  rng.Stream
}

type communitySpan struct{ lo, hi int32 } // [lo, hi)

type contactParams struct {
	avgDegree     float64
	communitySize int
	withinFrac    float64
}

func newContactGen(sp Spec) *contactGen {
	cc := sp.contactConfig()
	c := &contactGen{
		n: cc.N,
		cfg: contactParams{
			avgDegree:     cc.AvgDegree,
			communitySize: cc.CommunitySize,
			withinFrac:    cc.WithinFrac,
		},
		sizes:  rng.NewStream(sp.Seed, streamComm),
		within: rng.NewStream(sp.Seed, streamWithin),
		cross:  rng.NewStream(sp.Seed, streamCross),
	}
	// Carve communities of consecutive labels, sizes uniform in
	// [CommunitySize/2, 3·CommunitySize/2] as in the sequential
	// generator — but each size is an independent counter draw, so the
	// table is identical on every rank.
	c.commOf = make([]int32, c.n)
	base := cc.CommunitySize
	for lo, i := 0, uint64(0); lo < c.n; i++ {
		sz := base/2 + int(c.sizes.Uint64nAt(i, uint64(base+1)))
		if sz < 2 {
			sz = 2
		}
		hi := lo + sz
		if hi > c.n {
			hi = c.n
		}
		ci := int32(len(c.comms))
		c.comms = append(c.comms, communitySpan{int32(lo), int32(hi)})
		for v := lo; v < hi; v++ {
			c.commOf[v] = ci
		}
		lo = hi
	}
	// Budget split, mirroring gen.Contact: a WithinFrac share of the
	// target edge count is expected to land inside communities, the
	// remainder crosses them. withinCount below is the exact realized
	// Bernoulli count — every rank computes it from the same scan, so
	// the cross slot count (and with it the total) is deterministic.
	targetM := int64(cc.AvgDegree * float64(cc.N) / 2)
	var withinCapacity int64
	for _, cm := range c.comms {
		sz := int64(cm.hi - cm.lo)
		withinCapacity += sz * (sz - 1) / 2
	}
	withinBudget := int64(float64(targetM) * cc.WithinFrac)
	if withinCapacity > 0 {
		c.withinQ = float64(withinBudget) / float64(withinCapacity)
		if c.withinQ > 1 {
			c.withinQ = 1
		}
	}
	withinCount := int64(0)
	c.withinEdges(func(graph.Edge) { withinCount++ })
	c.crossCnt = targetM - withinCount
	if c.crossCnt < 0 {
		c.crossCnt = 0
	}
	return c
}

// withinEdges enumerates the accepted within-community pairs: pair w of
// the global intra-community pair enumeration is an edge iff its
// Bernoulli draw clears withinQ.
//
//es:hotpath withinEdges is one Bernoulli hash per community-internal pair.
func (c *contactGen) withinEdges(fn func(graph.Edge)) {
	w := uint64(0)
	for _, cm := range c.comms {
		for i := cm.lo; i < cm.hi; i++ {
			for j := i + 1; j < cm.hi; j++ {
				if c.within.Float64At(w) < c.withinQ {
					fn(graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j)})
				}
				w++
			}
		}
	}
}

// crossEdges enumerates the cross-community slots. A slot redraws its
// endpoints (bounded, from its own counter range) while the pair is a
// loop or intra-community; with a single community the intra filter is
// dropped, as in the sequential generator. Exhausted slots are dropped.
//
//es:hotpath crossEdges resolves one endpoint pair per cross slot.
func (c *contactGen) crossEdges(fn func(graph.Edge)) {
	requireCross := len(c.comms) > 1
	for t := int64(0); t < c.crossCnt; t++ {
		for a := uint64(0); a <= maxResolveAttempts; a++ {
			ctr := uint64(t)<<6 | a
			u := graph.Vertex(c.cross.Uint64nAt(2*ctr, uint64(c.n)))
			v := graph.Vertex(c.cross.Uint64nAt(2*ctr+1, uint64(c.n)))
			if u == v || (requireCross && c.commOf[u] == c.commOf[v]) {
				continue
			}
			if u > v {
				u, v = v, u
			}
			fn(graph.Edge{U: u, V: v})
			break
		}
	}
}

// edges enumerates within-community edges first, then cross slots —
// the deterministic order Edges documents.
func (c *contactGen) edges(fn func(graph.Edge)) {
	c.withinEdges(fn)
	c.crossEdges(fn)
}
