package pergen

import (
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// Preferential attachment by recomputation. The sequential generator
// (gen.PrefAttachment) keeps a flat array of edge endpoints and draws
// each new target uniformly from it — a uniform position in the array
// IS a vertex drawn proportionally to its current degree. The
// recomputation trick replaces the array read with a deterministic
// re-derivation: position r belongs to edge e = r/2, whose even entry
// is the edge's deterministic "source" vertex (the clique pair, or the
// vertex whose attachment created the edge) and whose odd entry is that
// edge's own target draw — recomputed from the counter stream and
// chased recursively. Every chase strictly decreases the edge index and
// terminates on a deterministic entry with probability 1/2 per step, so
// the expected chain length is below 2 hashes.
//
// The raw process above is the Batagelj–Brandes multigraph; this
// library needs simple graphs. Simplification is local to each new
// vertex: all edges that could collide share their maximum endpoint (a
// new vertex's d slots), so slot targets are resolved in order and a
// slot whose target is the vertex itself or a previous slot's final
// target redraws from a dedicated retry stream. Chains always resolve
// through raw (attempt-0) draws — the retry outcomes of other vertices
// are never needed — which keeps resolution O(1) and communication-free
// while the per-vertex dedup stays a pure function of the seed.
type paGen struct {
	n, d  int
	s     int   // clique size d+1
	mc    int64 // clique edge count s(s-1)/2
	slots rng.Stream
	retry rng.Stream

	clique []graph.Edge   // pair table for the deterministic clique entries
	tbuf   []graph.Vertex // reusable per-vertex target scratch
}

func newPAGen(sp Spec) *paGen {
	s := sp.D + 1
	p := &paGen{
		n:     sp.N,
		d:     sp.D,
		s:     s,
		mc:    int64(s) * int64(s-1) / 2,
		slots: rng.NewStream(sp.Seed, streamPASlot),
		retry: rng.NewStream(sp.Seed, streamPARetry),
		tbuf:  make([]graph.Vertex, 0, sp.D),
	}
	p.clique = make([]graph.Edge, 0, p.mc)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			p.clique = append(p.clique, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)})
		}
	}
	return p
}

// genVertex returns the deterministic even entry of edge e: the vertex
// whose attachment created it (e >= mc).
func (p *paGen) genVertex(e int64) graph.Vertex {
	return graph.Vertex(int64(p.s) + (e-p.mc)/int64(p.d))
}

// resolvePos resolves the vertex stored at position r of the conceptual
// flat edge array, by recomputation only.
//
//es:hotpath resolvePos is the pergen inner loop: one expected-O(1) chain per edge of the graph.
func (p *paGen) resolvePos(r uint64) graph.Vertex {
	for {
		e := int64(r >> 1)
		if e < p.mc {
			if r&1 == 0 {
				return p.clique[e].U
			}
			return p.clique[e].V
		}
		if r&1 == 0 {
			return p.genVertex(e)
		}
		// Odd: the target of edge e — recompute e's own raw draw. e < r/2
		// strictly decreases, so the chase terminates.
		r = p.slots.Uint64nAt(uint64(e), uint64(2*e))
	}
}

// vertexTargets resolves the final (simplified) targets of vertex v's d
// slots into the reusable scratch buffer. Dropped slots (attempt budget
// exhausted) simply do not appear.
//
//es:hotpath vertexTargets runs once per generated vertex.
func (p *paGen) vertexTargets(v int64) []graph.Vertex {
	out := p.tbuf[:0]
	k0 := p.mc + (v-int64(p.s))*int64(p.d)
	for j := 0; j < p.d; j++ {
		k := k0 + int64(j)
		t := p.resolvePos(p.slots.Uint64nAt(uint64(k), uint64(2*k)))
		for a := 1; p.conflicts(t, graph.Vertex(v), out); a++ {
			if a > maxResolveAttempts {
				t = -1 // drop the slot
				break
			}
			t = p.resolvePos(p.retry.Uint64nAt(uint64(k)<<6|uint64(a), uint64(2*k)))
		}
		if t >= 0 {
			out = append(out, t) // hotalloc: amortized growth into the reusable d-capacity scratch
		}
	}
	p.tbuf = out[:0]
	return out
}

// conflicts reports whether target t would create a self-loop or a
// parallel edge among v's already-resolved slots.
func (p *paGen) conflicts(t, v graph.Vertex, prev []graph.Vertex) bool {
	if t == v {
		return true
	}
	for _, w := range prev {
		if w == t {
			return true
		}
	}
	return false
}

// edges enumerates the full graph: the clique, then every vertex's
// slots in vertex order. All emitted edges are normalized (targets are
// strictly older — smaller — than their generating vertex) and, thanks
// to the per-vertex dedup, distinct.
func (p *paGen) edges(fn func(graph.Edge)) {
	for _, e := range p.clique {
		fn(e)
	}
	for v := int64(p.s); v < int64(p.n); v++ {
		for _, t := range p.vertexTargets(v) {
			fn(graph.Edge{U: t, V: graph.Vertex(v)})
		}
	}
}
