package core

import (
	"fmt"
	"sort"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/randvar"
)

// edgeSwitcher is the randomizer implementation of the paper's
// single-edge-switch conversation protocol (§4.4–§4.5): per operation an
// initiator takes a first edge, a partner (drawn with probability
// |E_j|/|E|) takes the second, validates the switch, and reserves,
// commits or releases the two replacement edges at their owners with
// acknowledged conversations. All of the protocol's roles and state live
// here; the step loop, message plane and storage accounting are the
// chassis's (see randomizer.go).
type edgeSwitcher struct {
	e *rankEngine

	// inHand holds edges provisionally removed by an in-flight operation
	// this rank initiated (its e1) or is partnering (its e2); the value
	// preserves the original flag for reinsertion on abort. potential
	// holds replacement edges reserved at this rank (§4.5 issue 1).
	inHand    map[graph.Edge]bool
	potential map[graph.Edge]opID

	// cumEdges is the step-start prefix-sum of per-rank edge counts used
	// to draw the partner rank with probability |E_j|/|E|; qBuf is the
	// matching multinomial weight scratch. Both are sized once and
	// rewritten at every step boundary.
	cumEdges []int64
	qBuf     []float64

	// Initiator-side state: own operations in flight, keyed by id with
	// the taken first edge as value. Up to opWindow operations are
	// pipelined concurrently (see opWindowSize): a window keeps the rank
	// busy between replies, and — the message plane's point — gives each
	// flush several records per destination instead of one. Semantically
	// a window is no different from the concurrency already present
	// across ranks: an in-flight e1 is out of the partition, so peers
	// treat it exactly like another rank's in-hand edge.
	myOps     map[opID]graph.Edge
	seq       uint64
	remaining int64 // ops still to complete this step

	// curRestarts counts consecutive aborts across own operations. The
	// partner-selection probabilities are stale within a step (they are
	// refreshed only at step boundaries, §4.5), so on degenerate tiny
	// graphs every candidate partner can be empty; past restartExplore
	// the partner is drawn uniformly instead, and past restartForfeit one
	// operation is abandoned. Realistic partitions never approach either
	// threshold.
	curRestarts int64

	// Partner-side state: operations this rank is orchestrating. poFree
	// recycles finished partnerOp records (one is retired per reply
	// conversation, so the freelist stays at the in-flight high-water
	// mark).
	partnerOps map[opID]*partnerOp
	poFree     []*partnerOp
}

func newEdgeSwitcher(e *rankEngine) *edgeSwitcher {
	return &edgeSwitcher{
		e:          e,
		inHand:     make(map[graph.Edge]bool),
		potential:  make(map[graph.Edge]opID),
		myOps:      make(map[opID]graph.Edge),
		partnerOps: make(map[opID]*partnerOp),
	}
}

// Partner-op phases.
const (
	phaseReserving = iota
	phaseCommitting
	phaseReleasing
)

// Restart-escalation thresholds (see edgeSwitcher.curRestarts).
const (
	restartExplore = 256
	restartForfeit = 20000
)

// partnerOp is the partner's view of an operation it orchestrates.
type partnerOp struct {
	id        opID
	initiator int
	e2        graph.Edge
	edges     [2]graph.Edge // replacement edges A, B
	owners    [2]int
	resolved  [2]bool
	okay      [2]bool
	phase     int
	acksLeft  int
}

// prepare rebuilds the selection prefix sums from the step-boundary edge
// counts and draws this step's multinomial operation distribution.
func (r *edgeSwitcher) prepare(s int64, counts []int64) error {
	e := r.e
	p := e.c.Size()
	if r.cumEdges == nil {
		r.cumEdges = make([]int64, p+1)
		r.qBuf = make([]float64, p)
	}
	q := r.qBuf
	var total int64
	for i, cnt := range counts {
		if cnt < 0 {
			return fmt.Errorf("core: negative edge count from rank %d", i)
		}
		r.cumEdges[i] = total
		total += cnt
		q[i] = float64(cnt) / float64(e.m)
	}
	r.cumEdges[p] = total
	if total != e.m {
		return fmt.Errorf("core: edge count drifted: %d != %d", total, e.m)
	}
	// Guard against floating-point drift in Σq.
	var qs float64
	for _, v := range q {
		qs += v
	}
	if qs != 1 {
		q[p-1] += 1 - qs
		if q[p-1] < 0 {
			q[p-1] = 0
		}
	}
	dist, err := randvar.ParallelMultinomialGathered(e.c, e.rnd, s, q)
	if err != nil {
		return err
	}
	r.remaining = dist[e.c.Rank()]
	return nil
}

// advance drives the initiator role: forfeit a structurally stuck
// operation, or start own operations up to the pipelining window.
// Filling the window before flushing is what gives the message plane
// several records per destination batch.
//
//es:hotpath
func (r *edgeSwitcher) advance() (bool, error) {
	e := r.e
	if int64(len(r.myOps)) >= r.remaining {
		return false, nil
	}
	if r.curRestarts >= restartForfeit {
		// Structurally stuck operation (e.g. no valid switch exists
		// anywhere for this partition's edges): abandon this single op
		// rather than spin forever.
		r.curRestarts = 0
		e.forfeited++
		r.remaining--
		return true, nil
	}
	if e.deg.Total() == 0 {
		return false, nil
	}
	started := false
	for w := e.opWindowSize(); len(r.myOps) < w &&
		int64(len(r.myOps)) < r.remaining && e.deg.Total() > 0; {
		if err := r.startOp(); err != nil {
			return false, err
		}
		started = true
	}
	return started, nil
}

func (r *edgeSwitcher) done() bool { return r.remaining == 0 && len(r.myOps) == 0 }

// starved: quota left, nothing in flight, and no local edge to take — a
// peer's commit is the only thing that can deliver one.
func (r *edgeSwitcher) starved() bool {
	return len(r.myOps) == 0 && r.remaining > 0 && r.e.deg.Total() == 0
}

func (r *edgeSwitcher) forfeitRemaining() {
	r.e.forfeited += r.remaining
	r.remaining = 0
}

// quiesced asserts the protocol left no dangling state at a step boundary.
func (r *edgeSwitcher) quiesced() error {
	e := r.e
	if len(r.inHand) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d in-hand edges", e.c.Rank(), len(r.inHand))
	}
	if len(r.potential) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d reservations", e.c.Rank(), len(r.potential))
	}
	if len(r.partnerOps) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d partner ops", e.c.Rank(), len(r.partnerOps))
	}
	if len(r.myOps) != 0 || r.remaining != 0 {
		return fmt.Errorf("core: rank %d ends step mid-operation", e.c.Rank())
	}
	return nil
}

// cursor is the operation sequence counter: at a quiesced step boundary
// every map is empty and seq is the only protocol state a resumed run
// needs (ids of completed operations never recur, so restoring seq keeps
// post-restore opIDs distinct from pre-checkpoint ones).
func (r *edgeSwitcher) cursor() uint64 { return r.seq }

func (r *edgeSwitcher) restoreCursor(c uint64) { r.seq = c }

// handle dispatches one conversation-protocol message from src. The
// chassis dispatches through the randomizer interface, which ends
// hotalloc's static call walk, so the per-message entry points root
// their own audits.
//
//es:hotpath
func (r *edgeSwitcher) handle(om opMsg, src int) error {
	switch om.kind {
	case mSelectSecond:
		return r.onSelectSecond(om.id, om.e1, src)
	case mAbortOp:
		return r.onAbort(om.id)
	case mReserve:
		return r.onReserve(om.id, om.e1, src)
	case mReserveOK:
		return r.onReserveReply(om.id, om.e1, true)
	case mReserveFail:
		return r.onReserveReply(om.id, om.e1, false)
	case mCommit:
		return r.onCommit(om.id, om.e1, src)
	case mCommitAck:
		return r.onAck(om.id, true)
	case mRelease:
		return r.onRelease(om.id, om.e1, src)
	case mReleaseAck:
		return r.onAck(om.id, false)
	case mOpDone:
		return r.onOpDone(om.id)
	default:
		return fmt.Errorf("core: rank %d edge-switch cannot handle %v", r.e.c.Rank(), om.kind)
	}
}

// ---- local edge custody ----

// conflicts reports whether a normalized local edge exists (adjacency,
// reservation, or provisionally removed) and, when it does, whether the
// collision is transient — with an in-hand edge or a reservation, i.e.
// with protocol state whose population is the sum of everyone's
// pipelining windows — or structural (the edge is simply present in the
// adjacency, a parallel-edge rejection that would occur at window 1
// too). The adaptive window controller steers on transient conflicts
// only; see internal/tune/window.
func (r *edgeSwitcher) conflicts(ed graph.Edge) (conflict, transient bool) {
	if _, held := r.inHand[ed]; held {
		return true, true
	}
	if _, reserved := r.potential[ed]; reserved {
		return true, true
	}
	e := r.e
	li, ok := e.index[ed.U]
	if !ok {
		return true, false // foreign edge: misrouted, treat as conflict
	}
	return e.adj.Contains(int(li), ed.V), false
}

// takeRandomEdge removes a uniform random local edge into inHand.
func (r *edgeSwitcher) takeRandomEdge() graph.Edge {
	ed, orig := r.e.takeLocal()
	r.inHand[ed] = orig
	return ed
}

// reinsert returns an in-hand edge to the local structures (abort path).
func (r *edgeSwitcher) reinsert(ed graph.Edge) error {
	orig, held := r.inHand[ed]
	if !held {
		return fmt.Errorf("core: rank %d reinserting edge %v it does not hold", r.e.c.Rank(), ed)
	}
	delete(r.inHand, ed)
	return r.e.insertLocal(ed, orig)
}

// discard finalizes the removal of an in-hand edge (commit path).
func (r *edgeSwitcher) discard(ed graph.Edge) error {
	if _, held := r.inHand[ed]; !held {
		return fmt.Errorf("core: rank %d discarding edge %v it does not hold", r.e.c.Rank(), ed)
	}
	delete(r.inHand, ed)
	return nil
}

// pickPartner draws a rank with probability proportional to its
// step-start edge count (§4.4: P_j chosen with probability |E_j|/|E|).
// After many consecutive restarts the step-start distribution is
// evidently useless (all its mass on now-empty partitions), so the draw
// falls back to uniform exploration over all ranks.
func (r *edgeSwitcher) pickPartner() int {
	e := r.e
	if r.curRestarts >= restartExplore {
		return e.rnd.Intn(e.c.Size())
	}
	x := e.rnd.Int64n(r.cumEdges[len(r.cumEdges)-1])
	// First rank whose cumulative range contains x.
	idx := sort.Search(len(r.cumEdges)-1, func(i int) bool { return r.cumEdges[i+1] > x }) // hotalloc: non-escaping closure; sort.Search does not retain it, so it stays on the stack
	return idx
}

// ---- initiator role ----

// startOp begins one own operation: take e1, pick a partner, ask it to
// orchestrate.
func (r *edgeSwitcher) startOp() error {
	e := r.e
	r.seq++
	id := opID{rank: int32(e.c.Rank()), seq: r.seq}
	e1 := r.takeRandomEdge()
	r.myOps[id] = e1
	e.st.started++
	if n := len(r.myOps); n > e.st.inFlightHWM {
		e.st.inFlightHWM = n
	}
	partner := r.pickPartner()
	return e.send(partner, opMsg{kind: mSelectSecond, id: id, e1: e1})
}

// onOpDone finalizes a committed own operation.
func (r *edgeSwitcher) onOpDone(id opID) error {
	e := r.e
	e1, mine := r.myOps[id]
	if !mine {
		return fmt.Errorf("core: rank %d got %v for unknown own op", e.c.Rank(), id)
	}
	if err := r.discard(e1); err != nil {
		return err
	}
	delete(r.myOps, id)
	r.remaining--
	e.opsInitiated++
	e.st.committed++
	r.curRestarts = 0
	return nil
}

// onAbort restarts an own operation after rejection.
func (r *edgeSwitcher) onAbort(id opID) error {
	e := r.e
	e1, mine := r.myOps[id]
	if !mine {
		return fmt.Errorf("core: rank %d got abort %v for unknown own op", e.c.Rank(), id)
	}
	if err := r.reinsert(e1); err != nil {
		return err
	}
	delete(r.myOps, id)
	e.restarts++
	r.curRestarts++
	e.st.aborts++
	return nil
}

// ---- partner role ----

// onSelectSecond orchestrates an operation for initiator id.rank: select
// e2, validate, and reserve the replacement edges at their owners.
func (r *edgeSwitcher) onSelectSecond(id opID, e1 graph.Edge, initiator int) error {
	e := r.e
	if e.deg.Total() == 0 {
		return e.send(initiator, opMsg{kind: mAbortOp, id: id})
	}
	e2 := r.takeRandomEdge()
	if switchInvalid(e1, e2) {
		if err := r.reinsert(e2); err != nil {
			return err
		}
		return e.send(initiator, opMsg{kind: mAbortOp, id: id})
	}
	kind := Cross
	if e.rnd.Bool() {
		kind = Straight
	}
	a, b := replacement(e1, e2, kind)
	op := r.newPartnerOp()
	*op = partnerOp{
		id:        id,
		initiator: initiator,
		e2:        e2,
		edges:     [2]graph.Edge{a, b},
		owners:    [2]int{e.owner(a), e.owner(b)},
		phase:     phaseReserving,
	}
	r.partnerOps[id] = op
	for i := 0; i < 2; i++ {
		if err := e.send(op.owners[i], opMsg{kind: mReserve, id: id, e1: op.edges[i]}); err != nil {
			return err
		}
	}
	return nil
}

// onReserveReply advances a partner op when an owner answers.
func (r *edgeSwitcher) onReserveReply(id opID, ed graph.Edge, ok bool) error {
	e := r.e
	op, exists := r.partnerOps[id]
	if !exists || op.phase != phaseReserving {
		return fmt.Errorf("core: rank %d got reserve reply for unknown %v", e.c.Rank(), id)
	}
	idx, err := op.edgeIndex(ed)
	if err != nil {
		return err
	}
	if op.resolved[idx] {
		return fmt.Errorf("core: rank %d got duplicate reserve reply for %v/%v", e.c.Rank(), id, ed)
	}
	op.resolved[idx] = true
	op.okay[idx] = ok
	if !ok {
		e.st.reserveFails++
	}
	if !op.resolved[0] || !op.resolved[1] {
		return nil
	}
	if op.okay[0] && op.okay[1] {
		op.phase = phaseCommitting
		op.acksLeft = 2
		for i := 0; i < 2; i++ {
			if err := e.send(op.owners[i], opMsg{kind: mCommit, id: id, e1: op.edges[i]}); err != nil {
				return err
			}
		}
		return nil
	}
	// At least one conflict: release successful reservations, then abort.
	op.phase = phaseReleasing
	op.acksLeft = 0
	for i := 0; i < 2; i++ {
		if op.okay[i] {
			op.acksLeft++
			if err := e.send(op.owners[i], opMsg{kind: mRelease, id: id, e1: op.edges[i]}); err != nil {
				return err
			}
		}
	}
	if op.acksLeft == 0 {
		return r.finishAbort(op)
	}
	return nil
}

// onAck counts commit/release acknowledgements and finishes the op when
// all owners have applied their updates.
func (r *edgeSwitcher) onAck(id opID, commit bool) error {
	e := r.e
	op, exists := r.partnerOps[id]
	if !exists {
		return fmt.Errorf("core: rank %d got ack for unknown %v", e.c.Rank(), id)
	}
	if (commit && op.phase != phaseCommitting) || (!commit && op.phase != phaseReleasing) {
		return fmt.Errorf("core: rank %d got %v ack in phase %d", e.c.Rank(), id, op.phase)
	}
	op.acksLeft--
	if op.acksLeft > 0 {
		return nil
	}
	if commit {
		if err := r.discard(op.e2); err != nil {
			return err
		}
		delete(r.partnerOps, id)
		initiator := op.initiator
		r.freePartnerOp(op)
		return e.send(initiator, opMsg{kind: mOpDone, id: id})
	}
	return r.finishAbort(op)
}

func (r *edgeSwitcher) finishAbort(op *partnerOp) error {
	if err := r.reinsert(op.e2); err != nil {
		return err
	}
	delete(r.partnerOps, op.id)
	initiator, id := op.initiator, op.id
	r.freePartnerOp(op)
	return r.e.send(initiator, opMsg{kind: mAbortOp, id: id})
}

// newPartnerOp draws a partnerOp record from the freelist; the caller
// overwrites every field. freePartnerOp returns a record once it has
// left partnerOps and no reference to it remains.
func (r *edgeSwitcher) newPartnerOp() *partnerOp {
	if n := len(r.poFree); n > 0 {
		op := r.poFree[n-1]
		r.poFree[n-1] = nil
		r.poFree = r.poFree[:n-1]
		return op
	}
	return new(partnerOp) // hotalloc: freelist miss; the pool exists to make this the rare path
}

func (r *edgeSwitcher) freePartnerOp(op *partnerOp) {
	r.poFree = append(r.poFree, op) // hotalloc: freelist return; amortized growth of the partnerOp pool backbone
}

func (op *partnerOp) edgeIndex(ed graph.Edge) (int, error) {
	switch ed {
	case op.edges[0]:
		return 0, nil
	case op.edges[1]:
		return 1, nil
	default:
		return 0, fmt.Errorf("core: edge %v not part of %v", ed, op.id)
	}
}

// ---- owner role ----

// onReserve answers a reservation request with a conflict check; a
// successful check records the potential edge (§4.5 issue 1).
func (r *edgeSwitcher) onReserve(id opID, ed graph.Edge, partner int) error {
	e := r.e
	if conflict, transient := r.conflicts(ed); conflict {
		if transient {
			e.st.conflicts++
		}
		return e.send(partner, opMsg{kind: mReserveFail, id: id, e1: ed})
	}
	r.potential[ed] = id
	return e.send(partner, opMsg{kind: mReserveOK, id: id, e1: ed})
}

// onCommit materializes a reserved edge as a modified edge.
func (r *edgeSwitcher) onCommit(id opID, ed graph.Edge, partner int) error {
	e := r.e
	holder, reserved := r.potential[ed]
	if !reserved || holder != id {
		return fmt.Errorf("core: rank %d commit of unreserved edge %v by %v", e.c.Rank(), ed, id)
	}
	delete(r.potential, ed)
	if err := e.insertLocal(ed, false); err != nil {
		return err
	}
	return e.send(partner, opMsg{kind: mCommitAck, id: id, e1: ed})
}

// onRelease drops a reservation.
func (r *edgeSwitcher) onRelease(id opID, ed graph.Edge, partner int) error {
	holder, reserved := r.potential[ed]
	if !reserved || holder != id {
		return fmt.Errorf("core: rank %d release of unreserved edge %v by %v", r.e.c.Rank(), ed, id)
	}
	delete(r.potential, ed)
	return r.e.send(partner, opMsg{kind: mReleaseAck, id: id, e1: ed})
}
