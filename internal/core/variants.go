package core

import (
	"fmt"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// Constrained sequential variants for the other §1 applications:
// randomly-labeled bipartite graphs with a given degree sequence (the
// paper's reference [6]) and graphs with a prescribed joint degree
// distribution via MCMC (reference [7]).

// SequentialBipartite performs t edge switch operations on g preserving a
// bipartition: vertices 0..leftSize-1 form one side, the rest the other,
// and every edge must cross sides (validated up front). Only cross
// switches are applicable — a straight switch would create same-side
// edges — so each operation replaces (u1,v1),(u2,v2) by (u1,v2),(u2,v1)
// with u's on the left. This randomizes a bipartite graph within its
// degree sequence (the paper's application [6]). g is modified in place.
func SequentialBipartite(g *graph.Graph, leftSize int, t int64, r *rng.RNG) (SeqStats, error) {
	if t < 0 {
		return SeqStats{}, fmt.Errorf("core: negative operation count %d", t)
	}
	if leftSize <= 0 || leftSize >= g.N() {
		return SeqStats{}, fmt.Errorf("core: bipartition size %d out of (0,%d)", leftSize, g.N())
	}
	left := func(v graph.Vertex) bool { return int(v) < leftSize }
	for _, e := range g.Edges() {
		if left(e.U) == left(e.V) {
			return SeqStats{}, fmt.Errorf("core: edge %v does not cross the bipartition", e)
		}
	}
	if g.M() < 2 && t > 0 {
		return SeqStats{}, fmt.Errorf("core: need at least 2 edges to switch, have %d", g.M())
	}
	m0 := g.M()
	var st SeqStats
	for st.Ops < t {
		e1 := orientBipartite(g.RandomEdge(r), leftSize)
		e2 := orientBipartite(g.RandomEdge(r), leftSize)
		// Cross switch on (left,right)-oriented edges keeps both new
		// edges crossing: (l1,r2) and (l2,r1).
		if e1.U == e2.U || e1.V == e2.V {
			st.Restarts++ // useless (shared endpoint on the same side)
			continue
		}
		a := graph.Edge{U: e1.U, V: e2.V}.Norm()
		b := graph.Edge{U: e2.U, V: e1.V}.Norm()
		if g.HasEdge(a) || g.HasEdge(b) {
			st.Restarts++
			continue
		}
		g.RemoveEdge(e1)
		g.RemoveEdge(e2)
		g.AddModified(a, r)
		g.AddModified(b, r)
		st.Ops++
	}
	st.VisitRate = VisitRate(g.Originals(), m0)
	return st, nil
}

// orientBipartite returns the edge as (left vertex, right vertex).
func orientBipartite(e graph.Edge, leftSize int) graph.Edge {
	if int(e.U) < leftSize {
		return e
	}
	return graph.Edge{U: e.V, V: e.U}
}

// SequentialJointDegree performs t edge switch operations on g that
// preserve not only the degree sequence but the joint degree distribution
// (the multiset of endpoint-degree pairs over edges): a cross switch of
// (u1,v1),(u2,v2) is accepted only when deg(u1)=deg(u2) or deg(v1)=deg(v2)
// after orienting the pair — the standard JDD-preserving MCMC move of the
// paper's application [7]. Rejected proposals count as restarts. g is
// modified in place. On graphs whose degrees are all distinct the chain
// cannot move; the attempt budget guards against spinning forever.
func SequentialJointDegree(g *graph.Graph, t int64, r *rng.RNG) (SeqStats, error) {
	if t < 0 {
		return SeqStats{}, fmt.Errorf("core: negative operation count %d", t)
	}
	if g.M() < 2 && t > 0 {
		return SeqStats{}, fmt.Errorf("core: need at least 2 edges to switch, have %d", g.M())
	}
	// Degrees are switch-invariant: compute once.
	deg := g.Degrees()
	m0 := g.M()
	var st SeqStats
	budget := 1000*t + 10000
	for st.Ops < t {
		if st.Restarts >= budget {
			return st, fmt.Errorf("core: joint-degree chain made no progress after %d rejections (%d/%d ops done) — degrees may be too heterogeneous", st.Restarts, st.Ops, t)
		}
		e1 := g.RandomEdge(r)
		e2 := g.RandomEdge(r)
		if switchInvalid(e1, e2) {
			st.Restarts++
			continue
		}
		// Orient the pair so the degree-equal endpoints line up: accept
		// the cross switch if either orientation matches degrees.
		var a, b graph.Edge
		switch {
		case deg[e1.U] == deg[e2.U] || deg[e1.V] == deg[e2.V]:
			a, b = replacement(e1, e2, Cross)
		case deg[e1.U] == deg[e2.V] || deg[e1.V] == deg[e2.U]:
			a, b = replacement(e1, graph.Edge{U: e2.V, V: e2.U}, Cross)
			a, b = a.Norm(), b.Norm()
		default:
			st.Restarts++
			continue
		}
		if a.IsLoop() || b.IsLoop() || g.HasEdge(a) || g.HasEdge(b) {
			st.Restarts++
			continue
		}
		g.RemoveEdge(e1)
		g.RemoveEdge(e2)
		g.AddModified(a, r)
		g.AddModified(b, r)
		st.Ops++
	}
	st.VisitRate = VisitRate(g.Originals(), m0)
	return st, nil
}

// JointDegreeDistribution computes the multiset of (min degree, max
// degree) endpoint pairs over all edges — the invariant
// SequentialJointDegree preserves. Returned as a map for comparison in
// tests and applications.
func JointDegreeDistribution(g *graph.Graph) map[[2]int]int64 {
	deg := g.Degrees()
	out := make(map[[2]int]int64)
	for _, e := range g.Edges() {
		a, b := deg[e.U], deg[e.V]
		if a > b {
			a, b = b, a
		}
		out[[2]int{a, b}]++
	}
	return out
}
