package core

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"testing"
	"time"

	"edgeswitch/internal/gen/pergen"
)

// The out-of-core benchmark matrix behind BENCH_outofcore.json: the
// identical deterministic workload — two global curveball rounds on the
// pergen pa headline graph (n=1M, d=10, ~10^7 edges) at p=8,
// communication-free bootstrap, SkipResult — run four ways:
//
//   - inmem, uncapped: every partition in treaps; its sampled heap peak
//     defines the caps below.
//   - spill, uncapped: partitions in the tiered mmap store, no memory
//     pressure — isolates the store's structural overhead (the segment
//     decode on base reads, the compaction writes).
//   - spill at GOMEMLIMIT = 1/2 and 1/4 of the in-memory peak: the
//     tentpole claim. The mapping is file-backed and invisible to the
//     Go heap, so the run fits where the in-memory engine cannot; the
//     GC pressure the soft limit induces is the price measured here.
//
// Curveball is deterministic at every rank count, so all four cells
// must produce the same edge fingerprint — the matrix doubles as a
// correctness run. BENCH_outofcore.json commits the numbers; the
// benchsmoke guard replays a small slice and bands the slowdown.

// outOfCoreRounds is the matrix's common trade-round count.
const outOfCoreRounds = 2

// outOfCoreCell is one matrix measurement, as committed to
// BENCH_outofcore.json.
type outOfCoreCell struct {
	Store       string  `json:"store"`            // "inmem" or "spill"
	CapMiB      int64   `json:"cap_mib"`          // GOMEMLIMIT during the run; 0 = uncapped
	Model       string  `json:"model"`            // pergen model
	N           int     `json:"n"`                // vertices
	Ranks       int     `json:"ranks"`            //
	Ops         int64   `json:"ops"`              // executed trades
	EdgeHash    string  `json:"edge_hash"`        // order-independent fingerprint, hex
	PeakHeapMiB int64   `json:"peak_heap_mib"`    // sampled HeapAlloc high-water mark
	BaseBytes   int64   `json:"spill_base_bytes"` // final base-segment bytes across ranks
	OverlayHWM  int64   `json:"overlay_hwm"`      // peak overlay entries across ranks
	Compactions int64   `json:"compactions"`      //
	CompactSecs float64 `json:"compact_seconds"`  // wall clock spent compacting
	Seconds     float64 `json:"seconds"`          //
}

// runOutOfCoreCell drives one matrix cell on a fresh world. capBytes > 0
// applies a soft memory limit for the duration of the run.
func runOutOfCoreCell(tb testing.TB, spec pergen.Spec, p int, spill bool, capBytes int64) outOfCoreCell {
	tb.Helper()
	cfg := Config{
		Ranks:          p,
		Algorithm:      AlgoCurveball,
		Scheme:         SchemeHPD,
		Seed:           spec.Seed,
		SkipResult:     true,
		DistributedGen: &spec,
	}
	store := "inmem"
	if spill {
		store = "spill"
		cfg.SpillDir = tb.TempDir()
	}
	if capBytes > 0 {
		prev := debug.SetMemoryLimit(capBytes)
		defer debug.SetMemoryLimit(prev)
	}
	// Start each cell from a drained heap so the sampled peak and the
	// GC pressure under a cap measure this run, not the previous cell's
	// garbage.
	debug.FreeOSMemory()

	var res *Result
	var err error
	t0 := time.Now()
	peak := peakHeapDuring(func() {
		res, err = Parallel(nil, outOfCoreRounds, cfg)
	})
	elapsed := time.Since(t0)
	if err != nil {
		tb.Fatal(err)
	}
	return outOfCoreCell{
		Store:       store,
		CapMiB:      capBytes >> 20,
		Model:       "pa",
		N:           spec.N,
		Ranks:       p,
		Ops:         res.Ops,
		EdgeHash:    fmt.Sprintf("%016x", res.EdgeHash),
		PeakHeapMiB: int64(peak >> 20),
		BaseBytes:   res.SpillBaseBytes,
		OverlayHWM:  res.SpillOverlayHWM,
		Compactions: res.SpillCompactions,
		CompactSecs: time.Duration(res.SpillCompactNs).Seconds(),
		Seconds:     elapsed.Seconds(),
	}
}

// BenchmarkOutOfCore times the store tiers on a mid-size graph (the
// 10^7-edge headline runs under TestBenchOutOfCoreRecord, not under the
// default bench loop).
func BenchmarkOutOfCore(b *testing.B) {
	n := 100_001
	if testing.Short() {
		n = 10_001
	}
	spec := benchGenSpec("pa", n, 10)
	for _, spill := range []bool{false, true} {
		store := "inmem"
		if spill {
			store = "spill"
		}
		b.Run(fmt.Sprintf("%s/pa/p8", store), func(b *testing.B) {
			var cell outOfCoreCell
			for i := 0; i < b.N; i++ {
				cell = runOutOfCoreCell(b, spec, 8, spill, 0)
			}
			b.ReportMetric(float64(cell.Ops)/cell.Seconds, "trades/s")
			b.ReportMetric(float64(cell.PeakHeapMiB), "peakMiB")
		})
	}
}

// TestBenchOutOfCoreRecord regenerates BENCH_outofcore.json from the
// headline matrix and asserts the tentpole acceptance inline: the spill
// run capped at half the in-memory peak must finish within 2x the
// uncapped in-memory runtime, bit-identical. Run with BENCHRECORD=1
// after store changes that move the numbers, and commit the result.
func TestBenchOutOfCoreRecord(t *testing.T) {
	if os.Getenv("BENCHRECORD") == "" {
		t.Skip("set BENCHRECORD=1 to regenerate BENCH_outofcore.json")
	}
	spec := benchGenSpec("pa", 1_000_006, 10) // the >=10^7-edge headline graph
	const p = 8

	inmem := runOutOfCoreCell(t, spec, p, false, 0)
	peakBytes := inmem.PeakHeapMiB << 20
	cells := []outOfCoreCell{
		inmem,
		runOutOfCoreCell(t, spec, p, true, 0),
		runOutOfCoreCell(t, spec, p, true, peakBytes/2),
		runOutOfCoreCell(t, spec, p, true, peakBytes/4),
	}
	for _, c := range cells[1:] {
		if c.EdgeHash != inmem.EdgeHash {
			t.Fatalf("%s cap=%dMiB: edge fingerprint %s, in-memory run %s — the store diverged",
				c.Store, c.CapMiB, c.EdgeHash, inmem.EdgeHash)
		}
	}
	halfCap := cells[2]
	ratio := halfCap.Seconds / inmem.Seconds
	if ratio > 2 {
		t.Fatalf("spill at half-peak cap took %.1fs, %.2fx the uncapped in-memory %.1fs (acceptance bound 2x)",
			halfCap.Seconds, ratio, inmem.Seconds)
	}

	// The benchsmoke guard replays a small slice; record its baseline
	// from the same code path so the band tracks the committed numbers.
	gspec := benchGenSpec("pa", 100_001, 10)
	ginmem := runOutOfCoreCell(t, gspec, p, false, 0)
	gspill := runOutOfCoreCell(t, gspec, p, true, (ginmem.PeakHeapMiB<<20)/2)
	if gspill.EdgeHash != ginmem.EdgeHash {
		t.Fatalf("guard slice diverged: %s vs %s", gspill.EdgeHash, ginmem.EdgeHash)
	}

	doc := map[string]any{
		"benchmark": "BenchmarkOutOfCore / TestBenchOutOfCoreRecord (internal/core/bench_outofcore_test.go)",
		"description": "Two global curveball rounds on the pergen pa headline graph (n=1M d=10, ~10^7 edges), " +
			"p=8, communication-free bootstrap, SkipResult, seed 42: in-memory treaps vs the tiered mmap " +
			"store, uncapped and under GOMEMLIMIT at 1/2 and 1/4 of the sampled in-memory heap peak. " +
			"Curveball is deterministic, so every cell's edge_hash must match — the matrix doubles as a " +
			"correctness run. guard holds the small slice (pa n=100k) the benchsmoke regression test replays.",
		"date":    time.Now().Format("2006-01-02"),
		"command": "BENCHRECORD=1 go test -run '^TestBenchOutOfCoreRecord$' -v -timeout 60m ./internal/core/",
		"headline": map[string]any{
			"inmem_seconds":         inmem.Seconds,
			"spill_halfcap_seconds": halfCap.Seconds,
			"slowdown":              ratio,
			"cap_mib":               halfCap.CapMiB,
			"peak_heap_mib":         inmem.PeakHeapMiB,
		},
		"matrix": cells,
		"guard": map[string]any{
			"n":         gspec.N,
			"edge_hash": ginmem.EdgeHash,
			"cap_mib":   gspill.CapMiB,
			"slowdown":  gspill.Seconds / ginmem.Seconds,
		},
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_outofcore.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_outofcore.json: inmem %.1fs (peak %d MiB), spill@half-cap %.1fs (%.2fx)",
		inmem.Seconds, inmem.PeakHeapMiB, halfCap.Seconds, ratio)
}

// TestBenchsmokeOutOfCoreRegression is the benchsmoke guard for the
// tiered store: it replays the committed guard slice (pa n=100k, p=8,
// two curveball rounds, in-memory vs spill at the committed cap) once
// and fails if (a) the spill run's edge fingerprint drifts from the
// committed deterministic value or from this run's in-memory result, or
// (b) the capped spill slowdown over in-memory exceeds twice the
// committed ratio (single runs are noisy; the band is a rot detector,
// not a performance assertion). Runs only under BENCHSMOKE=1
// (`make benchsmoke`).
func TestBenchsmokeOutOfCoreRegression(t *testing.T) {
	if os.Getenv("BENCHSMOKE") == "" {
		t.Skip("set BENCHSMOKE=1 to run the benchsmoke regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_outofcore.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var bench struct {
		Guard struct {
			N        int     `json:"n"`
			EdgeHash string  `json:"edge_hash"`
			CapMiB   int64   `json:"cap_mib"`
			Slowdown float64 `json:"slowdown"`
		} `json:"guard"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_outofcore.json: %v", err)
	}
	if bench.Guard.EdgeHash == "" || bench.Guard.CapMiB == 0 {
		t.Fatal("BENCH_outofcore.json lacks the guard baseline")
	}

	spec := benchGenSpec("pa", bench.Guard.N, 10)
	inmem := runOutOfCoreCell(t, spec, 8, false, 0)
	spill := runOutOfCoreCell(t, spec, 8, true, bench.Guard.CapMiB<<20)
	t.Logf("inmem %.2fs (peak %d MiB), spill@%dMiB %.2fs (%.2fx, baseline %.2fx), %d compactions",
		inmem.Seconds, inmem.PeakHeapMiB, bench.Guard.CapMiB, spill.Seconds,
		spill.Seconds/inmem.Seconds, bench.Guard.Slowdown, spill.Compactions)
	if inmem.EdgeHash != bench.Guard.EdgeHash {
		t.Errorf("in-memory edge fingerprint drifted from baseline: %s vs %s — a correctness regression, not noise",
			inmem.EdgeHash, bench.Guard.EdgeHash)
	}
	if spill.EdgeHash != inmem.EdgeHash {
		t.Errorf("spill run diverged from in-memory: %s vs %s", spill.EdgeHash, inmem.EdgeHash)
	}
	band := 2 * bench.Guard.Slowdown
	if band < 2 {
		band = 2
	}
	if ratio := spill.Seconds / inmem.Seconds; ratio > band {
		t.Errorf("capped spill slowdown regressed: %.2fx, baseline %.2fx (band %.2fx)",
			ratio, bench.Guard.Slowdown, band)
	}
}
