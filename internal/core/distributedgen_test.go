package core

import (
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/rng"
)

func genSpecs() map[string]pergen.Spec {
	return map[string]pergen.Spec{
		"pa": {Model: pergen.ModelPA, Seed: 99, N: 1200, D: 4},
		"contact": {Model: pergen.ModelContact, Seed: 99, N: 1200,
			Contact: gen.ContactConfig{AvgDegree: 8, CommunitySize: 20, WithinFrac: 0.7}},
	}
}

// TestDistributedGenPInvariance pins the tentpole contract end to end:
// bootstrapping the engine via Config.DistributedGen and reassembling
// (t = 0, so switching never perturbs the edges) yields the exact edge
// set of the sequential pergen materialization — for every model,
// partitioning scheme and rank count.
func TestDistributedGenPInvariance(t *testing.T) {
	for name, spec := range genSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			g, err := pergen.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			full, err := g.Full()
			if err != nil {
				t.Fatal(err)
			}
			want := full.Edges()
			for _, p := range []int{1, 2, 8} {
				for _, scheme := range Schemes() {
					res, err := Parallel(nil, 0, Config{
						Ranks:           p,
						Scheme:          scheme,
						Seed:            spec.Seed,
						DistributedGen:  &spec,
						CheckInvariants: true,
					})
					if err != nil {
						t.Fatalf("p=%d %s: %v", p, scheme, err)
					}
					got := res.Graph.Edges()
					if len(got) != len(want) {
						t.Fatalf("p=%d %s: %d edges, want %d", p, scheme, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("p=%d %s: edge %d is %v, want %v — graph depends on rank count", p, scheme, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestDistributedGenSwitching runs actual switching on top of the
// generated bootstrap under the invariant sanitizer: simplicity,
// ownership and exact degree-sequence conservation all verified against
// the generated baseline.
func TestDistributedGenSwitching(t *testing.T) {
	for name, spec := range genSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			ops := spec.MaxEdges() / 2
			res, err := Parallel(nil, ops, Config{
				Ranks:           4,
				Seed:            spec.Seed,
				DistributedGen:  &spec,
				CheckInvariants: true,
				StepSize:        ops / 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops+res.Forfeited != ops {
				t.Fatalf("ops %d + forfeited %d != requested %d", res.Ops, res.Forfeited, ops)
			}
			if res.VisitRate <= 0 {
				t.Fatalf("visit rate %f after %d ops", res.VisitRate, ops)
			}
			if res.Graph.M() != int64(len(res.Graph.Edges())) {
				t.Fatalf("reassembled graph inconsistent: M=%d, edges=%d", res.Graph.M(), len(res.Graph.Edges()))
			}
		})
	}
}

func TestDistributedGenValidation(t *testing.T) {
	spec := pergen.Spec{Model: pergen.ModelPA, Seed: 1, N: 100, D: 3}
	// A graph alongside DistributedGen is a caller bug.
	g, err := gen.PrefAttachment(rng.New(1), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parallel(g, 10, Config{Ranks: 2, DistributedGen: &spec}); err == nil {
		t.Fatal("Parallel accepted both a graph and DistributedGen")
	}
	// Invalid specs surface the generator's validation error.
	bad := pergen.Spec{Model: pergen.ModelPA, N: 2, D: 5}
	if _, err := Parallel(nil, 10, Config{Ranks: 2, DistributedGen: &bad}); err == nil {
		t.Fatal("Parallel accepted an invalid generator spec")
	}
	// Nil graph without a generator spec is rejected.
	if _, err := Parallel(nil, 10, Config{Ranks: 2}); err == nil {
		t.Fatal("Parallel accepted a nil graph without DistributedGen")
	}
}
