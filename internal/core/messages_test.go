package core

import (
	"testing"
	"testing/quick"

	"edgeswitch/internal/graph"
)

func TestOpMsgRoundTrip(t *testing.T) {
	msgs := []opMsg{
		{kind: mSelectSecond, id: opID{rank: 3, seq: 12345}, e1: graph.Edge{U: 7, V: 9}},
		{kind: mAbortOp, id: opID{rank: 0, seq: 0}},
		{kind: mReserve, id: opID{rank: 1023, seq: 1 << 40}, e1: graph.Edge{U: 0, V: 1}},
		{kind: mReserveOK, id: opID{rank: 1, seq: 2}, e1: graph.Edge{U: 2, V: 3}},
		{kind: mReserveFail, id: opID{rank: 1, seq: 2}, e1: graph.Edge{U: 2, V: 3}},
		{kind: mCommit, id: opID{rank: 5, seq: 6}, e1: graph.Edge{U: 100000, V: 2000000}},
		{kind: mCommitAck, id: opID{rank: 5, seq: 6}},
		{kind: mRelease, id: opID{rank: 5, seq: 6}, e1: graph.Edge{U: 1, V: 2}},
		{kind: mReleaseAck, id: opID{rank: 5, seq: 6}},
		{kind: mOpDone, id: opID{rank: 9, seq: 10}},
		{kind: mEndOfStep},
		{kind: mStalled},
		{kind: mResumed},
		{kind: mTradeEdge, trade: 41, e1: graph.Edge{U: 9, V: 3}, orig: true},
		{kind: mTradeEdge, trade: 0, e1: graph.Edge{U: 3, V: 9}},
		{kind: mStoreEdge, e1: graph.Edge{U: 2, V: 1000000}, orig: true},
		{kind: mStoreEdge, e1: graph.Edge{U: 0, V: 1}},
	}
	for _, m := range msgs {
		got, err := decodeOpMsg(m.encode())
		if err != nil {
			t.Fatalf("%v: %v", m.kind, err)
		}
		if got != m {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestOpMsgRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, rank int32, seq uint64, u, v int32) bool {
		kind := msgKind(kindRaw%uint8(mResumed)) + 1
		m := opMsg{kind: kind, id: opID{rank: rank, seq: seq}, e1: graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)}}
		got, err := decodeOpMsg(m.encode())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOpMsgRejectsBadInput(t *testing.T) {
	if _, err := decodeOpMsg(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := decodeOpMsg(make([]byte, opMsgLen-1)); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := opMsg{kind: mSelectSecond}.encode()
	bad[0] = 0
	if _, err := decodeOpMsg(bad); err == nil {
		t.Fatal("kind 0 accepted")
	}
	bad[0] = 255
	if _, err := decodeOpMsg(bad); err == nil {
		t.Fatal("kind out of range accepted")
	}
	// Curveball kinds validate their own (shorter) record lengths.
	if _, err := decodeOpMsg(append(opMsg{kind: mTradeEdge}.encode(), 0)); err == nil {
		t.Fatal("oversized trade record accepted")
	}
	if _, err := decodeOpMsg(opMsg{kind: mStoreEdge}.encode()[:storeMsgLen-1]); err == nil {
		t.Fatal("truncated store record accepted")
	}
}

func TestMsgKindStrings(t *testing.T) {
	for k := mSelectSecond; k <= mStoreEdge; k++ {
		if s := k.String(); s == "" || s[0] == 'm' && len(s) < 3 {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
	}
	if s := msgKind(200).String(); s != "msgKind(200)" {
		t.Fatalf("unknown kind string %q", s)
	}
}

func TestPartnerOpEdgeIndex(t *testing.T) {
	op := &partnerOp{edges: [2]graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}}
	if i, err := op.edgeIndex(graph.Edge{U: 1, V: 2}); err != nil || i != 0 {
		t.Fatalf("edge 0: %d %v", i, err)
	}
	if i, err := op.edgeIndex(graph.Edge{U: 3, V: 4}); err != nil || i != 1 {
		t.Fatalf("edge 1: %d %v", i, err)
	}
	if _, err := op.edgeIndex(graph.Edge{U: 5, V: 6}); err == nil {
		t.Fatal("foreign edge accepted")
	}
}

func TestOpIDString(t *testing.T) {
	if s := (opID{rank: 3, seq: 9}).String(); s != "op[3:9]" {
		t.Fatalf("opID string %q", s)
	}
}
