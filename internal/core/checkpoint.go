package core

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/store"
	"edgeswitch/internal/tune/window"
)

// The checkpoint protocol (DESIGN.md §6): at a step boundary every rank
// writes its snapshot to a per-rank file (tmp + rename, CRC32C trailer),
// all ranks allreduce the global degree vector and checksum it (the
// sanitizer's degree baseline doing double duty as the restore integrity
// check), every rank's file CRC is allgathered — the "all ranks ack" —
// and only then does rank 0 write the manifest (tmp + rename). A commit
// broadcast follows before garbage collection, so a crash at any point
// leaves the previous manifest and its files untouched and restorable.
//
// Restore runs the protocol backwards: each rank scans the directory for
// manifests matching the run's identity, verifies its own file against
// the manifest's recorded CRC, and contributes the newest step it can
// restore to an OpMin allreduce — the rollback collective. The agreed
// step is restored everywhere (0 means no common checkpoint: bootstrap
// fresh), and the restored world re-derives the degree-vector checksum
// and compares it to the manifest before switching resumes.

// ckManifestVersion versions the manifest schema.
const ckManifestVersion = 1

// ckManifest is the rank-0-written commit record of one checkpoint: the
// run identity a restore must match, the per-rank snapshot CRCs acked by
// the allgather, and the CRC32C of the global degree vector.
type ckManifest struct {
	Version   int      `json:"version"`
	Step      int64    `json:"step"`
	Size      int      `json:"size"`
	N         int      `json:"n"`
	M         int64    `json:"m"`
	Seed      uint64   `json:"seed"`
	Algorithm string   `json:"algorithm"`
	Scheme    string   `json:"scheme"`
	StepSize  int64    `json:"step_size"`
	RankCRCs  []uint32 `json:"rank_crcs"`
	DegreeCRC uint32   `json:"degree_crc"`
}

// checkpointer drives the per-boundary checkpoint protocol for one rank.
type checkpointer struct {
	c     *mpi.Comm
	dir   string
	every int64
	keep  int
	cfg   Config

	// restoredStepSize echoes the manifest's step size after a restore,
	// so runEngine can reject a resume under a different step size.
	restoredStepSize int64
}

// newCheckpointer validates the checkpoint configuration; nil (with no
// error) when checkpointing is off.
func newCheckpointer(c *mpi.Comm, cfg Config) (*checkpointer, error) {
	if cfg.CheckpointDir == "" {
		if cfg.Restore || cfg.RestoreStep > 0 {
			return nil, fmt.Errorf("core: Restore/RestoreStep need Config.CheckpointDir")
		}
		return nil, nil
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("core: negative CheckpointEvery %d", cfg.CheckpointEvery)
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o777); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	ck := &checkpointer{c: c, dir: cfg.CheckpointDir, every: cfg.CheckpointEvery, keep: cfg.CheckpointKeep, cfg: cfg}
	if ck.every == 0 {
		ck.every = 1
	}
	if ck.keep == 0 {
		ck.keep = 2
	}
	return ck, nil
}

func ckManifestPath(dir string, step int64) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%08d.json", step))
}

func ckSnapPath(dir string, step int64, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d-rank-%04d.ck", step, rank))
}

// ckSegPath names the hard-linked base segment of an external-mode
// snapshot (tiered storage, Config.SpillDir). The .seg suffix keeps it
// clear of the Sscanf patterns matching .ck snapshots and manifests.
func ckSegPath(dir string, step int64, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d-rank-%04d.seg", step, rank))
}

// writeAtomic writes data next to path and renames it into place, so a
// crash mid-write never leaves a half-written file under the final name.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// degreeCRC allreduces the global degree vector (the sanitizer baseline
// computation) and checksums it — identical on every rank, recorded in
// the manifest and recomputed on restore.
func (ck *checkpointer) degreeCRC(e *rankEngine) (uint32, error) {
	glob, err := ck.c.AllreduceInt64s(e.localDegrees(), mpi.OpSum)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(mpi.Int64sToBytes(glob), castagnoli), nil
}

// save runs one checkpoint at the boundary after e.stepsRun completed
// steps: snapshot write, degree checksum, CRC allgather (the ack),
// rank-0 manifest commit, commit broadcast, then GC of checkpoints
// older than the retention window.
func (ck *checkpointer) save(e *rankEngine, stepSize int64) error {
	step := e.stepsRun
	// Tiered storage checkpoints externally: force the base segment
	// current (a no-op when the boundary's compaction already ran or the
	// overlay is clean) and hard-link it next to the snapshot — the
	// segment is immutable, so publishing it costs one directory entry,
	// not an O(|E_local|) re-encode. Failures must not desert the
	// collectives below, so they ride the ack like a snapshot-write
	// failure.
	var ext *segIdentity
	var localErr error
	if ts, ok := e.adj.(*store.Tiered); ok {
		segPath := ckSegPath(ck.dir, step, ck.c.Rank())
		if err := ts.Compact(); err != nil {
			localErr = fmt.Errorf("core: compacting for checkpoint: %w", err)
		} else if err := os.Remove(segPath); err != nil && !os.IsNotExist(err) {
			localErr = fmt.Errorf("core: clearing stale checkpoint segment: %w", err)
		} else if err := store.LinkOrCopy(ts.BasePath(), segPath); err != nil {
			localErr = fmt.Errorf("core: linking checkpoint segment: %w", err)
		} else {
			ext = &segIdentity{size: ts.BaseSize(), crc: ts.BaseCRC()}
		}
	}
	snap := e.encodeSnapshot(ext)
	crc, err := snapshotCRC(snap)
	if err != nil {
		return err
	}
	// A local write failure must not desert the collectives below — the
	// peers would deadlock waiting in the allgather — so it rides in the
	// ack (a status byte ahead of the CRC) and every rank aborts this
	// checkpoint together after the commit broadcast.
	var own [5]byte
	own[0] = 1
	putU32(own[1:], crc)
	if localErr == nil {
		if werr := writeAtomic(ckSnapPath(ck.dir, step, ck.c.Rank()), snap); werr != nil {
			localErr = fmt.Errorf("core: writing checkpoint snapshot: %w", werr)
		}
	}
	if localErr != nil {
		own[0] = 0
	}
	degCRC, err := ck.degreeCRC(e)
	if err != nil {
		return err
	}
	acks, err := ck.c.Allgather(own[:])
	if err != nil {
		return err
	}
	committed := byte(1)
	for _, ack := range acks {
		if len(ack) != 5 || ack[0] == 0 {
			committed = 0
		}
	}
	if committed == 1 && ck.c.Rank() == 0 {
		man := ckManifest{
			Version:   ckManifestVersion,
			Step:      step,
			Size:      ck.c.Size(),
			N:         e.n,
			M:         e.m,
			Seed:      e.seed,
			Algorithm: string(ck.algo()),
			Scheme:    string(ck.scheme()),
			StepSize:  stepSize,
			RankCRCs:  make([]uint32, len(acks)),
			DegreeCRC: degCRC,
		}
		for r, ack := range acks {
			man.RankCRCs[r] = getU32(ack[1:])
		}
		data, merr := json.MarshalIndent(&man, "", "  ")
		if merr == nil {
			merr = writeAtomic(ckManifestPath(ck.dir, step), data)
		}
		if merr != nil {
			committed = 0
			localErr = fmt.Errorf("core: writing checkpoint manifest: %w", merr)
		}
	}
	// The commit broadcast carries rank 0's verdict: every rank learns the
	// manifest is durable before anyone deletes an older checkpoint it
	// might still need, and a manifest-write failure aborts everywhere.
	verdict, err := ck.c.Bcast(0, []byte{committed})
	if err != nil {
		return err
	}
	if len(verdict) != 1 || verdict[0] == 0 {
		if localErr != nil {
			return localErr
		}
		return fmt.Errorf("core: checkpoint at step %d aborted: a peer rank failed to write its snapshot or the manifest", step)
	}
	ck.gc(step)
	return nil
}

// algo and scheme normalize the config identity recorded in manifests.
func (ck *checkpointer) algo() Algorithm {
	a, _ := ck.cfg.algorithm()
	return a
}

func (ck *checkpointer) scheme() Scheme {
	if ck.cfg.Scheme == "" {
		return SchemeCP
	}
	return ck.cfg.Scheme
}

// gc removes this rank's snapshot files (and, on rank 0, manifests) for
// checkpoints older than the retention window. keep < 0 retains
// everything (the restore-equivalence tests restore every boundary).
//
// Snapshot deletion is keyed on a step cutoff, not on manifest
// presence: rank 0 deletes expired manifests concurrently with the
// peers' directory listings, so a peer that keyed its snapshot GC on
// still seeing the manifest would orphan the snapshot forever whenever
// it lost that race. Anything of this rank below the oldest retained
// step goes, manifest or not — which also collects orphans left by
// earlier crashed runs.
func (ck *checkpointer) gc(latest int64) {
	if ck.keep < 0 {
		return
	}
	steps := ck.manifestSteps()
	cutoff := int64(-1)
	kept := 0
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if s > latest {
			continue
		}
		kept++
		if kept <= ck.keep {
			cutoff = s
			continue
		}
		if ck.c.Rank() == 0 {
			// Best effort: a GC failure must never fail the run.
			_ = os.Remove(ckManifestPath(ck.dir, s))
		}
	}
	if cutoff < 0 {
		return
	}
	ents, err := os.ReadDir(ck.dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		var step int64
		var rank int
		// Two passes over the name: the literal suffix makes each Sscanf
		// reject the other kind (n == 2 but serr != nil on a suffix
		// mismatch), so .ck snapshots and .seg hard links GC separately.
		if n, serr := fmt.Sscanf(ent.Name(), "snap-%d-rank-%d.ck", &step, &rank); n == 2 && serr == nil && rank == ck.c.Rank() && step < cutoff {
			_ = os.Remove(filepath.Join(ck.dir, ent.Name()))
			continue
		}
		if n, serr := fmt.Sscanf(ent.Name(), "snap-%d-rank-%d.seg", &step, &rank); n == 2 && serr == nil && rank == ck.c.Rank() && step < cutoff {
			_ = os.Remove(filepath.Join(ck.dir, ent.Name()))
		}
	}
}

// manifestSteps lists the steps of all committed manifests, ascending.
func (ck *checkpointer) manifestSteps() []int64 {
	ents, err := os.ReadDir(ck.dir)
	if err != nil {
		return nil
	}
	var steps []int64
	for _, ent := range ents {
		var step int64
		if n, err := fmt.Sscanf(ent.Name(), "manifest-%d.json", &step); n == 1 && err == nil {
			steps = append(steps, step)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps
}

// loadManifest reads and validates one committed manifest against the
// run identity (world size, algorithm, scheme, seed). An identity
// mismatch is not an error — the directory may hold another run's
// checkpoints — it just makes the step non-restorable.
func (ck *checkpointer) loadManifest(step int64) (*ckManifest, error) {
	data, err := os.ReadFile(ckManifestPath(ck.dir, step))
	if err != nil {
		return nil, err
	}
	var man ckManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint manifest for step %d: %w", step, err)
	}
	if man.Version != ckManifestVersion {
		return nil, fmt.Errorf("core: checkpoint manifest version %d, this binary reads %d", man.Version, ckManifestVersion)
	}
	if man.Size != ck.c.Size() || man.Seed != ck.cfg.Seed ||
		Algorithm(man.Algorithm) != ck.algo() || Scheme(man.Scheme) != ck.scheme() ||
		len(man.RankCRCs) != man.Size {
		return nil, fmt.Errorf("core: checkpoint manifest for step %d belongs to a different run (size %d, seed %d, %s/%s)",
			step, man.Size, man.Seed, man.Algorithm, man.Scheme)
	}
	return &man, nil
}

// restorable reports whether this rank can restore the given manifest:
// its own snapshot file exists, passes the CRC32C trailer, and matches
// the CRC the manifest recorded at commit time.
func (ck *checkpointer) restorable(man *ckManifest) ([]byte, error) {
	data, err := os.ReadFile(ckSnapPath(ck.dir, man.Step, ck.c.Rank()))
	if err != nil {
		return nil, err
	}
	crc, err := snapshotCRC(data)
	if err != nil {
		return nil, err
	}
	if crc != man.RankCRCs[ck.c.Rank()] {
		return nil, fmt.Errorf("core: rank %d snapshot for step %d carries CRC %08x, manifest recorded %08x — the file does not belong to this checkpoint; delete it and restore an earlier step",
			ck.c.Rank(), man.Step, crc, man.RankCRCs[ck.c.Rank()])
	}
	// Full trailer + header verification up front, so a corrupted file
	// surfaces here (making the step non-restorable or, for an exact
	// RestoreStep request, an actionable error) rather than mid-restore.
	st, _, err := decodeSnapshotHeader(data)
	if err != nil {
		return nil, err
	}
	if st.storage == snapStorageExternal {
		// Cheap identity check of the hard-linked segment: size plus the
		// stored trailer CRC value. The full content verification runs at
		// restore (store.OpenSegment / AdoptSegment hash every byte).
		if err := checkSegIdentity(ckSegPath(ck.dir, man.Step, ck.c.Rank()), st.seg); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// checkSegIdentity verifies that the file at path has the expected size
// and carries the expected CRC32C trailer value, without hashing it.
func checkSegIdentity(path string, id segIdentity) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != id.size {
		return fmt.Errorf("core: checkpoint segment %s is %d bytes, snapshot recorded %d", path, fi.Size(), id.size)
	}
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], id.size-4); err != nil {
		return err
	}
	if got := getU32(trailer[:]); got != id.crc {
		return fmt.Errorf("core: checkpoint segment %s carries CRC %08x, snapshot recorded %08x", path, got, id.crc)
	}
	return nil
}

// agreeRestoreStep is the rollback collective: each rank offers the
// newest step it can restore (or the exact cfg.RestoreStep) and the
// world agrees on the minimum, so every rank restores the same boundary.
// Step 0 means at least one rank has no usable checkpoint: the world
// bootstraps fresh. The snapshot bytes for the agreed step are returned
// along with its manifest.
func (ck *checkpointer) agreeRestoreStep() (int64, *ckManifest, []byte, error) {
	var local int64
	var firstErr error
	if ck.cfg.RestoreStep > 0 {
		man, err := ck.loadManifest(ck.cfg.RestoreStep)
		if err == nil {
			if _, err = ck.restorable(man); err == nil {
				local = ck.cfg.RestoreStep
			}
		}
		firstErr = err
	} else {
		steps := ck.manifestSteps()
		for i := len(steps) - 1; i >= 0 && local == 0; i-- {
			man, err := ck.loadManifest(steps[i])
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if _, err := ck.restorable(man); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			local = steps[i]
		}
	}
	agreed, err := ck.c.AllreduceInt64s([]int64{local}, mpi.OpMin)
	if err != nil {
		return 0, nil, nil, err
	}
	step := agreed[0]
	if step == 0 {
		if ck.cfg.RestoreStep > 0 {
			// An exact-step restore that cannot be honored is an error, not
			// a silent fresh start; report why this rank (or a peer)
			// rejected it.
			if firstErr == nil {
				firstErr = fmt.Errorf("a peer rank could not restore it")
			}
			return 0, nil, nil, fmt.Errorf("core: rank %d cannot restore requested checkpoint step %d: %w", ck.c.Rank(), ck.cfg.RestoreStep, firstErr)
		}
		return 0, nil, nil, nil
	}
	man, err := ck.loadManifest(step)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("core: rank %d lost checkpoint manifest for agreed step %d: %w", ck.c.Rank(), step, err)
	}
	snap, err := ck.restorable(man)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("core: rank %d lost checkpoint snapshot for agreed step %d: %w", ck.c.Rank(), step, err)
	}
	return step, man, snap, nil
}

// restoreEngine rebuilds a rank engine from the agreed checkpoint. It
// returns (nil, 0, nil) when the world agreed there is nothing to
// restore — the caller bootstraps fresh. The restored world re-derives
// the global degree checksum and compares it to the manifest: the
// sanitizer's degree baseline doubling as the restore integrity check.
func (ck *checkpointer) restoreEngine(pt partition.Partitioner, n int, m int64, cfg Config) (*rankEngine, int64, error) {
	step, man, snap, err := ck.agreeRestoreStep()
	if err != nil || step == 0 {
		return nil, 0, err
	}
	if man.N != n {
		return nil, 0, fmt.Errorf("core: checkpoint step %d is for %d vertices, this run has %d", step, man.N, n)
	}
	if m >= 0 && man.M != m {
		return nil, 0, fmt.Errorf("core: checkpoint step %d is for %d edges, this run has %d", step, man.M, m)
	}
	e, err := newEmptyRankEngine(ck.c, pt, n, cfg)
	if err != nil {
		return nil, 0, err
	}
	st, adjData, err := decodeSnapshotHeader(snap)
	if err != nil {
		return nil, 0, err
	}
	if err := e.validateSnapshot(st, ck.algo()); err != nil {
		return nil, 0, err
	}
	if st.m != man.M || st.step != step {
		return nil, 0, fmt.Errorf("core: snapshot for step %d disagrees with its manifest (m %d vs %d, step %d)", step, st.m, man.M, st.step)
	}
	if st.storage == snapStorageExternal {
		err = e.loadSnapshotSegment(ckSegPath(ck.dir, step, ck.c.Rank()), st.seg)
	} else {
		err = e.loadSnapshotAdjacency(adjData)
	}
	if err != nil {
		return nil, 0, err
	}
	if err := e.finishLoad(man.M, cfg); err != nil {
		return nil, 0, err
	}
	// finishLoad derived load-time values from the restored partition;
	// reinstate the captured run state on top of it.
	if e.origLocal != st.origLocal {
		return nil, 0, fmt.Errorf("core: restored partition holds %d originals, snapshot recorded %d", e.origLocal, st.origLocal)
	}
	e.initialEdges = st.initialEdges
	e.stepsRun = st.step
	e.restoredStep = st.step
	e.opsInitiated, e.restarts, e.forfeited, e.msgsSent = st.opsInitiated, st.restarts, st.forfeited, st.msgsSent
	e.tot = st.tot
	e.winMax = int(st.winMax)
	if err := e.rnd.SetState(st.rnd); err != nil {
		return nil, 0, err
	}
	e.rand.restoreCursor(st.cursor)
	if e.winCtl != nil && st.window > 0 {
		// The AIMD controller's full trajectory is not serialized; restart
		// it from the captured window so the resumed run opens where the
		// interrupted one left off (see DESIGN.md §6).
		e.winCtl = window.New(window.Config{
			Ranks:   ck.c.Size(),
			Floor:   cfg.WindowFloor,
			Ceiling: cfg.WindowCeiling,
			Start:   int(st.window),
		})
	}
	// Every rank verified its snapshot (and segment identity) in
	// restorable() before the step was agreed, so the per-rank load and
	// decode error paths above fire only on a corruption race, where the
	// whole restore is abandoned anyway.
	// collsync: post-agreement ranks cannot routinely diverge (see above)
	degCRC, err := ck.degreeCRC(e)
	if err != nil {
		return nil, 0, err
	}
	if degCRC != man.DegreeCRC {
		return nil, 0, fmt.Errorf("core: rank %d restore of step %d: restored global degree sequence hashes to %08x, manifest recorded %08x — the checkpoint set is inconsistent (mixed steps or corrupted snapshot); delete step %d under %s and restore an earlier step",
			ck.c.Rank(), step, degCRC, man.DegreeCRC, step, ck.dir)
	}
	ck.restoredStepSize = man.StepSize
	return e, step, nil
}
