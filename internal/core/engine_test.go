package core

import (
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

// newTestEngine builds a single-rank edge-switch engine around a small
// graph.
func newTestEngine(t *testing.T, g *graph.Graph) (*rankEngine, *mpi.World) {
	t.Helper()
	return newTestEngineCfg(t, g, Config{Seed: 5, CheckInvariants: true})
}

// newTestEngineCfg builds a single-rank engine with an explicit config
// (notably Config.Algorithm, for exercising the randomizer seam).
func newTestEngineCfg(t *testing.T, g *graph.Graph, cfg Config) (*rankEngine, *mpi.World) {
	t.Helper()
	w, err := mpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.NewCP(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	var edges []flaggedEdge
	for ui := 0; ui < g.N(); ui++ {
		u := graph.Vertex(ui)
		g.WalkReduced(u, func(v graph.Vertex, orig bool) bool {
			edges = append(edges, flaggedEdge{graph.Edge{U: u, V: v}, orig})
			return true
		})
	}
	var eng *rankEngine
	err = w.Run(func(c *mpi.Comm) error {
		var err error
		eng, err = newRankEngine(c, pt, g.N(), g.M(), edges, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

// es extracts the edge-switch randomizer behind a test engine's seam.
func es(t *testing.T, eng *rankEngine) *edgeSwitcher {
	t.Helper()
	r, ok := eng.rand.(*edgeSwitcher)
	if !ok {
		t.Fatalf("engine randomizer is %T, want *edgeSwitcher", eng.rand)
	}
	return r
}

func TestEngineLoadsPartition(t *testing.T) {
	r := rng.New(1)
	g, err := gen.ErdosRenyi(r, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	if eng.deg.Total() != g.M() {
		t.Fatalf("loaded %d edges, want %d", eng.deg.Total(), g.M())
	}
	if eng.initialEdges != g.M() {
		t.Fatalf("initialEdges %d", eng.initialEdges)
	}
	if len(eng.verts) != g.N() {
		t.Fatalf("verts %d", len(eng.verts))
	}
	// Every original edge must be present and conflict-detected.
	for _, e := range g.Edges() {
		conflict, transient := es(t, eng).conflicts(e)
		if !conflict {
			t.Fatalf("loaded edge %v not seen by conflict check", e)
		}
		if transient {
			t.Fatalf("loaded edge %v misclassified as transient", e)
		}
	}
}

func TestEngineTakeReinsertDiscard(t *testing.T) {
	r := rng.New(2)
	g, err := gen.ErdosRenyi(r, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()

	sw := es(t, eng)
	e := sw.takeRandomEdge()
	if eng.deg.Total() != g.M()-1 {
		t.Fatalf("degree total after take: %d", eng.deg.Total())
	}
	if conflict, transient := es(t, eng).conflicts(e); !conflict || !transient {
		t.Fatalf("in-hand edge: conflict=%v transient=%v, want transient conflict", conflict, transient)
	}
	if err := sw.reinsert(e); err != nil {
		t.Fatal(err)
	}
	if eng.deg.Total() != g.M() {
		t.Fatalf("degree total after reinsert: %d", eng.deg.Total())
	}
	if err := sw.reinsert(e); err == nil {
		t.Fatal("double reinsert accepted")
	}

	e2 := sw.takeRandomEdge()
	if err := sw.discard(e2); err != nil {
		t.Fatal(err)
	}
	if eng.deg.Total() != g.M()-1 {
		t.Fatalf("degree total after discard: %d", eng.deg.Total())
	}
	if err := sw.discard(e2); err == nil {
		t.Fatal("double discard accepted")
	}
}

func TestEngineTakePreservesOriginalFlag(t *testing.T) {
	r := rng.New(3)
	g := graph.New(4)
	g.AddEdge(graph.Edge{U: 0, V: 1}, r)     // original
	g.AddModified(graph.Edge{U: 2, V: 3}, r) // modified
	eng, w := newTestEngine(t, g)
	defer w.Close()
	// Take both, reinsert both; flags must survive the round trip.
	r2 := es(t, eng)
	a := r2.takeRandomEdge()
	b := r2.takeRandomEdge()
	if err := r2.reinsert(a); err != nil {
		t.Fatal(err)
	}
	if err := r2.reinsert(b); err != nil {
		t.Fatal(err)
	}
	li01 := eng.index[0]
	li23 := eng.index[2]
	if !eng.adj.Original(int(li01), 1) {
		t.Fatal("original flag lost on (0,1)")
	}
	if eng.adj.Original(int(li23), 3) {
		t.Fatal("modified edge became original on (2,3)")
	}
}

func TestEngineConflictsChecksPotential(t *testing.T) {
	r := rng.New(4)
	g, err := gen.ErdosRenyi(r, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	// A fresh non-edge.
	var candidate graph.Edge
	for u := graph.Vertex(0); u < 19; u++ {
		e := graph.Edge{U: u, V: u + 1}
		if !g.HasEdge(e) {
			candidate = e
			break
		}
	}
	if candidate == (graph.Edge{}) {
		t.Skip("graph too dense for a candidate")
	}
	rs := es(t, eng)
	if conflict, _ := rs.conflicts(candidate); conflict {
		t.Fatal("fresh edge conflicts")
	}
	rs.potential[candidate] = opID{rank: 0, seq: 1}
	if conflict, transient := rs.conflicts(candidate); !conflict || !transient {
		t.Fatalf("reserved edge: conflict=%v transient=%v, want transient conflict", conflict, transient)
	}
}

func TestEnginePickPartnerRespectsWeights(t *testing.T) {
	r := rng.New(5)
	g, err := gen.ErdosRenyi(r, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	// Fake a 3-rank cumulative edge distribution 10/0/30.
	rp := es(t, eng)
	rp.cumEdges = []int64{0, 10, 10, 40}
	counts := [3]int{}
	for i := 0; i < 40000; i++ {
		counts[rp.pickPartner()]++
	}
	if counts[1] != 0 {
		t.Fatalf("empty rank selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("partner weights off: %v (ratio %f, want ~3)", counts, ratio)
	}
}

func TestEngineOwnerRoutesByMinEndpoint(t *testing.T) {
	r := rng.New(6)
	g, err := gen.ErdosRenyi(r, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.NewHPD(4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *mpi.Comm) error {
		eng, err := newRankEngine(c, pt, g.N(), g.M(), nil, Config{Seed: 7, CheckInvariants: true})
		if err != nil {
			return err
		}
		for _, e := range []graph.Edge{{U: 0, V: 5}, {U: 3, V: 9}, {U: 7, V: 8}} {
			if got, want := eng.owner(e), int(e.U)%4; got != want {
				t.Errorf("owner(%v) = %d, want %d", e, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
