package core

import (
	"edgeswitch/internal/mpi"
)

// The batching message plane: the conversation protocol produces many
// tiny (tens of bytes) messages, and per-message transport sends
// dominated engine overhead at higher rank counts — mailbox locking on
// the mem transport, one frame write per message on TCP. sendBuffer
// coalesces all protocol messages bound for the same destination rank
// into a single framed payload (see appendOpMsg), flushed at the points
// where the step loop can block; a step's worth of conversation traffic
// to a rank then costs one transport send instead of one per message.
//
// Buffer ownership rules: the sender draws an encode buffer from its
// own freelist (getBuf), ownership moves to the receiver with mpi
// SendOwned, and the receiver returns the buffer to *its* freelist
// after dispatching the records (recycle). Buffers therefore migrate
// between ranks over a run, but at any moment each buffer has exactly
// one owner, so the freelists need no locking. TCP-path receive
// allocations enter a freelist the same way. An earlier design used a
// global sync.Pool here; the Get/Put round trip boxes every []byte
// into an interface and was itself a top allocation site.

// initialBatchCap presizes fresh batch buffers: big enough that a
// typical step batch (a window's worth of ~30-byte records) never
// regrows, small enough that idle destinations cost nothing much.
const initialBatchCap = 4 << 10

// maxPooledBatch caps the capacity of recycled buffers so a one-off
// jumbo batch does not pin memory for the rest of the run.
const maxPooledBatch = 1 << 20

// maxFreeBufs caps the freelist length; beyond steady-state churn the
// excess is left for the GC.
const maxFreeBufs = 16

// sendBuffer coalesces one rank's outbound protocol messages per
// destination and owns the rank's batch-buffer freelist. It is not safe
// for concurrent use; each rank engine owns exactly one.
type sendBuffer struct {
	c    *mpi.Comm
	bufs [][]byte // indexed by destination rank; nil/empty when idle
	free [][]byte // recycled batch buffers, single-owner, unlocked
}

func (sb *sendBuffer) init(c *mpi.Comm) {
	sb.c = c
	sb.bufs = make([][]byte, c.Size())
}

// getBuf pops a recycled buffer or allocates a presized fresh one.
//
//es:hotpath
func (sb *sendBuffer) getBuf() []byte {
	if n := len(sb.free); n > 0 {
		b := sb.free[n-1]
		sb.free[n-1] = nil
		sb.free = sb.free[:n-1]
		return b
	}
	return make([]byte, 0, initialBatchCap) // hotalloc: freelist miss; presized so the buffer never regrows in steady state
}

// recycle returns a buffer the caller has finished reading — usually
// one that arrived from a peer via SendOwned — to this rank's freelist.
//
//es:hotpath
func (sb *sendBuffer) recycle(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBatch || len(sb.free) >= maxFreeBufs {
		return
	}
	sb.free = append(sb.free, b[:0]) // hotalloc: freelist return, bounded by maxFreeBufs
}

// add queues m for dst. Messages to one destination are delivered in
// add order within and across batches (the transports are FIFO per
// (src,dst) pair), so coalescing preserves the protocol's ordering
// assumptions.
//
//es:hotpath
func (sb *sendBuffer) add(dst int, m opMsg) {
	if sb.bufs[dst] == nil {
		sb.bufs[dst] = sb.getBuf()
	}
	sb.bufs[dst] = appendOpMsg(sb.bufs[dst], m)
}

// flushDst hands dst's pending batch to the transport, transferring
// buffer ownership to the receiver.
//
//es:hotpath
func (sb *sendBuffer) flushDst(dst int) error {
	b := sb.bufs[dst]
	if len(b) == 0 {
		return nil
	}
	sb.bufs[dst] = nil
	return sb.c.SendOwned(dst, opTag, b)
}

// flush sends every pending batch.
//
//es:hotpath
func (sb *sendBuffer) flush() error {
	for dst, b := range sb.bufs {
		if len(b) == 0 {
			continue
		}
		sb.bufs[dst] = nil
		if err := sb.c.SendOwned(dst, opTag, b); err != nil {
			return err
		}
	}
	return nil
}

// pendingBytes reports queued-but-unflushed bytes (step-invariant
// diagnostics: a step must end fully flushed).
func (sb *sendBuffer) pendingBytes() int {
	n := 0
	for _, b := range sb.bufs {
		n += len(b)
	}
	return n
}
