package core

import (
	"sync"

	"edgeswitch/internal/mpi"
)

// The batching message plane: the conversation protocol produces many
// tiny (tens of bytes) messages, and per-message transport sends
// dominated engine overhead at higher rank counts — mailbox locking on
// the mem transport, one frame write per message on TCP. sendBuffer
// coalesces all protocol messages bound for the same destination rank
// into a single framed payload (see appendOpMsg), flushed at the points
// where the step loop can block; a step's worth of conversation traffic
// to a rank then costs one transport send instead of one per message.

// batchPool recycles batch buffers: the sender draws an encode buffer
// here, ownership moves to the receiver with mpi SendOwned, and the
// receiver returns the buffer after dispatching its records. TCP-path
// receive allocations feed the pool the same way.
var batchPool = sync.Pool{New: func() any { return []byte(nil) }}

// maxPooledBatch caps the capacity of recycled buffers so a one-off
// jumbo batch does not pin memory for the rest of the run.
const maxPooledBatch = 1 << 20

func getBatchBuf() []byte {
	return batchPool.Get().([]byte)[:0]
}

// putBatchBuf recycles a buffer the caller has finished reading.
func putBatchBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBatch {
		return
	}
	batchPool.Put(b[:0])
}

// sendBuffer coalesces one rank's outbound protocol messages per
// destination. It is not safe for concurrent use; each rank engine owns
// exactly one.
type sendBuffer struct {
	c    *mpi.Comm
	bufs [][]byte // indexed by destination rank; nil/empty when idle
}

func (sb *sendBuffer) init(c *mpi.Comm) {
	sb.c = c
	sb.bufs = make([][]byte, c.Size())
}

// add queues m for dst. Messages to one destination are delivered in
// add order within and across batches (the transports are FIFO per
// (src,dst) pair), so coalescing preserves the protocol's ordering
// assumptions.
func (sb *sendBuffer) add(dst int, m opMsg) {
	if sb.bufs[dst] == nil {
		sb.bufs[dst] = getBatchBuf()
	}
	sb.bufs[dst] = appendOpMsg(sb.bufs[dst], m)
}

// flushDst hands dst's pending batch to the transport, transferring
// buffer ownership to the receiver.
func (sb *sendBuffer) flushDst(dst int) error {
	b := sb.bufs[dst]
	if len(b) == 0 {
		return nil
	}
	sb.bufs[dst] = nil
	return sb.c.SendOwned(dst, opTag, b)
}

// flush sends every pending batch.
func (sb *sendBuffer) flush() error {
	for dst, b := range sb.bufs {
		if len(b) == 0 {
			continue
		}
		sb.bufs[dst] = nil
		if err := sb.c.SendOwned(dst, opTag, b); err != nil {
			return err
		}
	}
	return nil
}

// pendingBytes reports queued-but-unflushed bytes (step-invariant
// diagnostics: a step must end fully flushed).
func (sb *sendBuffer) pendingBytes() int {
	n := 0
	for _, b := range sb.bufs {
		n += len(b)
	}
	return n
}
