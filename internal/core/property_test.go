package core

import (
	"testing"
	"testing/quick"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// TestParallelInvariantsProperty drives the parallel engine with
// quick-generated configurations (graph size, rank count, scheme, step
// size, operation count) and asserts the schedule-independent invariants:
// simplicity, degree preservation, edge-count conservation, and operation
// accounting.
func TestParallelInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("many parallel runs")
	}
	schemes := Schemes()
	f := func(seed uint64, nRaw, mRaw, pRaw, sRaw, tRaw uint16) bool {
		r := rng.New(seed)
		n := 30 + int(nRaw%400)
		maxM := int64(n) * int64(n-1) / 2
		m := int64(n) + int64(mRaw%2000)
		if m > maxM {
			m = maxM
		}
		g, err := gen.ErdosRenyi(r, n, m)
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		p := 1 + int(pRaw%6)
		tOps := 1 + int64(tRaw%500)
		stepSize := int64(sRaw % 200) // 0 => single step
		cfg := Config{
			Ranks:    p,
			Scheme:   schemes[seed%uint64(len(schemes))],
			StepSize: stepSize,
			Seed:     seed,
		}
		res, err := Parallel(g, tOps, cfg)
		if err != nil {
			t.Logf("parallel: %v", err)
			return false
		}
		if res.Ops+res.Forfeited != tOps {
			t.Logf("accounting: ops %d + forfeits %d != %d", res.Ops, res.Forfeited, tOps)
			return false
		}
		if res.Graph.M() != g.M() {
			t.Logf("edge count changed")
			return false
		}
		if err := res.Graph.CheckSimple(); err != nil {
			t.Logf("not simple: %v", err)
			return false
		}
		if !sameDegrees(degreeMultiset(g), degreeMultiset(res.Graph)) {
			t.Logf("degrees changed")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialMatchesParallelP1Distribution: with p=1 the parallel
// engine realizes the same stochastic process as the sequential
// algorithm (all switches local, executed one after another). Compare the
// distribution of a scalar summary — the number of original edges
// remaining — across many runs.
func TestSequentialMatchesParallelP1Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("many runs")
	}
	r := rng.New(55)
	g, err := gen.ErdosRenyi(r, 200, 800)
	if err != nil {
		t.Fatal(err)
	}
	const tOps = 300
	const runs = 60
	var seqSum, parSum float64
	for i := 0; i < runs; i++ {
		rr := rng.New(uint64(7000 + i))
		work := g.Clone(rr)
		if _, err := Sequential(work, tOps, rr); err != nil {
			t.Fatal(err)
		}
		seqSum += float64(work.Originals())

		res, err := Parallel(g, tOps, Config{Ranks: 1, Seed: uint64(9000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		parSum += float64(res.Graph.Originals())
	}
	seqMean := seqSum / runs
	parMean := parSum / runs
	// Same process => same expected originals. Allow generous sampling
	// noise (std of originals is ~sqrt(m·x·(1-x)) ≈ 13, /sqrt(60) ≈ 1.7).
	if diff := seqMean - parMean; diff > 12 || diff < -12 {
		t.Fatalf("originals diverge: seq %.1f vs par(p=1) %.1f", seqMean, parMean)
	}
}

// TestParallelEdgeSetReachable: the parallel chain must be able to reach
// edges outside the initial edge set in every partition (no partition is
// frozen), checked by asserting that every rank's final edge set differs
// from its initial one after a heavy run.
func TestParallelChurnsEveryPartition(t *testing.T) {
	r := rng.New(66)
	g, err := gen.ErdosRenyi(r, 1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	tOps, err := OpsForVisitRate(g.M(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallel(g, tOps, Config{Ranks: 4, Scheme: SchemeHPU, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for rank, ops := range res.RankOps {
		if ops == 0 {
			t.Fatalf("rank %d initiated no operations: %v", rank, res.RankOps)
		}
	}
	if res.VisitRate < 0.99 {
		t.Fatalf("visit rate %v", res.VisitRate)
	}
}

// TestReplacementPreservesDegreeProperty: for arbitrary valid edge pairs,
// both switch kinds preserve the endpoint degree multiset.
func TestReplacementPreservesDegreeProperty(t *testing.T) {
	f := func(a, b, c, d uint8, straight bool) bool {
		e1 := graph.Edge{U: graph.Vertex(a), V: graph.Vertex(b)}.Norm()
		e2 := graph.Edge{U: graph.Vertex(c), V: graph.Vertex(d)}.Norm()
		if e1.IsLoop() || e2.IsLoop() || switchInvalid(e1, e2) {
			return true // not a valid switch; nothing to check
		}
		kind := Cross
		if straight {
			kind = Straight
		}
		na, nb := replacement(e1, e2, kind)
		// Endpoint multiset preserved.
		count := map[graph.Vertex]int{}
		for _, e := range []graph.Edge{e1, e2} {
			count[e.U]++
			count[e.V]++
		}
		for _, e := range []graph.Edge{na, nb} {
			count[e.U]--
			count[e.V]--
		}
		for _, v := range count {
			if v != 0 {
				return false
			}
		}
		// Replacements normalized and loop-free.
		return na.U < na.V && nb.U < nb.V
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
