package core

import (
	"fmt"
	"sort"

	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

// The distributed-generation bootstrap (Config.DistributedGen): the
// rank-0 generate-and-scatter path materializes the whole graph on one
// rank and ships p−1 partitions over the wire before a single switch
// runs — O(m) memory and O(m) communication concentrated where the
// paper's scaling argument assumes O(m/p). Here every rank instead
// resolves the generator's counter streams itself (internal/gen/pergen)
// and inserts exactly the edges its partition owns. The only collective
// before switching is an 8-byte allreduce establishing the exact global
// edge count — needed because duplicate contact cross slots collapse at
// their owning rank, so the count is known only after the scan.

// runRankGen is RunRank's bootstrap path for cfg.DistributedGen.
func runRankGen(c *mpi.Comm, t int64, cfg Config) (*Result, error) {
	spec := *cfg.DistributedGen
	gn, err := pergen.New(spec)
	if err != nil {
		return nil, err
	}
	pt, err := genPartitioner(gn, cfg.Scheme, c.Size(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	ck, err := newCheckpointer(c, cfg)
	if err != nil {
		return nil, err
	}
	var eng *rankEngine
	if cfg.Restore {
		// The generated graph's edge count is known only after the scan,
		// so the manifest's m is trusted (m = -1 skips the cross-check);
		// the degree-CRC comparison still pins the restored state exactly.
		eng, _, err = ck.restoreEngine(pt, gn.N(), -1, cfg)
		if err != nil {
			return nil, err
		}
	}
	if eng == nil {
		eng, err = newRankEngineFromGen(c, pt, gn, cfg)
		if err != nil {
			return nil, err
		}
	}
	eng.ckpt = ck
	if eng.m < 2 && t > 0 {
		return nil, fmt.Errorf("core: need at least 2 edges to switch, generator spec yields %d", eng.m)
	}
	return runEngine(eng, t, cfg, func(out *graph.Graph) *Baseline {
		if eng.baseDeg != nil {
			// The sanitized run recorded the global degree sequence right
			// after the partitions were generated (recordBaseline) —
			// exactly the fingerprint switching must preserve.
			return &Baseline{N: eng.n, M: eng.m, Degrees: eng.baseDeg}
		}
		// t == 0: nothing switched, so the reassembled graph doubles as
		// its own baseline and the check reduces to simplicity.
		return NewBaseline(out)
	})
}

// genPartitioner mirrors NewPartitioner without a graph: CP boundaries
// come from the spec-derived reduced-degree table, which every rank
// computes identically.
func genPartitioner(gn *pergen.Gen, scheme Scheme, p int, seed uint64) (partition.Partitioner, error) {
	switch scheme {
	case SchemeCP, "":
		return partition.NewCPFromReduced(gn.ReducedDegrees(), p)
	case SchemeHPD:
		return partition.NewHPD(p)
	case SchemeHPM:
		return partition.NewHPM(p)
	case SchemeHPU:
		return partition.NewHPU(p, rng.Split(seed, 1<<20))
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", scheme)
	}
}

// genEdge is one owned edge of the generation scan with the treap
// priority drawn at emission time — buffering the draw keeps the rank's
// RNG consumption (one Uint32 per emitted edge, duplicates included)
// identical to inserting during the scan, so the switching phase sees
// the same stream position either way.
type genEdge struct {
	u, v graph.Vertex
	prio uint32
}

// newRankEngineFromGen loads a rank engine directly from the generator:
// one pass over the spec's edge enumeration buffers the edges this rank
// owns, then each owned vertex's adjacency is bulk-built in O(d) from
// its sorted targets (graph.BuildSorted), producing the same adjacency
// sets as one-at-a-time insertion without its O(d log d) descents —
// which dominate the bootstrap once the enumeration itself is cheap.
// Grouping by owner is a counting sort keyed on the dense local index
// (a comparison sort over the whole buffer would cost more than the
// treap work it saves); within a group, targets are insertion-sorted —
// reduced adjacencies are small on average, and the large PA hub groups
// that would degrade it quadratically fall back to sort.Slice. A
// repeated edge (contact cross-slot collisions, birthday-rare) keeps
// one emitted copy's priority — which copy is unspecified, and
// immaterial: priorities only steer treap shape. Both copies share
// their minimum endpoint, so duplicates collapse wholly inside one rank
// and the global edge set stays independent of p.
func newRankEngineFromGen(c *mpi.Comm, pt partition.Partitioner, gn *pergen.Gen, cfg Config) (*rankEngine, error) {
	e, err := newEmptyRankEngine(c, pt, gn.N(), cfg)
	if err != nil {
		return nil, err
	}
	p := c.Size()
	buf := make([]genEdge, 0, int(gn.Spec().MaxEdges()/int64(p))+gn.N()/p+16)
	gn.PartitionEdges(pt, c.Rank(), func(ed graph.Edge) {
		buf = append(buf, genEdge{ed.U, ed.V, e.rnd.Uint32()})
	})

	// Dense local-index table for the load: the engine's map serves
	// sparse protocol-time queries, but the bulk load would hit it once
	// per owned edge. PartitionEdges only hands owned minimum endpoints,
	// so entries for foreign vertices are never read.
	lookup := make([]int32, gn.N())
	for i, v := range e.verts {
		lookup[v] = int32(i)
	}

	// Counting sort: group the buffer by owner vertex in two O(m/p)
	// passes, preserving emission order within each group.
	nv := len(e.verts)
	starts := make([]int32, nv+1)
	for i := range buf {
		starts[lookup[buf[i].u]+1]++
	}
	for li := 0; li < nv; li++ {
		starts[li+1] += starts[li]
	}
	sorted := make([]genEdge, len(buf))
	pos := make([]int32, nv)
	copy(pos, starts[:nv])
	for i := range buf {
		li := lookup[buf[i].u]
		sorted[pos[li]] = buf[i]
		pos[li]++
	}

	counts := make([]int64, nv)
	var keys []graph.Vertex
	var prios []uint32
	for li := 0; li < nv; li++ {
		grp := sorted[starts[li]:starts[li+1]]
		if len(grp) == 0 {
			continue
		}
		if len(grp) <= 32 {
			// Stable, so a duplicate's first emission sorts first.
			for i := 1; i < len(grp); i++ {
				for j := i; j > 0 && grp[j].v < grp[j-1].v; j-- {
					grp[j], grp[j-1] = grp[j-1], grp[j]
				}
			}
		} else {
			sort.Slice(grp, func(i, j int) bool { return grp[i].v < grp[j].v })
		}
		keys, prios = keys[:0], prios[:0]
		for i := range grp {
			if n := len(keys); n > 0 && keys[n-1] == grp[i].v {
				continue // duplicate emission collapses here
			}
			keys = append(keys, grp[i].v)
			prios = append(prios, grp[i].prio)
		}
		e.adj.BuildSorted(li, keys, prios, true)
		counts[li] = int64(len(keys))
	}
	e.deg = graph.NewFenwickFrom(counts)
	total, err := c.AllreduceInt64s([]int64{e.deg.Total()}, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	if err := e.finishLoad(total[0], cfg); err != nil {
		return nil, err
	}
	return e, nil
}
