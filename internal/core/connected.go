package core

import (
	"fmt"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// ConnectedSwitcher performs edge switches under a connectivity
// constraint (§1: "edge switching can be paired with additional
// constraints such as imposing a connectivity requirement" — the variant
// NetworkX exposes as connected double-edge swap). A switch that would
// disconnect the graph is rejected and undone.
//
// The constraint needs whole-graph reachability queries, so this type
// keeps its own flat edge array plus full adjacency sets instead of the
// reduced-adjacency-list Graph: uniform edge selection and switching are
// O(1), and the post-switch connectivity check is two BFS searches
// (u1⇝v1 and u2⇝v2 — the graph stays connected iff both endpoints pairs
// of the removed edges remain connected, since any old path can be
// rerouted through the new edges).
type ConnectedSwitcher struct {
	n     int
	edges []graph.Edge
	pos   map[graph.Edge]int
	adj   []map[graph.Vertex]struct{}
	rnd   *rng.RNG

	// scratch for BFS
	visited []int32
	epoch   int32
	queue   []graph.Vertex
}

// NewConnectedSwitcher copies g (which must be connected) into the
// switcher's representation.
func NewConnectedSwitcher(g *graph.Graph, r *rng.RNG) (*ConnectedSwitcher, error) {
	cs := &ConnectedSwitcher{
		n:       g.N(),
		edges:   g.Edges(),
		pos:     make(map[graph.Edge]int, g.M()),
		adj:     make([]map[graph.Vertex]struct{}, g.N()),
		rnd:     r,
		visited: make([]int32, g.N()),
	}
	for i := range cs.adj {
		cs.adj[i] = make(map[graph.Vertex]struct{})
	}
	for i, e := range cs.edges {
		cs.pos[e] = i
		cs.adj[e.U][e.V] = struct{}{}
		cs.adj[e.V][e.U] = struct{}{}
	}
	if !cs.connectedFrom(0) {
		return nil, fmt.Errorf("core: connectivity-constrained switching requires a connected input graph")
	}
	return cs, nil
}

// connectedFrom checks that every vertex is reachable from src.
func (cs *ConnectedSwitcher) connectedFrom(src graph.Vertex) bool {
	if cs.n == 0 {
		return true
	}
	count := 0
	cs.bfs(src, func(graph.Vertex) bool { count++; return false })
	return count == cs.n
}

// bfs explores from src; stop(v) returning true ends the search early.
func (cs *ConnectedSwitcher) bfs(src graph.Vertex, stop func(graph.Vertex) bool) {
	cs.epoch++
	cs.visited[src] = cs.epoch
	cs.queue = append(cs.queue[:0], src)
	if stop(src) {
		return
	}
	for len(cs.queue) > 0 {
		u := cs.queue[0]
		cs.queue = cs.queue[1:]
		for v := range cs.adj[u] {
			if cs.visited[v] != cs.epoch {
				cs.visited[v] = cs.epoch
				if stop(v) {
					return
				}
				cs.queue = append(cs.queue, v)
			}
		}
	}
}

// reaches reports whether dst is reachable from src.
func (cs *ConnectedSwitcher) reaches(src, dst graph.Vertex) bool {
	found := false
	cs.bfs(src, func(v graph.Vertex) bool {
		if v == dst {
			found = true
			return true
		}
		return false
	})
	return found
}

// hasEdge tests edge existence.
func (cs *ConnectedSwitcher) hasEdge(e graph.Edge) bool {
	_, ok := cs.adj[e.U][e.V]
	return ok
}

// removeEdge deletes e (must exist) in O(1) via swap-with-last.
func (cs *ConnectedSwitcher) removeEdge(e graph.Edge) {
	e = e.Norm()
	i := cs.pos[e]
	last := len(cs.edges) - 1
	cs.edges[i] = cs.edges[last]
	cs.pos[cs.edges[i]] = i
	cs.edges = cs.edges[:last]
	delete(cs.pos, e)
	delete(cs.adj[e.U], e.V)
	delete(cs.adj[e.V], e.U)
}

// addEdge inserts e (must not exist).
func (cs *ConnectedSwitcher) addEdge(e graph.Edge) {
	e = e.Norm()
	cs.pos[e] = len(cs.edges)
	cs.edges = append(cs.edges, e)
	cs.adj[e.U][e.V] = struct{}{}
	cs.adj[e.V][e.U] = struct{}{}
}

// Switch performs t connectivity-preserving edge switch operations.
// Rejections (useless, loop, parallel edge, or disconnecting switches)
// restart with a fresh pair and are counted as restarts.
func (cs *ConnectedSwitcher) Switch(t int64) (SeqStats, error) {
	if t < 0 {
		return SeqStats{}, fmt.Errorf("core: negative operation count %d", t)
	}
	if len(cs.edges) < 2 && t > 0 {
		return SeqStats{}, fmt.Errorf("core: need at least 2 edges to switch, have %d", len(cs.edges))
	}
	var st SeqStats
	for st.Ops < t {
		e1 := cs.edges[cs.rnd.Intn(len(cs.edges))]
		e2 := cs.edges[cs.rnd.Intn(len(cs.edges))]
		if switchInvalid(e1, e2) {
			st.Restarts++
			continue
		}
		kind := Cross
		if cs.rnd.Bool() {
			kind = Straight
		}
		a, b := replacement(e1, e2, kind)
		if cs.hasEdge(a) || cs.hasEdge(b) {
			st.Restarts++
			continue
		}
		cs.removeEdge(e1)
		cs.removeEdge(e2)
		cs.addEdge(a)
		cs.addEdge(b)
		// The switched graph is connected iff both removed edges'
		// endpoint pairs remain connected.
		if cs.reaches(e1.U, e1.V) && cs.reaches(e2.U, e2.V) {
			st.Ops++
			continue
		}
		// Undo the disconnecting switch.
		cs.removeEdge(a)
		cs.removeEdge(b)
		cs.addEdge(e1)
		cs.addEdge(e2)
		st.Restarts++
	}
	return st, nil
}

// Graph exports the current state as a Graph. Edges are flagged modified
// or original based on membership in the initial edge set being
// unavailable here; all exported edges are marked original for simplicity
// (visit-rate tracking is a feature of the unconstrained engines).
func (cs *ConnectedSwitcher) Graph() (*graph.Graph, error) {
	return graph.FromEdges(cs.n, cs.edges, cs.rnd)
}

// M reports the current edge count (invariant under switching).
func (cs *ConnectedSwitcher) M() int64 { return int64(len(cs.edges)) }

// SequentialConnected is the convenience wrapper: copy g, perform t
// connectivity-preserving switches, and return the switched graph.
func SequentialConnected(g *graph.Graph, t int64, r *rng.RNG) (*graph.Graph, SeqStats, error) {
	cs, err := NewConnectedSwitcher(g, r)
	if err != nil {
		return nil, SeqStats{}, err
	}
	st, err := cs.Switch(t)
	if err != nil {
		return nil, SeqStats{}, err
	}
	out, err := cs.Graph()
	if err != nil {
		return nil, SeqStats{}, err
	}
	return out, st, nil
}
