package core

import (
	"fmt"
	"strings"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
)

// The invariant sanitizer: the dynamic counterpart of the esvet static
// checks. Edge switching must preserve exactly three structural
// invariants — the graph stays simple (no self-loops, no parallel
// edges), the degree sequence never moves, and every edge is owned by
// exactly one partition. A violated invariant does not crash the engine;
// it silently biases every statistic computed from the shuffled graph,
// which is why checked runs re-verify the full state at every step
// boundary (enable with Config.CheckInvariants) instead of trusting the
// protocol. See Sanitize, SanitizeGraph and SanitizeDistribution for the
// standalone checkers.

// ViolationKind classifies a sanitizer finding.
type ViolationKind string

// The invariant classes the sanitizer distinguishes.
const (
	// VSelfLoop: an edge (v, v). Algorithm 1 must reject switches that
	// would create one.
	VSelfLoop ViolationKind = "self-loop"
	// VParallelEdge: the same edge stored twice.
	VParallelEdge ViolationKind = "parallel-edge"
	// VVertexRange: an endpoint outside [0, n).
	VVertexRange ViolationKind = "vertex-range"
	// VDegreeDrift: a vertex degree differing from the recorded baseline.
	VDegreeDrift ViolationKind = "degree-drift"
	// VEdgeCount: the total edge count differing from the baseline.
	VEdgeCount ViolationKind = "edge-count"
	// VOwnership: an edge held by a rank that does not own it, or an
	// unnormalized edge (which would escape ownership-by-min-endpoint).
	VOwnership ViolationKind = "ownership"
)

// Violation is one invariant breach with an actionable description.
type Violation struct {
	Kind    ViolationKind
	Message string
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.Kind, v.Message) }

// maxViolations bounds how many violations a single check reports; a
// corrupted graph can breach an invariant at every vertex, and the first
// few findings are what a human acts on.
const maxViolations = 16

// Baseline is the invariant fingerprint a graph is checked against:
// vertex count, edge count and the full degree sequence, recorded before
// switching starts.
type Baseline struct {
	N       int
	M       int64
	Degrees []int64 // full (not reduced) degree per vertex
}

// NewBaseline records the invariant fingerprint of g.
func NewBaseline(g *graph.Graph) *Baseline {
	deg := g.Degrees()
	d64 := make([]int64, len(deg))
	for i, d := range deg {
		d64[i] = int64(d)
	}
	return &Baseline{N: g.N(), M: g.M(), Degrees: d64}
}

// BaselineOfEdges records the fingerprint of an explicit edge list over
// n vertices (no simplicity checks; run Sanitize for those).
func BaselineOfEdges(n int, edges []graph.Edge) *Baseline {
	b := &Baseline{N: n, M: int64(len(edges)), Degrees: make([]int64, n)}
	for _, e := range edges {
		if 0 <= e.U && int(e.U) < n {
			b.Degrees[e.U]++
		}
		if 0 <= e.V && int(e.V) < n && e.U != e.V {
			b.Degrees[e.V]++
		}
	}
	return b
}

// Sanitize checks an edge multiset over n vertices against the
// simple-graph invariants and, when base is non-nil, against the
// recorded baseline. It returns every violation found (capped at
// maxViolations per kind), nil when clean. Edges may appear in either
// orientation; orientation is normalized before duplicate detection.
func Sanitize(n int, edges []graph.Edge, base *Baseline) []Violation {
	var vs violations
	seen := make(map[graph.Edge]int, len(edges))
	deg := make([]int64, n)
	for _, e := range edges {
		if e.IsLoop() {
			vs.addf(VSelfLoop, "edge (%d,%d) is a self-loop: switch rejection rules must forbid u==v", e.U, e.V)
			continue
		}
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			vs.addf(VVertexRange, "edge (%d,%d) has an endpoint outside [0,%d)", e.U, e.V, n)
			continue
		}
		ne := e.Norm()
		seen[ne]++
		if seen[ne] == 2 { // report once per duplicated edge
			vs.addf(VParallelEdge, "edge (%d,%d) appears more than once: a switch committed a replacement edge that already existed", ne.U, ne.V)
		}
		deg[ne.U]++
		deg[ne.V]++
	}
	if base != nil {
		checkBaseline(&vs, n, int64(len(edges)), deg, base)
	}
	return vs.list
}

// SanitizeGraph checks a *graph.Graph (internal consistency via
// CheckSimple, then the baseline comparison). The graph type's own API
// prevents loops and duplicates, so the interesting findings here are
// degree drift and edge-count drift against base.
func SanitizeGraph(g *graph.Graph, base *Baseline) []Violation {
	var vs violations
	if err := g.CheckSimple(); err != nil {
		vs.addf(VParallelEdge, "internal structure check failed: %v", err)
	}
	if base != nil {
		deg := g.Degrees()
		d64 := make([]int64, len(deg))
		for i, d := range deg {
			d64[i] = int64(d)
		}
		checkBaseline(&vs, g.N(), g.M(), d64, base)
	}
	return vs.list
}

// SanitizeDistribution checks the exactly-once edge-ownership invariant
// across partitions: parts[r] is rank r's claimed (normalized, reduced)
// edge set; every edge must live in exactly the part of
// pt.Owner(edge.U), no edge may appear in two parts, and the union must
// satisfy Sanitize against base.
func SanitizeDistribution(pt partition.Partitioner, n int, parts [][]graph.Edge, base *Baseline) []Violation {
	var vs violations
	union := make([]graph.Edge, 0)
	holders := make(map[graph.Edge]int)
	for rank, edges := range parts {
		for _, e := range edges {
			if e.U > e.V {
				vs.addf(VOwnership, "rank %d stores unnormalized edge (%d,%d): reduced adjacency must key edges by their min endpoint", rank, e.U, e.V)
				e = e.Norm()
			}
			if !e.IsLoop() && e.U >= 0 && int(e.V) < n {
				if owner := pt.Owner(e.U); owner != rank {
					vs.addf(VOwnership, "rank %d stores edge (%d,%d) owned by rank %d: every edge must live in exactly its owner's partition", rank, e.U, e.V, owner)
				}
			}
			if prev, dup := holders[e]; dup {
				vs.addf(VOwnership, "edge (%d,%d) held by both rank %d and rank %d: edges must be owned exactly once", e.U, e.V, prev, rank)
			} else {
				holders[e] = rank
			}
			union = append(union, e)
		}
	}
	vs.list = append(vs.list, Sanitize(n, union, base)...)
	return vs.list
}

// checkBaseline appends degree/edge-count drift violations.
func checkBaseline(vs *violations, n int, m int64, deg []int64, base *Baseline) {
	if n != base.N {
		vs.addf(VVertexRange, "vertex count %d != baseline %d", n, base.N)
		return
	}
	if m != base.M {
		vs.addf(VEdgeCount, "edge count %d != baseline %d: a switch lost or invented an edge", m, base.M)
	}
	for v := 0; v < n; v++ {
		if deg[v] != base.Degrees[v] {
			vs.addf(VDegreeDrift, "degree of vertex %d is %d, baseline %d: edge switching must preserve the degree sequence exactly", v, deg[v], base.Degrees[v])
		}
	}
}

// violations accumulates findings with a per-kind cap.
type violations struct {
	list   []Violation
	byKind map[ViolationKind]int
}

func (vs *violations) addf(kind ViolationKind, format string, args ...any) {
	if vs.byKind == nil {
		vs.byKind = make(map[ViolationKind]int)
	}
	vs.byKind[kind]++
	switch {
	case vs.byKind[kind] < maxViolations:
		vs.list = append(vs.list, Violation{Kind: kind, Message: fmt.Sprintf(format, args...)})
	case vs.byKind[kind] == maxViolations:
		vs.list = append(vs.list, Violation{Kind: kind, Message: fmt.Sprintf("further %s violations suppressed", kind)})
	}
}

// ---- engine integration (Config.CheckInvariants) ----

// localDegrees computes this rank's contribution to the global degree
// vector: each locally stored reduced edge (u,v) adds one to both
// endpoints. Summing the vectors over all ranks yields the full degree
// sequence iff every edge is stored exactly once.
func (e *rankEngine) localDegrees() []int64 {
	deg := make([]int64, e.n)
	for li := range e.verts {
		u := e.verts[li]
		e.adj.Walk(li, func(v graph.Vertex, _ bool) bool {
			deg[u]++
			deg[v]++
			return true
		})
	}
	return deg
}

// recordBaseline captures the global degree sequence right after the
// partitions are loaded (one O(n) allreduce; all ranks enter it
// symmetrically before the first step).
func (e *rankEngine) recordBaseline() error {
	vec := append(e.localDegrees(), e.deg.Total())
	glob, err := e.c.AllreduceInt64s(vec, mpi.OpSum)
	if err != nil {
		return err
	}
	if glob[e.n] != e.m {
		return fmt.Errorf("core: rank %d invariant sanitizer: loaded %d edges across ranks, expected %d", e.c.Rank(), glob[e.n], e.m)
	}
	e.baseDeg = glob[:e.n]
	return nil
}

// sanitizeLocal scans this rank's structures: simplicity (no loops, no
// duplicates, normalized order), vertex ranges, Fenwick consistency, and
// the ownership invariant (this rank holds exactly the reduced lists of
// the vertices the partitioner assigns to it).
func (e *rankEngine) sanitizeLocal() []Violation {
	var vs violations
	rank := e.c.Rank()
	for li := range e.verts {
		u := e.verts[li]
		if owner := e.pt.Owner(u); owner != rank {
			vs.addf(VOwnership, "rank %d holds vertex %d owned by rank %d", rank, u, owner)
		}
		prev := graph.Vertex(-1)
		e.adj.Walk(li, func(v graph.Vertex, _ bool) bool {
			switch {
			case v == u:
				vs.addf(VSelfLoop, "edge (%d,%d) is a self-loop", u, v)
			case v < u:
				vs.addf(VOwnership, "rank %d stores unnormalized entry (%d,%d): reduced adjacency must only hold neighbours > %d", rank, u, v, u)
			case int(v) >= e.n:
				vs.addf(VVertexRange, "edge (%d,%d) has an endpoint outside [0,%d)", u, v, e.n)
			case v <= prev:
				vs.addf(VParallelEdge, "adjacency of vertex %d is not strictly ascending at %d", u, v)
			}
			prev = v
			return true
		})
		if int64(e.adj.Len(li)) != e.deg.Get(li) {
			vs.addf(VEdgeCount, "Fenwick degree of vertex %d is %d, adjacency holds %d", u, e.deg.Get(li), e.adj.Len(li))
		}
	}
	return vs.list
}

// verifyBaseline runs the full invariant suite at the end of the run:
// the local structural scan plus a global degree-sequence and edge-count
// comparison against the recorded baseline (one O(n) allreduce that all
// ranks enter symmetrically). Step boundaries are covered by the sparse
// delta check fused into stepExchange (see stepsync.go); this full pass
// backstops it once per run, catching the final step's deltas and any
// drift the delta bookkeeping itself could miss (a mutation path that
// bypasses noteDegree).
func (e *rankEngine) verifyBaseline() error {
	vs := e.sanitizeLocal()
	vec := append(e.localDegrees(), e.deg.Total())
	glob, err := e.c.AllreduceInt64s(vec, mpi.OpSum)
	if err != nil {
		return err
	}
	var vg violations
	vg.list = vs
	if glob[e.n] != e.m {
		vg.addf(VEdgeCount, "edge count %d != invariant %d: a switch lost or invented an edge", glob[e.n], e.m)
	}
	for v := 0; v < e.n; v++ {
		if glob[v] != e.baseDeg[v] {
			vg.addf(VDegreeDrift, "degree of vertex %d is %d, baseline %d", v, glob[v], e.baseDeg[v])
		}
	}
	if len(vg.list) > 0 {
		return fmt.Errorf("core: rank %d invariant sanitizer: %s", e.c.Rank(), summarize(vg.list))
	}
	return nil
}

// summarize renders a violation list for an error message, leading with
// the first few findings (what a human acts on).
func summarize(vs []Violation) string {
	if len(vs) == 0 {
		return "clean"
	}
	parts := make([]string, 0, 5)
	for i, v := range vs {
		if i == 4 {
			parts = append(parts, fmt.Sprintf("... and %d more", len(vs)-i))
			break
		}
		parts = append(parts, v.String())
	}
	return fmt.Sprintf("%d violation(s): %s", len(vs), strings.Join(parts, "; "))
}
