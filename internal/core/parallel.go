package core

import (
	"fmt"
	"math"
	"time"

	"edgeswitch/internal/clock"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

// Scheme selects the partitioning strategy (§4.3, §5.1).
type Scheme string

// The four partitioning schemes evaluated in the paper.
const (
	SchemeCP  Scheme = "CP"   // consecutive, edge-balanced
	SchemeHPD Scheme = "HP-D" // division hash v mod p
	SchemeHPM Scheme = "HP-M" // multiplication hash
	SchemeHPU Scheme = "HP-U" // universal hash
)

// Schemes lists all partitioning schemes in presentation order.
func Schemes() []Scheme { return []Scheme{SchemeCP, SchemeHPD, SchemeHPM, SchemeHPU} }

// Config parameterises a parallel randomization run.
type Config struct {
	// Ranks is the number of processors p (goroutine ranks). Must be >= 1.
	Ranks int
	// Algorithm selects the randomization process run behind the
	// Randomizer seam (see randomizer.go): AlgoEdgeSwitch (the default,
	// also selected by "") runs the paper's conversation protocol where t
	// counts switch operations; AlgoCurveball runs global curveball
	// trades where t counts global rounds and StepSize is ignored (every
	// step is exactly one round).
	Algorithm Algorithm
	// TargetVisitRate, when > 0, stops the run at the first step boundary
	// where the observed global visit rate (computed from the originals
	// count fused into the step exchange, identically on every rank)
	// reaches the target; t then acts as a ceiling. Useful with
	// AlgoCurveball, whose per-round visit rate is bounded conservatively
	// (see CurveballRoundsForVisitRate), so runs end as soon as the
	// target is actually met instead of completing the worst-case round
	// count. Must lie in [0, 1]; 0 disables the early stop.
	TargetVisitRate float64
	// Scheme selects the partitioning scheme. Default SchemeCP.
	Scheme Scheme
	// StepSize is the number of operations per step (§4.5); operations
	// are re-distributed by multinomial sampling and the probability
	// vector is refreshed between steps. 0 means a single step (the HP
	// schemes' recommended mode, Table 3).
	StepSize int64
	// Seed drives every random choice of the run.
	Seed uint64
	// UseTCP routes all engine traffic over loopback TCP sockets instead
	// of in-process mailboxes.
	UseTCP bool
	// SkipResult suppresses gathering and reassembling the final graph,
	// for benchmark runs that only need timing and counters.
	SkipResult bool
	// CheckInvariants runs the engine under the invariant sanitizer (see
	// sanitize.go and stepsync.go): at every step boundary, each rank
	// re-verifies simplicity, ownership and Fenwick consistency of its
	// partition, and all ranks jointly verify degree conservation through
	// sparse deltas folded into the step-boundary exchange (no extra
	// collective); the full degree sequence is re-checked against the
	// pre-switching baseline once at the end of the run, as is the
	// reassembled result graph. Costs O(n + m/p) work per step plus two
	// O(n) allreduces per run; meant for tests and checked production
	// runs, off by default.
	CheckInvariants bool
	// DisableBatching turns off the message plane's per-destination
	// coalescing (see sendbuf.go), sending every protocol message as its
	// own transport payload. For benchmarks and tests quantifying the
	// batching win; leave off otherwise.
	DisableBatching bool
	// SpillDir, when set, switches every rank's partition storage from
	// in-memory treaps to the tiered out-of-core store (internal/store,
	// DESIGN.md §7): an immutable mmap'd base segment under
	// SpillDir/rank-NNNN holds the partition on disk, an in-memory
	// overlay holds only vertices touched since the last compaction, and
	// step boundaries fold an over-budget overlay into a new base
	// segment. Results are bit-identical to in-memory runs wherever the
	// run is deterministic; steady-state heap is O(overlay), so runs fit
	// under a GOMEMLIMIT far below |E_local| (the mapping is file-backed
	// and doesn't count). Multi-process ranks need distinct or shared
	// directories — each rank uses only its own subdirectory.
	SpillDir string
	// OverlayBudget caps the tiered store's overlay entry count; a step
	// boundary whose overlay exceeds it triggers compaction. 0 derives
	// max(|E_local|/4, 4096) at load time. Ignored without SpillDir.
	OverlayBudget int64
	// DistributedGen, when non-nil, switches the bootstrap to
	// communication-free parallel generation (internal/gen/pergen): no
	// rank materializes the whole graph and nothing is scattered —
	// every rank resolves the spec's counter streams itself and builds
	// exactly its own partition. RunRank must then be called with a nil
	// graph; the resulting edge set is byte-identical to
	// pergen.New(spec).Full() at every rank count. Only a single 8-byte
	// allreduce (the exact global edge count) touches the network
	// before switching starts.
	DistributedGen *pergen.Spec
	// AdaptiveWindow replaces the fixed operation-pipelining window
	// (64 ∧ |E_local|/8) with the per-rank AIMD controller of
	// internal/tune/window: each step's observed restarts, reservation
	// conflicts/failures, flush count and in-flight high-water mark
	// additively grow or multiplicatively shrink the next step's window
	// between 1 and |E_local|/4. At Ranks == 1 the window is pinned to
	// exactly 1 either way, preserving sequential-chain equivalence.
	// Off by default; favours high-conflict workloads (small or skewed
	// partitions) where a fixed window overfills inHand.
	AdaptiveWindow bool
	// WindowFloor, when > 0, overrides the adaptive controller's lower
	// window bound (default 1). Ignored without AdaptiveWindow.
	WindowFloor int
	// WindowCeiling, when > 0, caps the adaptive window statically in
	// addition to the per-step |E_local|/4 clamp (default: no static
	// cap). Ignored without AdaptiveWindow.
	WindowCeiling int
	// CheckpointDir, when set, enables step-boundary checkpointing: every
	// CheckpointEvery-th completed step, each rank writes its partition,
	// RNG position and randomizer cursor to a per-rank snapshot file in
	// this directory (CRC32C trailer, atomic rename), and rank 0 commits
	// a manifest only after every rank's file CRC has been acknowledged
	// through a collective — so a crash at any point leaves the previous
	// checkpoint restorable. All ranks must see the same directory (a
	// shared filesystem, or one machine). See DESIGN.md §6.
	CheckpointDir string
	// CheckpointEvery is the number of completed steps between
	// checkpoints. 0 means 1 (every boundary) when CheckpointDir is set;
	// ignored otherwise.
	CheckpointEvery int64
	// CheckpointKeep is the number of most recent checkpoints retained
	// after each commit. 0 means the default of 2 (the newly committed
	// one plus its predecessor); negative keeps every checkpoint (the
	// restore-equivalence tests restore every boundary of a run).
	CheckpointKeep int
	// Restore resumes the run from the newest checkpoint in CheckpointDir
	// that every rank can restore, agreed through an OpMin collective; if
	// no common restorable checkpoint exists the run bootstraps fresh.
	// The restored world re-derives the global degree sequence and checks
	// its CRC against the manifest before switching resumes. Requires
	// CheckpointDir.
	Restore bool
	// RestoreStep, when > 0 with Restore, demands the checkpoint of that
	// exact step instead of the newest restorable one; a run that cannot
	// honor it fails with the reason rather than silently starting fresh.
	RestoreStep int64
}

// Result reports a parallel run.
type Result struct {
	// Graph is the switched graph, reassembled on rank 0 (nil with
	// Config.SkipResult).
	Graph *graph.Graph
	// Algorithm echoes the randomization algorithm that ran.
	Algorithm string
	// Ops is the number of completed operations: switches for
	// edge-switching (== t − Forfeited), executed trades for curveball.
	Ops int64
	// Restarts counts rejected selections across all ranks.
	Restarts int64
	// Forfeited counts operations abandoned because a rank's partition
	// ran out of edges with no active peers left to replenish it (only
	// reachable on degenerate tiny inputs; see DESIGN.md).
	Forfeited int64
	// Steps is the number of steps executed (curveball: rounds). A
	// Config.TargetVisitRate early stop can make this smaller than
	// ⌈t/StepSize⌉.
	Steps int
	// VisitRate is the observed visit rate, computed from the per-rank
	// originals counters the engines maintain — populated even with
	// SkipResult, where no graph is reassembled to count from.
	VisitRate float64
	// RankOps[i] is the number of operations initiated by rank i (the
	// workload of Figs. 19–21).
	RankOps []int64
	// RankRestarts[i] is per-rank restart counts.
	RankRestarts []int64
	// RankVertices[i] and RankInitialEdges[i] describe the partition
	// (Figs. 16–17); RankFinalEdges[i] the edge distribution after the
	// run (Fig. 18).
	RankVertices     []int64
	RankInitialEdges []int64
	RankFinalEdges   []int64
	// RankMessages[i] counts protocol messages sent by rank i (every
	// operation costs a constant number; end-of-step signals add O(p)
	// per step).
	RankMessages []int64
	// RankWindowMax[i] is the largest operation-pipelining window rank i
	// was ever granted — with AdaptiveWindow, where the controller
	// settled; always exactly 1 at Ranks == 1 (the sequential-chain
	// pin, see TestSequentialEquivalence).
	RankWindowMax []int64
	// RankConflicts[i] counts reservation conflicts rank i reported as
	// an edge owner plus reservation failures it observed while
	// orchestrating for peers — the congestion signal the adaptive
	// window controller reacts to.
	RankConflicts []int64
	// RankFlushes[i] counts message-plane flushes forced by rank i's
	// step loop blocking (batches pushed out before a Recv wait).
	RankFlushes []int64
	// RestoredStep is the step boundary this run resumed from (0 when it
	// started fresh rather than from a checkpoint).
	RestoredStep int64
	// EdgeHash is an order-independent fingerprint of the final edge set
	// (with original flags): each rank sums a mixed hash of its local
	// (u, v, orig) triples and rank 0 folds the per-rank sums. Invariant
	// under rank count and storage tier, so spill and in-memory runs of
	// a deterministic configuration can be compared bit-for-bit without
	// reassembling the graph (SkipResult runs under memory caps).
	EdgeHash uint64
	// SpillBaseBytes totals the ranks' base-segment file sizes at the end
	// of the run (0 without Config.SpillDir).
	SpillBaseBytes int64
	// SpillOverlayHWM totals the ranks' overlay entry high-water marks —
	// the peak treap entries resident between compactions.
	SpillOverlayHWM int64
	// SpillCompactions totals base-segment rewrites across ranks.
	SpillCompactions int64
	// SpillCompactNs totals wall-clock nanoseconds ranks spent compacting.
	SpillCompactNs int64
	// Elapsed is the wall-clock time of the switching phase (excludes
	// graph partitioning and reassembly).
	Elapsed time.Duration
	// SchemeName echoes the partitioning scheme used.
	SchemeName string
}

// NewPartitioner builds the partitioner for a scheme. HP-U coefficients
// are derived deterministically from seed.
func NewPartitioner(g *graph.Graph, scheme Scheme, p int, seed uint64) (partition.Partitioner, error) {
	switch scheme {
	case SchemeCP, "":
		return partition.NewCP(g, p)
	case SchemeHPD:
		return partition.NewHPD(p)
	case SchemeHPM:
		return partition.NewHPM(p)
	case SchemeHPU:
		return partition.NewHPU(p, rng.Split(seed, 1<<20))
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", scheme)
	}
}

// Parallel performs t edge switch operations on a copy of g distributed
// over cfg.Ranks goroutine ranks, following §4–§5: the graph is
// partitioned by the configured scheme; each step's operations are
// spread over ranks with the parallel multinomial generator keyed to the
// current per-partition edge counts; each operation runs the
// reserve/commit conversation protocol. The input graph g is not
// modified.
//
// For true multi-process distribution, run one RunRank per process over
// an mpi.ProcWorld instead (see cmd/esworker).
func Parallel(g *graph.Graph, t int64, cfg Config) (*Result, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("core: Ranks must be >= 1, got %d", cfg.Ranks)
	}
	var opts []mpi.Option
	if cfg.UseTCP {
		opts = append(opts, mpi.WithTCP())
	}
	world, err := mpi.NewWorld(cfg.Ranks, opts...)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	var res *Result
	runErr := world.Run(func(c *mpi.Comm) error {
		r, err := RunRank(c, g, t, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// RunRank executes the parallel edge-switch algorithm as one rank of an
// existing communicator: every rank of c must call RunRank with an
// identical graph, operation count, and configuration (cfg.Ranks and
// cfg.UseTCP are ignored; the communicator decides both). Rank 0 returns
// the assembled Result; other ranks return nil. This is the entry point
// for multi-process distributed runs, where each process loads the graph
// and keeps only its own partition.
func RunRank(c *mpi.Comm, g *graph.Graph, t int64, cfg Config) (*Result, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative operation count %d", t)
	}
	if _, err := cfg.algorithm(); err != nil {
		return nil, err
	}
	if math.IsNaN(cfg.TargetVisitRate) || cfg.TargetVisitRate < 0 || cfg.TargetVisitRate > 1 {
		return nil, fmt.Errorf("core: TargetVisitRate %v outside [0, 1]", cfg.TargetVisitRate)
	}
	if cfg.DistributedGen != nil {
		if g != nil {
			return nil, fmt.Errorf("core: RunRank with Config.DistributedGen takes a nil graph (ranks generate their own partitions)")
		}
		return runRankGen(c, t, cfg)
	}
	if g == nil {
		return nil, fmt.Errorf("core: RunRank needs a graph (or Config.DistributedGen)")
	}
	if g.M() < 2 && t > 0 {
		return nil, fmt.Errorf("core: need at least 2 edges to switch, have %d", g.M())
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeCP
	}
	p := c.Size()
	pt, err := NewPartitioner(g, cfg.Scheme, p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ck, err := newCheckpointer(c, cfg)
	if err != nil {
		return nil, err
	}

	var eng *rankEngine
	if cfg.Restore {
		// The rollback collective: agree on the newest checkpoint every
		// rank can restore and rebuild the engines from it; a nil engine
		// means no common checkpoint, so bootstrap fresh below.
		eng, _, err = ck.restoreEngine(pt, g.N(), g.M(), cfg)
		if err != nil {
			return nil, err
		}
	}
	if eng == nil {
		// Load this rank's partition.
		var local []flaggedEdge
		for ui := 0; ui < g.N(); ui++ {
			u := graph.Vertex(ui)
			if pt.Owner(u) != c.Rank() {
				continue
			}
			g.WalkReduced(u, func(v graph.Vertex, orig bool) bool {
				local = append(local, flaggedEdge{graph.Edge{U: u, V: v}, orig})
				return true
			})
		}
		eng, err = newRankEngine(c, pt, g.N(), g.M(), local, cfg)
		if err != nil {
			return nil, err
		}
	}
	eng.ckpt = ck
	return runEngine(eng, t, cfg, func(*graph.Graph) *Baseline { return NewBaseline(g) })
}

// runEngine drives a loaded rank engine through the switching run and
// the result gathering shared by both bootstrap paths (graph hand-off
// and distributed generation). baseline supplies the invariant
// fingerprint SanitizeGraph checks the reassembled result against; it
// receives the reassembled graph for paths that have nothing earlier to
// fingerprint.
func runEngine(eng *rankEngine, t int64, cfg Config, baseline func(out *graph.Graph) *Baseline) (*Result, error) {
	c, pt := eng.c, eng.pt
	p := c.Size()
	defer eng.adj.Close()
	algo, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	stepSize := cfg.StepSize
	if algo == AlgoCurveball {
		// A curveball step is one global round by construction: the round
		// boundary is where the pairing permutation changes and every
		// adjacency has settled, so larger step sizes have no meaning.
		stepSize = 1
	} else if stepSize <= 0 || stepSize > t {
		stepSize = t
	}
	if eng.restoredStep > 0 && eng.ckpt != nil && eng.ckpt.restoredStepSize != stepSize {
		// The resume offset is stepsRun × stepSize: a different step size
		// would replay or skip operations, so it is part of the identity.
		return nil, fmt.Errorf("core: restored checkpoint was taken with step size %d, this run uses %d", eng.ckpt.restoredStepSize, stepSize)
	}
	start := clock.Now()
	if err := eng.run(t, stepSize); err != nil {
		return nil, err
	}
	elapsed := clock.Since(start)

	// Gather statistics at rank 0. The spill counters and the edge-set
	// fingerprint ride the same collective, so spill observability and
	// bit-identity checks cost no extra communication.
	es := eng.Stats()
	ss := eng.adj.Stats()
	stats := []int64{eng.opsInitiated, eng.restarts, eng.forfeited,
		int64(len(eng.verts)), eng.initialEdges, eng.deg.Total(), eng.msgsSent,
		int64(eng.winMax), es.conflicts + es.reserveFails, es.flushes,
		eng.origLocal,
		ss.BaseBytes, ss.OverlayHWM, ss.Compactions, ss.CompactNs,
		int64(eng.edgeHash())}
	gathered, err := c.Gather(0, mpi.Int64sToBytes(stats))
	if err != nil {
		return nil, err
	}
	var res *Result
	var origSum int64
	if c.Rank() == 0 {
		res = &Result{
			SchemeName:       pt.Name(),
			Algorithm:        string(algo),
			Elapsed:          elapsed,
			RankOps:          make([]int64, p),
			RankRestarts:     make([]int64, p),
			RankVertices:     make([]int64, p),
			RankInitialEdges: make([]int64, p),
			RankFinalEdges:   make([]int64, p),
			RankMessages:     make([]int64, p),
			RankWindowMax:    make([]int64, p),
			RankConflicts:    make([]int64, p),
			RankFlushes:      make([]int64, p),
		}
		for rank, payload := range gathered {
			vs, err := mpi.BytesToInt64s(payload)
			if err != nil {
				return nil, err
			}
			res.RankOps[rank] = vs[0]
			res.RankRestarts[rank] = vs[1]
			res.Forfeited += vs[2]
			res.RankVertices[rank] = vs[3]
			res.RankInitialEdges[rank] = vs[4]
			res.RankFinalEdges[rank] = vs[5]
			res.RankMessages[rank] = vs[6]
			res.RankWindowMax[rank] = vs[7]
			res.RankConflicts[rank] = vs[8]
			res.RankFlushes[rank] = vs[9]
			origSum += vs[10]
			res.SpillBaseBytes += vs[11]
			res.SpillOverlayHWM += vs[12]
			res.SpillCompactions += vs[13]
			res.SpillCompactNs += vs[14]
			res.EdgeHash += uint64(vs[15])
			res.Ops += vs[0]
			res.Restarts += vs[1]
		}
		res.Steps = int(eng.stepsRun)
		res.RestoredStep = eng.restoredStep
		res.VisitRate = VisitRate(origSum, eng.m)
	}
	if cfg.SkipResult {
		return res, nil
	}

	// Ship local edges (with original flags) to rank 0 and reassemble.
	payload := make([]byte, 0, 9*len(eng.verts))
	for li := range eng.verts {
		u := eng.verts[li]
		eng.adj.Walk(li, func(v graph.Vertex, orig bool) bool {
			var rec [9]byte
			putEdge(rec[:], graph.Edge{U: u, V: v}, orig)
			payload = append(payload, rec[:]...)
			return true
		})
	}
	parts, err := c.Gather(0, payload)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	out, err := reassemble(eng.n, parts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if out.M() != eng.m {
		return nil, fmt.Errorf("core: edge count changed: %d -> %d", eng.m, out.M())
	}
	if cfg.CheckInvariants {
		if vs := SanitizeGraph(out, baseline(out)); len(vs) > 0 {
			return nil, fmt.Errorf("core: reassembled graph fails invariant sanitizer: %s", summarize(vs))
		}
		if int64(out.Originals()) != origSum {
			return nil, fmt.Errorf("core: reassembled originals %d disagree with engine counters %d", out.Originals(), origSum)
		}
	}
	res.Graph = out
	res.VisitRate = VisitRate(out.Originals(), eng.m)
	return res, nil
}

// flaggedEdge pairs an edge with its original-vs-modified flag while
// edges move between the driver and the ranks.
type flaggedEdge struct {
	e    graph.Edge
	orig bool
}

// parseEdges decodes the 9-byte (u, v, flag) records of a gathered
// partition payload.
func parseEdges(payload []byte) ([]flaggedEdge, error) {
	if len(payload)%9 != 0 {
		return nil, fmt.Errorf("core: edge payload length %d not a multiple of 9", len(payload))
	}
	out := make([]flaggedEdge, 0, len(payload)/9)
	for off := 0; off < len(payload); off += 9 {
		out = append(out, flaggedEdge{
			e:    graph.Edge{U: graph.Vertex(getU32(payload[off:])), V: graph.Vertex(getU32(payload[off+4:]))},
			orig: payload[off+8] == 1,
		})
	}
	return out, nil
}

func putEdge(buf []byte, e graph.Edge, orig bool) {
	putU32(buf[0:], uint32(e.U))
	putU32(buf[4:], uint32(e.V))
	if orig {
		buf[8] = 1
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
