package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// The generation-bootstrap benchmark matrix behind BENCH_pergen.json:
// for each model (pa, contact) and rank count p ∈ {1, 2, 8}, measure the
// time from a generator spec to "every rank holds its loaded partition",
// three ways:
//
//   - file: the generate-and-scatter bootstrap this PR replaces, as the
//     distributed deployment actually runs it — one process materializes
//     the whole graph (pergen Full) and writes the binary edge list;
//     then every rank parses the full file, builds the whole graph in
//     its own memory, and the engine keeps only the owned partition.
//     This is exactly `graphgen` + per-process `esworker -graph` (see
//     RunRank's contract: "each process loads the graph and keeps only
//     its own partition").
//   - scatter: the charitable in-memory lower bound on the same
//     baseline — the generated graph is handed to every rank by
//     reference (`Parallel(g, ...)`), so ranks share one materialization
//     and pay no serialization, no I/O, and no per-rank parse. A real
//     scatter can only be slower than this.
//   - pergen: the communication-free path — no rank ever sees the whole
//     graph; each resolves the spec's counter streams itself and inserts
//     only owned edges (Config.DistributedGen).
//
// t=0 and SkipResult strip the run to exactly the bootstrap, so the
// matrix isolates the generate-and-distribute cost the tentpole
// replaces. Reported metric: edges/s of global generated edges.
func BenchmarkGenerate(b *testing.B) {
	n := 200_000
	if testing.Short() {
		n = 20_000 // benchsmoke: prove the harness runs, measure nothing
	}
	for _, model := range []string{"pa", "contact"} {
		spec := benchGenSpec(model, n, 10)
		for _, p := range []int{1, 2, 8} {
			for _, mode := range []string{"file", "scatter", "pergen"} {
				b.Run(fmt.Sprintf("%s/%s/p%d", mode, model, p), func(b *testing.B) {
					var m int64
					for i := 0; i < b.N; i++ {
						m = benchBootstrap(b, mode, spec, p)
					}
					b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				})
			}
		}
	}
}

// benchGenSpec builds the benchmark spec for one model.
func benchGenSpec(model string, n, d int) pergen.Spec {
	if model == "contact" {
		return pergen.Spec{Model: pergen.ModelContact, Seed: 42, N: n,
			Contact: gen.ContactConfig{AvgDegree: float64(d), CommunitySize: 40, WithinFrac: 0.8}}
	}
	return pergen.Spec{Model: pergen.ModelPA, Seed: 42, N: n, D: d}
}

// benchBootstrap runs one spec-to-loaded-partitions bootstrap and
// returns the global edge count it produced. The matrix partitions with
// HP-D — the paper's scheme of choice at scale, and the one that keeps
// the comparison about generation: CP would add a reduced-degree
// pre-pass to both arms (for pergen a second full enumeration per
// rank), measuring the partitioner rather than the bootstrap.
func benchBootstrap(tb testing.TB, mode string, spec pergen.Spec, p int) int64 {
	cfg := Config{Ranks: p, Scheme: SchemeHPD, Seed: spec.Seed, SkipResult: true}
	var res *Result
	var err error
	switch mode {
	case "file":
		pg, gerr := pergen.New(spec)
		if gerr != nil {
			tb.Fatal(gerr)
		}
		g, gerr := pg.Full()
		if gerr != nil {
			tb.Fatal(gerr)
		}
		path := filepath.Join(tb.TempDir(), "bench.bin")
		f, ferr := os.Create(path)
		if ferr != nil {
			tb.Fatal(ferr)
		}
		if werr := graph.WriteBinary(f, g); werr != nil {
			tb.Fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			tb.Fatal(cerr)
		}
		g = nil
		world, werr := mpi.NewWorld(p)
		if werr != nil {
			tb.Fatal(werr)
		}
		defer world.Close()
		err = world.Run(func(c *mpi.Comm) error {
			rf, oerr := os.Open(path)
			if oerr != nil {
				return oerr
			}
			gr, rerr := graph.ReadBinary(rf, rng.New(spec.Seed))
			rf.Close()
			if rerr != nil {
				return rerr
			}
			r, runErr := RunRank(c, gr, 0, cfg)
			if runErr != nil {
				return runErr
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
	case "scatter":
		pg, gerr := pergen.New(spec)
		if gerr != nil {
			tb.Fatal(gerr)
		}
		g, gerr := pg.Full()
		if gerr != nil {
			tb.Fatal(gerr)
		}
		res, err = Parallel(g, 0, cfg)
	case "pergen":
		cfg.DistributedGen = &spec
		res, err = Parallel(nil, 0, cfg)
	default:
		tb.Fatalf("unknown bootstrap mode %q", mode)
	}
	if err != nil {
		tb.Fatal(err)
	}
	var m int64
	for _, e := range res.RankInitialEdges {
		m += e
	}
	return m
}

// TestBenchsmokePergenRegression is the benchsmoke regression guard for
// the communication-free bootstrap: it replays a mid-size slice of the
// BenchmarkGenerate matrix (pa, p=8, file vs pergen) once and fails if
// (a) the generated edge count drifts from the committed
// BENCH_pergen.json baseline — the counter-based generator is
// deterministic, so any drift is a correctness regression, not noise —
// or (b) the pergen speedup over the file bootstrap collapses below
// half the committed value (wall-clock ratios within one process are
// stable enough for a 2x band; absolute times are not asserted). Runs
// only under BENCHSMOKE=1 (`make benchsmoke`).
func TestBenchsmokePergenRegression(t *testing.T) {
	if os.Getenv("BENCHSMOKE") == "" {
		t.Skip("set BENCHSMOKE=1 to run the benchsmoke regression guard")
	}
	base := readPergenBaseline(t)

	spec := benchGenSpec("pa", 100_000, 10)
	const p = 8
	start := time.Now()
	mFile := benchBootstrap(t, "file", spec, p)
	fileDur := time.Since(start)
	start = time.Now()
	mPergen := benchBootstrap(t, "pergen", spec, p)
	pergenDur := time.Since(start)

	if mFile != mPergen {
		t.Errorf("file and pergen bootstraps disagree on edge count: %d vs %d", mFile, mPergen)
	}
	if mPergen != base.Edges {
		t.Errorf("pergen generated %d edges, baseline has %d — the deterministic generator drifted",
			mPergen, base.Edges)
	}
	speedup := fileDur.Seconds() / pergenDur.Seconds()
	floor := base.Speedup / 2
	if floor < 1 {
		floor = 1
	}
	if speedup < floor {
		t.Errorf("pergen speedup over the file bootstrap regressed: %.2fx, baseline %.2fx (floor %.2fx)",
			speedup, base.Speedup, floor)
	}
	t.Logf("pa n=%d p=%d: file %v, pergen %v (%.2fx, baseline %.2fx), m=%d",
		spec.N, p, fileDur, pergenDur, speedup, base.Speedup, mPergen)
}

// TestLargeGenSmoke is the CI large-graph leg: generate a >=10^7-edge
// preferential-attachment graph with the communication-free bootstrap at
// p=8 and verify the exact deterministic edge count. Runs only under
// ESLARGE=1 (`make largesmoke`), which time-boxes it with -timeout.
func TestLargeGenSmoke(t *testing.T) {
	if os.Getenv("ESLARGE") == "" {
		t.Skip("set ESLARGE=1 to run the large-graph generation smoke")
	}
	base := readPergenBaseline(t)
	spec := benchGenSpec("pa", 1_000_006, 10) // MaxEdges 10,000,005: the smallest n clearing the 10^7 bound at d=10
	if spec.MaxEdges() < 10_000_000 {
		t.Fatalf("smoke spec bound %d edges, want >= 10^7", spec.MaxEdges())
	}
	start := time.Now()
	m := benchBootstrap(t, "pergen", spec, 8)
	if m != base.Headline.Edges {
		t.Errorf("generated %d edges, baseline has %d — the deterministic generator drifted",
			m, base.Headline.Edges)
	}
	t.Logf("pa n=%d p=8: %d edges in %v", spec.N, m, time.Since(start))
}

// pergenBaseline mirrors the fields of BENCH_pergen.json the guards pin.
type pergenBaseline struct {
	Edges    int64   // guard config (pa n=100k p=8) exact edge count
	Speedup  float64 // guard config pergen-vs-scatter speedup
	Headline struct {
		Edges int64 // headline config (pa n=1M p=8) exact edge count
	}
}

func readPergenBaseline(t *testing.T) pergenBaseline {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_pergen.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var bench struct {
		Guard struct {
			Edges   int64   `json:"edges"`
			Speedup float64 `json:"speedup"`
		} `json:"guard"`
		Headline struct {
			Edges int64 `json:"edges"`
		} `json:"headline"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_pergen.json: %v", err)
	}
	if bench.Guard.Edges == 0 || bench.Guard.Speedup == 0 || bench.Headline.Edges == 0 {
		t.Fatal("BENCH_pergen.json lacks the guard/headline baselines")
	}
	b := pergenBaseline{Edges: bench.Guard.Edges, Speedup: bench.Guard.Speedup}
	b.Headline.Edges = bench.Headline.Edges
	return b
}
