package core

import (
	"testing"
)

// TestSequentialEquivalence is the p=1 guard for the adaptive pipelining
// window: a single-rank engine must realize the sequential Markov chain
// edge for edge, so the adaptive controller is required to pin the
// window to exactly 1 (a deeper window would draw first edges without
// replacement and change the chain). With the pin in place, an adaptive
// p=1 run and a fixed p=1 run from the same seed must produce the same
// switch sequence — verified byte for byte on the resulting edge lists —
// and RankWindowMax must report 1.
func TestSequentialEquivalence(t *testing.T) {
	g := testGraph(t, 7, 600, 3000)
	const ops = 1500
	// Multi-step so the controller's Observe path runs at p=1 too: the
	// pin must hold across step boundaries, not just at the start.
	run := func(adaptive bool) *Result {
		res, err := Parallel(g, ops, Config{
			Ranks:           1,
			Seed:            99,
			StepSize:        ops / 5,
			CheckInvariants: true,
			AdaptiveWindow:  adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed := run(false)
	adaptive := run(true)

	for _, res := range []*Result{fixed, adaptive} {
		checkRun(t, g, res, ops)
		if res.RankWindowMax[0] != 1 {
			t.Fatalf("p=1 window max %d, want exactly 1", res.RankWindowMax[0])
		}
	}
	if fixed.Ops != adaptive.Ops || fixed.Restarts != adaptive.Restarts {
		t.Fatalf("run shape diverged: ops %d/%d restarts %d/%d",
			fixed.Ops, adaptive.Ops, fixed.Restarts, adaptive.Restarts)
	}
	fe, ae := fixed.Graph.Edges(), adaptive.Graph.Edges()
	if len(fe) != len(ae) {
		t.Fatalf("edge counts diverged: %d vs %d", len(fe), len(ae))
	}
	for i := range fe {
		if fe[i] != ae[i] {
			t.Fatalf("edge %d diverged: fixed %v, adaptive %v", i, fe[i], ae[i])
		}
	}
	if fixed.VisitRate != adaptive.VisitRate {
		t.Fatalf("visit rate diverged: %v vs %v", fixed.VisitRate, adaptive.VisitRate)
	}
}

// TestAdaptiveWindowParallelRun exercises the adaptive controller at
// p>1 end to end: a multi-step sanitized run must satisfy every run
// invariant, and the reported per-rank window high-water marks must
// stay within the controller's bounds (>=1, <= |E_local|/4 is enforced
// live so the gathered max can never exceed the initial quarter).
func TestAdaptiveWindowParallelRun(t *testing.T) {
	g := testGraph(t, 8, 800, 4000)
	const ops = 2000
	res, err := Parallel(g, ops, Config{
		Ranks:           4,
		Scheme:          SchemeHPD,
		Seed:            5,
		StepSize:        ops / 8,
		CheckInvariants: true,
		AdaptiveWindow:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, g, res, ops)
	for i, w := range res.RankWindowMax {
		if w < 1 {
			t.Fatalf("rank %d window max %d, want >= 1", i, w)
		}
		if lim := res.RankInitialEdges[i]; w > lim {
			t.Fatalf("rank %d window max %d exceeds partition size %d", i, w, lim)
		}
	}
}
