package core

import (
	"strings"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
)

// kinds collects the violation kinds present in a finding list.
func kinds(vs []Violation) map[ViolationKind]bool {
	m := make(map[ViolationKind]bool)
	for _, v := range vs {
		m[v.Kind] = true
	}
	return m
}

// wantKind asserts some finding of the given kind mentions every
// substring (the "actionable message" contract).
func wantKind(t *testing.T, vs []Violation, kind ViolationKind, substrs ...string) {
	t.Helper()
	var ofKind []Violation
	for _, v := range vs {
		if v.Kind != kind {
			continue
		}
		ofKind = append(ofKind, v)
		ok := true
		for _, s := range substrs {
			if !strings.Contains(v.Message, s) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	if len(ofKind) == 0 {
		t.Fatalf("no %s violation in %v", kind, vs)
	}
	t.Fatalf("no %s violation mentioning %q; got %v", kind, substrs, ofKind)
}

func TestSanitizeCleanGraph(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(40), 200, 800)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Sanitize(g.N(), g.Edges(), NewBaseline(g)); len(vs) != 0 {
		t.Fatalf("clean graph flagged: %v", vs)
	}
	if vs := SanitizeGraph(g, NewBaseline(g)); len(vs) != 0 {
		t.Fatalf("clean graph flagged by SanitizeGraph: %v", vs)
	}
}

func TestSanitizeInjectedSelfLoop(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(41), 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(g)
	edges := append(g.Edges(), graph.Edge{U: 7, V: 7})
	vs := Sanitize(g.N(), edges, base)
	wantKind(t, vs, VSelfLoop, "(7,7)", "self-loop")
	// The loop also bumps the edge count past the baseline.
	wantKind(t, vs, VEdgeCount, "lost or invented")
}

func TestSanitizeDuplicatedEdge(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(42), 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(g)
	e := g.Edges()[0]
	// Duplicate in the reversed orientation: normalization must still
	// detect the collision.
	edges := append(g.Edges(), graph.Edge{U: e.V, V: e.U})
	vs := Sanitize(g.N(), edges, base)
	wantKind(t, vs, VParallelEdge, "appears more than once", "already existed")
	k := kinds(vs)
	if !k[VDegreeDrift] || !k[VEdgeCount] {
		t.Fatalf("duplicate edge should also drift degrees and edge count: %v", vs)
	}
}

func TestSanitizeDroppedEdge(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(43), 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(g)
	edges := g.Edges()[1:] // drop one edge
	vs := Sanitize(g.N(), edges, base)
	wantKind(t, vs, VEdgeCount, "149", "150", "lost or invented")
	wantKind(t, vs, VDegreeDrift, "preserve the degree sequence")
	// Both endpoints of the dropped edge must be reported.
	drifts := 0
	for _, v := range vs {
		if v.Kind == VDegreeDrift {
			drifts++
		}
	}
	if drifts != 2 {
		t.Fatalf("dropped edge should drift exactly 2 degrees, got %d: %v", drifts, vs)
	}
}

func TestSanitizeVertexRange(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 99}}
	vs := Sanitize(10, edges, nil)
	wantKind(t, vs, VVertexRange, "(2,99)", "outside [0,10)")
}

func TestSanitizeCapsRepeatedViolations(t *testing.T) {
	// 100 self-loops must not produce 100 findings.
	edges := make([]graph.Edge, 100)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i)}
	}
	vs := Sanitize(100, edges, nil)
	if len(vs) != maxViolations {
		t.Fatalf("got %d findings, want cap %d", len(vs), maxViolations)
	}
	last := vs[len(vs)-1]
	if !strings.Contains(last.Message, "suppressed") {
		t.Fatalf("cap marker missing: %v", last)
	}
}

func TestSanitizeDistribution(t *testing.T) {
	pt, err := partition.NewHPD(2)
	if err != nil {
		t.Fatal(err)
	}
	// HP-D with p=2: even vertices -> rank 0, odd -> rank 1.
	clean := [][]graph.Edge{
		{{U: 0, V: 1}, {U: 2, V: 3}},
		{{U: 1, V: 2}, {U: 3, V: 4}},
	}
	n := 5
	if vs := SanitizeDistribution(pt, n, clean, BaselineOfEdges(n, flatten(clean))); len(vs) != 0 {
		t.Fatalf("clean distribution flagged: %v", vs)
	}

	t.Run("wrong owner", func(t *testing.T) {
		parts := [][]graph.Edge{
			{{U: 0, V: 1}, {U: 1, V: 2}}, // (1,2) belongs to rank 1
			{{U: 3, V: 4}},
		}
		vs := SanitizeDistribution(pt, n, parts, nil)
		wantKind(t, vs, VOwnership, "rank 0", "(1,2)", "owned by rank 1")
	})

	t.Run("held twice", func(t *testing.T) {
		parts := [][]graph.Edge{
			{{U: 0, V: 1}},
			{{U: 0, V: 1}, {U: 3, V: 4}},
		}
		vs := SanitizeDistribution(pt, n, parts, nil)
		wantKind(t, vs, VOwnership, "(0,1)", "both rank 0 and rank 1", "exactly once")
	})

	t.Run("unnormalized", func(t *testing.T) {
		parts := [][]graph.Edge{
			{{U: 2, V: 1}}, // stored backwards
			nil,
		}
		vs := SanitizeDistribution(pt, n, parts, nil)
		wantKind(t, vs, VOwnership, "unnormalized", "min endpoint")
	})
}

func flatten(parts [][]graph.Edge) []graph.Edge {
	var out []graph.Edge
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestEngineSanitizerDetectsDroppedEdge corrupts a live engine (discard
// an owned edge after the baseline is recorded) and asserts both the
// sparse per-step delta check and the end-of-run full pass catch the
// drift with an actionable error.
func TestEngineSanitizerDetectsDroppedEdge(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(44), 60, 240)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	if err := eng.recordBaseline(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.stepExchange(); err != nil {
		t.Fatalf("clean engine flagged: %v", err)
	}
	sw := es(t, eng)
	e := sw.takeRandomEdge()
	if err := sw.discard(e); err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.stepExchange()
	if err == nil {
		t.Fatal("dropped edge not detected by the step exchange")
	}
	msg := err.Error()
	if !strings.Contains(msg, string(VEdgeCount)) || !strings.Contains(msg, string(VDegreeDrift)) {
		t.Fatalf("error %q should report %s and %s", msg, VEdgeCount, VDegreeDrift)
	}
	// The full end-of-run pass recomputes degrees from the adjacency
	// itself (no delta bookkeeping) and must agree.
	err = eng.verifyBaseline()
	if err == nil {
		t.Fatal("dropped edge not detected by the full baseline pass")
	}
	msg = err.Error()
	if !strings.Contains(msg, string(VEdgeCount)) || !strings.Contains(msg, string(VDegreeDrift)) {
		t.Fatalf("error %q should report %s and %s", msg, VEdgeCount, VDegreeDrift)
	}
}

// TestEngineSanitizerCleanAfterSwitches: an in-flight reinsert round trip
// leaves the engine clean (the deltas cancel, so the sparse payload is
// empty again).
func TestEngineSanitizerCleanAfterSwitches(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(45), 60, 240)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	if err := eng.recordBaseline(); err != nil {
		t.Fatal(err)
	}
	sw := es(t, eng)
	for i := 0; i < 10; i++ {
		e := sw.takeRandomEdge()
		if err := sw.reinsert(e); err != nil {
			t.Fatal(err)
		}
	}
	counts, origs, err := eng.stepExchange()
	if err != nil {
		t.Fatalf("round-tripped engine flagged: %v", err)
	}
	if len(counts) != 1 || counts[0] != g.M() {
		t.Fatalf("step exchange counts %v, want [%d]", counts, g.M())
	}
	if origs != g.M() {
		t.Fatalf("step exchange originals %d, want %d", origs, g.M())
	}
	if err := eng.verifyBaseline(); err != nil {
		t.Fatalf("round-tripped engine flagged by full pass: %v", err)
	}
}

// TestStepExchangeClearsDeltasOnViolation: when the checked step
// exchange reports a violation, it must still consume e.degDelta — the
// deltas describe drift up to THIS boundary, and leaving them behind
// would double-count the same drift against the next boundary's check
// (or corrupt the picture entirely once the run rolls back).
func TestStepExchangeClearsDeltasOnViolation(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.New(46), 60, 240)
	if err != nil {
		t.Fatal(err)
	}
	eng, w := newTestEngine(t, g)
	defer w.Close()
	if err := eng.recordBaseline(); err != nil {
		t.Fatal(err)
	}
	sw := es(t, eng)
	if err := sw.discard(sw.takeRandomEdge()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.stepExchange(); err == nil {
		t.Fatal("dropped edge not detected")
	}
	if len(eng.degDelta) != 0 {
		t.Fatalf("degDelta holds %d entries after a violating exchange; must be cleared on every exit path", len(eng.degDelta))
	}
}
