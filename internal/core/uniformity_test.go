package core

import (
	"fmt"
	"math"
	"testing"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// The degree sequence (2,2,2,2) on four labeled vertices has exactly
// three realizations, the three labeled 4-cycles:
//
//	A: 01 12 23 03    B: 02 12 13 03    C: 01 13 02 23
//
// The edge-switch Markov chain must converge to the uniform distribution
// over {A, B, C} — the property that makes switching a valid random-graph
// sampler. These tests check it for the sequential chain (tight
// chi-square) and the parallel process (looser tolerance).

func cycleID(t *testing.T, g *graph.Graph) string {
	t.Helper()
	key := ""
	for _, e := range g.Edges() {
		key += fmt.Sprintf("%d%d", e.U, e.V)
	}
	switch key {
	case "01031223": // edges 01 03 12 23
		return "A"
	case "02031213":
		return "B"
	case "01021323":
		return "C"
	default:
		t.Fatalf("unexpected C4 realization %q", key)
		return ""
	}
}

func startCycle(t *testing.T, r *rng.RNG) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}}, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSequentialUniformOverDegreeClass(t *testing.T) {
	r := rng.New(123)
	g := startCycle(t, r)
	counts := map[string]int{}
	const samples = 30000
	const spacing = 6
	for i := 0; i < samples; i++ {
		if _, err := Sequential(g, spacing, r); err != nil {
			t.Fatal(err)
		}
		counts[cycleID(t, g)]++
	}
	expected := float64(samples) / 3
	chi2 := 0.0
	for _, id := range []string{"A", "B", "C"} {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	// Samples along one chain are slightly correlated, so allow more
	// slack than the iid 2-dof 99.9% value (13.8).
	if chi2 > 25 {
		t.Fatalf("chain not uniform over degree class: chi2=%.1f counts=%v", chi2, counts)
	}
}

func TestParallelUniformOverDegreeClass(t *testing.T) {
	if testing.Short() {
		t.Skip("many small parallel runs")
	}
	counts := map[string]int{}
	const samples = 400
	for i := 0; i < samples; i++ {
		r := rng.New(uint64(1000 + i))
		g := startCycle(t, r)
		res, err := Parallel(g, 8, Config{Ranks: 2, Scheme: SchemeHPD, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		counts[cycleID(t, res.Graph)]++
	}
	// Loose check: every realization appears a healthy number of times.
	for _, id := range []string{"A", "B", "C"} {
		if counts[id] < samples/6 {
			t.Fatalf("realization %s underrepresented: %v", id, counts)
		}
	}
}

// TestSequentialStationaryFromEachStart: starting from any of the three
// realizations, one switch leads to each other realization with equal
// probability (the chain's transition symmetry).
func TestSequentialTransitionSymmetry(t *testing.T) {
	r := rng.New(9)
	counts := map[string]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		g := startCycle(t, r)
		if _, err := Sequential(g, 1, r); err != nil {
			t.Fatal(err)
		}
		counts[cycleID(t, g)]++
	}
	// One switch from A lands on B or C (never back on A: a completed
	// switch always changes the edge set).
	if counts["A"] != 0 {
		t.Fatalf("a completed switch left the graph unchanged: %v", counts)
	}
	ratio := float64(counts["B"]) / float64(counts["C"])
	if math.Abs(ratio-1) > 0.1 {
		t.Fatalf("asymmetric transitions: %v", counts)
	}
}
