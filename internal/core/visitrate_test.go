package core

import (
	"math"
	"testing"
)

func TestHarmonicExactSmall(t *testing.T) {
	cases := []struct {
		k    int64
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3}, {4, 25.0 / 12},
	}
	for _, c := range cases {
		if got := harmonic(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("H(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticMatchesExact(t *testing.T) {
	// Brute-force H(k) around the 256 cutoff and well past it.
	for _, k := range []int64{250, 256, 257, 300, 1000, 5000} {
		var exact float64
		for i := int64(1); i <= k; i++ {
			exact += 1 / float64(i)
		}
		if got := harmonic(k); math.Abs(got-exact) > 1e-9 {
			t.Fatalf("H(%d) = %.15f, exact %.15f", k, got, exact)
		}
	}
}

func TestExpectedEdgesSwitchedApproximation(t *testing.T) {
	// For x < 1 and large m: E[T] ≈ −m ln(1−x).
	const m = int64(1_000_000)
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		et, err := ExpectedEdgesSwitched(m, x)
		if err != nil {
			t.Fatal(err)
		}
		want := -float64(m) * math.Log(1-x)
		if math.Abs(et-want)/want > 0.001 {
			t.Fatalf("x=%v: E[T]=%f, approx %f", x, et, want)
		}
	}
	// x = 1: E[T] ≈ m ln m (within the γ-constant correction).
	et, err := ExpectedEdgesSwitched(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(m) * math.Log(float64(m))
	if math.Abs(et-want)/want > 0.05 {
		t.Fatalf("x=1: E[T]=%f, m ln m = %f", et, want)
	}
}

func TestExpectedEdgesSwitchedEdgeCases(t *testing.T) {
	if v, err := ExpectedEdgesSwitched(0, 0.5); err != nil || v != 0 {
		t.Fatalf("m=0: (%v,%v)", v, err)
	}
	if v, err := ExpectedEdgesSwitched(100, 0); err != nil || v != 0 {
		t.Fatalf("x=0: (%v,%v)", v, err)
	}
	if _, err := ExpectedEdgesSwitched(100, -0.1); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, err := ExpectedEdgesSwitched(100, 1.1); err == nil {
		t.Fatal("x > 1 accepted")
	}
	if _, err := ExpectedEdgesSwitched(-1, 0.5); err == nil {
		t.Fatal("negative m accepted")
	}
}

// TestOpsForVisitRateSmallTargets pins the rounding clamp: a small
// nonzero x on a small m used to round `remaining` back up to m, making
// E[T] = 0 and silently doing no work (e.g. -x 0.05 on m=10). Any
// positive target must cost at least one operation.
func TestOpsForVisitRateSmallTargets(t *testing.T) {
	cases := []struct {
		m      int64
		x      float64
		minOps int64
	}{
		{m: 10, x: 0.05, minOps: 1},   // round(10·0.95) = 10: the reported bug
		{m: 10, x: 0.04, minOps: 1},   // even further below half an edge
		{m: 1, x: 0.5, minOps: 1},     // single-edge graph
		{m: 1, x: 1, minOps: 1},       // single edge, full visit
		{m: 3, x: 0.1, minOps: 1},     // round(3·0.9) = 3
		{m: 100, x: 0.001, minOps: 1}, // round(100·0.999) = 100
		{m: 1000000, x: 1e-9, minOps: 1},
		{m: 10, x: 0.1, minOps: 1}, // round(9) = 9 < 10: unclamped path still ≥ 1
	}
	for _, c := range cases {
		ops, err := OpsForVisitRate(c.m, c.x)
		if err != nil {
			t.Fatalf("m=%d x=%v: %v", c.m, c.x, err)
		}
		if ops < c.minOps {
			t.Errorf("m=%d x=%v: got %d ops, want >= %d", c.m, c.x, ops, c.minOps)
		}
	}
	// The zero cases stay zero: clamping must not invent work.
	if ops, err := OpsForVisitRate(10, 0); err != nil || ops != 0 {
		t.Fatalf("x=0: (%d,%v)", ops, err)
	}
	if ops, err := OpsForVisitRate(0, 0.5); err != nil || ops != 0 {
		t.Fatalf("m=0: (%d,%v)", ops, err)
	}
}

func TestOpsForVisitRateMonotone(t *testing.T) {
	const m = int64(100000)
	prev := int64(-1)
	for _, x := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1} {
		ops, err := OpsForVisitRate(m, x)
		if err != nil {
			t.Fatal(err)
		}
		if ops <= prev {
			t.Fatalf("ops not strictly increasing at x=%v: %d after %d", x, ops, prev)
		}
		prev = ops
	}
}

func TestVisitRate(t *testing.T) {
	if v := VisitRate(0, 100); v != 1 {
		t.Fatalf("all modified: %v", v)
	}
	if v := VisitRate(100, 100); v != 0 {
		t.Fatalf("none modified: %v", v)
	}
	if v := VisitRate(25, 100); math.Abs(v-0.75) > 1e-12 {
		t.Fatalf("3/4 modified: %v", v)
	}
	if v := VisitRate(5, 0); v != 0 {
		t.Fatalf("empty graph: %v", v)
	}
}
