package core

import "fmt"

// The Randomizer seam (DESIGN.md §5): the rank engine is split into a
// chassis and a randomizer. The chassis owns everything algorithm-
// independent — partition ownership and local storage, the step loop
// with its drain/stall/EOS machinery, the batching message plane and its
// freelists, the adaptive-window signals, the sanitizer's fused degree
// deltas, and the Stats/Result plumbing. A randomizer owns only the
// protocol that actually perturbs the graph. The paper's edge-switch
// conversation protocol (edgeswitcher.go) and global curveball trades
// (curveball.go) are the two implementations; they share every line of
// chassis code.

// Algorithm selects the randomization process run behind the Randomizer
// seam.
type Algorithm string

// The implemented randomization algorithms.
const (
	// AlgoEdgeSwitch is the paper's single-edge-switch conversation
	// protocol (§4.4–§4.5): each operation takes two random edges and
	// swaps their endpoints under a reserve/commit/release conversation
	// between the initiator, a partner, and the replacement-edge owners.
	// The default.
	AlgoEdgeSwitch Algorithm = "edge-switch"
	// AlgoCurveball is the global curveball trade chain
	// (Carstens/Hamann/Meyer et al., arXiv:1804.08487): each step is one
	// global round that pairs every vertex and uniformly trades the
	// disjoint parts of the paired adjacency lists. A round visits every
	// vertex's adjacency once; there are no reservations and no restarts.
	AlgoCurveball Algorithm = "curveball"
)

// Algorithms lists the implemented algorithms in presentation order.
func Algorithms() []Algorithm { return []Algorithm{AlgoEdgeSwitch, AlgoCurveball} }

// algorithm normalizes and validates Config.Algorithm ("" means the
// default edge-switch protocol).
func (cfg Config) algorithm() (Algorithm, error) {
	switch cfg.Algorithm {
	case "", AlgoEdgeSwitch:
		return AlgoEdgeSwitch, nil
	case AlgoCurveball:
		return AlgoCurveball, nil
	default:
		return "", fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
}

// randomizer is the engine-side seam: the chassis step loop drives one
// instance per rank, and every protocol message that is not a chassis
// control signal (EOS/stalled/resumed) is dispatched to it. A step ends
// when every rank's randomizer reports done and has announced EOS.
//
// The chassis calls the methods from a single goroutine; implementations
// send through rankEngine.send and mutate local storage only through the
// chassis accounting helpers (takeLocal/insertLocal/drainLocal), which
// keep the sanitizer deltas and the originals counter exact for any
// algorithm.
type randomizer interface {
	// prepare arms one step of size s. counts holds the step-boundary
	// per-rank edge counts from the fused exchange (edge-switch rebuilds
	// its partner-selection prefix sums from them; curveball ignores
	// them). prepare may already send protocol messages.
	prepare(s int64, counts []int64) error
	// advance performs self-driven work: start pipelined operations,
	// forfeit a structurally stuck one. It reports whether it made
	// progress (the loop re-drains before calling again). Event-driven
	// randomizers always report false and do all work in handle.
	advance() (bool, error)
	// done reports that this rank's share of the step is complete (it
	// keeps serving peers until everyone is).
	done() bool
	// starved reports that the randomizer cannot progress until a peer's
	// message delivers work (the chassis then runs stall detection, and
	// calls forfeitRemaining when the whole world is starved).
	starved() bool
	// forfeitRemaining abandons the rank's remaining share of the step;
	// only called after global quiescence is established.
	forfeitRemaining()
	// handle dispatches one protocol message from src.
	handle(om opMsg, src int) error
	// quiesced verifies no protocol state dangles at a step boundary.
	quiesced() error
	// cursor returns the randomizer's resume cursor — the only protocol
	// state that survives a step boundary (the edge switcher's operation
	// sequence counter, curveball's round number). Captured by the
	// checkpoint layer at boundaries, where quiesced guarantees all maps
	// and in-flight state are empty.
	cursor() uint64
	// restoreCursor reinstates a cursor captured by cursor at the same
	// step boundary, as part of restoring a checkpointed engine.
	restoreCursor(uint64)
}
