package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
)

// canonicalEdges returns a run's edge set in a comparable order.
func canonicalEdges(t *testing.T, g *graph.Graph) []graph.Edge {
	t.Helper()
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

func sameEdges(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// copyCheckpointDir clones a checkpoint directory so restore runs (which
// write their own checkpoints as they continue) cannot disturb the
// reference set.
func copyCheckpointDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// manifestStepsIn lists the committed checkpoint steps in a directory.
func manifestStepsIn(t *testing.T, dir string) []int64 {
	t.Helper()
	ck := &checkpointer{dir: dir}
	steps := ck.manifestSteps()
	if len(steps) == 0 {
		t.Fatalf("no checkpoint manifests in %s", dir)
	}
	return steps
}

// TestCheckpointRestoreEquivalence is the tentpole pin: a run killed and
// restored at ANY step boundary must end exactly where an uninterrupted
// run ends. For every case a reference run checkpoints every boundary
// (keeping all of them), then each boundary is restored in a fresh world
// and driven to completion. Where the protocol is deterministic —
// curveball at every rank count, edge-switching at p=1 (at p>1 the
// conversation interleaving is scheduling-dependent) — the final edge
// set must be bit-identical; elsewhere the restored run completes under
// the full sanitizer and must preserve the degree multiset.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	g := testGraph(t, 7, 400, 1600)
	cases := []struct {
		name          string
		algo          Algorithm
		ranks         int
		t             int64
		stepSize      int64
		deterministic bool
	}{
		{"curveball-p1", AlgoCurveball, 1, 4, 0, true},
		{"curveball-p2", AlgoCurveball, 2, 4, 0, true},
		{"curveball-p8", AlgoCurveball, 8, 4, 0, true},
		{"edgeswitch-p1", AlgoEdgeSwitch, 1, 800, 200, true},
		{"edgeswitch-p2", AlgoEdgeSwitch, 2, 800, 200, false},
		{"edgeswitch-p8", AlgoEdgeSwitch, 8, 800, 200, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refDir := t.TempDir()
			cfg := Config{
				Ranks:           tc.ranks,
				Algorithm:       tc.algo,
				Scheme:          SchemeHPD,
				StepSize:        tc.stepSize,
				Seed:            11,
				CheckInvariants: true,
				CheckpointDir:   refDir,
				CheckpointEvery: 1,
				CheckpointKeep:  -1,
			}
			ref, err := Parallel(g, tc.t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refEdges := canonicalEdges(t, ref.Graph)
			refDegrees := degreeMultiset(ref.Graph)

			for _, step := range manifestStepsIn(t, refDir) {
				rcfg := cfg
				rcfg.CheckpointDir = copyCheckpointDir(t, refDir)
				rcfg.Restore = true
				rcfg.RestoreStep = step
				res, err := Parallel(g, tc.t, rcfg)
				if err != nil {
					t.Fatalf("restore from step %d: %v", step, err)
				}
				if res.RestoredStep != step {
					t.Fatalf("resumed from step %d, demanded %d", res.RestoredStep, step)
				}
				if tc.deterministic {
					if !sameEdges(refEdges, canonicalEdges(t, res.Graph)) {
						t.Fatalf("restore from step %d diverged from the uninterrupted run", step)
					}
					if res.Ops != ref.Ops || res.Restarts != ref.Restarts {
						t.Fatalf("restore from step %d: ops %d restarts %d, uninterrupted run had %d/%d",
							step, res.Ops, res.Restarts, ref.Ops, ref.Restarts)
					}
				} else {
					// Scheduling-dependent interleaving: pin the
					// structural invariants instead of the exact edges.
					checkRun(t, g, res, tc.t)
					if !sameDegrees(refDegrees, degreeMultiset(res.Graph)) {
						t.Fatalf("restore from step %d changed the degree multiset", step)
					}
				}
			}
		})
	}
}

// TestCheckpointRestoreFreshWhenEmpty: Restore against an empty
// directory (no committed manifest) bootstraps a fresh run rather than
// failing — the esworker rollback loop relies on this when a world
// faults before its first checkpoint commits.
func TestCheckpointRestoreFreshWhenEmpty(t *testing.T) {
	g := testGraph(t, 8, 200, 600)
	res, err := Parallel(g, 300, Config{
		Ranks:         2,
		Seed:          5,
		CheckpointDir: t.TempDir(),
		Restore:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoredStep != 0 {
		t.Fatalf("fresh bootstrap reported RestoredStep %d", res.RestoredStep)
	}
	checkRun(t, g, res, 300)
}

// TestCheckpointRestoreStepMissing: demanding a step that was never
// committed must fail with the reason, not silently start fresh.
func TestCheckpointRestoreStepMissing(t *testing.T) {
	g := testGraph(t, 8, 200, 600)
	_, err := Parallel(g, 300, Config{
		Ranks:         2,
		Seed:          5,
		CheckpointDir: t.TempDir(),
		Restore:       true,
		RestoreStep:   3,
	})
	if err == nil {
		t.Fatal("restore from a nonexistent step succeeded")
	}
	if !strings.Contains(err.Error(), "cannot restore requested checkpoint step 3") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// writeEquivalenceCheckpoints runs a short 2-rank curveball run that
// leaves every boundary's checkpoint behind, for the corruption tests.
func writeEquivalenceCheckpoints(t *testing.T, g *graph.Graph) (string, Config, int64) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		Ranks:           2,
		Algorithm:       AlgoCurveball,
		Seed:            11,
		CheckpointDir:   dir,
		CheckpointEvery: 1,
		CheckpointKeep:  -1,
	}
	if _, err := Parallel(g, 3, cfg); err != nil {
		t.Fatal(err)
	}
	steps := manifestStepsIn(t, dir)
	return dir, cfg, steps[len(steps)-1]
}

// TestCheckpointCorruptSnapshotRejected: a flipped byte in one rank's
// snapshot must fail the restore with an actionable CRC error instead of
// resuming from corrupted state.
func TestCheckpointCorruptSnapshotRejected(t *testing.T) {
	g := testGraph(t, 9, 200, 600)
	dir, cfg, step := writeEquivalenceCheckpoints(t, g)

	snap := ckSnapPath(dir, step, 1)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Restore, cfg.RestoreStep = true, step
	_, err = Parallel(g, 3, cfg)
	if err == nil {
		t.Fatal("corrupted snapshot restored")
	}
	if !strings.Contains(err.Error(), "cannot restore requested checkpoint step") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// Without the exact-step demand, the agreement collective must skip
	// past the damaged step to the newest one every rank can restore.
	cfg.RestoreStep = 0
	res, err := Parallel(g, 3, cfg)
	if err != nil {
		t.Fatalf("restore could not fall back past the damaged step: %v", err)
	}
	if res.RestoredStep == 0 || res.RestoredStep >= step {
		t.Fatalf("fell back to step %d, want an earlier intact checkpoint", res.RestoredStep)
	}
}

// TestCheckpointCorruptDegreeBaselineRejected: the manifest's degree
// CRC doubles as the restore integrity check — a restored world whose
// re-derived global degree sequence does not hash to the recorded value
// must refuse to resume, naming the failing step.
func TestCheckpointCorruptDegreeBaselineRejected(t *testing.T) {
	g := testGraph(t, 10, 200, 600)
	dir, cfg, step := writeEquivalenceCheckpoints(t, g)

	path := ckManifestPath(dir, step)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man ckManifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	man.DegreeCRC++
	if data, err = json.Marshal(&man); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Restore, cfg.RestoreStep = true, step
	_, err = Parallel(g, 3, cfg)
	if err == nil {
		t.Fatal("restore passed a wrong degree baseline")
	}
	if !strings.Contains(err.Error(), "degree sequence") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestSnapshotHeaderRoundTrip pins the binary snapshot codec at the
// engine level: every resumable field survives encode/decode, and the
// CRC32C trailer rejects any bit flip.
func TestSnapshotHeaderRoundTrip(t *testing.T) {
	g := testGraph(t, 12, 80, 320)
	eng, w := newTestEngine(t, g)
	defer w.Close()
	sw := es(t, eng)
	for i := 0; i < 5; i++ {
		if err := sw.reinsert(sw.takeRandomEdge()); err != nil {
			t.Fatal(err)
		}
	}
	eng.stepsRun = 3
	eng.opsInitiated = 17
	eng.restarts = 2

	snap := eng.encodeSnapshot(nil)
	st, adj, err := decodeSnapshotHeader(snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.step != 3 || st.opsInitiated != 17 || st.restarts != 2 {
		t.Fatalf("counters did not round-trip: %+v", st)
	}
	if st.n != g.N() || st.m != g.M() || st.seed != eng.seed {
		t.Fatalf("identity did not round-trip: %+v", st)
	}
	if st.rnd != eng.rnd.State() {
		t.Fatal("RNG state did not round-trip")
	}
	if st.cursor != eng.rand.cursor() {
		t.Fatal("randomizer cursor did not round-trip")
	}
	if len(adj) == 0 {
		t.Fatal("no adjacency payload")
	}
	if err := eng.validateSnapshot(st, AlgoEdgeSwitch); err != nil {
		t.Fatal(err)
	}
	if err := eng.validateSnapshot(st, AlgoCurveball); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}

	for _, pos := range []int{6, 50, snapHeaderLen + 3, len(snap) - 2} {
		bad := append([]byte(nil), snap...)
		bad[pos] ^= 0x08
		if _, _, err := decodeSnapshotHeader(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
}

// TestCheckpointGCCutoff drives gc directly: snapshot deletion must key
// on the retention cutoff, not on still seeing the step's manifest —
// rank 0 unlinks expired manifests concurrently with the peers' own
// directory listings, so a manifest-keyed GC orphans the losing peer's
// snapshot forever. A snapshot below the cutoff goes even when its
// manifest is already gone.
func TestCheckpointGCCutoff(t *testing.T) {
	w, err := mpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	dir := t.TempDir()
	for _, step := range []int64{3, 4, 5} {
		if err := os.WriteFile(ckManifestPath(dir, step), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshots for steps 1..5; steps 1 and 2 have no manifest (step 1
	// mimics the orphan a lost race leaves, step 2 a crashed commit).
	for _, step := range []int64{1, 2, 3, 4, 5} {
		if err := os.WriteFile(ckSnapPath(dir, step, 0), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A peer's snapshot is never this rank's to collect.
	if err := os.WriteFile(ckSnapPath(dir, 1, 1), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *mpi.Comm) error {
		ck := &checkpointer{c: c, dir: dir, keep: 2}
		ck.gc(5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{
		filepath.Base(ckManifestPath(dir, 4)),
		filepath.Base(ckManifestPath(dir, 5)),
		filepath.Base(ckSnapPath(dir, 1, 1)),
		filepath.Base(ckSnapPath(dir, 4, 0)),
		filepath.Base(ckSnapPath(dir, 5, 0)),
	}
	sort.Strings(names)
	sort.Strings(want)
	if len(names) != len(want) {
		t.Fatalf("after gc: %v, want %v", names, want)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("after gc: %v, want %v", names, want)
		}
	}
}

// TestCheckpointGCBoundsDirectory: after a multi-rank run with the
// default retention, the directory holds exactly the last two
// checkpoints — keep×1 manifests and keep×ranks snapshots — with no
// stragglers from earlier boundaries.
func TestCheckpointGCBoundsDirectory(t *testing.T) {
	g := testGraph(t, 13, 200, 600)
	dir := t.TempDir()
	_, err := Parallel(g, 6, Config{
		Ranks:         2,
		Algorithm:     AlgoCurveball,
		Seed:          3,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var manifests, snaps int
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
		if filepath.Ext(e.Name()) == ".json" {
			manifests++
		} else {
			snaps++
		}
	}
	if manifests != 2 || snaps != 4 {
		t.Fatalf("retention window violated: %d manifests, %d snapshots: %v", manifests, snaps, names)
	}
}
