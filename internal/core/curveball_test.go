package core

import (
	"strings"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// edgeFlagMap snapshots a graph as edge -> original flag, the complete
// observable state curveball equivalence is pinned on.
func edgeFlagMap(g *graph.Graph) map[graph.Edge]bool {
	out := make(map[graph.Edge]bool, g.M())
	for ui := 0; ui < g.N(); ui++ {
		u := graph.Vertex(ui)
		g.WalkReduced(u, func(v graph.Vertex, orig bool) bool {
			out[graph.Edge{U: u, V: v}.Norm()] = orig
			return true
		})
	}
	return out
}

func sameEdgeFlags(t *testing.T, label string, want, got map[graph.Edge]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: edge counts diverged: want %d, got %d", label, len(want), len(got))
	}
	for e, orig := range want {
		g, ok := got[e]
		if !ok {
			t.Fatalf("%s: edge %v missing", label, e)
		}
		if g != orig {
			t.Fatalf("%s: edge %v original flag %v, want %v", label, e, g, orig)
		}
	}
}

// checkCurveballRun asserts the invariants every curveball run must
// satisfy: shape and degree sequence preserved, graph simple, every
// trade executed (rounds x floor(n/2) ops, nothing forfeited).
func checkCurveballRun(t *testing.T, g *graph.Graph, res *Result, rounds int64) {
	t.Helper()
	if res.Graph == nil {
		t.Fatal("no result graph")
	}
	if res.Graph.N() != g.N() || res.Graph.M() != g.M() {
		t.Fatalf("shape changed: n %d->%d m %d->%d", g.N(), res.Graph.N(), g.M(), res.Graph.M())
	}
	if err := res.Graph.CheckSimple(); err != nil {
		t.Fatalf("result not simple: %v", err)
	}
	if !sameDegrees(degreeMultiset(g), degreeMultiset(res.Graph)) {
		t.Fatal("degree multiset changed")
	}
	if res.Algorithm != string(AlgoCurveball) {
		t.Fatalf("algorithm echoed as %q", res.Algorithm)
	}
	if res.Forfeited != 0 {
		t.Fatalf("forfeited %d trades", res.Forfeited)
	}
	if want := rounds * int64(g.N()/2); res.Ops != want {
		t.Fatalf("ops %d, want %d (every trade of every round)", res.Ops, want)
	}
}

// TestCurveballSequentialEquivalence is the p=1 pin of the curveball
// randomizer: a single-rank distributed run must produce the same graph
// (edges and original flags), trade for trade, as the sequential
// reference from the same seed — plus the same trade count and visit
// rate.
func TestCurveballSequentialEquivalence(t *testing.T) {
	g := testGraph(t, 21, 301, 1500)
	const rounds = 6
	const seed = 77
	res, err := Parallel(g, rounds, Config{
		Ranks:           1,
		Seed:            seed,
		Algorithm:       AlgoCurveball,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCurveballRun(t, g, res, rounds)
	if res.Steps != rounds {
		t.Fatalf("steps %d, want %d (one round per step)", res.Steps, rounds)
	}

	seq := g.Clone(rng.New(1))
	st, err := SequentialCurveball(seq, rounds, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameEdgeFlags(t, "p=1 vs sequential", edgeFlagMap(seq), edgeFlagMap(res.Graph))
	if res.Ops != st.Ops {
		t.Fatalf("trades diverged: distributed %d, sequential %d", res.Ops, st.Ops)
	}
	if res.VisitRate != st.VisitRate {
		t.Fatalf("visit rate diverged: distributed %v, sequential %v", res.VisitRate, st.VisitRate)
	}
	if st.Restarts != 0 {
		t.Fatalf("sequential curveball reported %d restarts", st.Restarts)
	}
}

// TestCurveballPInvariance pins the distribution-independence of the
// trades: the final graph (edges and flags) must be identical at
// p ∈ {1, 2, 8} for the same seed, on both even and odd vertex counts
// (odd n exercises the sat-out vertex path).
func TestCurveballPInvariance(t *testing.T) {
	for _, n := range []int{200, 201} {
		g := testGraph(t, uint64(30+n), n, int64(5*n))
		const rounds = 4
		var want map[graph.Edge]bool
		var wantOps int64
		for _, p := range []int{1, 2, 8} {
			res, err := Parallel(g, rounds, Config{
				Ranks:           p,
				Scheme:          SchemeHPD,
				Seed:            123,
				Algorithm:       AlgoCurveball,
				CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			checkCurveballRun(t, g, res, rounds)
			got := edgeFlagMap(res.Graph)
			if want == nil {
				want, wantOps = got, res.Ops
				continue
			}
			sameEdgeFlags(t, "p-invariance", want, got)
			if res.Ops != wantOps {
				t.Fatalf("n=%d p=%d: ops %d, want %d", n, p, res.Ops, wantOps)
			}
		}
	}
}

// TestCurveballVisitRateTarget checks the per-algorithm visit-rate
// plumbing end to end: the round count derived from the conservative
// per-round bound must reach the target, and TargetVisitRate must stop a
// generous round budget early at the step boundary where the target is
// met.
func TestCurveballVisitRateTarget(t *testing.T) {
	g := testGraph(t, 40, 1000, 5000)
	const x = 0.9
	rounds, err := CurveballRoundsForVisitRate(g.M(), x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallel(g, rounds, Config{Ranks: 2, Seed: 9, Algorithm: AlgoCurveball})
	if err != nil {
		t.Fatal(err)
	}
	checkCurveballRun(t, g, res, rounds)
	if res.VisitRate < x {
		t.Fatalf("visit rate %v below target %v after %d rounds", res.VisitRate, x, rounds)
	}

	const budget = 50
	early, err := Parallel(g, budget, Config{
		Ranks:           2,
		Seed:            9,
		Algorithm:       AlgoCurveball,
		TargetVisitRate: x,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if early.Steps >= budget {
		t.Fatalf("target %v did not stop the run early (ran all %d rounds)", x, early.Steps)
	}
	if early.VisitRate < x {
		t.Fatalf("early stop at visit rate %v, below target %v", early.VisitRate, x)
	}
}

// TestCurveballSanitizerCatchesCorruption is the satellite-6 pin: the
// degree-baseline sanitizer is algorithm-agnostic, so corruption on the
// curveball path (no edge-switch machinery anywhere) must be detected at
// the next step exchange.
func TestCurveballSanitizerCatchesCorruption(t *testing.T) {
	mk := func() (*graph.Graph, *rankEngine, func()) {
		g, err := gen.ErdosRenyi(rng.New(46), 60, 240)
		if err != nil {
			t.Fatal(err)
		}
		eng, w := newTestEngineCfg(t, g, Config{Seed: 5, CheckInvariants: true, Algorithm: AlgoCurveball})
		if _, ok := eng.rand.(*curveball); !ok {
			t.Fatalf("engine randomizer is %T, want *curveball", eng.rand)
		}
		if err := eng.recordBaseline(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.stepExchange(); err != nil {
			t.Fatalf("clean engine flagged: %v", err)
		}
		return g, eng, func() { w.Close() }
	}

	t.Run("dropped edge", func(t *testing.T) {
		_, eng, close := mk()
		defer close()
		if _, ok := eng.takeLocal(); !ok {
			t.Fatal("takeLocal on a populated engine failed")
		}
		_, _, err := eng.stepExchange()
		if err == nil {
			t.Fatal("dropped edge not detected by the step exchange")
		}
		if msg := err.Error(); !strings.Contains(msg, string(VEdgeCount)) || !strings.Contains(msg, string(VDegreeDrift)) {
			t.Fatalf("error %q should report %s and %s", msg, VEdgeCount, VDegreeDrift)
		}
		if err := eng.verifyBaseline(); err == nil {
			t.Fatal("dropped edge not detected by the full baseline pass")
		}
	})

	t.Run("rewired endpoint", func(t *testing.T) {
		g, eng, close := mk()
		defer close()
		// Replace {u,v} with some {u,w}: the edge count stays intact but
		// the degrees of v and w drift.
		e, ok := eng.takeLocal()
		if !ok {
			t.Fatal("takeLocal on a populated engine failed")
		}
		inserted := false
		for w := 0; w < g.N(); w++ {
			cand := graph.Vertex(w)
			if cand == e.U || cand == e.V {
				continue
			}
			if err := eng.insertLocal(graph.Edge{U: e.U, V: cand}.Norm(), false); err == nil {
				inserted = true
				break
			}
		}
		if !inserted {
			t.Fatal("no rewire candidate found")
		}
		_, _, err := eng.stepExchange()
		if err == nil {
			t.Fatal("rewired edge not detected by the step exchange")
		}
		if msg := err.Error(); !strings.Contains(msg, string(VDegreeDrift)) {
			t.Fatalf("error %q should report %s", msg, VDegreeDrift)
		}
	})
}

// TestCBPermute checks the pairing permutation: a valid permutation of
// [0, n), identical when recomputed (it must agree across ranks), and
// different across rounds.
func TestCBPermute(t *testing.T) {
	const n = 257
	a := make([]graph.Vertex, n)
	b := make([]graph.Vertex, n)
	cbPermute(a, 9, 1)
	cbPermute(b, 9, 1)
	seen := make([]bool, n)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recomputed permutation diverged at %d", i)
		}
		if a[i] != graph.Vertex(i) {
			same = false
		}
		if int(a[i]) < 0 || int(a[i]) >= n || seen[a[i]] {
			t.Fatalf("not a permutation at %d: %v", i, a[i])
		}
		seen[a[i]] = true
	}
	if same {
		t.Fatal("permutation is the identity")
	}
	cbPermute(b, 9, 2)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("rounds 1 and 2 drew the same permutation")
	}
}

// TestCBAssignAndFirstTrade pins the trade-assignment inverse and the
// earliest-incident-trade routing rule, including the odd-n sat-out
// vertex.
func TestCBAssignAndFirstTrade(t *testing.T) {
	perm := []graph.Vertex{4, 1, 0, 3, 2} // trade 0: (4,1), trade 1: (0,3); 2 sits out
	tradeOf := make([]int32, 5)
	cbAssignTrades(tradeOf, perm)
	for v, want := range map[graph.Vertex]int32{4: 0, 1: 0, 0: 1, 3: 1, 2: -1} {
		if tradeOf[v] != want {
			t.Fatalf("tradeOf[%d] = %d, want %d", v, tradeOf[v], want)
		}
	}
	cases := []struct {
		u, w    graph.Vertex
		trade   int32
		anchorW bool
	}{
		{4, 1, 0, false}, // both in trade 0, tie broken to u
		{0, 4, 0, true},  // w's trade is earlier
		{4, 0, 0, false}, // u's trade is earlier
		{2, 3, 1, true},  // u sits out
		{0, 2, 1, false}, // w sits out
		{2, 2, -1, true}, // degenerate: neither trades (anchor flag is unused at trade -1)
	}
	for _, c := range cases {
		trade, anchorW := cbFirstTrade(tradeOf, c.u, c.w)
		if trade != c.trade || anchorW != c.anchorW {
			t.Fatalf("cbFirstTrade(%d, %d) = (%d, %v), want (%d, %v)", c.u, c.w, trade, anchorW, c.trade, c.anchorW)
		}
	}
}

// TestCBApplyTrade pins the trade semantics: shared neighbours keep
// their sides and flags, the pool is redistributed preserving both
// degrees, side changes clear the original flag, and the outcome is a
// pure function of the sorted input lists.
func TestCBApplyTrade(t *testing.T) {
	uList := []cbEdge{
		{other: 2, orig: true},
		{other: 5, orig: true},
		{other: 7, orig: false},
	}
	vList := []cbEdge{
		{other: 3, anchorV: true, orig: true},
		{other: 5, anchorV: true, orig: false},
	}
	st := cbTradeStream(11, 1, 0)
	var pool, out []cbEdge
	pool, out = cbApplyTrade(uList, vList, pool, out, st)
	if len(out) != len(uList)+len(vList) {
		t.Fatalf("trade changed cardinality: %d -> %d", len(uList)+len(vList), len(out))
	}
	nU, nV := 0, 0
	sharedU, sharedV := false, false
	for _, ed := range out {
		if ed.anchorV {
			nV++
		} else {
			nU++
		}
		if ed.other == 5 {
			// The shared neighbour: one entry per side, flags intact.
			if !ed.anchorV && ed.orig {
				sharedU = true
			}
			if ed.anchorV && !ed.orig {
				sharedV = true
			}
		} else if ed.orig {
			// A disjoint entry may keep its flag only on its original side.
			from := uList
			if ed.anchorV {
				from = vList
			}
			found := false
			for _, src := range from {
				if src.other == ed.other && src.orig {
					found = true
				}
			}
			if !found {
				t.Fatalf("entry %+v kept its original flag across a side change", ed)
			}
		}
	}
	if nU != len(uList) || nV != len(vList) {
		t.Fatalf("degrees changed: u %d->%d, v %d->%d", len(uList), nU, len(vList), nV)
	}
	if !sharedU || !sharedV {
		t.Fatalf("shared neighbour not kept on both sides with flags (u %v, v %v)", sharedU, sharedV)
	}

	// Determinism: the same multiset presented in any arrival order must
	// produce the same result once sorted.
	u2 := []cbEdge{uList[2], uList[0], uList[1]}
	v2 := []cbEdge{vList[1], vList[0]}
	sortCBEdges(u2)
	sortCBEdges(v2)
	var pool2, out2 []cbEdge
	_, out2 = cbApplyTrade(u2, v2, pool2, out2, cbTradeStream(11, 1, 0))
	if len(out2) != len(out) {
		t.Fatalf("shuffled arrivals changed cardinality: %d vs %d", len(out), len(out2))
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("shuffled arrivals diverged at %d: %+v vs %+v", i, out[i], out2[i])
		}
	}
	_ = pool
}

// TestSequentialCurveballBasics covers the reference implementation's
// own invariants on a graph too large to eyeball: simplicity, shape,
// degree sequence, trade accounting, and rejection of negative rounds.
func TestSequentialCurveballBasics(t *testing.T) {
	g := testGraph(t, 50, 400, 2400)
	degs := degreeMultiset(g)
	m0 := g.M()
	st, err := SequentialCurveball(g, 5, 33)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != m0 {
		t.Fatalf("edge count changed: %d -> %d", m0, g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatalf("result not simple: %v", err)
	}
	if !sameDegrees(degs, degreeMultiset(g)) {
		t.Fatal("degree multiset changed")
	}
	if want := int64(5 * (400 / 2)); st.Ops != want {
		t.Fatalf("ops %d, want %d", st.Ops, want)
	}
	if st.VisitRate <= 0 || st.VisitRate > 1 {
		t.Fatalf("visit rate %v out of range", st.VisitRate)
	}
	if _, err := SequentialCurveball(g, -1, 33); err == nil {
		t.Fatal("negative round count accepted")
	}
}
