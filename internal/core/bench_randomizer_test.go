package core

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"edgeswitch/internal/gen/pergen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
)

// The randomizer benchmark matrix behind BENCH_curveball.json: both
// algorithms behind the Randomizer seam (edge-switch conversations vs
// global curveball trades) driven to the SAME target visit rate
// (x = 0.9) on the pergen evaluation graphs (pa, contact), across both
// transports and p ∈ {2, 8}. Each algorithm gets its own per-algorithm
// budget (OpsForVisitRateAlgo) and the engine's TargetVisitRate early
// stop, so the comparison is work-to-reach-x, not work-per-op: an
// edge-switch op rewires 2 edges after a conversation, a curveball
// round trades every adjacency list at once with zero conversations.

// randBenchTargetX is the matrix's common target visit rate.
const randBenchTargetX = 0.9

// randBenchCell is one matrix measurement, as committed to
// BENCH_curveball.json.
type randBenchCell struct {
	Algo      string  `json:"algo"`
	Model     string  `json:"model"`
	Transport string  `json:"transport"`
	Ranks     int     `json:"ranks"`
	M         int64   `json:"m"`          // edge count of the input graph
	Budget    int64   `json:"budget"`     // per-algorithm t for x=0.9 (ops, or rounds)
	Steps     int     `json:"steps"`      // steps actually run (early stop can shorten)
	Ops       int64   `json:"ops"`        // operations executed (switches, or trades)
	VisitRate float64 `json:"visit_rate"` // achieved — must be >= 0.9
	Msgs      int64   `json:"msgs"`       // transport payloads
	Bytes     int64   `json:"bytes"`      // transport payload volume
	Seconds   float64 `json:"seconds"`
}

// randBenchGraph materializes a pergen benchmark graph small enough for
// the full matrix to run in benchsmoke.
func randBenchGraph(tb testing.TB, model string) *graph.Graph {
	tb.Helper()
	d := 5
	if model == "contact" {
		d = 6
	}
	pg, err := pergen.New(benchGenSpec(model, 2000, d))
	if err != nil {
		tb.Fatal(err)
	}
	g, err := pg.Full()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// runRandomizerCell drives one matrix cell: a full run to the target
// visit rate on a fresh world, returning the measurement.
func runRandomizerCell(tb testing.TB, algo Algorithm, model, transport string, p int) randBenchCell {
	tb.Helper()
	g := randBenchGraph(tb, model)
	budget, err := OpsForVisitRateAlgo(algo, g.M(), randBenchTargetX)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Config{
		Ranks:           p,
		Scheme:          SchemeHPD,
		Seed:            42,
		Algorithm:       algo,
		TargetVisitRate: randBenchTargetX,
		SkipResult:      true,
	}
	if algo != AlgoCurveball {
		// Ten quota steps give the early stop boundaries to act on; a
		// curveball step is always one round.
		cfg.StepSize = budget / 10
	}
	var opts []mpi.Option
	if transport == "tcp" {
		opts = append(opts, mpi.WithTCP())
	}
	w, err := mpi.NewWorld(p, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	defer w.Close()
	var res *Result
	start := w.Stats()
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		r, err := RunRank(c, g, budget, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	elapsed := time.Since(t0)
	if err != nil {
		tb.Fatal(err)
	}
	st := w.Stats()
	return randBenchCell{
		Algo:      string(algo),
		Model:     model,
		Transport: transport,
		Ranks:     p,
		M:         g.M(),
		Budget:    budget,
		Steps:     res.Steps,
		Ops:       res.Ops,
		VisitRate: res.VisitRate,
		Msgs:      st.Sends - start.Sends,
		Bytes:     st.Bytes - start.Bytes,
		Seconds:   elapsed.Seconds(),
	}
}

// BenchmarkRandomizer times both randomizers to the common target visit
// rate across the transport × rank matrix on the pergen graphs.
func BenchmarkRandomizer(b *testing.B) {
	for _, algo := range Algorithms() {
		for _, model := range []string{"pa", "contact"} {
			for _, transport := range []string{"mem", "tcp"} {
				for _, p := range []int{2, 8} {
					b.Run(fmt.Sprintf("%s/%s/%s/p%d", algo, model, transport, p), func(b *testing.B) {
						var cell randBenchCell
						for i := 0; i < b.N; i++ {
							cell = runRandomizerCell(b, algo, model, transport, p)
						}
						if cell.VisitRate < randBenchTargetX {
							b.Fatalf("visit rate %v below target %v", cell.VisitRate, randBenchTargetX)
						}
						b.ReportMetric(float64(cell.Ops)/cell.Seconds, "ops/s")
						b.ReportMetric(cell.VisitRate, "visitrate")
						b.ReportMetric(float64(cell.Msgs), "msgs/run")
					})
				}
			}
		}
	}
}

// TestBenchRandomizerRecord regenerates BENCH_curveball.json from the
// mem-transport matrix. Run with BENCHRECORD=1 after engine changes that
// move the numbers, and commit the result.
func TestBenchRandomizerRecord(t *testing.T) {
	if os.Getenv("BENCHRECORD") == "" {
		t.Skip("set BENCHRECORD=1 to regenerate BENCH_curveball.json")
	}
	var cells []randBenchCell
	for _, algo := range Algorithms() {
		for _, model := range []string{"pa", "contact"} {
			for _, p := range []int{2, 8} {
				cell := runRandomizerCell(t, algo, model, "mem", p)
				if cell.VisitRate < randBenchTargetX {
					t.Fatalf("%s/%s/p%d: visit rate %v below target", algo, model, p, cell.VisitRate)
				}
				cells = append(cells, cell)
			}
		}
	}
	doc := map[string]any{
		"benchmark": "BenchmarkRandomizer (internal/core/bench_randomizer_test.go)",
		"description": "Both randomizers behind the engine seam driven to the same target visit rate " +
			"(x=0.9, TargetVisitRate early stop) on pergen graphs (pa n=2000 d=5, contact n=2000 d=6), " +
			"mem transport, p in {2,8}, seed 42. budget is the per-algorithm t for x=0.9 " +
			"(OpsForVisitRateAlgo: switch ops, or global rounds via the conservative 0.25/round bound); " +
			"steps/ops/visit_rate are what the run actually did. Curveball cells are deterministic " +
			"(p-invariant trades; the guard pins them exactly); edge-switch cells vary with scheduling " +
			"(the guard only bands msgs and checks the target).",
		"date":     time.Now().Format("2006-01-02"),
		"command":  "BENCHRECORD=1 go test -run '^TestBenchRandomizerRecord$' -v ./internal/core/",
		"target_x": randBenchTargetX,
		"matrix":   cells,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_curveball.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_curveball.json with %d cells", len(cells))
}

// TestBenchsmokeCurveballRegression is the benchsmoke guard for the
// randomizer seam: it replays the pa/mem cells of BENCH_curveball.json
// at p=2 once per algorithm and fails if (a) either algorithm no longer
// reaches the common target visit rate within its per-algorithm budget,
// (b) the curveball trajectory drifts from the committed baseline —
// trades are deterministic and p-invariant, so steps, ops, and achieved
// visit rate must match exactly — or (c) either algorithm's transport
// sends regress beyond 2x the committed value. Runs only under
// BENCHSMOKE=1 (`make benchsmoke`).
func TestBenchsmokeCurveballRegression(t *testing.T) {
	if os.Getenv("BENCHSMOKE") == "" {
		t.Skip("set BENCHSMOKE=1 to run the benchsmoke regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_curveball.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var bench struct {
		TargetX float64         `json:"target_x"`
		Matrix  []randBenchCell `json:"matrix"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_curveball.json: %v", err)
	}
	if bench.TargetX != randBenchTargetX {
		t.Fatalf("baseline target_x %v, guard expects %v", bench.TargetX, randBenchTargetX)
	}
	base := map[string]randBenchCell{}
	for _, c := range bench.Matrix {
		if c.Model == "pa" && c.Transport == "mem" && c.Ranks == 2 {
			base[c.Algo] = c
		}
	}
	for _, algo := range Algorithms() {
		bc, ok := base[string(algo)]
		if !ok {
			t.Fatalf("BENCH_curveball.json lacks the pa/mem/p2 %s baseline", algo)
		}
		got := runRandomizerCell(t, algo, "pa", "mem", 2)
		t.Logf("%s: visit rate %.4f in %d steps / %d ops, %d msgs (baseline %.4f / %d / %d / %d)",
			algo, got.VisitRate, got.Steps, got.Ops, got.Msgs, bc.VisitRate, bc.Steps, bc.Ops, bc.Msgs)
		if got.VisitRate < randBenchTargetX {
			t.Errorf("%s: visit rate %v no longer reaches the target %v", algo, got.VisitRate, randBenchTargetX)
		}
		if algo == AlgoCurveball {
			if got.Steps != bc.Steps || got.Ops != bc.Ops || got.VisitRate != bc.VisitRate {
				t.Errorf("%s trajectory drifted: steps %d ops %d rate %v, baseline steps %d ops %d rate %v — trades are deterministic, so this is a correctness regression",
					algo, got.Steps, got.Ops, got.VisitRate, bc.Steps, bc.Ops, bc.VisitRate)
			}
		}
		if got.Msgs > 2*bc.Msgs {
			t.Errorf("%s transport sends regressed >2x: %d vs baseline %d", algo, got.Msgs, bc.Msgs)
		}
	}
}

// TestLargeCurveballSmoke is the large-graph CI leg for the curveball
// randomizer: a full run to the target visit rate on a ~10^6-edge
// pergen pa graph at p=8, sanity-checking the achieved rate. Runs only
// under ESLARGE=1 (`make largesmoke`), time-boxed by -timeout.
func TestLargeCurveballSmoke(t *testing.T) {
	if os.Getenv("ESLARGE") == "" {
		t.Skip("set ESLARGE=1 to run the large-graph curveball smoke")
	}
	spec := benchGenSpec("pa", 100_001, 10) // MaxEdges 1,000,005
	budget, err := OpsForVisitRateAlgo(AlgoCurveball, spec.MaxEdges(), randBenchTargetX)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var res *Result
	start := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		r, err := RunRank(c, nil, budget, Config{
			Ranks:           8,
			Scheme:          SchemeHPD,
			Seed:            42,
			Algorithm:       AlgoCurveball,
			TargetVisitRate: randBenchTargetX,
			SkipResult:      true,
			DistributedGen:  &spec,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitRate < randBenchTargetX {
		t.Errorf("visit rate %v below target %v", res.VisitRate, randBenchTargetX)
	}
	t.Logf("pa n=%d p=8: visit rate %.4f in %d rounds (%d trades) in %v",
		spec.N, res.VisitRate, res.Steps, res.Ops, time.Since(start))
}
