package core

import (
	"testing"
)

// TestParallelStressManyRanksSmallSteps is the engine's race gate: 8
// ranks, deliberately small steps (so the reserve/commit protocol, the
// end-of-step handshake and the sanitizer's collectives all fire many
// times) on both the mailbox and loopback-TCP transports, with the
// invariant sanitizer verifying the full distributed state at every step
// boundary. Run it under `go test -race ./internal/core/...`. Message
// interleaving makes individual runs differ even per seed (the protocol
// is asynchronous), but the sanitized invariants must hold on every
// schedule.
func TestParallelStressManyRanksSmallSteps(t *testing.T) {
	g := testGraph(t, 77, 600, 3600)
	const (
		tOps  = 4000
		steps = 16
	)
	for _, tc := range []struct {
		name   string
		useTCP bool
	}{
		{"mem", false},
		{"tcp", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Parallel(g, tOps, Config{
				Ranks:           8,
				Scheme:          SchemeHPU,
				Seed:            99,
				StepSize:        tOps / steps,
				UseTCP:          tc.useTCP,
				CheckInvariants: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, res, tOps)
			if res.Steps != steps {
				t.Fatalf("steps = %d, want %d", res.Steps, steps)
			}
			if res.Forfeited != 0 {
				t.Fatalf("forfeited %d on a healthy graph", res.Forfeited)
			}
		})
	}
}
