package core

import (
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// isConnected checks connectivity of a Graph via its full adjacency.
func isConnected(g *graph.Graph) bool {
	if g.N() == 0 {
		return true
	}
	full := g.FullAdjacency()
	seen := make([]bool, g.N())
	queue := []graph.Vertex{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range full[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == g.N()
}

// connectedTestGraph builds a connected random graph (ring + chords).
func connectedTestGraph(t *testing.T, n int, extra int64) *graph.Graph {
	t.Helper()
	r := rng.New(77)
	edges := make([]graph.Edge, 0, int64(n)+extra)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex((i + 1) % n)})
	}
	have := map[graph.Edge]bool{}
	for _, e := range edges {
		have[e.Norm()] = true
	}
	for int64(len(edges)) < int64(n)+extra {
		e := graph.Edge{U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n))}.Norm()
		if e.IsLoop() || have[e] {
			continue
		}
		have[e] = true
		edges = append(edges, e)
	}
	g, err := graph.FromEdges(n, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSequentialConnectedPreservesConnectivity(t *testing.T) {
	g := connectedTestGraph(t, 300, 300)
	if !isConnected(g) {
		t.Fatal("test graph not connected")
	}
	out, st, err := SequentialConnected(g, 2000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 2000 {
		t.Fatalf("ops %d", st.Ops)
	}
	if !isConnected(out) {
		t.Fatal("result disconnected")
	}
	if err := out.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if !sameDegrees(degreeMultiset(g), degreeMultiset(out)) {
		t.Fatal("degree multiset changed")
	}
	if out.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", out.M(), g.M())
	}
}

// TestConnectedRejectsDisconnectingSwitches uses a barbell graph (two
// dense blobs joined by a single bridge) where many switches would cut
// the bridge; connectivity must survive anyway.
func TestConnectedRejectsDisconnectingSwitches(t *testing.T) {
	r := rng.New(2)
	var edges []graph.Edge
	// Two K5s.
	for blob := 0; blob < 2; blob++ {
		base := blob * 5
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, graph.Edge{U: graph.Vertex(base + i), V: graph.Vertex(base + j)})
			}
		}
	}
	// One bridge.
	edges = append(edges, graph.Edge{U: 0, V: 5})
	g, err := graph.FromEdges(10, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := SequentialConnected(g, 300, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !isConnected(out) {
		t.Fatal("barbell disconnected")
	}
	if st.Restarts == 0 {
		t.Fatal("expected restarts on a barbell graph")
	}
}

func TestConnectedSwitcherRejectsDisconnectedInput(t *testing.T) {
	r := rng.New(4)
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConnectedSwitcher(g, r); err == nil {
		t.Fatal("disconnected input accepted")
	}
}

func TestConnectedSwitcherErrors(t *testing.T) {
	r := rng.New(5)
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, r)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewConnectedSwitcher(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Switch(5); err == nil {
		t.Fatal("single-edge switch accepted")
	}
	if _, err := cs.Switch(-1); err == nil {
		t.Fatal("negative t accepted")
	}
	if cs.M() != 1 {
		t.Fatalf("M = %d", cs.M())
	}
}

// TestConnectedMixes: the constraint must still allow substantial mixing
// on a well-connected graph.
func TestConnectedMixes(t *testing.T) {
	g := connectedTestGraph(t, 400, 1200)
	orig := map[graph.Edge]bool{}
	for _, e := range g.Edges() {
		orig[e] = true
	}
	out, _, err := SequentialConnected(g, 6000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, e := range out.Edges() {
		if orig[e] {
			same++
		}
	}
	if float64(same) > 0.3*float64(g.M()) {
		t.Fatalf("only %d/%d edges changed", int(g.M())-same, g.M())
	}
}

func TestConfigurationModelBaseline(t *testing.T) {
	r := rng.New(7)
	// Heterogeneous degrees: the configuration model must erase edges.
	degrees := make([]int, 120)
	for i := range degrees {
		degrees[i] = 4
	}
	degrees[0] = 80
	degrees[1] = 80
	res, err := gen.ConfigurationModel(r, degrees)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if res.ErasedLoops+res.ErasedParallel == 0 {
		t.Fatal("expected erased stubs with hub-heavy degrees")
	}
	// Degrees can only shrink, never grow.
	got := res.Graph.Degrees()
	for v, d := range got {
		if d > degrees[v] {
			t.Fatalf("vertex %d degree %d exceeds request %d", v, d, degrees[v])
		}
	}
}

func TestConfigurationModelExactOnLowDegrees(t *testing.T) {
	r := rng.New(8)
	degrees := make([]int, 2000)
	for i := range degrees {
		degrees[i] = 2
	}
	res, err := gen.ConfigurationModel(r, degrees)
	if err != nil {
		t.Fatal(err)
	}
	// With degree 2 on 2000 vertices collisions are rare; realized sum
	// must be close to requested.
	var want, got int64
	for _, d := range degrees {
		want += int64(d)
	}
	for _, d := range res.Graph.Degrees() {
		got += int64(d)
	}
	if got < want*95/100 {
		t.Fatalf("realized degree sum %d far below %d", got, want)
	}
}

func TestConfigurationModelValidation(t *testing.T) {
	r := rng.New(9)
	if _, err := gen.ConfigurationModel(r, []int{1}); err == nil {
		t.Fatal("odd degree sum accepted")
	}
	if _, err := gen.ConfigurationModel(r, []int{-1, 1}); err == nil {
		t.Fatal("negative degree accepted")
	}
	if _, err := gen.ConfigurationModel(r, []int{2, 2}); err == nil {
		t.Fatal("degree >= n accepted")
	}
}
