package core

import (
	"encoding/json"
	"os"
	"sync/atomic"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// TestBenchsmokeAdaptiveRegression is the benchsmoke regression guard:
// it replays the tiny-uniform adaptive high-conflict configuration from
// BENCH_adaptive.json once and fails if the protocol efficiency the
// adaptive window is supposed to deliver has regressed by more than 2x
// against the committed baseline — either in transport sends (the
// batching the window feeds) or in restarts (the wasted work the
// controller steers on). It runs only under BENCHSMOKE=1 (`make
// benchsmoke`): a single run is deliberately noisy, so the 2x band is a
// rot detector for CI, not a performance assertion; BENCH_adaptive.json
// holds the measured numbers.
func TestBenchsmokeAdaptiveRegression(t *testing.T) {
	if os.Getenv("BENCHSMOKE") == "" {
		t.Skip("set BENCHSMOKE=1 to run the benchsmoke regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_adaptive.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var bench struct {
		HighConflict []struct {
			Transport string `json:"transport"`
			Config    string `json:"config"`
			Adaptive  struct {
				Msgs     float64 `json:"msgs_per_run"`
				Restarts float64 `json:"restarts_per_run"`
			} `json:"adaptive"`
		} `json:"high_conflict"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_adaptive.json: %v", err)
	}
	var baseMsgs, baseRestarts float64
	for _, c := range bench.HighConflict {
		if c.Transport == "mem" && c.Config == "tiny-uniform" {
			baseMsgs, baseRestarts = c.Adaptive.Msgs, c.Adaptive.Restarts
		}
	}
	if baseMsgs == 0 || baseRestarts == 0 {
		t.Fatal("BENCH_adaptive.json lacks the mem/tiny-uniform adaptive baseline")
	}

	// The tiny-uniform high-conflict config of BenchmarkEngineStepHighConflict.
	g, err := gen.ErdosRenyi(rng.Split(34, 0), 240, 960)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 4000
	w, err := mpi.NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var restarts atomic.Int64
	start := w.Stats()
	err = w.Run(func(c *mpi.Comm) error {
		res, err := RunRank(c, g, ops, Config{
			Ranks:          8,
			Scheme:         SchemeHPD,
			Seed:           33,
			StepSize:       ops / 10,
			SkipResult:     true,
			AdaptiveWindow: true,
		})
		if err != nil {
			return err
		}
		if res != nil {
			restarts.Add(res.Restarts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := float64(w.Stats().Sends - start.Sends)
	t.Logf("msgs %.0f (baseline %.0f), restarts %d (baseline %.0f)",
		msgs, baseMsgs, restarts.Load(), baseRestarts)
	if msgs > 2*baseMsgs {
		t.Errorf("transport sends regressed >2x: %.0f vs baseline %.0f", msgs, baseMsgs)
	}
	if r := float64(restarts.Load()); r > 2*baseRestarts {
		t.Errorf("restarts regressed >2x: %.0f vs baseline %.0f", r, baseRestarts)
	}
}
