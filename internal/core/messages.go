package core

import (
	"encoding/binary"
	"fmt"

	"edgeswitch/internal/graph"
)

// The conversation protocol of §4.4–§4.5, generalised (see DESIGN.md §4):
// an operation is a short exchange between the initiator (owner of the
// first edge), the partner (owner of the second edge; may equal the
// initiator for a local switch), and the owners of the two replacement
// edges. All owner-directed mutations are acknowledged so that when an
// initiator's operation completes, every remote update it caused has been
// applied — the property that makes the end-of-step barrier sound.

// opTag is the single application tag used by engine traffic; message
// kinds are distinguished in the payload.
const opTag = 1

// msgKind enumerates protocol messages.
type msgKind uint8

const (
	// mSelectSecond: initiator → partner. Carries e1; asks the partner
	// to select a second edge and orchestrate the switch.
	mSelectSecond msgKind = iota + 1
	// mAbortOp: partner → initiator. The operation was rejected
	// (useless/loop/parallel-edge/empty partition); restart with a new pair.
	mAbortOp
	// mReserve: partner → owner. Reserve a replacement edge in the
	// owner's potential-edge set after a conflict check.
	mReserve
	// mReserveOK / mReserveFail: owner → partner replies.
	mReserveOK
	mReserveFail
	// mCommit: partner → owner. Materialize a reserved edge.
	mCommit
	// mCommitAck: owner → partner.
	mCommitAck
	// mRelease: partner → owner. Drop a reservation after a failed switch.
	mRelease
	// mReleaseAck: owner → partner.
	mReleaseAck
	// mOpDone: partner → initiator. Switch committed everywhere.
	mOpDone
	// mEndOfStep: rank → all. The sender has completed its quota for the
	// current step (it keeps serving until everyone has).
	mEndOfStep
	// mStalled / mResumed: rank → all. The sender has remaining quota but
	// an empty partition (it cannot select a first edge until a commit
	// delivers one), or has recovered from that state. Used for
	// distributed stall detection: when every peer is either finished or
	// stalled, no operation can ever replenish an empty partition, so
	// stalled ranks forfeit their remaining quota instead of deadlocking.
	// Only reachable on degenerate inputs (partitions of a handful of
	// edges); realistic partitions never empty.
	mStalled
	mResumed
)

func (k msgKind) String() string {
	switch k {
	case mSelectSecond:
		return "selectSecond"
	case mAbortOp:
		return "abortOp"
	case mReserve:
		return "reserve"
	case mReserveOK:
		return "reserveOK"
	case mReserveFail:
		return "reserveFail"
	case mCommit:
		return "commit"
	case mCommitAck:
		return "commitAck"
	case mRelease:
		return "release"
	case mReleaseAck:
		return "releaseAck"
	case mOpDone:
		return "opDone"
	case mEndOfStep:
		return "endOfStep"
	case mStalled:
		return "stalled"
	case mResumed:
		return "resumed"
	default:
		return fmt.Sprintf("msgKind(%d)", uint8(k))
	}
}

// opID identifies an operation: the initiating rank plus a per-initiator
// sequence number.
type opID struct {
	rank int32
	seq  uint64
}

func (id opID) String() string { return fmt.Sprintf("op[%d:%d]", id.rank, id.seq) }

// opMsg is the decoded form of every protocol message. Unused fields are
// zero.
type opMsg struct {
	kind msgKind
	id   opID
	e1   graph.Edge // mSelectSecond: first edge; owner messages: target edge
}

const opMsgLen = 1 + 4 + 8 + 16

// encode serializes the message into a fresh buffer.
func (m opMsg) encode() []byte {
	buf := make([]byte, opMsgLen)
	m.encodeInto(buf)
	return buf
}

// encodeInto serializes the message into buf, which must hold opMsgLen
// bytes.
func (m opMsg) encodeInto(buf []byte) {
	buf[0] = byte(m.kind)
	binary.LittleEndian.PutUint32(buf[1:], uint32(m.id.rank))
	binary.LittleEndian.PutUint64(buf[5:], m.id.seq)
	binary.LittleEndian.PutUint32(buf[13:], uint32(m.e1.U))
	binary.LittleEndian.PutUint32(buf[17:], uint32(m.e1.V))
	// Bytes 21..28 are reserved (kept for layout stability).
}

// Batch framing (the message plane, see DESIGN.md): a transport payload
// carries one or more protocol messages, each as a length-prefixed
// record `len uint8 | record`. Every record is currently opMsgLen bytes;
// the prefix keeps the frame self-describing so record layouts can grow
// without a flag day.

// appendOpMsg appends one framed record to a batch buffer.
func appendOpMsg(buf []byte, m opMsg) []byte {
	var rec [opMsgLen]byte
	m.encodeInto(rec[:])
	buf = append(buf, byte(opMsgLen)) // hotalloc: amortized; batch buffers come presized from the freelist
	return append(buf, rec[:]...)     // hotalloc: amortized; batch buffers come presized from the freelist
}

// forEachOpMsg decodes a batch payload record by record, stopping at the
// first decode or handler error.
func forEachOpMsg(data []byte, fn func(opMsg) error) error {
	for off := 0; off < len(data); {
		rl := int(data[off])
		off++
		if rl == 0 || off+rl > len(data) {
			return fmt.Errorf("core: truncated message batch at byte %d", off-1)
		}
		m, err := decodeOpMsg(data[off : off+rl])
		if err != nil {
			return err
		}
		off += rl
		if err := fn(m); err != nil {
			return err
		}
	}
	return nil
}

// decodeOpMsg parses an engine payload.
func decodeOpMsg(data []byte) (opMsg, error) {
	if len(data) != opMsgLen {
		return opMsg{}, fmt.Errorf("core: bad op message length %d", len(data))
	}
	m := opMsg{
		kind: msgKind(data[0]),
		id: opID{
			rank: int32(binary.LittleEndian.Uint32(data[1:])),
			seq:  binary.LittleEndian.Uint64(data[5:]),
		},
		e1: graph.Edge{
			U: graph.Vertex(binary.LittleEndian.Uint32(data[13:])),
			V: graph.Vertex(binary.LittleEndian.Uint32(data[17:])),
		},
	}
	if m.kind < mSelectSecond || m.kind > mResumed {
		return opMsg{}, fmt.Errorf("core: unknown message kind %d", data[0])
	}
	return m, nil
}
