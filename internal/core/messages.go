package core

import (
	"encoding/binary"
	"fmt"

	"edgeswitch/internal/graph"
)

// The conversation protocol of §4.4–§4.5, generalised (see DESIGN.md §4):
// an operation is a short exchange between the initiator (owner of the
// first edge), the partner (owner of the second edge; may equal the
// initiator for a local switch), and the owners of the two replacement
// edges. All owner-directed mutations are acknowledged so that when an
// initiator's operation completes, every remote update it caused has been
// applied — the property that makes the end-of-step barrier sound.
//
// The curveball randomizer adds two payload kinds to the same plane:
// mTradeEdge routes an adjacency entry to the rank orchestrating the
// trade it participates in, and mStoreEdge hands a settled edge to its
// owner. Both ride the identical batch framing and tag; the chassis
// dispatches them through the randomizer seam like any protocol message.

// opTag is the single application tag used by engine traffic; message
// kinds are distinguished in the payload.
const opTag = 1

// msgKind enumerates protocol messages.
type msgKind uint8

const (
	// mSelectSecond: initiator → partner. Carries e1; asks the partner
	// to select a second edge and orchestrate the switch.
	mSelectSecond msgKind = iota + 1
	// mAbortOp: partner → initiator. The operation was rejected
	// (useless/loop/parallel-edge/empty partition); restart with a new pair.
	mAbortOp
	// mReserve: partner → owner. Reserve a replacement edge in the
	// owner's potential-edge set after a conflict check.
	mReserve
	// mReserveOK / mReserveFail: owner → partner replies.
	mReserveOK
	mReserveFail
	// mCommit: partner → owner. Materialize a reserved edge.
	mCommit
	// mCommitAck: owner → partner.
	mCommitAck
	// mRelease: partner → owner. Drop a reservation after a failed switch.
	mRelease
	// mReleaseAck: owner → partner.
	mReleaseAck
	// mOpDone: partner → initiator. Switch committed everywhere.
	mOpDone
	// mEndOfStep: rank → all. The sender has completed its quota for the
	// current step (it keeps serving until everyone has).
	mEndOfStep
	// mStalled / mResumed: rank → all. The sender has remaining quota but
	// an empty partition (it cannot select a first edge until a commit
	// delivers one), or has recovered from that state. Used for
	// distributed stall detection: when every peer is either finished or
	// stalled, no operation can ever replenish an empty partition, so
	// stalled ranks forfeit their remaining quota instead of deadlocking.
	// Only reachable on degenerate inputs (partitions of a handful of
	// edges); realistic partitions never empty.
	mStalled
	mResumed
	// mTradeEdge: edge holder → trade orchestrator (curveball). Carries
	// one adjacency entry of a traded vertex: trade is the global trade
	// index this round, e1.U the entry's anchor (the traded vertex it
	// belongs to), e1.V the other endpoint — NOT normalized — and orig
	// the original flag.
	mTradeEdge
	// mStoreEdge: anyone → edge owner (curveball). Carries one settled
	// normalized edge (e1) with its original flag for insertion into the
	// owner's partition.
	mStoreEdge
)

func (k msgKind) String() string {
	switch k {
	case mSelectSecond:
		return "selectSecond"
	case mAbortOp:
		return "abortOp"
	case mReserve:
		return "reserve"
	case mReserveOK:
		return "reserveOK"
	case mReserveFail:
		return "reserveFail"
	case mCommit:
		return "commit"
	case mCommitAck:
		return "commitAck"
	case mRelease:
		return "release"
	case mReleaseAck:
		return "releaseAck"
	case mOpDone:
		return "opDone"
	case mEndOfStep:
		return "endOfStep"
	case mStalled:
		return "stalled"
	case mResumed:
		return "resumed"
	case mTradeEdge:
		return "tradeEdge"
	case mStoreEdge:
		return "storeEdge"
	default:
		return fmt.Sprintf("msgKind(%d)", uint8(k))
	}
}

// opID identifies an operation: the initiating rank plus a per-initiator
// sequence number.
type opID struct {
	rank int32
	seq  uint64
}

func (id opID) String() string { return fmt.Sprintf("op[%d:%d]", id.rank, id.seq) }

// opMsg is the decoded form of every protocol message. Unused fields are
// zero.
type opMsg struct {
	kind  msgKind
	id    opID       // conversation kinds: operation id
	e1    graph.Edge // mSelectSecond: first edge; owner messages: target edge; curveball: payload edge
	trade int32      // mTradeEdge: global trade index this round
	orig  bool       // curveball kinds: the edge's original flag
}

// Per-kind wire lengths. The conversation kinds keep the original fixed
// 29-byte record; the curveball kinds are shorter — they carry no opID,
// and at fan-out of one record per adjacency entry per round the framing
// is the dominant communication cost.
const (
	opMsgLen    = 1 + 4 + 8 + 16 // kind | rank | seq | e1 (+8 reserved)
	tradeMsgLen = 1 + 4 + 4 + 4 + 1
	storeMsgLen = 1 + 4 + 4 + 1
)

// wireLen returns the record length for the message's kind.
func (m opMsg) wireLen() int {
	switch m.kind {
	case mTradeEdge:
		return tradeMsgLen
	case mStoreEdge:
		return storeMsgLen
	default:
		return opMsgLen
	}
}

// encode serializes the message into a fresh buffer.
func (m opMsg) encode() []byte {
	buf := make([]byte, m.wireLen())
	m.encodeInto(buf)
	return buf
}

// encodeInto serializes the message into buf, which must hold wireLen()
// bytes, and returns the record length.
func (m opMsg) encodeInto(buf []byte) int {
	buf[0] = byte(m.kind)
	switch m.kind {
	case mTradeEdge:
		binary.LittleEndian.PutUint32(buf[1:], uint32(m.trade))
		binary.LittleEndian.PutUint32(buf[5:], uint32(m.e1.U))
		binary.LittleEndian.PutUint32(buf[9:], uint32(m.e1.V))
		buf[13] = boolByte(m.orig)
		return tradeMsgLen
	case mStoreEdge:
		binary.LittleEndian.PutUint32(buf[1:], uint32(m.e1.U))
		binary.LittleEndian.PutUint32(buf[5:], uint32(m.e1.V))
		buf[9] = boolByte(m.orig)
		return storeMsgLen
	default:
		binary.LittleEndian.PutUint32(buf[1:], uint32(m.id.rank))
		binary.LittleEndian.PutUint64(buf[5:], m.id.seq)
		binary.LittleEndian.PutUint32(buf[13:], uint32(m.e1.U))
		binary.LittleEndian.PutUint32(buf[17:], uint32(m.e1.V))
		// Bytes 21..28 are reserved (kept for layout stability).
		return opMsgLen
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Batch framing (the message plane, see DESIGN.md): a transport payload
// carries one or more protocol messages, each as a length-prefixed
// record `len uint8 | record`. Record layouts are per-kind (wireLen);
// the prefix keeps the frame self-describing so layouts can grow
// without a flag day.

// appendOpMsg appends one framed record to a batch buffer.
func appendOpMsg(buf []byte, m opMsg) []byte {
	var rec [opMsgLen]byte
	n := m.encodeInto(rec[:])
	buf = append(buf, byte(n))     // hotalloc: amortized; batch buffers come presized from the freelist
	return append(buf, rec[:n]...) // hotalloc: amortized; batch buffers come presized from the freelist
}

// forEachOpMsg decodes a batch payload record by record, stopping at the
// first decode or handler error.
func forEachOpMsg(data []byte, fn func(opMsg) error) error {
	for off := 0; off < len(data); {
		rl := int(data[off])
		off++
		if rl == 0 || off+rl > len(data) {
			return fmt.Errorf("core: truncated message batch at byte %d", off-1)
		}
		m, err := decodeOpMsg(data[off : off+rl])
		if err != nil {
			return err
		}
		off += rl
		if err := fn(m); err != nil {
			return err
		}
	}
	return nil
}

// decodeOpMsg parses one engine record, validating the kind-specific
// length.
func decodeOpMsg(data []byte) (opMsg, error) {
	if len(data) == 0 {
		return opMsg{}, fmt.Errorf("core: empty op message")
	}
	kind := msgKind(data[0])
	switch {
	case kind == mTradeEdge:
		if len(data) != tradeMsgLen {
			return opMsg{}, fmt.Errorf("core: bad op message length %d", len(data))
		}
		return opMsg{
			kind:  kind,
			trade: int32(binary.LittleEndian.Uint32(data[1:])),
			e1: graph.Edge{
				U: graph.Vertex(binary.LittleEndian.Uint32(data[5:])),
				V: graph.Vertex(binary.LittleEndian.Uint32(data[9:])),
			},
			orig: data[13] != 0,
		}, nil
	case kind == mStoreEdge:
		if len(data) != storeMsgLen {
			return opMsg{}, fmt.Errorf("core: bad op message length %d", len(data))
		}
		return opMsg{
			kind: kind,
			e1: graph.Edge{
				U: graph.Vertex(binary.LittleEndian.Uint32(data[1:])),
				V: graph.Vertex(binary.LittleEndian.Uint32(data[5:])),
			},
			orig: data[9] != 0,
		}, nil
	case kind >= mSelectSecond && kind <= mResumed:
		if len(data) != opMsgLen {
			return opMsg{}, fmt.Errorf("core: bad op message length %d", len(data))
		}
		return opMsg{
			kind: kind,
			id: opID{
				rank: int32(binary.LittleEndian.Uint32(data[1:])),
				seq:  binary.LittleEndian.Uint64(data[5:]),
			},
			e1: graph.Edge{
				U: graph.Vertex(binary.LittleEndian.Uint32(data[13:])),
				V: graph.Vertex(binary.LittleEndian.Uint32(data[17:])),
			},
		}, nil
	default:
		return opMsg{}, fmt.Errorf("core: unknown message kind %d", data[0])
	}
}
