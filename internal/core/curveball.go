package core

import (
	"cmp"
	"fmt"
	"slices"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// Global curveball trades (Carstens/Hamann/Meyer et al., arXiv:1804.08487)
// behind the Randomizer seam: each step is one global round. A counter
// stream keyed on (seed, round) draws a pairing permutation of all
// vertices; trade i pairs perm[2i] with perm[2i+1]. A trade keeps the
// neighbours the pair shares (and the pair edge itself, if present) and
// redistributes the disjoint neighbours uniformly between the two
// vertices, preserving both degrees — no reservations, no restarts, no
// conversations.
//
// Distribution: the owner of perm[2i] orchestrates trade i. At the start
// of a round every rank drains its whole partition (drainLocal) and
// routes each edge to the EARLIEST trade this round touching one of its
// endpoints, anchored at that endpoint (cbFirstTrade breaks the
// either-endpoint tie by trade index; edges touching no trade — only
// possible in odd-n rounds with a sat-out vertex — go straight back to
// their owner). A trade executes the moment it holds every edge incident
// to its two vertices — the exact expected counts are the global degrees,
// invariant across the run and bootstrapped once with a single
// AllreduceUint32s — and then forwards each result edge to the later
// trade of its non-traded endpoint, or to its owner if no later trade
// wants it. Induction on the global trade index makes this deadlock-free:
// trade 0's inputs can come only from drains, trade i's only from drains
// and trades < i. The step-boundary Allgather barriers rounds, so no
// message can leak across them.
//
// Determinism (the p-invariance pin): a trade's inputs are sorted by
// non-anchor endpoint before the uniform redistribution, which draws from
// a counter stream keyed on (seed, round, trade) — so the outcome depends
// only on the multiset of arrivals, never on arrival order or on which
// rank computed it.

// Stream-id name spaces: the top two bits split the 64-bit id space so
// pairing draws, trade draws, and everything else (rng.Split consumers)
// can never collide.
const (
	cbStreamPair  = uint64(1) << 62
	cbStreamTrade = uint64(3) << 62
)

// cbPairStream keys the round's pairing permutation.
func cbPairStream(seed uint64, round int64) rng.Stream {
	return rng.NewStream(seed, cbStreamPair|uint64(round))
}

// cbTradeStream keys one trade's redistribution draws. Rounds are
// bounded far below 2^31 and trades by n < 2^31, so the packed id is
// collision-free within the name space.
func cbTradeStream(seed uint64, round int64, trade int32) rng.Stream {
	return rng.NewStream(seed, cbStreamTrade|uint64(round)<<31|uint64(uint32(trade)))
}

// cbEdge is one adjacency entry in flight through a trade: the non-anchor
// endpoint, which side of the trade the anchor is (u = perm[2t],
// v = perm[2t+1]), and the original flag.
type cbEdge struct {
	other   graph.Vertex
	anchorV bool
	orig    bool
}

// cbPermute fills perm with the round's pairing permutation: identity
// seeded, then a downward Fisher–Yates whose swaps come from the pairing
// stream at counter i — every rank computes the identical permutation
// with zero communication.
func cbPermute(perm []graph.Vertex, seed uint64, round int64) {
	st := cbPairStream(seed, round)
	for i := range perm {
		perm[i] = graph.Vertex(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := st.Uint64nAt(uint64(i), uint64(i)+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
}

// cbAssignTrades inverts the permutation into tradeOf: tradeOf[x] is the
// index of the trade vertex x joins this round, or −1 for the sat-out
// last vertex of an odd-n permutation.
func cbAssignTrades(tradeOf []int32, perm []graph.Vertex) {
	for i := range tradeOf {
		tradeOf[i] = -1
	}
	for t := 0; 2*t+1 < len(perm); t++ {
		tradeOf[perm[2*t]] = int32(t)
		tradeOf[perm[2*t+1]] = int32(t)
	}
}

// cbFirstTrade returns the earliest trade this round touching edge
// {u, w} and which endpoint anchors it there (anchorW means w does), or
// trade −1 when neither endpoint trades this round.
func cbFirstTrade(tradeOf []int32, u, w graph.Vertex) (trade int32, anchorW bool) {
	tu, tw := tradeOf[u], tradeOf[w]
	switch {
	case tu < 0:
		return tw, true
	case tw < 0 || tu <= tw:
		return tu, false
	default:
		return tw, true
	}
}

// sortCBEdges orders arrivals by non-anchor endpoint: insertion sort for
// the common small lists, slices.SortFunc beyond (generic, so no
// interface boxing or closure capture on the per-trade path).
func sortCBEdges(es []cbEdge) {
	if len(es) <= 24 {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].other < es[j-1].other; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		return
	}
	slices.SortFunc(es, func(a, b cbEdge) int { return cmp.Compare(a.other, b.other) })
}

// cbApplyTrade performs one trade on sorted per-side arrival lists
// (uList anchored at u, vList at v; the pair edge, if any, is handled by
// the caller and appears in neither). Shared neighbours keep their
// sides; the disjoint rest is pooled in ascending endpoint order — the
// canonical order that makes the outcome arrival-order-independent — and
// a partial Fisher–Yates over the trade stream selects |u-only| entries
// for u, the rest going to v. An entry that changes sides loses its
// original flag (that adjacency was modified); one that stays keeps it.
// pool and out are caller scratch, returned for reuse.
func cbApplyTrade(uList, vList, pool, out []cbEdge, st rng.Stream) (poolOut, outOut []cbEdge) {
	pool, out = pool[:0], out[:0]
	nU := 0
	i, j := 0, 0
	for i < len(uList) || j < len(vList) {
		switch {
		case j >= len(vList) || (i < len(uList) && uList[i].other < vList[j].other):
			pool = append(pool, uList[i]) // hotalloc: amortized; caller scratch persists at its high-water capacity
			nU++
			i++
		case i >= len(uList) || vList[j].other < uList[i].other:
			pool = append(pool, vList[j]) // hotalloc: amortized; caller scratch persists at its high-water capacity
			j++
		default:
			// Shared neighbour: both sides keep it, flags intact.
			out = append(out, uList[i], vList[j]) // hotalloc: amortized; caller scratch persists at its high-water capacity
			i++
			j++
		}
	}
	// Partial Fisher–Yates: the first nU slots become u's new disjoint
	// neighbours, drawn uniformly without replacement from the pool.
	var ctr uint64
	for k := 0; k < nU && k < len(pool); k++ {
		r := k + int(st.Uint64nAt(ctr, uint64(len(pool)-k)))
		ctr++
		pool[k], pool[r] = pool[r], pool[k]
	}
	for k := range pool {
		ed := pool[k]
		toV := k >= nU
		if ed.anchorV != toV {
			ed.anchorV = toV
			ed.orig = false
		}
		out = append(out, ed) // hotalloc: amortized; caller scratch persists at its high-water capacity
	}
	return pool, out
}

// cbTrade is the orchestrator-side state of one trade, stored at the
// local slot of perm[2t] (a vertex joins at most one trade per round, so
// the slot is a perfect key and the table recycles across rounds).
type cbTrade struct {
	u, v       graph.Vertex // perm[2t], perm[2t+1]
	gotU, gotV uint32
	// pairFlag records an arrived pair edge {u, v}: 0 absent, 1 original,
	// 2 modified. It counts toward both arrival totals but sits out the
	// redistribution.
	pairFlag uint8
	done     bool
	buf      []cbEdge
}

// curveball implements the randomizer seam for global curveball trades.
type curveball struct {
	e *rankEngine

	// globalDeg holds every vertex's global reduced degree — the exact
	// number of arrivals each trade side must collect. Degrees are
	// invariant under trading, so one bootstrap allreduce serves the run.
	globalDeg []uint32

	round   int64
	perm    []graph.Vertex
	tradeOf []int32
	trades  []cbTrade // indexed by local slot of the trade's u
	pending int       // owned trades not yet executed this round

	// Execution scratch, reused across trades.
	ubuf, vbuf, pool, out []cbEdge
}

// newCurveball bootstraps the curveball randomizer: one O(n)
// AllreduceUint32s establishes the global degree vector.
func newCurveball(e *rankEngine) (*curveball, error) {
	loc := make([]uint32, e.n)
	for li := range e.verts {
		u := e.verts[li]
		e.adj.Walk(li, func(v graph.Vertex, _ bool) bool {
			loc[u]++
			loc[v]++
			return true
		})
	}
	deg, err := e.c.AllreduceUint32s(loc, mpi.OpSum)
	if err != nil {
		return nil, fmt.Errorf("core: curveball degree bootstrap: %w", err)
	}
	return &curveball{
		e:         e,
		globalDeg: deg,
		perm:      make([]graph.Vertex, e.n),
		tradeOf:   make([]int32, e.n),
		trades:    make([]cbTrade, len(e.verts)),
	}, nil
}

// prepare arms one round: derive the pairing, reset owned trade state,
// drain the whole partition into the message plane, and execute any
// owned trade whose sides are both degree-zero (it will never receive a
// message).
//
//es:hotpath
func (r *curveball) prepare(s int64, counts []int64) error {
	e := r.e
	if s != 1 {
		return fmt.Errorf("core: curveball step size %d != 1 (a step is one round)", s)
	}
	_ = counts // partner selection is an edge-switch concept
	r.round++
	cbPermute(r.perm, e.seed, r.round)
	cbAssignTrades(r.tradeOf, r.perm)

	r.pending = 0
	for t := 0; 2*t+1 < len(r.perm); t++ {
		u := r.perm[2*t]
		li, mine := e.index[u]
		if !mine {
			continue
		}
		ts := &r.trades[li]
		buf := ts.buf[:0]
		*ts = cbTrade{u: u, v: r.perm[2*t+1], buf: buf}
		r.pending++
	}

	// Drain every owned adjacency and route each edge to its earliest
	// incident trade (or straight back to its owner when neither endpoint
	// trades this round).
	var rerr error
	for li := range e.verts {
		e.drainLocal(li, func(ed graph.Edge, orig bool) { // hotalloc: one closure per owned vertex per round, amortized over the drained adjacency
			if rerr != nil {
				return
			}
			t, anchorW := cbFirstTrade(r.tradeOf, ed.U, ed.V)
			if t < 0 {
				rerr = r.store(ed, orig)
				return
			}
			anchor, other := ed.U, ed.V
			if anchorW {
				anchor, other = ed.V, ed.U
			}
			rerr = r.sendTrade(t, anchor, other, orig)
		})
		if rerr != nil {
			return rerr
		}
	}

	// Trades whose both sides have degree zero get no arrivals: execute
	// them now (they trade nothing, but must retire from pending).
	for t := 0; 2*t+1 < len(r.perm); t++ {
		u := r.perm[2*t]
		li, mine := e.index[u]
		if !mine {
			continue
		}
		ts := &r.trades[li]
		if !ts.done && r.globalDeg[ts.u] == 0 && r.globalDeg[ts.v] == 0 {
			if err := r.execute(int32(t), ts); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendTrade routes one adjacency entry to the orchestrator of trade t,
// anchored at the traded endpoint.
func (r *curveball) sendTrade(t int32, anchor, other graph.Vertex, orig bool) error {
	dst := r.e.pt.Owner(r.perm[2*t])
	return r.e.send(dst, opMsg{kind: mTradeEdge, trade: t, e1: graph.Edge{U: anchor, V: other}, orig: orig})
}

// store hands a settled normalized edge to its owner.
func (r *curveball) store(ed graph.Edge, orig bool) error {
	return r.e.send(r.e.owner(ed), opMsg{kind: mStoreEdge, e1: ed, orig: orig})
}

// handle dispatches curveball payloads. The chassis dispatches through
// the randomizer interface, which ends hotalloc's static call walk, so
// the per-message entry points root their own audits.
//
//es:hotpath
func (r *curveball) handle(om opMsg, src int) error {
	switch om.kind {
	case mTradeEdge:
		return r.onTradeEdge(om.trade, om.e1.U, om.e1.V, om.orig)
	case mStoreEdge:
		return r.e.insertLocal(om.e1, om.orig)
	default:
		return fmt.Errorf("core: rank %d curveball cannot handle %v", r.e.c.Rank(), om.kind)
	}
}

// onTradeEdge collects one arrival for trade t and executes the trade
// once both sides are complete.
func (r *curveball) onTradeEdge(t int32, anchor, other graph.Vertex, orig bool) error {
	e := r.e
	if t < 0 || int(2*t+1) >= len(r.perm) {
		return fmt.Errorf("core: rank %d got edge for invalid trade %d", e.c.Rank(), t)
	}
	u := r.perm[2*t]
	li, mine := e.index[u]
	if !mine {
		return fmt.Errorf("core: rank %d got edge for foreign trade %d (u=%d)", e.c.Rank(), t, u)
	}
	ts := &r.trades[li]
	if ts.done {
		return fmt.Errorf("core: rank %d got edge for finished trade %d", e.c.Rank(), t)
	}
	v := ts.v
	switch {
	case (anchor == u && other == v) || (anchor == v && other == u):
		// The pair edge: completes one arrival on each side and sits out
		// the redistribution.
		if ts.pairFlag != 0 {
			return fmt.Errorf("core: rank %d got duplicate pair edge for trade %d", e.c.Rank(), t)
		}
		ts.pairFlag = 2
		if orig {
			ts.pairFlag = 1
		}
		ts.gotU++
		ts.gotV++
	case anchor == u:
		ts.buf = append(ts.buf, cbEdge{other: other, anchorV: false, orig: orig}) // hotalloc: amortized; trade buffers persist across rounds at their high-water capacity
		ts.gotU++
	case anchor == v:
		ts.buf = append(ts.buf, cbEdge{other: other, anchorV: true, orig: orig}) // hotalloc: amortized; trade buffers persist across rounds at their high-water capacity
		ts.gotV++
	default:
		return fmt.Errorf("core: rank %d got edge anchored at %d for trade %d of (%d, %d)", e.c.Rank(), anchor, t, u, v)
	}
	if ts.gotU == r.globalDeg[u] && ts.gotV == r.globalDeg[v] {
		return r.execute(t, ts)
	}
	return nil
}

// execute runs a complete trade and routes every result edge onward: to
// the later trade of its non-traded endpoint, or to its owner.
func (r *curveball) execute(t int32, ts *cbTrade) error {
	e := r.e
	ts.done = true
	r.pending--
	e.opsInitiated++
	e.st.started++
	e.st.committed++

	// Split arrivals by side and sort each by the non-anchor endpoint so
	// the redistribution sees a canonical, arrival-order-free input.
	r.ubuf, r.vbuf = r.ubuf[:0], r.vbuf[:0]
	for _, ed := range ts.buf {
		if ed.anchorV {
			r.vbuf = append(r.vbuf, ed) // hotalloc: amortized; execution scratch persists at its high-water capacity
		} else {
			r.ubuf = append(r.ubuf, ed) // hotalloc: amortized; execution scratch persists at its high-water capacity
		}
	}
	sortCBEdges(r.ubuf)
	sortCBEdges(r.vbuf)
	r.pool, r.out = cbApplyTrade(r.ubuf, r.vbuf, r.pool, r.out, cbTradeStream(e.seed, r.round, t))

	for _, ed := range r.out {
		anchor := ts.u
		if ed.anchorV {
			anchor = ts.v
		}
		if err := r.routeTraded(t, anchor, ed.other, ed.orig); err != nil {
			return err
		}
	}
	if ts.pairFlag != 0 {
		if err := r.store(graph.Edge{U: ts.u, V: ts.v}.Norm(), ts.pairFlag == 1); err != nil {
			return err
		}
	}
	return nil
}

// routeTraded forwards one settled adjacency entry after trade t: if the
// non-traded endpoint joins a LATER trade this round, the edge is due
// there (anchored at that endpoint); otherwise it is final for the round
// and goes to its owner.
func (r *curveball) routeTraded(t int32, anchor, other graph.Vertex, orig bool) error {
	if tx := r.tradeOf[other]; tx > t {
		return r.sendTrade(tx, other, anchor, orig)
	}
	return r.store(graph.Edge{U: anchor, V: other}.Norm(), orig)
}

// advance: curveball is fully event-driven — prepare seeds the round's
// messages and handle does the rest.
// cursor is the round counter: at a quiesced round boundary it is the
// only live protocol state (pairing and draws are recomputed from
// counter streams keyed on (seed, round)), so restoring it resumes the
// deterministic round chain exactly.
func (r *curveball) cursor() uint64 { return uint64(r.round) }

func (r *curveball) restoreCursor(c uint64) { r.round = int64(c) }

func (r *curveball) advance() (bool, error) { return false, nil }

// done: all owned trades executed. The chassis keeps draining messages
// for peers (stores and later-trade arrivals) until everyone is done.
func (r *curveball) done() bool { return r.pending == 0 }

// starved: never — every owned trade is guaranteed its exact arrival
// count by the degree invariant, so waiting always terminates.
func (r *curveball) starved() bool { return false }

// forfeitRemaining: unreachable (starved is never true), and trades are
// never forfeited.
func (r *curveball) forfeitRemaining() {}

// quiesced verifies every owned trade executed this round.
func (r *curveball) quiesced() error {
	if r.pending != 0 {
		return fmt.Errorf("core: rank %d ends round %d with %d unexecuted trades", r.e.c.Rank(), r.round, r.pending)
	}
	return nil
}

// seqCBEdge is one settled edge between rounds of the sequential
// reference: normalized, with its original flag.
type seqCBEdge struct {
	e    graph.Edge
	orig bool
}

// SequentialCurveball performs `rounds` global trade rounds on g in
// place and is the reference the distributed engine is pinned against:
// it uses the identical pairing permutation (cbPermute), edge routing
// (cbFirstTrade, then later-trade forwarding), and redistribution draws
// (cbApplyTrade over cbTradeStream), so a p = 1 distributed run with the
// same seed produces the same graph trade for trade. Ops counts executed
// trades (⌊n/2⌋ per round, matching the engine, which also counts
// empty trades).
func SequentialCurveball(g *graph.Graph, rounds int64, seed uint64) (SeqStats, error) {
	if rounds < 0 {
		return SeqStats{}, fmt.Errorf("core: negative round count %d", rounds)
	}
	n := g.N()
	m0 := g.M()
	var st SeqStats

	// Snapshot the edge list with original flags.
	cur := make([]seqCBEdge, 0, m0)
	for u := graph.Vertex(0); int(u) < n; u++ {
		g.WalkReduced(u, func(v graph.Vertex, orig bool) bool {
			cur = append(cur, seqCBEdge{e: graph.Edge{U: u, V: v}.Norm(), orig: orig})
			return true
		})
	}

	perm := make([]graph.Vertex, n)
	tradeOf := make([]int32, n)
	nt := n / 2
	trades := make([]cbTrade, nt)
	var ubuf, vbuf, pool, out []cbEdge
	next := make([]seqCBEdge, 0, len(cur))

	// arrive delivers one adjacency entry to trade t, mirroring
	// onTradeEdge: the pair edge is flagged aside, everything else joins
	// the arrival buffer on its anchor's side.
	arrive := func(t int32, anchor, other graph.Vertex, orig bool) {
		ts := &trades[t]
		switch {
		case (anchor == ts.u && other == ts.v) || (anchor == ts.v && other == ts.u):
			ts.pairFlag = 2
			if orig {
				ts.pairFlag = 1
			}
		case anchor == ts.u:
			ts.buf = append(ts.buf, cbEdge{other: other, orig: orig})
		default:
			ts.buf = append(ts.buf, cbEdge{other: other, anchorV: true, orig: orig})
		}
	}

	for round := int64(1); round <= rounds; round++ {
		cbPermute(perm, seed, round)
		cbAssignTrades(tradeOf, perm)
		for t := range trades {
			buf := trades[t].buf[:0]
			trades[t] = cbTrade{u: perm[2*t], v: perm[2*t+1], buf: buf}
		}
		next = next[:0]
		for _, se := range cur {
			t, anchorW := cbFirstTrade(tradeOf, se.e.U, se.e.V)
			if t < 0 {
				next = append(next, se)
				continue
			}
			anchor, other := se.e.U, se.e.V
			if anchorW {
				anchor, other = se.e.V, se.e.U
			}
			arrive(t, anchor, other, se.orig)
		}
		// Trades execute in index order; an executed trade forwards each
		// result to the later trade of its non-traded endpoint, exactly as
		// routeTraded does.
		for t := 0; t < nt; t++ {
			ts := &trades[t]
			ubuf, vbuf = ubuf[:0], vbuf[:0]
			for _, ed := range ts.buf {
				if ed.anchorV {
					vbuf = append(vbuf, ed)
				} else {
					ubuf = append(ubuf, ed)
				}
			}
			sortCBEdges(ubuf)
			sortCBEdges(vbuf)
			pool, out = cbApplyTrade(ubuf, vbuf, pool, out, cbTradeStream(seed, round, int32(t)))
			for _, ed := range out {
				anchor := ts.u
				if ed.anchorV {
					anchor = ts.v
				}
				if tx := tradeOf[ed.other]; tx > int32(t) {
					arrive(tx, ed.other, anchor, ed.orig)
				} else {
					next = append(next, seqCBEdge{e: graph.Edge{U: anchor, V: ed.other}.Norm(), orig: ed.orig})
				}
			}
			if ts.pairFlag != 0 {
				next = append(next, seqCBEdge{e: graph.Edge{U: ts.u, V: ts.v}.Norm(), orig: ts.pairFlag == 1})
			}
			st.Ops++
		}
		cur, next = next, cur
	}

	// Rebuild g in place from the settled list. Priorities come from a
	// seed-split RNG; they only shape treap internals, never results.
	pr := rng.Split(seed, 1)
	for _, ed := range g.Edges() {
		g.RemoveEdge(ed)
	}
	for _, se := range cur {
		ok := false
		if se.orig {
			ok = g.AddEdge(se.e, pr)
		} else {
			ok = g.AddModified(se.e, pr)
		}
		if !ok {
			return SeqStats{}, fmt.Errorf("core: sequential curveball produced duplicate edge %v", se.e)
		}
	}
	st.VisitRate = VisitRate(g.Originals(), m0)
	return st, nil
}

// SequentialCurveballVisitRate computes the round count for the target
// visit rate and runs SequentialCurveball.
func SequentialCurveballVisitRate(g *graph.Graph, x float64, seed uint64) (SeqStats, error) {
	rounds, err := CurveballRoundsForVisitRate(g.M(), x)
	if err != nil {
		return SeqStats{}, err
	}
	return SequentialCurveball(g, rounds, seed)
}
