package core

import (
	"fmt"
	"runtime"
	"sync"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// reassemble rebuilds the global switched graph from the per-rank edge
// payloads gathered at rank 0. The edge-at-a-time rebuild was a serial
// tail on large graphs (every record paid an O(log d) treap insert plus
// an O(log n) Fenwick update on one core), so it is sharded: decode
// workers parse each rank's 9-byte records in parallel and bucket them
// by U mod W, then W shard workers bulk-insert their buckets through
// graph.InsertUnindexed — safe concurrently because distinct shards
// touch disjoint vertices — and one O(n) Reindex rebuilds the degree
// index and counters.
func reassemble(n int, parts [][]byte, seed uint64) (*graph.Graph, error) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}

	// Stage 1: decode and validate each part, bucketing by shard.
	buckets := make([][][]flaggedEdge, len(parts)) // [part][shard]
	decErrs := make([]error, len(parts))
	var wg sync.WaitGroup
	for pi, pb := range parts {
		wg.Add(1)
		go func(pi int, pb []byte) {
			defer wg.Done()
			fes, err := parseEdges(pb)
			if err != nil {
				decErrs[pi] = err
				return
			}
			bk := make([][]flaggedEdge, shards)
			for _, fe := range fes {
				e := fe.e
				if e.U < 0 || e.U >= e.V || int(e.V) >= n {
					decErrs[pi] = fmt.Errorf("core: reassembly: rank %d shipped invalid edge %v", pi, e)
					return
				}
				s := int(e.U) % shards
				bk[s] = append(bk[s], fe)
			}
			buckets[pi] = bk
		}(pi, pb)
	}
	wg.Wait()
	for _, err := range decErrs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: shard workers insert concurrently. Iterating parts in
	// rank order gives each shard a fixed record order and a private
	// seed-derived priority stream, so the rebuilt structure does not
	// depend on goroutine scheduling.
	out := graph.New(n)
	insErrs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := rng.Split(seed, (1<<21)+s)
			for pi := range buckets {
				for _, fe := range buckets[pi][s] {
					if !out.InsertUnindexed(fe.e, fe.orig, r.Uint32()) {
						insErrs[s] = fmt.Errorf("core: reassembly found duplicate edge %v", fe.e)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range insErrs {
		if err != nil {
			return nil, err
		}
	}
	out.Reindex()
	return out, nil
}
