package core

import (
	"fmt"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// SwitchKind distinguishes the two replacement patterns of §4.2 (Fig. 3).
// With reduced adjacency lists every unordered pair of edges must choose
// between them with probability ½ each to keep the Markov chain the same
// as with full adjacency lists.
type SwitchKind uint8

// The two switch kinds.
const (
	// Cross replaces (u1,v1),(u2,v2) with (u1,v2),(u2,v1).
	Cross SwitchKind = iota
	// Straight replaces (u1,v1),(u2,v2) with (u1,u2),(v1,v2).
	Straight
)

func (k SwitchKind) String() string {
	if k == Cross {
		return "cross"
	}
	return "straight"
}

// replacement returns the two new (normalized) edges a switch of the
// given kind produces.
func replacement(e1, e2 graph.Edge, kind SwitchKind) (a, b graph.Edge) {
	if kind == Cross {
		return graph.Edge{U: e1.U, V: e2.V}.Norm(), graph.Edge{U: e2.U, V: e1.V}.Norm()
	}
	return graph.Edge{U: e1.U, V: e2.U}.Norm(), graph.Edge{U: e1.V, V: e2.V}.Norm()
}

// switchInvalid reports whether switching e1 and e2 (either kind) would
// be useless or create a self-loop. With all four endpoint-equality
// cases excluded, both switch kinds are valid loop-free, non-useless
// operations (§3.2 conditions collapse to this single predicate once
// e1 and e2 are themselves loop-free).
func switchInvalid(e1, e2 graph.Edge) bool {
	return e1.U == e2.U || e1.V == e2.V || e1.U == e2.V || e1.V == e2.U
}

// SeqStats reports what a sequential run did.
type SeqStats struct {
	Ops       int64   // switch operations performed
	Restarts  int64   // selections rejected (useless, loop, or parallel edge)
	VisitRate float64 // observed visit rate against the initial edge count
}

// Sequential performs t edge switch operations on g in place
// (Algorithm 1): each operation draws two uniform random edges and a
// switch kind, restarting with a fresh pair whenever the switch would be
// useless, create a loop, or create a parallel edge. The graph's degree
// sequence is invariant; g must be simple and stays simple.
func Sequential(g *graph.Graph, t int64, r *rng.RNG) (SeqStats, error) {
	if t < 0 {
		return SeqStats{}, fmt.Errorf("core: negative operation count %d", t)
	}
	if g.M() < 2 && t > 0 {
		return SeqStats{}, fmt.Errorf("core: need at least 2 edges to switch, have %d", g.M())
	}
	m0 := g.M()
	var st SeqStats
	for st.Ops < t {
		e1 := g.RandomEdge(r)
		e2 := g.RandomEdge(r)
		if switchInvalid(e1, e2) { // also covers e1 == e2
			st.Restarts++
			continue
		}
		kind := Cross
		if r.Bool() {
			kind = Straight
		}
		a, b := replacement(e1, e2, kind)
		if g.HasEdge(a) || g.HasEdge(b) {
			st.Restarts++
			continue
		}
		g.RemoveEdge(e1)
		g.RemoveEdge(e2)
		g.AddModified(a, r)
		g.AddModified(b, r)
		st.Ops++
	}
	st.VisitRate = VisitRate(g.Originals(), m0)
	return st, nil
}

// SequentialVisitRate computes t from the target visit rate and runs
// Sequential.
func SequentialVisitRate(g *graph.Graph, x float64, r *rng.RNG) (SeqStats, error) {
	t, err := OpsForVisitRate(g.M(), x)
	if err != nil {
		return SeqStats{}, err
	}
	return Sequential(g, t, r)
}
