package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
	"edgeswitch/internal/store"
)

// Step-boundary snapshots: at a boundary the engine is a closed system —
// the message plane is empty, the randomizer is quiesced (asserted by
// checkStepInvariants), and the sanitizer's degree deltas have been
// folded into the exchange — so a rank's entire resumable state is its
// partition (adjacency keys + original flags), its RNG stream position,
// the randomizer's cursor, and a handful of counters. Treap priorities
// are deliberately not captured: uniform edge selection is key-order
// based (Fenwick prefix + Kth), so priorities shape only the treap's
// internal form and a restore draws fresh ones from a dedicated stream,
// leaving the run RNG at exactly its captured position.
//
// Layout (little-endian), with a CRC32C (Castagnoli) trailer over
// everything before it:
//
//	"ESSN" | version u16 | algo u8 | storage u8 | rank u32 | size u32
//	step i64 | n u32 | nv u32 | m i64 | seed u64
//	rnd state 4×u64 | cursor u64
//	initialEdges i64 | origLocal i64
//	opsInitiated, restarts, forfeited, msgsSent 4×i64
//	tot stepStats 7×i64 | winMax i64 | window i64
//	nv × adjacency list (graph.AppendAdjSet)
//	crc32c u32
//
// The storage byte selects the adjacency section's form. 0 (inline)
// embeds the nv adjacency lists as sketched above -- the in-memory
// store's mode. 1 (external) embeds only a 12-byte identity -- segment
// size u64 + segment CRC32C u32 -- of a base-segment file hard-linked
// next to the snapshot (checkpoint.go's ckSegPath): the tiered store
// already keeps the partition encoded on disk, so the checkpoint links
// the current base instead of re-encoding O(|E_local|) bytes into the
// snapshot. Either mode restores into either store.

// snapMagic and snapVersion identify a snapshot file; a version bump
// invalidates old checkpoints loudly instead of misdecoding them.
const (
	snapMagic   = "ESSN"
	snapVersion = 1
)

// The snapshot storage modes (header byte 7).
const (
	snapStorageInline   = 0 // adjacency lists embedded in the snapshot
	snapStorageExternal = 1 // hard-linked base segment, identity embedded
)

// segIdentity names an external base segment by content: the size and
// trailer CRC32C the restore must find at the linked path.
type segIdentity struct {
	size int64
	crc  uint32
}

// snapHeaderLen is the fixed-size prefix before the adjacency encoding.
const snapHeaderLen = 208

// castagnoli is the CRC32C table shared by snapshot trailers and the
// manifest's degree-sequence checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// restorePrioSplit offsets the per-rank stream index of the restore-only
// priority RNG far away from every stream the run itself draws from
// (ranks use indices rank+2, HP-U uses 1<<20).
const restorePrioSplit = 1 << 21

// snapAlgoByte maps the algorithm to its snapshot byte.
func snapAlgoByte(a Algorithm) uint8 {
	if a == AlgoCurveball {
		return 1
	}
	return 0
}

// snapState is the decoded fixed-size portion of a snapshot.
type snapState struct {
	algo         uint8
	rank, size   int
	step         int64
	n, nv        int
	m            int64
	seed         uint64
	rnd          [4]uint64
	cursor       uint64
	initialEdges int64
	origLocal    int64
	opsInitiated int64
	restarts     int64
	forfeited    int64
	msgsSent     int64
	tot          stepStats
	winMax       int64
	window       int64
	storage      uint8
	seg          segIdentity // external mode only
}

// encodeSnapshot serializes this rank's resumable state at a quiesced
// step boundary, with the CRC32C trailer appended. Call only between
// steps (the checkpoint hook in run). A non-nil ext switches the
// adjacency section to external mode: the snapshot embeds only the
// hard-linked base segment's identity.
func (e *rankEngine) encodeSnapshot(ext *segIdentity) []byte {
	buf := make([]byte, snapHeaderLen, snapHeaderLen+16*len(e.verts))
	copy(buf[0:], snapMagic)
	le := binary.LittleEndian
	le.PutUint16(buf[4:], snapVersion)
	algo := AlgoEdgeSwitch
	if _, ok := e.rand.(*curveball); ok {
		algo = AlgoCurveball
	}
	buf[6] = snapAlgoByte(algo)
	if ext != nil {
		buf[7] = snapStorageExternal
	}
	le.PutUint32(buf[8:], uint32(e.c.Rank()))
	le.PutUint32(buf[12:], uint32(e.c.Size()))
	le.PutUint64(buf[16:], uint64(e.stepsRun))
	le.PutUint32(buf[24:], uint32(e.n))
	le.PutUint32(buf[28:], uint32(len(e.verts)))
	le.PutUint64(buf[32:], uint64(e.m))
	le.PutUint64(buf[40:], e.seed)
	st := e.rnd.State()
	for i, w := range st {
		le.PutUint64(buf[48+8*i:], w)
	}
	le.PutUint64(buf[80:], e.rand.cursor())
	le.PutUint64(buf[88:], uint64(e.initialEdges))
	le.PutUint64(buf[96:], uint64(e.origLocal))
	counters := []int64{
		e.opsInitiated, e.restarts, e.forfeited, e.msgsSent,
		e.tot.started, e.tot.committed, e.tot.aborts, e.tot.conflicts,
		e.tot.reserveFails, e.tot.flushes, int64(e.tot.inFlightHWM),
		int64(e.winMax), e.currentWindow(),
	}
	for i, v := range counters {
		le.PutUint64(buf[104+8*i:], uint64(v))
	}
	if ext != nil {
		var id [12]byte
		le.PutUint64(id[0:], uint64(ext.size))
		le.PutUint32(id[8:], ext.crc)
		buf = append(buf, id[:]...)
	} else {
		for li := range e.verts {
			buf = e.adj.AppendEncoded(buf, li)
		}
	}
	var trailer [4]byte
	le.PutUint32(trailer[:], crc32.Checksum(buf, castagnoli))
	return append(buf, trailer[:]...)
}

// currentWindow reports the adaptive controller's live window, or 0 in
// fixed-window runs — the value a restored controller restarts from.
func (e *rankEngine) currentWindow() int64 {
	if e.winCtl == nil {
		return 0
	}
	return int64(e.winCtl.Window())
}

// snapshotCRC returns the stored trailer CRC of an encoded snapshot.
func snapshotCRC(data []byte) (uint32, error) {
	if len(data) < snapHeaderLen+4 {
		return 0, fmt.Errorf("core: snapshot truncated (%d bytes)", len(data))
	}
	return binary.LittleEndian.Uint32(data[len(data)-4:]), nil
}

// decodeSnapshotHeader verifies the magic, version and CRC32C trailer
// and decodes the fixed-size state. The adjacency bytes are returned for
// loadSnapshotAdjacency.
func decodeSnapshotHeader(data []byte) (*snapState, []byte, error) {
	if len(data) < snapHeaderLen+4 {
		return nil, nil, fmt.Errorf("core: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[0:4]) != snapMagic {
		return nil, nil, fmt.Errorf("core: snapshot has bad magic %q", data[0:4])
	}
	le := binary.LittleEndian
	body, trailer := data[:len(data)-4], le.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != trailer {
		return nil, nil, fmt.Errorf("core: snapshot CRC mismatch: file carries %08x, contents hash to %08x — the checkpoint file is corrupted; delete it (or the whole step's checkpoint) and restore an earlier step", trailer, got)
	}
	if v := le.Uint16(data[4:]); v != snapVersion {
		return nil, nil, fmt.Errorf("core: snapshot version %d, this binary reads %d", v, snapVersion)
	}
	s := &snapState{
		algo:    data[6],
		storage: data[7],
		rank:    int(le.Uint32(data[8:])),
		size:    int(le.Uint32(data[12:])),
		step:    int64(le.Uint64(data[16:])),
		n:       int(le.Uint32(data[24:])),
		nv:      int(le.Uint32(data[28:])),
		m:       int64(le.Uint64(data[32:])),
		seed:    le.Uint64(data[40:]),
		cursor:  le.Uint64(data[80:]),
	}
	for i := range s.rnd {
		s.rnd[i] = le.Uint64(data[48+8*i:])
	}
	counters := make([]int64, 13)
	for i := range counters {
		counters[i] = int64(le.Uint64(data[104+8*i:]))
	}
	s.initialEdges = int64(le.Uint64(data[88:]))
	s.origLocal = int64(le.Uint64(data[96:]))
	s.opsInitiated, s.restarts, s.forfeited, s.msgsSent = counters[0], counters[1], counters[2], counters[3]
	s.tot = stepStats{
		started: counters[4], committed: counters[5], aborts: counters[6],
		conflicts: counters[7], reserveFails: counters[8], flushes: counters[9],
		inFlightHWM: int(counters[10]),
	}
	s.winMax, s.window = counters[11], counters[12]
	adj := body[snapHeaderLen:]
	switch s.storage {
	case snapStorageInline:
	case snapStorageExternal:
		if len(adj) != 12 {
			return nil, nil, fmt.Errorf("core: external snapshot carries %d adjacency bytes, want the 12-byte segment identity", len(adj))
		}
		s.seg = segIdentity{size: int64(le.Uint64(adj[0:])), crc: le.Uint32(adj[8:])}
	default:
		return nil, nil, fmt.Errorf("core: snapshot has unknown storage mode %d", s.storage)
	}
	return s, adj, nil
}

// loadSnapshotAdjacency rebuilds the engine's local storage from the
// snapshot's adjacency bytes: each slot's keys and original flags are
// decoded and bulk-built (graph.AdjSet.BuildSortedFlagged), with fresh
// treap priorities drawn from a restore-only stream so the run RNG stays
// at its captured position. The Fenwick tree is rebuilt from the counts.
func (e *rankEngine) loadSnapshotAdjacency(adjData []byte) error {
	prioRnd := rng.Split(e.seed, restorePrioSplit+e.c.Rank())
	counts := make([]int64, len(e.verts))
	var keys []graph.Vertex
	var origs []bool
	var prios []uint32
	var err error
	for li := range e.verts {
		keys, origs, adjData, err = graph.DecodeAdjSet(adjData, e.verts[li], keys[:0], origs[:0])
		if err != nil {
			return err
		}
		prios = prios[:0]
		for range keys {
			prios = append(prios, prioRnd.Uint32())
		}
		e.adj.BuildSortedFlagged(li, keys, prios, origs)
		counts[li] = int64(len(keys))
	}
	if len(adjData) != 0 {
		return fmt.Errorf("core: snapshot carries %d trailing adjacency bytes", len(adjData))
	}
	e.deg = graph.NewFenwickFrom(counts)
	return nil
}

// loadSnapshotSegment rebuilds the engine's local storage from an
// external snapshot's hard-linked base segment. A tiered store adopts
// the file directly (hard link or copy into its spill directory, full
// CRC verification — no decode, no re-encode); an in-memory store
// decodes every list out of the mapping and bulk-builds its treaps with
// priorities from the restore-only stream, exactly like the inline
// path. Either way the Fenwick tree is rebuilt from the store's counts.
func (e *rankEngine) loadSnapshotSegment(path string, id segIdentity) error {
	if ts, ok := e.adj.(*store.Tiered); ok {
		if err := ts.AdoptSegment(path, id.crc, id.size); err != nil {
			return err
		}
	} else {
		seg, err := store.OpenSegment(path)
		if err != nil {
			return err
		}
		defer seg.Close()
		if seg.CRC() != id.crc || seg.Size() != id.size {
			return fmt.Errorf("core: linked segment %s is (crc %08x, %d bytes), snapshot says (crc %08x, %d bytes)",
				path, seg.CRC(), seg.Size(), id.crc, id.size)
		}
		if seg.NV() != len(e.verts) {
			return fmt.Errorf("core: linked segment %s holds %d slots, partition owns %d", path, seg.NV(), len(e.verts))
		}
		prioRnd := rng.Split(e.seed, restorePrioSplit+e.c.Rank())
		var keys []graph.Vertex
		var origs []bool
		var prios []uint32
		for li := range e.verts {
			keys, origs, _, err = graph.DecodeAdjSet(seg.List(li), e.verts[li], keys[:0], origs[:0])
			if err != nil {
				return err
			}
			prios = prios[:0]
			for range keys {
				prios = append(prios, prioRnd.Uint32())
			}
			e.adj.BuildSortedFlagged(li, keys, prios, origs)
		}
	}
	counts := make([]int64, len(e.verts))
	for li := range counts {
		counts[li] = int64(e.adj.Len(li))
	}
	e.deg = graph.NewFenwickFrom(counts)
	return nil
}

// validateSnapshot cross-checks the decoded header against this rank's
// world and run identity; any mismatch means the checkpoint belongs to a
// different run and must not be resumed.
func (e *rankEngine) validateSnapshot(s *snapState, algo Algorithm) error {
	switch {
	case s.rank != e.c.Rank() || s.size != e.c.Size():
		return fmt.Errorf("core: snapshot is for rank %d of %d, this is rank %d of %d", s.rank, s.size, e.c.Rank(), e.c.Size())
	case s.n != e.n:
		return fmt.Errorf("core: snapshot has %d vertices, this run has %d", s.n, e.n)
	case s.nv != len(e.verts):
		return fmt.Errorf("core: snapshot holds %d local vertices, this partition owns %d", s.nv, len(e.verts))
	case s.seed != e.seed:
		return fmt.Errorf("core: snapshot was taken under seed %d, this run uses %d", s.seed, e.seed)
	case s.algo != snapAlgoByte(algo):
		return fmt.Errorf("core: snapshot algorithm byte %d does not match configured algorithm %q", s.algo, algo)
	}
	return nil
}
