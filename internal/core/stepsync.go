package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"edgeswitch/internal/graph"
)

// The fused step-boundary exchange: every step boundary needs the
// per-rank edge counts (to rebuild the partner-selection prefix sums),
// the global count of edges still flagged original (for the exact visit
// rate that drives Config.TargetVisitRate and Result.VisitRate), and —
// in sanitized runs — a degree-conservation check. Those used to be
// separate collectives, the last a full O(n) degree-vector allreduce
// that dominated checked runs on large vertex sets. They are now one
// allgather whose payload carries the edge count, the local originals
// count, and a sparse delta vector: only the vertices whose local degree
// changed since the previous exchange, O(ops) entries instead of O(n). A
// valid randomization move relocates degree between ranks but never
// creates or destroys it — edge switches move two endpoints, curveball
// trades reassign whole adjacency entries between the paired vertices —
// so the deltas must cancel exactly when summed across ranks. This is
// what makes the check algorithm-agnostic: it asserts conservation of
// the degree sequence, not any particular mutation shape, and every
// randomizer feeds it through the same takeLocal/insertLocal/drainLocal
// accounting.
//
// Payload layout:
// edges int64 | originals int64 | k uint32 | k × (vertex uint32, delta int32).
// Deltas are sorted by vertex so the payload is deterministic.

// noteDegree accumulates a local degree change of d on both endpoints
// for the sparse sanitizer delta; a no-op in unchecked runs.
func (e *rankEngine) noteDegree(ed graph.Edge, d int32) {
	if !e.sanitize {
		return
	}
	e.degDelta[ed.U] += d
	e.degDelta[ed.V] += d
}

// stepExchange is the single collective a step boundary costs. It
// returns the per-rank edge counts for the randomizer's prepare and the
// global number of edges still flagged original. In sanitized runs it
// also runs the local structural scan and verifies that the gathered
// degree deltas cancel; any violation is reported with the same
// actionable formatting as the full sanitizer. Deltas for the final
// step are covered by verifyBaseline at the end of the run.
//
// Unchecked runs take an allocation-free fast path: noteDegree never
// populated e.degDelta, so every payload is the bare 20-byte header and
// the drift accounting (a map plus a decoded delta vector per rank,
// every boundary) would be pure overhead. The encode/decode helpers of
// that path are hot-path roots, so hotalloc keeps it clean.
func (e *rankEngine) stepExchange() ([]int64, int64, error) {
	if e.sanitize {
		return e.stepExchangeChecked()
	}
	parts, err := e.c.Allgather(e.encodeStepFast())
	if err != nil {
		return nil, 0, err
	}
	if cap(e.stepCounts) < len(parts) {
		e.stepCounts = make([]int64, len(parts))
	}
	counts := e.stepCounts[:len(parts)]
	var total, origs int64
	for rank, pb := range parts {
		cnt, org, err := decodeStepCounts(pb)
		if err != nil {
			return nil, 0, fmt.Errorf("core: rank %d step exchange: bad payload from rank %d: %w", e.c.Rank(), rank, err)
		}
		counts[rank] = cnt
		total += cnt
		origs += org
	}
	if total != e.m {
		return nil, 0, fmt.Errorf("core: edge count drifted: %d != %d", total, e.m)
	}
	return counts, origs, nil
}

// stepExchangeChecked is the sanitized boundary exchange: payloads carry
// the sparse degree deltas and the ranks verify they cancel exactly.
func (e *rankEngine) stepExchangeChecked() ([]int64, int64, error) {
	// The deltas describe only the steps since the previous boundary;
	// once encoded and gathered they are consumed, violation or not — a
	// caller retrying after an error must not double-count them.
	defer clear(e.degDelta)
	parts, err := e.c.Allgather(e.encodeStepDeltas())
	if err != nil {
		return nil, 0, err
	}
	vg := violations{list: e.sanitizeLocal()}
	counts := make([]int64, len(parts))
	var total, origs int64
	drift := make(map[graph.Vertex]int64)
	for rank, pb := range parts {
		cnt, org, deltas, err := decodeStepLocal(pb)
		if err != nil {
			return nil, 0, fmt.Errorf("core: rank %d step exchange: bad payload from rank %d: %w", e.c.Rank(), rank, err)
		}
		counts[rank] = cnt
		total += cnt
		origs += org
		for _, d := range deltas {
			drift[d.v] += int64(d.d)
		}
	}
	if total != e.m {
		vg.addf(VEdgeCount, "edge count %d != invariant %d: a switch lost or invented an edge", total, e.m)
	}
	if len(drift) > 0 {
		vs := make([]graph.Vertex, 0, len(drift))
		for v, d := range drift {
			if d != 0 {
				vs = append(vs, v)
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			vg.addf(VDegreeDrift, "degree of vertex %d drifted by %+d across ranks: edge switching must preserve the degree sequence exactly", v, drift[v])
		}
	}
	if len(vg.list) > 0 {
		return nil, 0, fmt.Errorf("core: rank %d invariant sanitizer: %s", e.c.Rank(), summarize(vg.list))
	}
	return counts, origs, nil
}

// encodeStepFast writes the unchecked exchange payload — edge count,
// originals count, zero deltas — into the engine's reused buffer.
//
//es:hotpath encodeStepFast runs at every step boundary of unchecked runs.
func (e *rankEngine) encodeStepFast() []byte {
	buf := e.stepBuf[:20]
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.deg.Total()))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.origLocal))
	binary.LittleEndian.PutUint32(buf[16:], 0)
	return buf
}

// decodeStepCounts reads the edge and originals counts of one payload
// without materializing its delta vector (the unchecked fast path; in
// those runs k is always 0, but the length is validated regardless).
//
//es:hotpath decodeStepCounts runs p times per boundary of unchecked runs.
func decodeStepCounts(pb []byte) (int64, int64, error) {
	if len(pb) < 20 {
		return 0, 0, fmt.Errorf("truncated step payload (%d bytes)", len(pb))
	}
	cnt := int64(binary.LittleEndian.Uint64(pb[0:]))
	origs := int64(binary.LittleEndian.Uint64(pb[8:]))
	k := int(binary.LittleEndian.Uint32(pb[16:]))
	if len(pb) != 20+8*k {
		return 0, 0, fmt.Errorf("step payload length %d does not match %d deltas", len(pb), k)
	}
	return cnt, origs, nil
}

// encodeStepDeltas serializes a sanitized rank's contribution to the
// exchange: its edge count, its originals count, and every accumulated
// nonzero degree delta.
func (e *rankEngine) encodeStepDeltas() []byte {
	touched := make([]graph.Vertex, 0, len(e.degDelta))
	for v, d := range e.degDelta {
		if d != 0 {
			touched = append(touched, v)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	buf := make([]byte, 20+8*len(touched))
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.deg.Total()))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.origLocal))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(touched)))
	off := 20
	for _, v := range touched {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.degDelta[v]))
		off += 8
	}
	return buf
}

// vertexDelta is one decoded sparse degree delta.
type vertexDelta struct {
	v graph.Vertex
	d int32
}

func decodeStepLocal(pb []byte) (int64, int64, []vertexDelta, error) {
	if len(pb) < 20 {
		return 0, 0, nil, fmt.Errorf("truncated step payload (%d bytes)", len(pb))
	}
	cnt := int64(binary.LittleEndian.Uint64(pb[0:]))
	origs := int64(binary.LittleEndian.Uint64(pb[8:]))
	k := int(binary.LittleEndian.Uint32(pb[16:]))
	if len(pb) != 20+8*k {
		return 0, 0, nil, fmt.Errorf("step payload length %d does not match %d deltas", len(pb), k)
	}
	if k == 0 {
		return cnt, origs, nil, nil
	}
	deltas := make([]vertexDelta, k)
	for i := range deltas {
		off := 20 + 8*i
		deltas[i] = vertexDelta{
			v: graph.Vertex(binary.LittleEndian.Uint32(pb[off:])),
			d: int32(binary.LittleEndian.Uint32(pb[off+4:])),
		}
	}
	return cnt, origs, deltas, nil
}
