package core

import (
	"math"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

func degreeMultiset(g *graph.Graph) map[int]int {
	out := map[int]int{}
	for _, d := range g.Degrees() {
		out[d]++
	}
	return out
}

func sameDegrees(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestReplacement(t *testing.T) {
	e1 := graph.Edge{U: 1, V: 5}
	e2 := graph.Edge{U: 3, V: 8}
	a, b := replacement(e1, e2, Cross)
	if a != (graph.Edge{U: 1, V: 8}) || b != (graph.Edge{U: 3, V: 5}) {
		t.Fatalf("cross: %v %v", a, b)
	}
	a, b = replacement(e1, e2, Straight)
	if a != (graph.Edge{U: 1, V: 3}) || b != (graph.Edge{U: 5, V: 8}) {
		t.Fatalf("straight: %v %v", a, b)
	}
	// Normalization when endpoints come out reversed.
	a, _ = replacement(graph.Edge{U: 7, V: 9}, graph.Edge{U: 1, V: 2}, Cross)
	if a.U > a.V {
		t.Fatalf("replacement not normalized: %v", a)
	}
}

func TestSwitchInvalid(t *testing.T) {
	cases := []struct {
		e1, e2 graph.Edge
		want   bool
	}{
		{graph.Edge{U: 1, V: 2}, graph.Edge{U: 3, V: 4}, false},
		{graph.Edge{U: 1, V: 2}, graph.Edge{U: 1, V: 4}, true}, // shared U
		{graph.Edge{U: 1, V: 2}, graph.Edge{U: 3, V: 2}, true}, // shared V
		{graph.Edge{U: 1, V: 2}, graph.Edge{U: 2, V: 4}, true}, // e1.V == e2.U
		{graph.Edge{U: 3, V: 4}, graph.Edge{U: 1, V: 3}, true}, // e1.U == e2.V
		{graph.Edge{U: 1, V: 2}, graph.Edge{U: 1, V: 2}, true}, // same edge
	}
	for _, c := range cases {
		if got := switchInvalid(c.e1, c.e2); got != c.want {
			t.Fatalf("switchInvalid(%v,%v) = %v, want %v", c.e1, c.e2, got, c.want)
		}
	}
}

func TestSequentialPreservesInvariants(t *testing.T) {
	r := rng.New(1)
	g, err := gen.ErdosRenyi(r, 2000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	before := degreeMultiset(g)
	st, err := Sequential(g, 5000, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 5000 {
		t.Fatalf("ops = %d", st.Ops)
	}
	if g.M() != 10000 {
		t.Fatalf("edge count changed: %d", g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if !sameDegrees(before, degreeMultiset(g)) {
		t.Fatal("degree multiset changed")
	}
}

// TestSequentialDegreePreservationProperty drives many small random runs.
func TestSequentialDegreePreservationProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		r := rng.New(uint64(1000 + trial))
		n := 20 + r.Intn(80)
		m := int64(n) + r.Int64n(int64(n)*2)
		g, err := gen.ErdosRenyi(r, n, m)
		if err != nil {
			t.Fatal(err)
		}
		before := degreeMultiset(g)
		if _, err := Sequential(g, 50+r.Int64n(200), r); err != nil {
			t.Fatal(err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sameDegrees(before, degreeMultiset(g)) {
			t.Fatalf("trial %d: degrees changed", trial)
		}
	}
}

func TestSequentialZeroOps(t *testing.T) {
	r := rng.New(2)
	g, _ := gen.ErdosRenyi(r, 100, 300)
	st, err := Sequential(g, 0, r)
	if err != nil || st.Ops != 0 || st.VisitRate != 0 {
		t.Fatalf("zero ops: %+v err %v", st, err)
	}
}

func TestSequentialErrors(t *testing.T) {
	r := rng.New(3)
	g, _ := gen.ErdosRenyi(r, 10, 1)
	if _, err := Sequential(g, 5, r); err == nil {
		t.Fatal("single-edge graph accepted")
	}
	g2, _ := gen.ErdosRenyi(r, 10, 20)
	if _, err := Sequential(g2, -1, r); err == nil {
		t.Fatal("negative t accepted")
	}
}

// TestSequentialVisitRateAccuracy is the Table 1 / Fig. 2 experiment in
// miniature: the observed visit rate must track the desired rate closely.
func TestSequentialVisitRateAccuracy(t *testing.T) {
	for _, x := range []float64{0.2, 0.5, 0.8, 1.0} {
		r := rng.New(uint64(100 * (1 + int(10*x))))
		g, err := gen.ErdosRenyi(r, 3000, 30000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := SequentialVisitRate(g, x, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.VisitRate-x) > 0.02 {
			t.Fatalf("x=%v: observed %v", x, st.VisitRate)
		}
	}
}

// TestSequentialMixes checks the chain actually moves: after enough
// switches, the edge set differs substantially from the start.
func TestSequentialMixes(t *testing.T) {
	r := rng.New(7)
	g, err := gen.ErdosRenyi(r, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	orig := map[graph.Edge]bool{}
	for _, e := range g.Edges() {
		orig[e] = true
	}
	if _, err := Sequential(g, 20000, r); err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, e := range g.Edges() {
		if orig[e] {
			same++
		}
	}
	if same > 1000 {
		t.Fatalf("%d/5000 edges unchanged after heavy switching", same)
	}
}

// TestSequentialUselessAndRestartCounting: on a graph where most pairs
// collide (a star), restarts must be recorded.
func TestSequentialRestartsCounted(t *testing.T) {
	r := rng.New(8)
	// Star plus one far edge: nearly every pair shares the hub.
	edges := []graph.Edge{}
	for v := 1; v <= 20; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(v)})
	}
	edges = append(edges, graph.Edge{U: 21, V: 22})
	g, err := graph.FromEdges(23, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Sequential(g, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restarts == 0 {
		t.Fatal("expected restarts on star graph")
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequential(b *testing.B) {
	r := rng.New(9)
	g, err := gen.ErdosRenyi(r, 50000, 500000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sequential(g, 100000, r); err != nil {
			b.Fatal(err)
		}
	}
}
