package core

import (
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/rng"
)

// bipartiteGraph builds a random bipartite graph with leftSize+rightSize
// vertices and m cross edges.
func bipartiteGraph(t *testing.T, leftSize, rightSize int, m int64, seed uint64) *graph.Graph {
	t.Helper()
	r := rng.New(seed)
	g := graph.New(leftSize + rightSize)
	for g.M() < m {
		u := graph.Vertex(r.Intn(leftSize))
		v := graph.Vertex(leftSize + r.Intn(rightSize))
		g.AddEdge(graph.Edge{U: u, V: v}, r)
	}
	return g
}

func TestSequentialBipartitePreservesEverything(t *testing.T) {
	const leftSize = 120
	g := bipartiteGraph(t, leftSize, 200, 900, 1)
	before := degreeMultiset(g)
	r := rng.New(2)
	st, err := SequentialBipartite(g, leftSize, 2000, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 2000 {
		t.Fatalf("ops %d", st.Ops)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if !sameDegrees(before, degreeMultiset(g)) {
		t.Fatal("degree multiset changed")
	}
	// Bipartition must survive: every edge crosses.
	for _, e := range g.Edges() {
		if (int(e.U) < leftSize) == (int(e.V) < leftSize) {
			t.Fatalf("edge %v violates bipartition", e)
		}
	}
	if st.VisitRate < 0.5 {
		t.Fatalf("visit rate %v suspiciously low", st.VisitRate)
	}
}

func TestSequentialBipartiteMixes(t *testing.T) {
	const leftSize = 80
	g := bipartiteGraph(t, leftSize, 80, 600, 3)
	orig := map[graph.Edge]bool{}
	for _, e := range g.Edges() {
		orig[e] = true
	}
	if _, err := SequentialBipartite(g, leftSize, 4000, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, e := range g.Edges() {
		if orig[e] {
			same++
		}
	}
	if float64(same) > 0.25*float64(g.M()) {
		t.Fatalf("%d/%d edges unchanged", same, g.M())
	}
}

func TestSequentialBipartiteValidation(t *testing.T) {
	r := rng.New(5)
	// Non-bipartite edge (both on the left).
	g := graph.New(4)
	g.AddEdge(graph.Edge{U: 0, V: 1}, r)
	if _, err := SequentialBipartite(g, 2, 10, r); err == nil {
		t.Fatal("same-side edge accepted")
	}
	g2 := bipartiteGraph(t, 5, 5, 10, 6)
	if _, err := SequentialBipartite(g2, 0, 10, r); err == nil {
		t.Fatal("leftSize 0 accepted")
	}
	if _, err := SequentialBipartite(g2, 10, 10, r); err == nil {
		t.Fatal("leftSize n accepted")
	}
	if _, err := SequentialBipartite(g2, 5, -1, r); err == nil {
		t.Fatal("negative t accepted")
	}
}

func TestSequentialJointDegreePreservesJDD(t *testing.T) {
	r := rng.New(7)
	// A graph with plenty of repeated degrees so the chain can move.
	g, err := gen.ErdosRenyi(r, 500, 2500)
	if err != nil {
		t.Fatal(err)
	}
	before := JointDegreeDistribution(g)
	beforeDeg := degreeMultiset(g)
	st, err := SequentialJointDegree(g, 1000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 1000 {
		t.Fatalf("ops %d", st.Ops)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if !sameDegrees(beforeDeg, degreeMultiset(g)) {
		t.Fatal("degree multiset changed")
	}
	after := JointDegreeDistribution(g)
	if len(after) != len(before) {
		t.Fatalf("JDD support changed: %d vs %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("JDD[%v] changed: %d -> %d", k, v, after[k])
		}
	}
}

func TestSequentialJointDegreeActuallyMoves(t *testing.T) {
	r := rng.New(9)
	g, err := gen.ErdosRenyi(r, 300, 1800)
	if err != nil {
		t.Fatal(err)
	}
	orig := map[graph.Edge]bool{}
	for _, e := range g.Edges() {
		orig[e] = true
	}
	if _, err := SequentialJointDegree(g, 1500, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, e := range g.Edges() {
		if orig[e] {
			same++
		}
	}
	if same == int(g.M()) {
		t.Fatal("chain never moved")
	}
}

func TestSequentialJointDegreeBudget(t *testing.T) {
	r := rng.New(11)
	// A star has no valid JDD-preserving switch (all pairs share the
	// hub); the budget must fire instead of spinning forever.
	var edges []graph.Edge
	for v := 1; v <= 10; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(v)})
	}
	g, err := graph.FromEdges(11, edges, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SequentialJointDegree(g, 5, r); err == nil {
		t.Fatal("expected budget exhaustion on a star")
	}
}

func TestJointDegreeDistribution(t *testing.T) {
	r := rng.New(12)
	// Path 0-1-2: degrees 1,2,1; edges (0,1) and (1,2) both (1,2) pairs.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, r)
	if err != nil {
		t.Fatal(err)
	}
	jdd := JointDegreeDistribution(g)
	if len(jdd) != 1 || jdd[[2]int{1, 2}] != 2 {
		t.Fatalf("jdd = %v", jdd)
	}
}
