package core

import (
	"fmt"
	"io"
	"os"
	"sort"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/randvar"
	"edgeswitch/internal/rng"
	"edgeswitch/internal/tune/window"
)

// rankEngine is one rank's private world: its partition of the graph
// (reduced adjacency lists of the vertices it owns), the in-flight
// operation state, and the bookkeeping sets the protocol needs. Ranks
// never touch each other's engines; everything flows through c.
type rankEngine struct {
	c   *mpi.Comm
	pt  partition.Partitioner
	rnd *rng.RNG

	n int   // global vertex count
	m int64 // global edge count (invariant)

	// Local storage: verts lists owned vertices ascending; index maps a
	// global vertex id to its slot; adj[slot] holds the reduced
	// adjacency (global neighbour ids, each > the owner vertex); deg is
	// the Fenwick tree over reduced degrees for O(log) uniform edge
	// selection.
	verts []graph.Vertex
	index map[graph.Vertex]int32
	adj   []graph.AdjSet
	deg   *graph.Fenwick

	// arena recycles treap nodes across all local AdjSets: every switch
	// is a delete+insert pair, so steady state allocates no nodes.
	arena graph.NodeArena

	initialEdges int64

	// selfQ buffers messages this rank addressed to itself (local
	// switches and locally-owned replacement edges). Bypassing the
	// mailbox for them keeps per-pair FIFO (it is its own pair) and
	// removes all locking from the p=1 and mostly-local fast paths.
	// selfQSpare is the drained previous buffer, swapped back in on the
	// next drain so the two alternate instead of reallocating.
	selfQ      []opMsg
	selfQSpare []opMsg

	// recvBuf is the reused RecvAllInto batch slice for the drain loop.
	recvBuf []mpi.Message

	// inHand holds edges provisionally removed by an in-flight operation
	// this rank initiated (its e1) or is partnering (its e2); the value
	// preserves the original flag for reinsertion on abort. potential
	// holds replacement edges reserved at this rank (§4.5 issue 1).
	inHand    map[graph.Edge]bool
	potential map[graph.Edge]opID

	// cumEdges is the step-start prefix-sum of per-rank edge counts used
	// to draw the partner rank with probability |E_j|/|E|; qBuf is the
	// matching multinomial weight scratch. Both are sized once and
	// rewritten at every step boundary.
	cumEdges []int64
	qBuf     []float64

	// Initiator-side state: own operations in flight, keyed by id with
	// the taken first edge as value. Up to opWindow operations are
	// pipelined concurrently (see opWindowSize): a window keeps the rank
	// busy between replies, and — the message plane's point — gives each
	// flush several records per destination instead of one. Semantically
	// a window is no different from the concurrency already present
	// across ranks: an in-flight e1 is out of the partition, so peers
	// treat it exactly like another rank's in-hand edge.
	myOps     map[opID]graph.Edge
	seq       uint64
	remaining int64 // ops still to complete this step
	sentEOS   bool
	eosOthers int

	// curRestarts counts consecutive aborts across own operations. The
	// partner-selection probabilities are stale within a step (they are
	// refreshed only at step boundaries, §4.5), so on degenerate tiny
	// graphs every candidate partner can be empty; past restartExplore
	// the partner is drawn uniformly instead, and past restartForfeit one
	// operation is abandoned. Realistic partitions never approach either
	// threshold.
	curRestarts int64

	// Stall detection (see mStalled in messages.go): myStalled is this
	// rank's announced state; stalled/stalledCount track peers that have
	// quota left but empty partitions.
	myStalled    bool
	stalled      []bool
	stalledCount int

	// Partner-side state: operations this rank is orchestrating. poFree
	// recycles finished partnerOp records (one is retired per reply
	// conversation, so the freelist stays at the in-flight high-water
	// mark).
	partnerOps map[opID]*partnerOp
	poFree     []*partnerOp

	// sb is the batching message plane (see sendbuf.go): outbound
	// protocol messages coalesce per destination and flush whenever the
	// step loop is about to block. noBatch (Config.DisableBatching)
	// flushes after every message instead, for benchmarks quantifying
	// the coalescing win.
	sb      sendBuffer
	noBatch bool

	// Invariant sanitizer (Config.CheckInvariants): when sanitize is set,
	// baseDeg records the global degree sequence at load time, degDelta
	// accumulates local degree changes between step boundaries for the
	// sparse conservation check fused into stepExchange, and the full
	// state is re-verified against baseDeg at the end of the run (see
	// sanitize.go and stepsync.go).
	sanitize bool
	baseDeg  []int64
	degDelta map[graph.Vertex]int32

	// st accumulates this step's protocol signals; at each step boundary
	// it is folded into tot and (in adaptive runs) fed to winCtl, then
	// reset. curRestarts above is the only restart counter that survives
	// inside a step — it drives the explore/forfeit escalation, while st
	// carries the per-step aggregate the controller consumes.
	st  stepStats
	tot stepStats

	// Adaptive pipelining window (Config.AdaptiveWindow): winCtl holds
	// the AIMD controller fed by st at every step boundary; nil in
	// fixed-window runs. winMax records the largest window opWindowSize
	// ever granted — exactly 1 at p=1, where the engine must realize the
	// sequential chain (asserted by TestSequentialEquivalence).
	winCtl *window.Controller
	winMax int

	// Statistics.
	opsInitiated int64
	restarts     int64
	forfeited    int64
	msgsSent     int64
}

// stepStats aggregates one step's protocol signals — the per-rank
// feedback the adaptive window controller consumes (window.Signals) and
// the run totals Result reports. All counters reset at step boundaries.
type stepStats struct {
	started      int64 // own operations begun (each restart begins anew)
	committed    int64 // own operations completed
	aborts       int64 // own operations aborted and restarted
	conflicts    int64 // owner-side transient (window-induced) conflicts
	reserveFails int64 // failed reservations seen while orchestrating
	flushes      int64 // message-plane flushes forced by blocking
	inFlightHWM  int   // high-water mark of in-flight own operations
}

// add folds one step's counters into a running total (inFlightHWM takes
// the max — it is a level, not a flow).
func (t *stepStats) add(s stepStats) {
	t.started += s.started
	t.committed += s.committed
	t.aborts += s.aborts
	t.conflicts += s.conflicts
	t.reserveFails += s.reserveFails
	t.flushes += s.flushes
	if s.inFlightHWM > t.inFlightHWM {
		t.inFlightHWM = s.inFlightHWM
	}
}

// Partner-op phases.
const (
	phaseReserving = iota
	phaseCommitting
	phaseReleasing
)

// Restart-escalation thresholds (see rankEngine.curRestarts).
const (
	restartExplore = 256
	restartForfeit = 20000
)

// opWindow caps the number of own operations a rank pipelines.
const opWindow = 64

// opWindowSize bounds the in-flight window by the local partition: a rank
// never holds more than a fraction of its current edges in flight, so tiny
// partitions degrade to the unpipelined protocol instead of emptying
// themselves into inHand (which would inflate conflicts and stalls).
// A single rank runs unpipelined: there is no transport to batch for,
// and a window would draw first edges without replacement, departing
// from the sequential chain that p=1 must realize exactly.
//
// Fixed mode uses 64 ∧ |E_local|/8; adaptive mode (Config.AdaptiveWindow)
// asks the AIMD controller, clamped live to |E_local|/4 — the controller
// only observes the partition at step boundaries, but the partition can
// shrink mid-step.
func (e *rankEngine) opWindowSize() int {
	if e.c.Size() == 1 {
		if e.winMax < 1 {
			e.winMax = 1
		}
		return 1
	}
	var w int
	if e.winCtl != nil {
		w = e.winCtl.Window()
		if lim := int(e.deg.Total() / 4); lim >= 1 && w > lim {
			w = lim
		}
		if w < 1 {
			w = 1
		}
	} else {
		w = int(e.deg.Total() / 8)
		if w < 1 {
			w = 1
		}
		if w > opWindow {
			w = opWindow
		}
	}
	if w > e.winMax {
		e.winMax = w
	}
	return w
}

// partnerOp is the partner's view of an operation it orchestrates.
type partnerOp struct {
	id        opID
	initiator int
	e2        graph.Edge
	edges     [2]graph.Edge // replacement edges A, B
	owners    [2]int
	resolved  [2]bool
	okay      [2]bool
	phase     int
	acksLeft  int
}

// newRankEngine loads a rank's partition and prepares its state. Only
// cfg.Seed, cfg.CheckInvariants, cfg.DisableBatching and the window
// fields are consulted; the communicator decides everything else. With
// CheckInvariants set, every step boundary of the run re-verifies the
// engine invariants (see sanitize.go and stepsync.go).
func newRankEngine(c *mpi.Comm, pt partition.Partitioner, n int, m int64, edges []flaggedEdge, cfg Config) (*rankEngine, error) {
	e := newEmptyRankEngine(c, pt, n, cfg)
	for _, fe := range edges {
		li, ok := e.index[fe.e.U]
		if !ok {
			return nil, fmt.Errorf("core: rank %d handed foreign edge %v", c.Rank(), fe.e)
		}
		if !e.adj[li].InsertArena(&e.arena, fe.e.V, fe.orig, e.rnd.Uint32()) {
			return nil, fmt.Errorf("core: rank %d handed duplicate edge %v", c.Rank(), fe.e)
		}
		e.deg.Add(int(li), 1)
	}
	e.finishLoad(m, cfg)
	return e, nil
}

// newEmptyRankEngine prepares a rank's state with an empty partition;
// callers insert this rank's edges (a handed []flaggedEdge, or the
// distributed-generation scan) and then finishLoad.
func newEmptyRankEngine(c *mpi.Comm, pt partition.Partitioner, n int, cfg Config) *rankEngine {
	e := &rankEngine{
		c:          c,
		pt:         pt,
		rnd:        rng.Split(cfg.Seed, c.Rank()+2),
		n:          n,
		verts:      partition.LocalVertices(pt, n, c.Rank()),
		inHand:     make(map[graph.Edge]bool),
		potential:  make(map[graph.Edge]opID),
		myOps:      make(map[opID]graph.Edge),
		partnerOps: make(map[opID]*partnerOp),
		sanitize:   cfg.CheckInvariants,
		noBatch:    cfg.DisableBatching,
	}
	e.sb.init(c)
	if e.sanitize {
		e.degDelta = make(map[graph.Vertex]int32)
	}
	e.index = make(map[graph.Vertex]int32, len(e.verts))
	for i, v := range e.verts {
		e.index[v] = int32(i)
	}
	e.adj = make([]graph.AdjSet, len(e.verts))
	e.deg = graph.NewFenwick(len(e.verts))
	return e
}

// finishLoad records the global edge count m and the partition size, and
// arms the adaptive window controller — the steps that need the local
// edges to be in place.
func (e *rankEngine) finishLoad(m int64, cfg Config) {
	e.m = m
	e.initialEdges = e.deg.Total()
	if cfg.AdaptiveWindow {
		// Start at the fixed window the controller replaces, so an
		// adaptive run never opens worse than a fixed one. With
		// c.Size() == 1 the controller pins the window to 1 (and
		// opWindowSize never consults it anyway) — the sequential-chain
		// equivalence is preserved twice over.
		start := int(e.initialEdges / 8)
		if start > opWindow {
			start = opWindow
		}
		e.winCtl = window.New(window.Config{
			Ranks:   e.c.Size(),
			Floor:   cfg.WindowFloor,
			Ceiling: cfg.WindowCeiling,
			Start:   start,
		})
	}
}

// run executes t operations in steps of stepSize (§4.5's step protocol).
// Each step boundary costs exactly one collective, the fused
// stepExchange: it carries the edge counts prepareStep needs and, in
// sanitized runs, the sparse degree-delta conservation check — a step's
// deltas are verified by the next boundary's exchange, and the final
// step by the full verifyBaseline pass at the end of the run.
func (e *rankEngine) run(t, stepSize int64) error {
	if t == 0 {
		return nil
	}
	if e.sanitize {
		if err := e.recordBaseline(); err != nil {
			return err
		}
	}
	step := 0
	for done := int64(0); done < t; done += stepSize {
		step++
		s := stepSize
		if t-done < s {
			s = t - done
		}
		counts, err := e.stepExchange()
		if err != nil {
			return e.stepErr(step, "step exchange", err)
		}
		if err := e.prepareStep(s, counts); err != nil {
			return e.stepErr(step, "step preparation", err)
		}
		if err := e.stepLoop(); err != nil {
			return e.stepErr(step, "step loop", err)
		}
		if err := e.checkStepInvariants(); err != nil {
			return err
		}
		e.endStep()
	}
	if e.sanitize {
		return e.verifyBaseline()
	}
	return nil
}

// stepErr labels an error with the failing rank, step and phase. The %w
// chain is preserved so transport faults stay matchable: a run aborted by
// a lost peer satisfies errors.Is(err, mpi.ErrPeerLost) all the way up
// through RunRank to cmd/esworker.
func (e *rankEngine) stepErr(step int, phase string, err error) error {
	return fmt.Errorf("core: rank %d, step %d (%s): %w", e.c.Rank(), step, phase, err)
}

// prepareStep rebuilds the selection prefix sums from the step-boundary
// edge counts and draws this step's multinomial operation distribution.
func (e *rankEngine) prepareStep(s int64, counts []int64) error {
	p := e.c.Size()
	if e.cumEdges == nil {
		e.cumEdges = make([]int64, p+1)
		e.qBuf = make([]float64, p)
		e.stalled = make([]bool, p)
	}
	q := e.qBuf
	var total int64
	for i, cnt := range counts {
		if cnt < 0 {
			return fmt.Errorf("core: negative edge count from rank %d", i)
		}
		e.cumEdges[i] = total
		total += cnt
		q[i] = float64(cnt) / float64(e.m)
	}
	e.cumEdges[p] = total
	if total != e.m {
		return fmt.Errorf("core: edge count drifted: %d != %d", total, e.m)
	}
	// Guard against floating-point drift in Σq.
	var qs float64
	for _, v := range q {
		qs += v
	}
	if qs != 1 {
		q[p-1] += 1 - qs
		if q[p-1] < 0 {
			q[p-1] = 0
		}
	}
	dist, err := randvar.ParallelMultinomialGathered(e.c, e.rnd, s, q)
	if err != nil {
		return err
	}
	e.remaining = dist[e.c.Rank()]
	e.sentEOS = false
	e.eosOthers = 0
	e.myStalled = false
	for i := range e.stalled {
		e.stalled[i] = false
	}
	e.stalledCount = 0
	return nil
}

// broadcastCtl sends a control message (EOS/stalled/resumed) to every
// other rank, through the message plane so signals coalesce with any
// protocol traffic already batched for the same destinations.
func (e *rankEngine) broadcastCtl(kind msgKind) error {
	for dst := 0; dst < e.c.Size(); dst++ {
		if dst == e.c.Rank() {
			continue
		}
		if err := e.send(dst, opMsg{kind: kind}); err != nil {
			return err
		}
	}
	return nil
}

// stepLoop is the per-step event loop: drain messages, drive the own
// operation, emit/collect end-of-step signals, block when idle.
//
//es:hotpath
func (e *rankEngine) stepLoop() error {
	p := e.c.Size()
	for {
		// Drain everything already queued: self-addressed messages
		// first (lock-free), then the mailbox in arrival order.
		for {
			if len(e.selfQ) > 0 {
				// Swap in the spare buffer so handlers can keep queueing
				// while this batch drains; the drained buffer becomes the
				// next spare (two arrays alternate, no reallocation).
				q := e.selfQ
				e.selfQ = e.selfQSpare[:0]
				for _, om := range q {
					if err := e.handleMsg(om, e.c.Rank()); err != nil {
						return err
					}
				}
				e.selfQSpare = q[:0]
				continue
			}
			batch := e.c.RecvAllInto(mpi.AnySource, opTag, e.recvBuf[:0])
			e.recvBuf = batch
			if len(batch) == 0 {
				break
			}
			for _, m := range batch {
				if err := e.handle(m); err != nil {
					return err
				}
			}
		}
		// Start own operations up to the pipelining window. Filling the
		// window before flushing is what gives the message plane several
		// records per destination batch.
		if int64(len(e.myOps)) < e.remaining {
			if e.curRestarts >= restartForfeit {
				// Structurally stuck operation (e.g. no valid switch
				// exists anywhere for this partition's edges): abandon
				// this single op rather than spin forever.
				e.curRestarts = 0
				e.forfeited++
				e.remaining--
				continue
			}
			if e.deg.Total() > 0 {
				if e.myStalled {
					e.myStalled = false
					if err := e.broadcastCtl(mResumed); err != nil {
						return err
					}
				}
				started := false
				for w := e.opWindowSize(); len(e.myOps) < w &&
					int64(len(e.myOps)) < e.remaining && e.deg.Total() > 0; {
					if err := e.startOp(); err != nil {
						return err
					}
					started = true
				}
				if started {
					continue
				}
			}
			if len(e.myOps) > 0 {
				// In-flight operations will complete or abort and either
				// decrement the quota or restore edges; wait below.
			} else if !e.myStalled {
				// Partition empty with nothing in flight: announce the
				// stall so peers in the same state can detect global
				// quiescence.
				e.myStalled = true
				if err := e.broadcastCtl(mStalled); err != nil {
					return err
				}
				continue
			} else if e.eosOthers+e.stalledCount == p-1 {
				// Every peer is finished or stalled, and nothing of ours
				// is in flight: no operation exists anywhere that could
				// deliver us an edge, so forfeit the rest.
				e.forfeited += e.remaining
				e.remaining = 0
				e.myStalled = false
				if err := e.broadcastCtl(mResumed); err != nil {
					return err
				}
				continue
			}
			// Otherwise wait below for edges or signals to arrive.
		}
		// Announce quota completion exactly once.
		if e.remaining == 0 && len(e.myOps) == 0 && !e.sentEOS {
			if err := e.broadcastCtl(mEndOfStep); err != nil {
				return err
			}
			e.sentEOS = true
			continue
		}
		// Exit when everyone is done. The final drain may have produced
		// replies (e.g. an ack for a commit delivered alongside the last
		// end-of-step signal), so push out anything still batched.
		if e.sentEOS && e.eosOthers == p-1 {
			return e.sb.flush()
		}
		// Nothing to do right now: block for the next message (the
		// self queue is necessarily empty here — every branch that
		// fills it loops back through the drain). Everything batched
		// must go out first: peers may be blocked on exactly the
		// messages we are holding.
		if len(e.selfQ) > 0 {
			continue
		}
		if e.sb.pendingBytes() > 0 {
			e.st.flushes++
		}
		if err := e.sb.flush(); err != nil {
			return err
		}
		if debugTrace {
			e.trace("blocking: myOps=%d remaining=%d deg=%d eos=%d stalled=%d myStalled=%v sentEOS=%v partnerOps=%d",
				len(e.myOps), e.remaining, e.deg.Total(), e.eosOthers, e.stalledCount, e.myStalled, e.sentEOS, len(e.partnerOps)) // hotalloc: debug-gated trace arguments (debugTrace const)
		}
		m, err := e.c.Recv(mpi.AnySource, opTag)
		if err != nil {
			return err
		}
		if err := e.handle(m); err != nil {
			return err
		}
	}
}

// endStep closes the completed step's accounting: the per-step signals
// fold into the run totals and, in adaptive runs, feed the AIMD window
// controller, which sets next step's opWindowSize.
func (e *rankEngine) endStep() {
	if e.winCtl != nil {
		e.winCtl.Observe(window.Signals{
			Started:      e.st.started,
			Committed:    e.st.committed,
			Aborts:       e.st.aborts,
			Conflicts:    e.st.conflicts,
			ReserveFails: e.st.reserveFails,
			Flushes:      e.st.flushes,
			InFlightHWM:  e.st.inFlightHWM,
			LocalEdges:   e.deg.Total(),
		})
	}
	e.tot.add(e.st)
	e.st = stepStats{}
}

// Stats returns the run-total protocol signals (the stepStats folded at
// every step boundary) — the numbers behind Result.RankWindowMax,
// RankConflicts and RankFlushes.
func (e *rankEngine) Stats() stepStats { return e.tot }

// checkStepInvariants asserts the protocol left no dangling state.
func (e *rankEngine) checkStepInvariants() error {
	if len(e.inHand) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d in-hand edges", e.c.Rank(), len(e.inHand))
	}
	if len(e.potential) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d reservations", e.c.Rank(), len(e.potential))
	}
	if len(e.partnerOps) != 0 {
		return fmt.Errorf("core: rank %d ends step with %d partner ops", e.c.Rank(), len(e.partnerOps))
	}
	if len(e.myOps) != 0 || e.remaining != 0 {
		return fmt.Errorf("core: rank %d ends step mid-operation", e.c.Rank())
	}
	if n := e.sb.pendingBytes(); n != 0 {
		return fmt.Errorf("core: rank %d ends step with %d unflushed batch bytes", e.c.Rank(), n)
	}
	return nil
}

// ---- local structure helpers ----

// owner returns the rank owning a normalized edge.
func (e *rankEngine) owner(ed graph.Edge) int { return e.pt.Owner(ed.U) }

// conflicts reports whether a normalized local edge exists (adjacency,
// reservation, or provisionally removed) and, when it does, whether the
// collision is transient — with an in-hand edge or a reservation, i.e.
// with protocol state whose population is the sum of everyone's
// pipelining windows — or structural (the edge is simply present in the
// adjacency, a parallel-edge rejection that would occur at window 1
// too). The adaptive window controller steers on transient conflicts
// only; see internal/tune/window.
func (e *rankEngine) conflicts(ed graph.Edge) (conflict, transient bool) {
	if _, held := e.inHand[ed]; held {
		return true, true
	}
	if _, reserved := e.potential[ed]; reserved {
		return true, true
	}
	li, ok := e.index[ed.U]
	if !ok {
		return true, false // foreign edge: misrouted, treat as conflict
	}
	return e.adj[li].Contains(ed.V), false
}

// takeRandomEdge removes a uniform random local edge into inHand.
func (e *rankEngine) takeRandomEdge() graph.Edge {
	slot, offset := e.deg.FindByPrefix(e.rnd.Int64n(e.deg.Total()))
	v, orig := e.adj[slot].Kth(int(offset))
	e.adj[slot].DeleteArena(&e.arena, v)
	e.deg.Add(slot, -1)
	ed := graph.Edge{U: e.verts[slot], V: v}
	e.inHand[ed] = orig
	e.noteDegree(ed, -1)
	return ed
}

// reinsert returns an in-hand edge to the local structures (abort path).
func (e *rankEngine) reinsert(ed graph.Edge) error {
	orig, held := e.inHand[ed]
	if !held {
		return fmt.Errorf("core: rank %d reinserting edge %v it does not hold", e.c.Rank(), ed)
	}
	delete(e.inHand, ed)
	li := e.index[ed.U]
	if !e.adj[li].InsertArena(&e.arena, ed.V, orig, e.rnd.Uint32()) {
		return fmt.Errorf("core: rank %d reinsert found duplicate %v", e.c.Rank(), ed)
	}
	e.deg.Add(int(li), 1)
	e.noteDegree(ed, 1)
	return nil
}

// discard finalizes the removal of an in-hand edge (commit path).
func (e *rankEngine) discard(ed graph.Edge) error {
	if _, held := e.inHand[ed]; !held {
		return fmt.Errorf("core: rank %d discarding edge %v it does not hold", e.c.Rank(), ed)
	}
	delete(e.inHand, ed)
	return nil
}

// pickPartner draws a rank with probability proportional to its
// step-start edge count (§4.4: P_j chosen with probability |E_j|/|E|).
// After many consecutive restarts the step-start distribution is
// evidently useless (all its mass on now-empty partitions), so the draw
// falls back to uniform exploration over all ranks.
func (e *rankEngine) pickPartner() int {
	if e.curRestarts >= restartExplore {
		return e.rnd.Intn(e.c.Size())
	}
	x := e.rnd.Int64n(e.cumEdges[len(e.cumEdges)-1])
	// First rank whose cumulative range contains x.
	idx := sort.Search(len(e.cumEdges)-1, func(i int) bool { return e.cumEdges[i+1] > x }) // hotalloc: non-escaping closure; sort.Search does not retain it, so it stays on the stack
	return idx
}

func (e *rankEngine) send(dst int, m opMsg) error {
	e.msgsSent++
	if dst == e.c.Rank() {
		e.selfQ = append(e.selfQ, m) // hotalloc: amortized; selfQ is a reusable double-buffer drained every loop pass
		return nil
	}
	e.sb.add(dst, m)
	if e.noBatch {
		return e.sb.flushDst(dst)
	}
	return nil
}

// ---- initiator role ----

// startOp begins one own operation: take e1, pick a partner, ask it to
// orchestrate.
func (e *rankEngine) startOp() error {
	e.seq++
	id := opID{rank: int32(e.c.Rank()), seq: e.seq}
	e1 := e.takeRandomEdge()
	e.myOps[id] = e1
	e.st.started++
	if n := len(e.myOps); n > e.st.inFlightHWM {
		e.st.inFlightHWM = n
	}
	partner := e.pickPartner()
	return e.send(partner, opMsg{kind: mSelectSecond, id: id, e1: e1})
}

// onOpDone finalizes a committed own operation.
func (e *rankEngine) onOpDone(id opID) error {
	e1, mine := e.myOps[id]
	if !mine {
		return fmt.Errorf("core: rank %d got %v for unknown own op", e.c.Rank(), id)
	}
	if err := e.discard(e1); err != nil {
		return err
	}
	delete(e.myOps, id)
	e.remaining--
	e.opsInitiated++
	e.st.committed++
	e.curRestarts = 0
	return nil
}

// onAbort restarts an own operation after rejection.
func (e *rankEngine) onAbort(id opID) error {
	e1, mine := e.myOps[id]
	if !mine {
		return fmt.Errorf("core: rank %d got abort %v for unknown own op", e.c.Rank(), id)
	}
	if err := e.reinsert(e1); err != nil {
		return err
	}
	delete(e.myOps, id)
	e.restarts++
	e.curRestarts++
	e.st.aborts++
	return nil
}

// ---- partner role ----

// onSelectSecond orchestrates an operation for initiator id.rank: select
// e2, validate, and reserve the replacement edges at their owners.
func (e *rankEngine) onSelectSecond(id opID, e1 graph.Edge, initiator int) error {
	if e.deg.Total() == 0 {
		return e.send(initiator, opMsg{kind: mAbortOp, id: id})
	}
	e2 := e.takeRandomEdge()
	if switchInvalid(e1, e2) {
		if err := e.reinsert(e2); err != nil {
			return err
		}
		return e.send(initiator, opMsg{kind: mAbortOp, id: id})
	}
	kind := Cross
	if e.rnd.Bool() {
		kind = Straight
	}
	a, b := replacement(e1, e2, kind)
	op := e.newPartnerOp()
	*op = partnerOp{
		id:        id,
		initiator: initiator,
		e2:        e2,
		edges:     [2]graph.Edge{a, b},
		owners:    [2]int{e.owner(a), e.owner(b)},
		phase:     phaseReserving,
	}
	e.partnerOps[id] = op
	for i := 0; i < 2; i++ {
		if err := e.send(op.owners[i], opMsg{kind: mReserve, id: id, e1: op.edges[i]}); err != nil {
			return err
		}
	}
	return nil
}

// onReserveReply advances a partner op when an owner answers.
func (e *rankEngine) onReserveReply(id opID, ed graph.Edge, ok bool) error {
	op, exists := e.partnerOps[id]
	if !exists || op.phase != phaseReserving {
		return fmt.Errorf("core: rank %d got reserve reply for unknown %v", e.c.Rank(), id)
	}
	idx, err := op.edgeIndex(ed)
	if err != nil {
		return err
	}
	if op.resolved[idx] {
		return fmt.Errorf("core: rank %d got duplicate reserve reply for %v/%v", e.c.Rank(), id, ed)
	}
	op.resolved[idx] = true
	op.okay[idx] = ok
	if !ok {
		e.st.reserveFails++
	}
	if !op.resolved[0] || !op.resolved[1] {
		return nil
	}
	if op.okay[0] && op.okay[1] {
		op.phase = phaseCommitting
		op.acksLeft = 2
		for i := 0; i < 2; i++ {
			if err := e.send(op.owners[i], opMsg{kind: mCommit, id: id, e1: op.edges[i]}); err != nil {
				return err
			}
		}
		return nil
	}
	// At least one conflict: release successful reservations, then abort.
	op.phase = phaseReleasing
	op.acksLeft = 0
	for i := 0; i < 2; i++ {
		if op.okay[i] {
			op.acksLeft++
			if err := e.send(op.owners[i], opMsg{kind: mRelease, id: id, e1: op.edges[i]}); err != nil {
				return err
			}
		}
	}
	if op.acksLeft == 0 {
		return e.finishAbort(op)
	}
	return nil
}

// onAck counts commit/release acknowledgements and finishes the op when
// all owners have applied their updates.
func (e *rankEngine) onAck(id opID, commit bool) error {
	op, exists := e.partnerOps[id]
	if !exists {
		return fmt.Errorf("core: rank %d got ack for unknown %v", e.c.Rank(), id)
	}
	if (commit && op.phase != phaseCommitting) || (!commit && op.phase != phaseReleasing) {
		return fmt.Errorf("core: rank %d got %v ack in phase %d", e.c.Rank(), id, op.phase)
	}
	op.acksLeft--
	if op.acksLeft > 0 {
		return nil
	}
	if commit {
		if err := e.discard(op.e2); err != nil {
			return err
		}
		delete(e.partnerOps, id)
		initiator := op.initiator
		e.freePartnerOp(op)
		return e.send(initiator, opMsg{kind: mOpDone, id: id})
	}
	return e.finishAbort(op)
}

func (e *rankEngine) finishAbort(op *partnerOp) error {
	if err := e.reinsert(op.e2); err != nil {
		return err
	}
	delete(e.partnerOps, op.id)
	initiator, id := op.initiator, op.id
	e.freePartnerOp(op)
	return e.send(initiator, opMsg{kind: mAbortOp, id: id})
}

// newPartnerOp draws a partnerOp record from the freelist; the caller
// overwrites every field. freePartnerOp returns a record once it has
// left partnerOps and no reference to it remains.
func (e *rankEngine) newPartnerOp() *partnerOp {
	if n := len(e.poFree); n > 0 {
		op := e.poFree[n-1]
		e.poFree[n-1] = nil
		e.poFree = e.poFree[:n-1]
		return op
	}
	return new(partnerOp) // hotalloc: freelist miss; the pool exists to make this the rare path
}

func (e *rankEngine) freePartnerOp(op *partnerOp) {
	e.poFree = append(e.poFree, op) // hotalloc: freelist return; amortized growth of the partnerOp pool backbone
}

func (op *partnerOp) edgeIndex(ed graph.Edge) (int, error) {
	switch ed {
	case op.edges[0]:
		return 0, nil
	case op.edges[1]:
		return 1, nil
	default:
		return 0, fmt.Errorf("core: edge %v not part of %v", ed, op.id)
	}
}

// ---- owner role ----

// onReserve answers a reservation request with a conflict check; a
// successful check records the potential edge (§4.5 issue 1).
func (e *rankEngine) onReserve(id opID, ed graph.Edge, partner int) error {
	if conflict, transient := e.conflicts(ed); conflict {
		if transient {
			e.st.conflicts++
		}
		return e.send(partner, opMsg{kind: mReserveFail, id: id, e1: ed})
	}
	e.potential[ed] = id
	return e.send(partner, opMsg{kind: mReserveOK, id: id, e1: ed})
}

// onCommit materializes a reserved edge as a modified edge.
func (e *rankEngine) onCommit(id opID, ed graph.Edge, partner int) error {
	holder, reserved := e.potential[ed]
	if !reserved || holder != id {
		return fmt.Errorf("core: rank %d commit of unreserved edge %v by %v", e.c.Rank(), ed, id)
	}
	delete(e.potential, ed)
	li, ok := e.index[ed.U]
	if !ok {
		return fmt.Errorf("core: rank %d commit of foreign edge %v", e.c.Rank(), ed)
	}
	if !e.adj[li].InsertArena(&e.arena, ed.V, false, e.rnd.Uint32()) {
		return fmt.Errorf("core: rank %d commit found duplicate edge %v", e.c.Rank(), ed)
	}
	e.deg.Add(int(li), 1)
	e.noteDegree(ed, 1)
	return e.send(partner, opMsg{kind: mCommitAck, id: id, e1: ed})
}

// onRelease drops a reservation.
func (e *rankEngine) onRelease(id opID, ed graph.Edge, partner int) error {
	holder, reserved := e.potential[ed]
	if !reserved || holder != id {
		return fmt.Errorf("core: rank %d release of unreserved edge %v by %v", e.c.Rank(), ed, id)
	}
	delete(e.potential, ed)
	return e.send(partner, opMsg{kind: mReleaseAck, id: id, e1: ed})
}

// handle dispatches one mailbox payload — a batch of one or more framed
// protocol messages — then recycles the buffer (the sender transferred
// ownership with SendOwned, and decoding copies every field out). The
// record loop is written out rather than delegated to forEachOpMsg: a
// closure over (e, m.Src) escapes and this is the hottest path in the
// engine.
func (e *rankEngine) handle(m mpi.Message) error {
	data := m.Data
	for off := 0; off < len(data); {
		rl := int(data[off])
		off++
		if rl == 0 || off+rl > len(data) {
			return fmt.Errorf("core: truncated message batch at byte %d", off-1)
		}
		om, err := decodeOpMsg(data[off : off+rl])
		if err != nil {
			return err
		}
		off += rl
		if err := e.handleMsg(om, m.Src); err != nil {
			return err
		}
	}
	e.sb.recycle(m.Data)
	return nil
}

// handleMsg dispatches one protocol message from src.
func (e *rankEngine) handleMsg(om opMsg, src int) error {
	if debugTrace {
		e.trace("recv %v %v e=%v from %d", om.kind, om.id, om.e1, src) // hotalloc: debug-gated trace arguments (debugTrace const)
	}
	switch om.kind {
	case mSelectSecond:
		return e.onSelectSecond(om.id, om.e1, src)
	case mAbortOp:
		return e.onAbort(om.id)
	case mReserve:
		return e.onReserve(om.id, om.e1, src)
	case mReserveOK:
		return e.onReserveReply(om.id, om.e1, true)
	case mReserveFail:
		return e.onReserveReply(om.id, om.e1, false)
	case mCommit:
		return e.onCommit(om.id, om.e1, src)
	case mCommitAck:
		return e.onAck(om.id, true)
	case mRelease:
		return e.onRelease(om.id, om.e1, src)
	case mReleaseAck:
		return e.onAck(om.id, false)
	case mOpDone:
		return e.onOpDone(om.id)
	case mEndOfStep:
		e.eosOthers++
		// A finished rank is no longer "stalled with quota".
		if e.stalled[src] {
			e.stalled[src] = false
			e.stalledCount--
		}
		return nil
	case mStalled:
		if !e.stalled[src] {
			e.stalled[src] = true
			e.stalledCount++
		}
		return nil
	case mResumed:
		if e.stalled[src] {
			e.stalled[src] = false
			e.stalledCount--
		}
		return nil
	default:
		return fmt.Errorf("core: rank %d cannot handle %v", e.c.Rank(), om.kind)
	}
}

// debugTrace, when enabled via the ESDEBUG environment variable, prints
// every message a rank handles plus its loop state. Temporary diagnostic.
var debugTrace = os.Getenv("ESDEBUG") != ""

// traceOut receives debug traces. A variable rather than a hardcoded
// fmt.Fprintf(os.Stderr, ...) so tests can capture traces and the
// noprint check's "no direct terminal writes in library packages" rule
// holds; writes are serialized per line by the underlying file.
var traceOut io.Writer = os.Stderr

func (e *rankEngine) trace(format string, args ...any) {
	if debugTrace {
		fmt.Fprintf(traceOut, "[rank %d] %s\n", e.c.Rank(), fmt.Sprintf(format, args...)) // hotalloc: debug-gated; debugTrace is a compile-time const, this path is dead in production builds
	}
}
