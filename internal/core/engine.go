package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/partition"
	"edgeswitch/internal/rng"
	"edgeswitch/internal/store"
	"edgeswitch/internal/tune/window"
)

// rankEngine is one rank's chassis: its partition of the graph (reduced
// adjacency lists of the vertices it owns), the step loop with its
// drain/stall/EOS machinery, the batching message plane, and the
// sanitizer bookkeeping. The algorithm-specific protocol state lives
// behind rand (see randomizer.go). Ranks never touch each other's
// engines; everything flows through c.
type rankEngine struct {
	c   *mpi.Comm
	pt  partition.Partitioner
	rnd *rng.RNG

	// seed is the run seed verbatim (rnd is already split per rank);
	// randomizers that key counter streams off global coordinates
	// (curveball's pairing and trade streams) need the shared value.
	seed uint64

	n int   // global vertex count
	m int64 // global edge count (invariant)

	// rand is the protocol implementation driven by the step loop.
	rand randomizer

	// Local storage: verts lists owned vertices ascending; index maps a
	// global vertex id to its slot; adj holds the reduced adjacencies
	// (slot li's entries are global neighbour ids, each > the owner
	// vertex) behind the store seam — all-in-memory treaps, or the
	// tiered mmap-base-plus-overlay store when Config.SpillDir is set;
	// deg is the Fenwick tree over reduced degrees for O(log) uniform
	// edge selection.
	verts []graph.Vertex
	index map[graph.Vertex]int32
	adj   store.Store
	deg   *graph.Fenwick

	initialEdges int64

	// origLocal counts local adjacency entries still flagged original,
	// maintained by the takeLocal/insertLocal/drainLocal accounting
	// helpers. Summed across ranks at every step boundary (fused into
	// stepExchange) it yields the exact global visit rate without
	// reassembling the graph.
	origLocal int64

	// targetX, when positive, stops the run at the first step boundary
	// whose fused originals exchange shows the global visit rate reached
	// the target (Config.TargetVisitRate). Deterministic across ranks:
	// every rank evaluates the same gathered sum.
	targetX float64

	// stepsRun counts completed steps, including a final partial one cut
	// short by targetX — the number Result.Steps reports.
	stepsRun int64

	// selfQ buffers messages this rank addressed to itself (local
	// switches and locally-owned replacement edges). Bypassing the
	// mailbox for them keeps per-pair FIFO (it is its own pair) and
	// removes all locking from the p=1 and mostly-local fast paths.
	// selfQSpare is the drained previous buffer, swapped back in on the
	// next drain so the two alternate instead of reallocating.
	selfQ      []opMsg
	selfQSpare []opMsg

	// recvBuf is the reused RecvAllInto batch slice for the drain loop.
	recvBuf []mpi.Message

	// Step-boundary signalling: sentEOS/eosOthers implement the
	// end-of-step barrier; myStalled/stalled/stalledCount the stall
	// detection (see mStalled in messages.go).
	sentEOS      bool
	eosOthers    int
	myStalled    bool
	stalled      []bool
	stalledCount int

	// sb is the batching message plane (see sendbuf.go): outbound
	// protocol messages coalesce per destination and flush whenever the
	// step loop is about to block. noBatch (Config.DisableBatching)
	// flushes after every message instead, for benchmarks quantifying
	// the coalescing win.
	sb      sendBuffer
	noBatch bool

	// Invariant sanitizer (Config.CheckInvariants): when sanitize is set,
	// baseDeg records the global degree sequence at load time, degDelta
	// accumulates local degree changes between step boundaries for the
	// sparse conservation check fused into stepExchange, and the full
	// state is re-verified against baseDeg at the end of the run (see
	// sanitize.go and stepsync.go).
	sanitize bool
	baseDeg  []int64
	degDelta map[graph.Vertex]int32

	// st accumulates this step's protocol signals; at each step boundary
	// it is folded into tot and (in adaptive runs) fed to winCtl, then
	// reset.
	st  stepStats
	tot stepStats

	// Adaptive pipelining window (Config.AdaptiveWindow): winCtl holds
	// the AIMD controller fed by st at every step boundary; nil in
	// fixed-window runs. winMax records the largest window opWindowSize
	// ever granted — exactly 1 at p=1, where the engine must realize the
	// sequential chain (asserted by TestSequentialEquivalence).
	winCtl *window.Controller
	winMax int

	// Checkpointing (Config.CheckpointDir): ckpt runs the per-boundary
	// snapshot/manifest protocol after every CheckpointEvery-th completed
	// step; restoredStep records the boundary a restored run resumed from
	// (0 for fresh runs) — see checkpoint.go and snapshot.go.
	ckpt         *checkpointer
	restoredStep int64

	// Reused step-boundary scratch (see stepsync.go): stepCounts holds
	// the decoded per-rank edge counts, stepBuf the unchecked-run encode
	// buffer — both allocated once so boundaries stay off the allocator.
	stepCounts []int64
	stepBuf    []byte

	// Statistics.
	opsInitiated int64
	restarts     int64
	forfeited    int64
	msgsSent     int64
}

// stepStats aggregates one step's protocol signals — the per-rank
// feedback the adaptive window controller consumes (window.Signals) and
// the run totals Result reports. All counters reset at step boundaries.
type stepStats struct {
	started      int64 // own operations begun (each restart begins anew)
	committed    int64 // own operations completed
	aborts       int64 // own operations aborted and restarted
	conflicts    int64 // owner-side transient (window-induced) conflicts
	reserveFails int64 // failed reservations seen while orchestrating
	flushes      int64 // message-plane flushes forced by blocking
	inFlightHWM  int   // high-water mark of in-flight own operations
}

// add folds one step's counters into a running total (inFlightHWM takes
// the max — it is a level, not a flow).
func (t *stepStats) add(s stepStats) {
	t.started += s.started
	t.committed += s.committed
	t.aborts += s.aborts
	t.conflicts += s.conflicts
	t.reserveFails += s.reserveFails
	t.flushes += s.flushes
	if s.inFlightHWM > t.inFlightHWM {
		t.inFlightHWM = s.inFlightHWM
	}
}

// opWindow caps the number of own operations a rank pipelines.
const opWindow = 64

// opWindowSize bounds the in-flight window by the local partition: a rank
// never holds more than a fraction of its current edges in flight, so tiny
// partitions degrade to the unpipelined protocol instead of emptying
// themselves into inHand (which would inflate conflicts and stalls).
// A single rank runs unpipelined: there is no transport to batch for,
// and a window would draw first edges without replacement, departing
// from the sequential chain that p=1 must realize exactly.
//
// Fixed mode uses 64 ∧ |E_local|/8; adaptive mode (Config.AdaptiveWindow)
// asks the AIMD controller, clamped live to |E_local|/4 — the controller
// only observes the partition at step boundaries, but the partition can
// shrink mid-step.
func (e *rankEngine) opWindowSize() int {
	if e.c.Size() == 1 {
		if e.winMax < 1 {
			e.winMax = 1
		}
		return 1
	}
	var w int
	if e.winCtl != nil {
		w = e.winCtl.Window()
		if lim := int(e.deg.Total() / 4); lim >= 1 && w > lim {
			w = lim
		}
		if w < 1 {
			w = 1
		}
	} else {
		w = int(e.deg.Total() / 8)
		if w < 1 {
			w = 1
		}
		if w > opWindow {
			w = opWindow
		}
	}
	if w > e.winMax {
		e.winMax = w
	}
	return w
}

// newRankEngine loads a rank's partition and prepares its state. Only
// cfg.Seed, cfg.Algorithm, cfg.CheckInvariants, cfg.DisableBatching and
// the window fields are consulted; the communicator decides everything
// else. With CheckInvariants set, every step boundary of the run
// re-verifies the engine invariants (see sanitize.go and stepsync.go).
func newRankEngine(c *mpi.Comm, pt partition.Partitioner, n int, m int64, edges []flaggedEdge, cfg Config) (*rankEngine, error) {
	e, err := newEmptyRankEngine(c, pt, n, cfg)
	if err != nil {
		return nil, err
	}
	for _, fe := range edges {
		li, ok := e.index[fe.e.U]
		if !ok {
			return nil, fmt.Errorf("core: rank %d handed foreign edge %v", c.Rank(), fe.e)
		}
		if !e.adj.Insert(int(li), fe.e.V, fe.orig, e.rnd.Uint32()) {
			return nil, fmt.Errorf("core: rank %d handed duplicate edge %v", c.Rank(), fe.e)
		}
		e.deg.Add(int(li), 1)
	}
	if err := e.finishLoad(m, cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// promotePrioSplit namespaces the tiered store's promotion-priority
// stream in the seed's split space, clear of the per-rank run streams
// (rank+2), the HP-U streams (1<<20 block) and the snapshot-restore
// streams (restorePrioSplit's 1<<21 block). Treap priorities shape only
// tree form, never results, but drawing them from the run RNG would
// desynchronize spill and in-memory runs — this stream keeps the two
// bit-identical.
const promotePrioSplit = 1 << 22

// newStore builds the rank's storage: the in-memory treap store, or the
// tiered spill store rooted at SpillDir/rank-NNNN when configured.
func newStore(c *mpi.Comm, verts []graph.Vertex, cfg Config) (store.Store, error) {
	if cfg.SpillDir == "" {
		return store.NewMem(verts), nil
	}
	dir := filepath.Join(cfg.SpillDir, fmt.Sprintf("rank-%04d", c.Rank()))
	prio := rng.Split(cfg.Seed, promotePrioSplit+c.Rank())
	return store.NewTiered(dir, verts, cfg.OverlayBudget, prio.Uint32)
}

// newEmptyRankEngine prepares a rank's state with an empty partition;
// callers insert this rank's edges (a handed []flaggedEdge, or the
// distributed-generation scan) and then finishLoad.
func newEmptyRankEngine(c *mpi.Comm, pt partition.Partitioner, n int, cfg Config) (*rankEngine, error) {
	e := &rankEngine{
		c:        c,
		pt:       pt,
		rnd:      rng.Split(cfg.Seed, c.Rank()+2),
		seed:     cfg.Seed,
		n:        n,
		verts:    partition.LocalVertices(pt, n, c.Rank()),
		sanitize: cfg.CheckInvariants,
		noBatch:  cfg.DisableBatching,
		targetX:  cfg.TargetVisitRate,
		stalled:  make([]bool, c.Size()),
		stepBuf:  make([]byte, 20),
	}
	e.sb.init(c)
	if e.sanitize {
		e.degDelta = make(map[graph.Vertex]int32)
	}
	e.index = make(map[graph.Vertex]int32, len(e.verts))
	for i, v := range e.verts {
		e.index[v] = int32(i)
	}
	var err error
	if e.adj, err = newStore(c, e.verts, cfg); err != nil {
		return nil, fmt.Errorf("core: rank %d storage: %w", c.Rank(), err)
	}
	e.deg = graph.NewFenwick(len(e.verts))
	return e, nil
}

// finishLoad records the global edge count m and the partition size,
// counts the loaded originals, arms the adaptive window controller, and
// attaches the configured randomizer — the steps that need the local
// edges to be in place.
func (e *rankEngine) finishLoad(m int64, cfg Config) error {
	if err := e.adj.EndLoad(); err != nil {
		return fmt.Errorf("core: rank %d finishing storage load: %w", e.c.Rank(), err)
	}
	e.m = m
	e.initialEdges = e.deg.Total()
	e.origLocal = 0
	for li := range e.verts {
		e.origLocal += int64(e.adj.Originals(li))
	}
	if cfg.AdaptiveWindow {
		// Start at the fixed window the controller replaces, so an
		// adaptive run never opens worse than a fixed one. With
		// c.Size() == 1 the controller pins the window to 1 (and
		// opWindowSize never consults it anyway) — the sequential-chain
		// equivalence is preserved twice over.
		start := int(e.initialEdges / 8)
		if start > opWindow {
			start = opWindow
		}
		e.winCtl = window.New(window.Config{
			Ranks:   e.c.Size(),
			Floor:   cfg.WindowFloor,
			Ceiling: cfg.WindowCeiling,
			Start:   start,
		})
	}
	algo, err := cfg.algorithm()
	if err != nil {
		return err
	}
	switch algo {
	case AlgoCurveball:
		e.rand, err = newCurveball(e)
		if err != nil {
			return err
		}
	default:
		e.rand = newEdgeSwitcher(e)
	}
	return nil
}

// run executes t operations in steps of stepSize (§4.5's step protocol;
// for curveball a step is one global round and stepSize is 1). Each step
// boundary costs exactly one collective, the fused stepExchange: it
// carries the edge counts prepare needs, the global originals sum for
// visit-rate targeting, and, in sanitized runs, the sparse degree-delta
// conservation check — a step's deltas are verified by the next
// boundary's exchange, and the final step by the full verifyBaseline
// pass at the end of the run.
func (e *rankEngine) run(t, stepSize int64) error {
	if t == 0 {
		return nil
	}
	if e.sanitize {
		if err := e.recordBaseline(); err != nil {
			return err
		}
	}
	// A restored engine resumes after its stepsRun completed steps; the
	// uninterrupted run reaches the same loop state at that boundary with
	// the same storage, RNG position and randomizer cursor, so the two
	// runs are indistinguishable from here on.
	step := int(e.stepsRun)
	for done := e.stepsRun * stepSize; done < t; done += stepSize {
		step++
		s := stepSize
		if t-done < s {
			s = t - done
		}
		counts, origs, err := e.stepExchange()
		if err != nil {
			return e.stepErr(step, "step exchange", err)
		}
		if e.targetX > 0 && VisitRate(origs, e.m) >= e.targetX {
			// Target visit rate reached; every rank sees the same sum and
			// breaks here together, so no step machinery is in flight.
			break
		}
		if err := e.beginStep(s, counts); err != nil {
			return e.stepErr(step, "step preparation", err)
		}
		if err := e.stepLoop(); err != nil {
			return e.stepErr(step, "step loop", err)
		}
		if err := e.checkStepInvariants(); err != nil {
			return err
		}
		e.endStep()
		// The boundary is the store's compaction point: no reads are
		// outstanding, so a tiered store past its overlay budget can fold
		// the overlay into a fresh base segment here. Runs before the
		// checkpoint hook so a snapshot always links a current base.
		if err := e.adj.EndStep(); err != nil {
			return e.stepErr(step, "store compaction", err)
		}
		e.stepsRun++
		if e.ckpt != nil && e.stepsRun%e.ckpt.every == 0 {
			// The boundary is a consistent cut: the plane is empty and the
			// randomizer quiescent (checkStepInvariants), so the snapshot
			// protocol runs here, between steps.
			if err := e.ckpt.save(e, stepSize); err != nil {
				return e.stepErr(step, "checkpoint", err)
			}
		}
	}
	if e.sanitize {
		return e.verifyBaseline()
	}
	return nil
}

// stepErr labels an error with the failing rank, step and phase. The %w
// chain is preserved so transport faults stay matchable: a run aborted by
// a lost peer satisfies errors.Is(err, mpi.ErrPeerLost) all the way up
// through RunRank to cmd/esworker.
func (e *rankEngine) stepErr(step int, phase string, err error) error {
	return fmt.Errorf("core: rank %d, step %d (%s): %w", e.c.Rank(), step, phase, err)
}

// beginStep resets the chassis's step-boundary signalling and arms the
// randomizer for a step of size s.
func (e *rankEngine) beginStep(s int64, counts []int64) error {
	e.sentEOS = false
	e.eosOthers = 0
	e.myStalled = false
	for i := range e.stalled {
		e.stalled[i] = false
	}
	e.stalledCount = 0
	return e.rand.prepare(s, counts)
}

// broadcastCtl sends a control message (EOS/stalled/resumed) to every
// other rank, through the message plane so signals coalesce with any
// protocol traffic already batched for the same destinations.
func (e *rankEngine) broadcastCtl(kind msgKind) error {
	for dst := 0; dst < e.c.Size(); dst++ {
		if dst == e.c.Rank() {
			continue
		}
		if err := e.send(dst, opMsg{kind: kind}); err != nil {
			return err
		}
	}
	return nil
}

// stepLoop is the per-step event loop: drain messages, let the
// randomizer advance, emit/collect end-of-step signals, block when idle.
// Everything here is algorithm-independent; the randomizer contributes
// only progress (advance/handle) and its done/starved status.
//
//es:hotpath
func (e *rankEngine) stepLoop() error {
	p := e.c.Size()
	r := e.rand
	for {
		// Drain everything already queued: self-addressed messages
		// first (lock-free), then the mailbox in arrival order.
		for {
			if len(e.selfQ) > 0 {
				// Swap in the spare buffer so handlers can keep queueing
				// while this batch drains; the drained buffer becomes the
				// next spare (two arrays alternate, no reallocation).
				q := e.selfQ
				e.selfQ = e.selfQSpare[:0]
				for _, om := range q {
					if err := e.handleMsg(om, e.c.Rank()); err != nil {
						return err
					}
				}
				e.selfQSpare = q[:0]
				continue
			}
			batch := e.c.RecvAllInto(mpi.AnySource, opTag, e.recvBuf[:0])
			e.recvBuf = batch
			if len(batch) == 0 {
				break
			}
			for _, m := range batch {
				if err := e.handle(m); err != nil {
					return err
				}
			}
		}
		// The drain may have delivered the work a stalled rank was
		// waiting for; withdraw the announcement before advancing.
		if e.myStalled && !r.starved() && !r.done() {
			e.myStalled = false
			if err := e.broadcastCtl(mResumed); err != nil {
				return err
			}
		}
		progressed, err := r.advance()
		if err != nil {
			return err
		}
		if progressed {
			continue
		}
		if !r.done() && r.starved() {
			if !e.myStalled {
				// Starved with nothing in flight: announce the stall so
				// peers in the same state can detect global quiescence.
				e.myStalled = true
				if err := e.broadcastCtl(mStalled); err != nil {
					return err
				}
				continue
			}
			if e.eosOthers+e.stalledCount == p-1 {
				// Every peer is finished or stalled, and nothing of ours
				// is in flight: no message exists anywhere that could
				// deliver us work, so forfeit the rest.
				r.forfeitRemaining()
				e.myStalled = false
				if err := e.broadcastCtl(mResumed); err != nil {
					return err
				}
				continue
			}
		}
		// Announce quota completion exactly once.
		if r.done() && !e.sentEOS {
			if err := e.broadcastCtl(mEndOfStep); err != nil {
				return err
			}
			e.sentEOS = true
			continue
		}
		// Exit when everyone is done. The final drain may have produced
		// replies (e.g. an ack for a commit delivered alongside the last
		// end-of-step signal), so push out anything still batched.
		if e.sentEOS && e.eosOthers == p-1 {
			return e.sb.flush()
		}
		// Nothing to do right now: block for the next message (the
		// self queue is necessarily empty here — every branch that
		// fills it loops back through the drain). Everything batched
		// must go out first: peers may be blocked on exactly the
		// messages we are holding.
		if len(e.selfQ) > 0 {
			continue
		}
		if e.sb.pendingBytes() > 0 {
			e.st.flushes++
		}
		if err := e.sb.flush(); err != nil {
			return err
		}
		if debugTrace {
			e.trace("blocking: done=%v starved=%v deg=%d eos=%d stalled=%d myStalled=%v sentEOS=%v",
				r.done(), r.starved(), e.deg.Total(), e.eosOthers, e.stalledCount, e.myStalled, e.sentEOS) // hotalloc: debug-gated trace arguments (debugTrace const)
		}
		m, err := e.c.Recv(mpi.AnySource, opTag)
		if err != nil {
			return err
		}
		if err := e.handle(m); err != nil {
			return err
		}
	}
}

// endStep closes the completed step's accounting: the per-step signals
// fold into the run totals and, in adaptive runs, feed the AIMD window
// controller, which sets next step's opWindowSize.
func (e *rankEngine) endStep() {
	if e.winCtl != nil {
		e.winCtl.Observe(window.Signals{
			Started:      e.st.started,
			Committed:    e.st.committed,
			Aborts:       e.st.aborts,
			Conflicts:    e.st.conflicts,
			ReserveFails: e.st.reserveFails,
			Flushes:      e.st.flushes,
			InFlightHWM:  e.st.inFlightHWM,
			LocalEdges:   e.deg.Total(),
		})
	}
	e.tot.add(e.st)
	e.st = stepStats{}
}

// Stats returns the run-total protocol signals (the stepStats folded at
// every step boundary) — the numbers behind Result.RankWindowMax,
// RankConflicts and RankFlushes.
func (e *rankEngine) Stats() stepStats { return e.tot }

// checkStepInvariants asserts the step left no dangling state: the
// randomizer's protocol is quiescent and the message plane is empty.
func (e *rankEngine) checkStepInvariants() error {
	if err := e.rand.quiesced(); err != nil {
		return err
	}
	if n := e.sb.pendingBytes(); n != 0 {
		return fmt.Errorf("core: rank %d ends step with %d unflushed batch bytes", e.c.Rank(), n)
	}
	return nil
}

// ---- local structure helpers ----

// owner returns the rank owning a normalized edge.
func (e *rankEngine) owner(ed graph.Edge) int { return e.pt.Owner(ed.U) }

// takeLocal removes a uniform random local edge, returning it with its
// original flag. The fused accounting (degree Fenwick, sanitizer delta,
// originals counter) is what makes the sanitizer and the visit-rate
// exchange algorithm-agnostic: any randomizer that mutates storage only
// through these helpers keeps both exact.
func (e *rankEngine) takeLocal() (graph.Edge, bool) {
	slot, offset := e.deg.FindByPrefix(e.rnd.Int64n(e.deg.Total()))
	v, orig := e.adj.Kth(slot, int(offset))
	e.adj.Delete(slot, v)
	e.deg.Add(slot, -1)
	ed := graph.Edge{U: e.verts[slot], V: v}
	e.noteDegree(ed, -1)
	if orig {
		e.origLocal--
	}
	return ed, orig
}

// insertLocal adds a normalized edge this rank owns, with the given
// original flag, updating the fused accounting (see takeLocal).
func (e *rankEngine) insertLocal(ed graph.Edge, orig bool) error {
	li, ok := e.index[ed.U]
	if !ok {
		return fmt.Errorf("core: rank %d inserting foreign edge %v", e.c.Rank(), ed)
	}
	if !e.adj.Insert(int(li), ed.V, orig, e.rnd.Uint32()) {
		return fmt.Errorf("core: rank %d insert found duplicate edge %v", e.c.Rank(), ed)
	}
	e.deg.Add(int(li), 1)
	e.noteDegree(ed, 1)
	if orig {
		e.origLocal++
	}
	return nil
}

// drainLocal empties one owned vertex's whole adjacency in ascending
// order, handing each (edge, original) to fn and keeping the fused
// accounting exact — curveball's per-round bulk extraction. The removal
// deltas cancel against the insertLocal calls that restore the traded
// lists, so the sanitizer's conservation check holds across a round.
func (e *rankEngine) drainLocal(li int, fn func(ed graph.Edge, orig bool)) {
	u := e.verts[li]
	cnt := e.adj.Len(li)
	if cnt == 0 {
		return
	}
	e.origLocal -= int64(e.adj.Originals(li))
	e.adj.Drain(li, func(v graph.Vertex, orig bool) { // hotalloc: one closure per drained vertex per round, amortized over the adjacency walk
		ed := graph.Edge{U: u, V: v}
		e.noteDegree(ed, -1)
		fn(ed, orig)
	})
	e.deg.Add(li, int64(-cnt))
}

// edgeHash fingerprints this rank's edge set: an order-independent sum
// of mixed (u, v, original) hashes. Partitions are disjoint, so rank 0's
// fold of the per-rank sums identifies the global edge set regardless of
// rank count or storage tier — Result.EdgeHash.
func (e *rankEngine) edgeHash() uint64 {
	var h uint64
	for li := range e.verts {
		u := uint64(e.verts[li])
		e.adj.Walk(li, func(v graph.Vertex, orig bool) bool { // hotalloc: one closure per owned vertex, once per run
			x := u<<33 | uint64(v)<<1
			if orig {
				x |= 1
			}
			// SplitMix64's finalizer: full avalanche, so the unordered sum
			// still separates edge sets differing in a single entry.
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			h += x
			return true
		})
	}
	return h
}

func (e *rankEngine) send(dst int, m opMsg) error {
	e.msgsSent++
	if dst == e.c.Rank() {
		e.selfQ = append(e.selfQ, m) // hotalloc: amortized; selfQ is a reusable double-buffer drained every loop pass
		return nil
	}
	e.sb.add(dst, m)
	if e.noBatch {
		return e.sb.flushDst(dst)
	}
	return nil
}

// handle dispatches one mailbox payload — a batch of one or more framed
// protocol messages — then recycles the buffer (the sender transferred
// ownership with SendOwned, and decoding copies every field out). The
// record loop is written out rather than delegated to forEachOpMsg: a
// closure over (e, m.Src) escapes and this is the hottest path in the
// engine.
func (e *rankEngine) handle(m mpi.Message) error {
	data := m.Data
	for off := 0; off < len(data); {
		rl := int(data[off])
		off++
		if rl == 0 || off+rl > len(data) {
			return fmt.Errorf("core: truncated message batch at byte %d", off-1)
		}
		om, err := decodeOpMsg(data[off : off+rl])
		if err != nil {
			return err
		}
		off += rl
		if err := e.handleMsg(om, m.Src); err != nil {
			return err
		}
	}
	e.sb.recycle(m.Data)
	return nil
}

// handleMsg dispatches one message from src: the chassis consumes the
// step-control kinds and hands everything else to the randomizer.
func (e *rankEngine) handleMsg(om opMsg, src int) error {
	if debugTrace {
		e.trace("recv %v %v e=%v from %d", om.kind, om.id, om.e1, src) // hotalloc: debug-gated trace arguments (debugTrace const)
	}
	switch om.kind {
	case mEndOfStep:
		e.eosOthers++
		// A finished rank is no longer "stalled with quota".
		if e.stalled[src] {
			e.stalled[src] = false
			e.stalledCount--
		}
		return nil
	case mStalled:
		if !e.stalled[src] {
			e.stalled[src] = true
			e.stalledCount++
		}
		return nil
	case mResumed:
		if e.stalled[src] {
			e.stalled[src] = false
			e.stalledCount--
		}
		return nil
	default:
		return e.rand.handle(om, src)
	}
}

// debugTrace, when enabled via the ESDEBUG environment variable, prints
// every message a rank handles plus its loop state. Temporary diagnostic.
var debugTrace = os.Getenv("ESDEBUG") != ""

// traceOut receives debug traces. A variable rather than a hardcoded
// fmt.Fprintf(os.Stderr, ...) so tests can capture traces and the
// noprint check's "no direct terminal writes in library packages" rule
// holds; writes are serialized per line by the underlying file.
var traceOut io.Writer = os.Stderr

func (e *rankEngine) trace(format string, args ...any) {
	if debugTrace {
		fmt.Fprintf(traceOut, "[rank %d] %s\n", e.c.Rank(), fmt.Sprintf(format, args...)) // hotalloc: debug-gated; debugTrace is a compile-time const, this path is dead in production builds
	}
}
