package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// benchEngine runs RunRank b.N times on one world and reports the
// transport traffic a run costs — msgs/op is the number of payloads
// handed to the transport (what batching shrinks), bytes/op the payload
// volume — plus restarts/op, the protocol work wasted on rejected
// selections (what the adaptive window shrinks).
func benchEngine(b *testing.B, g *graph.Graph, ops int64, useTCP bool, cfg Config) {
	b.Helper()
	var opts []mpi.Option
	if useTCP {
		opts = append(opts, mpi.WithTCP())
	}
	w, err := mpi.NewWorld(cfg.Ranks, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	cfg.SkipResult = true
	var restarts atomic.Int64
	start := w.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(c *mpi.Comm) error {
			res, err := RunRank(c, g, ops, cfg)
			if err != nil {
				return err
			}
			if res != nil {
				restarts.Add(res.Restarts)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := w.Stats()
	b.ReportMetric(float64(st.Sends-start.Sends)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(st.Bytes-start.Bytes)/float64(b.N), "bytes/op")
	b.ReportMetric(float64(restarts.Load())/float64(b.N), "restarts/op")
}

// BenchmarkEngineStep times one full engine step (a complete RunRank with
// a single-step quota) across the message-plane matrix: both transports,
// two rank counts, batching on/off, sanitizer on/off, and the adaptive
// pipelining window against the fixed one. BENCH_messageplane.json and
// BENCH_adaptive.json record the numbers.
func BenchmarkEngineStep(b *testing.B) {
	n, m, ops := 1200, int64(6000), int64(4000)
	if testing.Short() {
		n, m, ops = 300, int64(1500), int64(800)
	}
	g, err := gen.ErdosRenyi(rng.Split(31, 0), n, m)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name                        string
		sanitize, noBatch, adaptive bool
	}{
		{name: "batch"},
		{name: "batch+sanitize", sanitize: true},
		{name: "nobatch", noBatch: true},
		{name: "adaptive", adaptive: true},
	}
	for _, transport := range []string{"mem", "tcp"} {
		for _, p := range []int{2, 8} {
			for _, v := range variants {
				b.Run(fmt.Sprintf("%s/p%d/%s", transport, p, v.name), func(b *testing.B) {
					benchEngine(b, g, ops, transport == "tcp", Config{
						Ranks:           p,
						Scheme:          SchemeHPD,
						Seed:            31,
						CheckInvariants: v.sanitize,
						DisableBatching: v.noBatch,
						AdaptiveWindow:  v.adaptive,
					})
				})
			}
		}
	}
}

// BenchmarkEngineStepHighConflict exercises the regime the adaptive
// window exists for: small per-rank partitions where the fixed 64-edge
// window holds a large fraction of each partition in hand, inflating
// reservation conflicts and restarts. Two shapes: a skewed
// preferential-attachment graph under HP-D (degree-sorted striping
// concentrates heavy vertices, so partitions are uneven) and a tiny
// uniform graph. Runs are multi-step so the AIMD controller gets
// feedback to steer on; restarts/op shows what it buys.
func BenchmarkEngineStepHighConflict(b *testing.B) {
	scale := int64(1)
	if testing.Short() {
		scale = 4
	}
	pa, err := gen.PrefAttachment(rng.Split(33, 0), int(560/scale), 4)
	if err != nil {
		b.Fatal(err)
	}
	tiny, err := gen.ErdosRenyi(rng.Split(34, 0), int(240/scale), 960/scale)
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		g    *graph.Graph
		ops  int64
	}{
		{name: "skewed-pa", g: pa, ops: 4000 / scale},
		{name: "tiny-uniform", g: tiny, ops: 4000 / scale},
	}
	for _, transport := range []string{"mem", "tcp"} {
		for _, c := range configs {
			for _, adaptive := range []bool{false, true} {
				mode := "fixed"
				if adaptive {
					mode = "adaptive"
				}
				b.Run(fmt.Sprintf("%s/%s/p8/%s", transport, c.name, mode), func(b *testing.B) {
					benchEngine(b, c.g, c.ops, transport == "tcp", Config{
						Ranks:          8,
						Scheme:         SchemeHPD,
						Seed:           33,
						StepSize:       c.ops / 10,
						AdaptiveWindow: adaptive,
					})
				})
			}
		}
	}
}
