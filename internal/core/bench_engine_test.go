package core

import (
	"fmt"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// BenchmarkEngineStep times one full engine step (a complete RunRank with
// a single-step quota) across the message-plane matrix: both transports,
// two rank counts, batching on/off, sanitizer on/off. Beyond ns/op it
// reports the transport traffic a step costs — msgs/op is the number of
// payloads handed to the transport (what batching shrinks), bytes/op the
// payload volume — so the coalescing win is visible in `go test -bench`
// output directly; BENCH_messageplane.json records the numbers.
func BenchmarkEngineStep(b *testing.B) {
	n, m, ops := 1200, int64(6000), int64(4000)
	if testing.Short() {
		n, m, ops = 300, int64(1500), int64(800)
	}
	g, err := gen.ErdosRenyi(rng.Split(31, 0), n, m)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name              string
		sanitize, noBatch bool
	}{
		{name: "batch"},
		{name: "batch+sanitize", sanitize: true},
		{name: "nobatch", noBatch: true},
	}
	for _, transport := range []string{"mem", "tcp"} {
		for _, p := range []int{2, 8} {
			for _, v := range variants {
				b.Run(fmt.Sprintf("%s/p%d/%s", transport, p, v.name), func(b *testing.B) {
					var opts []mpi.Option
					if transport == "tcp" {
						opts = append(opts, mpi.WithTCP())
					}
					w, err := mpi.NewWorld(p, opts...)
					if err != nil {
						b.Fatal(err)
					}
					defer w.Close()
					cfg := Config{
						Ranks:           p,
						Scheme:          SchemeHPD,
						Seed:            31,
						SkipResult:      true,
						CheckInvariants: v.sanitize,
						DisableBatching: v.noBatch,
					}
					start := w.Stats()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						err := w.Run(func(c *mpi.Comm) error {
							_, err := RunRank(c, g, ops, cfg)
							return err
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					st := w.Stats()
					b.ReportMetric(float64(st.Sends-start.Sends)/float64(b.N), "msgs/op")
					b.ReportMetric(float64(st.Bytes-start.Bytes)/float64(b.N), "bytes/op")
				})
			}
		}
	}
}
