package core

import (
	"fmt"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// TestBatchFIFOAcrossTransports drives the sendBuffer directly on both
// transports: every rank streams coalesced batches of sequence-numbered
// messages to every peer, with collectives interleaved between rounds,
// and each receiver asserts that the per-source sequence is strictly
// increasing — the ordering property the conversation protocol relies on.
func TestBatchFIFOAcrossTransports(t *testing.T) {
	const (
		p        = 4
		rounds   = 8
		perBatch = 5
	)
	for _, tc := range []struct {
		name string
		opts []mpi.Option
	}{
		{name: "mem"},
		{name: "tcp", opts: []mpi.Option{mpi.WithTCP()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := mpi.NewWorld(p, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			err = w.Run(func(c *mpi.Comm) error {
				var sb sendBuffer
				sb.init(c)
				seq := uint64(0)
				for r := 0; r < rounds; r++ {
					for dst := 0; dst < p; dst++ {
						if dst == c.Rank() {
							continue
						}
						for k := 0; k < perBatch; k++ {
							seq++
							sb.add(dst, opMsg{
								kind: mSelectSecond,
								id:   opID{rank: int32(c.Rank()), seq: seq},
								e1:   graph.Edge{U: graph.Vertex(r), V: graph.Vertex(k + rounds)},
							})
						}
					}
					if err := sb.flush(); err != nil {
						return err
					}
					// Collectives use reserved tags; interleaving them must
					// not disturb opTag ordering.
					if r%2 == 0 {
						if err := c.Barrier(); err != nil {
							return err
						}
					} else if _, err := c.Allgather([]byte{byte(r)}); err != nil {
						return err
					}
				}
				want := (p - 1) * rounds * perBatch
				lastSeq := make(map[int32]uint64)
				got := 0
				for got < want {
					m, err := c.Recv(mpi.AnySource, opTag)
					if err != nil {
						return err
					}
					err = forEachOpMsg(m.Data, func(om opMsg) error {
						if om.id.seq <= lastSeq[om.id.rank] {
							return fmt.Errorf("rank %d: message from %d out of order: seq %d after %d",
								c.Rank(), om.id.rank, om.id.seq, lastSeq[om.id.rank])
						}
						lastSeq[om.id.rank] = om.id.seq
						got++
						return nil
					})
					sb.recycle(m.Data)
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// runCounted executes one full engine run on a fresh world and returns
// the world-level transport counters plus rank 0's collective count.
func runCounted(t *testing.T, g *graph.Graph, ops int64, cfg Config) (mpi.CommStats, int64) {
	t.Helper()
	var opts []mpi.Option
	if cfg.UseTCP {
		opts = append(opts, mpi.WithTCP())
	}
	w, err := mpi.NewWorld(cfg.Ranks, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var collectives int64
	err = w.Run(func(c *mpi.Comm) error {
		if _, err := RunRank(c, g, ops, cfg); err != nil {
			return err
		}
		if c.Rank() == 0 {
			collectives = c.Stats().Collectives
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Stats(), collectives
}

// TestBatchingReducesTransportSends is the message plane's headline
// acceptance check: at p = 8 on the mem transport, the batched engine
// must reach the target in at least 5x fewer transport sends than the
// unbatched one (ISSUE acceptance criterion).
func TestBatchingReducesTransportSends(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.Split(11, 0), 1200, 6000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Ranks:      8,
		Scheme:     SchemeHPD,
		StepSize:   1500,
		Seed:       11,
		SkipResult: true,
	}
	const ops = 6000

	unbatched := cfg
	unbatched.DisableBatching = true
	base, _ := runCounted(t, g, ops, unbatched)
	batched, _ := runCounted(t, g, ops, cfg)

	t.Logf("unbatched: %d sends / %d bytes; batched: %d sends / %d bytes (%.1fx fewer sends)",
		base.Sends, base.Bytes, batched.Sends, batched.Bytes,
		float64(base.Sends)/float64(batched.Sends))
	if batched.Sends == 0 || base.Sends == 0 {
		t.Fatalf("transport counters did not move: base %+v batched %+v", base, batched)
	}
	if base.Sends < 5*batched.Sends {
		t.Errorf("batching saved only %.1fx sends (%d -> %d), want >= 5x",
			float64(base.Sends)/float64(batched.Sends), base.Sends, batched.Sends)
	}
}

// TestSanitizerSingleCollectivePerStep pins the fused step exchange: with
// the sanitizer enabled, degree-drift verification rides inside the
// step-boundary exchange, so the per-step collective count is identical
// to an unchecked run. The only sanitizer-specific collectives are the
// two whole-run baseline allreduces (record + final verify), independent
// of the number of steps.
func TestSanitizerSingleCollectivePerStep(t *testing.T) {
	g, err := gen.ErdosRenyi(rng.Split(23, 0), 400, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []struct {
		name     string
		stepSize int64
		ops      int64
	}{
		{name: "1step", stepSize: 0, ops: 800},
		{name: "4steps", stepSize: 200, ops: 800},
	} {
		t.Run(steps.name, func(t *testing.T) {
			cfg := Config{
				Ranks:      4,
				Scheme:     SchemeHPD,
				StepSize:   steps.stepSize,
				Seed:       23,
				SkipResult: true,
			}
			_, plain := runCounted(t, g, steps.ops, cfg)
			checked := cfg
			checked.CheckInvariants = true
			_, sanitized := runCounted(t, g, steps.ops, checked)
			if sanitized != plain+2 {
				t.Errorf("sanitizer cost %d extra collectives (%d vs %d), want exactly 2 (baseline record + final verify)",
					sanitized-plain, sanitized, plain)
			}
		})
	}
}
