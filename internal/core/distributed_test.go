package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/mpi"
	"edgeswitch/internal/rng"
)

// TestRunRankDistributed runs the parallel algorithm over the
// multi-process transport (mpi.ProcWorld): each "process" is simulated by
// a goroutine with its own world membership and its own copy of the
// graph, exactly as cmd/esworker does across real OS processes.
func TestRunRankDistributed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	const p = 3
	const tOps = int64(1500)
	base, err := gen.ErdosRenyi(rng.New(1), 600, 3600)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	var res *Result
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Each "process" loads its own copy of the graph.
			g := base.Clone(rng.New(2))
			pw, err := mpi.JoinDistributed(rank, p, addr, 5*time.Second)
			if err != nil {
				errs[rank] = err
				return
			}
			defer pw.Close()
			errs[rank] = pw.Run(func(c *mpi.Comm) error {
				r, err := RunRank(c, g, tOps, Config{
					Scheme: SchemeHPU, Seed: 7, StepSize: 500,
				})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					res = r
				}
				return nil
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if res == nil {
		t.Fatal("rank 0 returned no result")
	}
	if res.Ops+res.Forfeited != tOps {
		t.Fatalf("accounting: %+v", res)
	}
	if err := res.Graph.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if !sameDegrees(degreeMultiset(base), degreeMultiset(res.Graph)) {
		t.Fatal("degree multiset changed over the distributed transport")
	}
	if res.Steps != 3 {
		t.Fatalf("steps %d", res.Steps)
	}
}
