package core

import (
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpillInMemoryEquivalence is the out-of-core tentpole pin: wherever
// a configuration is deterministic — curveball at every rank count,
// edge-switching at p=1 — a run whose partitions live in the tiered
// mmap store must end bit-identical to the pure in-memory run, ops,
// restarts, edge flags and fingerprint included. The overlay budget is
// forced tiny so every step boundary compacts: the equivalence is
// exercised across base-segment rewrites, not just across the initial
// load.
func TestSpillInMemoryEquivalence(t *testing.T) {
	g := testGraph(t, 14, 400, 1600)
	cases := []struct {
		name     string
		algo     Algorithm
		ranks    int
		t        int64
		stepSize int64
	}{
		{"curveball-p1", AlgoCurveball, 1, 4, 0},
		{"curveball-p2", AlgoCurveball, 2, 4, 0},
		{"curveball-p8", AlgoCurveball, 8, 4, 0},
		{"edgeswitch-p1", AlgoEdgeSwitch, 1, 800, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Ranks:           tc.ranks,
				Algorithm:       tc.algo,
				Scheme:          SchemeHPD,
				StepSize:        tc.stepSize,
				Seed:            11,
				CheckInvariants: true,
			}
			mem, err := Parallel(g, tc.t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			scfg := cfg
			scfg.SpillDir = t.TempDir()
			scfg.OverlayBudget = 64
			spill, err := Parallel(g, tc.t, scfg)
			if err != nil {
				t.Fatal(err)
			}
			sameEdgeFlags(t, tc.name, edgeFlagMap(mem.Graph), edgeFlagMap(spill.Graph))
			if mem.Ops != spill.Ops || mem.Restarts != spill.Restarts {
				t.Errorf("spill run did %d ops / %d restarts, in-memory %d / %d",
					spill.Ops, spill.Restarts, mem.Ops, mem.Restarts)
			}
			if mem.EdgeHash == 0 || mem.EdgeHash != spill.EdgeHash {
				t.Errorf("edge fingerprints diverged: in-memory %#x, spill %#x",
					mem.EdgeHash, spill.EdgeHash)
			}
			if spill.SpillBaseBytes == 0 {
				t.Error("spill run reports no base-segment bytes")
			}
			if spill.SpillCompactions == 0 {
				t.Error("tiny overlay budget never triggered a compaction")
			}
			if mem.SpillBaseBytes != 0 || mem.SpillCompactions != 0 {
				t.Errorf("in-memory run reports spill activity: %d B, %d compactions",
					mem.SpillBaseBytes, mem.SpillCompactions)
			}
		})
	}
}

// TestSpillParallelEdgeSwitch: at p>1 the edge-switching conversation
// interleaving is scheduling-dependent, so the spill run cannot be
// compared edge-for-edge — instead it must complete under the full
// sanitizer (simplicity, ownership, Fenwick and degree conservation are
// re-verified at every compacting step boundary) and preserve the
// degree multiset.
func TestSpillParallelEdgeSwitch(t *testing.T) {
	g := testGraph(t, 15, 400, 1600)
	res, err := Parallel(g, 800, Config{
		Ranks:           8,
		Scheme:          SchemeHPD,
		StepSize:        200,
		Seed:            7,
		CheckInvariants: true,
		SpillDir:        t.TempDir(),
		OverlayBudget:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, g, res, 800)
	if !sameDegrees(degreeMultiset(g), degreeMultiset(res.Graph)) {
		t.Fatal("spill run changed the degree multiset")
	}
	if res.SpillCompactions == 0 {
		t.Error("tiny overlay budget never triggered a compaction")
	}
}

// TestSpillCheckpointRoundTrip: a spill run's checkpoints store the
// adjacency payload externally — the snapshot records only the identity
// of a hard-linked base segment. Every committed boundary must leave
// that segment file behind, and must restore to the uninterrupted
// run's exact result both into another spill world (the segment is
// adopted as-is) and into a plain in-memory world (the segment is
// decoded once and dropped) — crash recovery cannot depend on the
// survivor being configured like the victim.
func TestSpillCheckpointRoundTrip(t *testing.T) {
	g := testGraph(t, 16, 400, 1600)
	cases := []struct {
		name     string
		algo     Algorithm
		ranks    int
		t        int64
		stepSize int64
	}{
		{"curveball-p2", AlgoCurveball, 2, 3, 0},
		{"edgeswitch-p1", AlgoEdgeSwitch, 1, 600, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refDir := t.TempDir()
			cfg := Config{
				Ranks:           tc.ranks,
				Algorithm:       tc.algo,
				Scheme:          SchemeHPD,
				StepSize:        tc.stepSize,
				Seed:            11,
				CheckInvariants: true,
				SpillDir:        t.TempDir(),
				OverlayBudget:   64,
				CheckpointDir:   refDir,
				CheckpointEvery: 1,
				CheckpointKeep:  -1,
			}
			ref, err := Parallel(g, tc.t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refEdges := canonicalEdges(t, ref.Graph)

			steps := manifestStepsIn(t, refDir)
			for _, step := range steps {
				for r := 0; r < tc.ranks; r++ {
					if _, err := os.Stat(ckSegPath(refDir, step, r)); err != nil {
						t.Fatalf("step %d rank %d: no checkpoint segment: %v", step, r, err)
					}
				}
			}

			for _, step := range steps {
				for _, mode := range []string{"spill", "inmem"} {
					rcfg := cfg
					rcfg.CheckpointDir = copyCheckpointDir(t, refDir)
					rcfg.Restore, rcfg.RestoreStep = true, step
					if mode == "spill" {
						rcfg.SpillDir = t.TempDir()
					} else {
						rcfg.SpillDir, rcfg.OverlayBudget = "", 0
					}
					res, err := Parallel(g, tc.t, rcfg)
					if err != nil {
						t.Fatalf("%s restore from step %d: %v", mode, step, err)
					}
					if res.RestoredStep != step {
						t.Fatalf("%s restore resumed from step %d, demanded %d", mode, res.RestoredStep, step)
					}
					if !sameEdges(refEdges, canonicalEdges(t, res.Graph)) {
						t.Fatalf("%s restore from step %d diverged from the uninterrupted run", mode, step)
					}
					if res.Ops != ref.Ops || res.EdgeHash != ref.EdgeHash {
						t.Fatalf("%s restore from step %d: ops %d hash %#x, uninterrupted run had %d / %#x",
							mode, step, res.Ops, res.EdgeHash, ref.Ops, ref.EdgeHash)
					}
				}
			}
		})
	}
}

// TestSpillRestoreFromInlineCheckpoint covers the remaining cross-mode
// direction: a checkpoint written by a plain in-memory run (adjacency
// inline in the snapshot) restored into a spill world. The restored
// partitions stream into fresh base segments and the run must still end
// where the uninterrupted in-memory run ended.
func TestSpillRestoreFromInlineCheckpoint(t *testing.T) {
	g := testGraph(t, 17, 400, 1600)
	refDir := t.TempDir()
	cfg := Config{
		Ranks:           2,
		Algorithm:       AlgoCurveball,
		Scheme:          SchemeHPD,
		Seed:            11,
		CheckInvariants: true,
		CheckpointDir:   refDir,
		CheckpointEvery: 1,
		CheckpointKeep:  -1,
	}
	ref, err := Parallel(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refEdges := canonicalEdges(t, ref.Graph)

	for _, step := range manifestStepsIn(t, refDir) {
		rcfg := cfg
		rcfg.CheckpointDir = copyCheckpointDir(t, refDir)
		rcfg.Restore, rcfg.RestoreStep = true, step
		rcfg.SpillDir = t.TempDir()
		rcfg.OverlayBudget = 64
		res, err := Parallel(g, 3, rcfg)
		if err != nil {
			t.Fatalf("spill restore from inline step %d: %v", step, err)
		}
		if res.RestoredStep != step {
			t.Fatalf("resumed from step %d, demanded %d", res.RestoredStep, step)
		}
		if !sameEdges(refEdges, canonicalEdges(t, res.Graph)) {
			t.Fatalf("spill restore from inline step %d diverged from the in-memory run", step)
		}
	}
}

// peakHeapDuring samples HeapAlloc while f runs and returns the largest
// observation. The 5ms ReadMemStats cadence briefly stops the world —
// acceptable in a smoke test whose phases run for seconds.
func peakHeapDuring(f func()) uint64 {
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
		}
	}()
	f()
	close(stop)
	<-done
	return peak.Load()
}

// TestSpillSmoke is the CI out-of-core leg (`make spillsmoke`, gated on
// ESSPILL=1): bootstrap a >=10^7-edge preferential-attachment graph
// communication-free at p=8, run two global curveball rounds fully
// in-memory while sampling the heap high-water mark, then repeat the
// identical run through the tiered store under a soft memory limit of
// half that peak. The capped spill run must complete and its final edge
// fingerprint must be bit-identical to the uncapped in-memory run —
// curveball is deterministic at every rank count, so any divergence is
// a store bug, not scheduling noise. Runtimes are logged, not asserted:
// the BENCH_outofcore.json guard owns the performance band.
func TestSpillSmoke(t *testing.T) {
	if os.Getenv("ESSPILL") == "" {
		t.Skip("set ESSPILL=1 to run the out-of-core smoke (generates a 10^7-edge graph)")
	}
	spec := benchGenSpec("pa", 1_000_006, 10) // MaxEdges 10,000,005, as TestLargeGenSmoke
	cfg := Config{
		Ranks:          8,
		Algorithm:      AlgoCurveball,
		Scheme:         SchemeHPD,
		Seed:           spec.Seed,
		SkipResult:     true,
		DistributedGen: &spec,
	}

	var mem *Result
	var err error
	start := time.Now()
	peak := peakHeapDuring(func() {
		mem, err = Parallel(nil, 2, cfg)
	})
	memDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if mem.EdgeHash == 0 {
		t.Fatal("in-memory run produced no edge fingerprint")
	}

	limit := int64(peak / 2)
	if limit < 64<<20 {
		limit = 64 << 20
	}
	prev := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prev)

	scfg := cfg
	scfg.SpillDir = t.TempDir()
	start = time.Now()
	spill, err := Parallel(nil, 2, scfg)
	spillDur := time.Since(start)
	if err != nil {
		t.Fatalf("capped spill run failed: %v", err)
	}

	if spill.EdgeHash != mem.EdgeHash {
		t.Errorf("edge fingerprints diverged under the memory cap: in-memory %#x, spill %#x",
			mem.EdgeHash, spill.EdgeHash)
	}
	if spill.SpillBaseBytes == 0 {
		t.Error("spill run reports no base-segment bytes")
	}
	t.Logf("pa n=%d p=8: in-memory %v (peak heap %d MiB), spill %v under %d MiB limit (%.2fx, %d compactions, %d B base)",
		spec.N, memDur.Round(time.Millisecond), peak>>20,
		spillDur.Round(time.Millisecond), limit>>20,
		spillDur.Seconds()/memDur.Seconds(), spill.SpillCompactions, spill.SpillBaseBytes)
}
