package core

import (
	"math"
	"testing"

	"edgeswitch/internal/gen"
	"edgeswitch/internal/graph"
	"edgeswitch/internal/metrics"
	"edgeswitch/internal/rng"
)

func testGraph(t *testing.T, seed uint64, n int, m int64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(rng.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkRun asserts the invariants every parallel run must satisfy.
func checkRun(t *testing.T, g *graph.Graph, res *Result, tOps int64) {
	t.Helper()
	if res.Ops+res.Forfeited != tOps {
		t.Fatalf("ops %d + forfeited %d != t %d", res.Ops, res.Forfeited, tOps)
	}
	if res.Graph == nil {
		t.Fatal("no result graph")
	}
	if res.Graph.N() != g.N() || res.Graph.M() != g.M() {
		t.Fatalf("shape changed: n %d->%d m %d->%d", g.N(), res.Graph.N(), g.M(), res.Graph.M())
	}
	if err := res.Graph.CheckSimple(); err != nil {
		t.Fatalf("result not simple: %v", err)
	}
	if !sameDegrees(degreeMultiset(g), degreeMultiset(res.Graph)) {
		t.Fatal("degree multiset changed")
	}
	var sumOps int64
	for _, o := range res.RankOps {
		sumOps += o
	}
	if sumOps != res.Ops {
		t.Fatalf("rank ops sum %d != total %d", sumOps, res.Ops)
	}
	var sumEdges int64
	for _, c := range res.RankFinalEdges {
		sumEdges += c
	}
	if sumEdges != g.M() {
		t.Fatalf("final rank edges sum %d != m %d", sumEdges, g.M())
	}
	var sumMsgs int64
	for _, c := range res.RankMessages {
		sumMsgs += c
	}
	if res.Ops > 0 && sumMsgs < res.Ops {
		t.Fatalf("message count %d implausibly low for %d ops", sumMsgs, res.Ops)
	}
}

func TestParallelSingleRank(t *testing.T) {
	g := testGraph(t, 1, 1000, 5000)
	res, err := Parallel(g, 2000, Config{Ranks: 1, Seed: 42, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, g, res, 2000)
	if res.Forfeited != 0 {
		t.Fatalf("forfeited %d on healthy graph", res.Forfeited)
	}
	if res.VisitRate <= 0.3 {
		t.Fatalf("visit rate %v suspiciously low after 2000 ops on 5000 edges", res.VisitRate)
	}
}

func TestParallelAllSchemes(t *testing.T) {
	g := testGraph(t, 2, 2000, 12000)
	for _, scheme := range Schemes() {
		for _, p := range []int{2, 4, 7} {
			res, err := Parallel(g, 3000, Config{Ranks: p, Scheme: scheme, Seed: 7, StepSize: 1000, CheckInvariants: true})
			if err != nil {
				t.Fatalf("%s p=%d: %v", scheme, p, err)
			}
			checkRun(t, g, res, 3000)
			if res.Forfeited != 0 {
				t.Fatalf("%s p=%d: forfeited %d", scheme, p, res.Forfeited)
			}
			if res.Steps != 3 {
				t.Fatalf("%s p=%d: steps %d, want 3", scheme, p, res.Steps)
			}
			if res.SchemeName != string(scheme) {
				t.Fatalf("scheme echoed as %q", res.SchemeName)
			}
		}
	}
}

func TestParallelSingleStep(t *testing.T) {
	g := testGraph(t, 3, 1500, 9000)
	res, err := Parallel(g, 2500, Config{Ranks: 5, Scheme: SchemeHPU, Seed: 11, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, g, res, 2500)
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1", res.Steps)
	}
}

func TestParallelOverTCP(t *testing.T) {
	g := testGraph(t, 4, 800, 4000)
	res, err := Parallel(g, 1000, Config{Ranks: 3, Scheme: SchemeHPD, Seed: 13, UseTCP: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, g, res, 1000)
}

func TestParallelZeroOps(t *testing.T) {
	g := testGraph(t, 5, 200, 800)
	res, err := Parallel(g, 0, Config{Ranks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 0 || res.Steps != 0 {
		t.Fatalf("zero-op run: %+v", res)
	}
	// Graph must round-trip unchanged, flags intact.
	if res.Graph.Originals() != g.M() {
		t.Fatalf("originals %d, want %d", res.Graph.Originals(), g.M())
	}
}

func TestParallelConfigValidation(t *testing.T) {
	g := testGraph(t, 6, 100, 300)
	if _, err := Parallel(g, 10, Config{Ranks: 0}); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	if _, err := Parallel(g, -1, Config{Ranks: 2}); err == nil {
		t.Fatal("negative t accepted")
	}
	if _, err := Parallel(g, 10, Config{Ranks: 2, Scheme: "bogus"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	tiny := testGraph(t, 7, 5, 1)
	if _, err := Parallel(tiny, 10, Config{Ranks: 2}); err == nil {
		t.Fatal("single-edge graph accepted")
	}
}

func TestParallelInputUnmodified(t *testing.T) {
	g := testGraph(t, 8, 500, 2500)
	before := g.Edges()
	if _, err := Parallel(g, 1000, Config{Ranks: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	after := g.Edges()
	if len(before) != len(after) {
		t.Fatal("input graph mutated")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("input graph mutated")
		}
	}
}

// TestParallelVisitRate runs the visit-rate pipeline end to end in
// parallel: t derived from x must yield an observed rate near x.
func TestParallelVisitRate(t *testing.T) {
	g := testGraph(t, 9, 3000, 30000)
	for _, x := range []float64{0.5, 1.0} {
		ops, err := OpsForVisitRate(g.M(), x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Parallel(g, ops, Config{Ranks: 6, Scheme: SchemeHPU, Seed: uint64(17 + int(x*10)), StepSize: ops / 10})
		if err != nil {
			t.Fatal(err)
		}
		checkRun(t, g, res, ops)
		if math.Abs(res.VisitRate-x) > 0.02 {
			t.Fatalf("x=%v: observed %v", x, res.VisitRate)
		}
	}
}

// TestParallelSimilarToSequential is the §4.6 similarity experiment in
// miniature: ER(seq, par) should be comparable to ER(seq, seq).
func TestParallelSimilarToSequential(t *testing.T) {
	base := testGraph(t, 10, 2000, 16000)
	tOps := int64(8000)
	const rBlocks = 10

	seqRun := func(seed uint64) *graph.Graph {
		r := rng.New(seed)
		g := base.Clone(r)
		if _, err := Sequential(g, tOps, r); err != nil {
			t.Fatal(err)
		}
		return g
	}
	s1 := seqRun(100)
	s2 := seqRun(200)
	baseline, err := metrics.ErrorRate(s1, s2, rBlocks)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Parallel(base, tOps, Config{Ranks: 8, Scheme: SchemeHPU, Seed: 300, StepSize: tOps / 10})
	if err != nil {
		t.Fatal(err)
	}
	er, err := metrics.ErrorRate(s1, res.Graph, rBlocks)
	if err != nil {
		t.Fatal(err)
	}
	// The parallel process must look like another sequential run: its
	// error rate against a sequential result should be within a factor
	// of the seq-vs-seq baseline (generous factor for a small graph).
	if er > 2.5*baseline+0.5 {
		t.Fatalf("ER(seq,par) = %f far above baseline ER(seq,seq) = %f", er, baseline)
	}
}

// TestParallelTinyGraphTerminates exercises the restart and stall paths:
// dense traffic on a minuscule graph across several ranks must terminate,
// possibly with forfeits, and preserve invariants.
func TestParallelTinyGraphTerminates(t *testing.T) {
	r := rng.New(11)
	g, err := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}, {U: 1, V: 4},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		res, err := Parallel(g, 200, Config{Ranks: p, Scheme: SchemeHPD, Seed: uint64(p), StepSize: 50, CheckInvariants: true})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Ops+res.Forfeited != 200 {
			t.Fatalf("p=%d: ops %d + forfeits %d != 200", p, res.Ops, res.Forfeited)
		}
		if err := res.Graph.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		if !sameDegrees(degreeMultiset(g), degreeMultiset(res.Graph)) {
			t.Fatalf("p=%d: degrees changed", p)
		}
	}
}

// TestParallelMoreRanksThanEdges stresses partitions that start empty.
func TestParallelMoreRanksThanEdges(t *testing.T) {
	r := rng.New(12)
	g, err := graph.FromEdges(30, []graph.Edge{
		{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 10, V: 20},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallel(g, 50, Config{Ranks: 10, Scheme: SchemeHPM, Seed: 5, StepSize: 10, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if res.Ops+res.Forfeited != 50 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestParallelSkipResult(t *testing.T) {
	g := testGraph(t, 13, 500, 2500)
	res, err := Parallel(g, 500, Config{Ranks: 4, Seed: 9, SkipResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("SkipResult returned a graph")
	}
	if res.Ops+res.Forfeited != 500 {
		t.Fatalf("accounting: %+v", res)
	}
}

// TestParallelWorkloadRoughlyProportional: on a balanced random graph,
// the per-rank operation counts should be roughly equal (multinomial
// sampling with near-equal probabilities).
func TestParallelWorkloadRoughlyProportional(t *testing.T) {
	g := testGraph(t, 14, 4000, 40000)
	const p = 8
	tOps := int64(8000)
	res, err := Parallel(g, tOps, Config{Ranks: p, Scheme: SchemeHPU, Seed: 21, StepSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(tOps) / p
	for rank, ops := range res.RankOps {
		if math.Abs(float64(ops)-want)/want > 0.25 {
			t.Fatalf("rank %d did %d ops, want ~%f (all: %v)", rank, ops, want, res.RankOps)
		}
	}
}

// TestParallelDifferentSeedsDifferentResults: randomization sanity.
func TestParallelSeedsMatter(t *testing.T) {
	g := testGraph(t, 15, 500, 3000)
	r1, err := Parallel(g, 1000, Config{Ranks: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Parallel(g, 1000, Config{Ranks: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := r1.Graph.Edges(), r2.Graph.Edges()
	same := 0
	for i := range e1 {
		if i < len(e2) && e1[i] == e2[i] {
			same++
		}
	}
	if same == len(e1) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func BenchmarkParallel8Ranks(b *testing.B) {
	g, err := gen.ErdosRenyi(rng.New(30), 20000, 200000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parallel(g, 50000, Config{Ranks: 8, Scheme: SchemeHPU, Seed: uint64(i), SkipResult: true}); err != nil {
			b.Fatal(err)
		}
	}
}
