// Package core implements the paper's primary contribution: sequential
// (Algorithm 1) and distributed-memory parallel (§4–§5) edge switching on
// simple graphs, together with the visit-rate theory of §3.1 that converts
// a target fraction of visited edges into an operation count.
package core

import (
	"fmt"
	"math"
)

// eulerGamma is the Euler–Mascheroni constant used by the asymptotic
// harmonic-number expansion.
const eulerGamma = 0.57721566490153286060651209008240243

// harmonic returns the k-th harmonic number H_k. Exact summation is used
// for small k; beyond that the asymptotic expansion
// H_k = ln k + γ + 1/(2k) − 1/(12k²) is accurate to ~1e-12.
func harmonic(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= 256 {
		s := 0.0
		for i := int64(1); i <= k; i++ {
			s += 1 / float64(i)
		}
		return s
	}
	fk := float64(k)
	return math.Log(fk) + eulerGamma + 1/(2*fk) - 1/(12*fk*fk)
}

// ExpectedEdgesSwitched returns E[T] of eq. 4: the expected number of
// *edge selections* needed before a graph with m edges has a fraction x
// of them modified, E[T] = m·(H_m − H_{m(1−x)}). For x = 1 this is
// m·H_m ≈ m ln m. x must lie in [0, 1].
func ExpectedEdgesSwitched(m int64, x float64) (float64, error) {
	if m < 0 {
		return 0, fmt.Errorf("core: negative edge count %d", m)
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0, fmt.Errorf("core: visit rate %v out of [0,1]", x)
	}
	if m == 0 || x == 0 {
		return 0, nil
	}
	remaining := int64(math.Round(float64(m) * (1 - x)))
	if remaining >= m {
		// Rounding pushed the unvisited count back up to m (small m with a
		// small nonzero x, e.g. m=10, x=0.05): E[T] would be 0 and the run
		// would silently do nothing despite a positive target. One edge
		// must be visited for any x > 0, so clamp to m−1 — which makes
		// E[T] = m·(H_m − H_{m−1}) = 1, i.e. at least one selection.
		remaining = m - 1
	}
	return float64(m) * (harmonic(m) - harmonic(remaining)), nil
}

// OpsForVisitRate converts a target visit rate into the number of edge
// switch *operations* t = E[T]/2 (each operation consumes two edge
// selections), rounded up. This is the paper's prescription; §3.1 shows
// the observed visit rate then tracks x with error well below 0.1%.
func OpsForVisitRate(m int64, x float64) (int64, error) {
	et, err := ExpectedEdgesSwitched(m, x)
	if err != nil {
		return 0, err
	}
	return int64(math.Ceil(et / 2)), nil
}

// VisitRate computes the observed visit rate of a switched graph given
// the number of initial edges still unmodified and the initial edge
// count: x' = 1 − originals/m₀.
func VisitRate(originalsRemaining, m0 int64) float64 {
	if m0 <= 0 {
		return 0
	}
	return 1 - float64(originalsRemaining)/float64(m0)
}

// CurveballRoundVisitRate is the conservative per-round lower bound q on
// the fraction of surviving original edges a global curveball round
// modifies. Each round pairs every vertex, and an edge {u, v} survives
// as an original only if it is shared with (or is the pair edge of) both
// endpoints' trades or wins the uniform redistribution on both sides;
// empirically a round modifies well over half of the surviving originals
// on the generator matrix, but the bound is kept deliberately low so the
// round count from CurveballRoundsForVisitRate overshoots and the
// Config.TargetVisitRate early stop — not the ceiling — ends the run.
const CurveballRoundVisitRate = 0.25

// CurveballRoundsForVisitRate converts a target visit rate into a global
// curveball round count: the smallest R with 1 − (1−q)^R ≥ x under the
// conservative per-round rate q = CurveballRoundVisitRate. Because q
// undershoots the real per-round rate, R is a ceiling; pair it with
// Config.TargetVisitRate so the run stops at the boundary where x is
// actually reached. For x = 1 the geometric model never terminates
// exactly, so the target is taken as "at most one surviving original".
func CurveballRoundsForVisitRate(m int64, x float64) (int64, error) {
	if m < 0 {
		return 0, fmt.Errorf("core: negative edge count %d", m)
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0, fmt.Errorf("core: visit rate %v out of [0,1]", x)
	}
	if m == 0 || x == 0 {
		return 0, nil
	}
	remaining := math.Round(float64(m) * (1 - x))
	if remaining < 1 {
		remaining = 1
	}
	r := math.Ceil(math.Log(remaining/float64(m)) / math.Log(1-CurveballRoundVisitRate))
	if r < 1 {
		r = 1
	}
	return int64(r), nil
}

// OpsForVisitRateAlgo converts a target visit rate into the operation
// count t for the given algorithm: switch operations for edge-switching
// (OpsForVisitRate), global rounds for curveball
// (CurveballRoundsForVisitRate).
func OpsForVisitRateAlgo(algo Algorithm, m int64, x float64) (int64, error) {
	switch algo {
	case AlgoCurveball:
		return CurveballRoundsForVisitRate(m, x)
	case AlgoEdgeSwitch, "":
		return OpsForVisitRate(m, x)
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}
