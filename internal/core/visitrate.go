// Package core implements the paper's primary contribution: sequential
// (Algorithm 1) and distributed-memory parallel (§4–§5) edge switching on
// simple graphs, together with the visit-rate theory of §3.1 that converts
// a target fraction of visited edges into an operation count.
package core

import (
	"fmt"
	"math"
)

// eulerGamma is the Euler–Mascheroni constant used by the asymptotic
// harmonic-number expansion.
const eulerGamma = 0.57721566490153286060651209008240243

// harmonic returns the k-th harmonic number H_k. Exact summation is used
// for small k; beyond that the asymptotic expansion
// H_k = ln k + γ + 1/(2k) − 1/(12k²) is accurate to ~1e-12.
func harmonic(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= 256 {
		s := 0.0
		for i := int64(1); i <= k; i++ {
			s += 1 / float64(i)
		}
		return s
	}
	fk := float64(k)
	return math.Log(fk) + eulerGamma + 1/(2*fk) - 1/(12*fk*fk)
}

// ExpectedEdgesSwitched returns E[T] of eq. 4: the expected number of
// *edge selections* needed before a graph with m edges has a fraction x
// of them modified, E[T] = m·(H_m − H_{m(1−x)}). For x = 1 this is
// m·H_m ≈ m ln m. x must lie in [0, 1].
func ExpectedEdgesSwitched(m int64, x float64) (float64, error) {
	if m < 0 {
		return 0, fmt.Errorf("core: negative edge count %d", m)
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0, fmt.Errorf("core: visit rate %v out of [0,1]", x)
	}
	if m == 0 || x == 0 {
		return 0, nil
	}
	remaining := int64(math.Round(float64(m) * (1 - x)))
	return float64(m) * (harmonic(m) - harmonic(remaining)), nil
}

// OpsForVisitRate converts a target visit rate into the number of edge
// switch *operations* t = E[T]/2 (each operation consumes two edge
// selections), rounded up. This is the paper's prescription; §3.1 shows
// the observed visit rate then tracks x with error well below 0.1%.
func OpsForVisitRate(m int64, x float64) (int64, error) {
	et, err := ExpectedEdgesSwitched(m, x)
	if err != nil {
		return 0, err
	}
	return int64(math.Ceil(et / 2)), nil
}

// VisitRate computes the observed visit rate of a switched graph given
// the number of initial edges still unmodified and the initial edge
// count: x' = 1 − originals/m₀.
func VisitRate(originalsRemaining, m0 int64) float64 {
	if m0 <= 0 {
		return 0
	}
	return 1 - float64(originalsRemaining)/float64(m0)
}
