package mpi

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload")
	frame := encodeFrame(3, 42, payload)
	got, peer, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if peer != 3 || frameTag(got) != 42 || !bytes.Equal(framePayload(got), payload) {
		t.Fatalf("round trip: peer=%d tag=%d payload=%q", peer, frameTag(got), framePayload(got))
	}
	// The hub's peer rewrite must keep the trailer valid: the checksum
	// excludes the peer field by design.
	putFramePeer(frame, 7)
	got, peer, err = readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("peer rewrite invalidated checksum: %v", err)
	}
	if peer != 7 || !bytes.Equal(framePayload(got), payload) {
		t.Fatalf("after rewrite: peer=%d payload=%q", peer, framePayload(got))
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	frame := encodeFrame(0, 5, nil)
	got, _, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if len(framePayload(got)) != 0 {
		t.Fatalf("payload = %q, want empty", framePayload(got))
	}
}

// TestFrameChecksumRejectsCorruption flips one bit in every position of
// the tag, payload and trailer regions and demands readFrame reject each
// corrupted frame with ErrChecksum.
func TestFrameChecksumRejectsCorruption(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	clean := encodeFrame(1, 9, payload)
	for pos := 4; pos < len(clean); pos++ {
		if pos >= 8 && pos < frameHeader {
			continue // length field: corruption there changes the read size, tested below
		}
		frame := append([]byte(nil), clean...)
		frame[pos] ^= 0x10
		if _, _, err := readFrame(bytes.NewReader(frame)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("byte %d corrupted: err = %v, want ErrChecksum", pos, err)
		}
	}
}

func TestFrameLengthCorruption(t *testing.T) {
	frame := encodeFrame(1, 9, []byte("abcdef"))
	frame[10] = 0xff // length now far larger than the remaining bytes
	if _, _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("corrupted length accepted")
	}
	frame = encodeFrame(1, 9, []byte("abcdef"))
	frame[8]-- // length one short: trailer misaligned, checksum must fail
	if _, _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("short length accepted")
	}
}

func TestFrameTooLarge(t *testing.T) {
	frame := encodeFrame(0, 0, nil)
	frame[11] = 0xff // length field = ~4G
	_, _, err := readFrame(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("err = %v, want too-large rejection", err)
	}
}

func TestHandshakeCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, 4, 2); err != nil {
		t.Fatal(err)
	}
	rank, status, err := readHello(&buf, 4)
	if err != nil || status != joinOK || rank != 2 {
		t.Fatalf("hello: rank=%d status=%d err=%v", rank, status, err)
	}

	// Wrong world size must be rejected before the rank is even ranged.
	buf.Reset()
	_ = writeHello(&buf, 8, 2)
	if _, status, _ := readHello(&buf, 4); status != joinSizeMismatch {
		t.Fatalf("size mismatch status = %d", status)
	}

	// Out-of-range rank.
	buf.Reset()
	_ = writeHello(&buf, 4, 9)
	if _, status, _ := readHello(&buf, 4); status != joinBadRank {
		t.Fatalf("bad rank status = %d", status)
	}

	// Garbage magic.
	if _, status, _ := readHello(bytes.NewReader(make([]byte, helloLen)), 4); status != joinBadMagic {
		t.Fatal("garbage hello accepted")
	}

	// Ack round trip: OK passes, every permanent rejection maps to
	// ErrHandshake, and joinClosed maps to the transient errJoinClosed
	// (a recovering world restarts its coordinator, so dialers retry it).
	buf.Reset()
	_ = writeAck(&buf, joinOK)
	if err := readAck(&buf); err != nil {
		t.Fatalf("ok ack: %v", err)
	}
	for _, status := range []uint32{joinBadVersion, joinBadRank, joinDupRank, joinSizeMismatch} {
		buf.Reset()
		_ = writeAck(&buf, status)
		if err := readAck(&buf); !errors.Is(err, ErrHandshake) {
			t.Fatalf("status %d: err = %v, want ErrHandshake", status, err)
		}
	}
	buf.Reset()
	_ = writeAck(&buf, joinClosed)
	closedErr := readAck(&buf)
	if !errors.Is(closedErr, errJoinClosed) {
		t.Fatalf("joinClosed: err = %v, want errJoinClosed", closedErr)
	}
	if errors.Is(closedErr, ErrHandshake) {
		t.Fatal("joinClosed must not be a permanent handshake rejection")
	}
}

// TestHubWriterPostMortem pins the post-failure contract: after drain
// dies on a write error, the error is recorded, the queue is released,
// and later pushes are dropped instead of growing without bound.
func TestHubWriterPostMortem(t *testing.T) {
	client, server := net.Pipe()
	_ = client.Close() // the destination is already gone

	hw := newHubWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		hw.drain(server)
	}()
	hw.push(encodeFrame(0, 1, []byte("doomed")))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not exit on write error")
	}
	if hw.error() == nil {
		t.Fatal("write error not recorded")
	}
	for i := 0; i < 1000; i++ {
		hw.push(encodeFrame(0, 1, []byte("post-mortem")))
	}
	hw.mu.Lock()
	queued := len(hw.queue)
	hw.mu.Unlock()
	if queued != 0 {
		t.Fatalf("dead writer queued %d frames; post-mortem pushes must be dropped", queued)
	}
}

// TestMailboxFail pins fail-fast receive semantics: messages queued
// before the fault still deliver, then the named error surfaces.
func TestMailboxFail(t *testing.T) {
	mb := newMailbox()
	mb.put(Message{Src: 1, Tag: 2, Data: []byte("queued")})
	sentinel := errors.New("sentinel fault")
	mb.fail(sentinel)

	m, ok, closed := mb.get(AnySource, AnyTag, true)
	if !ok || closed || string(m.Data) != "queued" {
		t.Fatalf("queued message lost after fail: ok=%v closed=%v", ok, closed)
	}
	_, ok, closed = mb.get(AnySource, AnyTag, true)
	if ok || !closed {
		t.Fatalf("drained mailbox: ok=%v closed=%v", ok, closed)
	}
	if !errors.Is(mb.failure(), sentinel) {
		t.Fatalf("failure() = %v", mb.failure())
	}
}
