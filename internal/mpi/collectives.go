package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives. All ranks of a world must call the same collectives in the
// same order (the usual SPMD discipline); each call consumes one slot of
// the per-rank collective sequence counter, which keeps messages from
// adjacent collectives apart even when ranks overlap in time. Collectives
// use a reserved tag space and never interfere with application messages,
// so a rank may have unconsumed point-to-point traffic queued while a
// collective runs.

// nextCollTag reserves a tag block for one collective call. Within the
// block, `round` distinguishes tree levels.
func (c *Comm) nextCollTag() int {
	seq := c.collSeq
	c.collSeq++
	// 1024 interleaved sequence slots, 64 rounds each: far more than any
	// in-flight window the SPMD discipline allows.
	return collTagBase + (seq%1024)*64
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// O(log p) rounds).
func (c *Comm) Barrier() error {
	base := c.nextCollTag()
	p, r := c.Size(), c.Rank()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (r + k) % p
		src := (r - k%p + p) % p
		if err := c.send(dst, base+round, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, base+round); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank. On non-root ranks the
// returned slice is the received payload; on root it is data itself.
// Binomial-tree dissemination, O(log p) rounds.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	base := c.nextCollTag()
	p := c.Size()
	// Work in a rotated space where root is rank 0.
	vr := (c.Rank() - root + p) % p
	if vr != 0 {
		// Receive from parent: clear the lowest set bit.
		parent := (vr&(vr-1) + root) % p
		m, err := c.Recv(parent, base)
		if err != nil {
			return nil, err
		}
		data = m.Data
	}
	// Forward to children: set each bit above the lowest set bit while in range.
	low := vr & (-vr)
	if vr == 0 {
		low = 1 << 30
	}
	for bit := 1; bit < p && bit < low; bit <<= 1 {
		child := vr | bit
		if child < p {
			if err := c.send((child+root)%p, base, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Gather collects each rank's data at root. On root the result has one
// entry per rank (index = rank); on other ranks it is nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	base := c.nextCollTag()
	if c.Rank() != root {
		return nil, c.send(root, base, data)
	}
	out := make([][]byte, c.Size())
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		m, err := c.Recv(i, base)
		if err != nil {
			return nil, err
		}
		out[i] = m.Data
	}
	return out, nil
}

// Scatter sends parts[i] from root to rank i and returns this rank's part.
// parts is only read on root.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	base := c.nextCollTag()
	if c.Rank() == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: Scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for i, p := range parts {
			if i == root {
				continue
			}
			if err := c.send(i, base, p); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	m, err := c.Recv(root, base)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Allgather collects every rank's data on every rank (gather to rank 0,
// then broadcast of the concatenation).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var flat []byte
	if c.Rank() == 0 {
		flat = encodeParts(parts)
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	return decodeParts(flat)
}

// Alltoall sends parts[i] to rank i and returns the p payloads received,
// indexed by source rank. parts must have one entry per rank.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("mpi: Alltoall needs %d parts, got %d", c.Size(), len(parts))
	}
	base := c.nextCollTag()
	for i, p := range parts {
		if i == c.Rank() {
			continue
		}
		if err := c.send(i, base, p); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, c.Size())
	cp := make([]byte, len(parts[c.Rank()]))
	copy(cp, parts[c.Rank()])
	out[c.Rank()] = cp
	for i := 0; i < c.Size(); i++ {
		if i == c.Rank() {
			continue
		}
		m, err := c.Recv(i, base)
		if err != nil {
			return nil, err
		}
		out[i] = m.Data
	}
	return out, nil
}

// encodeParts / decodeParts frame a [][]byte into one payload.
func encodeParts(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

func decodeParts(flat []byte) ([][]byte, error) {
	if len(flat) < 4 {
		return nil, fmt.Errorf("mpi: truncated parts encoding")
	}
	n := int(binary.LittleEndian.Uint32(flat))
	flat = flat[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(flat) < 4 {
			return nil, fmt.Errorf("mpi: truncated parts encoding")
		}
		l := int(binary.LittleEndian.Uint32(flat))
		flat = flat[4:]
		if len(flat) < l {
			return nil, fmt.Errorf("mpi: truncated parts encoding")
		}
		out[i] = flat[:l:l]
		flat = flat[l:]
	}
	return out, nil
}

// ReduceOp is a binary reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

func reduceInt64(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

func reduceFloat64(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	default:
		return math.Max(a, b)
	}
}

// Int64sToBytes encodes a little-endian int64 slice.
func Int64sToBytes(xs []int64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesToInt64s decodes Int64sToBytes output.
func BytesToInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Float64sToBytes encodes a little-endian float64 slice.
func Float64sToBytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesToFloat64s decodes Float64sToBytes output.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// ReduceInt64s element-wise reduces each rank's xs at root. All ranks must
// pass slices of the same length. Non-root ranks receive nil.
func (c *Comm) ReduceInt64s(root int, xs []int64, op ReduceOp) ([]int64, error) {
	parts, err := c.Gather(root, Int64sToBytes(xs))
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	acc := append([]int64(nil), xs...)
	for i, p := range parts {
		if i == root {
			continue
		}
		vs, err := BytesToInt64s(p)
		if err != nil {
			return nil, err
		}
		if len(vs) != len(acc) {
			return nil, fmt.Errorf("mpi: ReduceInt64s length mismatch from rank %d", i)
		}
		for j := range acc {
			acc[j] = reduceInt64(op, acc[j], vs[j])
		}
	}
	return acc, nil
}

// AllreduceInt64s reduces and distributes the result to all ranks
// (butterfly, O(log p) rounds).
func (c *Comm) AllreduceInt64s(xs []int64, op ReduceOp) ([]int64, error) {
	return allreduceButterfly(c, xs, op, Int64sToBytes, BytesToInt64s, reduceInt64)
}

func reduceUint32(op ReduceOp, a, b uint32) uint32 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

// Uint32sToBytes encodes a little-endian uint32 slice.
func Uint32sToBytes(xs []uint32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

// BytesToUint32s decodes Uint32sToBytes output.
func BytesToUint32s(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mpi: uint32 payload length %d not a multiple of 4", len(b))
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// AllreduceUint32s reduces and distributes the result to all ranks
// (butterfly, O(log p) rounds). The element width matters at vertex
// scale: the curveball engine's one-time global degree bootstrap reduces
// an n-element vector, and uint32 halves that payload relative to int64.
func (c *Comm) AllreduceUint32s(xs []uint32, op ReduceOp) ([]uint32, error) {
	return allreduceButterfly(c, xs, op, Uint32sToBytes, BytesToUint32s, reduceUint32)
}

// allreduceInt64sViaGather is the O(p) gather+broadcast baseline, kept
// for cross-validation of the butterfly implementation.
func (c *Comm) allreduceInt64sViaGather(xs []int64, op ReduceOp) ([]int64, error) {
	acc, err := c.ReduceInt64s(0, xs, op)
	if err != nil {
		return nil, err
	}
	var flat []byte
	if c.Rank() == 0 {
		flat = Int64sToBytes(acc)
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	return BytesToInt64s(flat)
}

// ReduceFloat64s element-wise reduces each rank's xs at root.
func (c *Comm) ReduceFloat64s(root int, xs []float64, op ReduceOp) ([]float64, error) {
	parts, err := c.Gather(root, Float64sToBytes(xs))
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	acc := append([]float64(nil), xs...)
	for i, p := range parts {
		if i == root {
			continue
		}
		vs, err := BytesToFloat64s(p)
		if err != nil {
			return nil, err
		}
		if len(vs) != len(acc) {
			return nil, fmt.Errorf("mpi: ReduceFloat64s length mismatch from rank %d", i)
		}
		for j := range acc {
			acc[j] = reduceFloat64(op, acc[j], vs[j])
		}
	}
	return acc, nil
}

// AllreduceFloat64s reduces and distributes the result to all ranks
// (butterfly, O(log p) rounds). Note: float summation order varies with
// the butterfly pattern, so results are bit-identical across ranks of one
// call but may differ in the last ulp from a sequential sum.
func (c *Comm) AllreduceFloat64s(xs []float64, op ReduceOp) ([]float64, error) {
	return allreduceButterfly(c, xs, op, Float64sToBytes, BytesToFloat64s, reduceFloat64)
}

// AllgatherInt64 gathers one int64 from each rank on every rank.
func (c *Comm) AllgatherInt64(x int64) ([]int64, error) {
	parts, err := c.Allgather(Int64sToBytes([]int64{x}))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		vs, err := BytesToInt64s(p)
		if err != nil {
			return nil, err
		}
		if len(vs) != 1 {
			return nil, fmt.Errorf("mpi: AllgatherInt64 bad payload from rank %d", i)
		}
		out[i] = vs[0]
	}
	return out, nil
}
